package wasn_test

import (
	"fmt"
	"log"

	wasn "github.com/straightpath/wasn"
)

// ExampleNewService shows the serving path: register a deployment by
// spec, route a pair (the first request pays the lazy substrate build),
// and observe the route cache answering the repeat.
func ExampleNewService() {
	svc := wasn.NewService()
	name, err := svc.Deploy("", wasn.DeploymentSpec{Model: wasn.IA, N: 150, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	res, cached, err := svc.Route(name, string(wasn.SLGF2), 1, 117)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: delivered=%v hops=%d cached=%v\n", name, res.Delivered, res.Hops(), cached)

	res, cached, err = svc.Route(name, string(wasn.SLGF2), 1, 117)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: delivered=%v hops=%d cached=%v\n", name, res.Delivered, res.Hops(), cached)
	// Output:
	// IA-150-1: delivered=true hops=8 cached=false
	// IA-150-1: delivered=true hops=8 cached=true
}

// ExampleRouter_RouteInto routes several packets through one reusable
// path buffer: the Result's Path aliases the buffer, and handing it
// back with res.Path[:0] makes steady-state routing allocation-free.
func ExampleRouter_RouteInto() {
	dep, err := wasn.Deploy(wasn.IA, 150, 1)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := wasn.NewSim(dep)
	if err != nil {
		log.Fatal(err)
	}

	router := sim.Router(wasn.SLGF2)
	buf := make([]wasn.NodeID, 0, 64)
	for _, pair := range [][2]wasn.NodeID{{1, 117}, {2, 144}} {
		res := router.RouteInto(pair[0], pair[1], buf)
		fmt.Printf("%d -> %d: %d hops, %.1f m\n", pair[0], pair[1], res.Hops(), res.Length)
		buf = res.Path[:0] // reuse the buffer for the next route
	}
	// Output:
	// 1 -> 117: 8 hops, 106.5 m
	// 2 -> 144: 8 hops, 116.1 m
}

// ExampleService_Fail kills a relay on a served route and routes the
// same pair again: the failure repairs every substrate incrementally
// (no from-scratch rebuild) and invalidates the cached route, so the
// second query is answered fresh over the damaged topology.
func ExampleService_Fail() {
	svc := wasn.NewService()
	name, err := svc.Deploy("", wasn.DeploymentSpec{Model: wasn.IA, N: 150, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	res, _, err := svc.Route(name, string(wasn.SLGF2), 1, 117)
	if err != nil {
		log.Fatal(err)
	}
	relay := res.Path[1]
	fmt.Printf("healthy: %d hops via relay %d\n", res.Hops(), relay)

	if err := svc.Fail(name, []wasn.NodeID{relay}); err != nil {
		log.Fatal(err)
	}

	res, cached, err := svc.Route(name, string(wasn.SLGF2), 1, 117)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after failing %d: delivered=%v hops=%d cached=%v\n", relay, res.Delivered, res.Hops(), cached)
	// Output:
	// healthy: 8 hops via relay 3
	// after failing 3: delivered=true hops=7 cached=false
}
