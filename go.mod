module github.com/straightpath/wasn

go 1.22
