#!/usr/bin/env bash
# fleet-chaos: the CI gate for the sharded fleet's survival story.
#
# Boots a router plus a 3-replica fleet — every listener on an
# ephemeral port (-addr :0), discovered from the "listening on" stdout
# line — drives the churny workload through the proxy tier with the
# binary-transport fleet driver, then kill -9's the replica that owns
# the scenario's deployment mid-run. The load run must exit 0: the
# router's health loop re-shards, pushes the deployment's snapshot to
# a survivor, and the driver's retry-with-remap loop masks the outage,
# so a single failed request fails this script. Afterwards the
# wasn_fleet_* exposition contract is gated with -check-metrics -fleet
# and the control-plane journal must show the leave/reshard/restore.
#
# Usage: fleet-chaos.sh [path-to-wasnd]   (default ./wasnd)
set -euo pipefail

WASND=${1:-./wasnd}
DEPLOYMENT=FA-300-42 # -model fa -n 300 -seed 42 below
LOGDIR=fleet-chaos-logs
rm -rf "$LOGDIR"
mkdir -p "$LOGDIR"

cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) 2>/dev/null || true
}
trap cleanup EXIT

wait_for() { # wait_for <tries> <sleep> <desc> <cmd...>
  local tries=$1 pause=$2 desc=$3
  shift 3
  for _ in $(seq 1 "$tries"); do
    if "$@" >/dev/null 2>&1; then return 0; fi
    sleep "$pause"
  done
  echo "FAIL: timed out waiting for $desc" >&2
  return 1
}

listen_addr() { # parse the ":0 prints the chosen port" stdout contract
  sed -n 's/.*listening on \([^ ]*\).*/\1/p' "$1" | head -1
}

# --- router ---------------------------------------------------------
"$WASND" -router -addr 127.0.0.1:0 \
  >"$LOGDIR/router.out" 2>"$LOGDIR/router.log" &
wait_for 100 0.1 "router listen line" grep -q 'listening on' "$LOGDIR/router.out"
ROUTER="http://$(listen_addr "$LOGDIR/router.out")"
echo "router: $ROUTER"

# --- 3 replicas, each with its own snapshot dir and binary port -----
declare -A REPLICA_PID
for r in r1 r2 r3; do
  mkdir -p "$LOGDIR/$r.snap"
  "$WASND" -addr 127.0.0.1:0 -join "$ROUTER" -replica-id "$r" \
    -snapshot-dir "$LOGDIR/$r.snap" -binary-port 0 \
    >"$LOGDIR/$r.out" 2>"$LOGDIR/$r.log" &
  REPLICA_PID[$r]=$!
done
three_alive() {
  [ "$(curl -sf "$ROUTER/stats" | grep -o '"alive":true' | wc -l)" = 3 ]
}
wait_for 100 0.1 "3 replicas joined" three_alive
echo "fleet up: $(curl -sf "$ROUTER/stats")"

# --- churny load through the fleet driver (binary transport) --------
"$WASND" -load -preset churn-storm -model fa -n 300 -seed 42 \
  -rate 600 -duration 12000 \
  -driver fleet -target "$ROUTER" -progress \
  >"$LOGDIR/load.out" 2>&1 &
LOAD_PID=$!

# Let the run deploy and settle, then murder the owning replica.
wait_for 100 0.1 "deployment owned" curl -sf "$ROUTER/owner?deployment=$DEPLOYMENT"
sleep 2
OWNER=$(curl -sf "$ROUTER/owner?deployment=$DEPLOYMENT" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
echo "killing owner $OWNER (pid ${REPLICA_PID[$OWNER]}) with SIGKILL mid-run"
kill -9 "${REPLICA_PID[$OWNER]}"

# The run must complete with zero request errors and no shed load —
# wasnd -load exits nonzero otherwise, which fails this script.
if ! wait "$LOAD_PID"; then
  echo "FAIL: load run reported errors during the re-shard" >&2
  tail -40 "$LOGDIR/load.out" >&2
  exit 1
fi
tail -12 "$LOGDIR/load.out"

# --- post-chaos assertions ------------------------------------------
new_owner() {
  curl -sf "$ROUTER/owner?deployment=$DEPLOYMENT" | grep -qv "\"id\":\"$OWNER\""
}
wait_for 50 0.1 "ownership moved off $OWNER" new_owner

STATS=$(curl -sf "$ROUTER/stats")
echo "post-chaos: $STATS"
if [ "$(echo "$STATS" | grep -o '"alive":true' | wc -l)" != 2 ]; then
  echo "FAIL: expected exactly 2 alive replicas after the kill" >&2
  exit 1
fi

EVENTS=$(curl -sf "$ROUTER/events")
for kind in leave reshard restore; do
  if ! echo "$EVENTS" | grep -q "\"$kind\""; then
    echo "FAIL: control-plane journal missing a $kind event" >&2
    echo "$EVENTS" >&2
    exit 1
  fi
done

# The fleet exposition contract (wasn_fleet_* families).
"$WASND" -check-metrics "$ROUTER/metrics" -fleet

echo "fleet-chaos: delivery survived a SIGKILL re-shard"
