// Holes: build a deployment with one large forbidden area between the
// source and the destination — the local-minimum scenario of the paper's
// Fig. 1 — and compare how far each algorithm detours around it. Writes
// holes.svg with every route overlaid.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/straightpath/wasn/internal/bound"
	"github.com/straightpath/wasn/internal/core"
	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/svgplot"
	"github.com/straightpath/wasn/internal/topo"
)

func main() {
	// One big rectangular hole in the middle of the field: every route
	// from the west side to the east side must go around it.
	cfg := topo.DefaultDeployConfig(topo.ModelFA, 650, 2024)
	cfg.Forbidden = topo.ForbiddenConfig{
		Count:        1,
		MinSize:      80,
		MaxSize:      80,
		DiscFraction: 0, // one 80x80 rectangle
		Margin:       60,
	}
	dep, err := topo.Deploy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	net := dep.Net
	hole := dep.Forbidden[0].BBox()
	fmt.Printf("hole at %v\n", hole)

	// Source due west of the hole center, destination due east: the
	// straight line crosses the hole.
	src := nearest(net, geom.Pt(hole.Min.X-40, hole.Center().Y))
	dst := nearest(net, geom.Pt(hole.Max.X+40, hole.Center().Y))
	direct := net.Dist(src, dst)
	fmt.Printf("pair %d -> %d, straight line %.1f m (through the hole)\n\n", src, dst, direct)

	m := safety.Build(net)
	b := bound.FindHoles(net)
	routers := []struct {
		r     core.Router
		color string
	}{
		{r: core.NewGF(net, b), color: "#7a7"},
		{r: core.NewLGF(net), color: "#b77"},
		{r: core.NewSLGF(net, m), color: "#77c"},
		{r: core.NewSLGF2(net, m), color: "#06c"},
		{r: core.NewIdeal(net, core.IdealMinLength), color: "#999"},
	}

	canvas := svgplot.New(net.Field, 900)
	canvas.Holes(dep.Forbidden)
	canvas.Network(net, false)
	canvas.UnsafeAreas(m)

	fmt.Printf("%-14s %6s %10s %9s\n", "algorithm", "hops", "length(m)", "stretch")
	for _, rt := range routers {
		res := rt.r.Route(src, dst)
		if !res.Delivered {
			fmt.Printf("%-14s FAILED (%v)\n", rt.r.Name(), res.Reason)
			continue
		}
		fmt.Printf("%-14s %6d %10.1f %9.2f\n",
			rt.r.Name(), res.Hops(), res.Length, res.Length/direct)
		canvas.Route(net, res.Path, rt.color)
	}

	f, err := os.Create("holes.svg")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if _, err := canvas.WriteTo(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote holes.svg (orange dashes: estimated unsafe areas E_i)")
}

// nearest returns the node closest to p.
func nearest(net *topo.Network, p geom.Point) topo.NodeID {
	best := topo.NodeID(0)
	bestD := geom.Dist2(net.Pos(0), p)
	for i := 1; i < net.N(); i++ {
		if d := geom.Dist2(net.Pos(topo.NodeID(i)), p); d < bestD {
			best, bestD = topo.NodeID(i), d
		}
	}
	return best
}
