// Quickstart: deploy a random sensor network with the paper's
// parameters, build the safety information model, and route one packet
// with SLGF2, printing the path and its phase breakdown.
package main

import (
	"fmt"
	"log"

	wasn "github.com/straightpath/wasn"
	"github.com/straightpath/wasn/internal/core"
	"github.com/straightpath/wasn/internal/topo"
	"github.com/straightpath/wasn/internal/trace"
)

func main() {
	// 500 nodes, 200x200 m field, 20 m radio range, forbidden-area
	// deployment: the FA model of the paper's §5.
	dep, err := wasn.Deploy(wasn.FA, 500, 42)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := wasn.NewSim(dep)
	if err != nil {
		log.Fatal(err)
	}
	net := sim.Net()
	fmt.Printf("deployed %d nodes, %d links, average degree %.1f\n",
		net.N(), net.EdgeCount(), net.AvgDegree())

	// Pick a connected pair far apart.
	labels, _ := topo.Components(net)
	var src, dst wasn.NodeID = -1, -1
	for s := 0; s < net.N() && src < 0; s++ {
		for d := net.N() - 1; d > s; d-- {
			if labels[s] >= 0 && labels[s] == labels[d] && net.Dist(topo.NodeID(s), topo.NodeID(d)) > 150 {
				src, dst = wasn.NodeID(s), wasn.NodeID(d)
				break
			}
		}
	}
	if src < 0 {
		log.Fatal("no suitable pair found")
	}
	fmt.Printf("routing %v -> %v (straight-line distance %.1f m)\n\n",
		net.Pos(src), net.Pos(dst), net.Dist(src, dst))

	for _, alg := range []wasn.Algorithm{wasn.LGF, wasn.SLGF, wasn.SLGF2, wasn.IdealHop} {
		res := sim.Route(alg, src, dst)
		if !res.Delivered {
			fmt.Printf("%-10s FAILED (%v)\n", alg, res.Reason)
			continue
		}
		fmt.Printf("%-10s %3d hops  %6.1f m  greedy=%d backup=%d perimeter=%d\n",
			alg, res.Hops(), res.Length,
			res.PhaseHops[core.PhaseGreedy],
			res.PhaseHops[core.PhaseBackup],
			res.PhaseHops[core.PhasePerimeter])
	}

	fmt.Println("\nSLGF2 hop-by-hop:")
	res := sim.Route(wasn.SLGF2, src, dst)
	fmt.Println(trace.FromResult(src, dst, res).Dump(12))

	// The safety tuples the routing consulted.
	fmt.Printf("source tuple %s, destination tuple %s\n",
		sim.Safety.Tuple(src), sim.Safety.Tuple(dst))
}
