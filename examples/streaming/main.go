// Streaming: the paper's §1 motivating application. A sensor streams a
// large volume of data to a sink; a straighter path uses fewer relays,
// spends less radio energy, and interferes with fewer other nodes. This
// example routes the same stream with every algorithm and compares those
// three footprints.
package main

import (
	"fmt"
	"log"

	wasn "github.com/straightpath/wasn"
	"github.com/straightpath/wasn/internal/core"
	"github.com/straightpath/wasn/internal/stream"
	"github.com/straightpath/wasn/internal/topo"
)

func main() {
	dep, err := wasn.Deploy(wasn.FA, 600, 99)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := wasn.NewSim(dep)
	if err != nil {
		log.Fatal(err)
	}
	net := sim.Net()

	// The stream: 10_000 packets of 1 KiB (a camera feed, say).
	const (
		packetBits = 8 * 1024
		packets    = 10_000
	)

	labels, _ := topo.Components(net)
	var src, dst wasn.NodeID = -1, -1
	for s := 0; s < net.N() && src < 0; s++ {
		for d := net.N() - 1; d > s; d-- {
			if labels[s] >= 0 && labels[s] == labels[d] && net.Dist(topo.NodeID(s), topo.NodeID(d)) > 160 {
				src, dst = wasn.NodeID(s), wasn.NodeID(d)
				break
			}
		}
	}
	if src < 0 {
		log.Fatal("no suitable pair")
	}
	fmt.Printf("streaming %d x %d-bit packets over %.0f m\n\n",
		packets, packetBits, net.Dist(src, dst))

	routers := []core.Router{
		sim.Router(wasn.GF),
		sim.Router(wasn.LGF),
		sim.Router(wasn.SLGF),
		sim.Router(wasn.SLGF2),
		sim.Router(wasn.IdealLen),
	}
	reports := stream.Compare(net, routers, src, dst, packetBits, packets)
	fmt.Printf("%-14s %5s %7s %13s %10s %8s\n",
		"algorithm", "hops", "relays", "interference", "energy(J)", "stretch")
	for _, r := range reports {
		fmt.Printf("%-14s %5d %7d %13d %10.3f %8.2f\n",
			r.Algorithm, r.Hops, r.Relays, r.Interference, r.EnergyJ, r.Stretch)
	}
	fmt.Println("\ninterference = nodes that hear the stream at all;")
	fmt.Println("a straighter path keeps both columns small (the paper's motivation).")
}
