// Dynamic: local minima are not only deployment holes — node failures
// create them at runtime (§1 lists failures, jamming, power exhaustion).
// This example streams packets while nodes on the active path randomly
// fail, repairs the safety information incrementally after each failure,
// and shows SLGF2 re-routing around the growing hole.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	wasn "github.com/straightpath/wasn"
	"github.com/straightpath/wasn/internal/core"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/topo"
)

func main() {
	dep, err := wasn.Deploy(wasn.IA, 700, 7)
	if err != nil {
		log.Fatal(err)
	}
	net := dep.Net
	m := safety.Build(net)
	router := core.NewSLGF2(net, m)

	labels, _ := topo.Components(net)
	var src, dst wasn.NodeID = -1, -1
	for s := 0; s < net.N() && src < 0; s++ {
		for d := net.N() - 1; d > s; d-- {
			if labels[s] >= 0 && labels[s] == labels[d] && net.Dist(topo.NodeID(s), topo.NodeID(d)) > 150 {
				src, dst = wasn.NodeID(s), wasn.NodeID(d)
				break
			}
		}
	}
	if src < 0 {
		log.Fatal("no suitable pair")
	}

	rng := rand.New(rand.NewPCG(1, 2))
	fmt.Printf("routing %d -> %d under failures\n\n", src, dst)
	fmt.Printf("%5s %6s %10s %9s %s\n", "round", "hops", "length(m)", "relabel", "failed nodes")

	for round := 1; round <= 8; round++ {
		res := router.Route(src, dst)
		if !res.Delivered {
			fmt.Printf("%5d  undeliverable (%v) — the failure hole severed the pair\n",
				round, res.Reason)
			break
		}

		// Fail 1-2 random relays of the path just used (not the
		// endpoints), as if forwarding drained them.
		var failed []topo.NodeID
		relays := res.Path[1 : len(res.Path)-1]
		for len(failed) < 2 && len(relays) > 0 {
			v := relays[rng.IntN(len(relays))]
			if v != src && v != dst && net.Alive(v) {
				net.SetAlive(v, false)
				failed = append(failed, v)
			}
			if len(failed) >= len(relays) {
				break
			}
		}
		// Incremental repair of the safety information (worklist from
		// the failure neighborhood; equivalent to a full rebuild).
		before := m.Cost.Messages
		m.OnNodeFailure(failed...)
		repair := m.Cost.Messages - before

		fmt.Printf("%5d %6d %10.1f %9d %v\n",
			round, res.Hops(), res.Length, repair, failed)
	}

	alive := len(net.AliveIDs())
	fmt.Printf("\n%d of %d nodes still alive\n", alive, net.N())
}
