// Dynamic: local minima are not only deployment holes — node failures
// create them at runtime (§1 lists failures, jamming, power exhaustion).
// This example streams packets while nodes on the active path randomly
// fail, repairing every routing substrate incrementally after each
// failure (Sim.Fail: safety relabeling seeded from the failure
// neighborhood, local BOUNDHOLE re-traces, planar row recomputation),
// and shows SLGF2 re-routing around the growing hole.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	wasn "github.com/straightpath/wasn"
	"github.com/straightpath/wasn/internal/topo"
)

func main() {
	dep, err := wasn.Deploy(wasn.IA, 700, 7)
	if err != nil {
		log.Fatal(err)
	}
	net := dep.Net
	sim, err := wasn.NewSim(dep)
	if err != nil {
		log.Fatal(err)
	}

	labels, _ := topo.Components(net)
	var src, dst wasn.NodeID = -1, -1
	for s := 0; s < net.N() && src < 0; s++ {
		for d := net.N() - 1; d > s; d-- {
			if labels[s] >= 0 && labels[s] == labels[d] && net.Dist(topo.NodeID(s), topo.NodeID(d)) > 150 {
				src, dst = wasn.NodeID(s), wasn.NodeID(d)
				break
			}
		}
	}
	if src < 0 {
		log.Fatal("no suitable pair")
	}

	rng := rand.New(rand.NewPCG(1, 2))
	fmt.Printf("routing %d -> %d under failures\n\n", src, dst)
	fmt.Printf("%5s %6s %10s %9s %s\n", "round", "hops", "length(m)", "relabel", "failed nodes")

	for round := 1; round <= 8; round++ {
		res := sim.Route(wasn.SLGF2, src, dst)
		if !res.Delivered {
			fmt.Printf("%5d  undeliverable (%v) — the failure hole severed the pair\n",
				round, res.Reason)
			break
		}

		// Fail 1-2 random relays of the path just used (not the
		// endpoints), as if forwarding drained them.
		var failed []wasn.NodeID
		picked := map[wasn.NodeID]bool{}
		relays := res.Path[1 : len(res.Path)-1]
		for len(failed) < 2 && len(relays) > 0 {
			v := relays[rng.IntN(len(relays))]
			if v != src && v != dst && net.Alive(v) && !picked[v] {
				picked[v] = true
				failed = append(failed, v)
			}
			if len(failed) >= len(relays) {
				break
			}
		}
		// Incremental repair of every substrate; equivalent to — and
		// roughly an order of magnitude cheaper than — rebuilding the Sim.
		before := sim.Safety.Cost.Messages
		sim.Fail(failed...)
		repair := sim.Safety.Cost.Messages - before

		fmt.Printf("%5d %6d %10.1f %9d %v\n",
			round, res.Hops(), res.Length, repair, failed)
	}

	alive := len(net.AliveIDs())
	fmt.Printf("\n%d of %d nodes still alive\n", alive, net.N())
}
