// Workload: the serving layer is only as good as what it survives.
// This example runs a small open-loop Poisson convergecast scenario —
// every sensor reports to its nearest of 3 sinks, the paper-native
// many-to-one pattern — with a churn schedule that kills random nodes
// mid-run and then revives them, all against an in-process routing
// service. The per-phase report shows SLGF2 holding delivery while the
// failure hole grows — the paper's hole-avoiding routing doing its job
// — with every topology change served by incremental substrate repair
// under live traffic.
//
// The same scenario can be pointed at a live server instead:
//
//	go run ./cmd/wasnd &
//	go run ./cmd/wasnd -load -scenario examples/scenarios/churn-storm.json -driver http -target http://localhost:8080
package main

import (
	"fmt"
	"log"

	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/workload"
)

func main() {
	sc := &workload.Scenario{
		Name:       "example-churn",
		Deployment: workload.DeploymentSpec{Model: "fa", N: 300, Seed: 7},
		Algorithm:  "SLGF2",
		Arrival:    workload.Arrival{Process: workload.ArrivalPoisson, RateHz: 1500, DurationMS: 1200},
		Traffic:    workload.Traffic{Pattern: workload.TrafficConvergecast, Sinks: 3},
		Churn: []workload.ChurnEvent{
			{AtMS: 300, FailRandom: 6},
			{AtMS: 600, FailRandom: 6},
			{AtMS: 900, ReviveAll: true},
		},
		WarmupRequests: 100,
	}

	drv := workload.NewInProcess(serve.New(serve.Config{}))
	rep, err := workload.Run(drv, sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Summary())
}
