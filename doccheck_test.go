package wasn

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// docCheckedDirs are the packages whose exported API the docs gate
// covers: the facade and the two packages downstream users touch
// through it. The CI docs job runs this test together with go vet and
// the runnable examples.
var docCheckedDirs = []string{".", "internal/core", "internal/serve"}

// TestDocComments fails when an exported symbol of the facade,
// internal/core, or internal/serve lacks a doc comment — the docs
// regression gate. A grouped declaration's doc covers all its specs.
func TestDocComments(t *testing.T) {
	for _, dir := range docCheckedDirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					checkDecl(t, fset, decl)
				}
			}
		}
	}
}

func checkDecl(t *testing.T, fset *token.FileSet, decl ast.Decl) {
	t.Helper()
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedReceiver(d) {
			return
		}
		if d.Doc == nil {
			t.Errorf("%s: exported %s %s has no doc comment", fset.Position(d.Pos()), declKind(d), funcName(d))
		}
	case *ast.GenDecl:
		if d.Doc != nil {
			return // the group doc covers every spec
		}
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
					t.Errorf("%s: exported type %s has no doc comment", fset.Position(s.Pos()), s.Name.Name)
				}
			case *ast.ValueSpec:
				if s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						t.Errorf("%s: exported %s has no doc comment", fset.Position(s.Pos()), name.Name)
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether a function is free-standing or a
// method on an exported type (methods on unexported types are not part
// of the documented API).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch v := typ.(type) {
		case *ast.StarExpr:
			typ = v.X
		case *ast.IndexExpr: // generic receiver
			typ = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	var b strings.Builder
	typ := d.Recv.List[0].Type
	if st, ok := typ.(*ast.StarExpr); ok {
		typ = st.X
	}
	if id, ok := typ.(*ast.Ident); ok {
		b.WriteString(id.Name)
		b.WriteString(".")
	}
	b.WriteString(d.Name.Name)
	return b.String()
}
