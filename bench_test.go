package wasn

// Benchmark harness: one benchmark per paper artifact (Figs. 5, 6, 7,
// each under the IA and FA deployment models), plus the ablation and
// construction-cost benches called out in DESIGN.md. Each figure bench
// runs a reduced sweep per iteration (full 100-network sweeps live in
// cmd/wasnsim) and reports the paper's metric for the densest
// configuration through testing.B metrics, so `go test -bench=.` both
// exercises the full pipeline and prints the reproduced quantities.

import (
	"math/rand/v2"
	"testing"

	"github.com/straightpath/wasn/internal/bound"
	"github.com/straightpath/wasn/internal/core"
	"github.com/straightpath/wasn/internal/expt"
	"github.com/straightpath/wasn/internal/planar"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/topo"
)

// benchSweep is the reduced sweep used inside benchmarks.
func benchSweep(b *testing.B, model topo.DeployModel, metric expt.Metric, algs []expt.AlgID) {
	b.Helper()
	cfg := expt.DefaultConfig(model, 2, 5)
	cfg.NodeCounts = []int{400, 600, 800}
	if algs != nil {
		cfg.Algorithms = algs
	}
	var last *expt.Sweep
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep, err := expt.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = sweep
	}
	b.StopTimer()
	for _, alg := range cfg.Algorithms {
		if v, ok := last.Value(800, alg, metric); ok {
			b.ReportMetric(v, string(alg)+"@800")
		}
	}
}

// Fig. 5: maximum hop count.

func BenchmarkFig5MaxHopsIA(b *testing.B) {
	benchSweep(b, topo.ModelIA, expt.MetricMaxHops, nil)
}

func BenchmarkFig5MaxHopsFA(b *testing.B) {
	benchSweep(b, topo.ModelFA, expt.MetricMaxHops, nil)
}

// Fig. 6: average hop count.

func BenchmarkFig6AvgHopsIA(b *testing.B) {
	benchSweep(b, topo.ModelIA, expt.MetricAvgHops, nil)
}

func BenchmarkFig6AvgHopsFA(b *testing.B) {
	benchSweep(b, topo.ModelFA, expt.MetricAvgHops, nil)
}

// Fig. 7: average routing path length.

func BenchmarkFig7PathLenIA(b *testing.B) {
	benchSweep(b, topo.ModelIA, expt.MetricAvgLength, nil)
}

func BenchmarkFig7PathLenFA(b *testing.B) {
	benchSweep(b, topo.ModelFA, expt.MetricAvgLength, nil)
}

// Ablations (DESIGN.md §3): SLGF2 design choices isolated.

func BenchmarkAblationHandRule(b *testing.B) {
	benchSweep(b, topo.ModelFA, expt.MetricAvgHops,
		[]expt.AlgID{expt.AlgSLGF2, expt.AlgSLGF2RightHand})
}

func BenchmarkAblationShapeInfo(b *testing.B) {
	benchSweep(b, topo.ModelFA, expt.MetricAvgHops,
		[]expt.AlgID{expt.AlgSLGF2, expt.AlgSLGF2NoShape})
}

func BenchmarkAblationBackupPath(b *testing.B) {
	benchSweep(b, topo.ModelFA, expt.MetricAvgHops,
		[]expt.AlgID{expt.AlgSLGF2, expt.AlgSLGF2NoBackup})
}

func BenchmarkAblationEdgeRule(b *testing.B) {
	for _, rule := range []safety.EdgeRule{
		safety.ConvexHullEdge{},
		safety.BorderMarginEdge{Margin: 20},
		safety.DefaultEdgeRule(),
	} {
		b.Run(rule.Name(), func(b *testing.B) {
			cfg := expt.DefaultConfig(topo.ModelFA, 2, 5)
			cfg.NodeCounts = []int{600}
			cfg.Algorithms = []expt.AlgID{expt.AlgSLGF2}
			cfg.EdgeRule = rule
			var last *expt.Sweep
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sweep, err := expt.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = sweep
			}
			b.StopTimer()
			if v, ok := last.Value(600, expt.AlgSLGF2, expt.MetricAvgHops); ok {
				b.ReportMetric(v, "avgHops@600")
			}
		})
	}
}

// Construction cost: safety information vs BOUNDHOLE boundary info.

func BenchmarkConstructionCost(b *testing.B) {
	dep, err := topo.Deploy(topo.DefaultDeployConfig(topo.ModelFA, 600, 7))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("safety-sync", func(b *testing.B) {
		var m *safety.Model
		for i := 0; i < b.N; i++ {
			m = safety.Build(dep.Net)
		}
		b.ReportMetric(float64(m.Cost.Rounds), "rounds")
		b.ReportMetric(float64(m.Cost.Messages), "messages")
	})
	b.Run("safety-async", func(b *testing.B) {
		var m *safety.Model
		for i := 0; i < b.N; i++ {
			m = safety.BuildAsync(dep.Net, uint64(i))
		}
		b.ReportMetric(float64(m.Cost.Messages), "messages")
	})
	b.Run("boundhole", func(b *testing.B) {
		var bs *bound.Boundaries
		for i := 0; i < b.N; i++ {
			bs = bound.FindHoles(dep.Net)
		}
		b.ReportMetric(float64(bs.MessageCount), "messages")
		b.ReportMetric(float64(len(bs.Holes)), "holes")
	})
	b.Run("gabriel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			planar.Build(dep.Net, planar.GabrielGraph)
		}
	})
}

// Micro benches: one route per algorithm on a fixed 600-node FA network.

func BenchmarkRoutePerAlgorithm(b *testing.B) {
	dep, err := Deploy(FA, 600, 11)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := NewSim(dep)
	if err != nil {
		b.Fatal(err)
	}
	labels, _ := topo.Components(dep.Net)
	var pairs [][2]NodeID
	for s := 0; s < dep.Net.N() && len(pairs) < 32; s += 11 {
		d := (s*17 + 300) % dep.Net.N()
		if s != d && labels[s] >= 0 && labels[s] == labels[d] {
			pairs = append(pairs, [2]NodeID{NodeID(s), NodeID(d)})
		}
	}
	if len(pairs) == 0 {
		b.Fatal("no connected pairs")
	}
	for _, alg := range sim.Algorithms() {
		b.Run(string(alg), func(b *testing.B) {
			hops := 0
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				res := sim.Route(alg, p[0], p[1])
				hops += res.Hops()
			}
			b.ReportMetric(float64(hops)/float64(b.N), "hops/route")
		})
	}
}

// Per-algorithm route benches over a fixed 600-node FA network, driving
// RouteInto with a reused path buffer: steady-state routing must stay at
// 0 allocs/op (b.ReportAllocs makes regressions visible).

func benchRouteAlg(b *testing.B, alg Algorithm) {
	b.Helper()
	dep, err := Deploy(FA, 600, 11)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := NewSim(dep)
	if err != nil {
		b.Fatal(err)
	}
	r := sim.Router(alg)
	if r == nil {
		b.Fatalf("unknown algorithm %v", alg)
	}
	pairs := topo.RoutablePairs(dep.Net, 64, 60)
	if len(pairs) == 0 {
		b.Fatal("no connected pairs")
	}
	buf := make([]NodeID, 0, 4*dep.Net.N())
	// Warm the route pools so the measured loop sees steady state.
	for _, p := range pairs {
		res := r.RouteInto(p[0], p[1], buf)
		buf = res.Path[:0]
	}
	b.ReportAllocs()
	b.ResetTimer()
	hops := 0
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		res := r.RouteInto(p[0], p[1], buf)
		hops += res.Hops()
		buf = res.Path[:0]
	}
	b.ReportMetric(float64(hops)/float64(b.N), "hops/route")
}

func BenchmarkRouteGF(b *testing.B)        { benchRouteAlg(b, GF) }
func BenchmarkRouteLGF(b *testing.B)       { benchRouteAlg(b, LGF) }
func BenchmarkRouteSLGF(b *testing.B)      { benchRouteAlg(b, SLGF) }
func BenchmarkRouteSLGF2(b *testing.B)     { benchRouteAlg(b, SLGF2) }
func BenchmarkRouteGPSR(b *testing.B)      { benchRouteAlg(b, GPSR) }
func BenchmarkRouteIdealHops(b *testing.B) { benchRouteAlg(b, IdealHop) }
func BenchmarkRouteIdealLen(b *testing.B)  { benchRouteAlg(b, IdealLen) }

// Substrate micro benches.

func BenchmarkDeploy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Deploy(FA, 800, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeploymentBuild measures the full substrate pipeline — node
// placement, CSR adjacency, safety model, BOUNDHOLE boundaries, Gabriel
// graph — on an 800-node FA network, the wall time /deploy pays when a
// registered deployment is first routed.
func BenchmarkDeploymentBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dep, err := Deploy(FA, 800, 42)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := NewSim(dep); err != nil {
			b.Fatal(err)
		}
	}
}

// Failure-repair benches: one node failure on an 800-node FA network,
// with all three substrates either repaired incrementally
// (core.RepairSubstrates — the serve /fail and Sim.Fail path) or
// rebuilt from scratch (the FullRebuildOnFail oracle). Victims fail
// cumulatively, so later iterations repair progressively damaged
// networks; the state is rebuilt fresh (off-timer) when half the
// network is gone.

func benchmarkFail(b *testing.B, incremental bool) {
	b.Helper()
	type failState struct {
		net     *Network
		m       *safety.Model
		bs      *bound.Boundaries
		g       *planar.Graph
		victims []NodeID
		idx     int
	}
	newState := func() *failState {
		dep, err := Deploy(FA, 800, 42)
		if err != nil {
			b.Fatal(err)
		}
		m, bs, g := core.BuildSubstrates(dep.Net, true, true, true, nil)
		st := &failState{net: dep.Net, m: m, bs: bs, g: g}
		// 131 is coprime with 800, so this walks a permutation of the
		// node ids: 400 distinct victims spread over the field.
		for u := 0; u < 400; u++ {
			st.victims = append(st.victims, NodeID((u*131)%800))
		}
		return st
	}
	st := newState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st.idx >= len(st.victims) {
			b.StopTimer()
			st = newState()
			b.StartTimer()
		}
		v := st.victims[st.idx]
		st.idx++
		st.net.SetAlive(v, false)
		if incremental {
			core.RepairSubstrates(st.m, st.bs, st.g, []topo.NodeID{v})
		} else {
			st.m, st.bs, st.g = core.BuildSubstrates(st.net, true, true, true, nil)
		}
	}
}

func BenchmarkFailRepairIncremental(b *testing.B) { benchmarkFail(b, true) }
func BenchmarkFailFullRebuild(b *testing.B)       { benchmarkFail(b, false) }

func BenchmarkSafetyRelabelIncremental(b *testing.B) {
	dep, err := Deploy(FA, 600, 13)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Fresh model and victim per iteration.
		m := safety.Build(dep.Net)
		victim := NodeID((i * 37) % dep.Net.N())
		b.StartTimer()
		dep.Net.SetAlive(victim, false)
		m.OnNodeFailure(victim)
		b.StopTimer()
		dep.Net.SetAlive(victim, true)
	}
}

var benchSink core.Result

func BenchmarkSingleRouteSLGF2(b *testing.B) {
	dep, err := Deploy(FA, 600, 17)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := NewSim(dep)
	if err != nil {
		b.Fatal(err)
	}
	labels, _ := topo.Components(dep.Net)
	src, dst := NodeID(-1), NodeID(-1)
	for s := 0; s < dep.Net.N(); s++ {
		d := dep.Net.N() - 1 - s
		if s != d && labels[s] >= 0 && labels[s] == labels[d] {
			src, dst = NodeID(s), NodeID(d)
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = sim.Route(SLGF2, src, dst)
	}
}

// Serving layer benches: the cached vs uncached route path and the batch
// engine of internal/serve (the wasnd backend). BenchmarkServeRoute/cold
// routes a different pair each iteration (every request misses);
// /cached replays one warm pair.

func benchService(b *testing.B, cfg ServiceConfig) (*Service, string, [][2]NodeID) {
	b.Helper()
	svc := NewService(cfg)
	name, err := svc.Deploy("", DeploymentSpec{Model: FA, N: 500, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	// Build eagerly so the measured loop times routes, not the one-off
	// substrate construction.
	if err := svc.Build(name); err != nil {
		b.Fatal(err)
	}
	dep, err := Deploy(FA, 500, 42)
	if err != nil {
		b.Fatal(err)
	}
	pairs := topo.RoutablePairs(dep.Net, 256, 60)
	if len(pairs) == 0 {
		b.Fatal("no connected pairs")
	}
	return svc, name, pairs
}

func BenchmarkServeRoute(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		svc, name, pairs := benchService(b, ServiceConfig{CacheSize: -1})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			if _, _, err := svc.Route(name, string(SLGF2), p[0], p[1]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		svc, name, pairs := benchService(b, ServiceConfig{})
		p := pairs[0]
		if _, _, err := svc.Route(name, string(SLGF2), p[0], p[1]); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := svc.Route(name, string(SLGF2), p[0], p[1]); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The flight-recorder acceptance bench: same cached path with the
	// timeline sampler scraping in the background and the event journal
	// live (it always is). Must stay within a few percent of /cached —
	// the recorder is scrape-side, off the route hot path.
	b.Run("cached-recorder", func(b *testing.B) {
		svc, name, pairs := benchService(b, ServiceConfig{SampleEveryMS: 250})
		b.Cleanup(func() { svc.Close() })
		p := pairs[0]
		if _, _, err := svc.Route(name, string(SLGF2), p[0], p[1]); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := svc.Route(name, string(SLGF2), p[0], p[1]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkServeBatch(b *testing.B) {
	svc, name, pairs := benchService(b, ServiceConfig{})
	reqs := make([]RouteRequest, len(pairs))
	for i, p := range pairs {
		reqs[i] = RouteRequest{Deployment: name, Algorithm: string(SLGF2), Src: p[0], Dst: p[1]}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range svc.Batch(reqs) {
			if r.Err != "" {
				b.Fatal(r.Err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(reqs)), "routes/op")
}

// benchmarkMove measures one 1% drift batch per op on an 800-node FA
// deployment: 8 movers take a Gaussian step (sigma 4 m, clamped to the
// field), the CSR adjacency is rewritten (SetPositions), and the
// substrates are brought to the exact from-scratch state — either by
// incremental position repair over the geometric dirty set or by a full
// rebuild. The movers random-walk cumulatively, so later iterations
// repair progressively displaced networks.
func benchmarkMove(b *testing.B, incremental bool) {
	dep, err := Deploy(FA, 800, 42)
	if err != nil {
		b.Fatal(err)
	}
	net := dep.Net
	m, bs, g := core.BuildSubstrates(net, true, true, true, nil)
	rng := rand.New(rand.NewPCG(42, 0xd41f7))
	movers := make([]NodeID, 8)
	for i := range movers {
		movers[i] = NodeID((i*101 + 7) % net.N())
	}
	moves := make([]topo.Move, len(movers))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j, u := range movers {
			p := net.Pos(u)
			x := min(max(p.X+rng.NormFloat64()*4, net.Field.Min.X), net.Field.Max.X)
			y := min(max(p.Y+rng.NormFloat64()*4, net.Field.Min.Y), net.Field.Max.Y)
			moves[j] = topo.Move{Node: u, X: x, Y: y}
		}
		b.StartTimer()
		dirty, err := net.SetPositions(moves)
		if err != nil {
			b.Fatal(err)
		}
		if incremental {
			core.RepairSubstratesMoved(m, bs, g, dirty)
		} else {
			m, bs, g = core.BuildSubstrates(net, true, true, true, nil)
		}
	}
}

func BenchmarkMoveRepairIncremental(b *testing.B) { benchmarkMove(b, true) }
func BenchmarkMoveFullRebuild(b *testing.B)       { benchmarkMove(b, false) }
