package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/straightpath/wasn/internal/obs"
	"github.com/straightpath/wasn/internal/workload"
)

// Rung is one operating point of the curve: the base scenario run at
// one swept value (offered rate by default).
type Rung struct {
	// AxisValue is the swept knob's value at this rung (equal to
	// OfferedRPS on rate sweeps; churn fail rate, drift fraction, or
	// obstacle coverage on the other axes).
	AxisValue   float64 `json:"axis_value,omitempty"`
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	Requests    int64   `json:"requests"`
	// MovedNodes totals mobility-schedule position changes during the
	// rung (drift and churn axes chart delivery against it).
	MovedNodes int64 `json:"moved_nodes,omitempty"`
	// Dropped counts arrivals shed by the open loop's bounded queue —
	// nonzero is the engine-side signature of saturation.
	Dropped      int64            `json:"dropped,omitempty"`
	Errors       int64            `json:"errors,omitempty"`
	DeliveryRate float64          `json:"delivery_rate"`
	CachedShare  float64          `json:"cached_share"`
	Latency      workload.Latency `json:"latency"`
	ElapsedMS    float64          `json:"elapsed_ms"`
	// Saturated marks rungs whose achieved rate fell below the knee
	// tolerance band.
	Saturated bool `json:"saturated,omitempty"`
}

// CapacityCurve is the sweep's one JSON artifact: every rung plus the
// detected landmarks, comparable across builds (Compare).
type CapacityCurve struct {
	Name       string                  `json:"name"`
	Scenario   string                  `json:"scenario"`
	Driver     string                  `json:"driver"`
	Deployment workload.DeploymentSpec `json:"deployment"`
	Algorithm  string                  `json:"algorithm"`
	// Axis is the swept knob ("rate" when absent — curves predating
	// non-rate axes are all rate sweeps).
	Axis          string  `json:"axis,omitempty"`
	Mode          string  `json:"mode"`
	KneeTolerance float64 `json:"knee_tolerance"`
	CliffFactor   float64 `json:"cliff_factor"`

	// Rungs is sorted by offered rate.
	Rungs []Rung `json:"rungs"`
	// SkippedRungs counts ladder rungs never run because the curve
	// collapsed first (StopOnCollapse).
	SkippedRungs int `json:"skipped_rungs,omitempty"`

	// KneeRung indexes the first saturated rung (-1: the driver
	// absorbed the whole ladder); KneeRPS is its offered rate.
	KneeRung int     `json:"knee_rung"`
	KneeRPS  float64 `json:"knee_rps,omitempty"`
	// CliffRung indexes the first rung whose p99 is >= CliffFactor ×
	// the smallest p99 of any earlier rung (-1: no cliff observed);
	// CliffRPS is its offered rate.
	CliffRung int     `json:"cliff_rung"`
	CliffRPS  float64 `json:"cliff_rps,omitempty"`

	// MetricsDelta is the movement of every server metric series across
	// the whole ladder (obs.Delta of scrapes bracketing the sweep;
	// histogram buckets excluded), nil when the driver has no
	// exposition to scrape.
	MetricsDelta map[string]float64 `json:"metrics_delta,omitempty"`
	// StartUnixMs anchors the sweep in wall time so the flight-recorder
	// timeline and journal below can be read against it.
	StartUnixMs int64 `json:"start_unix_ms,omitempty"`
	// SampledTimeline is the server's flight-recorder sample window
	// covering the whole ladder (nil without a sampler).
	SampledTimeline *obs.TimelineWindow `json:"sampled_timeline,omitempty"`
	// Journal is the server's flight-recorder events raised during the
	// sweep, oldest first.
	Journal []obs.Event `json:"journal,omitempty"`
}

// detect (re)locates the knee and the p99 cliff over the sorted rungs.
func (c *CapacityCurve) detect() {
	c.KneeRung, c.KneeRPS = -1, 0
	c.CliffRung, c.CliffRPS = -1, 0
	minP99 := 0.0
	for i := range c.Rungs {
		r := &c.Rungs[i]
		r.Saturated = r.AchievedRPS < r.OfferedRPS*(1-c.KneeTolerance)
		if r.Saturated && c.KneeRung < 0 {
			c.KneeRung, c.KneeRPS = i, r.OfferedRPS
		}
		if i > 0 && c.CliffRung < 0 && minP99 > 0 && r.Latency.P99us >= c.CliffFactor*minP99 {
			c.CliffRung, c.CliffRPS = i, r.OfferedRPS
		}
		if i == 0 || r.Latency.P99us < minP99 {
			minP99 = r.Latency.P99us
		}
	}
}

// WriteJSON writes the indented curve artifact.
func (c *CapacityCurve) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// WriteFile writes the curve artifact to a file.
func (c *CapacityCurve) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	if err := c.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ParseCurve decodes a curve artifact.
func ParseCurve(data []byte) (*CapacityCurve, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c CapacityCurve
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("sweep: bad curve JSON: %w", err)
	}
	return &c, nil
}

// ParseCurveFile reads and decodes a curve artifact file.
func ParseCurveFile(path string) (*CapacityCurve, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	c, err := ParseCurve(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return c, nil
}

// Summary renders the human-readable curve table the CLI prints.
func (c *CapacityCurve) Summary() string {
	var b strings.Builder
	kind := "capacity"
	if c.Axis != "" && c.Axis != AxisRate {
		kind = c.Axis
	}
	fmt.Fprintf(&b, "%s curve %s [%s] %s over %s-%d-%d (%s ladder)\n",
		kind, c.Name, c.Driver, c.Algorithm, strings.ToUpper(c.Deployment.Model), c.Deployment.N, c.Deployment.Seed, c.Mode)
	axisCol := c.Axis != "" && c.Axis != AxisRate
	if axisCol {
		fmt.Fprintf(&b, "  %10s", axisUnit(c.Axis))
	}
	fmt.Fprintf(&b, "  %10s %10s %9s %8s %8s %10s %10s\n",
		"offered/s", "achieved/s", "delivered", "cached", "dropped", "p50", "p99")
	for i, r := range c.Rungs {
		mark := " "
		if i == c.KneeRung {
			mark = "K"
		} else if r.Saturated {
			mark = "*"
		}
		if i == c.CliffRung {
			mark += "C"
		}
		if axisCol {
			// %.4g: geometric-ladder values carry float-multiply noise
			// (4.000000000000001) that would wreck the column.
			fmt.Fprintf(&b, "  %10.4g", r.AxisValue)
		}
		fmt.Fprintf(&b, "  %10.0f %10.0f %8.2f%% %7.1f%% %8d %9.1fus %9.1fus %s\n",
			r.OfferedRPS, r.AchievedRPS, 100*r.DeliveryRate, 100*r.CachedShare, r.Dropped,
			r.Latency.P50us, r.Latency.P99us, mark)
	}
	if c.KneeRung >= 0 {
		fmt.Fprintf(&b, "  knee (K): achieved fell >%.0f%% below offered at %.0f req/s\n", 100*c.KneeTolerance, c.KneeRPS)
	} else {
		fmt.Fprintf(&b, "  no knee: the driver absorbed the whole ladder\n")
	}
	if c.CliffRung >= 0 {
		fmt.Fprintf(&b, "  p99 cliff (C): >=%.0fx the light-load p99 at %.0f req/s\n", c.CliffFactor, c.CliffRPS)
	} else {
		fmt.Fprintf(&b, "  no p99 cliff observed\n")
	}
	if c.SkippedRungs > 0 {
		fmt.Fprintf(&b, "  (%d ladder rungs skipped after collapse)\n", c.SkippedRungs)
	}
	if len(c.MetricsDelta) > 0 {
		fmt.Fprintf(&b, "  metrics: %d series moved", len(c.MetricsDelta))
		if v, ok := c.MetricsDelta["wasn_routes_total"]; ok {
			fmt.Fprintf(&b, "  wasn_routes_total +%.0f", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}
