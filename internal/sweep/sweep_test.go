package sweep

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/workload"
)

// curveOf builds a curve from (offered, achieved, p99us) triples and
// runs detection — the synthetic harness for the landmark logic.
func curveOf(tol, cliff float64, rungs ...[3]float64) *CapacityCurve {
	c := &CapacityCurve{KneeTolerance: tol, CliffFactor: cliff, KneeRung: -1, CliffRung: -1}
	for _, r := range rungs {
		c.Rungs = append(c.Rungs, Rung{
			OfferedRPS:   r[0],
			AchievedRPS:  r[1],
			DeliveryRate: 1,
			Latency:      workload.Latency{P99us: r[2]},
		})
	}
	c.detect()
	return c
}

func TestDetectKneeAndCliff(t *testing.T) {
	c := curveOf(0.1, 3,
		[3]float64{1000, 1000, 10},
		[3]float64{2000, 1990, 12},
		[3]float64{4000, 3995, 14},
		[3]float64{8000, 6800, 45}, // achieved 15% below offered, p99 4.5x floor
		[3]float64{16000, 7000, 300},
	)
	if c.KneeRung != 3 || c.KneeRPS != 8000 {
		t.Fatalf("knee at rung %d (%.0f rps); want rung 3 at 8000", c.KneeRung, c.KneeRPS)
	}
	if c.CliffRung != 3 || c.CliffRPS != 8000 {
		t.Fatalf("cliff at rung %d (%.0f rps); want rung 3 at 8000", c.CliffRung, c.CliffRPS)
	}
	if !c.Rungs[3].Saturated || c.Rungs[2].Saturated {
		t.Fatalf("saturation flags wrong: %+v", c.Rungs)
	}
}

func TestDetectNoLandmarks(t *testing.T) {
	c := curveOf(0.1, 3,
		[3]float64{1000, 1000, 10},
		[3]float64{2000, 1995, 11},
		[3]float64{4000, 3990, 13},
	)
	if c.KneeRung != -1 || c.CliffRung != -1 {
		t.Fatalf("flat curve detected knee %d / cliff %d; want none", c.KneeRung, c.CliffRung)
	}
}

// TestDetectCliffUsesFloor pins that the cliff reference is the
// smallest earlier p99, not the (possibly noisy) first rung.
func TestDetectCliffUsesFloor(t *testing.T) {
	c := curveOf(0.1, 3,
		[3]float64{1000, 1000, 50}, // noisy cold rung
		[3]float64{2000, 2000, 10},
		[3]float64{4000, 4000, 29}, // 2.9x the 10us floor: no cliff
		[3]float64{8000, 8000, 31}, // 3.1x: cliff
	)
	if c.CliffRung != 3 {
		t.Fatalf("cliff at rung %d; want 3 (relative to the 10us floor)", c.CliffRung)
	}
}

func TestLadderGeometric(t *testing.T) {
	rates := ladder(500, 8000, 5)
	if len(rates) != 5 || rates[0] != 500 || rates[4] != 8000 {
		t.Fatalf("ladder endpoints wrong: %v", rates)
	}
	for i := 1; i < len(rates); i++ {
		ratio := rates[i] / rates[i-1]
		if math.Abs(ratio-2) > 1e-9 {
			t.Fatalf("ladder not geometric: %v", rates)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	base := func() *Config {
		return &Config{
			Name: "t",
			Scenario: workload.Scenario{
				Name:       "t",
				Deployment: workload.DeploymentSpec{Model: "fa", N: 100, Seed: 1},
				Algorithm:  "SLGF2",
				Arrival:    workload.Arrival{Process: workload.ArrivalPoisson, RateHz: 100, DurationMS: 100},
				Traffic:    workload.Traffic{Pattern: workload.TrafficUniform},
			},
			MinRateHz: 100, MaxRateHz: 1000, Steps: 3,
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := base()
	bad.Scenario.Arrival = workload.Arrival{Process: workload.ArrivalClosed, Requests: 10}
	if err := bad.Validate(); err == nil {
		t.Fatal("closed-loop scenario accepted for a rate sweep")
	}
	bad = base()
	bad.Steps = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("1-step ladder accepted")
	}
	bad = base()
	bad.MaxRateHz = 50
	if err := bad.Validate(); err == nil {
		t.Fatal("max < min accepted")
	}
	bad = base()
	bad.Mode = "exhaustive"
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown mode accepted")
	}
	// Defaults fill in.
	c := base()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Mode != ModeGeometric || c.KneeTolerance != 0.1 || c.CliffFactor != 3 || c.BisectIters != 3 {
		t.Fatalf("defaults not filled: %+v", c)
	}
}

// TestRunTinySweep drives a real 3-rung ladder in-process over a tiny
// deployment: every rung must populate, stay sorted, and the artifact
// must round-trip as JSON.
func TestRunTinySweep(t *testing.T) {
	cfg := &Config{
		Name: "tiny",
		Scenario: workload.Scenario{
			Name:           "tiny",
			Deployment:     workload.DeploymentSpec{Model: "fa", N: 300, Seed: 7},
			Algorithm:      "SLGF2",
			Arrival:        workload.Arrival{Process: workload.ArrivalPoisson, RateHz: 500, DurationMS: 150},
			Traffic:        workload.Traffic{Pattern: workload.TrafficUniform, Pairs: 64},
			WarmupRequests: 100,
		},
		MinRateHz: 500, MaxRateHz: 2000, Steps: 3,
	}
	var progress int
	var prog bytes.Buffer
	drv := workload.NewInProcess(serve.New(serve.Config{}))
	curve, err := Run(drv, cfg, Options{
		Progress:        func(Rung) { progress++ },
		ProgressWriter:  &prog,
		ProgressEveryMS: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Rungs) != 3 || progress != 3 {
		t.Fatalf("got %d rungs, %d progress calls; want 3/3", len(curve.Rungs), progress)
	}
	if n := strings.Count(prog.String(), "[sweep] rung"); n != 3 {
		t.Fatalf("got %d [sweep] rung progress lines; want 3:\n%s", n, prog.String())
	}
	if !strings.Contains(prog.String(), "[workload]") {
		t.Fatalf("no in-run [workload] ticker lines streamed through:\n%s", prog.String())
	}
	if curve.MetricsDelta["wasn_routes_total"] <= 0 {
		t.Fatalf("curve metrics delta missing wasn_routes_total: %v", curve.MetricsDelta)
	}
	for i, r := range curve.Rungs {
		if i > 0 && r.OfferedRPS <= curve.Rungs[i-1].OfferedRPS {
			t.Fatalf("rungs not sorted by offered rate: %+v", curve.Rungs)
		}
		if r.Requests == 0 || r.DeliveryRate < 0.9 || r.Latency.P99us <= 0 {
			t.Fatalf("rung %d implausible: %+v", i, r)
		}
	}
	// Later rungs reuse the warm cache: the share must not reset.
	if curve.Rungs[1].CachedShare < 0.3 {
		t.Fatalf("rung 1 cached share %.2f; cache should stay warm across rungs", curve.Rungs[1].CachedShare)
	}
	if curve.Summary() == "" {
		t.Fatal("empty summary")
	}
	var buf bytes.Buffer
	if err := curve.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseCurve(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rungs) != len(curve.Rungs) || back.KneeRung != curve.KneeRung {
		t.Fatalf("JSON round-trip diverged: %+v vs %+v", back, curve)
	}
}

// TestRunSweepRestoresChurn pins that a rung's churn damage is revived
// before the next rung: the final server stats must show no dead nodes.
func TestRunSweepRestoresChurn(t *testing.T) {
	cfg := &Config{
		Name: "churny",
		Scenario: workload.Scenario{
			Name:       "churny",
			Deployment: workload.DeploymentSpec{Model: "fa", N: 300, Seed: 7},
			Algorithm:  "SLGF2",
			Arrival:    workload.Arrival{Process: workload.ArrivalPoisson, RateHz: 1000, DurationMS: 200},
			Traffic:    workload.Traffic{Pattern: workload.TrafficConvergecast, Sinks: 3},
			Churn:      []workload.ChurnEvent{{AtMS: 80, FailRandom: 3}},
		},
		MinRateHz: 1000, MaxRateHz: 2000, Steps: 2,
	}
	drv := workload.NewInProcess(serve.New(serve.Config{}))
	curve, err := Run(drv, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Rungs) != 2 {
		t.Fatalf("got %d rungs; want 2", len(curve.Rungs))
	}
	st, err := drv.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range st.PerDeployment {
		if d.FailedNodes != 0 {
			t.Fatalf("deployment %s still has %d dead nodes after the sweep", d.Name, d.FailedNodes)
		}
	}
}

func TestCompare(t *testing.T) {
	baseline := curveOf(0.1, 3,
		[3]float64{1000, 1000, 10},
		[3]float64{2000, 2000, 12},
		[3]float64{4000, 3500, 40}, // knee
	)
	baseline.Rungs[2].DeliveryRate = 0.98

	t.Run("pass", func(t *testing.T) {
		cur := curveOf(0.1, 3,
			[3]float64{1000, 1000, 11},
			[3]float64{2000, 2000, 13},
			[3]float64{4000, 3600, 44},
		)
		cur.Rungs[2].DeliveryRate = 0.97
		if regs := Compare(cur, baseline, Tolerance{}); len(regs) != 0 {
			t.Fatalf("clean curve flagged: %v", regs)
		}
	})
	t.Run("p99 regression", func(t *testing.T) {
		cur := curveOf(0.1, 3,
			[3]float64{1000, 1000, 10},
			[3]float64{2000, 2000, 12},
			[3]float64{4000, 3500, 80}, // 2x the baseline p99 at the knee
		)
		cur.Rungs[2].DeliveryRate = 0.98
		if regs := Compare(cur, baseline, Tolerance{}); len(regs) == 0 {
			t.Fatal("2x p99 at the knee rung not flagged")
		}
	})
	t.Run("delivery regression", func(t *testing.T) {
		cur := curveOf(0.1, 3,
			[3]float64{1000, 1000, 10},
			[3]float64{2000, 2000, 12},
			[3]float64{4000, 3500, 40},
		)
		cur.Rungs[2].DeliveryRate = 0.5
		if regs := Compare(cur, baseline, Tolerance{}); len(regs) == 0 {
			t.Fatal("halved delivery at the knee rung not flagged")
		}
	})
	t.Run("knee shrink", func(t *testing.T) {
		cur := curveOf(0.1, 3,
			[3]float64{1000, 1000, 10},
			[3]float64{2000, 1500, 12}, // knee two rungs early
			[3]float64{4000, 1800, 40},
		)
		cur.Rungs[2].DeliveryRate = 0.98
		if regs := Compare(cur, baseline, Tolerance{}); len(regs) == 0 {
			t.Fatal("knee moving from 4000 to 2000 req/s not flagged")
		}
	})
	t.Run("normalized p99 cancels machine speed", func(t *testing.T) {
		// Every latency 3x worse — a slower machine, same curve shape.
		cur := curveOf(0.1, 3,
			[3]float64{1000, 1000, 30},
			[3]float64{2000, 2000, 36},
			[3]float64{4000, 3500, 120},
		)
		cur.Rungs[2].DeliveryRate = 0.98
		if regs := Compare(cur, baseline, Tolerance{Normalize: true}); len(regs) != 0 {
			t.Fatalf("uniformly slower machine flagged under Normalize: %v", regs)
		}
		if regs := Compare(cur, baseline, Tolerance{}); len(regs) == 0 {
			t.Fatal("sanity: absolute comparison should flag the 3x machine")
		}
	})
	t.Run("ladder mismatch", func(t *testing.T) {
		cur := curveOf(0.1, 3, [3]float64{700, 700, 10})
		if regs := Compare(cur, baseline, Tolerance{}); len(regs) == 0 {
			t.Fatal("missing anchor rung not flagged")
		}
	})
	t.Run("new knee under knee-less baseline", func(t *testing.T) {
		// The CI baseline never saturates (KneeRung -1); a curve that
		// now saturates anywhere in the shared ladder must be flagged
		// even though the knee-shrink band has nothing to anchor on.
		flat := curveOf(0.1, 3,
			[3]float64{1000, 1000, 10},
			[3]float64{2000, 2000, 12},
			[3]float64{4000, 4000, 14},
		)
		collapsed := curveOf(0.1, 3,
			[3]float64{1000, 1000, 10},
			[3]float64{2000, 2000, 12},
			[3]float64{4000, 3000, 14}, // saturates; delivery of processed stays 1.0
		)
		regs := Compare(collapsed, flat, Tolerance{})
		if len(regs) == 0 {
			t.Fatal("capacity collapse with clean delivery not flagged against a knee-less baseline")
		}
		sheds := curveOf(0.1, 3,
			[3]float64{1000, 1000, 10},
			[3]float64{2000, 2000, 12},
			[3]float64{4000, 4000, 14},
		)
		sheds.Rungs[2].Dropped = 500
		if regs := Compare(sheds, flat, Tolerance{}); len(regs) == 0 {
			t.Fatal("shedding at the anchor rung not flagged")
		}
	})
	t.Run("nearest rung matches bisected anchors", func(t *testing.T) {
		// A bisect-mode comparison curve's refined rungs land near, not
		// on, the baseline's rates; within 10% the nearest rung anchors.
		cur := curveOf(0.1, 3,
			[3]float64{1000, 1000, 10},
			[3]float64{2000, 2000, 12},
			[3]float64{3850, 3400, 42},
		)
		cur.Rungs[2].DeliveryRate = 0.98
		if regs := Compare(cur, baseline, Tolerance{}); len(regs) != 0 {
			t.Fatalf("3850 rung should anchor against the 4000 baseline knee: %v", regs)
		}
	})
}

func TestImprovements(t *testing.T) {
	baseline := curveOf(0.1, 3,
		[3]float64{1000, 1000, 10},
		[3]float64{2000, 2000, 12},
		[3]float64{4000, 3500, 40}, // knee
	)

	t.Run("same curve reports nothing", func(t *testing.T) {
		cur := curveOf(0.1, 3,
			[3]float64{1000, 1000, 10},
			[3]float64{2000, 2000, 12},
			[3]float64{4000, 3500, 42},
		)
		if imps := Improvements(cur, baseline, Tolerance{}); len(imps) != 0 {
			t.Fatalf("unchanged curve reported improvements: %v", imps)
		}
	})
	t.Run("knee gone", func(t *testing.T) {
		cur := curveOf(0.1, 3,
			[3]float64{1000, 1000, 10},
			[3]float64{2000, 2000, 12},
			[3]float64{4000, 4000, 14}, // absorbs the whole ladder
		)
		if imps := Improvements(cur, baseline, Tolerance{}); len(imps) == 0 {
			t.Fatal("vanished knee not reported")
		}
	})
	t.Run("knee up beyond band", func(t *testing.T) {
		withKnee := curveOf(0.1, 3,
			[3]float64{1000, 1000, 10},
			[3]float64{2000, 1700, 12}, // knee at 2000
			[3]float64{4000, 2000, 40},
		)
		cur := curveOf(0.1, 3,
			[3]float64{1000, 1000, 10},
			[3]float64{2000, 2000, 12},
			[3]float64{4000, 3500, 40}, // knee at 4000: 2x up
		)
		if imps := Improvements(cur, withKnee, Tolerance{}); len(imps) == 0 {
			t.Fatal("knee doubling not reported")
		}
	})
	t.Run("p99 drop at the anchor", func(t *testing.T) {
		cur := curveOf(0.1, 3,
			[3]float64{1000, 1000, 10},
			[3]float64{2000, 2000, 11},
			[3]float64{4000, 3500, 15}, // well under 40*(1-0.25)
		)
		if imps := Improvements(cur, baseline, Tolerance{}); len(imps) == 0 {
			t.Fatal("anchor p99 drop not reported")
		}
	})
	t.Run("improvements never flag regressions", func(t *testing.T) {
		cur := curveOf(0.1, 3,
			[3]float64{1000, 1000, 10},
			[3]float64{2000, 1500, 80}, // strictly worse everywhere
			[3]float64{4000, 1600, 300},
		)
		if imps := Improvements(cur, baseline, Tolerance{}); len(imps) != 0 {
			t.Fatalf("worse curve reported improvements: %v", imps)
		}
	})
}

// TestCompareTolerancesJSON pins that the Tolerance wire form decodes
// (the perf-gate reads it from flags, but keep the struct stable).
func TestCompareTolerancesJSON(t *testing.T) {
	var tol Tolerance
	if err := json.Unmarshal([]byte(`{"p99_frac":0.5,"normalize":true}`), &tol); err != nil {
		t.Fatal(err)
	}
	if tol.P99Frac != 0.5 || !tol.Normalize {
		t.Fatalf("tolerance decoded wrong: %+v", tol)
	}
}
