// Package sweep locates a deployment's capacity envelope: it runs one
// scenario at a ladder of offered rates through internal/workload,
// collects each rung's achieved throughput, latency quantiles,
// delivery rate, and cached share into a CapacityCurve, and detects
// the two operating-point landmarks a single load run cannot see —
// the capacity knee (the first rung where achieved throughput falls a
// tolerance fraction below the offered rate) and the p99 cliff (the
// first rung whose p99 latency explodes relative to the light-load
// floor).
//
// Ladders are geometric between MinRateHz and MaxRateHz; "bisect" mode
// additionally refines the knee by adaptive bisection between the last
// unsaturated and first saturated rung. Curves serialize to one JSON
// artifact comparable across builds: Compare checks a fresh curve
// against a checked-in baseline with tolerance bands, which is exactly
// what the CI perf-gate job does (see .github/workflows/ci.yml).
//
// cmd/wasnd exposes the engine as `wasnd -sweep config.json`; a config
// example lives in examples/scenarios/.
package sweep
