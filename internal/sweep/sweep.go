package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/straightpath/wasn/internal/obs"
	"github.com/straightpath/wasn/internal/topo"
	"github.com/straightpath/wasn/internal/workload"
)

// Ladder modes.
const (
	ModeGeometric = "geometric"
	ModeBisect    = "bisect"
)

// Sweep axes: which scenario knob the ladder walks.
const (
	// AxisRate sweeps the open-loop offered rate (the capacity curve).
	AxisRate = "rate"
	// AxisChurn sweeps the Poisson churn process's fail rate, scaling
	// the revive rate proportionally — the delivery-under-churn curve.
	AxisChurn = "churn"
	// AxisDrift sweeps the mobility schedule's drift fraction.
	AxisDrift = "drift"
	// AxisCoverage sweeps the obstacle-field coverage, redeploying per
	// rung (each coverage is a different topology).
	AxisCoverage = "coverage"
)

// Config describes one sweep: a base scenario with one knob — offered
// rate by default, or churn rate / drift fraction / obstacle coverage —
// swept over a ladder of values.
type Config struct {
	// Name labels the curve artifact.
	Name string `json:"name"`
	// Scenario is the base workload; its arrival process must be
	// open-loop (poisson or bursty).
	Scenario workload.Scenario `json:"scenario"`
	// Axis selects the swept knob (default "rate"). Non-rate axes hold
	// the offered rate fixed at the scenario's rate_hz and ladder over
	// min_value..max_value instead of min_rate_hz..max_rate_hz: "churn"
	// needs a churn_process in the scenario, "drift" a mobility block,
	// "coverage" an obstacle-field (ob) deployment.
	Axis string `json:"axis,omitempty"`
	// MinRateHz..MaxRateHz bound the rate ladder (axis "rate" only).
	MinRateHz float64 `json:"min_rate_hz,omitempty"`
	MaxRateHz float64 `json:"max_rate_hz,omitempty"`
	// MinValue..MaxValue bound the ladder for non-rate axes.
	MinValue float64 `json:"min_value,omitempty"`
	MaxValue float64 `json:"max_value,omitempty"`
	// Steps is the geometric ladder's rung count (>= 2).
	Steps int `json:"steps"`
	// Mode is "geometric" (default) or "bisect" — geometric ladder plus
	// adaptive bisection refining the knee between the last unsaturated
	// and first saturated rung.
	Mode string `json:"mode,omitempty"`
	// BisectIters is the number of bisection refinements (default 3).
	BisectIters int `json:"bisect_iters,omitempty"`
	// RungDurationMS overrides the scenario's duration per rung.
	RungDurationMS int `json:"rung_duration_ms,omitempty"`
	// KneeTolerance is the saturation band: a rung is saturated when
	// achieved < offered × (1 − KneeTolerance). Default 0.1.
	KneeTolerance float64 `json:"knee_tolerance,omitempty"`
	// CliffFactor flags the p99 cliff: the first rung whose p99 is at
	// least CliffFactor × the smallest p99 of any earlier rung. Default 3.
	CliffFactor float64 `json:"cliff_factor,omitempty"`
	// StopOnCollapse ends the ladder early once a rung achieves less
	// than half its offered rate — the curve past total collapse only
	// costs wall-clock. The curve records how many rungs were skipped.
	StopOnCollapse bool `json:"stop_on_collapse,omitempty"`
}

// Validate checks the config and fills defaults.
func (c *Config) Validate() error {
	if c.Name == "" {
		c.Name = c.Scenario.Name
	}
	p := c.Scenario.Arrival.Process
	if p != workload.ArrivalPoisson && p != workload.ArrivalBursty {
		return fmt.Errorf("sweep: arrival process %q is not open-loop (the sweep axis is rate_hz)", p)
	}
	if c.RungDurationMS > 0 {
		c.Scenario.Arrival.DurationMS = c.RungDurationMS
	}
	if c.Axis == "" {
		c.Axis = AxisRate
	}
	if c.Scenario.Arrival.RateHz == 0 && c.Axis == AxisRate {
		c.Scenario.Arrival.RateHz = c.MinRateHz
	}
	if err := c.Scenario.Validate(); err != nil {
		return err
	}
	switch c.Axis {
	case AxisRate:
		if c.MinRateHz <= 0 || c.MaxRateHz < c.MinRateHz {
			return fmt.Errorf("sweep: need 0 < min_rate_hz <= max_rate_hz, got [%v, %v]", c.MinRateHz, c.MaxRateHz)
		}
	case AxisChurn, AxisDrift, AxisCoverage:
		if c.Scenario.Arrival.RateHz <= 0 {
			return fmt.Errorf("sweep: axis %q holds the offered rate fixed; set the scenario's rate_hz", c.Axis)
		}
		if c.MinValue <= 0 || c.MaxValue < c.MinValue {
			return fmt.Errorf("sweep: need 0 < min_value <= max_value, got [%v, %v]", c.MinValue, c.MaxValue)
		}
		if c.Mode == ModeBisect {
			return fmt.Errorf("sweep: bisect mode refines the rate knee; axis %q supports only the geometric ladder", c.Axis)
		}
		switch c.Axis {
		case AxisChurn:
			if c.Scenario.ChurnProcess == nil || c.Scenario.ChurnProcess.FailRateHz <= 0 {
				return fmt.Errorf("sweep: axis churn sweeps the scenario's churn_process fail rate; none configured")
			}
		case AxisDrift:
			if c.Scenario.Mobility == nil {
				return fmt.Errorf("sweep: axis drift sweeps the scenario's mobility drift fraction; no mobility block configured")
			}
			if c.MaxValue > 1 {
				return fmt.Errorf("sweep: drift fraction max_value %v exceeds 1", c.MaxValue)
			}
		case AxisCoverage:
			if !strings.EqualFold(c.Scenario.Deployment.Model, "ob") {
				return fmt.Errorf("sweep: axis coverage needs an obstacle-field (ob) deployment, got %q", c.Scenario.Deployment.Model)
			}
			if c.MaxValue >= 1 {
				return fmt.Errorf("sweep: obstacle coverage max_value %v must stay below 1", c.MaxValue)
			}
		}
	default:
		return fmt.Errorf("sweep: unknown axis %q (want %s, %s, %s, or %s)", c.Axis, AxisRate, AxisChurn, AxisDrift, AxisCoverage)
	}
	if c.Steps < 2 {
		return fmt.Errorf("sweep: need steps >= 2, got %d", c.Steps)
	}
	switch c.Mode {
	case "":
		c.Mode = ModeGeometric
	case ModeGeometric, ModeBisect:
	default:
		return fmt.Errorf("sweep: unknown mode %q (want %s or %s)", c.Mode, ModeGeometric, ModeBisect)
	}
	if c.BisectIters <= 0 {
		c.BisectIters = 3
	}
	if c.KneeTolerance <= 0 {
		c.KneeTolerance = 0.1
	}
	if c.CliffFactor <= 1 {
		c.CliffFactor = 3
	}
	return nil
}

// ParseConfig strictly decodes a sweep config JSON document and
// validates it.
func ParseConfig(data []byte) (*Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("sweep: bad config JSON: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// ParseConfigFile reads and parses a sweep config file.
func ParseConfigFile(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	c, err := ParseConfig(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return c, nil
}

// Options tune a sweep run.
type Options struct {
	// Progress, when non-nil, is called after each rung completes.
	Progress func(r Rung)
	// ProgressWriter, when non-nil, streams live progress while the
	// ladder runs: one "[sweep]" line as each rung completes, plus the
	// workload engine's in-run ticker lines for the rung in flight.
	ProgressWriter io.Writer
	// ProgressEveryMS is the in-run ticker period forwarded to the
	// workload engine (default 1000).
	ProgressEveryMS int
}

// progressf emits one live "[sweep]" progress line, if streaming.
func (o Options) progressf(format string, args ...any) {
	if o.ProgressWriter != nil {
		fmt.Fprintf(o.ProgressWriter, "[sweep] "+format+"\n", args...)
	}
}

// Run executes the ladder against one driver and assembles the curve.
// All rungs share the driver (and therefore the deployment and its
// route cache — the cached share per rung is part of the curve); any
// churn a rung leaves behind is revived before the next rung so every
// rung starts from the pristine topology.
func Run(drv workload.Driver, cfg *Config, opt Options) (*CapacityCurve, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	curve := &CapacityCurve{
		Name:          cfg.Name,
		Scenario:      cfg.Scenario.Name,
		Driver:        drv.Name(),
		Deployment:    cfg.Scenario.Deployment,
		Algorithm:     cfg.Scenario.Algorithm,
		Axis:          cfg.Axis,
		Mode:          cfg.Mode,
		KneeTolerance: cfg.KneeTolerance,
		CliffFactor:   cfg.CliffFactor,
	}

	// The whole-ladder metrics delta: scraped once before the first
	// rung and once after the last, so the curve records what the sweep
	// as a whole did to the server (a failed before-scrape disables the
	// delta rather than failing the sweep).
	before, beforeErr := drv.ScrapeMetrics()
	curve.StartUnixMs = time.Now().UnixMilli()

	lo, hi := cfg.MinRateHz, cfg.MaxRateHz
	if cfg.Axis != AxisRate {
		lo, hi = cfg.MinValue, cfg.MaxValue
	}
	for i, v := range ladder(lo, hi, cfg.Steps) {
		r, err := runRung(drv, cfg, v, i, opt)
		if err != nil {
			return nil, err
		}
		curve.Rungs = append(curve.Rungs, r)
		opt.progressf("rung %d/%d @%g %s: achieved %.0f req/s, delivered %.2f%%, p99=%.1fus",
			i+1, cfg.Steps, v, axisUnit(cfg.Axis), r.AchievedRPS, 100*r.DeliveryRate, r.Latency.P99us)
		if opt.Progress != nil {
			opt.Progress(r)
		}
		// Collapse cuts the ladder short: rate rungs collapse by failing
		// to achieve the offered rate, non-rate rungs (fixed rate) by
		// delivery falling through the floor.
		collapsed := r.AchievedRPS < r.OfferedRPS/2
		if cfg.Axis != AxisRate {
			collapsed = r.DeliveryRate < 0.5
		}
		if cfg.StopOnCollapse && collapsed {
			curve.SkippedRungs = cfg.Steps - i - 1
			opt.progressf("collapse at %g %s: skipping %d remaining rungs", v, axisUnit(cfg.Axis), curve.SkippedRungs)
			break
		}
	}

	curve.detect()
	if cfg.Mode == ModeBisect && curve.KneeRung > 0 {
		if err := bisect(drv, cfg, curve, opt); err != nil {
			return nil, err
		}
	}
	if beforeErr == nil {
		if after, err := drv.ScrapeMetrics(); err == nil {
			curve.MetricsDelta = obs.Delta(before, after)
		}
	}
	// The flight-recorder view of the whole ladder; both degrade to
	// absent on drivers without the surfaces.
	if win, err := drv.Timeline(); err == nil && len(win.TUnixMS) > 0 {
		curve.SampledTimeline = &win
	}
	if evs, err := drv.Events(0); err == nil {
		for _, ev := range evs {
			if ev.UnixMS >= curve.StartUnixMs {
				curve.Journal = append(curve.Journal, ev)
			}
		}
	}
	return curve, nil
}

// ladder returns the geometric rate ladder, endpoints included.
func ladder(lo, hi float64, steps int) []float64 {
	rates := make([]float64, steps)
	ratio := hi / lo
	for i := range rates {
		rates[i] = lo * math.Pow(ratio, float64(i)/float64(steps-1))
	}
	rates[steps-1] = hi
	return rates
}

// axisUnit names a swept value's unit for progress lines and summaries.
func axisUnit(axis string) string {
	switch axis {
	case AxisChurn:
		return "fail/s"
	case AxisDrift:
		return "drift"
	case AxisCoverage:
		return "coverage"
	default:
		return "req/s"
	}
}

// runRung executes the base scenario at one swept value and distills
// the rung. The scenario value is copied per rung (Run mutates it);
// the churn schedule is shared read-only and any nodes it left dead
// are revived afterwards.
func runRung(drv workload.Driver, cfg *Config, v float64, idx int, opt Options) (Rung, error) {
	sc := cfg.Scenario // copy
	sc.Name = fmt.Sprintf("%s@%g", cfg.Scenario.Name, v)
	sc.Churn = append([]workload.ChurnEvent(nil), cfg.Scenario.Churn...)
	switch cfg.Axis {
	case AxisChurn:
		// Scale fail and revive rates together so the swept value moves
		// churn *pressure*, not the dead-population equilibrium shape.
		cp := *cfg.Scenario.ChurnProcess
		scale := v / cp.FailRateHz
		cp.FailRateHz = v
		cp.ReviveRateHz *= scale
		sc.ChurnProcess = &cp
	case AxisDrift:
		mb := *cfg.Scenario.Mobility
		mb.DriftFraction = v
		sc.Mobility = &mb
	case AxisCoverage:
		// Each coverage is a different topology: clear any explicit
		// deployment name so the driver default-names (and builds) a
		// distinct deployment per rung instead of silently reusing the
		// first rung's network.
		sc.Deployment.Coverage = v
		sc.Deployment.Name = ""
	default:
		sc.Arrival.RateHz = v
	}
	if idx > 0 && cfg.Axis != AxisCoverage {
		// The first rung paid the build and primed the cache; repeating
		// the warmup every rung would only re-skew the cached share.
		// (Coverage rungs deploy fresh topologies, so each keeps its
		// warmup.)
		sc.WarmupRequests = 0
	}
	rep, err := workload.RunWith(drv, &sc, workload.Options{
		Progress:        opt.ProgressWriter,
		ProgressEveryMS: opt.ProgressEveryMS,
	})
	if err != nil {
		return Rung{}, fmt.Errorf("sweep: rung at %g %s: %w", v, axisUnit(cfg.Axis), err)
	}
	if err := reviveResidual(drv, rep); err != nil {
		return Rung{}, fmt.Errorf("sweep: restoring topology after rung at %g %s: %w", v, axisUnit(cfg.Axis), err)
	}
	return Rung{
		AxisValue:    v,
		OfferedRPS:   rep.OfferedRPS,
		AchievedRPS:  rep.ThroughputRPS,
		Requests:     rep.Requests,
		Dropped:      rep.Dropped,
		Errors:       rep.Errors,
		DeliveryRate: rep.DeliveryRate,
		MovedNodes:   rep.MovedNodes,
		CachedShare:  rep.CachedShare,
		Latency:      rep.Latency,
		ElapsedMS:    rep.ElapsedMS,
	}, nil
}

// reviveResidual brings back every node the rung's churn schedule left
// dead, so rungs stay comparable.
func reviveResidual(drv workload.Driver, rep *workload.Report) error {
	dead := map[topo.NodeID]bool{}
	for _, ev := range rep.Churn {
		for _, u := range ev.Failed {
			dead[u] = true
		}
		for _, u := range ev.Revived {
			delete(dead, u)
		}
	}
	if len(dead) == 0 {
		return nil
	}
	nodes := make([]topo.NodeID, 0, len(dead))
	for u := range dead {
		nodes = append(nodes, u)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return drv.Revive(rep.Deployment, nodes)
}

// bisect refines the knee between the last unsaturated and first
// saturated rung, re-detecting landmarks after each inserted rung.
func bisect(drv workload.Driver, cfg *Config, curve *CapacityCurve, opt Options) error {
	for i := 0; i < cfg.BisectIters; i++ {
		k := curve.KneeRung
		if k <= 0 {
			return nil
		}
		lo, hi := curve.Rungs[k-1].OfferedRPS, curve.Rungs[k].OfferedRPS
		mid := math.Sqrt(lo * hi) // geometric midpoint, matching the ladder
		if hi/lo < 1.05 {
			return nil // knee bracketed within 5%, good enough
		}
		r, err := runRung(drv, cfg, mid, 1, opt)
		if err != nil {
			return err
		}
		curve.Rungs = append(curve.Rungs, r)
		opt.progressf("bisect %d/%d @%.0f req/s: achieved %.0f, p99=%.1fus",
			i+1, cfg.BisectIters, mid, r.AchievedRPS, r.Latency.P99us)
		sort.Slice(curve.Rungs, func(a, b int) bool { return curve.Rungs[a].OfferedRPS < curve.Rungs[b].OfferedRPS })
		curve.detect()
		if opt.Progress != nil {
			opt.Progress(r)
		}
	}
	return nil
}
