package sweep

import (
	"fmt"
	"math"
)

// Tolerance bands a curve comparison. Zero fields default to 0.25
// (fail on >25% regression), the CI perf-gate band.
type Tolerance struct {
	// P99Frac is the allowed fractional p99 increase at the compared
	// rung.
	P99Frac float64 `json:"p99_frac,omitempty"`
	// DeliveryFrac is the allowed fractional delivery-rate decrease.
	DeliveryFrac float64 `json:"delivery_frac,omitempty"`
	// KneeFrac is the allowed fractional decrease of the knee rate
	// (capacity shrink).
	KneeFrac float64 `json:"knee_frac,omitempty"`
	// Normalize compares p99 as a multiple of each curve's own first
	// (lightest) rung instead of absolutely. Absolute microseconds are
	// machine-speed-dependent; the normalized ratio — how much latency
	// degrades between light load and the compared rung — is the shape
	// of the curve and transfers across hosts, so the CI gate uses it.
	Normalize bool `json:"normalize,omitempty"`
}

func (t *Tolerance) defaults() {
	if t.P99Frac <= 0 {
		t.P99Frac = 0.25
	}
	if t.DeliveryFrac <= 0 {
		t.DeliveryFrac = 0.25
	}
	if t.KneeFrac <= 0 {
		t.KneeFrac = 0.25
	}
}

// Compare checks a freshly measured curve against a baseline and
// returns one message per regression outside the tolerance bands
// (empty: the gate passes). The comparison anchors at the baseline's
// knee rung — the last operating point that matters — falling back to
// the baseline's top rung when the baseline never saturated, and also
// flags a knee that moved down by more than the knee band.
func Compare(cur, base *CapacityCurve, tol Tolerance) []string {
	tol.defaults()
	var regressions []string
	if len(base.Rungs) == 0 || len(cur.Rungs) == 0 {
		return []string{"sweep: empty curve"}
	}

	anchor := base.KneeRung
	if anchor < 0 {
		anchor = len(base.Rungs) - 1
	}
	bR := base.Rungs[anchor]
	at := fmt.Sprintf("%g %s", rungAnchor(base.Axis, &bR), axisUnit(base.Axis))
	cR := matchRung(cur, rungAnchor(base.Axis, &bR))
	if cR == nil {
		regressions = append(regressions,
			fmt.Sprintf("no rung at the baseline's %s anchor (ladders diverged)", at))
		return regressions
	}

	baseP99, curP99 := bR.Latency.P99us, cR.Latency.P99us
	unit := "us"
	if tol.Normalize {
		b0, c0 := base.Rungs[0].Latency.P99us, cur.Rungs[0].Latency.P99us
		if b0 > 0 && c0 > 0 {
			baseP99, curP99 = baseP99/b0, curP99/c0
			unit = "x light-load p99"
		}
	}
	if baseP99 > 0 && curP99 > baseP99*(1+tol.P99Frac) {
		regressions = append(regressions,
			fmt.Sprintf("p99 at %s regressed %.1f%% (%.2f -> %.2f %s, band %.0f%%)",
				at, 100*(curP99/baseP99-1), baseP99, curP99, unit, 100*tol.P99Frac))
	}
	if cR.DeliveryRate < bR.DeliveryRate*(1-tol.DeliveryFrac) {
		regressions = append(regressions,
			fmt.Sprintf("delivery at %s regressed %.1f%% (%.4f -> %.4f, band %.0f%%)",
				at, 100*(1-cR.DeliveryRate/bR.DeliveryRate), bR.DeliveryRate, cR.DeliveryRate, 100*tol.DeliveryFrac))
	}
	// Capacity checks. Delivery above only covers processed requests;
	// a collapse sheds or under-achieves instead, so the anchor rung
	// saturating (or shedding) where the baseline's did not is its own
	// regression — this is the live check when the baseline never
	// saturated (KneeRung -1) and the knee-shrink band can't anchor.
	if (cR.Saturated || cR.Dropped > 0) && !bR.Saturated && bR.Dropped == 0 {
		regressions = append(regressions,
			fmt.Sprintf("capacity at %s collapsed: achieved %.0f, shed %d (baseline achieved %.0f cleanly)",
				at, cR.AchievedRPS, cR.Dropped, bR.AchievedRPS))
	}
	switch {
	case base.KneeRung < 0 && cur.KneeRung >= 0:
		regressions = append(regressions,
			fmt.Sprintf("curve now has a capacity knee at %.0f req/s; the baseline absorbed its whole ladder", cur.KneeRPS))
	case base.KneeRung >= 0 && cur.KneeRung >= 0 && cur.KneeRPS < base.KneeRPS*(1-tol.KneeFrac):
		regressions = append(regressions,
			fmt.Sprintf("capacity knee moved down %.1f%% (%.0f -> %.0f req/s, band %.0f%%)",
				100*(1-cur.KneeRPS/base.KneeRPS), base.KneeRPS, cur.KneeRPS, 100*tol.KneeFrac))
	}
	return regressions
}

// Improvements is Compare's mirror image: it returns one message per
// envelope expansion outside the same tolerance bands — the knee
// disappearing, the knee rate rising beyond the knee band, or the
// anchor-rung p99 dropping beyond the p99 band. An improvement never
// fails a gate; it means the checked-in baseline now undersells the
// system, so future regressions up to the improvement size would pass
// unnoticed. The CI perf-gate surfaces these as a notice telling the
// author to regenerate the baseline (.github/perf/README.md has the
// recipe).
func Improvements(cur, base *CapacityCurve, tol Tolerance) []string {
	tol.defaults()
	if len(base.Rungs) == 0 || len(cur.Rungs) == 0 {
		return nil
	}
	var improvements []string

	anchor := base.KneeRung
	if anchor < 0 {
		anchor = len(base.Rungs) - 1
	}
	bR := base.Rungs[anchor]
	at := fmt.Sprintf("%g %s", rungAnchor(base.Axis, &bR), axisUnit(base.Axis))
	if cR := matchRung(cur, rungAnchor(base.Axis, &bR)); cR != nil {
		baseP99, curP99 := bR.Latency.P99us, cR.Latency.P99us
		unit := "us"
		if tol.Normalize {
			b0, c0 := base.Rungs[0].Latency.P99us, cur.Rungs[0].Latency.P99us
			if b0 > 0 && c0 > 0 {
				baseP99, curP99 = baseP99/b0, curP99/c0
				unit = "x light-load p99"
			}
		}
		if baseP99 > 0 && curP99 < baseP99*(1-tol.P99Frac) {
			improvements = append(improvements,
				fmt.Sprintf("p99 at %s improved %.1f%% (%.2f -> %.2f %s, band %.0f%%)",
					at, 100*(1-curP99/baseP99), baseP99, curP99, unit, 100*tol.P99Frac))
		}
	}
	switch {
	case base.KneeRung >= 0 && cur.KneeRung < 0:
		improvements = append(improvements,
			fmt.Sprintf("capacity knee gone: the baseline saturated at %.0f req/s, this curve absorbed its whole ladder", base.KneeRPS))
	case base.KneeRung >= 0 && cur.KneeRung >= 0 && cur.KneeRPS > base.KneeRPS*(1+tol.KneeFrac):
		improvements = append(improvements,
			fmt.Sprintf("capacity knee moved up %.1f%% (%.0f -> %.0f req/s, band %.0f%%)",
				100*(cur.KneeRPS/base.KneeRPS-1), base.KneeRPS, cur.KneeRPS, 100*tol.KneeFrac))
	}
	return improvements
}

// rungAnchor is the value rungs are matched on between curves: the
// swept axis value for non-rate curves, the offered rate otherwise
// (curves predating axes carry no axis_value and match on rate).
func rungAnchor(axis string, r *Rung) float64 {
	if axis != "" && axis != AxisRate {
		return r.AxisValue
	}
	return r.OfferedRPS
}

// matchRung finds the rung nearest an anchor value, within 10%
// relative. Exact for shared geometric ladders; approximate by design
// for bisect-mode baselines, whose refined rung rates depend on each
// run's measured saturation bracket and never line up exactly.
func matchRung(c *CapacityCurve, anchor float64) *Rung {
	var best *Rung
	bestGap := 0.10 * anchor
	for i := range c.Rungs {
		if gap := math.Abs(rungAnchor(c.Axis, &c.Rungs[i]) - anchor); gap <= bestGap {
			best, bestGap = &c.Rungs[i], gap
		}
	}
	return best
}
