package sweep

import (
	"bytes"
	"strings"
	"testing"

	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/workload"
)

// mobileBase is a hostile-geometry base scenario for the non-rate
// axes: an obstacle field, a Poisson churn process, and a mobility
// schedule, at a fixed offered rate.
func mobileBase() workload.Scenario {
	return workload.Scenario{
		Name:           "hostile",
		Deployment:     workload.DeploymentSpec{Model: "ob", N: 220, Seed: 5, Coverage: 0.15},
		Algorithm:      "SLGF2",
		Arrival:        workload.Arrival{Process: workload.ArrivalPoisson, RateHz: 1200, DurationMS: 250},
		Traffic:        workload.Traffic{Pattern: workload.TrafficConvergecast, Sinks: 3},
		ChurnProcess:   &workload.ChurnProcess{Process: "poisson", FailRateHz: 4, ReviveRateHz: 2},
		Mobility:       &workload.Mobility{Sinks: 1, DriftFraction: 0.01, IntervalMS: 100},
		WarmupRequests: 50,
		Seed:           13,
	}
}

// TestChurnAxisSweep drives a 3-rung delivery-under-churn ladder: the
// swept value must land in axis_value, the offered rate must stay
// fixed, and the revive rate must scale with the fail rate.
func TestChurnAxisSweep(t *testing.T) {
	cfg := &Config{
		Name:     "churn-axis",
		Scenario: mobileBase(),
		Axis:     AxisChurn,
		MinValue: 2, MaxValue: 8, Steps: 3,
	}
	drv := workload.NewInProcess(serve.New(serve.Config{}))
	curve, err := Run(drv, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if curve.Axis != AxisChurn {
		t.Fatalf("curve axis %q; want %q", curve.Axis, AxisChurn)
	}
	if len(curve.Rungs) != 3 {
		t.Fatalf("got %d rungs; want 3", len(curve.Rungs))
	}
	wantVals := []float64{2, 4, 8}
	for i, r := range curve.Rungs {
		if diff := r.AxisValue - wantVals[i]; diff < -1e-9 || diff > 1e-9 {
			t.Fatalf("rung %d axis value %g; want %g", i, r.AxisValue, wantVals[i])
		}
		if r.OfferedRPS != 1200 {
			t.Fatalf("rung %d offered %.0f; churn axis must hold the rate at 1200", i, r.OfferedRPS)
		}
		if r.Requests == 0 || r.DeliveryRate <= 0 {
			t.Fatalf("rung %d implausible: %+v", i, r)
		}
		if r.MovedNodes == 0 {
			t.Fatalf("rung %d recorded no mobility; the schedule should have run", i)
		}
	}
	if !strings.Contains(curve.Summary(), "churn curve") || !strings.Contains(curve.Summary(), "fail/s") {
		t.Fatalf("summary lacks axis labeling:\n%s", curve.Summary())
	}
	// The artifact must round-trip with the axis intact.
	var buf bytes.Buffer
	if err := curve.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseCurve(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Axis != AxisChurn || back.Rungs[2].AxisValue != curve.Rungs[2].AxisValue {
		t.Fatalf("JSON round-trip dropped the axis: %+v", back)
	}
	// Compare must anchor non-rate curves on the axis value.
	if regs := Compare(back, curve, Tolerance{}); len(regs) != 0 {
		t.Fatalf("curve regressed against itself: %v", regs)
	}
}

// TestCoverageAxisDeploysPerRung pins that each coverage rung builds a
// distinct deployment rather than silently reusing the first rung's
// topology under a shared name.
func TestCoverageAxisDeploysPerRung(t *testing.T) {
	sc := mobileBase()
	sc.ChurnProcess = nil
	sc.Mobility = nil
	cfg := &Config{
		Name:     "coverage-axis",
		Scenario: sc,
		Axis:     AxisCoverage,
		MinValue: 0.1, MaxValue: 0.3, Steps: 2,
	}
	drv := workload.NewInProcess(serve.New(serve.Config{}))
	curve, err := Run(drv, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Rungs) != 2 {
		t.Fatalf("got %d rungs; want 2", len(curve.Rungs))
	}
	st, err := drv.Stats()
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, d := range st.PerDeployment {
		names[d.Name] = true
	}
	if len(names) < 2 {
		t.Fatalf("coverage sweep reused one deployment: %v", names)
	}
}

// TestAxisValidation pins the per-axis config rejections.
func TestAxisValidation(t *testing.T) {
	base := mobileBase()
	cases := map[string]func(*Config){
		"unknown axis":         func(c *Config) { c.Axis = "wobble" },
		"no min/max value":     func(c *Config) { c.MinValue, c.MaxValue = 0, 0 },
		"inverted values":      func(c *Config) { c.MinValue, c.MaxValue = 8, 2 },
		"bisect on churn axis": func(c *Config) { c.Mode = ModeBisect },
		"churn without process": func(c *Config) {
			sc := base
			sc.ChurnProcess = nil
			c.Scenario = sc
		},
		"drift without mobility": func(c *Config) {
			sc := base
			sc.Mobility = nil
			c.Axis = AxisDrift
			c.Scenario = sc
		},
		"drift above 1": func(c *Config) { c.Axis = AxisDrift; c.MaxValue = 1.5 },
		"coverage on fa model": func(c *Config) {
			sc := base
			sc.Deployment = workload.DeploymentSpec{Model: "fa", N: 220, Seed: 5}
			c.Axis = AxisCoverage
			c.Scenario = sc
		},
		"coverage at 1": func(c *Config) { c.Axis = AxisCoverage; c.MaxValue = 1 },
		"fixed rate unset": func(c *Config) {
			sc := base
			sc.Arrival.RateHz = 0
			c.Scenario = sc
		},
	}
	for name, mutate := range cases {
		cfg := &Config{Name: "x", Scenario: base, Axis: AxisChurn, MinValue: 2, MaxValue: 8, Steps: 3}
		mutate(cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, cfg)
		}
	}
	// The happy path still validates.
	cfg := &Config{Name: "ok", Scenario: base, Axis: AxisChurn, MinValue: 2, MaxValue: 8, Steps: 3}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid churn-axis config rejected: %v", err)
	}
}
