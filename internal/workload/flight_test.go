package workload

import (
	"testing"

	"github.com/straightpath/wasn/internal/obs"
	"github.com/straightpath/wasn/internal/serve"
)

// TestChurnEventsAlignWithTimeline is the flight recorder's acceptance
// gate: a churny obstacle-field run with the sampler on must embed a
// timeline in the report, and every applied churn event must fall
// inside a sampled window whose series reflect it — the repair and
// churn rates over that window are nonzero. This is what makes the
// /debug/dash overlay trustworthy: markers land on curves that actually
// moved.
func TestChurnEventsAlignWithTimeline(t *testing.T) {
	const everyMS = 100
	drv := NewInProcess(serve.New(serve.Config{SampleEveryMS: everyMS}))
	sc := &Scenario{
		Name:       "flight-align",
		Deployment: DeploymentSpec{Model: "ob", N: 400, Seed: 7},
		Algorithm:  "SLGF2",
		Arrival:    Arrival{Process: ArrivalPoisson, RateHz: 2000, DurationMS: 1200, Concurrency: 8},
		Traffic:    Traffic{Pattern: TrafficUniform},
		Churn: []ChurnEvent{
			{AtMS: 300, FailRandom: 4},
			{AtMS: 600, FailRandom: 4},
			{AtMS: 900, ReviveAll: true},
		},
		WarmupRequests: 50,
	}
	rep, err := Run(drv, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Churn) != 3 {
		t.Fatalf("churn fired %d/3 events: %+v", len(rep.Churn), rep.Churn)
	}
	for _, ev := range rep.Churn {
		if ev.Err != "" {
			t.Fatalf("churn at %dms failed to apply: %s", ev.AtMS, ev.Err)
		}
	}
	if rep.StartUnixMs == 0 {
		t.Fatal("report lacks start_unix_ms")
	}
	win := rep.SampledTimeline
	if win == nil || len(win.TUnixMS) < 3 {
		t.Fatalf("report sampled timeline = %+v; want several samples", win)
	}
	if win.EveryMS != everyMS {
		t.Fatalf("timeline every_ms = %d; want %d", win.EveryMS, everyMS)
	}

	series := func(name string) []float64 {
		ts := win.Find(name)
		if ts == nil {
			t.Fatalf("timeline lacks series %q", name)
		}
		if len(ts.Points) != len(win.TUnixMS) {
			t.Fatalf("series %q has %d points for %d timestamps", name, len(ts.Points), len(win.TUnixMS))
		}
		return ts.Points
	}
	repairs := series("repairs_per_s")
	failedRate := series("failed_nodes_per_s")
	revivedRate := series("revived_nodes_per_s")

	// reflected reports whether the rate series is positive in the
	// sampled window that closed at index i (or the one before — an
	// event applied concurrently with a tick may land a hair earlier).
	reflected := func(rate []float64, i int) bool {
		if rate[i] > 0 {
			return true
		}
		return i > 0 && rate[i-1] > 0
	}

	for _, ev := range rep.Churn {
		tEv := rep.StartUnixMs + int64(ev.AppliedMS)
		// The event must fall inside the sampled window: some sample
		// closed soon after it (the engine's end-of-run flush guarantees
		// one even for events near the end).
		i := -1
		for j, ts := range win.TUnixMS {
			if ts >= tEv {
				i = j
				break
			}
		}
		if i < 0 {
			t.Fatalf("churn at +%.0fms (t=%d) is after the last sample %d",
				ev.AppliedMS, tEv, win.TUnixMS[len(win.TUnixMS)-1])
		}
		if slack := win.TUnixMS[i] - tEv; slack > 4*everyMS {
			t.Fatalf("churn at +%.0fms waited %dms for a sample; want <= %dms",
				ev.AppliedMS, slack, 4*everyMS)
		}
		if !reflected(repairs, i) {
			t.Fatalf("churn at +%.0fms: repairs_per_s flat around sample %d: %v",
				ev.AppliedMS, i, repairs)
		}
		if len(ev.Failed) > 0 && !reflected(failedRate, i) {
			t.Fatalf("churn at +%.0fms failed %d nodes but failed_nodes_per_s flat around sample %d: %v",
				ev.AppliedMS, len(ev.Failed), i, failedRate)
		}
		if len(ev.Revived) > 0 && !reflected(revivedRate, i) {
			t.Fatalf("churn at +%.0fms revived %d nodes but revived_nodes_per_s flat around sample %d: %v",
				ev.AppliedMS, len(ev.Revived), i, revivedRate)
		}
	}

	// The journal must carry one event per applied change, inside the
	// measured window and tagged with repair spans.
	var fails, revives int
	for _, ev := range rep.Journal {
		switch ev.Kind {
		case obs.EventFail:
			fails++
		case obs.EventRevive:
			revives++
		}
		if ev.Kind == obs.EventFail || ev.Kind == obs.EventRevive {
			if ev.UnixMS < rep.StartUnixMs {
				t.Fatalf("journal event %+v predates the run start %d", ev, rep.StartUnixMs)
			}
			if ev.Rebuild {
				t.Fatalf("journal event unexpectedly a rebuild: %+v", ev)
			}
			if ev.DurationUS <= 0 {
				t.Fatalf("journal event lacks a duration: %+v", ev)
			}
		}
	}
	if fails != 2 || revives != 1 {
		t.Fatalf("journal has %d fail / %d revive events; want 2/1 (%+v)", fails, revives, rep.Journal)
	}
}
