package workload

import (
	"fmt"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/straightpath/wasn/internal/fleet"
	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/topo"
)

// fleetHarness runs a router plus replicas (HTTP + binary) in-process.
type fleetHarness struct {
	router  *fleet.Router
	rt      *httptest.Server
	svcs    []*serve.Service
	https   []*httptest.Server
	binarys []*fleet.BinaryServer
}

func newFleetHarness(t *testing.T, n int, healthEvery time.Duration) *fleetHarness {
	t.Helper()
	h := &fleetHarness{
		router: fleet.NewRouter(fleet.RouterConfig{
			HealthEvery:   healthEvery,
			HealthStrikes: 2,
			HealthTimeout: 300 * time.Millisecond,
		}),
	}
	h.rt = httptest.NewServer(h.router.Handler())
	t.Cleanup(func() {
		h.rt.Close()
		h.router.Close()
		for i := range h.svcs {
			h.binarys[i].Close()
			h.https[i].Close()
			h.svcs[i].Close()
		}
	})
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("r%d", i)
		svc := serve.New(serve.Config{ReplicaID: id})
		hs := httptest.NewServer(svc.Handler())
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		bs := fleet.NewBinaryServer(svc, ln)
		h.svcs = append(h.svcs, svc)
		h.https = append(h.https, hs)
		h.binarys = append(h.binarys, bs)
		if _, err := h.router.Join(fleet.Replica{ID: id, Addr: hs.URL, BinaryAddr: bs.Addr()}); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func (h *fleetHarness) killOwner(t *testing.T, deployment string) int {
	t.Helper()
	rep, ok := h.router.Map().Owner(deployment)
	if !ok {
		t.Fatalf("no owner for %q", deployment)
	}
	var idx int
	if _, err := fmt.Sscanf(rep.ID, "r%d", &idx); err != nil {
		t.Fatal(err)
	}
	h.binarys[idx].Close()
	h.https[idx].Close()
	return idx
}

// TestFleetDriverBinaryRoutes: the "fleet" driver must route over the
// binary transport (not HTTP) and agree with the owning replica.
func TestFleetDriverBinaryRoutes(t *testing.T) {
	h := newFleetHarness(t, 3, -1)
	d, err := NewFleet(h.rt.URL, true)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Name() != "fleet" {
		t.Fatalf("Name = %q", d.Name())
	}

	name, err := d.Deploy("", DeploymentSpec{Model: "fa", N: 180, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if name == "" {
		t.Fatal("empty deployment name")
	}
	out, err := d.Route(name, "SLGF2", 0, 120)
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := h.router.Map().Owner(name)
	var idx int
	fmt.Sscanf(rep.ID, "r%d", &idx)
	want, _, err := h.svcs[idx].Route(name, "SLGF2", 0, 120)
	if err != nil {
		t.Fatal(err)
	}
	if out.Delivered != want.Delivered || out.Hops != want.Hops() {
		t.Fatalf("driver route %+v diverged from direct %+v", out, want)
	}
	_, batches, _ := h.binarys[idx].Stats()
	if batches == 0 {
		t.Fatal("binary transport unused: routes went over HTTP")
	}

	// Churn through the driver updates the actual topology.
	if err := d.Fail(name, []topo.NodeID{7, 8}); err != nil {
		t.Fatal(err)
	}
	failed, err := h.svcs[idx].Failed(name)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 2 {
		t.Fatalf("failed set = %v", failed)
	}

	// Permanent errors must fail fast, not retry for the whole window.
	start := time.Now()
	if _, err := d.Route(name, "SLGF2", -5, 3); err == nil {
		t.Fatal("out-of-range src accepted")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("permanent error burned the retry window")
	}

	// Aggregate surfaces.
	st, err := d.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Routes == 0 {
		t.Fatalf("aggregate stats lost the routes: %+v", st)
	}
	vals, err := d.ScrapeMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if vals["wasn_routes_total"] == 0 {
		t.Error("aggregated metrics missing replica series")
	}
	found := false
	for k := range vals {
		if len(k) >= 10 && k[:10] == "wasn_fleet" {
			found = true
			break
		}
	}
	if !found {
		t.Error("aggregated metrics missing router wasn_fleet_* series")
	}
}

// TestFleetDriverSurvivesOwnerKill is the driver half of the chaos
// contract: kill the owning replica mid-run and keep routing — the
// retry-with-remap loop must mask the outage window completely.
func TestFleetDriverSurvivesOwnerKill(t *testing.T) {
	h := newFleetHarness(t, 3, 50*time.Millisecond)
	d, err := NewFleet(h.rt.URL, true)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	name, err := d.Deploy("", DeploymentSpec{Model: "fa", N: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Fail(name, []topo.NodeID{11, 12}); err != nil {
		t.Fatal(err)
	}
	want, err := d.Route(name, "SLGF2", 0, 130)
	if err != nil {
		t.Fatal(err)
	}

	killed := h.killOwner(t, name)

	// Routes must keep succeeding through the kill: the health loop
	// marks the owner dead within ~150ms, restores state on a survivor,
	// and the driver remaps. No request in this loop may error.
	deadline := time.Now().Add(8 * time.Second)
	remapped := false
	for time.Now().Before(deadline) {
		out, err := d.Route(name, "SLGF2", 0, 130)
		if err != nil {
			t.Fatalf("route failed during re-shard: %v", err)
		}
		if out.Delivered != want.Delivered || out.Hops != want.Hops {
			t.Fatalf("route diverged during re-shard: %+v != %+v", out, want)
		}
		if rep, ok := h.router.Map().Owner(name); ok && rep.ID != fmt.Sprintf("r%d", killed) {
			remapped = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !remapped {
		t.Fatal("ownership never moved off the killed replica")
	}
	// After the remap the restored replica must answer identically,
	// with the churn history intact.
	out, err := d.Route(name, "SLGF2", 0, 130)
	if err != nil {
		t.Fatal(err)
	}
	if out.Delivered != want.Delivered || out.Hops != want.Hops {
		t.Fatalf("post-reshard route diverged: %+v != %+v", out, want)
	}
	// The control-plane journal must show the leave/reshard/restore.
	evs, err := d.Events(0)
	if err != nil {
		t.Fatal(err)
	}
	var sawReshard, sawRestore bool
	for _, ev := range evs {
		switch ev.Kind.String() {
		case "reshard":
			sawReshard = true
		case "restore":
			sawRestore = true
		}
	}
	if !sawReshard || !sawRestore {
		t.Fatalf("journal missing reshard/restore events: %+v", evs)
	}
}

func TestNewDriverFleetKinds(t *testing.T) {
	h := newFleetHarness(t, 1, -1)
	for kind, want := range map[string]string{"fleet": "fleet", "fleet-http": "fleet-http"} {
		d, err := NewDriver(kind, h.rt.URL, serve.Config{})
		if err != nil {
			t.Fatalf("NewDriver(%q): %v", kind, err)
		}
		if d.Name() != want {
			t.Errorf("NewDriver(%q).Name() = %q", kind, d.Name())
		}
		d.Close()
	}
	if _, err := NewDriver("fleet", "", serve.Config{}); err == nil {
		t.Error("fleet driver without target accepted")
	}
}
