package workload

import (
	"bytes"
	"strings"
	"testing"
)

// recordedRun executes one seeded scenario through a fresh Recorder
// and returns the trace bytes plus the run report.
func recordedRun(t *testing.T, sc *Scenario) (*Trace, []byte, *Report) {
	t.Helper()
	rec := NewRecorder(newInProcess())
	rep, err := Run(rec, sc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return tr, buf.Bytes(), rep
}

// churnyScenario is the record/replay workhorse: a seeded open-loop
// convergecast with fail and revive events, run with enough workers
// that the trace writer sees real concurrency (the -race run of this
// file is the satellite soundness check for the recorder).
func churnyScenario() *Scenario {
	return &Scenario{
		Name:       "trace-churn",
		Deployment: tinyDeployment,
		Algorithm:  "SLGF2",
		Arrival:    Arrival{Process: ArrivalPoisson, RateHz: 3000, DurationMS: 400, Concurrency: 8},
		Traffic:    Traffic{Pattern: TrafficConvergecast, Sinks: 3},
		Churn: []ChurnEvent{
			{AtMS: 120, FailRandom: 4},
			{AtMS: 260, ReviveAll: true},
		},
		WarmupRequests: 50,
		Seed:           11,
	}
}

// TestRecordCapturesRun pins the trace format: header from the
// scenario, time-sorted request lines matching the report's request
// count, churn lines at their scheduled offsets, and a summary
// agreeing with the report.
func TestRecordCapturesRun(t *testing.T) {
	sc := churnyScenario()
	tr, raw, rep := recordedRun(t, sc)

	if tr.Header.Scenario != sc.Name || tr.Header.Algorithm != sc.Algorithm ||
		tr.Header.Deploy != sc.Deployment || tr.Header.Seed != sc.Seed {
		t.Fatalf("header %+v does not match scenario", tr.Header)
	}
	var reqs, fails, revives int64
	lastAt := int64(-1)
	for i, ev := range tr.Events {
		if ev.At < lastAt {
			t.Fatalf("event %d at %d is out of order (previous %d)", i, ev.At, lastAt)
		}
		lastAt = ev.At
		switch ev.Kind {
		case traceKindRequest:
			reqs++
		case traceKindFail:
			fails++
			if ev.At != int64(120e6) {
				t.Fatalf("fail line at %dns; want the scheduled 120ms", ev.At)
			}
			if len(ev.Nodes) != 4 {
				t.Fatalf("fail line lists %d nodes; want 4", len(ev.Nodes))
			}
		case traceKindRevive:
			revives++
		}
	}
	if reqs != rep.Requests {
		t.Fatalf("trace has %d request lines; report says %d", reqs, rep.Requests)
	}
	if fails != 1 || revives != 1 {
		t.Fatalf("trace has %d fail / %d revive lines; want 1/1", fails, revives)
	}
	if tr.Summary == nil {
		t.Fatal("trace has no summary line")
	}
	if tr.Summary.Requests != rep.Requests || tr.Summary.Delivered != rep.Delivered || tr.Summary.Errors != rep.Errors {
		t.Fatalf("summary %+v disagrees with report (%d req, %d delivered, %d errors)",
			tr.Summary, rep.Requests, rep.Delivered, rep.Errors)
	}
	// Warmup requests must not leak into the trace: line count is
	// header + events + summary exactly.
	if lines := bytes.Count(bytes.TrimSpace(raw), []byte("\n")) + 1; lines != len(tr.Events)+2 {
		t.Fatalf("trace has %d lines; want %d events + header + summary", lines, len(tr.Events))
	}
}

// TestReplayDeterminism is the acceptance pin: replaying one recorded
// trace twice yields bit-identical re-recorded (src,dst,at) streams
// and identical delivery/error counts — a regression reproduced from a
// trace behaves identically run to run, even with churn mid-stream.
func TestReplayDeterminism(t *testing.T) {
	tr, _, _ := recordedRun(t, churnyScenario())

	type replayOut struct {
		trace []byte
		rep   *Report
	}
	replayOnce := func() replayOut {
		rec := NewRecorder(newInProcess())
		rep, err := Replay(rec, tr, ReplayOptions{Concurrency: 8})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rec.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return replayOut{trace: buf.Bytes(), rep: rep}
	}
	a, b := replayOnce(), replayOnce()

	if !bytes.Equal(a.trace, b.trace) {
		t.Fatal("two replays re-recorded different traces")
	}
	if a.rep.Requests != b.rep.Requests || a.rep.Delivered != b.rep.Delivered || a.rep.Errors != b.rep.Errors {
		t.Fatalf("replay outcomes diverged: (%d,%d,%d) vs (%d,%d,%d)",
			a.rep.Requests, a.rep.Delivered, a.rep.Errors,
			b.rep.Requests, b.rep.Delivered, b.rep.Errors)
	}
	if a.rep.Requests != tr.Summary.Requests {
		t.Fatalf("replay issued %d requests; trace has %d", a.rep.Requests, tr.Summary.Requests)
	}
	// The replayed request/churn lines must equal the original trace's
	// — only the summary may differ (churn-boundary straddlers).
	reTr, err := ReadTrace(bytes.NewReader(a.trace))
	if err != nil {
		t.Fatal(err)
	}
	if len(reTr.Events) != len(tr.Events) {
		t.Fatalf("replay recorded %d events; original trace has %d", len(reTr.Events), len(tr.Events))
	}
	for i := range tr.Events {
		o, r := tr.Events[i], reTr.Events[i]
		if o.Kind != r.Kind || o.At != r.At || o.Src != r.Src || o.Dst != r.Dst || len(o.Nodes) != len(r.Nodes) {
			t.Fatalf("event %d diverged: recorded %+v, replayed %+v", i, o, r)
		}
	}
	// Phases must have split at both churn lines.
	if len(a.rep.Phases) != 3 {
		t.Fatalf("replay report has %d phases; want 3", len(a.rep.Phases))
	}
}

// TestChurnlessReplayMatchesSummary pins the exact-reproduction
// guarantee: without churn there are no boundary races, so a replay's
// outcome counts must equal the recorded run's summary bit-for-bit.
func TestChurnlessReplayMatchesSummary(t *testing.T) {
	sc := &Scenario{
		Name:       "trace-closed",
		Deployment: tinyDeployment,
		Algorithm:  "SLGF2",
		Arrival:    Arrival{Process: ArrivalClosed, Requests: 400, Concurrency: 6},
		Traffic:    Traffic{Pattern: TrafficUniform, Pairs: 64},
		Seed:       5,
	}
	tr, _, _ := recordedRun(t, sc)
	if len(tr.Events) != 400 {
		t.Fatalf("trace has %d events; want 400 requests", len(tr.Events))
	}
	rep, err := Replay(newInProcess(), tr, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.VerifySummary(rep); err != nil {
		t.Fatal(err)
	}
}

// TestReplayPaced smoke-tests the paced mode: the replayed run must
// take roughly as long as the recorded span and still verify.
func TestReplayPaced(t *testing.T) {
	sc := &Scenario{
		Name:       "trace-paced",
		Deployment: tinyDeployment,
		Algorithm:  "SLGF2",
		Arrival:    Arrival{Process: ArrivalPoisson, RateHz: 1500, DurationMS: 300},
		Traffic:    Traffic{Pattern: TrafficUniform, Pairs: 64},
		Seed:       6,
	}
	tr, _, _ := recordedRun(t, sc)
	rep, err := Replay(newInProcess(), tr, ReplayOptions{Paced: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.VerifySummary(rep); err != nil {
		t.Fatal(err)
	}
	if rep.ElapsedMS < 200 {
		t.Fatalf("paced replay of a 300ms trace finished in %.0fms", rep.ElapsedMS)
	}
}

// TestReadTraceRejectsGarbage pins the parser's error paths.
func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"no header":     `{"t":"r","at":1,"src":0,"dst":1}`,
		"unknown kind":  `{"t":"h","v":1,"scenario":"x","deployment":{"model":"fa","n":10,"seed":1},"algorithm":"GF"}` + "\n" + `{"t":"x","at":1}`,
		"wrong version": `{"t":"h","v":99,"scenario":"x","deployment":{"model":"fa","n":10,"seed":1},"algorithm":"GF"}`,
		"not json":      `nope`,
		"no requests":   `{"t":"h","v":1,"scenario":"x","deployment":{"model":"fa","n":10,"seed":1},"algorithm":"GF"}`,
	}
	for name, doc := range cases {
		if _, err := ReadTrace(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: ReadTrace accepted %q", name, doc)
		}
	}
}
