package workload

import (
	"bytes"
	"reflect"
	"testing"
)

// mobileChurnScenario exercises the full hostile-geometry stack at test
// scale: an obstacle-field deployment, a Poisson fail/revive process,
// and a mobility schedule (walking sinks plus Gaussian node drift),
// all expanded from one scenario seed.
func mobileChurnScenario() *Scenario {
	return &Scenario{
		Name:           "trace-mobile",
		Deployment:     DeploymentSpec{Model: "ob", N: 260, Seed: 9, Coverage: 0.2},
		Algorithm:      "SLGF2",
		Arrival:        Arrival{Process: ArrivalPoisson, RateHz: 2000, DurationMS: 500, Concurrency: 8},
		Traffic:        Traffic{Pattern: TrafficConvergecast, Sinks: 3},
		ChurnProcess:   &ChurnProcess{Process: "poisson", FailRateHz: 8, ReviveRateHz: 4},
		Mobility:       &Mobility{Sinks: 2, SinkSpeed: 25, DriftSigma: 3, DriftFraction: 0.02, IntervalMS: 100},
		WarmupRequests: 30,
		Seed:           17,
	}
}

// trimSummary drops a trace's final (summary) line. Request, churn, and
// move lines record scheduled intents and are deterministic per seed;
// the summary records *outcomes*, and a request that straddles a churn
// boundary may legitimately be served on either side of it run to run.
func trimSummary(raw []byte) []byte {
	raw = bytes.TrimRight(raw, "\n")
	i := bytes.LastIndexByte(raw, '\n')
	return raw[:i+1]
}

// TestMobileChurnRecordDeterminism is the mobility determinism pin:
// expanding and running the same seeded scenario twice — Poisson churn
// process, walking sinks, node drift — must record bit-identical
// request/churn/move streams, and replaying the trace twice must yield
// identical delivery counts (the replay's barriers serialize every
// request against the exact topology its trace position dictates).
func TestMobileChurnRecordDeterminism(t *testing.T) {
	sc := mobileChurnScenario()
	_, rawA, repA := recordedRun(t, sc)
	trB, rawB, _ := recordedRun(t, sc)

	if !bytes.Equal(trimSummary(rawA), trimSummary(rawB)) {
		t.Fatal("two recordings of one seeded mobile-churn scenario diverged")
	}
	var moves, fails, revives int
	for _, ev := range trB.Events {
		switch ev.Kind {
		case traceKindMove:
			moves++
			if len(ev.Moves) == 0 {
				t.Fatal("move line carries no moves")
			}
		case traceKindFail:
			fails++
		case traceKindRevive:
			revives++
		}
	}
	if moves == 0 {
		t.Fatal("trace recorded no move lines; mobility schedule never fired")
	}
	if fails == 0 || revives == 0 {
		t.Fatalf("trace recorded %d fail / %d revive lines; Poisson process never expanded", fails, revives)
	}
	if repA.MovedNodes == 0 {
		t.Fatal("report counted no moved nodes")
	}

	replayOnce := func() *Report {
		rep, err := Replay(newInProcess(), trB, ReplayOptions{Concurrency: 8})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := replayOnce(), replayOnce()
	if a.Requests != b.Requests || a.Delivered != b.Delivered || a.Errors != b.Errors {
		t.Fatalf("replay outcomes diverged: (%d,%d,%d) vs (%d,%d,%d)",
			a.Requests, a.Delivered, a.Errors, b.Requests, b.Delivered, b.Errors)
	}
	if a.MovedNodes != b.MovedNodes || a.MovedNodes == 0 {
		t.Fatalf("replays moved %d and %d nodes; want equal and nonzero", a.MovedNodes, b.MovedNodes)
	}
	if a.Requests != trB.Summary.Requests {
		t.Fatalf("replay issued %d requests; trace has %d", a.Requests, trB.Summary.Requests)
	}
}

// TestChurnProcessExpansionDeterminism pins the Poisson expansion
// itself: same seed, same event schedule, with every expanded event
// inside the measured window and the result sorted by time.
func TestChurnProcessExpansionDeterminism(t *testing.T) {
	sc := mobileChurnScenario()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	a, b := sc.expandChurn(), sc.expandChurn()
	if len(a.Churn) == 0 {
		t.Fatal("expansion produced no churn events")
	}
	if len(a.Churn) != len(b.Churn) {
		t.Fatalf("expansions differ in length: %d vs %d", len(a.Churn), len(b.Churn))
	}
	last := 0
	for i := range a.Churn {
		if !reflect.DeepEqual(a.Churn[i], b.Churn[i]) {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Churn[i], b.Churn[i])
		}
		if a.Churn[i].AtMS < last {
			t.Fatalf("event %d at %dms is out of order", i, a.Churn[i].AtMS)
		}
		last = a.Churn[i].AtMS
		if a.Churn[i].AtMS >= sc.Arrival.DurationMS {
			t.Fatalf("event %d at %dms lands outside the %dms window", i, a.Churn[i].AtMS, sc.Arrival.DurationMS)
		}
	}
	// The original scenario must be untouched — sweep reuses it.
	if sc.ChurnProcess == nil || len(sc.Churn) != 0 {
		t.Fatal("expandChurn mutated its receiver")
	}
}
