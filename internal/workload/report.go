package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"github.com/straightpath/wasn/internal/metrics"
	"github.com/straightpath/wasn/internal/obs"
	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/topo"
)

// Latency summarizes one latency distribution in microseconds.
type Latency struct {
	P50us  float64 `json:"p50_us"`
	P90us  float64 `json:"p90_us"`
	P99us  float64 `json:"p99_us"`
	P999us float64 `json:"p999_us"`
	MeanUs float64 `json:"mean_us"`
	MaxUs  float64 `json:"max_us"`
}

func latencyFrom(h *metrics.Histogram) Latency {
	const us = 1e3
	return Latency{
		P50us:  float64(h.Quantile(0.50)) / us,
		P90us:  float64(h.Quantile(0.90)) / us,
		P99us:  float64(h.Quantile(0.99)) / us,
		P999us: float64(h.Quantile(0.999)) / us,
		MeanUs: h.Mean() / us,
		MaxUs:  float64(h.Max()) / us,
	}
}

// PhaseReport is the slice of a run between two churn events (phase 0
// runs from start to the first event).
type PhaseReport struct {
	Name          string  `json:"name"`
	StartMS       float64 `json:"start_ms"`
	EndMS         float64 `json:"end_ms"`
	Requests      int64   `json:"requests"`
	Delivered     int64   `json:"delivered"`
	DeliveryRate  float64 `json:"delivery_rate"`
	Errors        int64   `json:"errors,omitempty"`
	ThroughputRPS float64 `json:"throughput_rps"`
	Latency       Latency `json:"latency"`
}

// TimelinePoint is one throughput-timeline bucket.
type TimelinePoint struct {
	TMS       int64 `json:"t_ms"`
	Completed int64 `json:"completed"`
}

// AppliedChurn records what a churn event actually did when it fired.
type AppliedChurn struct {
	AtMS      int           `json:"at_ms"`
	AppliedMS float64       `json:"applied_ms"`
	Failed    []topo.NodeID `json:"failed,omitempty"`
	Revived   []topo.NodeID `json:"revived,omitempty"`
	Err       string        `json:"error,omitempty"`
}

// Report is the outcome of one scenario run, shaped for the BENCH_*
// JSON trajectory files.
type Report struct {
	Scenario   string  `json:"scenario"`
	Driver     string  `json:"driver"`
	Deployment string  `json:"deployment"`
	Algorithm  string  `json:"algorithm"`
	Arrival    Arrival `json:"arrival"`
	Traffic    Traffic `json:"traffic"`

	ElapsedMS    float64 `json:"elapsed_ms"`
	Requests     int64   `json:"requests"`
	Delivered    int64   `json:"delivered"`
	DeliveryRate float64 `json:"delivery_rate"`
	// Errors counts failed *requests* (transport/validation), not
	// undelivered routes; ErrorSample is the first message seen.
	Errors      int64  `json:"errors,omitempty"`
	ErrorSample string `json:"error_sample,omitempty"`
	// Dropped counts open-loop arrivals shed because the dispatch
	// queue was full — nonzero means the offered rate exceeded what
	// the driver could absorb.
	Dropped int64 `json:"dropped,omitempty"`
	// MovedNodes totals the node positions changed by the mobility
	// schedule (and by replayed move lines) during the measured window.
	MovedNodes int64 `json:"moved_nodes,omitempty"`
	// OfferedRPS is the open-loop target rate (0 for closed loops);
	// ThroughputRPS is what actually completed per second.
	OfferedRPS    float64 `json:"offered_rps,omitempty"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// CachedShare is the client-observed fraction of requests answered
	// from the route cache.
	CachedShare float64 `json:"cached_share"`

	Latency  Latency         `json:"latency"`
	Phases   []PhaseReport   `json:"phases"`
	Timeline []TimelinePoint `json:"timeline"`
	Churn    []AppliedChurn  `json:"churn,omitempty"`
	// Server is the driver's end-of-run /stats snapshot (cache hit
	// rate, per-deployment repair counters), nil if unavailable.
	Server *serve.Stats `json:"server_stats,omitempty"`
	// MetricsDelta is the movement of every server metric series across
	// the measured window (obs.Delta of the before/after scrapes;
	// histogram buckets excluded), nil when the driver has no
	// exposition to scrape.
	MetricsDelta map[string]float64 `json:"metrics_delta,omitempty"`
	// StartUnixMs anchors the measured window in wall time so the
	// flight-recorder timeline and journal below — stamped in server
	// wall time — can be read against AppliedMS offsets.
	StartUnixMs int64 `json:"start_unix_ms,omitempty"`
	// SampledTimeline is the server's flight-recorder sample window
	// (nil when the driver runs without a sampler).
	SampledTimeline *obs.TimelineWindow `json:"sampled_timeline,omitempty"`
	// Journal is the server's flight-recorder events raised during the
	// measured window, oldest first.
	Journal []obs.Event `json:"journal,omitempty"`
}

// WriteJSON writes the indented JSON report.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Summary renders the few human-readable lines the CLI prints.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s] %s over %s: %d requests in %.0fms = %.0f req/s",
		r.Scenario, r.Driver, r.Algorithm, r.Deployment, r.Requests, r.ElapsedMS, r.ThroughputRPS)
	if r.OfferedRPS > 0 {
		fmt.Fprintf(&b, " (offered %.0f)", r.OfferedRPS)
	}
	fmt.Fprintf(&b, "\n  delivered %.2f%%  cached %.1f%%  errors %d  dropped %d",
		100*r.DeliveryRate, 100*r.CachedShare, r.Errors, r.Dropped)
	if r.MovedNodes > 0 {
		fmt.Fprintf(&b, "  moved %d", r.MovedNodes)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  latency p50=%.1fus p90=%.1fus p99=%.1fus p99.9=%.1fus max=%.1fus\n",
		r.Latency.P50us, r.Latency.P90us, r.Latency.P99us, r.Latency.P999us, r.Latency.MaxUs)
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "  %-12s %6d req  %.2f%% delivered  p50=%.1fus p99=%.1fus\n",
			p.Name, p.Requests, 100*p.DeliveryRate, p.Latency.P50us, p.Latency.P99us)
	}
	if r.Server != nil {
		fmt.Fprintf(&b, "  server: cache hit rate %.1f%%", 100*r.Server.CacheHitRate)
		for _, d := range r.Server.PerDeployment {
			fmt.Fprintf(&b, "  [%s epoch=%d failed=%d repairs=%d rebuilds=%d]",
				d.Name, d.Epoch, d.FailedNodes, d.Repairs, d.Rebuilds)
		}
		b.WriteString("\n")
	}
	if len(r.MetricsDelta) > 0 {
		fmt.Fprintf(&b, "  metrics: %d series moved", len(r.MetricsDelta))
		if v, ok := r.MetricsDelta["wasn_routes_total"]; ok {
			fmt.Fprintf(&b, "  wasn_routes_total +%.0f", v)
		}
		b.WriteString("\n")
	}
	if r.SampledTimeline != nil || len(r.Journal) > 0 {
		samples := 0
		if r.SampledTimeline != nil {
			samples = len(r.SampledTimeline.TUnixMS)
		}
		fmt.Fprintf(&b, "  flight recorder: %d timeline samples, %d journal events\n",
			samples, len(r.Journal))
	}
	return b.String()
}
