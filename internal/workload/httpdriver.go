package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/straightpath/wasn/internal/obs"
	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/topo"
)

// HTTP drives a running wasnd over its JSON API — the service measured
// over a real wire. The transport keeps connections alive and allows
// enough idle connections per host that every engine worker reuses its
// own (connection churn would otherwise dominate small-request
// latency).
type HTTP struct {
	base   string
	client *http.Client
}

// NewHTTP builds an HTTP driver against a wasnd base URL, e.g.
// "http://localhost:8080".
func NewHTTP(base string) *HTTP {
	tr := &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
		IdleConnTimeout:     90 * time.Second,
	}
	return &HTTP{
		base:   strings.TrimRight(base, "/"),
		client: &http.Client{Transport: tr, Timeout: 30 * time.Second},
	}
}

// Name implements Driver.
func (d *HTTP) Name() string { return "http" }

// post sends one JSON request and decodes the response into out,
// surfacing the server's {"error": ...} body on non-2xx statuses.
func (d *HTTP) post(path string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("workload: encoding %s request: %w", path, err)
	}
	resp, err := d.client.Post(d.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("workload: POST %s: %w", path, err)
	}
	return d.decode(path, resp, out)
}

func (d *HTTP) decode(path string, resp *http.Response, out any) error {
	defer func() {
		// Drain so the keep-alive connection returns to the pool.
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("workload: %s: %s (HTTP %d)", path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("workload: %s: HTTP %d", path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("workload: decoding %s response: %w", path, err)
	}
	return nil
}

// Deploy implements Driver.
func (d *HTTP) Deploy(name string, spec DeploymentSpec) (string, error) {
	req := map[string]any{
		"name": name, "model": spec.Model, "n": spec.N, "seed": spec.Seed,
		"build": true,
	}
	if spec.Coverage > 0 {
		// Only sent when set, so default-coverage scenarios stay
		// compatible with servers predating the knob.
		req["coverage"] = spec.Coverage
	}
	var resp struct {
		Name string `json:"name"`
	}
	if err := d.post("/deploy", req, &resp); err != nil {
		return "", err
	}
	return resp.Name, nil
}

// Route implements Driver.
func (d *HTTP) Route(deployment, algorithm string, src, dst topo.NodeID) (Outcome, error) {
	req := serve.RouteRequest{Deployment: deployment, Algorithm: algorithm, Src: src, Dst: dst}
	var resp serve.RouteResponse
	if err := d.post("/route", req, &resp); err != nil {
		return Outcome{}, err
	}
	if resp.Err != "" {
		return Outcome{}, fmt.Errorf("workload: /route: %s", resp.Err)
	}
	return Outcome{Delivered: resp.Delivered, Hops: resp.Hops, Cached: resp.Cached}, nil
}

type churnRequest struct {
	Deployment string        `json:"deployment"`
	Nodes      []topo.NodeID `json:"nodes"`
}

// Fail implements Driver.
func (d *HTTP) Fail(deployment string, nodes []topo.NodeID) error {
	return d.post("/fail", churnRequest{Deployment: deployment, Nodes: nodes}, nil)
}

// Revive implements Driver.
func (d *HTTP) Revive(deployment string, nodes []topo.NodeID) error {
	return d.post("/revive", churnRequest{Deployment: deployment, Nodes: nodes}, nil)
}

type moveRequest struct {
	Deployment string      `json:"deployment"`
	Moves      []topo.Move `json:"moves"`
}

// Move implements Driver.
func (d *HTTP) Move(deployment string, moves []topo.Move) error {
	return d.post("/move", moveRequest{Deployment: deployment, Moves: moves}, nil)
}

// Stats implements Driver.
func (d *HTTP) Stats() (serve.Stats, error) {
	resp, err := d.client.Get(d.base + "/stats")
	if err != nil {
		return serve.Stats{}, fmt.Errorf("workload: GET /stats: %w", err)
	}
	var st serve.Stats
	if err := d.decode("/stats", resp, &st); err != nil {
		return serve.Stats{}, err
	}
	return st, nil
}

// ScrapeMetrics implements Driver.
func (d *HTTP) ScrapeMetrics() (map[string]float64, error) {
	resp, err := d.client.Get(d.base + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("workload: GET /metrics: %w", err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("workload: /metrics: HTTP %d", resp.StatusCode)
	}
	return obs.ParseText(resp.Body)
}

// Timeline implements Driver (GET /timeline). Servers predating the
// endpoint yield an error; callers embedding the window treat that as
// "no timeline".
func (d *HTTP) Timeline() (obs.TimelineWindow, error) {
	resp, err := d.client.Get(d.base + "/timeline")
	if err != nil {
		return obs.TimelineWindow{}, fmt.Errorf("workload: GET /timeline: %w", err)
	}
	var body struct {
		Timeline obs.TimelineWindow `json:"timeline"`
	}
	if err := d.decode("/timeline", resp, &body); err != nil {
		return obs.TimelineWindow{}, err
	}
	return body.Timeline, nil
}

// Events implements Driver (GET /events).
func (d *HTTP) Events(max int) ([]obs.Event, error) {
	url := d.base + "/events"
	if max > 0 {
		url += fmt.Sprintf("?max=%d", max)
	}
	resp, err := d.client.Get(url)
	if err != nil {
		return nil, fmt.Errorf("workload: GET /events: %w", err)
	}
	var body struct {
		Events []obs.Event `json:"events"`
	}
	if err := d.decode("/events", resp, &body); err != nil {
		return nil, err
	}
	return body.Events, nil
}

// Close implements Driver.
func (d *HTTP) Close() error {
	d.client.CloseIdleConnections()
	return nil
}
