package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"sort"

	"github.com/straightpath/wasn/internal/topo"
)

// Arrival process names.
const (
	ArrivalClosed  = "closed"
	ArrivalPoisson = "poisson"
	ArrivalBursty  = "bursty"
)

// Traffic pattern names.
const (
	TrafficUniform      = "uniform"
	TrafficZipf         = "zipf"
	TrafficConvergecast = "convergecast"
)

// DeploymentSpec names the deployment a scenario runs against, in the
// wire vocabulary of the /deploy endpoint.
type DeploymentSpec struct {
	// Name is the registry name; empty means the server's default
	// (MODEL-N-SEED, with a coverage suffix for obstacle fields).
	Name string `json:"name,omitempty"`
	// Model is "ia", "fa", or "ob".
	Model string `json:"model"`
	// N is the node count.
	N int `json:"n"`
	// Seed is the deployment seed.
	Seed uint64 `json:"seed"`
	// Coverage is the "ob" model's obstacle lattice-coverage target in
	// [0,1); 0 means the server default. Ignored for ia/fa.
	Coverage float64 `json:"coverage,omitempty"`
}

// Arrival selects and parameterizes the arrival process.
type Arrival struct {
	// Process is one of "closed", "poisson", "bursty".
	Process string `json:"process"`
	// Requests is the closed-loop total request count.
	Requests int `json:"requests,omitempty"`
	// Concurrency is the closed-loop client count, and the worker-pool
	// size absorbing open-loop arrivals. 0 means GOMAXPROCS for closed
	// loops and 4x that for open loops (open-loop workers block on the
	// driver, so the pool must ride out latency spikes to sustain the
	// offered rate).
	Concurrency int `json:"concurrency,omitempty"`
	// RateHz is the open-loop target arrival rate (mean rate of the
	// Poisson process; the on-period rate for bursty arrivals).
	RateHz float64 `json:"rate_hz,omitempty"`
	// DurationMS is the open-loop run length.
	DurationMS int `json:"duration_ms,omitempty"`
	// OnMS/OffMS are the bursty on/off period lengths.
	OnMS  int `json:"on_ms,omitempty"`
	OffMS int `json:"off_ms,omitempty"`
}

// Traffic selects and parameterizes the traffic matrix.
type Traffic struct {
	// Pattern is one of "uniform", "zipf", "convergecast".
	Pattern string `json:"pattern"`
	// Pairs is the uniform pattern's routable-pair pool size (default
	// 256).
	Pairs int `json:"pairs,omitempty"`
	// MinDist is the uniform pattern's minimum source-destination
	// separation (default 60, the paper's multi-hop regime).
	MinDist float64 `json:"min_dist,omitempty"`
	// Hotspots is the zipf pattern's distinct destination count
	// (default 16); destination popularity is Zipf(ZipfS) over them.
	Hotspots int `json:"hotspots,omitempty"`
	// ZipfS is the zipf exponent (> 1, default 1.2).
	ZipfS float64 `json:"zipf_s,omitempty"`
	// Sinks is the convergecast sink count (default 4); every other
	// node sources packets to its nearest sink.
	Sinks int `json:"sinks,omitempty"`
}

// ChurnEvent is one timed topology mutation of the schedule.
type ChurnEvent struct {
	// AtMS is the event time, an offset from the measured run's start.
	AtMS int `json:"at_ms"`
	// Fail lists explicit nodes to kill.
	Fail []topo.NodeID `json:"fail,omitempty"`
	// FailRandom kills that many scenario-seeded random alive nodes
	// (never a convergecast sink or zipf hotspot, so losses measure
	// the routing fabric, not a dead endpoint).
	FailRandom int `json:"fail_random,omitempty"`
	// Revive lists explicit nodes to bring back.
	Revive []topo.NodeID `json:"revive,omitempty"`
	// ReviveRandom brings back that many scenario-seeded random nodes
	// from the currently failed set (fewer when the set is smaller).
	ReviveRandom int `json:"revive_random,omitempty"`
	// ReviveAll brings back every node failed so far.
	ReviveAll bool `json:"revive_all,omitempty"`
}

// ChurnProcess generates a continuous churn schedule instead of (or on
// top of) hand-written ChurnEvents: node failures arrive as a seeded
// Poisson process at FailRateHz and revivals at ReviveRateHz over the
// open-loop run. The engine expands the process into concrete
// fail_random/revive_random events at run start (seeded by the scenario
// seed, so the same scenario yields the same schedule).
type ChurnProcess struct {
	// Process names the generator; "poisson" is the only one.
	Process string `json:"process"`
	// FailRateHz is the mean node-failure arrival rate.
	FailRateHz float64 `json:"fail_rate_hz,omitempty"`
	// ReviveRateHz is the mean revival arrival rate.
	ReviveRateHz float64 `json:"revive_rate_hz,omitempty"`
}

// Mobility is the continuous position-churn schedule: a few mobile
// sinks on seeded random-waypoint walks plus Gaussian drift over a
// fraction of the field, applied as timed /move batches under live
// traffic. The walks run against an offline copy of the deployment, so
// the schedule is a pure function of the scenario (same seed, same
// batches) for both drivers.
type Mobility struct {
	// Sinks is how many nodes walk waypoint trajectories (for
	// convergecast traffic these are the traffic sinks themselves — the
	// paper's mobile-sink regime; otherwise seeded random picks).
	Sinks int `json:"sinks,omitempty"`
	// SinkSpeed is the waypoint walk speed in field units per second
	// (default 20).
	SinkSpeed float64 `json:"sink_speed,omitempty"`
	// DriftSigma is the per-interval Gaussian displacement of drifting
	// nodes in field units (default 2).
	DriftSigma float64 `json:"drift_sigma,omitempty"`
	// DriftFraction is the fraction of nodes redrawn with Gaussian
	// drift each interval (default 0.01).
	DriftFraction float64 `json:"drift_fraction,omitempty"`
	// IntervalMS is the batch period (default 250).
	IntervalMS int `json:"interval_ms,omitempty"`
}

// Scenario is one complete workload description. The zero value is not
// runnable; build one via Parse/ParseFile/Preset or fill the fields and
// Validate.
type Scenario struct {
	// Name labels the scenario in reports.
	Name       string         `json:"name"`
	Deployment DeploymentSpec `json:"deployment"`
	// Algorithm is the routing algorithm under test (serve.Algorithms).
	Algorithm string  `json:"algorithm"`
	Arrival   Arrival `json:"arrival"`
	Traffic   Traffic `json:"traffic"`
	// Churn is the mutation schedule, sorted by AtMS (Validate sorts).
	Churn []ChurnEvent `json:"churn,omitempty"`
	// ChurnProcess generates additional continuous churn; the engine
	// expands it into concrete events at run start.
	ChurnProcess *ChurnProcess `json:"churn_process,omitempty"`
	// Mobility moves nodes continuously during the run.
	Mobility *Mobility `json:"mobility,omitempty"`
	// Seed drives every workload random choice (pair picks, Zipf
	// draws, FailRandom victims) — same scenario, same traffic.
	Seed uint64 `json:"seed,omitempty"`
	// WarmupRequests are routed before measurement starts and are not
	// recorded (they pay the lazy substrate build and prime the cache).
	WarmupRequests int `json:"warmup_requests,omitempty"`
	// TimelineBucketMS is the throughput-timeline resolution (default
	// 250).
	TimelineBucketMS int `json:"timeline_bucket_ms,omitempty"`
}

// Validate checks cross-field consistency, fills defaults, and sorts
// the churn schedule. It is called by Parse and Run.
func (sc *Scenario) Validate() error {
	if _, err := topo.ParseDeployModel(sc.Deployment.Model); err != nil {
		return fmt.Errorf("workload: deployment: %w", err)
	}
	if sc.Deployment.N <= 0 {
		return fmt.Errorf("workload: deployment: node count must be positive, got %d", sc.Deployment.N)
	}
	if sc.Algorithm == "" {
		return fmt.Errorf("workload: algorithm is required")
	}

	a := &sc.Arrival
	switch a.Process {
	case ArrivalClosed:
		if a.Requests <= 0 {
			return fmt.Errorf("workload: closed-loop arrival needs requests > 0")
		}
	case ArrivalPoisson, ArrivalBursty:
		if a.RateHz <= 0 {
			return fmt.Errorf("workload: %s arrival needs rate_hz > 0", a.Process)
		}
		if a.DurationMS <= 0 {
			return fmt.Errorf("workload: %s arrival needs duration_ms > 0", a.Process)
		}
		if a.Process == ArrivalBursty && (a.OnMS <= 0 || a.OffMS <= 0) {
			return fmt.Errorf("workload: bursty arrival needs on_ms > 0 and off_ms > 0")
		}
	default:
		return fmt.Errorf("workload: unknown arrival process %q (want %s, %s, or %s)",
			a.Process, ArrivalClosed, ArrivalPoisson, ArrivalBursty)
	}

	tr := &sc.Traffic
	switch tr.Pattern {
	case TrafficUniform:
		if tr.Pairs <= 0 {
			tr.Pairs = 256
		}
		if tr.MinDist <= 0 {
			tr.MinDist = 60
		}
	case TrafficZipf:
		if tr.Hotspots <= 0 {
			tr.Hotspots = 16
		}
		if tr.ZipfS == 0 {
			tr.ZipfS = 1.2
		}
		if tr.ZipfS <= 1 {
			return fmt.Errorf("workload: zipf_s must be > 1, got %v", tr.ZipfS)
		}
	case TrafficConvergecast:
		if tr.Sinks <= 0 {
			tr.Sinks = 4
		}
		if tr.Sinks >= sc.Deployment.N {
			return fmt.Errorf("workload: %d sinks leave no sources among %d nodes", tr.Sinks, sc.Deployment.N)
		}
	default:
		return fmt.Errorf("workload: unknown traffic pattern %q (want %s, %s, or %s)",
			tr.Pattern, TrafficUniform, TrafficZipf, TrafficConvergecast)
	}

	if cp := sc.ChurnProcess; cp != nil {
		if cp.Process != "poisson" {
			return fmt.Errorf("workload: unknown churn process %q (want poisson)", cp.Process)
		}
		if cp.FailRateHz < 0 || cp.ReviveRateHz < 0 {
			return fmt.Errorf("workload: churn process rates must be >= 0")
		}
		if cp.FailRateHz == 0 && cp.ReviveRateHz == 0 {
			return fmt.Errorf("workload: churn process does nothing (both rates zero)")
		}
		if a.Process == ArrivalClosed {
			return fmt.Errorf("workload: churn_process needs an open-loop arrival (its events span duration_ms)")
		}
	}
	if mb := sc.Mobility; mb != nil {
		if a.Process == ArrivalClosed {
			return fmt.Errorf("workload: mobility needs an open-loop arrival (its schedule spans duration_ms)")
		}
		if mb.Sinks < 0 || mb.Sinks >= sc.Deployment.N {
			return fmt.Errorf("workload: mobility sinks must be in [0,%d)", sc.Deployment.N)
		}
		if mb.DriftSigma < 0 || mb.DriftFraction < 0 || mb.DriftFraction > 1 {
			return fmt.Errorf("workload: mobility drift_sigma must be >= 0 and drift_fraction in [0,1]")
		}
		if mb.Sinks == 0 && (mb.DriftFraction == 0 || mb.DriftSigma == 0) {
			return fmt.Errorf("workload: mobility moves nothing (no sinks, no drift)")
		}
		if mb.SinkSpeed < 0 {
			return fmt.Errorf("workload: mobility sink_speed must be >= 0")
		}
		if mb.SinkSpeed == 0 {
			mb.SinkSpeed = 20
		}
		if mb.DriftFraction > 0 && mb.DriftSigma == 0 {
			mb.DriftSigma = 2
		}
		if mb.IntervalMS <= 0 {
			mb.IntervalMS = 250
		}
	}
	for i := range sc.Churn {
		ev := &sc.Churn[i]
		if ev.AtMS < 0 {
			return fmt.Errorf("workload: churn event %d at negative time %d", i, ev.AtMS)
		}
		if ev.FailRandom < 0 || ev.ReviveRandom < 0 {
			return fmt.Errorf("workload: churn event %d: fail_random and revive_random must be >= 0", i)
		}
		if len(ev.Fail) == 0 && len(ev.Revive) == 0 && ev.FailRandom == 0 && ev.ReviveRandom == 0 && !ev.ReviveAll {
			return fmt.Errorf("workload: churn event %d does nothing", i)
		}
		for _, u := range append(append([]topo.NodeID{}, ev.Fail...), ev.Revive...) {
			if u < 0 || int(u) >= sc.Deployment.N {
				return fmt.Errorf("workload: churn event %d: node %d out of range [0,%d)", i, u, sc.Deployment.N)
			}
		}
		if a.Process != ArrivalClosed && ev.AtMS >= a.DurationMS {
			return fmt.Errorf("workload: churn event %d at %dms is past the %dms run", i, ev.AtMS, a.DurationMS)
		}
	}
	sort.SliceStable(sc.Churn, func(i, j int) bool { return sc.Churn[i].AtMS < sc.Churn[j].AtMS })

	if sc.TimelineBucketMS <= 0 {
		sc.TimelineBucketMS = 250
	}
	if sc.WarmupRequests < 0 {
		return fmt.Errorf("workload: warmup_requests must be >= 0")
	}
	return nil
}

// expandChurn returns the scenario with its ChurnProcess expanded into
// concrete fail_random/revive_random events merged into the churn
// schedule, or the scenario itself when there is nothing to expand. The
// receiver is never mutated (sweeps run one scenario template across
// many rungs). Expansion draws both Poisson streams from the scenario
// seed, so one scenario always yields one schedule — the determinism
// the trace recorder pins.
func (sc *Scenario) expandChurn() *Scenario {
	cp := sc.ChurnProcess
	if cp == nil {
		return sc
	}
	out := *sc
	out.ChurnProcess = nil
	out.Churn = append([]ChurnEvent(nil), sc.Churn...)
	rng := rand.New(rand.NewPCG(sc.Seed, 0x636875726e2d7073))
	stream := func(rateHz float64, mk func() ChurnEvent) {
		if rateHz <= 0 {
			return
		}
		for tMS := 0.0; ; {
			tMS += rng.ExpFloat64() / rateHz * 1000
			if int(tMS) >= sc.Arrival.DurationMS {
				return
			}
			ev := mk()
			ev.AtMS = int(tMS)
			out.Churn = append(out.Churn, ev)
		}
	}
	stream(cp.FailRateHz, func() ChurnEvent { return ChurnEvent{FailRandom: 1} })
	stream(cp.ReviveRateHz, func() ChurnEvent { return ChurnEvent{ReviveRandom: 1} })
	sort.SliceStable(out.Churn, func(i, j int) bool { return out.Churn[i].AtMS < out.Churn[j].AtMS })
	return &out
}

// Parse strictly decodes a scenario JSON document (unknown fields are
// rejected, like the server's request decoding) and validates it.
func Parse(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("workload: bad scenario JSON: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// ParseFile reads and parses a scenario JSON file.
func ParseFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	sc, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return sc, nil
}

// Presets lists the canned scenario names.
func Presets() []string {
	return []string{"steady", "hotspot", "convergecast", "churn-storm", "mobile-sink"}
}

// Preset returns a canned scenario by name, validated. The presets
// share one 500-node FA deployment and the paper's SLGF2 router:
//
//   - steady: open-loop Poisson at 2000 req/s over uniform pairs — the
//     baseline operating point.
//   - hotspot: the same arrivals with Zipf-skewed destinations — a few
//     nodes absorb most traffic, exercising the route cache.
//   - convergecast: Poisson many-to-one toward 4 sinks — the
//     paper-native sensor-field pattern.
//   - churn-storm: bursty convergecast with nodes dying every second
//     and a mass revival — the repair path under live load.
//   - mobile-sink: convergecast on an obstacle field whose sinks walk
//     waypoint trajectories while 2%% of nodes drift each half second
//     and Poisson fail/revive churn runs continuously — hostile
//     geometry plus mobility, the position-repair path under live load.
func Preset(name string) (*Scenario, error) {
	dep := DeploymentSpec{Model: "fa", N: 500, Seed: 42}
	var sc *Scenario
	switch name {
	case "steady":
		sc = &Scenario{
			Name:       "steady",
			Deployment: dep,
			Algorithm:  "SLGF2",
			Arrival:    Arrival{Process: ArrivalPoisson, RateHz: 2000, DurationMS: 10000},
			Traffic:    Traffic{Pattern: TrafficUniform},
		}
	case "hotspot":
		sc = &Scenario{
			Name:       "hotspot",
			Deployment: dep,
			Algorithm:  "SLGF2",
			Arrival:    Arrival{Process: ArrivalPoisson, RateHz: 2000, DurationMS: 10000},
			Traffic:    Traffic{Pattern: TrafficZipf},
		}
	case "convergecast":
		sc = &Scenario{
			Name:       "convergecast",
			Deployment: dep,
			Algorithm:  "SLGF2",
			Arrival:    Arrival{Process: ArrivalPoisson, RateHz: 2000, DurationMS: 10000},
			Traffic:    Traffic{Pattern: TrafficConvergecast},
		}
	case "churn-storm":
		sc = &Scenario{
			Name:       "churn-storm",
			Deployment: dep,
			Algorithm:  "SLGF2",
			Arrival:    Arrival{Process: ArrivalBursty, RateHz: 3000, DurationMS: 10000, OnMS: 400, OffMS: 100},
			Traffic:    Traffic{Pattern: TrafficConvergecast},
			Churn: []ChurnEvent{
				{AtMS: 1000, FailRandom: 5},
				{AtMS: 2000, FailRandom: 5},
				{AtMS: 3000, FailRandom: 5},
				{AtMS: 4000, FailRandom: 5},
				{AtMS: 5000, FailRandom: 5},
				{AtMS: 6000, FailRandom: 5},
				{AtMS: 7000, FailRandom: 5},
				{AtMS: 8000, ReviveAll: true},
			},
		}
	case "mobile-sink":
		sc = &Scenario{
			Name:       "mobile-sink",
			Deployment: DeploymentSpec{Model: "ob", N: 400, Seed: 42, Coverage: 0.2},
			Algorithm:  "SLGF2",
			Arrival:    Arrival{Process: ArrivalPoisson, RateHz: 1500, DurationMS: 10000},
			Traffic:    Traffic{Pattern: TrafficConvergecast, Sinks: 3},
			Mobility: &Mobility{
				Sinks: 3, SinkSpeed: 25,
				DriftSigma: 3, DriftFraction: 0.02, IntervalMS: 500,
			},
			ChurnProcess: &ChurnProcess{Process: "poisson", FailRateHz: 1.5, ReviveRateHz: 1},
		}
	default:
		return nil, fmt.Errorf("workload: unknown preset %q (want one of %v)", name, Presets())
	}
	sc.WarmupRequests = 200
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("workload: preset %s: %w", name, err)
	}
	return sc, nil
}
