package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"github.com/straightpath/wasn/internal/topo"
)

// Arrival process names.
const (
	ArrivalClosed  = "closed"
	ArrivalPoisson = "poisson"
	ArrivalBursty  = "bursty"
)

// Traffic pattern names.
const (
	TrafficUniform      = "uniform"
	TrafficZipf         = "zipf"
	TrafficConvergecast = "convergecast"
)

// DeploymentSpec names the deployment a scenario runs against, in the
// wire vocabulary of the /deploy endpoint.
type DeploymentSpec struct {
	// Name is the registry name; empty means the MODEL-N-SEED default.
	Name string `json:"name,omitempty"`
	// Model is "ia" or "fa".
	Model string `json:"model"`
	// N is the node count.
	N int `json:"n"`
	// Seed is the deployment seed.
	Seed uint64 `json:"seed"`
}

// Arrival selects and parameterizes the arrival process.
type Arrival struct {
	// Process is one of "closed", "poisson", "bursty".
	Process string `json:"process"`
	// Requests is the closed-loop total request count.
	Requests int `json:"requests,omitempty"`
	// Concurrency is the closed-loop client count, and the worker-pool
	// size absorbing open-loop arrivals. 0 means GOMAXPROCS for closed
	// loops and 4x that for open loops (open-loop workers block on the
	// driver, so the pool must ride out latency spikes to sustain the
	// offered rate).
	Concurrency int `json:"concurrency,omitempty"`
	// RateHz is the open-loop target arrival rate (mean rate of the
	// Poisson process; the on-period rate for bursty arrivals).
	RateHz float64 `json:"rate_hz,omitempty"`
	// DurationMS is the open-loop run length.
	DurationMS int `json:"duration_ms,omitempty"`
	// OnMS/OffMS are the bursty on/off period lengths.
	OnMS  int `json:"on_ms,omitempty"`
	OffMS int `json:"off_ms,omitempty"`
}

// Traffic selects and parameterizes the traffic matrix.
type Traffic struct {
	// Pattern is one of "uniform", "zipf", "convergecast".
	Pattern string `json:"pattern"`
	// Pairs is the uniform pattern's routable-pair pool size (default
	// 256).
	Pairs int `json:"pairs,omitempty"`
	// MinDist is the uniform pattern's minimum source-destination
	// separation (default 60, the paper's multi-hop regime).
	MinDist float64 `json:"min_dist,omitempty"`
	// Hotspots is the zipf pattern's distinct destination count
	// (default 16); destination popularity is Zipf(ZipfS) over them.
	Hotspots int `json:"hotspots,omitempty"`
	// ZipfS is the zipf exponent (> 1, default 1.2).
	ZipfS float64 `json:"zipf_s,omitempty"`
	// Sinks is the convergecast sink count (default 4); every other
	// node sources packets to its nearest sink.
	Sinks int `json:"sinks,omitempty"`
}

// ChurnEvent is one timed topology mutation of the schedule.
type ChurnEvent struct {
	// AtMS is the event time, an offset from the measured run's start.
	AtMS int `json:"at_ms"`
	// Fail lists explicit nodes to kill.
	Fail []topo.NodeID `json:"fail,omitempty"`
	// FailRandom kills that many scenario-seeded random alive nodes
	// (never a convergecast sink or zipf hotspot, so losses measure
	// the routing fabric, not a dead endpoint).
	FailRandom int `json:"fail_random,omitempty"`
	// Revive lists explicit nodes to bring back.
	Revive []topo.NodeID `json:"revive,omitempty"`
	// ReviveAll brings back every node failed so far.
	ReviveAll bool `json:"revive_all,omitempty"`
}

// Scenario is one complete workload description. The zero value is not
// runnable; build one via Parse/ParseFile/Preset or fill the fields and
// Validate.
type Scenario struct {
	// Name labels the scenario in reports.
	Name       string         `json:"name"`
	Deployment DeploymentSpec `json:"deployment"`
	// Algorithm is the routing algorithm under test (serve.Algorithms).
	Algorithm string  `json:"algorithm"`
	Arrival   Arrival `json:"arrival"`
	Traffic   Traffic `json:"traffic"`
	// Churn is the mutation schedule, sorted by AtMS (Validate sorts).
	Churn []ChurnEvent `json:"churn,omitempty"`
	// Seed drives every workload random choice (pair picks, Zipf
	// draws, FailRandom victims) — same scenario, same traffic.
	Seed uint64 `json:"seed,omitempty"`
	// WarmupRequests are routed before measurement starts and are not
	// recorded (they pay the lazy substrate build and prime the cache).
	WarmupRequests int `json:"warmup_requests,omitempty"`
	// TimelineBucketMS is the throughput-timeline resolution (default
	// 250).
	TimelineBucketMS int `json:"timeline_bucket_ms,omitempty"`
}

// Validate checks cross-field consistency, fills defaults, and sorts
// the churn schedule. It is called by Parse and Run.
func (sc *Scenario) Validate() error {
	if _, err := topo.ParseDeployModel(sc.Deployment.Model); err != nil {
		return fmt.Errorf("workload: deployment: %w", err)
	}
	if sc.Deployment.N <= 0 {
		return fmt.Errorf("workload: deployment: node count must be positive, got %d", sc.Deployment.N)
	}
	if sc.Algorithm == "" {
		return fmt.Errorf("workload: algorithm is required")
	}

	a := &sc.Arrival
	switch a.Process {
	case ArrivalClosed:
		if a.Requests <= 0 {
			return fmt.Errorf("workload: closed-loop arrival needs requests > 0")
		}
	case ArrivalPoisson, ArrivalBursty:
		if a.RateHz <= 0 {
			return fmt.Errorf("workload: %s arrival needs rate_hz > 0", a.Process)
		}
		if a.DurationMS <= 0 {
			return fmt.Errorf("workload: %s arrival needs duration_ms > 0", a.Process)
		}
		if a.Process == ArrivalBursty && (a.OnMS <= 0 || a.OffMS <= 0) {
			return fmt.Errorf("workload: bursty arrival needs on_ms > 0 and off_ms > 0")
		}
	default:
		return fmt.Errorf("workload: unknown arrival process %q (want %s, %s, or %s)",
			a.Process, ArrivalClosed, ArrivalPoisson, ArrivalBursty)
	}

	tr := &sc.Traffic
	switch tr.Pattern {
	case TrafficUniform:
		if tr.Pairs <= 0 {
			tr.Pairs = 256
		}
		if tr.MinDist <= 0 {
			tr.MinDist = 60
		}
	case TrafficZipf:
		if tr.Hotspots <= 0 {
			tr.Hotspots = 16
		}
		if tr.ZipfS == 0 {
			tr.ZipfS = 1.2
		}
		if tr.ZipfS <= 1 {
			return fmt.Errorf("workload: zipf_s must be > 1, got %v", tr.ZipfS)
		}
	case TrafficConvergecast:
		if tr.Sinks <= 0 {
			tr.Sinks = 4
		}
		if tr.Sinks >= sc.Deployment.N {
			return fmt.Errorf("workload: %d sinks leave no sources among %d nodes", tr.Sinks, sc.Deployment.N)
		}
	default:
		return fmt.Errorf("workload: unknown traffic pattern %q (want %s, %s, or %s)",
			tr.Pattern, TrafficUniform, TrafficZipf, TrafficConvergecast)
	}

	for i := range sc.Churn {
		ev := &sc.Churn[i]
		if ev.AtMS < 0 {
			return fmt.Errorf("workload: churn event %d at negative time %d", i, ev.AtMS)
		}
		if ev.FailRandom < 0 {
			return fmt.Errorf("workload: churn event %d: fail_random must be >= 0", i)
		}
		if len(ev.Fail) == 0 && len(ev.Revive) == 0 && ev.FailRandom == 0 && !ev.ReviveAll {
			return fmt.Errorf("workload: churn event %d does nothing", i)
		}
		for _, u := range append(append([]topo.NodeID{}, ev.Fail...), ev.Revive...) {
			if u < 0 || int(u) >= sc.Deployment.N {
				return fmt.Errorf("workload: churn event %d: node %d out of range [0,%d)", i, u, sc.Deployment.N)
			}
		}
		if a.Process != ArrivalClosed && ev.AtMS >= a.DurationMS {
			return fmt.Errorf("workload: churn event %d at %dms is past the %dms run", i, ev.AtMS, a.DurationMS)
		}
	}
	sort.SliceStable(sc.Churn, func(i, j int) bool { return sc.Churn[i].AtMS < sc.Churn[j].AtMS })

	if sc.TimelineBucketMS <= 0 {
		sc.TimelineBucketMS = 250
	}
	if sc.WarmupRequests < 0 {
		return fmt.Errorf("workload: warmup_requests must be >= 0")
	}
	return nil
}

// Parse strictly decodes a scenario JSON document (unknown fields are
// rejected, like the server's request decoding) and validates it.
func Parse(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("workload: bad scenario JSON: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// ParseFile reads and parses a scenario JSON file.
func ParseFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	sc, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return sc, nil
}

// Presets lists the canned scenario names.
func Presets() []string {
	return []string{"steady", "hotspot", "convergecast", "churn-storm"}
}

// Preset returns a canned scenario by name, validated. The presets
// share one 500-node FA deployment and the paper's SLGF2 router:
//
//   - steady: open-loop Poisson at 2000 req/s over uniform pairs — the
//     baseline operating point.
//   - hotspot: the same arrivals with Zipf-skewed destinations — a few
//     nodes absorb most traffic, exercising the route cache.
//   - convergecast: Poisson many-to-one toward 4 sinks — the
//     paper-native sensor-field pattern.
//   - churn-storm: bursty convergecast with nodes dying every second
//     and a mass revival — the repair path under live load.
func Preset(name string) (*Scenario, error) {
	dep := DeploymentSpec{Model: "fa", N: 500, Seed: 42}
	var sc *Scenario
	switch name {
	case "steady":
		sc = &Scenario{
			Name:       "steady",
			Deployment: dep,
			Algorithm:  "SLGF2",
			Arrival:    Arrival{Process: ArrivalPoisson, RateHz: 2000, DurationMS: 10000},
			Traffic:    Traffic{Pattern: TrafficUniform},
		}
	case "hotspot":
		sc = &Scenario{
			Name:       "hotspot",
			Deployment: dep,
			Algorithm:  "SLGF2",
			Arrival:    Arrival{Process: ArrivalPoisson, RateHz: 2000, DurationMS: 10000},
			Traffic:    Traffic{Pattern: TrafficZipf},
		}
	case "convergecast":
		sc = &Scenario{
			Name:       "convergecast",
			Deployment: dep,
			Algorithm:  "SLGF2",
			Arrival:    Arrival{Process: ArrivalPoisson, RateHz: 2000, DurationMS: 10000},
			Traffic:    Traffic{Pattern: TrafficConvergecast},
		}
	case "churn-storm":
		sc = &Scenario{
			Name:       "churn-storm",
			Deployment: dep,
			Algorithm:  "SLGF2",
			Arrival:    Arrival{Process: ArrivalBursty, RateHz: 3000, DurationMS: 10000, OnMS: 400, OffMS: 100},
			Traffic:    Traffic{Pattern: TrafficConvergecast},
			Churn: []ChurnEvent{
				{AtMS: 1000, FailRandom: 5},
				{AtMS: 2000, FailRandom: 5},
				{AtMS: 3000, FailRandom: 5},
				{AtMS: 4000, FailRandom: 5},
				{AtMS: 5000, FailRandom: 5},
				{AtMS: 6000, FailRandom: 5},
				{AtMS: 7000, FailRandom: 5},
				{AtMS: 8000, ReviveAll: true},
			},
		}
	default:
		return nil, fmt.Errorf("workload: unknown preset %q (want one of %v)", name, Presets())
	}
	sc.WarmupRequests = 200
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("workload: preset %s: %w", name, err)
	}
	return sc, nil
}
