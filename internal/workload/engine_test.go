package workload

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/topo"
)

// tinyDeployment keeps substrate builds fast in CI smoke runs while
// staying dense enough (avg degree ~8.6) that SLGF2 delivers ~100%
// over an undamaged component — FA at 200 nodes is too sparse for
// delivery assertions to hold.
var tinyDeployment = DeploymentSpec{Model: "fa", N: 300, Seed: 7}

func newInProcess() *InProcess {
	return NewInProcess(serve.New(serve.Config{}))
}

// TestSmokeArrivalProcesses runs one tiny canned scenario per arrival
// process through the in-process driver — the CI gate that keeps the
// scenario plumbing from rotting.
func TestSmokeArrivalProcesses(t *testing.T) {
	scenarios := []Scenario{
		{
			Name:       "smoke-closed",
			Deployment: tinyDeployment,
			Algorithm:  "SLGF2",
			Arrival:    Arrival{Process: ArrivalClosed, Requests: 300, Concurrency: 4},
			Traffic:    Traffic{Pattern: TrafficUniform, Pairs: 64},
		},
		{
			Name:       "smoke-poisson",
			Deployment: tinyDeployment,
			Algorithm:  "SLGF2",
			Arrival:    Arrival{Process: ArrivalPoisson, RateHz: 2000, DurationMS: 200},
			Traffic:    Traffic{Pattern: TrafficZipf, Hotspots: 8},
		},
		{
			Name:       "smoke-bursty",
			Deployment: tinyDeployment,
			Algorithm:  "SLGF2",
			Arrival:    Arrival{Process: ArrivalBursty, RateHz: 3000, DurationMS: 200, OnMS: 40, OffMS: 20},
			Traffic:    Traffic{Pattern: TrafficConvergecast, Sinks: 3},
		},
	}
	for i := range scenarios {
		sc := &scenarios[i]
		t.Run(sc.Name, func(t *testing.T) {
			rep, err := Run(newInProcess(), sc)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Errors != 0 {
				t.Fatalf("%d request errors, first: %s", rep.Errors, rep.ErrorSample)
			}
			if rep.Requests == 0 {
				t.Fatal("no requests issued")
			}
			if sc.Arrival.Process == ArrivalClosed && rep.Requests != int64(sc.Arrival.Requests) {
				t.Fatalf("closed loop issued %d requests; want exactly %d", rep.Requests, sc.Arrival.Requests)
			}
			if rep.DeliveryRate < 0.9 {
				t.Fatalf("delivery rate %.2f over an undamaged component", rep.DeliveryRate)
			}
			if len(rep.Timeline) == 0 {
				t.Fatal("empty throughput timeline")
			}
			if rep.Latency.P50us <= 0 || rep.Latency.P999us < rep.Latency.P50us {
				t.Fatalf("implausible latency summary: %+v", rep.Latency)
			}
			if rep.Server == nil || rep.Server.Routes == 0 {
				t.Fatalf("missing server stats: %+v", rep.Server)
			}
			// Reports must round-trip as JSON (they land in BENCH files).
			var buf bytes.Buffer
			if err := rep.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			var back Report
			if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
				t.Fatal(err)
			}
			if back.Requests != rep.Requests {
				t.Fatalf("JSON round-trip lost requests: %d != %d", back.Requests, rep.Requests)
			}
			if rep.Summary() == "" {
				t.Fatal("empty summary")
			}
		})
	}
}

// TestChurnUnderLoad drives an open-loop convergecast while the churn
// schedule fails and revives nodes mid-run; under -race this is the
// subsystem's central soundness storm. The schedule must fire fully,
// phases must split at each event, and the post-revival phase must
// recover delivery.
func TestChurnUnderLoad(t *testing.T) {
	sc := &Scenario{
		Name:       "churn-under-load",
		Deployment: tinyDeployment,
		Algorithm:  "SLGF2",
		Arrival:    Arrival{Process: ArrivalPoisson, RateHz: 3000, DurationMS: 700, Concurrency: 8},
		Traffic:    Traffic{Pattern: TrafficConvergecast, Sinks: 3},
		Churn: []ChurnEvent{
			{AtMS: 150, FailRandom: 4},
			{AtMS: 300, FailRandom: 4},
			{AtMS: 450, ReviveAll: true},
		},
		WarmupRequests: 50,
	}
	rep, err := Run(newInProcess(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d request errors, first: %s", rep.Errors, rep.ErrorSample)
	}
	if len(rep.Churn) != 3 {
		t.Fatalf("churn fired %d/3 events: %+v", len(rep.Churn), rep.Churn)
	}
	for _, ev := range rep.Churn {
		if ev.Err != "" {
			t.Fatalf("churn event at %dms failed: %s", ev.AtMS, ev.Err)
		}
	}
	if got := len(rep.Churn[0].Failed); got != 4 {
		t.Fatalf("first event failed %d nodes; want 4", got)
	}
	if got := len(rep.Churn[2].Revived); got != 8 {
		t.Fatalf("revive_all revived %d nodes; want 8", got)
	}
	if len(rep.Phases) != 4 {
		t.Fatalf("got %d phases; want 4: %+v", len(rep.Phases), rep.Phases)
	}
	for i, ph := range rep.Phases {
		if ph.Requests == 0 {
			t.Fatalf("phase %d saw no requests", i)
		}
	}
	// The server must have repaired incrementally once per event.
	if rep.Server == nil || len(rep.Server.PerDeployment) != 1 {
		t.Fatalf("missing per-deployment stats: %+v", rep.Server)
	}
	ds := rep.Server.PerDeployment[0]
	if ds.Repairs != 3 || ds.Rebuilds != 0 || ds.FailedNodes != 0 {
		t.Fatalf("deployment stats = %+v; want 3 repairs, everything revived", ds)
	}
	// Post-revival delivery matches the pristine phase 0 closely.
	first, last := rep.Phases[0], rep.Phases[3]
	if last.DeliveryRate < first.DeliveryRate-0.05 {
		t.Fatalf("post-revival delivery %.3f well below pristine %.3f", last.DeliveryRate, first.DeliveryRate)
	}
}

// TestConvergecastRoutesToSinks pins the traffic matrix: every
// convergecast draw must target a sink, never source from one.
func TestConvergecastRoutesToSinks(t *testing.T) {
	sc := &Scenario{
		Name:       "cc",
		Deployment: tinyDeployment,
		Algorithm:  "GF",
		Arrival:    Arrival{Process: ArrivalClosed, Requests: 1},
		Traffic:    Traffic{Pattern: TrafficConvergecast, Sinks: 3},
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	tr, err := buildTraffic(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.sinks) != 3 {
		t.Fatalf("%d sinks; want 3", len(tr.sinks))
	}
	sink := make(map[topo.NodeID]bool)
	for _, s := range tr.sinks {
		sink[s] = true
	}
	pick := tr.picker(1, func(topo.NodeID) bool { return true })
	for i := 0; i < 500; i++ {
		src, dst := pick()
		if !sink[dst] {
			t.Fatalf("draw %d: dst %d is not a sink", i, dst)
		}
		if sink[src] {
			t.Fatalf("draw %d: src %d is a sink", i, src)
		}
	}
}

// TestPickerSkipsDeadSources pins the liveness contract: dead sources
// are rerolled, dead destinations are kept (their loss is the
// measurement).
func TestPickerSkipsDeadSources(t *testing.T) {
	sc := &Scenario{
		Name:       "dead-src",
		Deployment: tinyDeployment,
		Algorithm:  "GF",
		Arrival:    Arrival{Process: ArrivalClosed, Requests: 1},
		Traffic:    Traffic{Pattern: TrafficConvergecast, Sinks: 2},
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	tr, err := buildTraffic(sc)
	if err != nil {
		t.Fatal(err)
	}
	dead := map[topo.NodeID]bool{}
	for _, u := range tr.members {
		if !tr.protected[u] {
			dead[u] = true
			if len(dead) == 50 {
				break
			}
		}
	}
	pick := tr.picker(2, func(u topo.NodeID) bool { return !dead[u] })
	for i := 0; i < 500; i++ {
		src, _ := pick()
		if dead[src] {
			t.Fatalf("draw %d picked dead source %d", i, src)
		}
	}
}

// TestTrafficDeterminism pins that the same scenario seed reproduces
// the same draws — reports are comparable across runs and drivers.
func TestTrafficDeterminism(t *testing.T) {
	sc, err := Parse([]byte(validScenarioJSON()))
	if err != nil {
		t.Fatal(err)
	}
	a, err := buildTraffic(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildTraffic(sc)
	if err != nil {
		t.Fatal(err)
	}
	alive := func(topo.NodeID) bool { return true }
	pa, pb := a.picker(9, alive), b.picker(9, alive)
	for i := 0; i < 200; i++ {
		as, ad := pa()
		bs, bd := pb()
		if as != bs || ad != bd {
			t.Fatalf("draw %d diverged: (%d,%d) vs (%d,%d)", i, as, ad, bs, bd)
		}
	}
}

// TestRunWithProgressAndMetricsDelta pins the live-progress stream and
// the before/after metrics scrape: a churny open-loop run must emit
// ticker and churn lines to the Progress writer, and the report's
// MetricsDelta must show the routes the run drove plus the churn it
// applied, derived from the server's own exposition.
func TestRunWithProgressAndMetricsDelta(t *testing.T) {
	sc := &Scenario{
		Name:       "progress",
		Deployment: tinyDeployment,
		Algorithm:  "SLGF2",
		Arrival:    Arrival{Process: ArrivalPoisson, RateHz: 2000, DurationMS: 300},
		Traffic:    Traffic{Pattern: TrafficUniform, Pairs: 64},
		Churn:      []ChurnEvent{{AtMS: 100, FailRandom: 2}, {AtMS: 200, ReviveAll: true}},
	}
	var prog bytes.Buffer
	rep, err := RunWith(newInProcess(), sc, Options{Progress: &prog, ProgressEveryMS: 50})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d request errors, first: %s", rep.Errors, rep.ErrorSample)
	}
	out := prog.String()
	if !strings.Contains(out, "[workload]") || !strings.Contains(out, "req=") {
		t.Fatalf("no ticker progress lines:\n%s", out)
	}
	if !strings.Contains(out, "churn @100ms") || !strings.Contains(out, "churn @200ms") {
		t.Fatalf("churn events not narrated:\n%s", out)
	}
	if rep.MetricsDelta == nil {
		t.Fatal("report has no metrics delta from the in-process driver")
	}
	if d := rep.MetricsDelta["wasn_routes_total"]; d < float64(rep.Requests) {
		t.Fatalf("wasn_routes_total moved %+.0f; want >= %d requests", d, rep.Requests)
	}
	if d := rep.MetricsDelta["wasn_failed_nodes_total"]; d != 2 {
		t.Fatalf("wasn_failed_nodes_total moved %+.0f; want 2", d)
	}
	// The delta keys are full series identities: the per-algorithm
	// outcome series must be present for the scenario's algorithm.
	if d := rep.MetricsDelta[`wasn_routes_computed_total{algorithm="SLGF2",outcome="delivered"}`]; d <= 0 {
		t.Fatalf("per-algorithm computed series did not move: %v", rep.MetricsDelta)
	}
	// Summary must surface the delta without drowning the report.
	if s := rep.Summary(); !strings.Contains(s, "series moved") {
		t.Fatalf("summary does not mention the metrics delta:\n%s", s)
	}
}
