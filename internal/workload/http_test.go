package workload

import (
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/topo"
)

func newHTTPFixture(t *testing.T) (*HTTP, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	t.Cleanup(ts.Close)
	drv := NewHTTP(ts.URL)
	t.Cleanup(func() { _ = drv.Close() })
	return drv, ts
}

func TestHTTPDriverRoundTrip(t *testing.T) {
	drv, _ := newHTTPFixture(t)
	name, err := drv.Deploy("", tinyDeployment)
	if err != nil {
		t.Fatal(err)
	}
	if name != "FA-300-7" {
		t.Fatalf("deploy returned name %q", name)
	}
	// Redeploying the same spec over the wire is idempotent.
	if _, err := drv.Deploy("", tinyDeployment); err != nil {
		t.Fatalf("idempotent redeploy: %v", err)
	}
	out, err := drv.Route(name, "SLGF2", 3, 250)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cached {
		t.Fatal("first route reported cached")
	}
	again, err := drv.Route(name, "SLGF2", 3, 250)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Hops != out.Hops || again.Delivered != out.Delivered {
		t.Fatalf("cached route diverged: %+v vs %+v", again, out)
	}
	if err := drv.Fail(name, []topo.NodeID{10, 11}); err != nil {
		t.Fatal(err)
	}
	if err := drv.Revive(name, []topo.NodeID{10, 11}); err != nil {
		t.Fatal(err)
	}
	st, err := drv.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Routes < 2 || st.FailedNodes != 2 || st.RevivedNodes != 2 {
		t.Fatalf("stats over the wire = %+v", st)
	}
	if len(st.PerDeployment) != 1 || st.PerDeployment[0].Repairs != 2 {
		t.Fatalf("per-deployment stats over the wire = %+v", st.PerDeployment)
	}
}

// TestHTTPDriverErrorPaths pins that server-side 4xx errors surface as
// driver errors carrying the server's message.
func TestHTTPDriverErrorPaths(t *testing.T) {
	drv, _ := newHTTPFixture(t)
	if _, err := drv.Route("ghost", "SLGF2", 0, 1); err == nil || !strings.Contains(err.Error(), "unknown deployment") {
		t.Fatalf("unknown deployment error = %v", err)
	}
	name, err := drv.Deploy("", tinyDeployment)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drv.Route(name, "NOPE", 0, 1); err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("unknown algorithm error = %v", err)
	}
	if _, err := drv.Route(name, "SLGF2", 0, topo.NodeID(tinyDeployment.N)); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range error = %v", err)
	}
	if err := drv.Fail(name, []topo.NodeID{-1}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("fail out-of-range error = %v", err)
	}
	if _, err := drv.Deploy("", DeploymentSpec{Model: "hex", N: 10, Seed: 1}); err == nil {
		t.Fatal("bad model deployed over the wire")
	}
}

// TestRunUnreachableTarget pins the all-errors outcome: a scenario
// against a dead server must fail loudly, not report zeros.
func TestRunUnreachableTarget(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	ts.Close() // immediately dead
	sc := &Scenario{
		Name:       "dead-target",
		Deployment: tinyDeployment,
		Algorithm:  "SLGF2",
		Arrival:    Arrival{Process: ArrivalClosed, Requests: 4},
		Traffic:    Traffic{Pattern: TrafficUniform, Pairs: 16},
	}
	if _, err := Run(NewHTTP(ts.URL), sc); err == nil {
		t.Fatal("run against a closed server succeeded")
	}
}

func TestNewDriverValidation(t *testing.T) {
	if _, err := NewDriver("http", "", serve.Config{}); err == nil {
		t.Fatal("http driver without target accepted")
	}
	if _, err := NewDriver("carrier-pigeon", "", serve.Config{}); err == nil {
		t.Fatal("unknown driver kind accepted")
	}
	d, err := NewDriver("", "", serve.Config{})
	if err != nil || d.Name() != "inprocess" {
		t.Fatalf("default driver = %v, %v", d, err)
	}
}

// TestHTTPChurnStorm runs the open-loop churn scenario end to end over
// a real wire — the HTTP half of the acceptance storm; under -race it
// also pins the driver's concurrent connection reuse.
func TestHTTPChurnStorm(t *testing.T) {
	drv, _ := newHTTPFixture(t)
	sc := &Scenario{
		Name:       "http-churn",
		Deployment: tinyDeployment,
		Algorithm:  "SLGF2",
		Arrival:    Arrival{Process: ArrivalPoisson, RateHz: 800, DurationMS: 600, Concurrency: 8},
		Traffic:    Traffic{Pattern: TrafficConvergecast, Sinks: 3},
		Churn: []ChurnEvent{
			{AtMS: 200, FailRandom: 3},
			{AtMS: 400, ReviveAll: true},
		},
		WarmupRequests: 20,
	}
	rep, err := Run(drv, sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d request errors over the wire, first: %s", rep.Errors, rep.ErrorSample)
	}
	if rep.Driver != "http" {
		t.Fatalf("driver label = %q", rep.Driver)
	}
	if len(rep.Churn) != 2 || rep.Churn[0].Err != "" || rep.Churn[1].Err != "" {
		t.Fatalf("churn over the wire: %+v", rep.Churn)
	}
	if rep.Server == nil || rep.Server.PerDeployment[0].Repairs != 2 {
		t.Fatalf("server stats after storm: %+v", rep.Server)
	}
	if rep.DeliveryRate < 0.8 {
		t.Fatalf("delivery rate %.2f", rep.DeliveryRate)
	}
}
