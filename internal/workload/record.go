package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/straightpath/wasn/internal/topo"
)

// Trace line kinds. A trace is JSONL: one header line, then request and
// churn lines sorted by time offset, then one summary line.
const (
	traceKindHeader  = "h"
	traceKindRequest = "r"
	traceKindFail    = "f"
	traceKindRevive  = "v"
	traceKindMove    = "m"
	traceKindSummary = "s"
)

// traceVersion is bumped whenever the line format changes incompatibly.
const traceVersion = 1

// TraceHeader is the first line of a trace: everything a replay needs
// to re-create the run's environment (the deployment is reproducible
// from its spec, so the spec is all that must persist).
type TraceHeader struct {
	Kind      string         `json:"t"`
	Version   int            `json:"v"`
	Scenario  string         `json:"scenario"`
	Deploy    DeploymentSpec `json:"deployment"`
	Algorithm string         `json:"algorithm"`
	Seed      uint64         `json:"seed,omitempty"`
}

// TraceEvent is one request or churn line of a trace. At is the event's
// intended time as a nanosecond offset from the measured run's start —
// for requests, the *arrival* time the open loop scheduled (not when a
// worker got to it), so a replay reproduces the offered load, not the
// original run's service jitter.
type TraceEvent struct {
	Kind string `json:"t"`
	At   int64  `json:"at"`
	// Src/Dst are set on request ("r") lines.
	Src topo.NodeID `json:"src"`
	Dst topo.NodeID `json:"dst"`
	// Nodes is set on churn ("f"/"v") lines.
	Nodes []topo.NodeID `json:"nodes,omitempty"`
	// Moves is set on mobility ("m") lines. The kind is additive — old
	// traces never carry it, and readers predating it reject it via the
	// unknown-kind check rather than misreading lines.
	Moves []topo.Move `json:"moves,omitempty"`
}

// TraceSummary is the last line of a trace: the recorded run's outcome
// counts, the reference a replay verifies against (exact for churnless
// traces; see Replay for the churn-boundary caveat).
type TraceSummary struct {
	Kind      string `json:"t"`
	Requests  int64  `json:"requests"`
	Delivered int64  `json:"delivered"`
	Errors    int64  `json:"errors"`
}

// recShards spreads concurrent request recording over independent
// buffers (keyed by source node) so engine workers don't convoy on one
// mutex while their own latency is being measured.
const recShards = 16

// Recorder wraps a Driver and captures the exact (src, dst, intended-at)
// request stream plus churn firings of a run into a trace. Pass it to
// Run (or Replay) in place of the inner driver, then WriteTo/WriteFile
// the trace:
//
//	rec := workload.NewRecorder(drv)
//	rep, err := workload.Run(rec, sc)
//	...
//	err = rec.WriteFile("run.trace.jsonl") // or rec.WriteTrace(w)
//
// The engine feeds the recorder each request's intended arrival offset
// (Driver.Route carries no timestamp), so the Recorder itself stays a
// transparent pass-through; recording works identically for both
// drivers. Entries are buffered in sharded in-memory buffers and
// written merged and sorted by (at, kind, src, dst) — a deterministic
// order independent of worker interleaving and shard assignment, so
// recording the same replayed trace twice produces byte-identical
// files. record is safe for concurrent use by any number of engine
// workers.
type Recorder struct {
	// Driver is the wrapped inner driver; every Driver method passes
	// straight through.
	Driver

	mu     sync.Mutex // guards header and the churn buffer
	header TraceHeader
	churn  []TraceEvent

	shards [recShards]struct {
		mu     sync.Mutex
		events []TraceEvent
	}

	requests  atomic.Int64
	delivered atomic.Int64
	errors    atomic.Int64
}

// NewRecorder wraps a driver for trace capture.
func NewRecorder(inner Driver) *Recorder {
	return &Recorder{Driver: inner}
}

// begin stamps the header from the run's scenario. The engine calls it
// when measurement starts; a second run on the same Recorder resets the
// buffer.
func (rec *Recorder) begin(h TraceHeader) {
	h.Kind = traceKindHeader
	h.Version = traceVersion
	rec.mu.Lock()
	rec.header = h
	rec.churn = rec.churn[:0]
	rec.mu.Unlock()
	for i := range rec.shards {
		sh := &rec.shards[i]
		sh.mu.Lock()
		sh.events = sh.events[:0]
		sh.mu.Unlock()
	}
	rec.requests.Store(0)
	rec.delivered.Store(0)
	rec.errors.Store(0)
}

// record captures one measured request and its outcome.
func (rec *Recorder) record(at time.Duration, src, dst topo.NodeID, out Outcome, err error) {
	rec.requests.Add(1)
	if err != nil {
		rec.errors.Add(1)
	} else if out.Delivered {
		rec.delivered.Add(1)
	}
	sh := &rec.shards[int(src)&(recShards-1)]
	sh.mu.Lock()
	sh.events = append(sh.events, TraceEvent{Kind: traceKindRequest, At: int64(at), Src: src, Dst: dst})
	sh.mu.Unlock()
}

// recordChurn captures one applied churn firing at its scheduled
// offset (scheduled, not wall-clock, so re-recording a replay
// reproduces the original churn lines bit-for-bit).
func (rec *Recorder) recordChurn(at time.Duration, kind string, nodes []topo.NodeID) {
	if len(nodes) == 0 {
		return
	}
	rec.mu.Lock()
	rec.churn = append(rec.churn, TraceEvent{Kind: kind, At: int64(at), Nodes: append([]topo.NodeID(nil), nodes...)})
	rec.mu.Unlock()
}

// recordMove captures one applied mobility batch at its scheduled
// offset.
func (rec *Recorder) recordMove(at time.Duration, moves []topo.Move) {
	if len(moves) == 0 {
		return
	}
	rec.mu.Lock()
	rec.churn = append(rec.churn, TraceEvent{Kind: traceKindMove, At: int64(at), Moves: append([]topo.Move(nil), moves...)})
	rec.mu.Unlock()
}

// traceEventRank orders kinds at the same instant: topology mutations
// sort before requests, so a request scheduled exactly at a mutation
// time replays against the post-event topology, matching the engine's
// phase accounting.
func traceEventRank(kind string) int {
	switch kind {
	case traceKindFail:
		return 0
	case traceKindRevive:
		return 1
	case traceKindMove:
		return 2
	default:
		return 3
	}
}

// sortTraceEvents puts events into the one canonical trace order —
// (at, kind rank, src, dst) — shared by WriteTrace and Replay so a
// replayed trace and its re-recording can never order the same events
// differently.
func sortTraceEvents(events []TraceEvent) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if ra, rb := traceEventRank(a.Kind), traceEventRank(b.Kind); ra != rb {
			return ra < rb
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
}

// WriteTrace writes the buffered trace as JSONL: header, time-sorted
// events, summary.
func (rec *Recorder) WriteTrace(w io.Writer) error {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.header.Kind == "" {
		return fmt.Errorf("workload: recorder captured no run")
	}
	events := append([]TraceEvent(nil), rec.churn...)
	for i := range rec.shards {
		sh := &rec.shards[i]
		sh.mu.Lock()
		events = append(events, sh.events...)
		sh.mu.Unlock()
	}
	sortTraceEvents(events)

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(rec.header); err != nil {
		return err
	}
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	sum := TraceSummary{
		Kind:      traceKindSummary,
		Requests:  rec.requests.Load(),
		Delivered: rec.delivered.Load(),
		Errors:    rec.errors.Load(),
	}
	if err := enc.Encode(sum); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteFile writes the trace to a file.
func (rec *Recorder) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	if err := rec.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Trace is a parsed trace: the recorded run's environment, its
// time-ordered request/churn stream, and the recorded outcome counts.
type Trace struct {
	Header  TraceHeader
	Events  []TraceEvent
	Summary *TraceSummary // nil when the trace was truncated before the summary line
}

// ReadTrace parses a JSONL trace.
func ReadTrace(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(r)
	var tr Trace
	for n := 0; ; n++ {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("workload: bad trace line %d: %w", n+1, err)
		}
		var kind struct {
			T string `json:"t"`
		}
		if err := json.Unmarshal(raw, &kind); err != nil {
			return nil, fmt.Errorf("workload: bad trace line %d: %w", n+1, err)
		}
		switch kind.T {
		case traceKindHeader:
			if err := json.Unmarshal(raw, &tr.Header); err != nil {
				return nil, fmt.Errorf("workload: bad trace header: %w", err)
			}
			if tr.Header.Version != traceVersion {
				return nil, fmt.Errorf("workload: trace version %d (this build reads %d)", tr.Header.Version, traceVersion)
			}
		case traceKindRequest, traceKindFail, traceKindRevive, traceKindMove:
			var ev TraceEvent
			if err := json.Unmarshal(raw, &ev); err != nil {
				return nil, fmt.Errorf("workload: bad trace line %d: %w", n+1, err)
			}
			tr.Events = append(tr.Events, ev)
		case traceKindSummary:
			var sum TraceSummary
			if err := json.Unmarshal(raw, &sum); err != nil {
				return nil, fmt.Errorf("workload: bad trace summary: %w", err)
			}
			tr.Summary = &sum
		default:
			return nil, fmt.Errorf("workload: trace line %d has unknown kind %q", n+1, kind.T)
		}
	}
	if tr.Header.Kind == "" {
		return nil, fmt.Errorf("workload: trace has no header line")
	}
	if len(tr.Events) == 0 {
		return nil, fmt.Errorf("workload: trace has no request lines")
	}
	return &tr, nil
}

// ReadTraceFile reads and parses a trace file.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	tr, err := ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return tr, nil
}
