package workload

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/straightpath/wasn/internal/topo"
)

// ReplayOptions tune trace replay. The zero value replays as fast as
// the driver allows, preserving event order.
type ReplayOptions struct {
	// Paced re-issues each request at its recorded arrival offset (the
	// original run's offered load, reproduced in real time) instead of
	// as fast as possible. Paced replays measure latency from the
	// recorded arrival, like the open-loop engine; unpaced replays
	// measure from dispatch.
	Paced bool
	// Concurrency is the worker pool size (default 4×GOMAXPROCS, like
	// the open-loop engine).
	Concurrency int
}

// Replay re-issues a recorded trace against a driver: the identical
// (src, dst, intended-at) request stream, with each recorded churn
// firing applied at its place in the stream. Requests between two
// churn firings route concurrently; a churn line is a barrier — the
// pool drains, the mutation applies, and a new report phase opens — so
// every request routes against exactly the topology its position in
// the trace dictates. That makes replay outcomes deterministic: two
// replays of one trace yield identical delivery and error counts, and
// replaying through a fresh Recorder reproduces the trace's request
// and churn lines byte-for-byte.
//
// Determinism is per-trace, not per-original-run: in the recorded run,
// a request scheduled just before a churn event may have been *served*
// just after it, so traces with churn can legitimately differ from
// their original run by a few boundary-straddling outcomes. Churnless
// traces replay exactly; Trace.VerifySummary checks that.
func Replay(drv Driver, tr *Trace, opt ReplayOptions) (*Report, error) {
	if len(tr.Events) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	dep, err := drv.Deploy(tr.Header.Deploy.Name, tr.Header.Deploy)
	if err != nil {
		return nil, fmt.Errorf("workload: replay deploy: %w", err)
	}

	// The synthetic scenario carries just what reporting reads; replay
	// has no arrival process or traffic matrix of its own.
	sc := &Scenario{
		Name:             tr.Header.Scenario + ":replay",
		Deployment:       tr.Header.Deploy,
		Algorithm:        tr.Header.Algorithm,
		Arrival:          Arrival{Process: "replay"},
		Seed:             tr.Header.Seed,
		TimelineBucketMS: 250,
	}
	r := &run{drv: drv, sc: sc, dep: dep}
	if rec, ok := drv.(*Recorder); ok {
		r.rec = rec
		rec.begin(TraceHeader{Scenario: tr.Header.Scenario, Deploy: tr.Header.Deploy, Algorithm: tr.Header.Algorithm, Seed: tr.Header.Seed})
	}

	// Defensive sort into the canonical trace order: traces written by
	// Recorder already have it, but replay must not depend on
	// hand-edited files being so (and re-recording this replay sorts
	// with the same comparator, so the two can never diverge).
	events := append([]TraceEvent(nil), tr.Events...)
	sortTraceEvents(events)

	// Fail/revive lines open report phases like the engine's schedule;
	// move lines are barriers too (so replay outcomes stay
	// deterministic) but remain inside their phase, matching how the
	// engine treats continuous mobility.
	churnLines := 0
	for _, ev := range events {
		if ev.Kind == traceKindFail || ev.Kind == traceKindRevive {
			churnLines++
		}
	}
	buckets := 4096
	if opt.Paced {
		buckets = int(events[len(events)-1].At/1e6)/sc.TimelineBucketMS + 64
	}
	r.initPhases(churnLines, buckets)

	conc := opt.Concurrency
	if conc <= 0 {
		conc = 4 * runtime.GOMAXPROCS(0)
	}

	type item struct {
		t0       time.Time
		at       time.Duration
		src, dst topo.NodeID
	}
	var wg sync.WaitGroup
	var queue chan item
	startPool := func() {
		queue = make(chan item, 1024)
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for it := range queue {
					r.routeOnce(it.t0, it.at, it.src, it.dst)
				}
			}()
		}
	}

	r.start = time.Now()
	startPool()
	phase := 0
	for _, ev := range events {
		at := time.Duration(ev.At)
		switch ev.Kind {
		case traceKindRequest:
			t0 := time.Now()
			if opt.Paced {
				t0 = r.start.Add(at)
				const spin = 200 * time.Microsecond
				if d := time.Until(t0); d > spin {
					time.Sleep(d - spin)
				}
				for time.Now().Before(t0) {
					runtime.Gosched()
				}
			}
			queue <- item{t0: t0, at: at, src: ev.Src, dst: ev.Dst}
		case traceKindMove:
			// Mobility barrier: drain, move, resume inside the same phase.
			close(queue)
			wg.Wait()
			if err := drv.Move(dep, ev.Moves); err == nil {
				r.moved.Add(int64(len(ev.Moves)))
				if r.rec != nil {
					r.rec.recordMove(at, ev.Moves)
				}
			}
			startPool()
		default:
			// Churn barrier: drain in-flight requests, mutate, open the
			// next phase, restart the pool.
			close(queue)
			wg.Wait()
			applied := AppliedChurn{AtMS: int(at / time.Millisecond)}
			var cerr error
			if ev.Kind == traceKindFail {
				if cerr = drv.Fail(dep, ev.Nodes); cerr == nil {
					applied.Failed = ev.Nodes
				}
			} else {
				if cerr = drv.Revive(dep, ev.Nodes); cerr == nil {
					applied.Revived = ev.Nodes
				}
			}
			if cerr != nil {
				applied.Err = cerr.Error()
			} else if r.rec != nil {
				r.rec.recordChurn(at, ev.Kind, ev.Nodes)
			}
			applied.AppliedMS = float64(time.Since(r.start).Microseconds()) / 1000
			r.churn = append(r.churn, applied)
			phase++
			r.openPhase(phase)
			startPool()
		}
	}
	close(queue)
	wg.Wait()
	return r.report(time.Since(r.start))
}

// VerifySummary checks a replay report against the trace's recorded
// outcome counts. Exact agreement is guaranteed for churnless traces;
// traces with churn may differ by requests that straddled a churn
// boundary in the original run (see Replay), so callers verifying a
// churned trace should compare two replays of it instead.
func (tr *Trace) VerifySummary(rep *Report) error {
	if tr.Summary == nil {
		return fmt.Errorf("workload: trace has no summary line to verify against")
	}
	s := tr.Summary
	if rep.Requests != s.Requests || rep.Delivered != s.Delivered || rep.Errors != s.Errors {
		return fmt.Errorf("workload: replay diverged from recorded run: requests %d/%d, delivered %d/%d, errors %d/%d (replayed/recorded)",
			rep.Requests, s.Requests, rep.Delivered, s.Delivered, rep.Errors, s.Errors)
	}
	return nil
}
