package workload

import (
	"strings"
	"testing"

	"github.com/straightpath/wasn/internal/topo"
)

func validScenarioJSON() string {
	return `{
		"name": "t",
		"deployment": {"model": "fa", "n": 200, "seed": 7},
		"algorithm": "SLGF2",
		"arrival": {"process": "poisson", "rate_hz": 500, "duration_ms": 200},
		"traffic": {"pattern": "convergecast", "sinks": 3},
		"churn": [{"at_ms": 100, "fail_random": 2}]
	}`
}

func TestParseValidScenario(t *testing.T) {
	sc, err := Parse([]byte(validScenarioJSON()))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Traffic.Sinks != 3 || sc.TimelineBucketMS != 250 {
		t.Fatalf("defaults not applied: %+v", sc)
	}
}

func TestParseRejectsMalformedAndUnknown(t *testing.T) {
	cases := map[string]string{
		"truncated":      `{"name": "x"`,
		"unknown field":  `{"nope": 1}`,
		"wrong type":     `{"deployment": {"model": "fa", "n": "many", "seed": 1}}`,
		"empty document": ``,
	}
	for name, doc := range cases {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"bad model", func(sc *Scenario) { sc.Deployment.Model = "hex" }},
		{"zero nodes", func(sc *Scenario) { sc.Deployment.N = 0 }},
		{"no algorithm", func(sc *Scenario) { sc.Algorithm = "" }},
		{"bad process", func(sc *Scenario) { sc.Arrival.Process = "warp" }},
		{"poisson no rate", func(sc *Scenario) { sc.Arrival.RateHz = 0 }},
		{"poisson no duration", func(sc *Scenario) { sc.Arrival.DurationMS = 0 }},
		{"closed no requests", func(sc *Scenario) { sc.Arrival = Arrival{Process: ArrivalClosed} }},
		{"bursty no periods", func(sc *Scenario) { sc.Arrival.Process = ArrivalBursty }},
		{"bad pattern", func(sc *Scenario) { sc.Traffic.Pattern = "broadcast" }},
		{"zipf exponent", func(sc *Scenario) { sc.Traffic = Traffic{Pattern: TrafficZipf, ZipfS: 0.5} }},
		{"too many sinks", func(sc *Scenario) { sc.Traffic.Sinks = 200 }},
		{"empty churn event", func(sc *Scenario) { sc.Churn = []ChurnEvent{{AtMS: 10}} }},
		{"churn out of range", func(sc *Scenario) { sc.Churn = []ChurnEvent{{AtMS: 10, Fail: []topo.NodeID{999}}} }},
		{"churn past end", func(sc *Scenario) { sc.Churn = []ChurnEvent{{AtMS: 9999, FailRandom: 1}} }},
		{"negative churn time", func(sc *Scenario) { sc.Churn = []ChurnEvent{{AtMS: -1, FailRandom: 1}} }},
	}
	for _, c := range mutations {
		sc, err := Parse([]byte(validScenarioJSON()))
		if err != nil {
			t.Fatal(err)
		}
		c.mut(sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestValidateSortsChurn(t *testing.T) {
	sc, err := Parse([]byte(validScenarioJSON()))
	if err != nil {
		t.Fatal(err)
	}
	sc.Churn = []ChurnEvent{{AtMS: 150, FailRandom: 1}, {AtMS: 50, FailRandom: 1}}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if sc.Churn[0].AtMS != 50 || sc.Churn[1].AtMS != 150 {
		t.Fatalf("churn not sorted: %+v", sc.Churn)
	}
}

func TestPresetsAllValid(t *testing.T) {
	for _, name := range Presets() {
		sc, err := Preset(name)
		if err != nil {
			t.Errorf("preset %s: %v", name, err)
			continue
		}
		if sc.Name != name {
			t.Errorf("preset %s reports name %q", name, sc.Name)
		}
	}
	if _, err := Preset("nope"); err == nil || !strings.Contains(err.Error(), "unknown preset") {
		t.Errorf("unknown preset accepted: %v", err)
	}
}
