package workload

import (
	"fmt"
	"io"
	"math/rand/v2"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/metrics"
	"github.com/straightpath/wasn/internal/obs"
	"github.com/straightpath/wasn/internal/topo"
)

// Options tunes engine behavior that is not part of the scenario
// itself: live progress streaming. The zero value runs silently.
type Options struct {
	// Progress, when non-nil, receives one status line per
	// ProgressEveryMS during the measured window plus one line per
	// churn event — the live view of a long scenario run.
	Progress io.Writer
	// ProgressEveryMS is the status-line period (default 1000).
	ProgressEveryMS int
}

// openQueueCap bounds the open-loop dispatch queue. A full queue means
// the driver cannot absorb the offered rate; further arrivals are shed
// and counted in Report.Dropped rather than silently deferred (which
// would turn the open loop back into a closed one).
const openQueueCap = 1 << 16

// phaseRec accumulates one churn-delimited slice of the run.
type phaseRec struct {
	name      string
	startNS   atomic.Int64 // offset from run start; -1 until activated
	requests  atomic.Int64
	delivered atomic.Int64
	cached    atomic.Int64
	errors    atomic.Int64
	hist      metrics.Histogram
}

// run is the mutable state of one scenario execution.
type run struct {
	drv    Driver
	sc     *Scenario
	opts   Options
	progMu sync.Mutex // serializes progress lines (ticker vs churn)
	tr     *traffic
	dep    string
	start  time.Time
	phases []*phaseRec
	cur    atomic.Int64
	// failed is a copy-on-write snapshot of the dead-node set; pickers
	// read it lock-free on every draw, the churn goroutine swaps in a
	// fresh map per event (events are rare, draws are not).
	failed    atomic.Pointer[map[topo.NodeID]bool]
	timeline  []atomic.Int64
	dropped   atomic.Int64
	moved     atomic.Int64
	errSample atomic.Pointer[string]
	churn     []AppliedChurn // owned by the churn goroutine
	// churnPlan is the schedule with every victim set resolved up
	// front — a pure function of the scenario seed. The churn goroutine
	// applies it; the open-loop generator reads it to know which nodes
	// are *scheduled* dead at each arrival, so pair picks never depend
	// on how late an event actually fired.
	churnPlan []resolvedChurn
	// rec is non-nil when the driver is a *Recorder: the engine feeds
	// it each request's intended arrival offset (the Driver interface
	// carries no timestamps).
	rec *Recorder
}

// Run executes one scenario against a driver and returns its report.
// The scenario is validated (and its defaults filled) first; the
// deployment is registered and built, warmup requests are routed
// unrecorded, and then the arrival process runs with the churn
// schedule firing concurrently.
func Run(drv Driver, sc *Scenario) (*Report, error) {
	return RunWith(drv, sc, Options{})
}

// RunWith is Run with engine options (live progress streaming).
func RunWith(drv Driver, sc *Scenario, opts Options) (*Report, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	// Expand any generated churn process into concrete events. This
	// happens here, not in Validate, so re-validating a scenario (the
	// sweep ladder does, per rung) can never double the schedule; the
	// caller's scenario is left untouched.
	sc = sc.expandChurn()
	tr, err := buildTraffic(sc)
	if err != nil {
		return nil, err
	}
	dep, err := drv.Deploy(sc.Deployment.Name, sc.Deployment)
	if err != nil {
		return nil, fmt.Errorf("workload: deploying %s: %w", sc.Name, err)
	}
	r := &run{drv: drv, sc: sc, opts: opts, tr: tr, dep: dep}
	if rec, ok := drv.(*Recorder); ok {
		r.rec = rec
		rec.begin(TraceHeader{Scenario: sc.Name, Deploy: sc.Deployment, Algorithm: sc.Algorithm, Seed: sc.Seed})
	}
	empty := map[topo.NodeID]bool{}
	r.failed.Store(&empty)
	if err := r.warmup(); err != nil {
		return nil, fmt.Errorf("workload: warmup: %w", err)
	}
	return r.measure()
}

func (r *run) alive(u topo.NodeID) bool { return !(*r.failed.Load())[u] }

// routeOnce issues one request and records it into the current phase.
// t0 is the request's intended start (its arrival time for open loops,
// charging queueing delay to latency — no coordinated omission); at is
// the same instant as an offset from the run start, the timestamp the
// trace recorder persists.
func (r *run) routeOnce(t0 time.Time, at time.Duration, src, dst topo.NodeID) {
	out, err := r.drv.Route(r.dep, r.sc.Algorithm, src, dst)
	if r.rec != nil {
		r.rec.record(at, src, dst, out, err)
	}
	ph := r.phases[r.cur.Load()]
	ph.requests.Add(1)
	if err != nil {
		ph.errors.Add(1)
		msg := err.Error()
		r.errSample.CompareAndSwap(nil, &msg)
		return
	}
	ph.hist.Observe(int64(time.Since(t0)))
	if out.Delivered {
		ph.delivered.Add(1)
	}
	if out.Cached {
		ph.cached.Add(1)
	}
	idx := int(time.Since(r.start).Milliseconds()) / r.sc.TimelineBucketMS
	if idx >= len(r.timeline) {
		idx = len(r.timeline) - 1
	}
	if idx >= 0 {
		r.timeline[idx].Add(1)
	}
}

// warmup routes WarmupRequests without recording: it pays the lazy
// build (if Deploy didn't) and primes the route cache.
func (r *run) warmup() error {
	n := r.sc.WarmupRequests
	if n == 0 {
		return nil
	}
	conc := min(4, n)
	var next atomic.Int64
	errs := make([]error, conc)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pick := r.tr.picker(uint64(1000+w), r.alive)
			for int(next.Add(1)) <= n {
				src, dst := pick()
				if _, err := r.drv.Route(r.dep, r.sc.Algorithm, src, dst); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// initPhases sets up the phase records (one per expected churn
// boundary plus the initial phase; startNS -1 marks a phase whose
// boundary never fired) and the throughput timeline. Shared by the
// scenario engine and trace replay so their report shapes cannot
// drift apart.
func (r *run) initPhases(churnBoundaries, timelineBuckets int) {
	r.phases = make([]*phaseRec, churnBoundaries+1)
	for i := range r.phases {
		r.phases[i] = &phaseRec{name: fmt.Sprintf("phase-%d", i)}
		r.phases[i].startNS.Store(-1)
	}
	r.phases[0].startNS.Store(0)
	r.timeline = make([]atomic.Int64, timelineBuckets)
}

// openPhase stamps phase i as starting now and directs subsequent
// samples into it.
func (r *run) openPhase(i int) {
	r.phases[i].startNS.Store(int64(time.Since(r.start)))
	r.cur.Store(int64(i))
}

// measure runs the measured portion: arrival process plus churn
// schedule, then assembles the report. The driver's metrics are
// scraped just before and just after the window so the report carries
// the exact series movement the run caused.
func (r *run) measure() (*Report, error) {
	sc := r.sc
	buckets := 4096 // closed loop: unknown duration, clamp into the tail
	if sc.Arrival.Process != ArrivalClosed {
		buckets = sc.Arrival.DurationMS/sc.TimelineBucketMS + 64
	}
	r.initPhases(len(sc.Churn), buckets)
	r.churnPlan = r.resolveChurn()

	// A scrape failure degrades the report (no delta) rather than
	// failing the run: the HTTP driver may face a wasnd predating
	// /metrics.
	before, beforeErr := r.drv.ScrapeMetrics()

	r.start = time.Now()
	stopChurn := make(chan struct{})
	churnDone := make(chan struct{})
	if len(sc.Churn) > 0 {
		go r.runChurn(stopChurn, churnDone)
	} else {
		close(churnDone)
	}
	stopProg := make(chan struct{})
	progDone := make(chan struct{})
	if r.opts.Progress != nil {
		go r.runProgress(stopProg, progDone)
	} else {
		close(progDone)
	}
	stopMob := make(chan struct{})
	mobDone := make(chan struct{})
	if sc.Mobility != nil {
		go r.runMobility(stopMob, mobDone)
	} else {
		close(mobDone)
	}

	if sc.Arrival.Process == ArrivalClosed {
		r.runClosed()
	} else {
		r.runOpen()
	}
	elapsed := time.Since(r.start)
	close(stopChurn)
	close(stopProg)
	close(stopMob)
	<-churnDone
	<-progDone
	<-mobDone
	rep, err := r.report(elapsed)
	if rep != nil && beforeErr == nil {
		if after, aerr := r.drv.ScrapeMetrics(); aerr == nil {
			rep.MetricsDelta = obs.Delta(before, after)
		}
	}
	if rep != nil {
		r.attachFlight(rep)
	}
	return rep, err
}

// attachFlight embeds the driver's flight-recorder view of the run:
// the sampled timeline window and the journal events raised inside the
// measured window. Both degrade to absent — a driver without the
// surfaces (an older wasnd) or a server running without a sampler
// simply yields no section.
func (r *run) attachFlight(rep *Report) {
	rep.StartUnixMs = r.start.UnixMilli()
	if win, err := r.drv.Timeline(); err == nil && len(win.TUnixMS) > 0 {
		rep.SampledTimeline = &win
	}
	if evs, err := r.drv.Events(0); err == nil {
		for _, ev := range evs {
			if ev.UnixMS >= rep.StartUnixMs {
				rep.Journal = append(rep.Journal, ev)
			}
		}
	}
}

// progressf emits one progress line, serialized against concurrent
// emitters (the ticker and the churn goroutine share the writer).
func (r *run) progressf(format string, args ...any) {
	if r.opts.Progress == nil {
		return
	}
	r.progMu.Lock()
	defer r.progMu.Unlock()
	fmt.Fprintf(r.opts.Progress, "[workload] t=%6.1fs %s\n",
		time.Since(r.start).Seconds(), fmt.Sprintf(format, args...))
}

// totals sums the phase records.
func (r *run) totals() (req, del, errs int64) {
	for _, ph := range r.phases {
		req += ph.requests.Load()
		del += ph.delivered.Load()
		errs += ph.errors.Load()
	}
	return req, del, errs
}

// runProgress streams one status line per period until stopped.
func (r *run) runProgress(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	every := time.Duration(r.opts.ProgressEveryMS) * time.Millisecond
	if every <= 0 {
		every = time.Second
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	var lastReq int64
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		req, del, errs := r.totals()
		var rate float64
		if secs := every.Seconds(); secs > 0 {
			rate = float64(req-lastReq) / secs
		}
		lastReq = req
		var delivered float64
		if ok := req - errs; ok > 0 {
			delivered = 100 * float64(del) / float64(ok)
		}
		r.progressf("%s req=%d rps=%.0f delivered=%.1f%% err=%d drop=%d",
			r.phases[r.cur.Load()].name, req, rate, delivered, errs, r.dropped.Load())
	}
}

// runClosed issues exactly Requests requests from Concurrency clients,
// each starting the next as soon as the last returns.
func (r *run) runClosed() {
	sc := r.sc
	conc := sc.Arrival.Concurrency
	if conc <= 0 {
		conc = runtime.GOMAXPROCS(0)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pick := r.tr.picker(uint64(w), r.alive)
			for int(next.Add(1)) <= sc.Arrival.Requests {
				src, dst := pick()
				now := time.Now()
				r.routeOnce(now, now.Sub(r.start), src, dst)
			}
		}(w)
	}
	wg.Wait()
}

// runOpen paces a Poisson arrival process (optionally on/off modulated)
// in real time for DurationMS, dispatching arrivals to a worker pool
// through a bounded queue. Latency is measured from each arrival's
// scheduled time, so queueing under overload is charged to the request.
//
// The generator draws each arrival's (src, dst) pair itself — workers
// only route. Pair picks consult the *resolved* churn plan at the
// arrival's scheduled offset, not the live dead set, so the request
// stream is a pure function of the scenario seed: recording the same
// scenario twice yields bit-identical request lines regardless of
// worker scheduling or how late a churn event actually applied.
func (r *run) runOpen() {
	sc := r.sc
	conc := sc.Arrival.Concurrency
	if conc <= 0 {
		conc = 4 * runtime.GOMAXPROCS(0)
	}
	type arrival struct {
		t0       time.Time
		src, dst topo.NodeID
	}
	queue := make(chan arrival, openQueueCap)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range queue {
				r.routeOnce(a.t0, a.t0.Sub(r.start), a.src, a.dst)
			}
		}()
	}

	schedDead := make(map[topo.NodeID]bool)
	nextEv := 0
	pick := r.tr.picker(0, func(u topo.NodeID) bool { return !schedDead[u] })

	rng := rand.New(rand.NewPCG(sc.Seed, 0xa5a5a5a5))
	duration := time.Duration(sc.Arrival.DurationMS) * time.Millisecond
	var onTime float64 // cumulative seconds of on-period arrival time
	for {
		onTime += rng.ExpFloat64() / sc.Arrival.RateHz
		offset := r.wallOffset(onTime)
		if offset >= duration {
			break
		}
		// Advance the scheduled dead set to this arrival's instant, then
		// draw the pair before sleeping (the pick depends only on the
		// schedule, never on wall-clock state).
		for nextEv < len(r.churnPlan) && time.Duration(r.churnPlan[nextEv].atMS)*time.Millisecond <= offset {
			for _, u := range r.churnPlan[nextEv].fail {
				schedDead[u] = true
			}
			for _, u := range r.churnPlan[nextEv].revive {
				delete(schedDead, u)
			}
			nextEv++
		}
		src, dst := pick()
		at := r.start.Add(offset)
		// Sleep coarse, spin fine: time.Sleep routinely oversleeps by
		// hundreds of microseconds, which would be charged to every
		// request's latency (t0 is the intended arrival). The final
		// stretch yields the processor instead of blocking, so workers
		// keep draining on a single-core box.
		const spin = 200 * time.Microsecond
		if d := time.Until(at); d > spin {
			time.Sleep(d - spin)
		}
		for time.Now().Before(at) {
			runtime.Gosched()
		}
		select {
		case queue <- arrival{t0: at, src: src, dst: dst}:
		default:
			r.dropped.Add(1)
		}
	}
	close(queue)
	wg.Wait()
}

// wallOffset maps cumulative on-period time to a wall-clock offset:
// identity for pure Poisson, and stretched around the silent off
// windows for bursty arrivals (arrivals run at RateHz during on
// windows, pause during off windows).
func (r *run) wallOffset(onTime float64) time.Duration {
	a := r.sc.Arrival
	if a.Process != ArrivalBursty {
		return time.Duration(onTime * float64(time.Second))
	}
	on := float64(a.OnMS) / 1000
	cycle := float64(a.OnMS+a.OffMS) / 1000
	full := int(onTime / on)
	rem := onTime - float64(full)*on
	return time.Duration((float64(full)*cycle + rem) * float64(time.Second))
}

// resolvedChurn is one churn firing with its victim sets fixed before
// the run starts.
type resolvedChurn struct {
	atMS   int
	fail   []topo.NodeID
	revive []topo.NodeID
}

// resolveChurn fixes every churn event's victims up front, walking the
// schedule with the same seeded rng and the same draw order the live
// churn goroutine used to, so the resolved plan is a pure function of
// the scenario seed. The plan assumes every event applies (a driver
// error at fire time leaves the *live* dead set behind the scheduled
// one, but never changes what was scheduled — recorded traces stay
// deterministic even across transient driver failures).
func (r *run) resolveChurn() []resolvedChurn {
	rng := rand.New(rand.NewPCG(r.sc.Seed, 0xc0ffee))
	deadSet := make(map[topo.NodeID]bool)
	plan := make([]resolvedChurn, 0, len(r.sc.Churn))
	for _, ev := range r.sc.Churn {
		rc := resolvedChurn{atMS: ev.AtMS}
		rc.fail = append(append([]topo.NodeID{}, ev.Fail...), r.tr.randomVictims(rng, ev.FailRandom, deadSet)...)
		for _, u := range rc.fail {
			deadSet[u] = true
		}
		rc.revive = append([]topo.NodeID{}, ev.Revive...)
		if ev.ReviveAll || ev.ReviveRandom > 0 {
			// Deterministic order: the dead set is a map, so sort before
			// picking or appending.
			dead := make([]topo.NodeID, 0, len(deadSet))
			for u := range deadSet {
				dead = append(dead, u)
			}
			slices.Sort(dead)
			if ev.ReviveAll {
				rc.revive = append(rc.revive, dead...)
			} else {
				for j := 0; j < ev.ReviveRandom && len(dead) > 0; j++ {
					i := rng.IntN(len(dead))
					rc.revive = append(rc.revive, dead[i])
					dead = append(dead[:i], dead[i+1:]...)
				}
			}
		}
		for _, u := range rc.revive {
			delete(deadSet, u)
		}
		plan = append(plan, rc)
	}
	return plan
}

// runChurn fires the resolved plan: each event fails/revives its
// precomputed victims through the driver, swaps the copy-on-write
// dead-set snapshot, and opens the next phase.
func (r *run) runChurn(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for i, ev := range r.churnPlan {
		timer.Reset(time.Duration(ev.atMS)*time.Millisecond - time.Since(r.start))
		select {
		case <-stop:
			timer.Stop()
			return
		case <-timer.C:
		}

		cur := *r.failed.Load()
		next := make(map[topo.NodeID]bool, len(cur))
		for u := range cur {
			next[u] = true
		}
		applied := AppliedChurn{AtMS: ev.atMS}
		if len(ev.fail) > 0 {
			if err := r.drv.Fail(r.dep, ev.fail); err != nil {
				applied.Err = err.Error()
			} else {
				applied.Failed = ev.fail
				for _, u := range ev.fail {
					next[u] = true
				}
			}
		}
		if len(ev.revive) > 0 && applied.Err == "" {
			if err := r.drv.Revive(r.dep, ev.revive); err != nil {
				applied.Err = err.Error()
			} else {
				applied.Revived = ev.revive
				for _, u := range ev.revive {
					delete(next, u)
				}
			}
		}
		r.failed.Store(&next)
		applied.AppliedMS = float64(time.Since(r.start).Microseconds()) / 1000
		r.churn = append(r.churn, applied)
		if applied.Err != "" {
			r.progressf("churn @%dms failed to apply: %s", ev.atMS, applied.Err)
		} else {
			r.progressf("churn @%dms: failed=%d revived=%d -> %s",
				ev.atMS, len(applied.Failed), len(applied.Revived), r.phases[i+1].name)
		}
		if r.rec != nil {
			// Recorded at the *scheduled* offset, not the applied wall
			// time: re-recording a replay then reproduces the original
			// churn lines bit-for-bit.
			at := time.Duration(ev.atMS) * time.Millisecond
			r.rec.recordChurn(at, traceKindFail, applied.Failed)
			r.rec.recordChurn(at, traceKindRevive, applied.Revived)
		}
		// Open the next phase: samples recorded from here on belong to
		// the post-event topology (in-flight requests may straddle the
		// boundary; with events rare relative to requests the smear is
		// negligible).
		r.openPhase(i + 1)
	}
}

// runMobility drives the scenario's position churn: every IntervalMS it
// advances the mobile sinks one step along their seeded random-waypoint
// walks, redraws a seeded DriftFraction of the nodes with Gaussian
// drift, and ships the batch through Driver.Move. The walk state lives
// entirely on the offline position snapshot, so the k-th batch is a
// pure function of the scenario — wall-clock only decides *when* a
// batch applies, never what it contains — and the recorder logs each
// batch at its scheduled offset. Mobility ticks do not open report
// phases (they are continuous background churn, not schedule
// boundaries); their volume lands in Report.MovedNodes.
func (r *run) runMobility(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	mb := r.sc.Mobility
	rng := rand.New(rand.NewPCG(r.sc.Seed, 0x6d6f62696c697479))
	pos := append([]geom.Point(nil), r.tr.positions...)
	field := r.tr.field

	// Mobile sinks: the convergecast sinks themselves when the traffic
	// pattern has them (the paper's mobile-sink regime), seeded picks
	// otherwise.
	var sinks []topo.NodeID
	if len(r.tr.sinks) > 0 {
		sinks = append(sinks, r.tr.sinks...)
		if len(sinks) > mb.Sinks {
			sinks = sinks[:mb.Sinks]
		}
	} else {
		for _, i := range rng.Perm(len(r.tr.members))[:mb.Sinks] {
			sinks = append(sinks, r.tr.members[i])
		}
	}
	isSink := make(map[topo.NodeID]bool, len(sinks))
	waypoint := make([]geom.Point, len(sinks))
	randPoint := func() geom.Point {
		return geom.Pt(field.Min.X+rng.Float64()*field.Width(), field.Min.Y+rng.Float64()*field.Height())
	}
	for i, s := range sinks {
		isSink[s] = true
		waypoint[i] = randPoint()
	}

	step := mb.SinkSpeed * float64(mb.IntervalMS) / 1000
	interval := time.Duration(mb.IntervalMS) * time.Millisecond
	duration := time.Duration(r.sc.Arrival.DurationMS) * time.Millisecond
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for k := 1; ; k++ {
		at := time.Duration(k) * interval
		if at >= duration {
			return
		}
		// Compute the batch before waiting: the schedule is deterministic
		// even if a tick fires late.
		var moves []topo.Move
		for i, s := range sinks {
			p := pos[s]
			for {
				d := geom.Dist(p, waypoint[i])
				if d > step {
					t := step / d
					p = geom.Pt(p.X+(waypoint[i].X-p.X)*t, p.Y+(waypoint[i].Y-p.Y)*t)
					break
				}
				p = waypoint[i]
				waypoint[i] = randPoint()
			}
			pos[s] = p
			moves = append(moves, topo.Move{Node: s, X: p.X, Y: p.Y})
		}
		if mb.DriftFraction > 0 {
			for _, u := range r.tr.members {
				if isSink[u] || rng.Float64() >= mb.DriftFraction {
					continue
				}
				p := geom.Pt(pos[u].X+rng.NormFloat64()*mb.DriftSigma, pos[u].Y+rng.NormFloat64()*mb.DriftSigma)
				p.X = min(max(p.X, field.Min.X), field.Max.X)
				p.Y = min(max(p.Y, field.Min.Y), field.Max.Y)
				pos[u] = p
				moves = append(moves, topo.Move{Node: u, X: p.X, Y: p.Y})
			}
		}
		if len(moves) == 0 {
			continue
		}

		timer.Reset(at - time.Since(r.start))
		select {
		case <-stop:
			timer.Stop()
			return
		case <-timer.C:
		}
		if err := r.drv.Move(r.dep, moves); err != nil {
			r.progressf("mobility @%dms failed to apply: %v", at/time.Millisecond, err)
			continue
		}
		r.moved.Add(int64(len(moves)))
		if r.rec != nil {
			r.rec.recordMove(at, moves)
		}
	}
}

// report assembles the Report from the accumulated phase records.
func (r *run) report(elapsed time.Duration) (*Report, error) {
	sc := r.sc
	rep := &Report{
		Scenario:   sc.Name,
		Driver:     r.drv.Name(),
		Deployment: r.dep,
		Algorithm:  sc.Algorithm,
		Arrival:    sc.Arrival,
		Traffic:    sc.Traffic,
		ElapsedMS:  float64(elapsed.Microseconds()) / 1000,
		Dropped:    r.dropped.Load(),
		MovedNodes: r.moved.Load(),
		Churn:      r.churn,
	}
	if sc.Arrival.Process == ArrivalPoisson {
		rep.OfferedRPS = sc.Arrival.RateHz
	} else if sc.Arrival.Process == ArrivalBursty {
		on, off := float64(sc.Arrival.OnMS), float64(sc.Arrival.OffMS)
		rep.OfferedRPS = sc.Arrival.RateHz * on / (on + off)
	}

	var total metrics.Histogram
	var cached int64
	for i, ph := range r.phases {
		start := ph.startNS.Load()
		if start < 0 {
			continue // churn event never fired (closed loop ended first)
		}
		// An event firing in the shutdown window can stamp its phase
		// just past the measured run; clamp so EndMS >= StartMS.
		if start > int64(elapsed) {
			start = int64(elapsed)
		}
		end := float64(elapsed)
		for j := i + 1; j < len(r.phases); j++ {
			if s := r.phases[j].startNS.Load(); s >= 0 {
				end = min(float64(s), float64(elapsed))
				break
			}
		}
		req, del, errs := ph.requests.Load(), ph.delivered.Load(), ph.errors.Load()
		rep.Requests += req
		rep.Delivered += del
		rep.Errors += errs
		cached += ph.cached.Load()
		total.Merge(&ph.hist)
		pr := PhaseReport{
			Name:      ph.name,
			StartMS:   float64(start) / 1e6,
			EndMS:     end / 1e6,
			Requests:  req,
			Delivered: del,
			Errors:    errs,
			Latency:   latencyFrom(&ph.hist),
		}
		if ok := req - errs; ok > 0 {
			pr.DeliveryRate = float64(del) / float64(ok)
		}
		if span := (end - float64(start)) / 1e9; span > 0 {
			pr.ThroughputRPS = float64(req) / span
		}
		rep.Phases = append(rep.Phases, pr)
	}
	rep.Latency = latencyFrom(&total)
	if ok := rep.Requests - rep.Errors; ok > 0 {
		rep.DeliveryRate = float64(rep.Delivered) / float64(ok)
		rep.CachedShare = float64(cached) / float64(ok)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.ThroughputRPS = float64(rep.Requests) / secs
	}
	if s := r.errSample.Load(); s != nil {
		rep.ErrorSample = *s
	}

	last := len(r.timeline)
	for last > 0 && r.timeline[last-1].Load() == 0 {
		last--
	}
	for i := 0; i < last; i++ {
		rep.Timeline = append(rep.Timeline, TimelinePoint{
			TMS:       int64(i * sc.TimelineBucketMS),
			Completed: r.timeline[i].Load(),
		})
	}

	if st, err := r.drv.Stats(); err == nil {
		rep.Server = &st
	}

	if rep.Requests > 0 && rep.Errors == rep.Requests {
		return rep, fmt.Errorf("workload: every request failed: %s", rep.ErrorSample)
	}
	return rep, nil
}
