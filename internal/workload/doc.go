// Package workload is the scenario-driven load engine for the routing
// service: the instrument every scale change is measured with.
//
// A Scenario composes four orthogonal pieces:
//
//   - an arrival process — closed-loop (fixed concurrency, think
//     benchmark), open-loop Poisson at a target rate (think sensor
//     field), or bursty on/off modulation of a Poisson stream (think
//     event-driven reporting);
//   - a traffic matrix — uniform random routable pairs, Zipf-skewed
//     hotspot destinations, or convergecast (every source reports to
//     its nearest of K sinks, the paper-native many-to-one pattern);
//   - a churn schedule — timed Fail/Revive events injected mid-run,
//     driving the incremental substrate-repair path under live load;
//   - a driver — in-process against a serve.Service, or HTTP against a
//     running wasnd over keep-alive connections.
//
// Run executes a scenario and produces a Report: log-bucketed latency
// quantiles (p50/p90/p99/p99.9, measured from the request's *intended*
// arrival time so queueing delay is charged under overload — no
// coordinated omission), a throughput timeline, per-phase delivery
// rates split at each churn event, and the server's own counters
// (cache hit rate, per-deployment repair counts). Reports serialize to
// JSON for the BENCH_* trajectory files.
//
// Scenarios are defined as JSON documents (ParseFile) or taken from
// the canned presets (Preset): steady, hotspot, convergecast, and
// churn-storm. cmd/wasnd's -load flag is a thin shim over this
// package.
//
// Runs can be captured and reproduced: a Recorder wrapped around
// either driver persists the exact (src, dst, intended-at) request
// stream and the churn firings to a time-sorted JSONL trace, and
// Replay re-issues a trace bit-for-bit — churn lines act as barriers,
// so replay outcomes are deterministic and a regression seen once can
// be replayed against any build (cmd/wasnd -record / -replay;
// internal/sweep builds its capacity ladders on the same engine).
package workload
