package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/straightpath/wasn/internal/fleet"
	"github.com/straightpath/wasn/internal/obs"
	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/topo"
)

// fleetRetryWindow bounds how long a route retries through remaps
// before giving up. It must comfortably cover a replica death: two
// missed 500ms health probes plus the restore push plus one map fetch.
const fleetRetryWindow = 10 * time.Second

// fleetBinaryConns is the binary-connection pool size per replica. The
// engine's workers share the pool round-robin; each conn serialises one
// exchange at a time.
const fleetBinaryConns = 8

// Fleet drives a sharded wasnd fleet. Control-plane calls (deploy,
// fail, revive, move) go through the router, which records them in its
// desired-state table — that is what makes a later re-shard carry the
// churn history. Routes go replica-direct: the driver caches the shard
// map client-side, picks the owner per deployment, and speaks the
// binary batch transport when the owner exposes one (HTTP otherwise).
// When a replica dies mid-run the driver re-fetches the map and retries
// against the new owner until fleetRetryWindow expires, so a kill -9
// shows up as a latency blip, not an error burst — the property the
// fleet-chaos CI job gates on.
type Fleet struct {
	routerURL string
	hc        *http.Client
	binary    bool

	mu    sync.RWMutex
	m     *fleet.Map
	pools map[string]*binPool // replica ID → binary conn pool
}

// NewFleet builds a fleet driver against a router base URL. binary
// selects the binary batch transport for routes where available.
func NewFleet(routerURL string, binary bool) (*Fleet, error) {
	tr := &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
		IdleConnTimeout:     90 * time.Second,
	}
	d := &Fleet{
		routerURL: strings.TrimRight(routerURL, "/"),
		hc:        &http.Client{Transport: tr, Timeout: 30 * time.Second},
		binary:    binary,
		pools:     make(map[string]*binPool),
	}
	if err := d.refreshMap(); err != nil {
		return nil, err
	}
	return d, nil
}

// Name implements Driver.
func (d *Fleet) Name() string {
	if d.binary {
		return "fleet"
	}
	return "fleet-http"
}

// refreshMap re-fetches the shard map from the router and prunes
// binary pools for replicas that left.
func (d *Fleet) refreshMap() error {
	var m fleet.Map
	if err := getJSON(d.hc, d.routerURL+"/shardmap", &m); err != nil {
		return fmt.Errorf("workload: fleet shard map: %w", err)
	}
	m.Build()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.m = &m
	alive := make(map[string]bool, len(m.Replicas))
	for _, r := range m.Replicas {
		alive[r.ID] = true
	}
	for id, p := range d.pools {
		if !alive[id] {
			p.closeAll()
			delete(d.pools, id)
		}
	}
	return nil
}

// owner resolves the current owner of a deployment.
func (d *Fleet) owner(deployment string) (fleet.Replica, error) {
	d.mu.RLock()
	m := d.m
	d.mu.RUnlock()
	rep, ok := m.Owner(deployment)
	if !ok {
		return fleet.Replica{}, fmt.Errorf("workload: fleet has no alive replicas")
	}
	return rep, nil
}

// pool returns the binary connection pool for a replica.
func (d *Fleet) pool(rep fleet.Replica) *binPool {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.pools[rep.ID]
	if !ok || p.addr != rep.BinaryAddr {
		if ok {
			p.closeAll()
		}
		p = newBinPool(rep.BinaryAddr, fleetBinaryConns)
		d.pools[rep.ID] = p
	}
	return p
}

// permanentRouteErr reports request errors no remap can fix; the
// retry loop fails fast on these instead of burning the window.
func permanentRouteErr(msg string) bool {
	return strings.Contains(msg, "out of range") ||
		strings.Contains(msg, "unknown algorithm") ||
		strings.Contains(msg, "must differ")
}

// Route implements Driver: owner lookup, one transport exchange, and
// retry-with-remap on anything that smells like a dead or re-homed
// replica.
func (d *Fleet) Route(deployment, algorithm string, src, dst topo.NodeID) (Outcome, error) {
	deadline := time.Now().Add(fleetRetryWindow)
	var lastErr error
	for attempt := 0; ; attempt++ {
		out, err := d.routeOnce(deployment, algorithm, src, dst)
		if err == nil {
			return out, nil
		}
		if permanentRouteErr(err.Error()) {
			return Outcome{}, err
		}
		lastErr = err
		if time.Now().After(deadline) {
			return Outcome{}, fmt.Errorf("workload: fleet route gave up after remaps: %w", lastErr)
		}
		// Re-resolve: the owner may have died (transport error) or the
		// map may have moved the deployment (unknown-deployment error).
		_ = d.refreshMap()
		sleep := time.Duration(50*(attempt+1)) * time.Millisecond
		if sleep > 500*time.Millisecond {
			sleep = 500 * time.Millisecond
		}
		time.Sleep(sleep)
	}
}

func (d *Fleet) routeOnce(deployment, algorithm string, src, dst topo.NodeID) (Outcome, error) {
	rep, err := d.owner(deployment)
	if err != nil {
		return Outcome{}, err
	}
	req := serve.RouteRequest{Deployment: deployment, Algorithm: algorithm, Src: src, Dst: dst}
	if d.binary && rep.BinaryAddr != "" {
		res, err := d.pool(rep).batch([]serve.RouteRequest{req})
		if err != nil {
			return Outcome{}, err
		}
		if res[0].Err != "" {
			return Outcome{}, fmt.Errorf("workload: fleet route: %s", res[0].Err)
		}
		return Outcome{Delivered: res[0].Delivered, Hops: res[0].Hops, Cached: res[0].Cached}, nil
	}
	var resp serve.RouteResponse
	if err := postJSON(d.hc, rep.Addr+"/route", req, &resp); err != nil {
		return Outcome{}, err
	}
	if resp.Err != "" {
		return Outcome{}, fmt.Errorf("workload: fleet route: %s", resp.Err)
	}
	return Outcome{Delivered: resp.Delivered, Hops: resp.Hops, Cached: resp.Cached}, nil
}

// control POSTs a control-plane request to the router with a short
// retry (the router itself is not expected to die in a chaos drill,
// but a transient accept backlog should not kill a run).
func (d *Fleet) control(path string, req, out any) error {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if err := postJSON(d.hc, d.routerURL+path, req, out); err != nil {
			lastErr = err
			time.Sleep(time.Duration(100*(attempt+1)) * time.Millisecond)
			continue
		}
		return nil
	}
	return lastErr
}

// Deploy implements Driver (via the router, so the desired-state table
// learns the spec).
func (d *Fleet) Deploy(name string, spec DeploymentSpec) (string, error) {
	req := map[string]any{
		"name": name, "model": spec.Model, "n": spec.N, "seed": spec.Seed,
		"build": true,
	}
	if spec.Coverage > 0 {
		req["coverage"] = spec.Coverage
	}
	var resp struct {
		Name string `json:"name"`
	}
	if err := d.control("/deploy", req, &resp); err != nil {
		return "", err
	}
	return resp.Name, nil
}

// Fail implements Driver.
func (d *Fleet) Fail(deployment string, nodes []topo.NodeID) error {
	return d.control("/fail", churnRequest{Deployment: deployment, Nodes: nodes}, nil)
}

// Revive implements Driver.
func (d *Fleet) Revive(deployment string, nodes []topo.NodeID) error {
	return d.control("/revive", churnRequest{Deployment: deployment, Nodes: nodes}, nil)
}

// Move implements Driver.
func (d *Fleet) Move(deployment string, moves []topo.Move) error {
	return d.control("/move", moveRequest{Deployment: deployment, Moves: moves}, nil)
}

// Stats implements Driver by summing every numeric counter across the
// alive replicas (reflection over serve.Stats keeps the aggregation in
// sync with fields added later). ReplicaID is left empty: the numbers
// are fleet-wide.
func (d *Fleet) Stats() (serve.Stats, error) {
	d.mu.RLock()
	m := d.m
	d.mu.RUnlock()
	var agg serve.Stats
	av := reflect.ValueOf(&agg).Elem()
	for _, rep := range m.Replicas {
		var st serve.Stats
		if err := getJSON(d.hc, rep.Addr+"/stats", &st); err != nil {
			continue // dead replica mid-scrape: aggregate the rest
		}
		sv := reflect.ValueOf(st)
		for i := 0; i < sv.NumField(); i++ {
			f := av.Field(i)
			switch f.Kind() {
			case reflect.Int, reflect.Int64:
				f.SetInt(f.Int() + sv.Field(i).Int())
			case reflect.Float64:
				f.SetFloat(f.Float() + sv.Field(i).Float())
			}
		}
	}
	return agg, nil
}

// ScrapeMetrics implements Driver: per-replica series summed across
// the fleet, merged with the router's wasn_fleet_* series (distinct
// names, so the merge is collision-free).
func (d *Fleet) ScrapeMetrics() (map[string]float64, error) {
	d.mu.RLock()
	m := d.m
	d.mu.RUnlock()
	out := make(map[string]float64)
	for _, rep := range m.Replicas {
		resp, err := d.hc.Get(rep.Addr + "/metrics")
		if err != nil {
			continue
		}
		vals, err := obs.ParseText(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		for k, v := range vals {
			out[k] += v
		}
	}
	resp, err := d.hc.Get(d.routerURL + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("workload: router metrics: %w", err)
	}
	defer resp.Body.Close()
	vals, err := obs.ParseText(resp.Body)
	if err != nil {
		return nil, err
	}
	for k, v := range vals {
		out[k] += v
	}
	return out, nil
}

// Timeline implements Driver. A fleet has one flight recorder per
// replica; there is no single merged window, so the report embeds none.
func (d *Fleet) Timeline() (obs.TimelineWindow, error) {
	return obs.TimelineWindow{}, nil
}

// Events implements Driver with the router's control-plane journal —
// the joins, leaves, re-shards, and restore pushes of the run.
func (d *Fleet) Events(max int) ([]obs.Event, error) {
	url := d.routerURL + "/events"
	if max > 0 {
		url += fmt.Sprintf("?max=%d", max)
	}
	var body struct {
		Events []obs.Event `json:"events"`
	}
	if err := getJSON(d.hc, url, &body); err != nil {
		return nil, err
	}
	return body.Events, nil
}

// Close implements Driver.
func (d *Fleet) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, p := range d.pools {
		p.closeAll()
	}
	d.pools = map[string]*binPool{}
	d.hc.CloseIdleConnections()
	return nil
}

// postJSON sends one JSON request and decodes the 200 response into
// out, surfacing {"error": ...} bodies on other statuses.
func postJSON(hc *http.Client, url string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("workload: encoding %s request: %w", url, err)
	}
	resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("workload: POST %s: %w", url, err)
	}
	return decodeJSON(url, resp, out)
}

func getJSON(hc *http.Client, url string, out any) error {
	resp, err := hc.Get(url)
	if err != nil {
		return fmt.Errorf("workload: GET %s: %w", url, err)
	}
	return decodeJSON(url, resp, out)
}

func decodeJSON(url string, resp *http.Response, out any) error {
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("workload: %s: %s (HTTP %d)", url, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("workload: %s: HTTP %d", url, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("workload: decoding %s response: %w", url, err)
	}
	return nil
}

// binPool is a fixed-size lazily-dialed pool of binary clients to one
// replica. Slots are picked round-robin; a slot whose exchange fails is
// dropped (the next user redials), so one dead conn never poisons the
// pool.
type binPool struct {
	addr string
	next atomic.Uint32
	mu   sync.Mutex
	conn []*fleet.Client
}

func newBinPool(addr string, size int) *binPool {
	return &binPool{addr: addr, conn: make([]*fleet.Client, size)}
}

func (p *binPool) batch(reqs []serve.RouteRequest) ([]serve.RouteResponse, error) {
	i := int(p.next.Add(1)) % len(p.conn)
	p.mu.Lock()
	c := p.conn[i]
	if c == nil {
		var err error
		c, err = fleet.Dial(p.addr, 0)
		if err != nil {
			p.mu.Unlock()
			return nil, err
		}
		p.conn[i] = c
	}
	p.mu.Unlock()

	res, err := c.Batch(reqs)
	if err != nil {
		p.mu.Lock()
		if p.conn[i] == c {
			p.conn[i] = nil
		}
		p.mu.Unlock()
		c.Close()
		return nil, err
	}
	return res, nil
}

func (p *binPool) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, c := range p.conn {
		if c != nil {
			c.Close()
			p.conn[i] = nil
		}
	}
}
