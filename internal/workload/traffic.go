package workload

import (
	"fmt"
	"math/rand/v2"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/topo"
)

// traffic is a built traffic matrix over an offline copy of the
// scenario's deployment (the same spec regenerates the same network, so
// the copy agrees with the driver's — including over HTTP, where the
// server's topology is not otherwise visible).
//
// Traffic generation is scenario-seeded and independent per worker:
// each worker obtains its own picker (own RNG, own Zipf state), so
// pair draws never contend on a shared lock.
type traffic struct {
	sc *Scenario
	// members is the largest connected component, the candidate pool
	// for sources, destinations, and churn victims (pairs across
	// components would measure disconnection, not routing).
	members []topo.NodeID
	// pairs is the uniform pattern's pool.
	pairs [][2]topo.NodeID
	// hotspots is the zipf destination list, popularity-ranked.
	hotspots []topo.NodeID
	// sinks is the convergecast sink set.
	sinks []topo.NodeID
	// nearestSink maps each member to its nearest sink.
	nearestSink map[topo.NodeID]topo.NodeID
	// protected nodes (sinks, hotspots) are exempt from FailRandom.
	protected map[topo.NodeID]bool
	// positions and field snapshot the offline copy's geometry — the
	// mobility schedule walks these (the driver's network starts
	// identical, so the schedule is reproducible from the scenario).
	positions []geom.Point
	field     geom.Rect
}

// buildTraffic deploys the offline topology copy and precomputes the
// scenario's pair pool.
func buildTraffic(sc *Scenario) (*traffic, error) {
	model, err := topo.ParseDeployModel(sc.Deployment.Model)
	if err != nil {
		return nil, err
	}
	cfg := topo.DefaultDeployConfig(model, sc.Deployment.N, sc.Deployment.Seed)
	if sc.Deployment.Coverage > 0 {
		cfg.ObstacleCoverage = sc.Deployment.Coverage
	}
	dep, err := topo.Deploy(cfg)
	if err != nil {
		return nil, fmt.Errorf("workload: deploying traffic model: %w", err)
	}
	net := dep.Net

	labels, count := topo.Components(net)
	sizes := make([]int, count)
	for _, l := range labels {
		if l >= 0 {
			sizes[l]++
		}
	}
	largest := 0
	for l, n := range sizes {
		if n > sizes[largest] {
			largest = l
		}
	}
	tr := &traffic{sc: sc, protected: make(map[topo.NodeID]bool), positions: net.Positions(), field: net.Field}
	for u, l := range labels {
		if l == largest {
			tr.members = append(tr.members, topo.NodeID(u))
		}
	}
	if len(tr.members) < 2 {
		return nil, fmt.Errorf("workload: largest component has %d nodes; nothing to route", len(tr.members))
	}

	rng := rand.New(rand.NewPCG(sc.Seed, 0x9e3779b97f4a7c15))
	switch sc.Traffic.Pattern {
	case TrafficUniform:
		tr.pairs = topo.RoutablePairs(net, sc.Traffic.Pairs, sc.Traffic.MinDist)
		if len(tr.pairs) == 0 {
			return nil, fmt.Errorf("workload: no routable pairs at min_dist %v", sc.Traffic.MinDist)
		}
	case TrafficZipf:
		k := sc.Traffic.Hotspots
		if k > len(tr.members) {
			k = len(tr.members)
		}
		for _, i := range rng.Perm(len(tr.members))[:k] {
			u := tr.members[i]
			tr.hotspots = append(tr.hotspots, u)
			tr.protected[u] = true
		}
	case TrafficConvergecast:
		k := sc.Traffic.Sinks
		if k >= len(tr.members) {
			return nil, fmt.Errorf("workload: %d sinks leave no sources in the %d-node component", k, len(tr.members))
		}
		for _, i := range rng.Perm(len(tr.members))[:k] {
			u := tr.members[i]
			tr.sinks = append(tr.sinks, u)
			tr.protected[u] = true
		}
		tr.nearestSink = make(map[topo.NodeID]topo.NodeID, len(tr.members))
		for _, u := range tr.members {
			best, bestD := tr.sinks[0], net.Dist(u, tr.sinks[0])
			for _, s := range tr.sinks[1:] {
				if d := net.Dist(u, s); d < bestD {
					best, bestD = s, d
				}
			}
			tr.nearestSink[u] = best
		}
	}
	return tr, nil
}

// picker returns an independent pair generator for one worker. alive
// reports whether a node is currently up; pickers skip dead *sources*
// (a dead sensor sends nothing) with bounded retries, but never reroll
// destinations — routing toward a dead or cut-off destination is
// exactly the loss the churn phases measure.
func (tr *traffic) picker(seed uint64, alive func(topo.NodeID) bool) func() (src, dst topo.NodeID) {
	rng := rand.New(rand.NewPCG(tr.sc.Seed, seed))
	var zipf *rand.Zipf
	if tr.sc.Traffic.Pattern == TrafficZipf {
		zipf = rand.NewZipf(rng, tr.sc.Traffic.ZipfS, 1, uint64(len(tr.hotspots)-1))
	}
	const srcRetries = 8
	return func() (topo.NodeID, topo.NodeID) {
		for try := 0; ; try++ {
			var src, dst topo.NodeID
			switch tr.sc.Traffic.Pattern {
			case TrafficUniform:
				p := tr.pairs[rng.IntN(len(tr.pairs))]
				src, dst = p[0], p[1]
			case TrafficZipf:
				dst = tr.hotspots[zipf.Uint64()]
				src = tr.members[rng.IntN(len(tr.members))]
				if src == dst {
					continue
				}
			case TrafficConvergecast:
				src = tr.members[rng.IntN(len(tr.members))]
				if tr.protected[src] { // sinks don't source
					continue
				}
				dst = tr.nearestSink[src]
			}
			if try < srcRetries && !alive(src) {
				continue
			}
			return src, dst
		}
	}
}

// randomVictims picks up to k distinct scenario-seeded churn victims:
// alive, unprotected members. Fewer than k are returned when the pool
// runs dry.
func (tr *traffic) randomVictims(rng *rand.Rand, k int, failed map[topo.NodeID]bool) []topo.NodeID {
	var out []topo.NodeID
	taken := make(map[topo.NodeID]bool, k)
	for tries := 0; len(out) < k && tries < 64*k+64; tries++ {
		u := tr.members[rng.IntN(len(tr.members))]
		if tr.protected[u] || failed[u] || taken[u] {
			continue
		}
		taken[u] = true
		out = append(out, u)
	}
	return out
}
