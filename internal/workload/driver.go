package workload

import (
	"fmt"
	"strings"

	"github.com/straightpath/wasn/internal/obs"
	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/topo"
)

// Outcome is the per-request result the engine records.
type Outcome struct {
	Delivered bool
	Hops      int
	Cached    bool
}

// Driver abstracts where a scenario's requests land: in-process against
// a serve.Service, or over HTTP against a running wasnd. Route must be
// safe for concurrent use; Fail/Revive may run concurrently with Route
// (the serve layer serializes internally — that concurrency is the
// point of churn-under-load scenarios).
//
// A Route error means the request itself failed (unknown deployment,
// out-of-range node, transport failure) — an *undelivered* route is a
// successful request whose Outcome.Delivered is false.
type Driver interface {
	// Name labels the driver in reports ("inprocess" or "http").
	Name() string
	// Deploy registers the deployment and builds its substrates.
	Deploy(name string, spec DeploymentSpec) (string, error)
	// Route routes one packet.
	Route(deployment, algorithm string, src, dst topo.NodeID) (Outcome, error)
	// Fail kills nodes.
	Fail(deployment string, nodes []topo.NodeID) error
	// Revive resurrects nodes.
	Revive(deployment string, nodes []topo.NodeID) error
	// Move relocates nodes; the serve layer repairs the substrates in
	// place. Like Fail/Revive it may run concurrently with Route.
	Move(deployment string, moves []topo.Move) error
	// Stats snapshots the server counters for the report.
	Stats() (serve.Stats, error)
	// ScrapeMetrics parses the driver's current metrics exposition,
	// keyed by series identity (obs.ParseText) — the engine scrapes
	// before and after the measured window and reports the delta.
	ScrapeMetrics() (map[string]float64, error)
	// Timeline fetches the server's flight-recorder sample window
	// (empty when the server runs without a sampler) — the engine
	// embeds it in the report so churn events can be read against the
	// delivery/latency curves.
	Timeline() (obs.TimelineWindow, error)
	// Events fetches up to max flight-recorder journal events, oldest
	// first (max <= 0: the whole retained ring).
	Events(max int) ([]obs.Event, error)
	// Close releases driver resources.
	Close() error
}

// InProcess drives a serve.Service directly — no wire, measuring the
// service layer itself.
type InProcess struct {
	svc *serve.Service
}

// NewInProcess wraps an existing service (the wasnd -load shim passes a
// freshly configured one).
func NewInProcess(svc *serve.Service) *InProcess {
	return &InProcess{svc: svc}
}

// Name implements Driver.
func (d *InProcess) Name() string { return "inprocess" }

// Deploy implements Driver.
func (d *InProcess) Deploy(name string, spec DeploymentSpec) (string, error) {
	model, err := topo.ParseDeployModel(spec.Model)
	if err != nil {
		return "", err
	}
	eff, err := d.svc.Deploy(name, serve.Spec{Model: model, N: spec.N, Seed: spec.Seed, Coverage: spec.Coverage})
	if err != nil {
		return "", err
	}
	if err := d.svc.Build(eff); err != nil {
		return "", err
	}
	return eff, nil
}

// Route implements Driver.
func (d *InProcess) Route(deployment, algorithm string, src, dst topo.NodeID) (Outcome, error) {
	res, cached, err := d.svc.Route(deployment, algorithm, src, dst)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Delivered: res.Delivered, Hops: res.Hops(), Cached: cached}, nil
}

// Fail implements Driver.
func (d *InProcess) Fail(deployment string, nodes []topo.NodeID) error {
	return d.svc.Fail(deployment, nodes)
}

// Revive implements Driver.
func (d *InProcess) Revive(deployment string, nodes []topo.NodeID) error {
	return d.svc.Revive(deployment, nodes)
}

// Move implements Driver.
func (d *InProcess) Move(deployment string, moves []topo.Move) error {
	return d.svc.Move(deployment, moves)
}

// Stats implements Driver.
func (d *InProcess) Stats() (serve.Stats, error) { return d.svc.Stats(), nil }

// ScrapeMetrics implements Driver by rendering and re-parsing the
// service registry — the same round trip an external scraper performs,
// so the strict parser also exercises the exposition in-process.
func (d *InProcess) ScrapeMetrics() (map[string]float64, error) {
	return obs.ParseText(strings.NewReader(d.svc.Registry().Text()))
}

// Timeline implements Driver. It forces one final sample first, so an
// end-of-run fetch covers events after the last periodic tick.
func (d *InProcess) Timeline() (obs.TimelineWindow, error) {
	d.svc.SampleNow()
	return d.svc.Timeline(), nil
}

// Events implements Driver.
func (d *InProcess) Events(max int) ([]obs.Event, error) {
	return d.svc.Events(0, max), nil
}

// Close implements Driver, stopping the service's flight-recorder
// sampler if one is running.
func (d *InProcess) Close() error { return d.svc.Close() }

// NewDriver builds the driver a scenario run asks for: "inprocess"
// (cfg configures the private service), "http" (target is the wasnd
// base URL), or "fleet"/"fleet-http" (target is the fleet router base
// URL; "fleet" routes over the binary batch transport where replicas
// expose one, "fleet-http" stays on JSON).
func NewDriver(kind, target string, cfg serve.Config) (Driver, error) {
	switch kind {
	case "", "inprocess":
		return NewInProcess(serve.New(cfg)), nil
	case "http":
		if target == "" {
			return nil, fmt.Errorf("workload: http driver needs a target base URL")
		}
		return NewHTTP(target), nil
	case "fleet", "fleet-http":
		if target == "" {
			return nil, fmt.Errorf("workload: fleet driver needs the router base URL")
		}
		return NewFleet(target, kind == "fleet")
	default:
		return nil, fmt.Errorf("workload: unknown driver %q (want inprocess, http, fleet or fleet-http)", kind)
	}
}
