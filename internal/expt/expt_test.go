package expt

import (
	"strings"
	"testing"

	"github.com/straightpath/wasn/internal/topo"
)

// smallConfig keeps unit-test sweeps fast: two node counts, few networks.
func smallConfig(model topo.DeployModel) Config {
	cfg := DefaultConfig(model, 3, 5)
	cfg.NodeCounts = []int{400, 500}
	cfg.Workers = 2
	return cfg
}

func TestRunSweepIA(t *testing.T) {
	sweep, err := Run(smallConfig(topo.ModelIA))
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(sweep.Rows))
	}
	for _, row := range sweep.Rows {
		for _, alg := range PaperAlgorithms {
			st := row.Stats[alg]
			if st == nil {
				t.Fatalf("missing stats for %s", alg)
			}
			if st.Attempted != 15 { // 3 networks x 5 pairs
				t.Errorf("N=%d %s attempted = %d, want 15", row.N, alg, st.Attempted)
			}
			if st.DeliveryRate() < 0.6 {
				t.Errorf("N=%d %s delivery = %.2f too low", row.N, alg, st.DeliveryRate())
			}
			if st.Delivered > 0 && st.Hops.Mean() <= 0 {
				t.Errorf("N=%d %s zero mean hops with deliveries", row.N, alg)
			}
		}
	}
}

func TestRunSweepDeterministic(t *testing.T) {
	cfg := smallConfig(topo.ModelFA)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		for _, alg := range cfg.Algorithms {
			sa, sb := a.Rows[i].Stats[alg], b.Rows[i].Stats[alg]
			if sa.Hops.Mean() != sb.Hops.Mean() || sa.Delivered != sb.Delivered {
				t.Fatalf("row %d %s not deterministic: %v vs %v",
					i, alg, sa.Hops.Mean(), sb.Hops.Mean())
			}
		}
	}
}

func TestRunValidation(t *testing.T) {
	bad := []Config{
		{},
		{Model: topo.ModelIA},
		{Model: topo.ModelIA, NodeCounts: []int{400}},
		{Model: topo.ModelIA, NodeCounts: []int{400}, Networks: 1, Pairs: 1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestSweepTables(t *testing.T) {
	cfg := smallConfig(topo.ModelIA)
	cfg.Algorithms = append([]AlgID{}, PaperAlgorithms...)
	cfg.Algorithms = append(cfg.Algorithms, AlgIdealHops)
	sweep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Metric{MetricMaxHops, MetricAvgHops, MetricAvgLength, MetricDelivery, MetricDetourHops} {
		tb := sweep.Table(m)
		text := tb.Text()
		if !strings.Contains(text, "400") || !strings.Contains(text, "SLGF2") {
			t.Errorf("%v table missing content:\n%s", m, text)
		}
		if m.Figure() != "" && !strings.Contains(text, m.Figure()) {
			t.Errorf("%v table missing figure label", m)
		}
		if csv := tb.CSV(); !strings.Contains(csv, "nodes,GF") {
			t.Errorf("%v CSV header wrong: %q", m, csv[:40])
		}
	}
	// Cell accessor.
	if _, ok := sweep.Value(400, AlgSLGF2, MetricAvgHops); !ok {
		t.Error("Value lookup failed for existing cell")
	}
	if _, ok := sweep.Value(999, AlgSLGF2, MetricAvgHops); ok {
		t.Error("Value lookup succeeded for missing row")
	}
	if _, ok := sweep.Value(400, AlgID("nope"), MetricAvgHops); ok {
		t.Error("Value lookup succeeded for missing algorithm")
	}
}

func TestMetricLabels(t *testing.T) {
	if MetricMaxHops.Figure() != "Fig. 5" || MetricAvgHops.Figure() != "Fig. 6" ||
		MetricAvgLength.Figure() != "Fig. 7" || MetricDelivery.Figure() != "" {
		t.Error("figure mapping wrong")
	}
	for _, m := range []Metric{MetricMaxHops, MetricAvgHops, MetricAvgLength, MetricDelivery, MetricDetourHops} {
		if m.String() == "" || strings.HasPrefix(m.String(), "metric(") {
			t.Errorf("missing label for metric %d", m)
		}
	}
	if Metric(99).String() != "metric(99)" {
		t.Error("unknown metric label wrong")
	}
}

// The ideal router lower-bounds everything in aggregate.
func TestIdealLowerBound(t *testing.T) {
	cfg := smallConfig(topo.ModelFA)
	cfg.Algorithms = []AlgID{AlgSLGF2, AlgIdealHops}
	sweep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range sweep.Rows {
		ideal := row.Stats[AlgIdealHops]
		slgf2 := row.Stats[AlgSLGF2]
		if ideal.Delivered != ideal.Attempted {
			t.Errorf("N=%d: ideal failed on connected pairs", row.N)
		}
		if slgf2.Hops.Mean() < ideal.Hops.Mean()-1e-9 {
			t.Errorf("N=%d: SLGF2 mean hops %.2f below ideal %.2f",
				row.N, slgf2.Hops.Mean(), ideal.Hops.Mean())
		}
	}
}

// Every declared algorithm id must be constructible and routable.
func TestAllAlgorithmIDs(t *testing.T) {
	cfg := smallConfig(topo.ModelFA)
	cfg.NodeCounts = []int{400}
	cfg.Networks = 2
	cfg.Pairs = 3
	cfg.Algorithms = []AlgID{
		AlgGF, AlgLGF, AlgSLGF, AlgSLGF2, AlgGPSR, AlgIdealHops, AlgIdealLen,
		AlgSLGF2NoShape, AlgSLGF2RightHand, AlgSLGF2NoBackup,
	}
	sweep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range cfg.Algorithms {
		st := sweep.Rows[0].Stats[alg]
		if st == nil || st.Attempted == 0 {
			t.Errorf("%s: no routes attempted", alg)
		}
	}
}

// An unknown algorithm id must fail loudly at router construction.
func TestUnknownAlgorithmPanics(t *testing.T) {
	dep, err := topo.Deploy(topo.DefaultDeployConfig(topo.ModelIA, 50, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown algorithm id")
		}
	}()
	buildRouters(Config{Algorithms: []AlgID{AlgID("bogus")}}, dep.Net)
}

// Custom forbidden configuration flows through to FA deployments.
func TestCustomForbiddenConfig(t *testing.T) {
	cfg := smallConfig(topo.ModelFA)
	cfg.NodeCounts = []int{400}
	cfg.Networks = 2
	cfg.Forbidden = topo.ForbiddenConfig{Count: 1, MinSize: 70, MaxSize: 70, Margin: 60}
	sweep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Rows[0].Stats[AlgSLGF2].Attempted == 0 {
		t.Error("no routes under custom forbidden config")
	}
}

func TestNetworkSeedDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for n := 400; n <= 800; n += 50 {
		for idx := 0; idx < 100; idx++ {
			s := networkSeed(1, n, idx)
			if seen[s] {
				t.Fatalf("duplicate seed for n=%d idx=%d", n, idx)
			}
			seen[s] = true
		}
	}
}

func TestSamplePairsConnected(t *testing.T) {
	dep, err := topo.Deploy(topo.DefaultDeployConfig(topo.ModelFA, 300, 5))
	if err != nil {
		t.Fatal(err)
	}
	labels, _ := topo.Components(dep.Net)
	pairs := samplePairs(dep.Net, 30, 99)
	if len(pairs) == 0 {
		t.Fatal("no pairs sampled")
	}
	for _, p := range pairs {
		if p[0] == p[1] {
			t.Error("self pair sampled")
		}
		if labels[p[0]] != labels[p[1]] {
			t.Error("disconnected pair sampled")
		}
	}
}

// TestRunSweepWithFailures exercises the damage pass: every network
// kills FailNodes relays, repairs the substrates incrementally, and
// routes the same pairs again — doubling the attempt counts, with
// delivery allowed to degrade but not collapse.
func TestRunSweepWithFailures(t *testing.T) {
	cfg := smallConfig(topo.ModelIA)
	cfg.NodeCounts = []int{450}
	cfg.FailNodes = 10
	sweep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range PaperAlgorithms {
		st := sweep.Rows[0].Stats[alg]
		if st.Attempted != 30 { // 3 networks x 5 pairs x 2 passes
			t.Errorf("%s attempted = %d, want 30", alg, st.Attempted)
		}
		if st.DeliveryRate() < 0.5 {
			t.Errorf("%s delivery = %.2f collapsed under damage", alg, st.DeliveryRate())
		}
	}

	// The damage pass is as deterministic as the healthy sweep.
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range PaperAlgorithms {
		a, b := sweep.Rows[0].Stats[alg], again.Rows[0].Stats[alg]
		if a.Delivered != b.Delivered || a.Hops.Mean() != b.Hops.Mean() {
			t.Errorf("%s damage pass not deterministic", alg)
		}
	}
}
