// Package expt is the experiment harness that regenerates the paper's
// evaluation (§5): sweeps of random networks per deployment model and
// node count, routing sampled source–destination pairs with every
// algorithm, and aggregating the three reported metrics — maximum hop
// count (Fig. 5), average hop count (Fig. 6), and average path length
// (Fig. 7).
package expt

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"time"

	"github.com/straightpath/wasn/internal/bound"
	"github.com/straightpath/wasn/internal/core"
	"github.com/straightpath/wasn/internal/metrics"
	"github.com/straightpath/wasn/internal/planar"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/topo"
)

// AlgID names an algorithm in configs and result tables.
type AlgID string

// Algorithm identifiers. The first four are the paper's §5 lineup.
const (
	AlgGF    AlgID = "GF"
	AlgLGF   AlgID = "LGF"
	AlgSLGF  AlgID = "SLGF"
	AlgSLGF2 AlgID = "SLGF2"

	AlgGPSR      AlgID = "GPSR"
	AlgIdealHops AlgID = "Ideal-hops"
	AlgIdealLen  AlgID = "Ideal-length"

	// Ablation variants of SLGF2.
	AlgSLGF2NoShape   AlgID = "SLGF2-noshape"
	AlgSLGF2RightHand AlgID = "SLGF2-righthand"
	AlgSLGF2NoBackup  AlgID = "SLGF2-nobackup"
)

// PaperAlgorithms is the §5 lineup in figure-legend order.
var PaperAlgorithms = []AlgID{AlgGF, AlgLGF, AlgSLGF, AlgSLGF2}

// Config parameterizes one sweep.
type Config struct {
	// Model is the deployment model (IA or FA).
	Model topo.DeployModel
	// NodeCounts is the x-axis; the paper uses 400..800 step 50.
	NodeCounts []int
	// Networks is the number of random networks per node count (100 in
	// the paper).
	Networks int
	// Pairs is the number of connected source–destination pairs routed
	// per network.
	Pairs int
	// Algorithms selects the routers to run.
	Algorithms []AlgID
	// BaseSeed makes the whole sweep reproducible.
	BaseSeed uint64
	// Workers bounds parallelism (runtime.NumCPU() when 0).
	Workers int
	// TTLFactor overrides the routing hop budget (default when 0).
	TTLFactor int
	// EdgeRule overrides the safety model's edge rule (default when nil).
	EdgeRule safety.EdgeRule
	// Forbidden overrides FA hole generation (default when zero).
	Forbidden topo.ForbiddenConfig
	// FailNodes, when positive, additionally measures routing under
	// damage: after the healthy pass, each network kills FailNodes
	// random alive relays (never a sampled endpoint), repairs the
	// substrates incrementally (core.RepairSubstrates), and routes the
	// same pairs again into the same aggregates. Zero keeps the paper's
	// original static sweep.
	FailNodes int
}

// PaperNodeCounts is the §5 x-axis: 400 to 800 in increments of 50.
func PaperNodeCounts() []int {
	counts := make([]int, 0, 9)
	for n := 400; n <= 800; n += 50 {
		counts = append(counts, n)
	}
	return counts
}

// DefaultConfig returns the paper's setup for one model, scaled by the
// networks/pairs arguments (the paper uses networks=100).
func DefaultConfig(model topo.DeployModel, networks, pairs int) Config {
	return Config{
		Model:      model,
		NodeCounts: PaperNodeCounts(),
		Networks:   networks,
		Pairs:      pairs,
		Algorithms: PaperAlgorithms,
		BaseSeed:   1,
	}
}

// AlgStats aggregates one algorithm's results in one sweep cell.
type AlgStats struct {
	// Hops and Length summarize delivered routes only.
	Hops   metrics.Summary
	Length metrics.Summary
	// DetourHops summarizes the non-greedy (backup + perimeter) hops of
	// delivered routes.
	DetourHops metrics.Summary
	// Attempted and Delivered count routes.
	Attempted, Delivered int
}

// DeliveryRate returns Delivered/Attempted (0 when nothing attempted).
func (a AlgStats) DeliveryRate() float64 {
	if a.Attempted == 0 {
		return 0
	}
	return float64(a.Delivered) / float64(a.Attempted)
}

func (a *AlgStats) merge(b *AlgStats) {
	a.Hops.Merge(b.Hops)
	a.Length.Merge(b.Length)
	a.DetourHops.Merge(b.DetourHops)
	a.Attempted += b.Attempted
	a.Delivered += b.Delivered
}

func (a *AlgStats) observe(res core.Result) {
	a.Attempted++
	if !res.Delivered {
		return
	}
	a.Delivered++
	a.Hops.Add(float64(res.Hops()))
	a.Length.Add(res.Length)
	a.DetourHops.Add(float64(res.PhaseHops[core.PhaseBackup] + res.PhaseHops[core.PhasePerimeter]))
}

// Row is one x-axis point of a sweep.
type Row struct {
	N     int
	Stats map[AlgID]*AlgStats
}

// Sweep is a completed experiment.
type Sweep struct {
	Config  Config
	Rows    []Row
	Elapsed time.Duration
}

// Run executes the sweep: Networks random deployments per node count,
// Pairs connected routes per deployment per algorithm, in parallel.
func Run(cfg Config) (*Sweep, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	start := time.Now()

	type job struct{ nIdx, netIdx int }
	type cellDelta struct {
		nIdx, netIdx int
		stats        map[AlgID]*AlgStats
	}

	jobs := make(chan job)
	results := make(chan cellDelta)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				results <- cellDelta{
					nIdx:   j.nIdx,
					netIdx: j.netIdx,
					stats:  runNetwork(cfg, cfg.NodeCounts[j.nIdx], j.netIdx),
				}
			}
		}()
	}
	go func() {
		for nIdx := range cfg.NodeCounts {
			for netIdx := 0; netIdx < cfg.Networks; netIdx++ {
				jobs <- job{nIdx: nIdx, netIdx: netIdx}
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	// Workers finish in scheduling order, but the running-moment merge
	// (metrics.Summary) is float-order-dependent — collect every cell
	// delta first and fold them in deterministic (nIdx, netIdx) order so
	// identical configs always produce bit-identical sweeps.
	deltas := make([][]map[AlgID]*AlgStats, len(cfg.NodeCounts))
	for i := range deltas {
		deltas[i] = make([]map[AlgID]*AlgStats, cfg.Networks)
	}
	for delta := range results {
		deltas[delta.nIdx][delta.netIdx] = delta.stats
	}
	rows := make([]Row, len(cfg.NodeCounts))
	for i, n := range cfg.NodeCounts {
		rows[i] = Row{N: n, Stats: make(map[AlgID]*AlgStats, len(cfg.Algorithms))}
		for _, alg := range cfg.Algorithms {
			rows[i].Stats[alg] = &AlgStats{}
		}
		for _, stats := range deltas[i] {
			for alg, st := range stats {
				rows[i].Stats[alg].merge(st)
			}
		}
	}
	return &Sweep{Config: cfg, Rows: rows, Elapsed: time.Since(start)}, nil
}

func validate(cfg *Config) error {
	if cfg.Model != topo.ModelIA && cfg.Model != topo.ModelFA {
		return fmt.Errorf("expt: unknown deployment model %v", cfg.Model)
	}
	if len(cfg.NodeCounts) == 0 {
		return fmt.Errorf("expt: no node counts configured")
	}
	if cfg.Networks <= 0 || cfg.Pairs <= 0 {
		return fmt.Errorf("expt: networks (%d) and pairs (%d) must be positive", cfg.Networks, cfg.Pairs)
	}
	if len(cfg.Algorithms) == 0 {
		return fmt.Errorf("expt: no algorithms configured")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	return nil
}

// networkSeed derives a deterministic seed for one deployment.
func networkSeed(base uint64, n, netIdx int) uint64 {
	seed := base
	seed = seed*0x100000001b3 + uint64(n)
	seed = seed*0x100000001b3 + uint64(netIdx)
	return seed
}

// runNetwork deploys one network, samples connected pairs, and routes
// them with every configured algorithm.
func runNetwork(cfg Config, n, netIdx int) map[AlgID]*AlgStats {
	seed := networkSeed(cfg.BaseSeed, n, netIdx)
	dcfg := topo.DefaultDeployConfig(cfg.Model, n, seed)
	if cfg.Forbidden.Count > 0 {
		dcfg.Forbidden = cfg.Forbidden
	}
	out := make(map[AlgID]*AlgStats, len(cfg.Algorithms))
	for _, alg := range cfg.Algorithms {
		out[alg] = &AlgStats{}
	}
	dep, err := topo.Deploy(dcfg)
	if err != nil {
		// Degenerate forbidden configuration; skip this network. The
		// aggregate simply sees fewer attempts.
		return out
	}
	net := dep.Net

	routers, m, b, g := buildRouters(cfg, net)
	pairs := samplePairs(net, cfg.Pairs, seed^0xabcdef12345)
	for _, p := range pairs {
		for _, alg := range cfg.Algorithms {
			out[alg].observe(routers[alg].Route(p[0], p[1]))
		}
	}

	// Optional damage pass: kill random relays, repair the substrates
	// incrementally in place (the routers keep serving them), and route
	// the same pairs over the wounded network.
	if cfg.FailNodes > 0 {
		endpoint := make(map[topo.NodeID]bool, 2*len(pairs))
		for _, p := range pairs {
			endpoint[p[0]], endpoint[p[1]] = true, true
		}
		rng := rand.New(rand.NewPCG(seed^0x5bf03635, seed^0xc5227d1e))
		failed := make([]topo.NodeID, 0, cfg.FailNodes)
		for tries := 8 * cfg.FailNodes; len(failed) < cfg.FailNodes && tries > 0; tries-- {
			u := topo.NodeID(rng.IntN(net.N()))
			if endpoint[u] || !net.Alive(u) {
				continue
			}
			net.SetAlive(u, false)
			failed = append(failed, u)
		}
		if len(failed) > 0 {
			core.RepairSubstrates(m, b, g, failed)
			for _, p := range pairs {
				for _, alg := range cfg.Algorithms {
					out[alg].observe(routers[alg].Route(p[0], p[1]))
				}
			}
		}
	}
	return out
}

// buildRouters constructs the configured routers, sharing substrate
// artifacts (safety model, boundaries, planar graph) across algorithms.
// The substrates are returned alongside so the failure pass can repair
// them in place (unneeded ones are nil).
func buildRouters(cfg Config, net *topo.Network) (map[AlgID]core.Router, *safety.Model, *bound.Boundaries, *planar.Graph) {
	needSafety := false
	needBounds := false
	needPlanar := false
	for _, alg := range cfg.Algorithms {
		switch alg {
		case AlgSLGF, AlgSLGF2, AlgSLGF2NoShape, AlgSLGF2RightHand, AlgSLGF2NoBackup:
			needSafety = true
		case AlgGF:
			needBounds = true
		case AlgGPSR:
			needPlanar = true
		}
	}
	// The needed substrates build concurrently: the sweep already runs
	// one network per worker, but a sweep's tail (last networks of the
	// largest node count) leaves cores idle that the fan-out reclaims.
	m, b, g := core.BuildSubstrates(net, needSafety, needBounds, needPlanar, cfg.EdgeRule)

	routers := make(map[AlgID]core.Router, len(cfg.Algorithms))
	for _, alg := range cfg.Algorithms {
		switch alg {
		case AlgGF:
			r := core.NewGF(net, b)
			r.TTLFactor = cfg.TTLFactor
			routers[alg] = r
		case AlgLGF:
			r := core.NewLGF(net)
			r.TTLFactor = cfg.TTLFactor
			routers[alg] = r
		case AlgSLGF:
			r := core.NewSLGF(net, m)
			r.TTLFactor = cfg.TTLFactor
			routers[alg] = r
		case AlgSLGF2:
			r := core.NewSLGF2(net, m, core.WithPlanarGraph(g))
			r.TTLFactor = cfg.TTLFactor
			routers[alg] = r
		case AlgSLGF2NoShape:
			r := core.NewSLGF2(net, m, core.WithoutShapeInfo(), core.WithPlanarGraph(g))
			r.TTLFactor = cfg.TTLFactor
			routers[alg] = r
		case AlgSLGF2RightHand:
			r := core.NewSLGF2(net, m, core.WithoutEitherHand(), core.WithPlanarGraph(g))
			r.TTLFactor = cfg.TTLFactor
			routers[alg] = r
		case AlgSLGF2NoBackup:
			r := core.NewSLGF2(net, m, core.WithoutBackup(), core.WithPlanarGraph(g))
			r.TTLFactor = cfg.TTLFactor
			routers[alg] = r
		case AlgGPSR:
			r := core.NewGPSR(net, g)
			r.TTLFactor = cfg.TTLFactor
			routers[alg] = r
		case AlgIdealHops:
			routers[alg] = core.NewIdeal(net, core.IdealMinHop)
		case AlgIdealLen:
			routers[alg] = core.NewIdeal(net, core.IdealMinLength)
		default:
			// validate() accepts any id so new algorithms can be added
			// in one place; unknown ids fall back to LGF-less nothing.
			panic(fmt.Sprintf("expt: unknown algorithm id %q", alg))
		}
	}
	return routers, m, b, g
}

// maxPairTries bounds rejection sampling of connected pairs.
const maxPairTriesPerPair = 200

// samplePairs draws up to `pairs` uniformly random connected (s, d)
// pairs, s != d. Sparse disconnected networks may yield fewer.
func samplePairs(net *topo.Network, pairs int, seed uint64) [][2]topo.NodeID {
	labels, _ := topo.Components(net)
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	out := make([][2]topo.NodeID, 0, pairs)
	tries := pairs * maxPairTriesPerPair
	for len(out) < pairs && tries > 0 {
		tries--
		s := topo.NodeID(rng.IntN(net.N()))
		d := topo.NodeID(rng.IntN(net.N()))
		if s == d || labels[s] < 0 || labels[s] != labels[d] {
			continue
		}
		out = append(out, [2]topo.NodeID{s, d})
	}
	return out
}
