package expt

import (
	"fmt"
	"strconv"

	"github.com/straightpath/wasn/internal/metrics"
)

// Metric selects which figure's quantity a table reports.
type Metric int

// Metrics, one per reproduced figure plus extras.
const (
	// MetricMaxHops is Fig. 5: the maximum number of hops observed.
	MetricMaxHops Metric = iota + 1
	// MetricAvgHops is Fig. 6: the average number of hops.
	MetricAvgHops
	// MetricAvgLength is Fig. 7: the average routing path length (m).
	MetricAvgLength
	// MetricDelivery is the delivery rate (not in the paper; sanity).
	MetricDelivery
	// MetricDetourHops is the average non-greedy hop count (analysis).
	MetricDetourHops
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case MetricMaxHops:
		return "max hops"
	case MetricAvgHops:
		return "avg hops"
	case MetricAvgLength:
		return "avg path length (m)"
	case MetricDelivery:
		return "delivery rate"
	case MetricDetourHops:
		return "avg detour hops"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// Figure returns the paper artifact a metric reproduces ("" for extras).
func (m Metric) Figure() string {
	switch m {
	case MetricMaxHops:
		return "Fig. 5"
	case MetricAvgHops:
		return "Fig. 6"
	case MetricAvgLength:
		return "Fig. 7"
	default:
		return ""
	}
}

// value extracts the metric from one cell.
func (m Metric) value(st *AlgStats) float64 {
	switch m {
	case MetricMaxHops:
		return st.Hops.Max()
	case MetricAvgHops:
		return st.Hops.Mean()
	case MetricAvgLength:
		return st.Length.Mean()
	case MetricDelivery:
		return st.DeliveryRate()
	case MetricDetourHops:
		return st.DetourHops.Mean()
	default:
		return 0
	}
}

// format renders the metric's value for tables.
func (m Metric) format(v float64) string {
	switch m {
	case MetricMaxHops:
		return strconv.FormatFloat(v, 'f', 0, 64)
	case MetricDelivery:
		return strconv.FormatFloat(v, 'f', 3, 64)
	default:
		return strconv.FormatFloat(v, 'f', 2, 64)
	}
}

// Table renders one figure: node count rows, one column per algorithm.
func (s *Sweep) Table(m Metric) *metrics.Table {
	title := fmt.Sprintf("%s — %s, %s model (%d networks × %d pairs per point)",
		figureLabel(m), m, s.Config.Model, s.Config.Networks, s.Config.Pairs)
	t := &metrics.Table{Title: title, Headers: []string{"nodes"}}
	for _, alg := range s.Config.Algorithms {
		t.Headers = append(t.Headers, string(alg))
	}
	for _, row := range s.Rows {
		cells := []string{strconv.Itoa(row.N)}
		for _, alg := range s.Config.Algorithms {
			cells = append(cells, m.format(m.value(row.Stats[alg])))
		}
		t.AddRow(cells...)
	}
	return t
}

func figureLabel(m Metric) string {
	if f := m.Figure(); f != "" {
		return f
	}
	return "Extra"
}

// Value exposes one cell's metric (used by benchmarks to report paper
// metrics through testing.B).
func (s *Sweep) Value(nodeCount int, alg AlgID, m Metric) (float64, bool) {
	for _, row := range s.Rows {
		if row.N != nodeCount {
			continue
		}
		st, ok := row.Stats[alg]
		if !ok {
			return 0, false
		}
		return m.value(st), true
	}
	return 0, false
}
