package svgplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Chart is a generic 2-D time-series/step chart: named line or step
// series over a shared x-axis, optional vertical event markers, nice
// axis ticks, and a legend — still only the standard library, like
// Canvas. It backs the /debug/dash dashboard and the wasnd -render
// trajectory figures.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// LogY plots the y-axis on a log10 scale (non-positive values are
	// clamped to the smallest positive value present).
	LogY bool
	// YMax forces the y-axis top (0: autoscale to the data).
	YMax float64

	width, height int
	series        []chartSeries
	markers       []chartMarker
}

type chartSeries struct {
	name  string
	color string
	step  bool
	xs    []float64
	ys    []float64
}

type chartMarker struct {
	x     float64
	color string
	label string
}

// NewChart returns an empty chart of the given pixel size (defaults
// 640×220 when non-positive).
func NewChart(title string, width, height int) *Chart {
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 220
	}
	return &Chart{Title: title, width: width, height: height}
}

// Palette is the default series color cycle, shared by the dashboard
// and the render CLI so figures look alike everywhere.
var Palette = []string{"#1668aa", "#d1494e", "#2d8a57", "#b07818", "#7a4fa3", "#47a0b5", "#999999"}

// PaletteColor cycles the default palette.
func PaletteColor(i int) string { return Palette[i%len(Palette)] }

// Line adds a straight-line series. xs and ys must be the same length;
// the shorter tail is ignored if they differ.
func (c *Chart) Line(name, color string, xs, ys []float64) {
	c.add(name, color, false, xs, ys)
}

// Step adds a step series (the value holds until the next sample —
// the honest rendering of per-window rates and quantiles).
func (c *Chart) Step(name, color string, xs, ys []float64) {
	c.add(name, color, true, xs, ys)
}

func (c *Chart) add(name, color string, step bool, xs, ys []float64) {
	if len(xs) > len(ys) {
		xs = xs[:len(ys)]
	}
	if len(ys) > len(xs) {
		ys = ys[:len(xs)]
	}
	if color == "" {
		color = PaletteColor(len(c.series))
	}
	c.series = append(c.series, chartSeries{name: name, color: color, step: step, xs: xs, ys: ys})
}

// Marker draws a labeled vertical line at x — churn events on a
// timeline, the knee/cliff rungs on a capacity curve.
func (c *Chart) Marker(x float64, color, label string) {
	if color == "" {
		color = "#c0392b"
	}
	c.markers = append(c.markers, chartMarker{x: x, color: color, label: label})
}

// chart margins (pixels): left holds y tick labels, bottom x ticks,
// top the title, right breathing room.
const (
	marL = 52
	marR = 12
	marT = 26
	marB = 34
)

// bounds computes the data extent across all series and markers.
func (c *Chart) bounds() (x0, x1, y0, y1 float64, ok bool) {
	first := true
	for _, s := range c.series {
		for i := range s.xs {
			if first {
				x0, x1, y0, y1 = s.xs[i], s.xs[i], s.ys[i], s.ys[i]
				first = false
				continue
			}
			x0 = math.Min(x0, s.xs[i])
			x1 = math.Max(x1, s.xs[i])
			y0 = math.Min(y0, s.ys[i])
			y1 = math.Max(y1, s.ys[i])
		}
	}
	if first {
		return 0, 0, 0, 0, false
	}
	for _, m := range c.markers {
		x0 = math.Min(x0, m.x)
		x1 = math.Max(x1, m.x)
	}
	return x0, x1, y0, y1, true
}

// niceStep picks a 1/2/5×10^k step that yields 4–9 ticks over span.
func niceStep(span float64) float64 {
	if span <= 0 || math.IsNaN(span) || math.IsInf(span, 0) {
		return 1
	}
	raw := span / 5
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	switch {
	case raw/mag < 1.5:
		return mag
	case raw/mag < 3.5:
		return 2 * mag
	case raw/mag < 7.5:
		return 5 * mag
	}
	return 10 * mag
}

// fmtTick renders a tick value compactly (1.2k, 3.4M for big values).
func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return strings.TrimSuffix(fmt.Sprintf("%.1f", v/1e6), ".0") + "M"
	case av >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av >= 100 || v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

// render emits the chart as a <g> translated to (ox, oy), so a Figure
// can stack several charts in one document.
func (c *Chart) render(b *strings.Builder, ox, oy int) {
	fmt.Fprintf(b, `<g transform="translate(%d,%d)">`+"\n", ox, oy)
	defer b.WriteString("</g>\n")
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", c.width, c.height)
	if c.Title != "" {
		fmt.Fprintf(b, `<text x="%d" y="16" font-size="13" font-weight="bold" fill="#222">%s</text>`+"\n",
			marL, escape(c.Title))
	}
	pw, ph := c.width-marL-marR, c.height-marT-marB
	x0, x1, y0, y1, ok := c.bounds()
	if !ok {
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="12" fill="#888">no data</text>`+"\n",
			marL+pw/2-24, marT+ph/2)
		return
	}
	if c.YMax > 0 {
		y1 = c.YMax
	}
	if y0 > 0 && !c.LogY {
		y0 = 0 // rates and counts read best anchored at zero
	}
	yT := func(v float64) float64 { return v }
	if c.LogY {
		minPos := math.Inf(1)
		for _, s := range c.series {
			for _, v := range s.ys {
				if v > 0 && v < minPos {
					minPos = v
				}
			}
		}
		if math.IsInf(minPos, 1) {
			minPos = 1
		}
		yT = func(v float64) float64 {
			if v < minPos {
				v = minPos
			}
			return math.Log10(v)
		}
		y0, y1 = yT(math.Max(y0, minPos)), yT(math.Max(y1, minPos))
	}
	if x1 == x0 {
		x1 = x0 + 1
	}
	if y1 == y0 {
		y1 = y0 + 1
	}
	px := func(x float64) float64 { return float64(marL) + (x-x0)/(x1-x0)*float64(pw) }
	py := func(y float64) float64 { return float64(marT) + (1-(yT(y)-y0)/(y1-y0))*float64(ph) }

	// Frame + gridded ticks.
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#ccc"/>`+"\n",
		marL, marT, pw, ph)
	if c.LogY {
		for e := math.Ceil(y0); e <= math.Floor(y1); e++ {
			v := math.Pow(10, e)
			yp := float64(marT) + (1-(e-y0)/(y1-y0))*float64(ph)
			fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#eee"/>`+"\n", marL, yp, marL+pw, yp)
			fmt.Fprintf(b, `<text x="%d" y="%.1f" font-size="10" fill="#666" text-anchor="end">%s</text>`+"\n",
				marL-4, yp+3, fmtTick(v))
		}
	} else {
		step := niceStep(y1 - y0)
		for v := math.Ceil(y0/step) * step; v <= y1+step/1e6; v += step {
			yp := py(v)
			fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#eee"/>`+"\n", marL, yp, marL+pw, yp)
			fmt.Fprintf(b, `<text x="%d" y="%.1f" font-size="10" fill="#666" text-anchor="end">%s</text>`+"\n",
				marL-4, yp+3, fmtTick(v))
		}
	}
	xstep := niceStep(x1 - x0)
	for v := math.Ceil(x0/xstep) * xstep; v <= x1+xstep/1e6; v += xstep {
		xp := px(v)
		fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="10" fill="#666" text-anchor="middle">%s</text>`+"\n",
			xp, marT+ph+14, fmtTick(v))
	}
	if c.XLabel != "" {
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11" fill="#444" text-anchor="middle">%s</text>`+"\n",
			marL+pw/2, c.height-4, escape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(b, `<text x="12" y="%d" font-size="11" fill="#444" transform="rotate(-90 12 %d)" text-anchor="middle">%s</text>`+"\n",
			marT+ph/2, marT+ph/2, escape(c.YLabel))
	}

	// Markers under the series, labels along the top edge.
	for _, m := range c.markers {
		xp := px(m.x)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-dasharray="3 3" stroke-opacity="0.7"/>`+"\n",
			xp, marT, xp, marT+ph, m.color)
		if m.label != "" {
			fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="9" fill="%s">%s</text>`+"\n",
				xp+2, marT+9, m.color, escape(m.label))
		}
	}

	for _, s := range c.series {
		if len(s.xs) == 0 {
			continue
		}
		var d strings.Builder
		for i := range s.xs {
			xp, yp := px(s.xs[i]), py(s.ys[i])
			if i == 0 {
				fmt.Fprintf(&d, "M %.1f %.1f", xp, yp)
				continue
			}
			if s.step {
				fmt.Fprintf(&d, " H %.1f V %.1f", xp, yp)
			} else {
				fmt.Fprintf(&d, " L %.1f %.1f", xp, yp)
			}
		}
		fmt.Fprintf(b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n", d.String(), s.color)
		if len(s.xs) == 1 {
			// A single sample has no path length; mark the point.
			fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n",
				px(s.xs[0]), py(s.ys[0]), s.color)
		}
	}

	// Legend, top-right inside the frame.
	lx, ly := marL+pw-8, marT+8
	for i := len(c.series) - 1; i >= 0; i-- {
		s := c.series[i]
		if s.name == "" {
			continue
		}
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="10" fill="%s" text-anchor="end">%s</text>`+"\n",
			lx-14, ly+4, "#333", escape(s.name))
		fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			lx-12, ly, lx, ly, s.color)
		ly += 13
	}
}

// WriteTo emits the chart as a standalone SVG document.
func (c *Chart) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		c.width, c.height, c.width, c.height)
	c.render(&b, 0, 0)
	b.WriteString("</svg>\n")
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the standalone SVG document.
func (c *Chart) String() string {
	var b strings.Builder
	_, _ = c.WriteTo(&b)
	return b.String()
}

// Figure stacks charts vertically into one SVG document — the shape of
// a multi-panel trajectory figure and the dashboard page body.
type Figure struct {
	Title  string
	charts []*Chart
}

// Add appends a chart panel.
func (f *Figure) Add(c *Chart) { f.charts = append(f.charts, c) }

// WriteTo emits the stacked document.
func (f *Figure) WriteTo(w io.Writer) (int64, error) {
	width, height := 0, 0
	top := 0
	if f.Title != "" {
		top = 24
	}
	for _, c := range f.charts {
		if c.width > width {
			width = c.width
		}
		height += c.height + 8
	}
	if width == 0 {
		width = 640
	}
	height += top
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
	if f.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="17" font-size="14" font-weight="bold" fill="#111">%s</text>`+"\n",
			8, escape(f.Title))
	}
	y := top
	for _, c := range f.charts {
		c.render(&b, 0, y)
		y += c.height + 8
	}
	b.WriteString("</svg>\n")
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the stacked document.
func (f *Figure) String() string {
	var b strings.Builder
	_, _ = f.WriteTo(&b)
	return b.String()
}
