package svgplot

import (
	"strings"
	"testing"
)

func TestChartRendersSeriesAndLegend(t *testing.T) {
	c := NewChart("Throughput", 640, 220)
	c.XLabel = "seconds"
	c.YLabel = "req/s"
	c.Line("routes", "#112233", []float64{0, 1, 2}, []float64{10, 20, 15})
	c.Step("computed", "#445566", []float64{0, 1, 2}, []float64{5, 8, 6})
	c.Marker(1.5, "#c0392b", "fail")
	svg := c.String()

	for _, want := range []string{
		"<svg", "</svg>", "Throughput", "seconds", "req/s",
		"routes", "computed", "fail",
		`stroke="#112233"`, `stroke="#445566"`,
		"stroke-dasharray", // the marker line
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("chart SVG lacks %q", want)
		}
	}
	// The line series draws L segments; the step series H/V segments.
	if !strings.Contains(svg, " L ") {
		t.Error("line series produced no L path segments")
	}
	if !strings.Contains(svg, " H ") || !strings.Contains(svg, " V ") {
		t.Error("step series produced no H/V path segments")
	}
}

func TestChartEmptyAndSinglePoint(t *testing.T) {
	empty := NewChart("empty", 0, 0).String()
	if !strings.Contains(empty, "no data") {
		t.Error("empty chart lacks the no-data note")
	}
	if !strings.Contains(empty, `width="640"`) {
		t.Error("zero sizes did not default")
	}

	one := NewChart("one", 320, 160)
	one.Step("s", "", []float64{3}, []float64{42})
	svg := one.String()
	if !strings.Contains(svg, "<circle") {
		t.Error("single-point series not marked with a circle")
	}
}

func TestChartMismatchedLengthsTrimmed(t *testing.T) {
	c := NewChart("trim", 320, 160)
	c.Line("s", "", []float64{0, 1, 2, 3}, []float64{1, 2})
	svg := c.String()
	// Only two points survive: one M and one L command.
	if strings.Count(svg, " L ") != 1 {
		t.Fatalf("trimmed series path wrong:\n%s", svg)
	}
}

func TestChartLogYTicks(t *testing.T) {
	c := NewChart("log", 400, 200)
	c.LogY = true
	c.Line("lat", "", []float64{0, 1, 2}, []float64{10, 1000, 100000})
	svg := c.String()
	// Decade ticks rendered compactly.
	for _, want := range []string{">10<", ">1000<", ">100k<"} {
		if !strings.Contains(svg, want) {
			t.Errorf("log chart lacks decade tick %q", want)
		}
	}
}

func TestChartEscapesText(t *testing.T) {
	c := NewChart("a <b> & c", 320, 160)
	c.Line("s<1>", "", []float64{0, 1}, []float64{1, 2})
	svg := c.String()
	if strings.Contains(svg, "<b>") || strings.Contains(svg, "s<1>") {
		t.Fatal("chart text not escaped")
	}
	if !strings.Contains(svg, "a &lt;b&gt; &amp; c") {
		t.Fatal("escaped title missing")
	}
}

func TestFigureStacksPanels(t *testing.T) {
	var f Figure
	f.Title = "trajectory"
	a := NewChart("top", 500, 200)
	a.Line("x", "", []float64{0, 1}, []float64{1, 2})
	b := NewChart("bottom", 640, 180)
	b.Step("y", "", []float64{0, 1}, []float64{3, 4})
	f.Add(a)
	f.Add(b)
	svg := f.String()

	if !strings.Contains(svg, `width="640"`) {
		t.Error("figure width is not the widest panel")
	}
	// Panels render at distinct vertical offsets under the title row.
	if !strings.Contains(svg, `translate(0,24)`) {
		t.Error("first panel not offset below the figure title")
	}
	if !strings.Contains(svg, `translate(0,232)`) { // 24 + 200 + 8
		t.Error("second panel not stacked below the first")
	}
	for _, want := range []string{"trajectory", "top", "bottom"} {
		if !strings.Contains(svg, want) {
			t.Errorf("figure lacks %q", want)
		}
	}
}

func TestNiceStepAndTicks(t *testing.T) {
	cases := []struct {
		span, want float64
	}{
		{10, 2}, {100, 20}, {7, 1}, {0.5, 0.1}, {3000, 500},
	}
	for _, tc := range cases {
		if got := niceStep(tc.span); got != tc.want {
			t.Errorf("niceStep(%g) = %g; want %g", tc.span, got, tc.want)
		}
	}
	ticks := map[float64]string{
		2500000: "2.5M", 1000000: "1M", 12000: "12k", 150: "150", 3: "3", 0.25: "0.25",
	}
	for v, want := range ticks {
		if got := fmtTick(v); got != want {
			t.Errorf("fmtTick(%g) = %q; want %q", v, got, want)
		}
	}
}
