// Package svgplot renders networks, holes, unsafe areas and routes as
// standalone SVG documents using only the standard library. It exists
// for visual verification of the reproduction (the paper's Figs. 1-4 are
// exactly such drawings).
package svgplot

import (
	"fmt"
	"io"
	"strings"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/topo"
)

// Canvas accumulates SVG elements over a deployment field.
type Canvas struct {
	field geom.Rect
	scale float64
	body  strings.Builder
}

// New returns a canvas mapping the field to a width-pixel-wide image.
func New(field geom.Rect, widthPx float64) *Canvas {
	if widthPx <= 0 {
		widthPx = 800
	}
	scale := widthPx / field.Width()
	return &Canvas{field: field, scale: scale}
}

// pt maps field coordinates to SVG pixels (y flipped: SVG grows down).
func (c *Canvas) pt(p geom.Point) (x, y float64) {
	return (p.X - c.field.Min.X) * c.scale,
		(c.field.Max.Y - p.Y) * c.scale
}

// Network draws every node as a dot and, when edges is true, every link.
func (c *Canvas) Network(net *topo.Network, edges bool) {
	if edges {
		for i := range net.Nodes {
			u := topo.NodeID(i)
			if !net.Alive(u) {
				continue
			}
			for _, v := range net.Neighbors(u) {
				if v < u {
					continue
				}
				x1, y1 := c.pt(net.Pos(u))
				x2, y2 := c.pt(net.Pos(v))
				fmt.Fprintf(&c.body,
					`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd" stroke-width="0.5"/>`+"\n",
					x1, y1, x2, y2)
			}
		}
	}
	for _, n := range net.Nodes {
		x, y := c.pt(n.Pos)
		fill := "#444"
		if !n.Alive {
			fill = "#f33"
		}
		fmt.Fprintf(&c.body, `<circle cx="%.1f" cy="%.1f" r="2" fill="%s"/>`+"\n", x, y, fill)
	}
}

// Holes shades forbidden areas.
func (c *Canvas) Holes(areas topo.AreaSet) {
	for _, a := range areas {
		switch t := a.(type) {
		case topo.RectArea:
			c.rect(t.R, "rgba(255,120,120,0.35)", "none")
		case topo.DiscArea:
			x, y := c.pt(t.Center)
			fmt.Fprintf(&c.body,
				`<circle cx="%.1f" cy="%.1f" r="%.1f" fill="rgba(255,120,120,0.35)"/>`+"\n",
				x, y, t.Radius*c.scale)
		default:
			c.rect(a.BBox(), "rgba(255,120,120,0.2)", "none")
		}
	}
}

// UnsafeAreas outlines the estimated shape rectangles E_z(u) of every
// unsafe node (deduplicated by rectangle).
func (c *Canvas) UnsafeAreas(m *safety.Model) {
	seen := map[geom.Rect]bool{}
	for i := range m.Net.Nodes {
		u := topo.NodeID(i)
		for _, z := range geom.AllZones {
			r, ok := m.Shape(u, z)
			if !ok || r.Degenerate() || seen[r] {
				continue
			}
			seen[r] = true
			c.rect(r, "none", "#d80")
		}
	}
}

// Route draws a path with the given stroke color.
func (c *Canvas) Route(net *topo.Network, path []topo.NodeID, color string) {
	if len(path) < 2 {
		return
	}
	var b strings.Builder
	for i, u := range path {
		x, y := c.pt(net.Pos(u))
		if i == 0 {
			fmt.Fprintf(&b, "M %.1f %.1f", x, y)
		} else {
			fmt.Fprintf(&b, " L %.1f %.1f", x, y)
		}
	}
	fmt.Fprintf(&c.body,
		`<path d="%s" fill="none" stroke="%s" stroke-width="2" stroke-opacity="0.8"/>`+"\n",
		b.String(), color)
	// Endpoints.
	x, y := c.pt(net.Pos(path[0]))
	fmt.Fprintf(&c.body, `<circle cx="%.1f" cy="%.1f" r="5" fill="%s"/>`+"\n", x, y, color)
	x, y = c.pt(net.Pos(path[len(path)-1]))
	fmt.Fprintf(&c.body,
		`<rect x="%.1f" y="%.1f" width="10" height="10" fill="%s"/>`+"\n", x-5, y-5, color)
}

// Label places small text at a field position.
func (c *Canvas) Label(p geom.Point, text string) {
	x, y := c.pt(p)
	fmt.Fprintf(&c.body, `<text x="%.1f" y="%.1f" font-size="11" fill="#333">%s</text>`+"\n",
		x+4, y-4, escape(text))
}

func (c *Canvas) rect(r geom.Rect, fill, stroke string) {
	x, y := c.pt(geom.Pt(r.Min.X, r.Max.Y)) // top-left in SVG space
	attrs := fmt.Sprintf(`x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"`,
		x, y, r.Width()*c.scale, r.Height()*c.scale, fill)
	if stroke != "none" {
		attrs += fmt.Sprintf(` stroke="%s" stroke-dasharray="4 2"`, stroke)
	}
	fmt.Fprintf(&c.body, "<rect %s/>\n", attrs)
}

// WriteTo emits the complete SVG document.
func (c *Canvas) WriteTo(w io.Writer) (int64, error) {
	width := c.field.Width() * c.scale
	height := c.field.Height() * c.scale
	doc := fmt.Sprintf(
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height) +
		`<rect width="100%" height="100%" fill="white"/>` + "\n" +
		c.body.String() +
		"</svg>\n"
	n, err := io.WriteString(w, doc)
	return int64(n), err
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
