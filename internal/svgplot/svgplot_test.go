package svgplot

import (
	"bytes"
	"strings"
	"testing"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/topo"
)

func TestCanvasRendersDocument(t *testing.T) {
	dep, err := topo.Deploy(topo.DefaultDeployConfig(topo.ModelFA, 120, 4))
	if err != nil {
		t.Fatal(err)
	}
	net := dep.Net
	net.SetAlive(5, false)
	m := safety.Build(net)

	c := New(net.Field, 600)
	c.Holes(dep.Forbidden)
	c.Network(net, true)
	c.UnsafeAreas(m)
	c.Route(net, []topo.NodeID{0, 1, 2}, "#06c")
	c.Label(geom.Pt(10, 10), "s < & > d")

	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	checks := []string{
		"<svg", "</svg>", "<circle", "<line", // nodes and edges
		"rgba(255,120,120", // holes
		"#f33",             // dead node
		"stroke=\"#06c\"",  // route
		"&lt;",             // escaped label
	}
	for _, want := range checks {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<svg") != 1 {
		t.Error("should emit exactly one svg element")
	}
}

func TestCoordinateMapping(t *testing.T) {
	c := New(geom.FromCorners(geom.Pt(0, 0), geom.Pt(200, 200)), 800)
	// Field origin maps to bottom-left in SVG (y flipped).
	x, y := c.pt(geom.Pt(0, 0))
	if x != 0 || y != 800 {
		t.Errorf("origin maps to (%v, %v), want (0, 800)", x, y)
	}
	x, y = c.pt(geom.Pt(200, 200))
	if x != 800 || y != 0 {
		t.Errorf("far corner maps to (%v, %v), want (800, 0)", x, y)
	}
}

func TestZeroWidthDefaults(t *testing.T) {
	c := New(geom.FromCorners(geom.Pt(0, 0), geom.Pt(100, 100)), 0)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `width="800"`) {
		t.Error("default width not applied")
	}
}

func TestRouteTooShort(t *testing.T) {
	dep, err := topo.Deploy(topo.DefaultDeployConfig(topo.ModelIA, 10, 1))
	if err != nil {
		t.Fatal(err)
	}
	c := New(dep.Net.Field, 100)
	c.Route(dep.Net, []topo.NodeID{3}, "#000") // no-op
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<path") {
		t.Error("single-node route should draw nothing")
	}
}
