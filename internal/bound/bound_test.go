package bound

import (
	"math"
	"testing"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/topo"
)

func buildNet(t *testing.T, pts []geom.Point, radius float64) *topo.Network {
	t.Helper()
	net, err := topo.NewNetwork(pts, radius, geom.FromCorners(geom.Pt(0, 0), geom.Pt(200, 200)))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestTentIsolatedAndPendant(t *testing.T) {
	net := buildNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(100, 100), geom.Pt(108, 100)}, 10)
	// Node 0 is isolated: stuck everywhere.
	r0 := Tent(net, 0)
	if !r0.Stuck() {
		t.Fatal("isolated node not stuck")
	}
	if !r0.StuckToward(net.Pos(0), geom.Pt(50, 50)) {
		t.Error("isolated node should be stuck toward anything")
	}
	// Node 1 has one neighbor to its east: stuck toward the west.
	r1 := Tent(net, 1)
	if !r1.Stuck() {
		t.Fatal("pendant node not stuck")
	}
	if !r1.StuckToward(net.Pos(1), geom.Pt(0, 100)) {
		t.Error("pendant node should be stuck away from its neighbor")
	}
}

func TestTentDenseCenterNotStuck(t *testing.T) {
	// Center with 6 neighbors spread every 60 degrees at distance 8
	// (radius 10): circumcenters of adjacent pairs stay within range, so
	// the center has no stuck direction.
	pts := []geom.Point{geom.Pt(100, 100)}
	for k := 0; k < 6; k++ {
		a := float64(k) * math.Pi / 3
		pts = append(pts, geom.Pt(100+8*math.Cos(a), 100+8*math.Sin(a)))
	}
	net := buildNet(t, pts, 10)
	if r := Tent(net, 0); r.Stuck() {
		t.Errorf("well-surrounded node reported stuck: %+v", r.Intervals)
	}
}

func TestTentWideGapStuck(t *testing.T) {
	// Two neighbors 170 degrees apart at full range: the gap between
	// them exceeds 120 degrees, so the node is stuck in between.
	c := geom.Pt(100, 100)
	pts := []geom.Point{
		c,
		geom.Pt(100+10*math.Cos(0.0), 100+10*math.Sin(0.0)),
		geom.Pt(100+10*math.Cos(170*math.Pi/180), 100+10*math.Sin(170*math.Pi/180)),
	}
	net := buildNet(t, pts, 10)
	r := Tent(net, 0)
	if !r.Stuck() {
		t.Fatal("wide-gap node not stuck")
	}
	// Stuck toward the middle of the wide gap (85 degrees).
	mid := geom.Pt(100+20*math.Cos(85*math.Pi/180), 100+20*math.Sin(85*math.Pi/180))
	if !r.StuckToward(c, mid) {
		t.Error("node should be stuck toward the gap middle")
	}
}

func TestTent120DegreeBoundary(t *testing.T) {
	// Exactly 120 degrees apart at full range: circumcenter distance is
	// exactly R; the rule should NOT mark it stuck (boundary case), but
	// slightly wider must be stuck.
	// Neighbors sit at 9.99 not 10.0: exactly-at-range placement is lost
	// to float rounding in dist^2 comparisons.
	mk := func(sep float64) TentResult {
		c := geom.Pt(100, 100)
		pts := []geom.Point{
			c,
			geom.Pt(100+9.99*math.Cos(0.0), 100+9.99*math.Sin(0.0)),
			geom.Pt(100+9.99*math.Cos(sep), 100+9.99*math.Sin(sep)),
		}
		net := buildNet(t, pts, 10)
		return Tent(net, 0)
	}
	within := mk(119 * math.Pi / 180)
	for _, iv := range within.Intervals {
		if iv.Contains(math.Pi / 3) { // direction inside the 119° gap
			t.Error("119-degree gap should not be stuck inside the gap")
		}
	}
	wide := mk(125 * math.Pi / 180)
	stuckInGap := false
	for _, iv := range wide.Intervals {
		if iv.Contains(math.Pi / 3) {
			stuckInGap = true
		}
	}
	if !stuckInGap {
		t.Error("125-degree gap should be stuck inside the gap")
	}
}

// holeyNetwork builds a ring of nodes around an empty middle: a classic
// hole whose inner ring nodes are stuck toward the center.
func holeyNetwork(t *testing.T) (*topo.Network, geom.Point) {
	t.Helper()
	center := geom.Pt(100, 100)
	var pts []geom.Point
	// Inner ring radius 30, spacing < R=20 apart (circumference 188, 16
	// nodes -> spacing ~11.8).
	for k := 0; k < 16; k++ {
		a := float64(k) / 16 * geom.TwoPi
		pts = append(pts, geom.Pt(100+30*math.Cos(a), 100+30*math.Sin(a)))
	}
	// Outer shell so the ring is not the network edge.
	for k := 0; k < 24; k++ {
		a := float64(k) / 24 * geom.TwoPi
		pts = append(pts, geom.Pt(100+45*math.Cos(a), 100+45*math.Sin(a)))
	}
	return buildNet(t, pts, 20), center
}

func TestStuckNodesOnRing(t *testing.T) {
	net, center := holeyNetwork(t)
	_, stuck := StuckNodes(net)
	// At least one inner-ring node must be stuck toward the hole center.
	found := false
	for u := topo.NodeID(0); u < 16; u++ {
		if r, ok := stuck[u]; ok && r.StuckToward(net.Pos(u), center) {
			found = true
			break
		}
	}
	if !found {
		t.Error("no inner-ring node stuck toward the hole center")
	}
}

func TestFindHolesOnRing(t *testing.T) {
	net, center := holeyNetwork(t)
	b := FindHoles(net)
	if len(b.Holes) == 0 {
		t.Fatal("no holes found around an obvious void")
	}
	// Some hole's bounding box must contain the hole center.
	found := false
	for _, h := range b.Holes {
		if h.BBox.Contains(center) {
			found = true
			// Boundary must be a cycle of real edges.
			for i := 0; i < h.Len(); i++ {
				u := h.Cycle[i]
				v := h.Cycle[(i+1)%h.Len()]
				if u != v && !net.InRange(u, v) {
					t.Errorf("boundary edge %d-%d not a network edge", u, v)
				}
				if !b.OnBoundary(u) {
					t.Errorf("cycle node %d not indexed", u)
				}
				if hs := b.HolesAt(u); len(hs) == 0 {
					t.Errorf("HolesAt(%d) empty for boundary node", u)
				}
			}
		}
	}
	if !found {
		t.Error("no hole boundary surrounds the void center")
	}
	if b.MessageCount <= 0 {
		t.Error("construction message count not recorded")
	}
}

func TestFollowBoundary(t *testing.T) {
	h := &Hole{Cycle: []topo.NodeID{5, 7, 9, 11}}
	if v, ok := FollowBoundary(h, 7, +1); !ok || v != 9 {
		t.Errorf("forward from 7 = %v/%v, want 9", v, ok)
	}
	if v, ok := FollowBoundary(h, 5, -1); !ok || v != 11 {
		t.Errorf("backward from 5 = %v/%v, want 11", v, ok)
	}
	if _, ok := FollowBoundary(h, 99, +1); ok {
		t.Error("non-member should not be followed")
	}
}

func TestMergeIntervals(t *testing.T) {
	ivs := []StuckInterval{
		{Lo: 0, Hi: 1},
		{Lo: 0.5, Hi: 2},
		{Lo: 3, Hi: 4},
	}
	merged := mergeIntervals(ivs)
	if len(merged) != 2 {
		t.Fatalf("merged = %+v, want 2 intervals", merged)
	}
	if merged[0].Lo != 0 || merged[0].Hi != 2 {
		t.Errorf("first merged interval = %+v", merged[0])
	}
	if got := mergeIntervals(nil); got != nil {
		t.Error("nil merge should stay nil")
	}
}

func TestStuckIntervalHelpers(t *testing.T) {
	iv := StuckInterval{Lo: 3 * math.Pi / 2, Hi: math.Pi / 2} // wraps through 0
	if !iv.Contains(0) {
		t.Error("wrapping interval should contain 0")
	}
	if iv.Contains(math.Pi) {
		t.Error("wrapping interval should not contain pi")
	}
	if got := iv.Width(); math.Abs(got-math.Pi) > 1e-9 {
		t.Errorf("Width = %v, want pi", got)
	}
	if got := iv.MidDirection(); math.Abs(got) > 1e-9 && math.Abs(got-geom.TwoPi) > 1e-9 {
		t.Errorf("MidDirection = %v, want 0", got)
	}
}

func TestFindHolesCleanGrid(t *testing.T) {
	// A dense grid has no interior holes; any boundaries found must hug
	// the outer edge, and no interior node may be stuck.
	var pts []geom.Point
	for x := 0; x <= 10; x++ {
		for y := 0; y <= 10; y++ {
			pts = append(pts, geom.Pt(float64(x)*8+60, float64(y)*8+60))
		}
	}
	net := buildNet(t, pts, 20)
	_, stuck := StuckNodes(net)
	for u := range stuck {
		p := net.Pos(u)
		if p.X > 70 && p.X < 130 && p.Y > 70 && p.Y < 130 {
			t.Errorf("interior grid node %d at %v reported stuck", u, p)
		}
	}
}
