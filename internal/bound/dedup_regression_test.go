package bound

import (
	"slices"
	"testing"

	"github.com/straightpath/wasn/internal/topo"
)

// refAssemble replays the cached walks in assemble's discovery order
// with an independent map-based transitive dedup — every emitted cycle
// claims its directed edges whether kept or dropped — and returns the
// kept cycles plus whether a phantom chain occurred: a cycle that shares
// no edge with any earlier KEPT hole but does share one with an earlier
// DROPPED duplicate. The pre-fix dedup (only kept holes claimed edges)
// wrongly kept exactly those cycles as phantom second holes.
func refAssemble(b *Boundaries) (kept [][]topo.NodeID, phantomChain bool) {
	claimed := map[[2]topo.NodeID]bool{}
	keptClaimed := map[[2]topo.NodeID]bool{}
	for i := range b.recs {
		for _, t := range b.recs[i].traces {
			if len(t.cycle) < 3 {
				continue
			}
			dupAny, dupKept := false, false
			for i2 := range t.cycle {
				e := [2]topo.NodeID{t.cycle[i2], t.cycle[(i2+1)%len(t.cycle)]}
				dupAny = dupAny || claimed[e]
				dupKept = dupKept || keptClaimed[e]
			}
			for i2 := range t.cycle {
				e := [2]topo.NodeID{t.cycle[i2], t.cycle[(i2+1)%len(t.cycle)]}
				claimed[e] = true
			}
			if dupAny {
				if !dupKept {
					phantomChain = true
				}
				continue
			}
			for i2 := range t.cycle {
				e := [2]topo.NodeID{t.cycle[i2], t.cycle[(i2+1)%len(t.cycle)]}
				keptClaimed[e] = true
			}
			kept = append(kept, t.cycle)
		}
	}
	return kept, phantomChain
}

func requireRefMatch(t *testing.T, b *Boundaries, wantPhantom bool) {
	t.Helper()
	kept, phantom := refAssemble(b)
	if len(kept) != len(b.Holes) {
		t.Fatalf("assembled %d holes; transitive-dedup reference keeps %d", len(b.Holes), len(kept))
	}
	for i, h := range b.Holes {
		if !slices.Equal(h.Cycle, kept[i]) {
			t.Fatalf("hole %d cycle %v; reference %v", i, h.Cycle, kept[i])
		}
	}
	if wantPhantom && !phantom {
		t.Fatal("scenario no longer exercises a phantom duplicate chain; pick a new seed")
	}
}

// TestNoPhantomDuplicateHoles is the regression pin for the BOUNDHOLE
// dedup bug: with edge claims restricted to kept holes, a hole re-traced
// from a third stuck direction — sharing edges only with an already
// dropped duplicate — was emitted again as a phantom second hole. The
// obstacle-field seeds here are ones where that chain occurs (the
// pre-fix assemble kept 25 resp. phantom-extra holes); the fixed
// assemble must agree with an independent transitive dedup, cycle for
// cycle, on the initial build and across liveness churn.
func TestNoPhantomDuplicateHoles(t *testing.T) {
	// Initial-build phantom: OB n=110 seed=2 (pre-fix: 25 holes, 2 phantom).
	dep, err := topo.Deploy(topo.DefaultDeployConfig(topo.ModelOB, 110, 2))
	if err != nil {
		t.Fatal(err)
	}
	b := FindHoles(dep.Net)
	requireRefMatch(t, b, true)

	// Churn-path phantom: OB n=80 seed=4 diverges only after killing
	// node 26 and repairing.
	dep2, err := topo.Deploy(topo.DefaultDeployConfig(topo.ModelOB, 80, 4))
	if err != nil {
		t.Fatal(err)
	}
	b2 := FindHoles(dep2.Net)
	dep2.Net.SetAlive(26, false)
	b2.Repair([]topo.NodeID{26})
	requireRefMatch(t, b2, true)
}
