package bound

import (
	"slices"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/par"
	"github.com/straightpath/wasn/internal/topo"
)

// Hole is the closed boundary of one routing hole: a cycle of nodes.
type Hole struct {
	ID int
	// Cycle lists the boundary nodes in traversal order; the last node
	// connects back to the first.
	Cycle []topo.NodeID
	// BBox bounds the boundary nodes.
	BBox geom.Rect
}

// Len returns the number of boundary nodes.
func (h *Hole) Len() int { return len(h.Cycle) }

// indexOf returns the position of u on the cycle, or -1.
func (h *Hole) indexOf(u topo.NodeID) int {
	for i, v := range h.Cycle {
		if v == u {
			return i
		}
	}
	return -1
}

// Boundaries is the output of BOUNDHOLE on a network: every hole found
// plus a node→holes index, the "boundary information" that §5 constructs
// for GF routing. It also retains the per-walk cache that lets Repair
// re-derive the holes after a node failure by re-tracing only the walks
// that passed through the failure neighborhood.
type Boundaries struct {
	Holes []*Hole
	// byNode maps each boundary node to the holes it belongs to.
	byNode map[topo.NodeID][]*Hole
	// MessageCount estimates construction traffic: one message per
	// traversal step, the cost model used when comparing against the
	// safety-information construction. After a Repair it equals what a
	// from-scratch run on the mutated network would report.
	MessageCount int

	// Repair state: the network the boundaries were traced on, the
	// boundary length cap, the cached TENT results and walk outcomes per
	// node, and the generation-stamped claimed-edge scratch of assemble.
	net      *topo.Network
	maxLen   int
	recs     []nodeRec
	claimGen []uint32
	claimG   uint32
	// Repair scratch reused across calls (repairs are serialized by the
	// caller, like claimGen): the dirty-node marks and the re-trace job
	// list, grown to the current node count on demand.
	tentDirty []bool
	walkDirty []bool
	jobs      []traceJob
}

// traceRec caches the outcome of one BOUNDHOLE walk (one stuck interval
// of one stuck node): the closed cycle (nil when the walk failed to
// close or was overlong) and the touched set — every node whose
// neighborhood the walk swept, cycle nodes for a closed walk and the
// visited prefix for a failed one. A liveness change at node x can only
// alter sweeps at x or its static neighbors, so a cached walk stays
// valid exactly while its touched set avoids {x} ∪ N(x).
type traceRec struct {
	cycle   []topo.NodeID
	touched []topo.NodeID
}

// nodeRec caches the stuck analysis of one node: its TENT result and
// the walk outcome of each stuck interval (index-aligned with
// tent.Intervals). The zero value marks a node that is dead or not
// stuck.
type nodeRec struct {
	tent   TentResult
	traces []traceRec
}

// HolesAt returns the holes whose boundary contains u (nil if none).
func (b *Boundaries) HolesAt(u topo.NodeID) []*Hole { return b.byNode[u] }

// OnBoundary reports whether u lies on any hole boundary.
func (b *Boundaries) OnBoundary(u topo.NodeID) bool { return len(b.byNode[u]) > 0 }

// maxBoundarySteps caps one traversal; BOUNDHOLE boundaries cannot visit a
// directed edge twice, so 4|V| is far beyond any legitimate cycle and only
// trips on pathological float geometry.
func maxBoundarySteps(net *topo.Network) int { return 4 * net.N() }

// boundaryLenCap bounds the length of a kept boundary. Boundaries longer
// than this are walk artifacts, not hole rims: a genuine hole boundary
// cannot involve more than a fraction of the network. They would only
// mislead detours, so they are dropped — and the tracer aborts as soon
// as a walk exceeds the cap rather than burning its full step budget on
// a cycle that cannot be kept.
func boundaryLenCap(net *topo.Network) int {
	maxLen := net.N() / 4
	if maxLen < 16 {
		maxLen = 16
	}
	return maxLen
}

// FindHoles runs the TENT rule and then BOUNDHOLE from every stuck
// direction, deduplicating holes that share boundary edges.
//
// Simplification vs. the original protocol: the original refines the
// boundary when a newly added edge crosses an earlier one; this
// implementation instead cuts the cycle at the first revisited directed
// edge, which yields the same closed boundary on the unit-disk graphs used
// here (the refinement only matters under lossy/asymmetric links).
//
// The returned Boundaries retain every walk outcome, so a later Repair
// after node failures re-traces only the walks whose swept region the
// failure touched.
func FindHoles(net *topo.Network) *Boundaries {
	b := &Boundaries{
		net:    net,
		maxLen: boundaryLenCap(net),
		recs:   make([]nodeRec, net.N()),
	}
	_, stuck := StuckNodes(net)
	var jobs []traceJob
	for i := range net.Nodes {
		res, ok := stuck[topo.NodeID(i)]
		if !ok {
			continue
		}
		b.recs[i] = nodeRec{tent: res, traces: make([]traceRec, len(res.Intervals))}
		for k := range res.Intervals {
			jobs = append(jobs, traceJob{u: res.Node, k: k})
		}
	}
	b.runTraces(jobs, nil)
	b.assemble()
	return b
}

// traceJob identifies one walk to run: stuck interval k of node u. The
// destination slot recs[u].traces[k] must already exist. hint, set only
// by position repair, is the walk's previous outcome: the re-trace
// replays it and sweeps only at dirty nodes (traceHinted).
type traceJob struct {
	u    topo.NodeID
	k    int
	hint *traceRec
}

// runTraces executes the walks. Every walk is independent (it reads the
// network and writes only its own trace slot), so the jobs fan out
// across GOMAXPROCS with one tracer — the walk scratch — per chunk.
func (b *Boundaries) runTraces(jobs []traceJob, dirty []bool) {
	par.For(len(jobs), func(lo, hi int) {
		tr := newTracer(b.net, b.maxLen)
		for i := lo; i < hi; i++ {
			j := jobs[i]
			rec := &b.recs[j.u]
			iv := rec.tent.Intervals[j.k]
			if j.hint == nil {
				rec.traces[j.k] = traceOne(tr, j.u, iv)
				continue
			}
			changed, cycle, touched := tr.traceHinted(j.u, iv, j.hint, dirty)
			switch {
			case !changed:
				rec.traces[j.k] = *j.hint
			case cycle != nil:
				kept := append([]topo.NodeID(nil), cycle...)
				rec.traces[j.k] = traceRec{cycle: kept, touched: kept}
			default:
				rec.traces[j.k] = traceRec{touched: append([]topo.NodeID(nil), touched...)}
			}
		}
	})
}

// traceOne runs one walk and copies its outcome out of the tracer
// scratch. A closed walk sweeps exactly its cycle nodes, so the touched
// set shares the cycle slice.
func traceOne(tr *tracer, u topo.NodeID, iv StuckInterval) traceRec {
	cycle, touched := tr.trace(u, iv)
	if cycle != nil {
		kept := append([]topo.NodeID(nil), cycle...)
		return traceRec{cycle: kept, touched: kept}
	}
	return traceRec{touched: append([]topo.NodeID(nil), touched...)}
}

// assemble rebuilds Holes, the node index, and MessageCount from the
// cached walks, replaying the discovery order of a from-scratch run:
// nodes ascending, intervals in TENT order, first claim of a directed
// edge wins. An incremental Repair therefore assigns the same hole ids,
// cycles, and message counts as FindHoles on the mutated network.
func (b *Boundaries) assemble() {
	b.Holes = b.Holes[:0]
	if b.byNode == nil {
		b.byNode = make(map[topo.NodeID][]*Hole)
	} else {
		clear(b.byNode)
	}
	b.MessageCount = 0
	// Claimed directed boundary edges live in a generation-stamped array
	// indexed by CSR edge slot — O(1) to reset, no hashing per edge.
	// Position repair can grow the slot count, so resize by length (the
	// generation bump makes any slot-shifted stale stamps harmless).
	if len(b.claimGen) < b.net.AdjSlots() {
		b.claimGen = make([]uint32, b.net.AdjSlots())
	}
	b.claimG++
	if b.claimG == 0 {
		clear(b.claimGen)
		b.claimG = 1
	}
	for i := range b.recs {
		for _, t := range b.recs[i].traces {
			if len(t.cycle) < 3 {
				continue
			}
			b.MessageCount += len(t.cycle)
			// A trace that shares a directed edge with ANY earlier trace —
			// kept or itself deduplicated — re-found the same hole from
			// another stuck direction. Claiming only kept holes' edges was
			// a long-standing bug: a dropped duplicate's remaining edges
			// stayed unclaimed, so a third walk of the same hole entering
			// through those edges was kept as a phantom second hole. Every
			// emitted cycle claims its edges, dropped or not, making the
			// duplicate relation transitive.
			dup := b.claimed(t.cycle)
			b.claim(t.cycle)
			if dup {
				continue
			}
			hole := &Hole{ID: len(b.Holes), Cycle: t.cycle, BBox: cycleBBox(b.net, t.cycle)}
			b.Holes = append(b.Holes, hole)
			for _, v := range t.cycle {
				b.byNode[v] = append(b.byNode[v], hole)
			}
		}
	}
}

// Repair incrementally re-derives the boundaries after the liveness of
// the given nodes changed (topo.Network.SetAlive already applied; both
// failures and revivals are handled). The TENT rule re-runs only on the
// changed nodes and their static neighbors — the only nodes whose
// angular gaps moved — and only walks whose swept region intersects
// that dirty set are re-traced; every other walk replays from the
// cache. The resulting hole set is identical to FindHoles on the
// mutated network at a small fraction of the cost: repair work scales
// with the failure neighborhood and the boundaries through it, not with
// the network.
func (b *Boundaries) Repair(changed []topo.NodeID) {
	// Two dirt notions. tentDirty marks nodes whose TENT analysis must
	// re-run: the changed nodes and their static neighbors (TENT reads
	// the full neighborhood). walkDirty marks nodes whose presence in a
	// walk's touched set invalidates the walk — and is finer for
	// failures: a CW sweep's outcome changes on candidate removal only
	// if the removed node was the sweep's winner, i.e. the walk's next
	// hop, so a failed node deflects exactly the walks that visited it.
	// A revived node can newly win any sweep at its neighbors, so it
	// dirties its whole neighborhood.
	b.tentDirty = growClear(b.tentDirty, b.net.N())
	b.walkDirty = growClear(b.walkDirty, b.net.N())
	tentDirty, walkDirty := b.tentDirty, b.walkDirty
	for _, x := range changed {
		tentDirty[x] = true
		walkDirty[x] = true
		revived := b.net.Alive(x)
		for _, v := range b.net.AdjacencyRow(x) {
			tentDirty[v] = true
			if revived {
				walkDirty[v] = true
			}
		}
	}
	b.repairDirty(tentDirty, walkDirty, false)
}

// RepairMoved incrementally re-derives the boundaries after node
// positions changed (topo.Network.SetPositions already applied). dirty
// is the geometric dirty set SetPositions returned. Both the TENT
// analysis at a node and a CW sweep at a visited walk node read exactly
// that node's row geometry — neighbor ids, bearings, packed positions —
// so a node's cached analysis and the walks that swept it are invalid
// precisely when the node is in the dirty set: tentDirty and walkDirty
// coincide for moves.
func (b *Boundaries) RepairMoved(dirty []topo.NodeID) {
	b.tentDirty = growClear(b.tentDirty, b.net.N())
	mark := b.tentDirty
	for _, x := range dirty {
		mark[x] = true
	}
	b.repairDirty(mark, mark, true)
}

// growClear returns buf grown to at least n and cleared — the dirty-mark
// scratch shared by the repair entry points.
func growClear(buf []bool, n int) []bool {
	if len(buf) < n {
		return make([]bool, n)
	}
	clear(buf)
	return buf
}

// repairDirty re-runs TENT on the tentDirty nodes, re-traces every walk
// that swept a walkDirty node, and reassembles the hole set. moved
// selects the position-repair fast path: each touched walk re-traces
// with its cached outcome as an oracle (traceHinted), which skips every
// sweep at a clean row and usually proves the walk unchanged without
// re-walking it. Sound only for moves, where every sweep a change could
// affect reads a dirty row; liveness changes flip sweep outcomes
// through the Alive bits at rows that are not marked dirty, so those
// walks re-trace from scratch.
func (b *Boundaries) repairDirty(tentDirty, walkDirty []bool, moved bool) {
	jobs := b.jobs[:0]
	for i := range b.recs {
		u := topo.NodeID(i)
		if tentDirty[i] {
			if !b.net.Alive(u) {
				b.recs[i] = nodeRec{}
				continue
			}
			res := Tent(b.net, u)
			if !res.Stuck() {
				b.recs[i] = nodeRec{}
				continue
			}
			// When the stuck intervals survived the change, the cached
			// walks stay valid too (walk outcomes depend on the seed
			// interval and the swept rows only); fall through to the
			// per-walk check. For moves the intervals rarely survive
			// bit-for-bit — every bearing of a dirty row jitters the
			// float endpoints — but a walk is a function of its start
			// node and FIRST HOP alone (the interval only seeds the
			// first sweep), so jittered and even re-partitioned
			// interval lists still replay their old walks: each new
			// interval is matched to the cached walk that starts with
			// the same first hop and re-traced against it.
			if !slices.Equal(res.Intervals, b.recs[i].tent.Intervals) {
				if !moved {
					b.recs[i] = nodeRec{tent: res, traces: make([]traceRec, len(res.Intervals))}
					for k := range res.Intervals {
						jobs = append(jobs, traceJob{u: u, k: k})
					}
					continue
				}
				if len(res.Intervals) != len(b.recs[i].traces) {
					old := b.recs[i].traces
					b.recs[i] = nodeRec{tent: res, traces: make([]traceRec, len(res.Intervals))}
					for k := range res.Intervals {
						jobs = append(jobs, traceJob{u: u, k: k, hint: matchHint(b.net, u, res.Intervals[k], old)})
					}
					continue
				}
			}
			b.recs[i].tent = res
		}
		// Re-trace only the walks that swept a walk-dirty node.
		for k := range b.recs[i].traces {
			tr := &b.recs[i].traces[k]
			if !touchesDirty(tr.touched, walkDirty) {
				continue
			}
			if moved {
				jobs = append(jobs, traceJob{u: u, k: k, hint: tr})
			} else {
				jobs = append(jobs, traceJob{u: u, k: k})
			}
		}
	}
	b.jobs = jobs
	b.runTraces(jobs, walkDirty)
	b.assemble()
	// Drop the hint pointers so retired trace records can be collected
	// (the jobs buffer is retained across repairs).
	for i := range jobs {
		jobs[i].hint = nil
	}
}

// matchHint picks the cached walk a fresh walk seeded by iv would
// replay. The whole course of a walk is a function of its start node
// and first hop — the interval steers nothing past the first sweep —
// so the cached walk with the same first hop is the right oracle even
// when the interval list was re-partitioned. nil (no way into the gap,
// or a genuinely new first hop) re-traces from scratch.
func matchHint(net *topo.Network, u topo.NodeID, iv StuckInterval, old []traceRec) *traceRec {
	first := sweepCW(net, u, iv.MidDirection(), topo.NoNode)
	if first == topo.NoNode {
		return nil
	}
	for m := range old {
		if t := old[m].touched; len(t) >= 2 && t[1] == first {
			return &old[m]
		}
	}
	return nil
}

// touchesDirty reports whether any of the nodes is marked dirty.
func touchesDirty(nodes []topo.NodeID, dirty []bool) bool {
	for _, v := range nodes {
		if dirty[v] {
			return true
		}
	}
	return false
}

// claimed reports whether any directed edge of the cycle is already part
// of a recorded hole (meaning this traversal found the same hole again
// from a different stuck node). Walk cycles move along adjacency edges,
// so every directed edge has a CSR slot.
func (b *Boundaries) claimed(cycle []topo.NodeID) bool {
	for i := 0; i < len(cycle); i++ {
		j := (i + 1) % len(cycle)
		if b.claimGen[b.net.AdjSlotOf(cycle[i], cycle[j])] == b.claimG {
			return true
		}
	}
	return false
}

func (b *Boundaries) claim(cycle []topo.NodeID) {
	for i := 0; i < len(cycle); i++ {
		j := (i + 1) % len(cycle)
		b.claimGen[b.net.AdjSlotOf(cycle[i], cycle[j])] = b.claimG
	}
}

func cycleBBox(net *topo.Network, cycle []topo.NodeID) geom.Rect {
	bb := geom.FromCorners(net.Pos(cycle[0]), net.Pos(cycle[0]))
	for _, v := range cycle[1:] {
		bb = bb.Union(geom.FromCorners(net.Pos(v), net.Pos(v)))
	}
	return bb
}

// tracer holds the reusable scratch of BOUNDHOLE traversals: the cycle
// buffer and the visited directed-edge stamps, allocated once per walk
// worker and reused across its traces. Visited edges live in a
// generation-stamped array indexed by CSR edge slot, so starting a new
// walk is a counter bump and each step costs one array write instead of
// a map insert.
type tracer struct {
	net     *topo.Network
	maxLen  int
	cycle   []topo.NodeID
	edgeGen []uint32
	gen     uint32
	// Hint re-convergence index for position-repair replays: node →
	// position in the current hint sequence, generation-stamped like
	// edgeGen and allocated on the first divergent hinted walk.
	hintIdx []int32
	hintGen []uint32
	hintG   uint32
	// Successor memo for position-repair replays, keyed by the in-edge
	// CSR slot of a walk state (prev, cur): the boundary successor and
	// its out-edge slot, both pure functions of the state on the
	// round's frozen network (resumeLive). Allocated on first use.
	succNext []topo.NodeID
	succSlot []int32
	succSet  []bool
}

func newTracer(net *topo.Network, maxLen int) *tracer {
	return &tracer{
		net:     net,
		maxLen:  maxLen,
		cycle:   make([]topo.NodeID, 0, maxLen+1),
		edgeGen: make([]uint32, net.AdjSlots()),
	}
}

// beginWalk starts a fresh visited-edge generation.
func (tr *tracer) beginWalk() {
	tr.gen++
	if tr.gen == 0 {
		clear(tr.edgeGen)
		tr.gen = 1
	}
}

// walkEdge stamps the directed edge u→v as walked, reporting whether it
// had already been walked this generation.
func (tr *tracer) walkEdge(u, v topo.NodeID) (again bool) {
	_, again = tr.walkEdgeSlot(u, v)
	return again
}

// walkEdgeSlot is walkEdge returning the edge's CSR slot as well, for
// callers that keep walking from it.
func (tr *tracer) walkEdgeSlot(u, v topo.NodeID) (slot int32, again bool) {
	slot = int32(tr.net.AdjSlotOf(u, v))
	if tr.edgeGen[slot] == tr.gen {
		return slot, true
	}
	tr.edgeGen[slot] = tr.gen
	return slot, false
}

// trace walks the hole boundary starting at stuck node t0, heading into
// the stuck angular gap and sweeping clockwise (keeping the hole on the
// left), until the walk returns to t0. cycle is nil when no closed
// boundary forms: the original protocol's edge-crossing refinement is
// approximated by aborting on any repeated directed edge — a repeat
// means the walk fell into a sub-cycle that can never close at t0.
// Walks exceeding maxLen abort immediately (assemble would discard the
// cycle anyway).
//
// touched is every node visited by the walk — a superset of the nodes
// whose neighborhoods were swept — and is returned for both closed and
// failed walks so Repair can tell which liveness changes invalidate
// this outcome. Both returned slices alias the tracer's buffer and are
// only valid until the next trace call.
func (tr *tracer) trace(t0 topo.NodeID, iv StuckInterval) (cycle, touched []topo.NodeID) {
	net := tr.net
	buf := append(tr.cycle[:0], t0)
	// First hop: sweep CW from the middle of the stuck gap; the first
	// neighbor hit is the gap's boundary node.
	first := sweepCW(net, t0, iv.MidDirection(), topo.NoNode)
	if first == topo.NoNode {
		tr.cycle = buf[:0]
		return nil, buf
	}
	tr.beginWalk()
	tr.walkEdge(t0, first)
	prev, cur := t0, first
	budget := maxBoundarySteps(net)
	for step := 0; step < budget; step++ {
		if cur == t0 {
			tr.cycle = buf[:0]
			return buf, buf
		}
		buf = append(buf, cur)
		if len(buf) > tr.maxLen {
			tr.cycle = buf[:0]
			return nil, buf // overlong: assemble would drop it
		}
		// Sweep CW from the back-edge direction: the next boundary edge
		// is the first neighbor encountered rotating clockwise from
		// cur→prev, excluding an immediate bounce unless forced. The
		// walk arrived over edge prev→cur, so the back-edge bearing is a
		// precomputed CSR lookup, not an atan2.
		from, _ := net.EdgeBearing(cur, prev)
		next := sweepCW(net, cur, from, prev)
		if next == topo.NoNode {
			next = prev // dead end: bounce back
		}
		if tr.walkEdge(cur, next) {
			tr.cycle = buf[:0]
			return nil, buf // sub-cycle: the walk cannot close at t0
		}
		prev, cur = cur, next
	}
	tr.cycle = buf[:0]
	return nil, buf
}

// traceHinted re-runs the walk (t0, iv) after a position batch, using
// its cached outcome as an oracle. Soundness: a CW sweep at a node
// whose adjacency row the batch did not touch (dirty=false) reads
// exactly the neighbor ids, bearings, and liveness it read when the
// cache was built — position batches change no Alive bit — so from an
// identical walk state (prev, cur) it must reproduce the cached
// successor without being re-run. The walk is therefore REPLAYED
// index by index, sweeping only at dirty nodes, and the first
// mismatched successor is the divergence point: the fresh walk equals
// the cached prefix up to it and resumes live from there (resumeLive),
// free to re-converge onto the cached sequence. A touched walk whose
// dirty sweeps all match replays to its cached end and is proven
// unchanged in O(dirty·deg) instead of being re-walked in O(len·deg).
//
// Visited-edge stamps are skipped during the replay: the prefix edges
// are a sub-path of the cached walk, which never repeats a directed
// edge, so the repeat-edge abort cannot fire before the divergence
// point; resumeLive stamps the prefix in bulk when it takes over. The
// step budget cannot bind either — the visit buffer grows every step,
// so the length cap (maxLen ≪ budget) always trips first, and the
// cached walk already respected it.
//
// changed=false reports that the fresh walk reproduces the cached
// outcome bit for bit: the caller keeps the cached record and
// allocates nothing. Sound for position repair only — a liveness flip
// at x alters sweeps at x's neighbors through the Alive bits, which
// row-dirtiness does not capture.
func (tr *tracer) traceHinted(t0 topo.NodeID, iv StuckInterval, hint *traceRec, dirty []bool) (changed bool, cycle, touched []topo.NodeID) {
	nodes := hint.touched // == cycle for closed walks (they share the slice)
	closed := hint.cycle != nil
	n := len(nodes)
	// First hop. A clean t0 keeps its cached (bit-equal) interval and
	// row, so the first sweep reproduces unswept; a dirty t0 — or a
	// jittered/re-matched interval, which implies a dirty t0 — sweeps
	// live against the new seed direction.
	var first topo.NodeID
	if !dirty[t0] {
		if n < 2 {
			return false, nil, nil // still no way into the gap
		}
		first = nodes[1]
	} else {
		first = sweepCW(tr.net, t0, iv.MidDirection(), topo.NoNode)
		if first == topo.NoNode {
			if n < 2 && !closed {
				return false, nil, nil
			}
			buf := append(tr.cycle[:0], t0)
			tr.cycle = buf[:0]
			return true, nil, buf
		}
	}
	if n < 2 || first != nodes[1] {
		return tr.resumeLive(t0, nodes, closed, dirty, 0, first)
	}
	for j := 1; ; j++ {
		cur := nodes[j]
		if j == n-1 {
			if !closed && n > tr.maxLen {
				// The cached walk aborted overlong at the append of its
				// last node; the fresh walk appends and aborts there
				// too, before ever sweeping at it.
				return false, nil, nil
			}
			if !dirty[cur] {
				// Closed: the clean final sweep returns to t0 as
				// cached. Failed: the aborting sweep replays against an
				// identical row and stamp history, aborting identically.
				return false, nil, nil
			}
			next := tr.succOf(nodes[j-1], cur)
			if closed && next == t0 {
				return false, nil, nil
			}
			return tr.resumeLive(t0, nodes, closed, dirty, j, next)
		}
		if !dirty[cur] {
			continue
		}
		next := tr.succOf(nodes[j-1], cur)
		if next != nodes[j+1] {
			return tr.resumeLive(t0, nodes, closed, dirty, j, next)
		}
	}
}

// resumeLive continues a hinted walk that diverged at the sweep at
// nodes[j], which picked next instead of the cached successor (j=0:
// the first hop itself diverged). The fresh walk's prefix equals
// nodes[:j+1]; its edges are stamped in bulk and the walk proceeds
// exactly as trace would — except that whenever the live state
// (prev, cur) matches a cached state at a clean node, the next hop is
// read from the cache instead of swept, an O(1) fast-forward that
// carries the walk along unchanged stretches of a re-joined boundary.
// Repeat-edge aborts, the length cap, and the closing return stay live:
// only sweep outcomes are oracled, never the walk bookkeeping.
// resumeLive continues a hinted walk that diverged at the sweep at
// nodes[j], which picked next instead of the cached successor (j=0: the
// first hop itself diverged). The fresh walk's prefix equals
// nodes[:j+1]; its edges are stamped in bulk and the walk proceeds
// exactly as trace would, with two accelerations that change no
// outcome:
//
//   - Successor memo: one repair round runs against one frozen network,
//     so the boundary successor of a walk state (prev, cur) — the CW
//     sweep from the back-edge bearing — is a pure function of the
//     state. Every successor computed this round is memoized under the
//     in-edge's CSR slot, and diverged walks re-walking the same
//     stretch (hole rims and the overlong outer-face orbits are
//     re-walked by many stuck intervals) replay it at O(1) per step
//     instead of O(deg). The memo also stores the out-edge slot, making
//     the visited-edge stamp O(1) on a hit.
//   - Hint fast-forward: whenever the live state matches a cached state
//     at a clean node (beginHint/hintAt), the cached successor is valid
//     by the row-identity argument (traceHinted) and is taken — and
//     memoized — without sweeping.
//
// Repeat-edge aborts, the length cap, and the closing return stay live:
// only sweep outcomes are oracled, never the walk bookkeeping.
func (tr *tracer) resumeLive(t0 topo.NodeID, nodes []topo.NodeID, closed bool, dirty []bool, j int, next topo.NodeID) (bool, []topo.NodeID, []topo.NodeID) {
	buf := append(tr.cycle[:0], nodes[:j+1]...)
	tr.beginWalk()
	for i := 0; i < j; i++ {
		tr.walkEdge(nodes[i], nodes[i+1])
	}
	inSlot, again := tr.walkEdgeSlot(nodes[j], next)
	if again {
		tr.cycle = buf[:0]
		return true, nil, buf
	}
	tr.beginHint(nodes)
	tr.ensureMemo()
	prev, cur := nodes[j], next
	budget := maxBoundarySteps(tr.net)
	for step := j; step < budget; step++ {
		if cur == t0 {
			tr.cycle = buf[:0]
			return true, buf, buf
		}
		buf = append(buf, cur)
		if len(buf) > tr.maxLen {
			tr.cycle = buf[:0]
			return true, nil, buf
		}
		var nxt topo.NodeID
		var outSlot int32
		if tr.succSet[inSlot] {
			nxt, outSlot = tr.succNext[inSlot], tr.succSlot[inSlot]
		} else {
			if k := tr.hintAt(cur); k > 0 && nodes[k-1] == prev && !dirty[cur] && (k < len(nodes)-1 || closed) {
				if k == len(nodes)-1 {
					nxt = t0 // the cached closing sweep
				} else {
					nxt = nodes[k+1]
				}
				outSlot = int32(tr.net.AdjSlotOf(cur, nxt))
			} else {
				nxt, outSlot = tr.sweepFromSlot(cur, prev)
			}
			tr.succSet[inSlot] = true
			tr.succNext[inSlot] = nxt
			tr.succSlot[inSlot] = outSlot
		}
		if tr.stampSlot(outSlot) {
			tr.cycle = buf[:0]
			return true, nil, buf
		}
		prev, cur, inSlot = cur, nxt, outSlot
	}
	tr.cycle = buf[:0]
	return true, nil, buf
}

// sweepFromSlot runs one boundary step live — sweep CW from the
// back-edge direction, bouncing off dead ends, exactly as trace does —
// and also reports the CSR slot of the chosen out-edge cur→next.
func (tr *tracer) sweepFromSlot(cur, prev topo.NodeID) (topo.NodeID, int32) {
	from, _ := tr.net.EdgeBearing(cur, prev)
	next, slot := sweepCWSlot(tr.net, cur, from, prev)
	if next == topo.NoNode {
		return prev, int32(tr.net.AdjSlotOf(cur, prev)) // dead end: bounce back
	}
	return next, slot
}

// succOf resolves the boundary successor of the state (prev, cur)
// through the round's memo — the replay-phase counterpart of the
// resumeLive step, used where no visited-edge stamp is needed.
func (tr *tracer) succOf(prev, cur topo.NodeID) topo.NodeID {
	tr.ensureMemo()
	inSlot := tr.net.AdjSlotOf(prev, cur)
	if tr.succSet[inSlot] {
		return tr.succNext[inSlot]
	}
	next, outSlot := tr.sweepFromSlot(cur, prev)
	tr.succSet[inSlot] = true
	tr.succNext[inSlot] = next
	tr.succSlot[inSlot] = outSlot
	return next
}

// ensureMemo allocates the successor memo on first use. The tracer
// lives for one runTraces call — one repair round on one frozen
// network — so entries never need invalidating within its lifetime.
func (tr *tracer) ensureMemo() {
	if tr.succSet == nil {
		n := tr.net.AdjSlots()
		tr.succSet = make([]bool, n)
		tr.succNext = make([]topo.NodeID, n)
		tr.succSlot = make([]int32, n)
	}
}

// stampSlot stamps a directed edge by its known CSR slot, reporting
// whether it had already been walked this generation — walkEdge minus
// the slot search.
func (tr *tracer) stampSlot(slot int32) (again bool) {
	if tr.edgeGen[slot] == tr.gen {
		return true
	}
	tr.edgeGen[slot] = tr.gen
	return false
}

// beginHint indexes the hint sequence by node so a diverged walk can
// re-converge onto it: hintAt returns a node's position, or 0 when the
// node is absent or visited more than once (an ambiguous position
// cannot identify a unique walk state).
func (tr *tracer) beginHint(nodes []topo.NodeID) {
	if len(tr.hintIdx) < tr.net.N() {
		tr.hintIdx = make([]int32, tr.net.N())
		tr.hintGen = make([]uint32, tr.net.N())
	}
	tr.hintG++
	if tr.hintG == 0 {
		clear(tr.hintGen)
		tr.hintG = 1
	}
	for i := 1; i < len(nodes); i++ {
		v := nodes[i]
		if tr.hintGen[v] == tr.hintG {
			tr.hintIdx[v] = 0
			continue
		}
		tr.hintGen[v] = tr.hintG
		tr.hintIdx[v] = int32(i)
	}
}

func (tr *tracer) hintAt(v topo.NodeID) int {
	if tr.hintGen[v] != tr.hintG {
		return 0
	}
	return int(tr.hintIdx[v])
}

// sweepCW returns the neighbor of u whose direction is first reached when
// rotating clockwise from the angle `from`, skipping `exclude` (pass
// topo.NoNode to allow all neighbors). It runs on the network's
// precomputed edge bearings, so a sweep step performs no trigonometry.
func sweepCW(net *topo.Network, u topo.NodeID, from float64, exclude topo.NodeID) topo.NodeID {
	next, _ := sweepCWSlot(net, u, from, exclude)
	return next
}

// sweepCWSlot is sweepCW returning the winning edge's CSR slot as well
// (-1 when no neighbor qualifies).
func sweepCWSlot(net *topo.Network, u topo.NodeID, from float64, exclude topo.NodeID) (topo.NodeID, int32) {
	row := net.AdjacencyRow(u)
	angs := net.AdjacencyAngles(u)
	checkAlive := net.DeadCount() > 0
	best := topo.NoNode
	bestDelta := geom.TwoPi + 1
	bestJ := -1
	for j, v := range row {
		if v == exclude || (checkAlive && !net.Alive(v)) {
			continue
		}
		delta := geom.CWDelta(from, angs[j])
		if delta < 1e-12 {
			delta = geom.TwoPi
		}
		if delta < bestDelta {
			bestDelta = delta
			best = v
			bestJ = j
		}
	}
	if bestJ < 0 {
		return topo.NoNode, -1
	}
	return best, int32(net.AdjOffset(u) + bestJ)
}

// FollowBoundary returns the boundary successor of u on hole h moving in
// the given direction (+1 = cycle order, -1 = reverse). ok is false when u
// is not on the boundary.
func FollowBoundary(h *Hole, u topo.NodeID, dir int) (topo.NodeID, bool) {
	i := h.indexOf(u)
	if i < 0 || len(h.Cycle) == 0 {
		return topo.NoNode, false
	}
	n := len(h.Cycle)
	if dir >= 0 {
		return h.Cycle[(i+1)%n], true
	}
	return h.Cycle[(i-1+n)%n], true
}
