package bound

import (
	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/topo"
)

// Hole is the closed boundary of one routing hole: a cycle of nodes.
type Hole struct {
	ID int
	// Cycle lists the boundary nodes in traversal order; the last node
	// connects back to the first.
	Cycle []topo.NodeID
	// BBox bounds the boundary nodes.
	BBox geom.Rect
}

// Len returns the number of boundary nodes.
func (h *Hole) Len() int { return len(h.Cycle) }

// indexOf returns the position of u on the cycle, or -1.
func (h *Hole) indexOf(u topo.NodeID) int {
	for i, v := range h.Cycle {
		if v == u {
			return i
		}
	}
	return -1
}

// Boundaries is the output of BOUNDHOLE on a network: every hole found
// plus a node→holes index, the "boundary information" that §5 constructs
// for GF routing.
type Boundaries struct {
	Holes []*Hole
	// byNode maps each boundary node to the holes it belongs to.
	byNode map[topo.NodeID][]*Hole
	// MessageCount estimates construction traffic: one message per
	// traversal step, the cost model used when comparing against the
	// safety-information construction.
	MessageCount int
}

// HolesAt returns the holes whose boundary contains u (nil if none).
func (b *Boundaries) HolesAt(u topo.NodeID) []*Hole { return b.byNode[u] }

// OnBoundary reports whether u lies on any hole boundary.
func (b *Boundaries) OnBoundary(u topo.NodeID) bool { return len(b.byNode[u]) > 0 }

// maxBoundarySteps caps one traversal; BOUNDHOLE boundaries cannot visit a
// directed edge twice, so 4|V| is far beyond any legitimate cycle and only
// trips on pathological float geometry.
func maxBoundarySteps(net *topo.Network) int { return 4 * net.N() }

// FindHoles runs the TENT rule and then BOUNDHOLE from every stuck
// direction, deduplicating holes that share boundary edges.
//
// Simplification vs. the original protocol: the original refines the
// boundary when a newly added edge crosses an earlier one; this
// implementation instead cuts the cycle at the first revisited directed
// edge, which yields the same closed boundary on the unit-disk graphs used
// here (the refinement only matters under lossy/asymmetric links).
func FindHoles(net *topo.Network) *Boundaries {
	_, stuck := StuckNodes(net)
	b := &Boundaries{byNode: make(map[topo.NodeID][]*Hole)}
	seenEdge := make(map[[2]topo.NodeID]bool) // directed boundary edges already claimed

	// Boundaries longer than this are walk artifacts, not hole rims: a
	// genuine hole boundary cannot involve more than a fraction of the
	// network. They would only mislead detours, so they are dropped —
	// and traceBoundary aborts as soon as a walk exceeds the cap rather
	// than burning its full step budget on a cycle that cannot be kept.
	maxLen := net.N() / 4
	if maxLen < 16 {
		maxLen = 16
	}
	// tr holds the walk scratch (cycle buffer, visited-edge set) reused
	// across every trace; walks are serial, only the TENT scan above and
	// the per-trace sweeps run concurrently inside topo.
	tr := newTracer(net, maxLen)
	for i := range net.Nodes {
		u := topo.NodeID(i)
		res, ok := stuck[u]
		if !ok {
			continue
		}
		for _, iv := range res.Intervals {
			cycle := tr.trace(u, iv)
			if len(cycle) < 3 {
				continue
			}
			b.MessageCount += len(cycle)
			if claimed(seenEdge, cycle) {
				continue
			}
			kept := append([]topo.NodeID(nil), cycle...)
			hole := &Hole{ID: len(b.Holes), Cycle: kept, BBox: cycleBBox(net, kept)}
			b.Holes = append(b.Holes, hole)
			for _, v := range kept {
				b.byNode[v] = append(b.byNode[v], hole)
			}
			claim(seenEdge, kept)
		}
	}
	return b
}

// claimed reports whether any directed edge of the cycle is already part
// of a recorded hole (meaning this traversal found the same hole again
// from a different stuck node).
func claimed(seen map[[2]topo.NodeID]bool, cycle []topo.NodeID) bool {
	for i := 0; i < len(cycle); i++ {
		j := (i + 1) % len(cycle)
		if seen[[2]topo.NodeID{cycle[i], cycle[j]}] {
			return true
		}
	}
	return false
}

func claim(seen map[[2]topo.NodeID]bool, cycle []topo.NodeID) {
	for i := 0; i < len(cycle); i++ {
		j := (i + 1) % len(cycle)
		seen[[2]topo.NodeID{cycle[i], cycle[j]}] = true
	}
}

func cycleBBox(net *topo.Network, cycle []topo.NodeID) geom.Rect {
	bb := geom.FromCorners(net.Pos(cycle[0]), net.Pos(cycle[0]))
	for _, v := range cycle[1:] {
		bb = bb.Union(geom.FromCorners(net.Pos(v), net.Pos(v)))
	}
	return bb
}

// tracer holds the reusable scratch of BOUNDHOLE traversals: the cycle
// buffer and the visited directed-edge set, allocated once for all the
// traces of one FindHoles run.
type tracer struct {
	net    *topo.Network
	maxLen int
	cycle  []topo.NodeID
	walked map[[2]topo.NodeID]bool
}

func newTracer(net *topo.Network, maxLen int) *tracer {
	return &tracer{
		net:    net,
		maxLen: maxLen,
		cycle:  make([]topo.NodeID, 0, maxLen+1),
		walked: make(map[[2]topo.NodeID]bool, 4*maxLen),
	}
}

// trace walks the hole boundary starting at stuck node t0, heading into
// the stuck angular gap and sweeping clockwise (keeping the hole on the
// left), until the walk returns to t0. Returns nil when no closed
// boundary forms: the original protocol's edge-crossing refinement is
// approximated by aborting on any repeated directed edge — a repeat
// means the walk fell into a sub-cycle that can never close at t0.
// Walks exceeding maxLen abort immediately (FindHoles would discard the
// cycle anyway). The returned slice aliases the tracer's buffer and is
// only valid until the next trace call.
func (tr *tracer) trace(t0 topo.NodeID, iv StuckInterval) []topo.NodeID {
	net := tr.net
	// First hop: sweep CW from the middle of the stuck gap; the first
	// neighbor hit is the gap's boundary node.
	first := sweepCW(net, t0, iv.MidDirection(), topo.NoNode)
	if first == topo.NoNode {
		return nil
	}
	cycle := append(tr.cycle[:0], t0)
	clear(tr.walked)
	tr.walked[[2]topo.NodeID{t0, first}] = true
	prev, cur := t0, first
	budget := maxBoundarySteps(net)
	for step := 0; step < budget; step++ {
		if cur == t0 {
			tr.cycle = cycle[:0]
			return cycle
		}
		cycle = append(cycle, cur)
		if len(cycle) > tr.maxLen {
			tr.cycle = cycle[:0]
			return nil // overlong: FindHoles would drop it
		}
		// Sweep CW from the back-edge direction: the next boundary edge
		// is the first neighbor encountered rotating clockwise from
		// cur→prev, excluding an immediate bounce unless forced.
		from := geom.Angle(net.Pos(cur), net.Pos(prev))
		next := sweepCW(net, cur, from, prev)
		if next == topo.NoNode {
			next = prev // dead end: bounce back
		}
		edge := [2]topo.NodeID{cur, next}
		if tr.walked[edge] {
			tr.cycle = cycle[:0]
			return nil // sub-cycle: the walk cannot close at t0
		}
		tr.walked[edge] = true
		prev, cur = cur, next
	}
	tr.cycle = cycle[:0]
	return nil
}

// sweepCW returns the neighbor of u whose direction is first reached when
// rotating clockwise from the angle `from`, skipping `exclude` (pass
// topo.NoNode to allow all neighbors). It runs on the network's
// precomputed edge bearings, so a sweep step performs no trigonometry.
func sweepCW(net *topo.Network, u topo.NodeID, from float64, exclude topo.NodeID) topo.NodeID {
	row := net.AdjacencyRow(u)
	angs := net.AdjacencyAngles(u)
	checkAlive := net.DeadCount() > 0
	best := topo.NoNode
	bestDelta := geom.TwoPi + 1
	for j, v := range row {
		if v == exclude || (checkAlive && !net.Alive(v)) {
			continue
		}
		delta := geom.CWDelta(from, angs[j])
		if delta < 1e-12 {
			delta = geom.TwoPi
		}
		if delta < bestDelta {
			bestDelta = delta
			best = v
		}
	}
	return best
}

// FollowBoundary returns the boundary successor of u on hole h moving in
// the given direction (+1 = cycle order, -1 = reverse). ok is false when u
// is not on the boundary.
func FollowBoundary(h *Hole, u topo.NodeID, dir int) (topo.NodeID, bool) {
	i := h.indexOf(u)
	if i < 0 || len(h.Cycle) == 0 {
		return topo.NoNode, false
	}
	n := len(h.Cycle)
	if dir >= 0 {
		return h.Cycle[(i+1)%n], true
	}
	return h.Cycle[(i-1+n)%n], true
}
