package bound

import (
	"slices"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/par"
	"github.com/straightpath/wasn/internal/topo"
)

// Hole is the closed boundary of one routing hole: a cycle of nodes.
type Hole struct {
	ID int
	// Cycle lists the boundary nodes in traversal order; the last node
	// connects back to the first.
	Cycle []topo.NodeID
	// BBox bounds the boundary nodes.
	BBox geom.Rect
}

// Len returns the number of boundary nodes.
func (h *Hole) Len() int { return len(h.Cycle) }

// indexOf returns the position of u on the cycle, or -1.
func (h *Hole) indexOf(u topo.NodeID) int {
	for i, v := range h.Cycle {
		if v == u {
			return i
		}
	}
	return -1
}

// Boundaries is the output of BOUNDHOLE on a network: every hole found
// plus a node→holes index, the "boundary information" that §5 constructs
// for GF routing. It also retains the per-walk cache that lets Repair
// re-derive the holes after a node failure by re-tracing only the walks
// that passed through the failure neighborhood.
type Boundaries struct {
	Holes []*Hole
	// byNode maps each boundary node to the holes it belongs to.
	byNode map[topo.NodeID][]*Hole
	// MessageCount estimates construction traffic: one message per
	// traversal step, the cost model used when comparing against the
	// safety-information construction. After a Repair it equals what a
	// from-scratch run on the mutated network would report.
	MessageCount int

	// Repair state: the network the boundaries were traced on, the
	// boundary length cap, the cached TENT results and walk outcomes per
	// node, and the generation-stamped claimed-edge scratch of assemble.
	net      *topo.Network
	maxLen   int
	recs     []nodeRec
	claimGen []uint32
	claimG   uint32
}

// traceRec caches the outcome of one BOUNDHOLE walk (one stuck interval
// of one stuck node): the closed cycle (nil when the walk failed to
// close or was overlong) and the touched set — every node whose
// neighborhood the walk swept, cycle nodes for a closed walk and the
// visited prefix for a failed one. A liveness change at node x can only
// alter sweeps at x or its static neighbors, so a cached walk stays
// valid exactly while its touched set avoids {x} ∪ N(x).
type traceRec struct {
	cycle   []topo.NodeID
	touched []topo.NodeID
}

// nodeRec caches the stuck analysis of one node: its TENT result and
// the walk outcome of each stuck interval (index-aligned with
// tent.Intervals). The zero value marks a node that is dead or not
// stuck.
type nodeRec struct {
	tent   TentResult
	traces []traceRec
}

// HolesAt returns the holes whose boundary contains u (nil if none).
func (b *Boundaries) HolesAt(u topo.NodeID) []*Hole { return b.byNode[u] }

// OnBoundary reports whether u lies on any hole boundary.
func (b *Boundaries) OnBoundary(u topo.NodeID) bool { return len(b.byNode[u]) > 0 }

// maxBoundarySteps caps one traversal; BOUNDHOLE boundaries cannot visit a
// directed edge twice, so 4|V| is far beyond any legitimate cycle and only
// trips on pathological float geometry.
func maxBoundarySteps(net *topo.Network) int { return 4 * net.N() }

// boundaryLenCap bounds the length of a kept boundary. Boundaries longer
// than this are walk artifacts, not hole rims: a genuine hole boundary
// cannot involve more than a fraction of the network. They would only
// mislead detours, so they are dropped — and the tracer aborts as soon
// as a walk exceeds the cap rather than burning its full step budget on
// a cycle that cannot be kept.
func boundaryLenCap(net *topo.Network) int {
	maxLen := net.N() / 4
	if maxLen < 16 {
		maxLen = 16
	}
	return maxLen
}

// FindHoles runs the TENT rule and then BOUNDHOLE from every stuck
// direction, deduplicating holes that share boundary edges.
//
// Simplification vs. the original protocol: the original refines the
// boundary when a newly added edge crosses an earlier one; this
// implementation instead cuts the cycle at the first revisited directed
// edge, which yields the same closed boundary on the unit-disk graphs used
// here (the refinement only matters under lossy/asymmetric links).
//
// The returned Boundaries retain every walk outcome, so a later Repair
// after node failures re-traces only the walks whose swept region the
// failure touched.
func FindHoles(net *topo.Network) *Boundaries {
	b := &Boundaries{
		net:    net,
		maxLen: boundaryLenCap(net),
		recs:   make([]nodeRec, net.N()),
	}
	_, stuck := StuckNodes(net)
	var jobs []traceJob
	for i := range net.Nodes {
		res, ok := stuck[topo.NodeID(i)]
		if !ok {
			continue
		}
		b.recs[i] = nodeRec{tent: res, traces: make([]traceRec, len(res.Intervals))}
		for k := range res.Intervals {
			jobs = append(jobs, traceJob{u: res.Node, k: k})
		}
	}
	b.runTraces(jobs)
	b.assemble()
	return b
}

// traceJob identifies one walk to run: stuck interval k of node u. The
// destination slot recs[u].traces[k] must already exist.
type traceJob struct {
	u topo.NodeID
	k int
}

// runTraces executes the walks. Every walk is independent (it reads the
// network and writes only its own trace slot), so the jobs fan out
// across GOMAXPROCS with one tracer — the walk scratch — per chunk.
func (b *Boundaries) runTraces(jobs []traceJob) {
	par.For(len(jobs), func(lo, hi int) {
		tr := newTracer(b.net, b.maxLen)
		for i := lo; i < hi; i++ {
			j := jobs[i]
			rec := &b.recs[j.u]
			rec.traces[j.k] = traceOne(tr, j.u, rec.tent.Intervals[j.k])
		}
	})
}

// traceOne runs one walk and copies its outcome out of the tracer
// scratch. A closed walk sweeps exactly its cycle nodes, so the touched
// set shares the cycle slice.
func traceOne(tr *tracer, u topo.NodeID, iv StuckInterval) traceRec {
	cycle, touched := tr.trace(u, iv)
	if cycle != nil {
		kept := append([]topo.NodeID(nil), cycle...)
		return traceRec{cycle: kept, touched: kept}
	}
	return traceRec{touched: append([]topo.NodeID(nil), touched...)}
}

// assemble rebuilds Holes, the node index, and MessageCount from the
// cached walks, replaying the discovery order of a from-scratch run:
// nodes ascending, intervals in TENT order, first claim of a directed
// edge wins. An incremental Repair therefore assigns the same hole ids,
// cycles, and message counts as FindHoles on the mutated network.
func (b *Boundaries) assemble() {
	b.Holes = nil
	b.byNode = make(map[topo.NodeID][]*Hole)
	b.MessageCount = 0
	// Claimed directed boundary edges live in a generation-stamped array
	// indexed by CSR edge slot — O(1) to reset, no hashing per edge.
	if b.claimGen == nil {
		b.claimGen = make([]uint32, b.net.AdjSlots())
	}
	b.claimG++
	if b.claimG == 0 {
		clear(b.claimGen)
		b.claimG = 1
	}
	for i := range b.recs {
		for _, t := range b.recs[i].traces {
			if len(t.cycle) < 3 {
				continue
			}
			b.MessageCount += len(t.cycle)
			if b.claimed(t.cycle) {
				continue
			}
			hole := &Hole{ID: len(b.Holes), Cycle: t.cycle, BBox: cycleBBox(b.net, t.cycle)}
			b.Holes = append(b.Holes, hole)
			for _, v := range t.cycle {
				b.byNode[v] = append(b.byNode[v], hole)
			}
			b.claim(t.cycle)
		}
	}
}

// Repair incrementally re-derives the boundaries after the liveness of
// the given nodes changed (topo.Network.SetAlive already applied; both
// failures and revivals are handled). The TENT rule re-runs only on the
// changed nodes and their static neighbors — the only nodes whose
// angular gaps moved — and only walks whose swept region intersects
// that dirty set are re-traced; every other walk replays from the
// cache. The resulting hole set is identical to FindHoles on the
// mutated network at a small fraction of the cost: repair work scales
// with the failure neighborhood and the boundaries through it, not with
// the network.
func (b *Boundaries) Repair(changed []topo.NodeID) {
	// Two dirt notions. tentDirty marks nodes whose TENT analysis must
	// re-run: the changed nodes and their static neighbors (TENT reads
	// the full neighborhood). walkDirty marks nodes whose presence in a
	// walk's touched set invalidates the walk — and is finer for
	// failures: a CW sweep's outcome changes on candidate removal only
	// if the removed node was the sweep's winner, i.e. the walk's next
	// hop, so a failed node deflects exactly the walks that visited it.
	// A revived node can newly win any sweep at its neighbors, so it
	// dirties its whole neighborhood.
	tentDirty := make([]bool, b.net.N())
	walkDirty := make([]bool, b.net.N())
	for _, x := range changed {
		tentDirty[x] = true
		walkDirty[x] = true
		revived := b.net.Alive(x)
		for _, v := range b.net.AdjacencyRow(x) {
			tentDirty[v] = true
			if revived {
				walkDirty[v] = true
			}
		}
	}
	var jobs []traceJob
	for i := range b.recs {
		u := topo.NodeID(i)
		if tentDirty[i] {
			if !b.net.Alive(u) {
				b.recs[i] = nodeRec{}
				continue
			}
			res := Tent(b.net, u)
			if !res.Stuck() {
				b.recs[i] = nodeRec{}
				continue
			}
			// When the stuck intervals survived the change, the cached
			// walks stay valid too (walk outcomes depend on the seed
			// interval and the swept sweeps only); fall through to the
			// per-walk check. Otherwise every walk re-runs.
			if !slices.Equal(res.Intervals, b.recs[i].tent.Intervals) {
				b.recs[i] = nodeRec{tent: res, traces: make([]traceRec, len(res.Intervals))}
				for k := range res.Intervals {
					jobs = append(jobs, traceJob{u: u, k: k})
				}
				continue
			}
			b.recs[i].tent = res
		}
		// Re-trace only the walks that swept a walk-dirty node.
		for k := range b.recs[i].traces {
			if touchesDirty(b.recs[i].traces[k].touched, walkDirty) {
				jobs = append(jobs, traceJob{u: u, k: k})
			}
		}
	}
	b.runTraces(jobs)
	b.assemble()
}

// touchesDirty reports whether any of the nodes is marked dirty.
func touchesDirty(nodes []topo.NodeID, dirty []bool) bool {
	for _, v := range nodes {
		if dirty[v] {
			return true
		}
	}
	return false
}

// claimed reports whether any directed edge of the cycle is already part
// of a recorded hole (meaning this traversal found the same hole again
// from a different stuck node). Walk cycles move along adjacency edges,
// so every directed edge has a CSR slot.
func (b *Boundaries) claimed(cycle []topo.NodeID) bool {
	for i := 0; i < len(cycle); i++ {
		j := (i + 1) % len(cycle)
		if b.claimGen[b.net.AdjSlotOf(cycle[i], cycle[j])] == b.claimG {
			return true
		}
	}
	return false
}

func (b *Boundaries) claim(cycle []topo.NodeID) {
	for i := 0; i < len(cycle); i++ {
		j := (i + 1) % len(cycle)
		b.claimGen[b.net.AdjSlotOf(cycle[i], cycle[j])] = b.claimG
	}
}

func cycleBBox(net *topo.Network, cycle []topo.NodeID) geom.Rect {
	bb := geom.FromCorners(net.Pos(cycle[0]), net.Pos(cycle[0]))
	for _, v := range cycle[1:] {
		bb = bb.Union(geom.FromCorners(net.Pos(v), net.Pos(v)))
	}
	return bb
}

// tracer holds the reusable scratch of BOUNDHOLE traversals: the cycle
// buffer and the visited directed-edge stamps, allocated once per walk
// worker and reused across its traces. Visited edges live in a
// generation-stamped array indexed by CSR edge slot, so starting a new
// walk is a counter bump and each step costs one array write instead of
// a map insert.
type tracer struct {
	net     *topo.Network
	maxLen  int
	cycle   []topo.NodeID
	edgeGen []uint32
	gen     uint32
}

func newTracer(net *topo.Network, maxLen int) *tracer {
	return &tracer{
		net:     net,
		maxLen:  maxLen,
		cycle:   make([]topo.NodeID, 0, maxLen+1),
		edgeGen: make([]uint32, net.AdjSlots()),
	}
}

// beginWalk starts a fresh visited-edge generation.
func (tr *tracer) beginWalk() {
	tr.gen++
	if tr.gen == 0 {
		clear(tr.edgeGen)
		tr.gen = 1
	}
}

// walkEdge stamps the directed edge u→v as walked, reporting whether it
// had already been walked this generation.
func (tr *tracer) walkEdge(u, v topo.NodeID) (again bool) {
	slot := tr.net.AdjSlotOf(u, v)
	if tr.edgeGen[slot] == tr.gen {
		return true
	}
	tr.edgeGen[slot] = tr.gen
	return false
}

// trace walks the hole boundary starting at stuck node t0, heading into
// the stuck angular gap and sweeping clockwise (keeping the hole on the
// left), until the walk returns to t0. cycle is nil when no closed
// boundary forms: the original protocol's edge-crossing refinement is
// approximated by aborting on any repeated directed edge — a repeat
// means the walk fell into a sub-cycle that can never close at t0.
// Walks exceeding maxLen abort immediately (assemble would discard the
// cycle anyway).
//
// touched is every node visited by the walk — a superset of the nodes
// whose neighborhoods were swept — and is returned for both closed and
// failed walks so Repair can tell which liveness changes invalidate
// this outcome. Both returned slices alias the tracer's buffer and are
// only valid until the next trace call.
func (tr *tracer) trace(t0 topo.NodeID, iv StuckInterval) (cycle, touched []topo.NodeID) {
	net := tr.net
	buf := append(tr.cycle[:0], t0)
	// First hop: sweep CW from the middle of the stuck gap; the first
	// neighbor hit is the gap's boundary node.
	first := sweepCW(net, t0, iv.MidDirection(), topo.NoNode)
	if first == topo.NoNode {
		tr.cycle = buf[:0]
		return nil, buf
	}
	tr.beginWalk()
	tr.walkEdge(t0, first)
	prev, cur := t0, first
	budget := maxBoundarySteps(net)
	for step := 0; step < budget; step++ {
		if cur == t0 {
			tr.cycle = buf[:0]
			return buf, buf
		}
		buf = append(buf, cur)
		if len(buf) > tr.maxLen {
			tr.cycle = buf[:0]
			return nil, buf // overlong: assemble would drop it
		}
		// Sweep CW from the back-edge direction: the next boundary edge
		// is the first neighbor encountered rotating clockwise from
		// cur→prev, excluding an immediate bounce unless forced. The
		// walk arrived over edge prev→cur, so the back-edge bearing is a
		// precomputed CSR lookup, not an atan2.
		from, _ := net.EdgeBearing(cur, prev)
		next := sweepCW(net, cur, from, prev)
		if next == topo.NoNode {
			next = prev // dead end: bounce back
		}
		if tr.walkEdge(cur, next) {
			tr.cycle = buf[:0]
			return nil, buf // sub-cycle: the walk cannot close at t0
		}
		prev, cur = cur, next
	}
	tr.cycle = buf[:0]
	return nil, buf
}

// sweepCW returns the neighbor of u whose direction is first reached when
// rotating clockwise from the angle `from`, skipping `exclude` (pass
// topo.NoNode to allow all neighbors). It runs on the network's
// precomputed edge bearings, so a sweep step performs no trigonometry.
func sweepCW(net *topo.Network, u topo.NodeID, from float64, exclude topo.NodeID) topo.NodeID {
	row := net.AdjacencyRow(u)
	angs := net.AdjacencyAngles(u)
	checkAlive := net.DeadCount() > 0
	best := topo.NoNode
	bestDelta := geom.TwoPi + 1
	for j, v := range row {
		if v == exclude || (checkAlive && !net.Alive(v)) {
			continue
		}
		delta := geom.CWDelta(from, angs[j])
		if delta < 1e-12 {
			delta = geom.TwoPi
		}
		if delta < bestDelta {
			bestDelta = delta
			best = v
		}
	}
	return best
}

// FollowBoundary returns the boundary successor of u on hole h moving in
// the given direction (+1 = cycle order, -1 = reverse). ok is false when u
// is not on the boundary.
func FollowBoundary(h *Hole, u topo.NodeID, dir int) (topo.NodeID, bool) {
	i := h.indexOf(u)
	if i < 0 || len(h.Cycle) == 0 {
		return topo.NoNode, false
	}
	n := len(h.Cycle)
	if dir >= 0 {
		return h.Cycle[(i+1)%n], true
	}
	return h.Cycle[(i-1+n)%n], true
}
