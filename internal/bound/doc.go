// Package bound implements the hole-boundary machinery of Fang, Gao and
// Guibas, "Locating and Bypassing Routing Holes in Sensor Networks"
// (INFOCOM 2004) — the paper's reference [5]. The experimental section of
// the reproduced paper constructs this "boundary information ... for GF
// routings" before measuring routing performance, so the GF baseline here
// consults these boundaries when it hits a local minimum.
//
// Two pieces: the TENT rule ([Tent], [StuckNodes]), a local geometric
// test marking nodes that can be stuck (local minima of greedy
// forwarding) in some direction, and BOUNDHOLE ([FindHoles]), a
// traversal that walks the closed boundary of the hole adjoining each
// stuck direction.
//
// # Lifecycle: build once, repair on failure
//
// [FindHoles] is the full build: TENT on every node (parallel across
// GOMAXPROCS), one boundary walk per stuck interval (serial, over
// shared scratch), then an assembly pass that deduplicates holes
// claiming the same directed boundary edges. The returned [Boundaries]
// retain every walk outcome together with the set of nodes each walk
// swept.
//
// When nodes fail (or revive) at runtime, [Boundaries.Repair] exploits
// that both TENT and the walks are neighborhood-local: a liveness
// change at x can only alter the stuck analysis of x and its static
// neighbors, and can only deflect walks that swept one of those nodes.
// Repair re-runs exactly those pieces, replays the assembly from the
// cache, and yields boundaries identical to a from-scratch FindHoles on
// the mutated network — hole ids, cycles, bounding boxes, and message
// counts included — at a cost that scales with the failure
// neighborhood, not the network. The serving layer's /fail endpoint and
// the facade's Sim.Fail route through this repair via
// core.RepairSubstrates.
package bound
