package bound

import (
	"sort"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/par"
	"github.com/straightpath/wasn/internal/topo"
)

// StuckInterval is an angular interval of directions (CCW from Lo to Hi,
// radians from the +X axis) in which the node is a potential local minimum
// of greedy forwarding.
type StuckInterval struct {
	Lo, Hi float64
}

// Contains reports whether direction theta falls inside the interval.
func (s StuckInterval) Contains(theta float64) bool {
	return geom.InCCWInterval(theta, s.Lo, s.Hi)
}

// TentResult records the stuck analysis of one node.
type TentResult struct {
	Node topo.NodeID
	// Intervals are the stuck direction ranges; empty means the node can
	// never be a greedy local minimum.
	Intervals []StuckInterval
}

// Stuck reports whether the node has any stuck direction.
func (t TentResult) Stuck() bool { return len(t.Intervals) > 0 }

// StuckToward reports whether routing greedily toward target can get stuck
// at this node, i.e. whether the direction of target lies in a stuck
// interval.
func (t TentResult) StuckToward(from, target geom.Point) bool {
	theta := geom.Angle(from, target)
	for _, iv := range t.Intervals {
		if iv.Contains(theta) {
			return true
		}
	}
	return false
}

// Tent applies the TENT rule at node u: order the alive neighbors by
// angle; for each angularly adjacent pair (v1, v2), the directions between
// them are stuck iff the circumcenter of (u, v1, v2) falls outside u's
// transmission disk (at exactly 120° spread with both neighbors at full
// range the circumcenter sits on the disk boundary, which is the paper's
// 120° rule). Nodes with zero or one neighbor are stuck in all (or the
// complement) directions.
func Tent(net *topo.Network, u topo.NodeID) TentResult {
	res := TentResult{Node: u}
	up := net.Pos(u)

	// Collect one representative neighbor per distinct direction. When
	// several neighbors share a direction the nearest one dominates the
	// TENT test (its bisector half-plane covers the others'), so keep it.
	type dirNbr struct {
		angle float64
		node  topo.NodeID
		dist2 float64
	}
	var dirs []dirNbr
	row := net.AdjacencyRow(u)
	angs := net.AdjacencyAngles(u)
	checkAlive := net.DeadCount() > 0
	for j, v := range row {
		if checkAlive && !net.Alive(v) {
			continue
		}
		a := angs[j]
		d2 := geom.Dist2(up, net.Pos(v))
		merged := false
		for i := range dirs {
			if sameAngle(dirs[i].angle, a) {
				if d2 < dirs[i].dist2 {
					dirs[i] = dirNbr{angle: a, node: v, dist2: d2}
				}
				merged = true
				break
			}
		}
		if !merged {
			dirs = append(dirs, dirNbr{angle: a, node: v, dist2: d2})
		}
	}

	switch len(dirs) {
	case 0:
		res.Intervals = []StuckInterval{{Lo: 0, Hi: geom.TwoPi - 1e-9}}
		return res
	case 1:
		// Only the exact direction of the sole neighbor line is safe.
		a := dirs[0].angle
		res.Intervals = []StuckInterval{{Lo: geom.NormAngle(a + 1e-6), Hi: geom.NormAngle(a - 1e-6)}}
		return res
	}

	sort.Slice(dirs, func(a, b int) bool { return dirs[a].angle < dirs[b].angle })
	for i := range dirs {
		d1 := dirs[i]
		d2 := dirs[(i+1)%len(dirs)]
		if geom.CCWDelta(d1.angle, d2.angle) < 1e-9 {
			continue // no directions strictly between
		}
		if stuckBetween(net, up, d1.node, d2.node) {
			res.Intervals = append(res.Intervals, StuckInterval{Lo: d1.angle, Hi: d2.angle})
		}
	}
	return res
}

// sameAngle absorbs float noise when comparing neighbor directions.
func sameAngle(a, b float64) bool {
	return geom.CCWDelta(a, b) < 1e-9 || geom.CWDelta(a, b) < 1e-9
}

func stuckBetween(net *topo.Network, up geom.Point, v1, v2 topo.NodeID) bool {
	p1, p2 := net.Pos(v1), net.Pos(v2)
	c, ok := geom.PerpBisectorIntersection(up, p1, p2)
	if !ok {
		// u, v1, v2 collinear: the bisectors are parallel, no point is
		// simultaneously farther from u than both; treat as stuck (the
		// gap spans at least a half-plane).
		return true
	}
	return geom.Dist(up, c) > net.Radius+1e-9
}

// StuckNodes runs the TENT rule on every alive node and returns the
// results of the stuck ones, index by node in the second return. The
// per-node tests are independent and fan out across GOMAXPROCS; the
// returned list stays in ascending node order.
func StuckNodes(net *topo.Network) ([]TentResult, map[topo.NodeID]TentResult) {
	perNode := make([]TentResult, net.N())
	par.For(net.N(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			u := topo.NodeID(i)
			if !net.Alive(u) {
				continue
			}
			perNode[i] = Tent(net, u)
		}
	})
	var list []TentResult
	byNode := make(map[topo.NodeID]TentResult)
	for i := range perNode {
		if r := perNode[i]; r.Stuck() {
			list = append(list, r)
			byNode[topo.NodeID(i)] = r
		}
	}
	return list, byNode
}

// MidDirection returns the middle direction of the interval, useful for
// seeding a boundary walk into the hole.
func (s StuckInterval) MidDirection() float64 {
	return geom.NormAngle(s.Lo + geom.CCWDelta(s.Lo, s.Hi)/2)
}

// Width returns the angular width of the interval.
func (s StuckInterval) Width() float64 { return geom.CCWDelta(s.Lo, s.Hi) }

// mergeIntervals is exposed for tests: overlapping CCW intervals merge.
func mergeIntervals(ivs []StuckInterval) []StuckInterval {
	if len(ivs) <= 1 {
		return ivs
	}
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].Lo < ivs[b].Lo })
	out := []StuckInterval{ivs[0]}
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if geom.InCCWInterval(iv.Lo, last.Lo, last.Hi) {
			if !geom.InCCWInterval(iv.Hi, last.Lo, last.Hi) {
				last.Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}
