package core

import (
	"sync"

	"github.com/straightpath/wasn/internal/bound"
	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/topo"
)

// GF is the classic geographic greedy forwarding baseline of §5: greedy
// advance to the neighbor closest to the destination, and on a local
// minimum a detour along the BOUNDHOLE hole boundary (the "boundary
// information [5]" the experiments construct for GF) until a node closer
// to the destination than the stuck node appears. Stuck nodes off any
// recorded boundary fall back to the untried right-hand ray sweep.
type GF struct {
	net *topo.Network
	b   *bound.Boundaries
	// TTLFactor overrides the hop budget (DefaultTTLFactor when 0).
	TTLFactor int
}

var _ Router = (*GF)(nil)
var _ ObservedRouter = (*GF)(nil)

// NewGF returns a GF router using the given boundary information (which
// may be nil; every detour then uses the ray-sweep fallback).
func NewGF(net *topo.Network, b *bound.Boundaries) *GF {
	return &GF{net: net, b: b}
}

// Name implements Router.
func (r *GF) Name() string { return "GF" }

// Route implements Router.
func (r *GF) Route(src, dst topo.NodeID) Result {
	return r.RouteInto(src, dst, nil)
}

// RouteInto implements Router.
func (r *GF) RouteInto(src, dst topo.NodeID, pathBuf []topo.NodeID) Result {
	return r.RouteObserved(src, dst, pathBuf, nil)
}

// RouteObserved implements ObservedRouter.
func (r *GF) RouteObserved(src, dst topo.NodeID, pathBuf []topo.NodeID, obs HopObserver) Result {
	a := gfAlgPool.Get().(*gfAlg)
	a.b = r.b
	res := drive(r.net, a, src, dst, r.TTLFactor, pathBuf, obs)
	a.b = nil
	gfAlgPool.Put(a)
	return res
}

type gfAlg struct {
	b *bound.Boundaries
}

var gfAlgPool = sync.Pool{New: func() any { return new(gfAlg) }}

func (a *gfAlg) step(st *state) topo.NodeID {
	if neighborOfDst(st) {
		st.phase = PhaseGreedy
		return st.dst
	}
	// A fallback ray-sweep perimeter persists until the packet beats
	// the stuck node's distance.
	if st.perimeterActive {
		if st.perimeterDone() {
			st.perimeterActive = false
		} else {
			st.phase = PhasePerimeter
			return sweepUntried(st, RightHand, scanFilter{}, nil)
		}
	}
	// Exit an active detour as soon as the packet beats the stuck point.
	if st.detourHole >= 0 {
		if geom.Dist(st.net.Pos(st.cur), st.dstPos) < st.stuckDist {
			st.detourHole = -1
		} else {
			return a.detourStep(st)
		}
	}
	if v := greedyClosest(st); v != topo.NoNode {
		st.phase = PhaseGreedy
		return v
	}
	// Local minimum: start a boundary detour when boundary information
	// covers this node. Per the BOUNDHOLE routing of [5], the packet
	// follows the hole boundary in one direction — chosen locally by
	// whichever first hop sits closer to the destination — until a
	// closer-than-stuck node appears; a full fruitless lap (e.g. the
	// destination is inside the hole) abandons the walk and the hole is
	// not retried for this packet. GF has no global view of how holes
	// interact — exactly the weakness Fig. 1(a) illustrates and SLGF2's
	// either-hand rule addresses.
	st.stuckDist = geom.Dist(st.net.Pos(st.cur), st.dstPos)
	if a.b != nil {
		for _, h := range a.b.HolesAt(st.cur) {
			if _, failed := st.failedHoles[h.ID]; failed {
				continue
			}
			st.detourHole = h.ID
			st.detourDir = a.pickDirection(st, h)
			st.detourSteps = 0
			return a.detourStep(st)
		}
	}
	// No boundary info: untried right-hand sweep.
	st.enterPerimeter()
	st.phase = PhasePerimeter
	return sweepUntried(st, RightHand, scanFilter{}, nil)
}

// pickDirection compares the two boundary neighbors of the stuck node and
// walks toward the one closer to the destination — a purely local choice.
func (a *gfAlg) pickDirection(st *state, h *bound.Hole) int {
	fwd, okF := bound.FollowBoundary(h, st.cur, +1)
	bwd, okB := bound.FollowBoundary(h, st.cur, -1)
	switch {
	case okF && !okB:
		return +1
	case okB && !okF:
		return -1
	case !okF && !okB:
		return +1
	}
	if geom.Dist2(st.net.Pos(bwd), st.dstPos) < geom.Dist2(st.net.Pos(fwd), st.dstPos) {
		return -1
	}
	return +1
}

func (a *gfAlg) detourStep(st *state) topo.NodeID {
	st.phase = PhasePerimeter
	h := a.holeByID(st.detourHole)
	if h == nil {
		return a.abandonDetour(st)
	}
	next, ok := bound.FollowBoundary(h, st.cur, st.detourDir)
	st.detourSteps++
	// A full lap without progress means the boundary cannot help
	// (destination inside the hole or disconnected): fall back.
	if !ok || st.detourSteps > h.Len() || next == st.cur {
		return a.abandonDetour(st)
	}
	return next
}

// abandonDetour switches from a failed boundary walk to the persistent
// untried ray sweep, blacklisting the hole for this packet.
func (a *gfAlg) abandonDetour(st *state) topo.NodeID {
	st.failedHoles[st.detourHole] = struct{}{}
	st.detourHole = -1
	st.enterPerimeter()
	return sweepUntried(st, RightHand, scanFilter{}, nil)
}

func (a *gfAlg) holeByID(id int) *bound.Hole {
	if a.b == nil || id < 0 || id >= len(a.b.Holes) {
		return nil
	}
	return a.b.Holes[id]
}
