package core

import (
	"sync"

	"github.com/straightpath/wasn/internal/bound"
	"github.com/straightpath/wasn/internal/planar"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/topo"
)

// BuildSubstrates constructs the routing substrates the algorithm table
// needs — the safety information model, the BOUNDHOLE boundaries, and
// the Gabriel graph — concurrently (each build is also internally
// parallel across GOMAXPROCS). Unneeded substrates are skipped by
// passing false and returned nil. edgeRule overrides the safety model's
// edge-node rule (nil for the default). This is the one fan-out the
// facade, the serving layer, and the experiment harness all share.
//
// A panic in any build is re-raised on the calling goroutine, so a
// build bug surfaces where the caller's recover machinery (e.g.
// net/http's handler recovery in wasnd) can contain it.
func BuildSubstrates(net *topo.Network, needSafety, needBounds, needPlanar bool, edgeRule safety.EdgeRule) (*safety.Model, *bound.Boundaries, *planar.Graph) {
	var (
		m         *safety.Model
		b         *bound.Boundaries
		g         *planar.Graph
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicVal  any
	)
	run := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			f()
		}()
	}
	if needSafety {
		run(func() {
			if edgeRule != nil {
				m = safety.Build(net, safety.WithEdgeRule(edgeRule))
			} else {
				m = safety.Build(net)
			}
		})
	}
	if needBounds {
		run(func() { b = bound.FindHoles(net) })
	}
	if needPlanar {
		run(func() { g = planar.Build(net, planar.GabrielGraph) })
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	return m, b, g
}
