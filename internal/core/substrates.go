package core

import (
	"sync"
	"time"

	"github.com/straightpath/wasn/internal/bound"
	"github.com/straightpath/wasn/internal/planar"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/topo"
)

// SubstrateTimings reports the wall time each substrate's repair pass
// took inside a RepairSubstrates/RepairSubstratesMoved fan-out. The
// repairs run concurrently, so the spans overlap — the fan-out's total
// wall time is roughly the maximum, not the sum. A zero span means the
// substrate was nil (skipped). The serving layer feeds these into its
// per-substrate repair histograms and flight-recorder journal.
type SubstrateTimings struct {
	Safety time.Duration
	Bound  time.Duration
	Planar time.Duration
}

// timed wraps a fan-out task so its wall time lands in *d.
func timed(d *time.Duration, f func()) func() {
	return func() {
		start := time.Now()
		f()
		*d = time.Since(start)
	}
}

// BuildSubstrates constructs the routing substrates the algorithm table
// needs — the safety information model, the BOUNDHOLE boundaries, and
// the Gabriel graph — concurrently (each build is also internally
// parallel across GOMAXPROCS). Unneeded substrates are skipped by
// passing false and returned nil. edgeRule overrides the safety model's
// edge-node rule (nil for the default). This is the one fan-out the
// facade, the serving layer, and the experiment harness all share.
//
// A panic in any build is re-raised on the calling goroutine, so a
// build bug surfaces where the caller's recover machinery (e.g.
// net/http's handler recovery in wasnd) can contain it.
func BuildSubstrates(net *topo.Network, needSafety, needBounds, needPlanar bool, edgeRule safety.EdgeRule) (*safety.Model, *bound.Boundaries, *planar.Graph) {
	var (
		m *safety.Model
		b *bound.Boundaries
		g *planar.Graph
	)
	var tasks []func()
	if needSafety {
		tasks = append(tasks, func() {
			if edgeRule != nil {
				m = safety.Build(net, safety.WithEdgeRule(edgeRule))
			} else {
				m = safety.Build(net)
			}
		})
	}
	if needBounds {
		tasks = append(tasks, func() { b = bound.FindHoles(net) })
	}
	if needPlanar {
		tasks = append(tasks, func() { g = planar.Build(net, planar.GabrielGraph) })
	}
	fanOut(tasks)
	return m, b, g
}

// RepairSubstrates incrementally repairs previously built substrates
// after the liveness of the given nodes changed (topo.Network.SetAlive
// already applied): the safety model relabels from the failure
// neighborhood, BOUNDHOLE re-traces only the boundary walks that swept
// it, and the planar graph recomputes only the rows whose witness sets
// changed. Nil substrates are skipped. The three repairs run
// concurrently like BuildSubstrates (same panic propagation).
//
// Each repaired substrate is identical to what a from-scratch
// BuildSubstrates on the mutated network would produce — the
// differential oracle the serving layer keeps behind its
// FullRebuildOnFail flag — but the work scales with the failure
// neighborhood instead of the network. Repairs happen in place, so
// routers already holding these substrate pointers serve the mutated
// topology immediately and need not be rebuilt; callers must serialize
// repairs against in-flight routes exactly as they do SetAlive (see
// Router). The returned timings break the fan-out down by substrate.
func RepairSubstrates(m *safety.Model, b *bound.Boundaries, g *planar.Graph, changed []topo.NodeID) SubstrateTimings {
	var t SubstrateTimings
	var tasks []func()
	if m != nil {
		tasks = append(tasks, timed(&t.Safety, func() { m.Repair(changed...) }))
	}
	if b != nil {
		tasks = append(tasks, timed(&t.Bound, func() { b.Repair(changed) }))
	}
	if g != nil {
		tasks = append(tasks, timed(&t.Planar, func() { g.Repair(changed) }))
	}
	fanOut(tasks)
	return t
}

// RepairSubstratesMoved incrementally repairs previously built
// substrates after node positions changed (topo.Network.SetPositions
// already applied). dirty is the geometric dirty set SetPositions
// returned — every node whose own position, in-range set, or neighbor
// coordinates changed. The safety model relabels a reset region grown
// from the dirty set, BOUNDHOLE re-analyzes the dirty nodes and
// re-traces the walks that swept them, and the planar graph rebuilds
// exactly the dirty rows. Nil substrates are skipped; the repairs run
// concurrently like BuildSubstrates (same panic propagation).
//
// Like RepairSubstrates, each repaired substrate is identical to a
// from-scratch BuildSubstrates on the moved network, but the work
// scales with the moved nodes' geometric neighborhoods. Callers must
// serialize against in-flight routes as with SetAlive — and because
// moves can resize CSR rows, any per-edge state keyed by AdjSlots must
// be length-checked or generation-stamped by its owner (the engine's
// scratch and the boundary claim arrays already are). The returned
// timings break the fan-out down by substrate.
func RepairSubstratesMoved(m *safety.Model, b *bound.Boundaries, g *planar.Graph, dirty []topo.NodeID) SubstrateTimings {
	var t SubstrateTimings
	var tasks []func()
	if m != nil {
		tasks = append(tasks, timed(&t.Safety, func() { m.RepairMoved(dirty) }))
	}
	if b != nil {
		tasks = append(tasks, timed(&t.Bound, func() { b.RepairMoved(dirty) }))
	}
	if g != nil {
		tasks = append(tasks, timed(&t.Planar, func() { g.RepairRows(dirty) }))
	}
	fanOut(tasks)
	return t
}

// fanOut runs the tasks concurrently, waits for all of them, and
// re-raises the first panic on the calling goroutine.
func fanOut(tasks []func()) {
	var (
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicVal  any
	)
	for _, f := range tasks {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			f()
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
