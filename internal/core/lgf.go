package core

import (
	"github.com/straightpath/wasn/internal/topo"
)

// LGF is Algorithm 1: limited geographic greedy forwarding. The greedy
// phase only considers successors inside the request zone Z(u, d) (LAR
// scheme 1); on a local minimum the perimeter phase rotates the ray ud
// counter-clockwise (the right-hand rule) until the first untried
// neighbor is hit.
type LGF struct {
	net *topo.Network
	// TTLFactor overrides the hop budget (DefaultTTLFactor when 0).
	TTLFactor int
}

var _ Router = (*LGF)(nil)
var _ ObservedRouter = (*LGF)(nil)

// NewLGF returns an LGF router over net.
func NewLGF(net *topo.Network) *LGF { return &LGF{net: net} }

// Name implements Router.
func (r *LGF) Name() string { return "LGF" }

// Route implements Router.
func (r *LGF) Route(src, dst topo.NodeID) Result {
	return r.RouteInto(src, dst, nil)
}

// RouteInto implements Router. lgfAlg is stateless and zero-size, so the
// interface conversion does not allocate.
func (r *LGF) RouteInto(src, dst topo.NodeID, pathBuf []topo.NodeID) Result {
	return drive(r.net, lgfAlg{}, src, dst, r.TTLFactor, pathBuf, nil)
}

// RouteObserved implements ObservedRouter.
func (r *LGF) RouteObserved(src, dst topo.NodeID, pathBuf []topo.NodeID, obs HopObserver) Result {
	return drive(r.net, lgfAlg{}, src, dst, r.TTLFactor, pathBuf, obs)
}

type lgfAlg struct{}

func (lgfAlg) step(st *state) topo.NodeID {
	// Step 1: deliver directly when in range.
	if neighborOfDst(st) {
		st.phase = PhaseGreedy
		return st.dst
	}
	// An active perimeter phase persists until the packet is closer to
	// the destination than the stuck node that started it.
	if st.perimeterActive && st.perimeterDone() {
		st.perimeterActive = false
	}
	if !st.perimeterActive {
		// Steps 2-3: greedy advance within the request zone.
		if v := greedyInRequestZone(st, scanFilter{}, nil); v != topo.NoNode {
			st.phase = PhaseGreedy
			return v
		}
		st.enterPerimeter()
	}
	// Step 4: perimeter routing by the right-hand rule.
	st.phase = PhasePerimeter
	return sweepUntried(st, RightHand, scanFilter{}, nil)
}
