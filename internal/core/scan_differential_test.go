package core

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/topo"
)

// scanTestRouters builds every router over one deployment, returning the
// substrate handles so failure sequences can repair in place.
func scanTestRouters(t *testing.T, model topo.DeployModel, n int, seed uint64) (*topo.Network, []Router, func(changed []topo.NodeID)) {
	t.Helper()
	dep, err := topo.Deploy(topo.DefaultDeployConfig(model, n, seed))
	if err != nil {
		t.Fatal(err)
	}
	net := dep.Net
	m, b, g := BuildSubstrates(net, true, true, true, nil)
	routers := []Router{
		NewGF(net, b),
		NewLGF(net),
		NewSLGF(net, m),
		NewSLGF2(net, m),
		NewGPSR(net, g),
		NewIdeal(net, IdealMinHop),
		NewIdeal(net, IdealMinLength),
	}
	repair := func(changed []topo.NodeID) { RepairSubstrates(m, b, g, changed) }
	return net, routers, repair
}

// TestPackedScansMatchReferenceRoutes is the differential pin of the
// structure-of-arrays scan rewrite: every route computed through the
// packed scans must equal — field for field, hop for hop, length bit
// for bit — the route computed through the straight-line reference
// scans, across IA and FA deployments and through random
// failure/revival sequences, both before the substrates are repaired
// (stale masks, liveness enforced by the bitset alone) and after.
func TestPackedScansMatchReferenceRoutes(t *testing.T) {
	cases := []struct {
		model topo.DeployModel
		n     int
		seed  uint64
	}{
		{topo.ModelIA, 240, 3},
		{topo.ModelIA, 300, 17},
		{topo.ModelFA, 260, 7},
		{topo.ModelFA, 320, 29},
	}
	defer func() { useReferenceScans = false }()
	for _, tc := range cases {
		t.Run(tc.model.String(), func(t *testing.T) {
			net, routers, repair := scanTestRouters(t, tc.model, tc.n, tc.seed)
			pairs := topo.RoutablePairs(net, 32, 40)
			if len(pairs) == 0 {
				t.Fatal("no routable pairs")
			}
			compare := func(when string) {
				t.Helper()
				for _, r := range routers {
					for _, p := range pairs {
						useReferenceScans = false
						fast := r.Route(p[0], p[1])
						useReferenceScans = true
						ref := r.Route(p[0], p[1])
						useReferenceScans = false
						if !reflect.DeepEqual(fast, ref) {
							t.Fatalf("%s (%s): %d->%d packed scan route diverged from reference\npacked:    %+v\nreference: %+v",
								r.Name(), when, p[0], p[1], fast, ref)
						}
					}
				}
			}
			compare("fresh deployment")

			rng := rand.New(rand.NewPCG(tc.seed, 0xda3e39cb94b95bdb))
			var dead []topo.NodeID
			for step := 0; step < 8; step++ {
				changed := mutateLiveness(rng, net, &dead)
				if len(changed) == 0 {
					continue
				}
				// Before repair the safety masks are stale; the scans must
				// still agree because both halves test liveness
				// independently of the masks.
				compare("stale substrates")
				repair(changed)
				compare("repaired substrates")
			}
			if len(dead) == 0 {
				t.Fatal("mutation sequence never killed a node")
			}
		})
	}
}

// TestSafeMasksMatchModel pins the packed safety export the scans trust:
// bit z-1 of SafeMasks()[u] must equal Safe(u, z) for every node and
// zone, scanFilter.accept must agree with the model's SafeToward and
// AnySafe predicates, and zoneBit must match ZoneTypeOf — through
// failure/revival sequences with in-place repairs.
func TestSafeMasksMatchModel(t *testing.T) {
	net := deployed(t, topo.ModelFA, 280, 13)
	m, _, _ := BuildSubstrates(net, true, false, false, nil)
	rng := rand.New(rand.NewPCG(13, 0x2545f4914f6cdd1d))

	check := func(step int) {
		t.Helper()
		masks := m.SafeMasks()
		if len(masks) != net.N() {
			t.Fatalf("step %d: len(SafeMasks) = %d, want %d", step, len(masks), net.N())
		}
		toward := scanFilter{masks: masks}
		any := scanFilter{masks: masks, anySafe: true}
		for i := 0; i < net.N(); i++ {
			u := topo.NodeID(i)
			for _, z := range geom.AllZones {
				got := masks[u]&(1<<uint(z-1)) != 0
				if want := m.Safe(u, z); got != want {
					t.Fatalf("step %d: mask bit for node %d zone %d = %v, model says %v", step, u, z, got, want)
				}
			}
			pu := net.Pos(u)
			if got, want := any.accept(geom.Pt(0, 0), u, pu), m.AnySafe(u); got != want {
				t.Fatalf("step %d: anySafe accept(node %d) = %v, model says %v", step, u, got, want)
			}
			// Random destinations exercise all four zone relations plus
			// the candidate-at-destination escape.
			for k := 0; k < 8; k++ {
				d := net.Pos(topo.NodeID(rng.IntN(net.N())))
				if got, want := toward.accept(d, u, pu), m.SafeToward(u, d); got != want {
					t.Fatalf("step %d: accept(node %d toward %v) = %v, SafeToward says %v", step, u, d, got, want)
				}
				if pu != d {
					if got, want := zoneBit(d.X-pu.X, d.Y-pu.Y), uint(geom.ZoneTypeOf(pu, d)-1); got != want {
						t.Fatalf("step %d: zoneBit(%v -> %v) = %d, ZoneTypeOf says %d", step, pu, d, got, want)
					}
				}
			}
		}
	}

	check(-1)
	var dead []topo.NodeID
	for step := 0; step < 10; step++ {
		changed := mutateLiveness(rng, net, &dead)
		if len(changed) == 0 {
			continue
		}
		m.Repair(changed...)
		check(step)
	}
	if len(dead) == 0 {
		t.Fatal("mutation sequence never killed a node")
	}
}

// TestRouteIntoZeroAllocs pins the pooled-scratch contract at zero
// allocations per route for every router once the pools are warm —
// the property the serving hot path depends on. Skipped under the race
// detector, whose sync.Pool deliberately drops puts.
func TestRouteIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under the race detector")
	}
	net, routers := poolTestRouters(t)
	pairs := topo.RoutablePairs(net, 8, 40)
	if len(pairs) == 0 {
		t.Fatal("no routable pairs")
	}
	for _, r := range routers {
		t.Run(r.Name(), func(t *testing.T) {
			buf := make([]topo.NodeID, 0, 4*net.N())
			for _, p := range pairs {
				res := r.RouteInto(p[0], p[1], buf)
				buf = res.Path[:0]
			}
			i := 0
			avg := testing.AllocsPerRun(200, func() {
				p := pairs[i%len(pairs)]
				i++
				res := r.RouteInto(p[0], p[1], buf)
				buf = res.Path[:0]
			})
			if avg != 0 {
				t.Errorf("%s: %v allocs/route, want 0", r.Name(), avg)
			}
		})
	}
}
