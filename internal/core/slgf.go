package core

import (
	"sync"

	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/topo"
)

// SLGF is the safety-information LGF of the authors' earlier work
// (INFOCOM'08, the paper's [7]): the greedy phase only accepts request-
// zone successors that are safe toward the destination — which, by
// Theorem 1, guarantees the greedy advance never hits a local minimum —
// and anything else (unsafe source neighborhoods, unsafe destinations)
// falls back to the plain right-hand perimeter sweep without further
// safety guidance.
type SLGF struct {
	net *topo.Network
	m   *safety.Model
	// TTLFactor overrides the hop budget (DefaultTTLFactor when 0).
	TTLFactor int
}

var _ Router = (*SLGF)(nil)
var _ ObservedRouter = (*SLGF)(nil)

// NewSLGF returns an SLGF router over net using the prebuilt model.
func NewSLGF(net *topo.Network, m *safety.Model) *SLGF {
	return &SLGF{net: net, m: m}
}

// Name implements Router.
func (r *SLGF) Name() string { return "SLGF" }

// Route implements Router.
func (r *SLGF) Route(src, dst topo.NodeID) Result {
	return r.RouteInto(src, dst, nil)
}

// RouteInto implements Router.
func (r *SLGF) RouteInto(src, dst topo.NodeID, pathBuf []topo.NodeID) Result {
	return r.RouteObserved(src, dst, pathBuf, nil)
}

// RouteObserved implements ObservedRouter.
func (r *SLGF) RouteObserved(src, dst topo.NodeID, pathBuf []topo.NodeID, obs HopObserver) Result {
	a := slgfAlgPool.Get().(*slgfAlg)
	a.m = r.m
	res := drive(r.net, a, src, dst, r.TTLFactor, pathBuf, obs)
	a.m = nil
	slgfAlgPool.Put(a)
	return res
}

type slgfAlg struct {
	m *safety.Model
}

var slgfAlgPool = sync.Pool{New: func() any { return new(slgfAlg) }}

func (a *slgfAlg) step(st *state) topo.NodeID {
	if neighborOfDst(st) {
		st.phase = PhaseGreedy
		return st.dst
	}
	if st.perimeterActive && st.perimeterDone() {
		st.perimeterActive = false
	}
	if !st.perimeterActive {
		// Safe forwarding: greedy within the forwarding zone over nodes
		// that are safe toward d (Theorem 1 guards exactly this step),
		// tested against the model's packed mask export.
		if v := greedyInForwardingZone(st, scanFilter{masks: a.m.SafeMasks()}, nil); v != topo.NoNode {
			st.phase = PhaseGreedy
			return v
		}
		st.enterPerimeter()
	}
	// Perimeter routing without safety information.
	st.phase = PhasePerimeter
	return sweepUntried(st, RightHand, scanFilter{}, nil)
}
