package core

import (
	"math/rand/v2"
	"testing"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/topo"
)

// moveCycle builds a steady-state oscillating drift batch: k movers
// each flip between their home position and a small offset, so repeated
// batches keep the neighborhood sizes (and therefore every substrate's
// scratch) bounded while still rewriting CSR rows and repairing each
// mover's geometric region every call.
type moveCycle struct {
	net   *topo.Network
	moves []topo.Move
	home  []geom.Point
	away  []geom.Point
	flip  bool
}

func newMoveCycle(net *topo.Network, k int, seed uint64) *moveCycle {
	rng := rand.New(rand.NewPCG(seed, 0x5ca1ab1e))
	mc := &moveCycle{net: net, moves: make([]topo.Move, k), home: make([]geom.Point, k), away: make([]geom.Point, k)}
	taken := make(map[topo.NodeID]bool, k)
	for i := 0; i < k; i++ {
		u := topo.NodeID(rng.IntN(net.N()))
		for taken[u] || !net.Alive(u) {
			u = topo.NodeID(rng.IntN(net.N()))
		}
		taken[u] = true
		p := net.Pos(u)
		q := geom.Pt(p.X+rng.NormFloat64()*4, p.Y+rng.NormFloat64()*4)
		q.X = min(max(q.X, net.Field.Min.X), net.Field.Max.X)
		q.Y = min(max(q.Y, net.Field.Min.Y), net.Field.Max.Y)
		mc.moves[i].Node = u
		mc.home[i], mc.away[i] = p, q
	}
	return mc
}

// next fills the reused batch with the cycle's other endpoint.
func (mc *moveCycle) next() []topo.Move {
	mc.flip = !mc.flip
	for i := range mc.moves {
		p := mc.away[i]
		if !mc.flip {
			p = mc.home[i]
		}
		mc.moves[i].X, mc.moves[i].Y = p.X, p.Y
	}
	return mc.moves
}

// TestMoveRepairSteadyStateAllocs pins the allocation profile of a
// steady-state position batch — SetPositions plus RepairSubstratesMoved
// over all three substrates. The repair scratch (dirty marks, job
// lists, claim stamps) is reused across batches, but the bulk of the
// remaining allocations are retained *state*, not scratch: every
// re-traced BOUNDHOLE walk copies its cycle out of the tracer, every
// re-run TENT analysis allocates its interval list, every rebuilt
// planar row allocates its kept/angle slices, and assemble() rebuilds
// the node→holes index — all of which outlive the call, so a literal
// zero pin is not achievable without restructuring the substrates'
// ownership model. What the ceiling guards instead is the incremental
// contract itself: this batch measures ~3.5k allocs while a silent
// fall-back to full rebuild costs ~9.4k on the same deployment, so any
// regression to O(N) re-derivation trips the budget.
//
// SetPositions alone is genuinely steady-state (packed-array and CSR
// row rewrites in place) and gets a near-zero pin of its own.
func TestMoveRepairSteadyStateAllocs(t *testing.T) {
	dep, err := topo.Deploy(topo.DefaultDeployConfig(topo.ModelFA, 400, 7))
	if err != nil {
		t.Fatal(err)
	}
	net := dep.Net
	m, b, g := BuildSubstrates(net, true, true, true, nil)
	mc := newMoveCycle(net, 8, 7)

	step := func() {
		dirty, err := net.SetPositions(mc.next())
		if err != nil {
			t.Fatal(err)
		}
		RepairSubstratesMoved(m, b, g, dirty)
	}
	// Warm to the scratch high-water mark: both cycle endpoints must
	// have been visited at least once before measuring.
	for i := 0; i < 8; i++ {
		step()
	}
	const budget = 6000 // incremental ~3.2k, full-rebuild fallback ~9.4k
	if avg := testing.AllocsPerRun(50, step); avg > budget {
		t.Fatalf("steady-state move+repair allocates %.1f objects per batch; budget %d (a full rebuild costs ~9400 — did incremental repair regress to O(N)?)", avg, budget)
	}

	// The CSR/position rewrite itself must stay allocation-free apart
	// from the returned dirty slice.
	setOnly := func() {
		if _, err := net.SetPositions(mc.next()); err != nil {
			t.Fatal(err)
		}
	}
	setOnly()
	if avg := testing.AllocsPerRun(50, setOnly); avg > 8 {
		t.Fatalf("SetPositions alone allocates %.1f objects per batch; want <= 8", avg)
	}
}

// BenchmarkMoveRepair measures the incremental move+repair path the
// serve layer runs per /move batch (8 movers on a 400-node FA
// deployment). CI runs it at -benchtime=1x as a compile-and-panic
// smoke.
func BenchmarkMoveRepair(bb *testing.B) {
	dep, err := topo.Deploy(topo.DefaultDeployConfig(topo.ModelFA, 400, 7))
	if err != nil {
		bb.Fatal(err)
	}
	net := dep.Net
	m, b, g := BuildSubstrates(net, true, true, true, nil)
	mc := newMoveCycle(net, 8, 7)
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		dirty, err := net.SetPositions(mc.next())
		if err != nil {
			bb.Fatal(err)
		}
		RepairSubstratesMoved(m, b, g, dirty)
	}
}
