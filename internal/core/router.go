// Package core implements the routing algorithms of the paper: the
// baselines GF (greedy forwarding with BOUNDHOLE boundary detours), LGF
// (request-zone-limited greedy forwarding, Algorithm 1) and SLGF (the
// safety-information LGF of the authors' earlier work), and the paper's
// contribution SLGF2 (Algorithm 3) with its safe-forwarding, backup-path
// and confined perimeter phases steered by the either-hand rule. A
// GPSR-style greedy+face router and exact shortest-path references are
// included for comparison.
//
// Every router is a per-hop decision procedure: the driver asks the
// algorithm for the successor of the current node until the destination
// is reached, the TTL expires, or the algorithm reports no candidate.
package core

import (
	"fmt"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/topo"
)

// Phase labels the forwarding mode that selected a hop, for the
// per-phase accounting the evaluation reports.
type Phase int

// Phases, in escalation order.
const (
	PhaseGreedy Phase = iota + 1
	PhaseBackup
	PhasePerimeter

	// NumPhases is the number of distinct phases.
	NumPhases = int(PhasePerimeter)
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseGreedy:
		return "greedy"
	case PhaseBackup:
		return "backup"
	case PhasePerimeter:
		return "perimeter"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// DropReason explains a failed routing.
type DropReason int

// Drop reasons. DropNone marks delivered packets.
const (
	DropNone DropReason = iota
	DropTTL
	DropNoCandidate
)

// String implements fmt.Stringer.
func (r DropReason) String() string {
	switch r {
	case DropNone:
		return "delivered"
	case DropTTL:
		return "ttl-exceeded"
	case DropNoCandidate:
		return "no-candidate"
	default:
		return fmt.Sprintf("drop(%d)", int(r))
	}
}

// PhaseCounts counts hops per phase, indexed by Phase (index 0 is
// unused; phases start at PhaseGreedy == 1). A fixed array instead of a
// map keeps Result allocation-free (and PhaseCounts itself comparable).
type PhaseCounts [NumPhases + 1]int

// Of returns the hop count of phase p — the compatibility accessor for
// code written against the former map[Phase]int representation. Direct
// indexing (c[PhaseGreedy]) works identically.
func (c PhaseCounts) Of(p Phase) int {
	if p < 0 || int(p) >= len(c) {
		return 0
	}
	return c[p]
}

// Total returns the hop count across all phases.
func (c PhaseCounts) Total() int {
	t := 0
	for _, v := range c {
		t += v
	}
	return t
}

// Result is the outcome of routing one packet.
type Result struct {
	// Path holds every node the packet visited, source first. Nodes can
	// repeat (perimeter phases may backtrack). When the route was issued
	// through RouteInto, Path aliases the caller's buffer.
	Path []topo.NodeID
	// Delivered reports whether the packet reached the destination.
	Delivered bool
	// Reason is DropNone when delivered.
	Reason DropReason
	// Length is the total Euclidean distance traveled.
	Length float64
	// PhaseHops counts hops per phase.
	PhaseHops PhaseCounts
}

// Hops returns the hop count of the traveled path. Results whose Path
// has been dropped (the serve layer's route cache stores only the
// aggregate outcome) still report the true count via the per-phase
// totals, which every router maintains hop-for-hop.
func (r Result) Hops() int {
	if len(r.Path) == 0 {
		return r.PhaseHops.Total()
	}
	return len(r.Path) - 1
}

// Router routes single packets between nodes of one fixed network.
//
// Every Router in this package is safe for concurrent use: all
// per-packet scratch lives in pooled per-route state (SLGF2's lazy
// planar substrate is built under a sync.Once), so any number of
// goroutines may route over one router simultaneously — provided no
// topology mutation (topo.Network.SetAlive) races with in-flight routes.
// Callers that fail nodes at runtime must serialize mutations against
// routing; the serve package does so with a per-deployment RWMutex.
//
// Steady-state routing performs zero allocations per hop decision: the
// visited bookkeeping, queues, and candidate buffers come from
// sync.Pool-managed scratch that is cleared and reused across routes.
// Route allocates only the Result's path slice; RouteInto with a reused
// buffer eliminates that too.
type Router interface {
	// Name identifies the algorithm ("GF", "LGF", "SLGF", "SLGF2", ...).
	Name() string
	// Route routes one packet from src to dst.
	Route(src, dst topo.NodeID) Result
	// RouteInto routes one packet from src to dst, appending the
	// traveled path into pathBuf[:0] (the Result's Path then aliases
	// pathBuf's backing array, which must not be reused until the
	// Result is consumed). A nil pathBuf behaves like Route. Passing a
	// reused buffer makes steady-state routing allocation-free.
	RouteInto(src, dst topo.NodeID, pathBuf []topo.NodeID) Result
}

// HopObserver receives every hop decision of an observed route as it
// is made: hop seq (1-based), the nodes involved, and the phase that
// selected it. Observers must not route through the same router
// recursively and must not retain references past the Route call.
//
// The observer hook is the zero-cost-when-off tracing path: routers
// consult it with one nil check per hop, so routing without an
// observer performs exactly as before (the 0 allocs/op benchmarks
// pin this). The trace package's pooled Recorder is the canonical
// implementation; the serve layer samples it at a configurable rate
// and wires it to /route?trace=true.
type HopObserver interface {
	// ObserveHop reports that hop seq moved the packet from->to under
	// phase.
	ObserveHop(seq int, from, to topo.NodeID, phase Phase)
}

// ObservedRouter extends Router with per-hop decision observation.
// Every router in this package implements it; external callers
// type-assert from Router.
type ObservedRouter interface {
	Router
	// RouteObserved is RouteInto with every hop decision reported to
	// obs (nil behaves exactly like RouteInto).
	RouteObserved(src, dst topo.NodeID, pathBuf []topo.NodeID, obs HopObserver) Result
}

// Hand selects the ray-rotation direction of detour sweeps. The paper's
// "right-hand rule" [2] rotates the ray ud counter-clockwise until the
// first untried neighbor is hit (Algorithm 1); the left-hand rule is the
// mirror image. The either-hand rule of SLGF2 picks whichever hand keeps
// the routing on the destination's (critical) side of a blocking area and
// then sticks with it.
type Hand int

// Hands. HandNone means "not committed yet".
const (
	HandNone  Hand = 0
	RightHand Hand = iota // counter-clockwise ray rotation
	LeftHand              // clockwise ray rotation
)

// String implements fmt.Stringer.
func (h Hand) String() string {
	switch h {
	case RightHand:
		return "right"
	case LeftHand:
		return "left"
	case HandNone:
		return "none"
	default:
		return fmt.Sprintf("hand(%d)", int(h))
	}
}

// sweepDelta returns how far the ray must rotate from angle `from` to hit
// angle `to` under the hand's rotation direction.
func (h Hand) sweepDelta(from, to float64) float64 {
	if h == LeftHand {
		return geom.CWDelta(from, to)
	}
	return geom.CCWDelta(from, to)
}

// DefaultTTLFactor scales the per-packet hop budget: TTL = factor * |V|.
const DefaultTTLFactor = 4
