package core

import (
	"math/rand/v2"
	"slices"
	"testing"

	"github.com/straightpath/wasn/internal/bound"
	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/planar"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/topo"
)

// buildRouterTable mirrors the serve layer's 7-algorithm table over one
// set of substrates.
func buildRouterTable(net *topo.Network, m *safety.Model, b *bound.Boundaries, g *planar.Graph) map[string]Router {
	return map[string]Router{
		"GF":           NewGF(net, b),
		"LGF":          NewLGF(net),
		"SLGF":         NewSLGF(net, m),
		"SLGF2":        NewSLGF2(net, m, WithPlanarGraph(g)),
		"GPSR":         NewGPSR(net, g),
		"Ideal-hops":   NewIdeal(net, IdealMinHop),
		"Ideal-length": NewIdeal(net, IdealMinLength),
	}
}

// mutatePositions applies one random drift batch (occasionally a long
// teleport) through SetPositions and returns the dirty set.
func mutatePositions(t *testing.T, rng *rand.Rand, net *topo.Network) []topo.NodeID {
	t.Helper()
	k := 1 + rng.IntN(6)
	moves := make([]topo.Move, 0, k)
	for len(moves) < k {
		u := topo.NodeID(rng.IntN(net.N()))
		p := net.Pos(u)
		var np geom.Point
		if rng.Float64() < 0.15 {
			np = geom.Pt(
				net.Field.Min.X+rng.Float64()*net.Field.Width(),
				net.Field.Min.Y+rng.Float64()*net.Field.Height(),
			)
		} else {
			np = geom.Pt(p.X+rng.NormFloat64()*6, p.Y+rng.NormFloat64()*6)
			np.X = min(max(np.X, net.Field.Min.X), net.Field.Max.X)
			np.Y = min(max(np.Y, net.Field.Min.Y), net.Field.Max.Y)
		}
		moves = append(moves, topo.Move{Node: u, X: np.X, Y: np.Y})
	}
	dirty, err := net.SetPositions(moves)
	if err != nil {
		t.Fatal(err)
	}
	return dirty
}

// freshClone rebuilds the network from scratch over the mutated
// positions and liveness — the from-scratch oracle for repaired state.
func freshClone(t *testing.T, net *topo.Network) *topo.Network {
	t.Helper()
	fresh, err := topo.NewNetwork(net.Positions(), net.Radius, net.Field)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < net.N(); u++ {
		if !net.Alive(topo.NodeID(u)) {
			fresh.SetAlive(topo.NodeID(u), false)
		}
	}
	return fresh
}

// compareRoutes asserts that every algorithm routes a sample of pairs
// identically over the repaired substrates and the fresh rebuild.
func compareRoutes(t *testing.T, step int, rng *rand.Rand, net *topo.Network,
	got, want map[string]Router) {
	t.Helper()
	alive := net.AliveIDs()
	if len(alive) < 2 {
		return
	}
	for pair := 0; pair < 20; pair++ {
		src := alive[rng.IntN(len(alive))]
		dst := alive[rng.IntN(len(alive))]
		if src == dst {
			continue
		}
		for name, gr := range got {
			g := gr.Route(src, dst)
			w := want[name].Route(src, dst)
			if g.Delivered != w.Delivered || g.Reason != w.Reason ||
				g.Length != w.Length || g.PhaseHops != w.PhaseHops ||
				!slices.Equal(g.Path, w.Path) {
				t.Errorf("step %d: %s route %d->%d diverged: repaired {delivered=%v reason=%v len=%v hops=%v path=%v} fresh {delivered=%v reason=%v len=%v hops=%v path=%v}",
					step, name, src, dst,
					g.Delivered, g.Reason, g.Length, g.PhaseHops, g.Path,
					w.Delivered, w.Reason, w.Length, w.PhaseHops, w.Path)
			}
		}
	}
}

// TestRepairSubstratesMovedMatchesFullRebuild is the position-churn
// differential battery: seeded interleavings of drift/teleport batches,
// failures, and revivals over IA, FA, and obstacle-field deployments,
// asserting after every mutation that the incrementally repaired
// substrates — safety labels, pins, shapes, confinement boxes, hole
// cycles, planar rows — are indistinguishable from substrates built from
// scratch on the mutated network, and that all 7 routing algorithms are
// route-output-identical over repaired vs rebuilt state.
func TestRepairSubstratesMovedMatchesFullRebuild(t *testing.T) {
	cases := []struct {
		model topo.DeployModel
		n     int
		seed  uint64
	}{
		{topo.ModelIA, 220, 5},
		{topo.ModelFA, 260, 9},
		{topo.ModelOB, 240, 13},
	}
	for _, tc := range cases {
		t.Run(tc.model.String(), func(t *testing.T) {
			dep, err := topo.Deploy(topo.DefaultDeployConfig(tc.model, tc.n, tc.seed))
			if err != nil {
				t.Fatal(err)
			}
			net := dep.Net
			m, b, g := BuildSubstrates(net, true, true, true, nil)

			rng := rand.New(rand.NewPCG(tc.seed, 0xab54a98ceb1f0ad2))
			var dead []topo.NodeID
			moved := false
			for step := 0; step < 16; step++ {
				var changed []topo.NodeID
				if rng.IntN(2) == 0 {
					changed = mutatePositions(t, rng, net)
					RepairSubstratesMoved(m, b, g, changed)
					moved = true
				} else {
					changed = mutateLiveness(rng, net, &dead)
					if len(changed) == 0 {
						continue
					}
					RepairSubstrates(m, b, g, changed)
				}

				fresh := freshClone(t, net)
				fm, fb, fg := BuildSubstrates(fresh, true, true, true, nil)
				compareSafety(t, step, net, m, fm)
				compareBounds(t, step, b, fb)
				comparePlanar(t, step, net, g, fg)
				compareRoutes(t, step, rng, net,
					buildRouterTable(net, m, b, g),
					buildRouterTable(fresh, fm, fb, fg))
				if t.Failed() {
					t.Fatalf("step %d: repaired substrates diverged after changing %v (dead set %v)", step, changed, dead)
				}
			}
			if !moved {
				t.Fatal("mutation sequence never moved a node")
			}
		})
	}
}
