package core

import (
	"math/rand/v2"
	"testing"

	"github.com/straightpath/wasn/internal/bound"
	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/planar"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/topo"
)

// TestRepairSubstratesMatchesFullRebuild drives random failure/revival
// sequences over IA and FA deployments and asserts after every mutation
// that the incrementally repaired substrates are indistinguishable from
// substrates built from scratch on the mutated network: identical
// safety labels, pins, shape estimates and confinement boxes, identical
// hole ids/cycles/bboxes and message counts, identical planar rows.
// This is the differential guarantee serve.Fail and Sim.Fail rely on.
func TestRepairSubstratesMatchesFullRebuild(t *testing.T) {
	cases := []struct {
		model topo.DeployModel
		n     int
		seed  uint64
	}{
		{topo.ModelIA, 220, 5},
		{topo.ModelFA, 260, 9},
	}
	for _, tc := range cases {
		t.Run(tc.model.String(), func(t *testing.T) {
			dep, err := topo.Deploy(topo.DefaultDeployConfig(tc.model, tc.n, tc.seed))
			if err != nil {
				t.Fatal(err)
			}
			net := dep.Net
			m, b, g := BuildSubstrates(net, true, true, true, nil)

			rng := rand.New(rand.NewPCG(tc.seed, 0x9e3779b97f4a7c15))
			var dead []topo.NodeID
			for step := 0; step < 14; step++ {
				changed := mutateLiveness(rng, net, &dead)
				if len(changed) == 0 {
					continue
				}
				RepairSubstrates(m, b, g, changed)

				fm, fb, fg := BuildSubstrates(net, true, true, true, nil)
				compareSafety(t, step, net, m, fm)
				compareBounds(t, step, b, fb)
				comparePlanar(t, step, net, g, fg)
				if t.Failed() {
					t.Fatalf("step %d: repaired substrates diverged after changing %v (dead set %v)", step, changed, dead)
				}
			}
			if len(dead) == 0 {
				t.Fatal("mutation sequence never killed a node")
			}
		})
	}
}

// mutateLiveness applies one random batch of failures (usually) or
// revivals (sometimes, when nodes are dead) to net, maintaining the
// dead list, and returns the changed node ids.
func mutateLiveness(rng *rand.Rand, net *topo.Network, dead *[]topo.NodeID) []topo.NodeID {
	var changed []topo.NodeID
	if len(*dead) > 0 && rng.IntN(10) < 3 {
		// Revive one or two dead nodes.
		k := 1 + rng.IntN(2)
		for i := 0; i < k && len(*dead) > 0; i++ {
			j := rng.IntN(len(*dead))
			u := (*dead)[j]
			(*dead)[j] = (*dead)[len(*dead)-1]
			*dead = (*dead)[:len(*dead)-1]
			net.SetAlive(u, true)
			changed = append(changed, u)
		}
		return changed
	}
	k := 1 + rng.IntN(3)
	for i := 0; i < k; i++ {
		u := topo.NodeID(rng.IntN(net.N()))
		if !net.Alive(u) {
			continue
		}
		net.SetAlive(u, false)
		*dead = append(*dead, u)
		changed = append(changed, u)
	}
	return changed
}

func compareSafety(t *testing.T, step int, net *topo.Network, got, want *safety.Model) {
	t.Helper()
	for i := 0; i < net.N(); i++ {
		u := topo.NodeID(i)
		if got.Tuple(u) != want.Tuple(u) {
			t.Errorf("step %d: node %d tuple = %s, fresh rebuild says %s", step, u, got.Tuple(u), want.Tuple(u))
		}
		if got.Pinned(u) != want.Pinned(u) {
			t.Errorf("step %d: node %d pinned = %v, fresh rebuild says %v", step, u, got.Pinned(u), want.Pinned(u))
		}
		for _, z := range geom.AllZones {
			if got.U1(u, z) != want.U1(u, z) || got.U2(u, z) != want.U2(u, z) {
				t.Errorf("step %d: node %d zone %d far nodes = (%d,%d), fresh (%d,%d)",
					step, u, z, got.U1(u, z), got.U2(u, z), want.U1(u, z), want.U2(u, z))
			}
			gr, gok := got.Shape(u, z)
			wr, wok := want.Shape(u, z)
			if gok != wok || gr != wr {
				t.Errorf("step %d: node %d zone %d shape = %v/%v, fresh %v/%v", step, u, z, gr, gok, wr, wok)
			}
			gf, gok := got.FarCorner(u, z)
			wf, wok := want.FarCorner(u, z)
			if gok != wok || gf != wf {
				t.Errorf("step %d: node %d zone %d far corner = %v/%v, fresh %v/%v", step, u, z, gf, gok, wf, wok)
			}
		}
		gc, gok := got.ConfinementBox(u)
		wc, wok := want.ConfinementBox(u)
		if gok != wok || gc != wc {
			t.Errorf("step %d: node %d confinement = %v/%v, fresh %v/%v", step, u, gc, gok, wc, wok)
		}
	}
}

func compareBounds(t *testing.T, step int, got, want *bound.Boundaries) {
	t.Helper()
	if got.MessageCount != want.MessageCount {
		t.Errorf("step %d: message count = %d, fresh rebuild says %d", step, got.MessageCount, want.MessageCount)
	}
	if len(got.Holes) != len(want.Holes) {
		t.Errorf("step %d: %d holes, fresh rebuild finds %d", step, len(got.Holes), len(want.Holes))
		return
	}
	for i := range got.Holes {
		gh, wh := got.Holes[i], want.Holes[i]
		if gh.ID != wh.ID || gh.BBox != wh.BBox || len(gh.Cycle) != len(wh.Cycle) {
			t.Errorf("step %d: hole %d = {id %d, %d nodes, %v}, fresh {id %d, %d nodes, %v}",
				step, i, gh.ID, len(gh.Cycle), gh.BBox, wh.ID, len(wh.Cycle), wh.BBox)
			continue
		}
		for j := range gh.Cycle {
			if gh.Cycle[j] != wh.Cycle[j] {
				t.Errorf("step %d: hole %d cycle[%d] = %d, fresh %d", step, i, j, gh.Cycle[j], wh.Cycle[j])
				break
			}
		}
	}
	// Node index: same holes at every boundary node.
	for _, wh := range want.Holes {
		for _, u := range wh.Cycle {
			gids := holeIDs(got.HolesAt(u))
			wids := holeIDs(want.HolesAt(u))
			if len(gids) != len(wids) {
				t.Errorf("step %d: HolesAt(%d) = %v, fresh %v", step, u, gids, wids)
				continue
			}
			for k := range gids {
				if gids[k] != wids[k] {
					t.Errorf("step %d: HolesAt(%d) = %v, fresh %v", step, u, gids, wids)
					break
				}
			}
		}
	}
}

func holeIDs(hs []*bound.Hole) []int {
	ids := make([]int, len(hs))
	for i, h := range hs {
		ids[i] = h.ID
	}
	return ids
}

func comparePlanar(t *testing.T, step int, net *topo.Network, got, want *planar.Graph) {
	t.Helper()
	if got.EdgeCount() != want.EdgeCount() {
		t.Errorf("step %d: planar edge count = %d, fresh rebuild says %d", step, got.EdgeCount(), want.EdgeCount())
	}
	for i := 0; i < net.N(); i++ {
		u := topo.NodeID(i)
		gn, wn := got.Neighbors(u), want.Neighbors(u)
		if len(gn) != len(wn) {
			t.Errorf("step %d: planar row %d = %v, fresh %v", step, u, gn, wn)
			continue
		}
		for j := range gn {
			if gn[j] != wn[j] {
				t.Errorf("step %d: planar row %d = %v, fresh %v", step, u, gn, wn)
				break
			}
		}
	}
}
