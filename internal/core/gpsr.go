package core

import (
	"sync"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/planar"
	"github.com/straightpath/wasn/internal/topo"
)

// GPSR is the classical greedy + face-routing comparison point (Karp &
// Kung; the perimeter mechanism is Bose–Morin–Stojmenović's face walk,
// the paper's reference [2]): greedy forwarding until a local minimum,
// then a right-hand face walk on a planar subgraph, returning to greedy
// at any node closer to the destination than the stuck point.
type GPSR struct {
	net *topo.Network
	g   *planar.Graph
	// TTLFactor overrides the hop budget (DefaultTTLFactor when 0).
	TTLFactor int
}

var _ Router = (*GPSR)(nil)
var _ ObservedRouter = (*GPSR)(nil)

// NewGPSR returns a GPSR router over net using the given planar subgraph
// (typically planar.Build(net, planar.GabrielGraph)).
func NewGPSR(net *topo.Network, g *planar.Graph) *GPSR {
	return &GPSR{net: net, g: g}
}

// Name implements Router.
func (r *GPSR) Name() string { return "GPSR" }

// Route implements Router.
func (r *GPSR) Route(src, dst topo.NodeID) Result {
	return r.RouteInto(src, dst, nil)
}

// RouteInto implements Router.
func (r *GPSR) RouteInto(src, dst topo.NodeID, pathBuf []topo.NodeID) Result {
	return r.RouteObserved(src, dst, pathBuf, nil)
}

// RouteObserved implements ObservedRouter.
func (r *GPSR) RouteObserved(src, dst topo.NodeID, pathBuf []topo.NodeID, obs HopObserver) Result {
	a := gpsrAlgPool.Get().(*gpsrAlg)
	a.g = r.g
	a.perimeter = false
	a.stuckPos = geom.Point{}
	a.stuckDist = 0
	clear(a.visited)
	res := drive(r.net, a, src, dst, r.TTLFactor, pathBuf, obs)
	a.g = nil
	gpsrAlgPool.Put(a)
	return res
}

type gpsrAlg struct {
	g *planar.Graph

	perimeter bool
	stuckPos  geom.Point
	stuckDist float64
	// visited records directed planar edges walked in the current
	// perimeter phase; repeating one means the destination is
	// unreachable from this face structure. Retained across pooled
	// routes, cleared per perimeter phase.
	visited map[[2]topo.NodeID]bool
}

var gpsrAlgPool = sync.Pool{New: func() any {
	return &gpsrAlg{visited: make(map[[2]topo.NodeID]bool)}
}}

func (a *gpsrAlg) step(st *state) topo.NodeID {
	if neighborOfDst(st) {
		st.phase = PhaseGreedy
		return st.dst
	}
	if a.perimeter {
		if geom.Dist(st.net.Pos(st.cur), st.dstPos) < a.stuckDist {
			a.perimeter = false // recovered: closer than the stuck point
		} else {
			return a.faceStep(st)
		}
	}
	if v := greedyClosest(st); v != topo.NoNode {
		st.phase = PhaseGreedy
		return v
	}
	// Local minimum: enter perimeter mode on the planar graph.
	a.perimeter = true
	a.stuckPos = st.net.Pos(st.cur)
	a.stuckDist = geom.Dist(a.stuckPos, st.dstPos)
	clear(a.visited)
	st.phase = PhasePerimeter
	next := a.g.FaceStep(st.cur, topo.NoNode, geom.Angle(a.stuckPos, st.dstPos))
	return a.claimEdge(st.cur, next)
}

func (a *gpsrAlg) faceStep(st *state) topo.NodeID {
	st.phase = PhasePerimeter
	next := a.g.FaceStep(st.cur, st.prev, 0)
	return a.claimEdge(st.cur, next)
}

// claimEdge records the directed edge and drops the packet when the walk
// repeats one (unreachable destination), the standard GPSR termination
// criterion.
func (a *gpsrAlg) claimEdge(u, v topo.NodeID) topo.NodeID {
	if v == topo.NoNode {
		return topo.NoNode
	}
	key := [2]topo.NodeID{u, v}
	if a.visited[key] {
		return topo.NoNode
	}
	a.visited[key] = true
	return v
}
