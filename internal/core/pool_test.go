package core

import (
	"reflect"
	"sync"
	"testing"

	"github.com/straightpath/wasn/internal/bound"
	"github.com/straightpath/wasn/internal/planar"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/topo"
)

// poolTestRouters builds every router over one FA network.
func poolTestRouters(t testing.TB) (*topo.Network, []Router) {
	t.Helper()
	dep, err := topo.Deploy(topo.DefaultDeployConfig(topo.ModelFA, 300, 21))
	if err != nil {
		t.Fatal(err)
	}
	net := dep.Net
	m := safety.Build(net)
	b := bound.FindHoles(net)
	g := planar.Build(net, planar.GabrielGraph)
	return net, []Router{
		NewGF(net, b),
		NewLGF(net),
		NewSLGF(net, m),
		NewSLGF2(net, m),
		NewGPSR(net, g),
		NewIdeal(net, IdealMinHop),
		NewIdeal(net, IdealMinLength),
	}
}

// TestConcurrentRoutesOverPooledState drives every algorithm from many
// goroutines at once (run under -race in CI): the pooled per-route
// scratch must neither race nor leak state between routes. Every
// concurrent result must equal the serial reference bit-for-bit.
func TestConcurrentRoutesOverPooledState(t *testing.T) {
	net, routers := poolTestRouters(t)
	pairs := topo.RoutablePairs(net, 24, 40)
	if len(pairs) == 0 {
		t.Fatal("no routable pairs")
	}

	// Serial reference, computed once per (router, pair).
	ref := make([][]Result, len(routers))
	for ri, r := range routers {
		ref[ri] = make([]Result, len(pairs))
		for pi, p := range pairs {
			ref[ri][pi] = r.Route(p[0], p[1])
		}
	}

	const goroutines = 8
	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]topo.NodeID, 0, 128)
			for round := 0; round < rounds; round++ {
				for ri, r := range routers {
					for pi, p := range pairs {
						useBuf := (g+round)%2 != 0
						var got Result
						if useBuf {
							got = r.RouteInto(p[0], p[1], buf)
						} else {
							got = r.Route(p[0], p[1])
						}
						want := ref[ri][pi]
						if !reflect.DeepEqual(got, want) {
							errs <- r.Name()
							return
						}
						if useBuf {
							// Reusable once the result is consumed.
							buf = got.Path[:0]
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for name := range errs {
		t.Fatalf("%s: concurrent result diverged from serial reference", name)
	}
}

// TestRouteIntoReusesBuffer pins the RouteInto contract: the returned
// path aliases the provided buffer's backing array (when capacity
// suffices) and repeated calls with the same buffer stay correct.
func TestRouteIntoReusesBuffer(t *testing.T) {
	net, routers := poolTestRouters(t)
	pairs := topo.RoutablePairs(net, 8, 40)
	if len(pairs) == 0 {
		t.Fatal("no routable pairs")
	}
	for _, r := range routers {
		buf := make([]topo.NodeID, 0, 4*net.N())
		for _, p := range pairs {
			want := r.Route(p[0], p[1])
			got := r.RouteInto(p[0], p[1], buf)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: RouteInto diverged from Route", r.Name())
			}
			if len(got.Path) > 0 && cap(buf) >= len(got.Path) && &got.Path[0] != &buf[:1][0] {
				t.Fatalf("%s: RouteInto did not write into the provided buffer", r.Name())
			}
		}
	}
}

// TestPooledStateIsolation interleaves routes that exercise detour
// bookkeeping (tried sets, failed holes, face walks) and checks a
// pooled state reused across routes cannot leak markings: routing the
// same pair twice in a row must give identical results.
func TestPooledStateIsolation(t *testing.T) {
	net, routers := poolTestRouters(t)
	pairs := topo.RoutablePairs(net, 16, 60)
	if len(pairs) < 2 {
		t.Skip("not enough routable pairs")
	}
	for _, r := range routers {
		first := make([]Result, len(pairs))
		for i, p := range pairs {
			first[i] = r.Route(p[0], p[1])
		}
		// Second sweep in shuffled order over warm pools.
		for i := len(pairs) - 1; i >= 0; i-- {
			p := pairs[i]
			if got := r.Route(p[0], p[1]); !reflect.DeepEqual(got, first[i]) {
				t.Fatalf("%s pair %v: warm-pool result diverged", r.Name(), p)
			}
		}
	}
}
