package core

import (
	"slices"
	"testing"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/topo"
)

// fuzzOps decodes one encoded mutation batch stream. Each op starts with
// a selector byte: 0-1 move (consumes 3 more bytes: node, x, y),
// 2 fail (1 more byte), 3 revive (1 more byte), anything else ends the
// current batch. Batches are applied and repaired one at a time.
type fuzzOp struct {
	move   *topo.Move
	fail   topo.NodeID
	revive bool
	churn  bool
}

func decodeBatch(net *topo.Network, data []byte) (ops []fuzzOp, rest []byte) {
	const maxOps = 6
	for len(data) > 0 && len(ops) < maxOps {
		sel := data[0]
		data = data[1:]
		switch {
		case sel < 2:
			if len(data) < 3 {
				return ops, nil
			}
			m := topo.Move{
				Node: topo.NodeID(int(data[0]) % net.N()),
				X:    net.Field.Min.X + float64(data[1])/255*net.Field.Width(),
				Y:    net.Field.Min.Y + float64(data[2])/255*net.Field.Height(),
			}
			ops = append(ops, fuzzOp{move: &m})
			data = data[3:]
		case sel == 2:
			if len(data) < 1 {
				return ops, nil
			}
			ops = append(ops, fuzzOp{fail: topo.NodeID(int(data[0]) % net.N()), churn: true})
			data = data[1:]
		case sel == 3:
			if len(data) < 1 {
				return ops, nil
			}
			ops = append(ops, fuzzOp{fail: topo.NodeID(int(data[0]) % net.N()), revive: true, churn: true})
			data = data[1:]
		default:
			return ops, data
		}
	}
	return ops, data
}

// FuzzRepairSubstrates replays arbitrary encoded move/fail/revive
// batches against incrementally repaired substrates and a from-scratch
// rebuild, failing on any divergence in safety labels, pins, hole
// cycles, or planar rows. This is the fuzz-native form of the
// TestRepairSubstratesMoved differential battery.
func FuzzRepairSubstrates(f *testing.F) {
	// Revival-fallback: fail a clump then revive it (safety full-relabel
	// path) interleaved with drift.
	f.Add([]byte{0, 0, 2, 10, 2, 11, 2, 12, 9, 3, 10, 3, 11, 0, 40, 90, 90})
	// Hull-pin churn: teleport far corners so edge pins flip, then fail
	// a hull node.
	f.Add([]byte{1, 1, 0, 5, 255, 255, 1, 6, 0, 0, 9, 2, 5, 9, 3, 5})
	// Obstacle model with range-boundary drift around a hole rim.
	f.Add([]byte{2, 3, 0, 50, 140, 128, 1, 51, 148, 128, 9, 0, 50, 150, 128})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		model := []topo.DeployModel{topo.ModelIA, topo.ModelFA, topo.ModelOB}[int(data[0])%3]
		seed := uint64(data[1] % 8)
		data = data[2:]
		dep, err := topo.Deploy(topo.DefaultDeployConfig(model, 110, seed))
		if err != nil {
			t.Skip()
		}
		net := dep.Net
		m, b, g := BuildSubstrates(net, true, true, true, nil)

		for batches := 0; len(data) > 0 && batches < 6; batches++ {
			var ops []fuzzOp
			ops, data = decodeBatch(net, data)
			if len(ops) == 0 {
				continue
			}
			// Apply liveness ops individually, collect moves into one
			// batch — mirroring how the serve layer feeds repairs.
			var moves []topo.Move
			var churned []topo.NodeID
			for _, op := range ops {
				if op.move != nil {
					moves = append(moves, *op.move)
					continue
				}
				if net.Alive(op.fail) != op.revive {
					continue // no-op flip
				}
				net.SetAlive(op.fail, op.revive)
				churned = append(churned, op.fail)
			}
			if len(churned) > 0 {
				RepairSubstrates(m, b, g, churned)
			}
			if len(moves) > 0 {
				dirty, err := net.SetPositions(moves)
				if err != nil {
					t.Fatal(err)
				}
				RepairSubstratesMoved(m, b, g, dirty)
			}
			if len(churned) == 0 && len(moves) == 0 {
				continue
			}

			fresh, err := topo.NewNetwork(net.Positions(), net.Radius, net.Field)
			if err != nil {
				t.Fatal(err)
			}
			for u := 0; u < net.N(); u++ {
				if !net.Alive(topo.NodeID(u)) {
					fresh.SetAlive(topo.NodeID(u), false)
				}
			}
			fm, fb, fg := BuildSubstrates(fresh, true, true, true, nil)
			for u := 0; u < net.N(); u++ {
				id := topo.NodeID(u)
				if m.Tuple(id) != fm.Tuple(id) || m.Pinned(id) != fm.Pinned(id) {
					t.Fatalf("safety diverged at node %d: %s/%v vs fresh %s/%v",
						u, m.Tuple(id), m.Pinned(id), fm.Tuple(id), fm.Pinned(id))
				}
				for _, z := range geom.AllZones {
					gr, gok := m.Shape(id, z)
					wr, wok := fm.Shape(id, z)
					if gok != wok || gr != wr {
						t.Fatalf("shape diverged at node %d zone %d", u, z)
					}
				}
				if !slices.Equal(g.Neighbors(id), fg.Neighbors(id)) {
					t.Fatalf("planar row diverged at node %d: %v vs fresh %v",
						u, g.Neighbors(id), fg.Neighbors(id))
				}
			}
			if len(b.Holes) != len(fb.Holes) || b.MessageCount != fb.MessageCount {
				t.Fatalf("holes diverged: %d/%d msgs vs fresh %d/%d",
					len(b.Holes), b.MessageCount, len(fb.Holes), fb.MessageCount)
			}
			for i := range b.Holes {
				if !slices.Equal(b.Holes[i].Cycle, fb.Holes[i].Cycle) {
					t.Fatalf("hole %d cycle diverged", i)
				}
			}
		}
	})
}
