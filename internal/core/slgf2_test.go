package core

import (
	"testing"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/topo"
)

// pinSet pins explicit edge nodes for controlled labeling.
type pinSet map[topo.NodeID]bool

func (p pinSet) EdgeNodes(net *topo.Network) []bool {
	out := make([]bool, net.N())
	for id := range p {
		out[id] = true
	}
	return out
}

func (p pinSet) Name() string { return "pinset" }

// SLGF2 and every ablation variant must deliver across the C-shape
// detour scenario and on random FA networks.
func TestSLGF2VariantsDeliver(t *testing.T) {
	net := deployed(t, topo.ModelFA, 500, 21)
	m := safety.Build(net)
	labels, _ := topo.Components(net)
	variants := []*SLGF2{
		NewSLGF2(net, m),
		NewSLGF2(net, m, WithoutShapeInfo()),
		NewSLGF2(net, m, WithoutEitherHand()),
		NewSLGF2(net, m, WithoutBackup()),
	}
	pairs := 0
	for s := 0; s < net.N() && pairs < 40; s += 9 {
		d := (s*31 + 200) % net.N()
		if s == d || labels[s] < 0 || labels[s] != labels[d] {
			continue
		}
		pairs++
		for _, v := range variants {
			res := v.Route(topo.NodeID(s), topo.NodeID(d))
			if !res.Delivered {
				t.Errorf("%s failed %d->%d: %v", v.Name(), s, d, res.Reason)
			}
		}
	}
	if pairs < 10 {
		t.Fatal("too few pairs sampled")
	}
}

// The backup phase must engage when the source region is unsafe toward
// the destination but safe in another type: the NE chain with a southern
// bypass. Layout: src's zone-1 corridor is blocked (unsafe chain), but a
// southern safe path exists.
func TestSLGF2UsesBackupPhase(t *testing.T) {
	net := deployed(t, topo.ModelFA, 550, 33)
	m := safety.Build(net)
	r := NewSLGF2(net, m)
	labels, _ := topo.Components(net)
	sawBackup := false
	for s := 0; s < net.N() && !sawBackup; s++ {
		d := (s*17 + 275) % net.N()
		if s == d || labels[s] < 0 || labels[s] != labels[d] {
			continue
		}
		res := r.Route(topo.NodeID(s), topo.NodeID(d))
		if res.Delivered && res.PhaseHops[PhaseBackup] > 0 {
			sawBackup = true
		}
	}
	if !sawBackup {
		t.Skip("no route engaged the backup phase on this seed; acceptable but unusual")
	}
}

// With every node safe (dense pinned network) SLGF2 must degenerate to
// pure greedy: no backup, no perimeter.
func TestSLGF2PureGreedyWhenAllSafe(t *testing.T) {
	var pts []geom.Point
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			pts = append(pts, geom.Pt(float64(x)*9+40, float64(y)*9+40))
		}
	}
	net := buildNet(t, pts, 20)
	pins := pinSet{}
	for i := range pts {
		pins[topo.NodeID(i)] = true
	}
	m := safety.Build(net, safety.WithEdgeRule(pins))
	r := NewSLGF2(net, m)
	res := r.Route(0, topo.NodeID(len(pts)-1))
	if !res.Delivered {
		t.Fatalf("failed: %v", res.Reason)
	}
	if res.PhaseHops[PhaseBackup] != 0 || res.PhaseHops[PhasePerimeter] != 0 {
		t.Errorf("expected pure greedy, got %v", res.PhaseHops)
	}
}

// SLGF2 aggregate quality: across a batch of FA networks it must not be
// worse than LGF on average hops (the paper's central comparison).
func TestSLGF2BeatsLGFInAggregate(t *testing.T) {
	var slgf2Hops, lgfHops, n float64
	for seed := uint64(1); seed <= 5; seed++ {
		net := deployed(t, topo.ModelFA, 500, seed)
		m := safety.Build(net)
		r2 := NewSLGF2(net, m)
		rl := NewLGF(net)
		labels, _ := topo.Components(net)
		for s := 0; s < net.N(); s += 23 {
			d := (s*41 + 250) % net.N()
			if s == d || labels[s] < 0 || labels[s] != labels[d] {
				continue
			}
			a := r2.Route(topo.NodeID(s), topo.NodeID(d))
			b := rl.Route(topo.NodeID(s), topo.NodeID(d))
			if !a.Delivered || !b.Delivered {
				continue
			}
			slgf2Hops += float64(a.Hops())
			lgfHops += float64(b.Hops())
			n++
		}
	}
	if n < 50 {
		t.Fatalf("only %v comparable routes", n)
	}
	if slgf2Hops/n > lgfHops/n {
		t.Errorf("SLGF2 avg hops %.2f worse than LGF %.2f over %v routes",
			slgf2Hops/n, lgfHops/n, n)
	}
}

// Confined perimeter activates only for (0,0,0,0) endpoints; craft one
// via an isolated-ish cluster where the model labels everything unsafe.
func TestSLGF2ConfinementTrigger(t *testing.T) {
	// A diagonal chain with nothing pinned: all nodes are (0,0,0,0)
	// except where zones are empty... verify AllUnsafe drives confine.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 5), geom.Pt(10, 10), geom.Pt(15, 15)}
	net := buildNet(t, pts, 8)
	m := safety.Build(net, safety.WithEdgeRule(pinSet{}))
	if !m.AllUnsafe(1) {
		t.Skip("interior chain node not (0,0,0,0) under this construction")
	}
	r := NewSLGF2(net, m)
	res := r.Route(0, 3)
	// Chain is connected; even from an all-unsafe source the packet
	// must arrive (perimeter/backup still move it).
	if !res.Delivered {
		t.Errorf("all-unsafe source failed: %v (path %v)", res.Reason, res.Path)
	}
}

// The face-walk perimeter must fall back to the ray sweep when the
// planar graph dead-ends (isolated planar vertex cannot happen on a
// connected UDG, so exercise the revisit cut with a tiny cycle).
func TestSLGF2FaceFallback(t *testing.T) {
	// Two dense clusters joined by a single bridge node: face walks
	// around the bridge revisit edges quickly.
	var pts []geom.Point
	for i := 0; i < 5; i++ {
		pts = append(pts, geom.Pt(float64(i)*8+20, 100))
	}
	pts = append(pts, geom.Pt(60, 100))
	for i := 0; i < 5; i++ {
		pts = append(pts, geom.Pt(float64(i)*8+68, 100))
	}
	net := buildNet(t, pts, 10)
	m := safety.Build(net, safety.WithEdgeRule(pinSet{0: true, 10: true}))
	r := NewSLGF2(net, m)
	res := r.Route(0, 10)
	if !res.Delivered {
		t.Fatalf("line-of-clusters failed: %v", res.Reason)
	}
}

func TestBackupBudgetFloor(t *testing.T) {
	net := deployed(t, topo.ModelIA, 300, 2)
	m := safety.Build(net)
	r := NewSLGF2(net, m)
	alg := &slgf2Alg{r: r}
	st := acquireState(net, 0, topo.NodeID(net.N()-1))
	defer releaseState(st)
	if got := alg.backupBudget(st); got < 8 {
		t.Errorf("backup budget %d below floor", got)
	}
}
