package core

import (
	"testing"

	"github.com/straightpath/wasn/internal/topo"
)

// benchScanRoute measures full routes through either the packed
// structure-of-arrays scans or the straight-line reference scans, on
// the same FA-600 deployment as the root route benchmarks — the
// packed/reference delta is the isolated cost of the scan strategy,
// everything else being shared.
func benchScanRoute(b *testing.B, alg string, reference bool) {
	dep, err := topo.Deploy(topo.DefaultDeployConfig(topo.ModelFA, 600, 11))
	if err != nil {
		b.Fatal(err)
	}
	net := dep.Net
	var r Router
	switch alg {
	case "lgf":
		r = NewLGF(net)
	case "slgf2":
		m, _, _ := BuildSubstrates(net, true, false, false, nil)
		r = NewSLGF2(net, m)
	default:
		b.Fatalf("unknown alg %q", alg)
	}
	pairs := topo.RoutablePairs(net, 64, 60)
	if len(pairs) == 0 {
		b.Fatal("no routable pairs")
	}
	useReferenceScans = reference
	defer func() { useReferenceScans = false }()
	buf := make([]topo.NodeID, 0, 4*net.N())
	for _, p := range pairs {
		res := r.RouteInto(p[0], p[1], buf)
		buf = res.Path[:0]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		res := r.RouteInto(p[0], p[1], buf)
		buf = res.Path[:0]
	}
}

func BenchmarkScanPackedLGF(b *testing.B)      { benchScanRoute(b, "lgf", false) }
func BenchmarkScanReferenceLGF(b *testing.B)   { benchScanRoute(b, "lgf", true) }
func BenchmarkScanPackedSLGF2(b *testing.B)    { benchScanRoute(b, "slgf2", false) }
func BenchmarkScanReferenceSLGF2(b *testing.B) { benchScanRoute(b, "slgf2", true) }
