package core

import (
	"math"
	"sync"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/topo"
)

// state is the per-packet routing state shared by all algorithms.
//
// # Pooled-scratch contract
//
// States are pooled: drive acquires one from statePool, resets the
// per-route fields, and returns it when the route completes. The two
// maps (tried, failedHoles) are retained across routes and cleared on
// reuse, so their buckets are allocated once per pool entry and
// steady-state routing performs no map allocations. Nothing in a state
// may escape a Route call: algorithms must copy anything they want to
// keep into the Result before drive returns.
type state struct {
	net    *topo.Network
	src    topo.NodeID
	dst    topo.NodeID
	dstPos geom.Point

	cur  topo.NodeID
	prev topo.NodeID

	// tried records the successor pairs (u, v) already attempted by
	// detour sweeps, the paper's "untried node" bookkeeping, keyed
	// u<<32|v. Retained across routes (cleared on reuse); greedy-only
	// routes never touch it.
	tried map[uint64]struct{}

	// hand is the committed hand rule (HandNone until a detour starts).
	hand Hand

	// phase reports which phase selected the most recent hop.
	phase Phase

	// perimeterActive marks a persistent perimeter phase: it holds until
	// the packet reaches a node closer to the destination than the stuck
	// node that started it (§1: "...until it reaches a node that is
	// closer to the destination than that stuck node").
	perimeterActive bool

	// backupActive marks a persistent backup-path phase (SLGF2): safe
	// forwarding resumes only with a candidate strictly closer to the
	// destination than backupDist, which stops oscillation between the
	// unsafe area's rim and its interior. backupBudget bounds the phase
	// to a multiple of the unsafe-area perimeter ("the number of detours
	// is in proportional of the perimeter of the unsafe area"); at zero
	// the routing escalates to the perimeter phase.
	backupActive bool
	backupDist   float64
	backupBudget int

	// stuckDist is the distance-to-destination recorded when the current
	// detour began (the perimeter/detour exit criterion).
	stuckDist float64

	// detour state for boundary walks (GF).
	detourHole  int // hole id, -1 when none
	detourDir   int // +1 / -1 cycle direction
	detourSteps int
	// failedHoles records holes whose boundary walk did not help this
	// packet; they are not retried (one header bit per visited hole).
	// Retained across routes, cleared on reuse.
	failedHoles map[int]struct{}
}

var statePool = sync.Pool{New: func() any {
	return &state{
		tried:       make(map[uint64]struct{}),
		failedHoles: make(map[int]struct{}),
	}
}}

// acquireState returns a reset pooled state for one route.
func acquireState(net *topo.Network, src, dst topo.NodeID) *state {
	st := statePool.Get().(*state)
	clear(st.tried)
	clear(st.failedHoles)
	st.net = net
	st.src = src
	st.dst = dst
	st.dstPos = net.Pos(dst)
	st.cur = src
	st.prev = topo.NoNode
	st.hand = HandNone
	st.phase = 0
	st.perimeterActive = false
	st.backupActive = false
	st.backupDist = 0
	st.backupBudget = 0
	st.stuckDist = 0
	st.detourHole = -1
	st.detourDir = 0
	st.detourSteps = 0
	return st
}

func releaseState(st *state) {
	st.net = nil
	statePool.Put(st)
}

func triedKey(u, v topo.NodeID) uint64 {
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

func (st *state) markTried(u, v topo.NodeID) {
	st.tried[triedKey(u, v)] = struct{}{}
}

func (st *state) wasTried(u, v topo.NodeID) bool {
	_, ok := st.tried[triedKey(u, v)]
	return ok
}

// algorithm is the per-hop decision procedure each router implements.
type algorithm interface {
	// step returns the successor of st.cur, or topo.NoNode to drop. It
	// must set st.phase for accounting.
	step(st *state) topo.NodeID
}

// defaultPathCap sizes the path allocation of buffer-less Route calls;
// typical delivered routes on the paper's networks stay well under it.
const defaultPathCap = 64

// drive runs the per-hop loop for one packet, appending the traveled
// path into pathBuf[:0] (allocating a fresh buffer when pathBuf is nil).
// obs, when non-nil, receives every hop decision as it is made; the
// nil check is the only cost of the hook on unobserved routes.
func drive(net *topo.Network, alg algorithm, src, dst topo.NodeID, ttlFactor int, pathBuf []topo.NodeID, obs HopObserver) Result {
	var res Result
	if !net.Alive(src) || !net.Alive(dst) {
		res.Reason = DropNoCandidate
		// Hand the caller's buffer back (empty) so the reuse idiom
		// `buf = res.Path[:0]` survives routes to dead endpoints.
		res.Path = pathBuf[:0]
		return res
	}
	if ttlFactor <= 0 {
		ttlFactor = DefaultTTLFactor
	}
	ttl := ttlFactor * net.N()

	st := acquireState(net, src, dst)
	defer releaseState(st)
	path := pathBuf
	if path == nil {
		path = make([]topo.NodeID, 0, defaultPathCap)
	} else {
		path = path[:0]
	}
	path = append(path, src)
	for st.cur != dst {
		if len(path)-1 >= ttl {
			res.Reason = DropTTL
			res.Path = path
			return res
		}
		next := alg.step(st)
		if next == topo.NoNode {
			res.Reason = DropNoCandidate
			res.Path = path
			return res
		}
		res.Length += net.Dist(st.cur, next)
		res.PhaseHops[st.phase]++
		if obs != nil {
			obs.ObserveHop(len(path), st.cur, next, st.phase)
		}
		st.prev = st.cur
		st.cur = next
		path = append(path, next)
	}
	res.Delivered = true
	res.Path = path
	return res
}

// neighborOfDst reports the trivial last hop: d ∈ N(u).
func neighborOfDst(st *state) bool {
	return st.net.InRange(st.cur, st.dst)
}

// enterPerimeter starts a persistent perimeter phase at the current
// (stuck) node.
func (st *state) enterPerimeter() {
	st.perimeterActive = true
	st.stuckDist = geom.Dist(st.net.Pos(st.cur), st.dstPos)
}

// perimeterDone reports whether an active perimeter phase may end: the
// packet sits closer to the destination than the stuck node was.
func (st *state) perimeterDone() bool {
	return geom.Dist(st.net.Pos(st.cur), st.dstPos) < st.stuckDist
}

// greedyInRequestZone returns the neighbor of u inside Z(u, d) closest to
// the destination, or topo.NoNode. filter, when non-nil, restricts
// candidates (used by the safety-based algorithms); prefer, when non-nil,
// supersedes: if any candidate satisfies it, only those are considered.
//
// The filter/prefer funcs are only invoked, never stored, so closures
// passed here stay on the caller's stack (no per-hop allocation).
func greedyInRequestZone(st *state, filter, prefer func(v topo.NodeID) bool) topo.NodeID {
	up := st.net.Pos(st.cur)
	best := topo.NoNode
	bestPreferred := false
	bestDist := math.MaxFloat64
	for _, v := range st.net.Neighbors(st.cur) {
		pv := st.net.Pos(v)
		if !geom.InRequestZone(up, st.dstPos, pv) {
			continue
		}
		if filter != nil && !filter(v) {
			continue
		}
		pref := prefer == nil || prefer(v)
		d := geom.Dist2(pv, st.dstPos)
		// Preferred candidates strictly dominate non-preferred ones.
		switch {
		case pref && !bestPreferred:
			best, bestDist, bestPreferred = v, d, true
		case pref == bestPreferred && d < bestDist:
			best, bestDist = v, d
		}
	}
	return best
}

// greedyInForwardingZone returns the neighbor of u inside the forwarding
// quadrant Q_k(u) toward the destination that is strictly closer to it,
// minimizing that distance. filter/prefer behave as in
// greedyInRequestZone.
//
// The safety-based routings use the quadrant, not the thin request-zone
// rectangle: the safety statuses (Definition 1) and Theorem 1's guarantee
// are defined on forwarding zones Q_i, and a near-axis-aligned
// destination makes the rectangle arbitrarily thin, blocking forwardings
// the information model has proven safe. The progress requirement keeps
// the advance loop-free where the quadrant alone would allow overshoot.
func greedyInForwardingZone(st *state, filter, prefer func(v topo.NodeID) bool) topo.NodeID {
	up := st.net.Pos(st.cur)
	zone := geom.ZoneTypeOf(up, st.dstPos)
	limit := geom.Dist2(up, st.dstPos)
	best := topo.NoNode
	bestPreferred := false
	bestDist := limit
	for _, v := range st.net.Neighbors(st.cur) {
		pv := st.net.Pos(v)
		if !geom.InForwardingZone(up, zone, pv) {
			continue
		}
		if filter != nil && !filter(v) {
			continue
		}
		d := geom.Dist2(pv, st.dstPos)
		if d >= limit {
			continue // must make progress
		}
		pref := prefer == nil || prefer(v)
		switch {
		case pref && !bestPreferred:
			best, bestDist, bestPreferred = v, d, true
		case pref == bestPreferred && d < bestDist:
			best, bestDist = v, d
		}
	}
	return best
}

// greedyClosest returns the classic GF successor: the neighbor strictly
// closer to the destination than u, minimizing that distance.
func greedyClosest(st *state) topo.NodeID {
	up := st.net.Pos(st.cur)
	limit := geom.Dist2(up, st.dstPos)
	best := topo.NoNode
	bestDist := limit
	for _, v := range st.net.Neighbors(st.cur) {
		d := geom.Dist2(st.net.Pos(v), st.dstPos)
		if d < bestDist {
			best, bestDist = v, d
		}
	}
	return best
}

// sweepUntried rotates the ray from u toward the destination in the
// hand's direction and returns the first untried neighbor accepted by
// filter; prefer supersedes sweep order as in greedyInRequestZone. The
// returned node is marked tried. topo.NoNode when the sweep is exhausted.
func sweepUntried(st *state, hand Hand, filter, prefer func(v topo.NodeID) bool) topo.NodeID {
	best, _ := sweepPeek(st, hand, filter, prefer)
	if best != topo.NoNode {
		st.markTried(st.cur, best)
	}
	return best
}

// sweepPeek is sweepUntried without the tried-marking side effect; it
// also reports the winning candidate's sweep rotation, which the
// either-hand rule uses to compare the two hands at detour entry.
func sweepPeek(st *state, hand Hand, filter, prefer func(v topo.NodeID) bool) (topo.NodeID, float64) {
	up := st.net.Pos(st.cur)
	from := geom.Angle(up, st.dstPos)
	row := st.net.AdjacencyRow(st.cur)
	angs := st.net.AdjacencyAngles(st.cur)
	checkAlive := st.net.DeadCount() > 0
	best := topo.NoNode
	bestPreferred := false
	bestDelta := math.MaxFloat64
	for j, v := range row {
		if checkAlive && !st.net.Alive(v) {
			continue
		}
		if st.wasTried(st.cur, v) {
			continue
		}
		if filter != nil && !filter(v) {
			continue
		}
		pref := prefer == nil || prefer(v)
		delta := hand.sweepDelta(from, angs[j])
		switch {
		case pref && !bestPreferred:
			best, bestDelta, bestPreferred = v, delta, true
		case pref == bestPreferred && delta < bestDelta:
			best, bestDelta = v, delta
		}
	}
	return best, bestDelta
}
