package core

import (
	"math"
	"sync"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/topo"
)

// state is the per-packet routing state shared by all algorithms.
//
// # Pooled-scratch contract
//
// States are pooled: drive acquires one from statePool, resets the
// per-route fields, and returns it when the route completes. The tried
// stamps and the failedHoles map are retained across routes (the stamps
// are invalidated by a generation bump, the map cleared on reuse), so
// steady-state routing performs no allocations. Nothing in a state may
// escape a Route call: algorithms must copy anything they want to keep
// into the Result before drive returns.
type state struct {
	net    *topo.Network
	src    topo.NodeID
	dst    topo.NodeID
	dstPos geom.Point

	cur  topo.NodeID
	prev topo.NodeID

	// tried records the successor edges already attempted by detour
	// sweeps — the paper's "untried node" bookkeeping — as per-CSR-slot
	// generation stamps: the directed edge in global slot s has been
	// tried this route iff tried[s] == triedGen. Clearing between routes
	// is an O(1) generation bump; the array is reallocated only when a
	// pooled state meets a larger network. Greedy-only routes never
	// touch it.
	tried    []uint32
	triedGen uint32

	// hand is the committed hand rule (HandNone until a detour starts).
	hand Hand

	// phase reports which phase selected the most recent hop.
	phase Phase

	// perimeterActive marks a persistent perimeter phase: it holds until
	// the packet reaches a node closer to the destination than the stuck
	// node that started it (§1: "...until it reaches a node that is
	// closer to the destination than that stuck node").
	perimeterActive bool

	// backupActive marks a persistent backup-path phase (SLGF2): safe
	// forwarding resumes only with a candidate strictly closer to the
	// destination than backupDist, which stops oscillation between the
	// unsafe area's rim and its interior. backupBudget bounds the phase
	// to a multiple of the unsafe-area perimeter ("the number of detours
	// is in proportional of the perimeter of the unsafe area"); at zero
	// the routing escalates to the perimeter phase.
	backupActive bool
	backupDist   float64
	backupBudget int

	// stuckDist is the distance-to-destination recorded when the current
	// detour began (the perimeter/detour exit criterion).
	stuckDist float64

	// detour state for boundary walks (GF).
	detourHole  int // hole id, -1 when none
	detourDir   int // +1 / -1 cycle direction
	detourSteps int
	// failedHoles records holes whose boundary walk did not help this
	// packet; they are not retried (one header bit per visited hole).
	// Retained across routes, cleared on reuse.
	failedHoles map[int]struct{}
}

var statePool = sync.Pool{New: func() any {
	return &state{
		failedHoles: make(map[int]struct{}),
	}
}}

// acquireState returns a reset pooled state for one route.
func acquireState(net *topo.Network, src, dst topo.NodeID) *state {
	st := statePool.Get().(*state)
	clear(st.failedHoles)
	if n := net.AdjSlots(); len(st.tried) < n {
		st.tried = make([]uint32, n)
		st.triedGen = 0
	}
	st.triedGen++
	if st.triedGen == 0 {
		// The generation counter wrapped: stale marks could alias the
		// fresh generation, so pay one clear and restart.
		clear(st.tried)
		st.triedGen = 1
	}
	st.net = net
	st.src = src
	st.dst = dst
	st.dstPos = net.Pos(dst)
	st.cur = src
	st.prev = topo.NoNode
	st.hand = HandNone
	st.phase = 0
	st.perimeterActive = false
	st.backupActive = false
	st.backupDist = 0
	st.backupBudget = 0
	st.stuckDist = 0
	st.detourHole = -1
	st.detourDir = 0
	st.detourSteps = 0
	return st
}

func releaseState(st *state) {
	st.net = nil
	statePool.Put(st)
}

// algorithm is the per-hop decision procedure each router implements.
type algorithm interface {
	// step returns the successor of st.cur, or topo.NoNode to drop. It
	// must set st.phase for accounting.
	step(st *state) topo.NodeID
}

// defaultPathCap sizes the path allocation of buffer-less Route calls;
// typical delivered routes on the paper's networks stay well under it.
const defaultPathCap = 64

// drive runs the per-hop loop for one packet, appending the traveled
// path into pathBuf[:0] (allocating a fresh buffer when pathBuf is nil).
// obs, when non-nil, receives every hop decision as it is made; the
// nil check is the only cost of the hook on unobserved routes.
func drive(net *topo.Network, alg algorithm, src, dst topo.NodeID, ttlFactor int, pathBuf []topo.NodeID, obs HopObserver) Result {
	var res Result
	if !net.Alive(src) || !net.Alive(dst) {
		res.Reason = DropNoCandidate
		// Hand the caller's buffer back (empty) so the reuse idiom
		// `buf = res.Path[:0]` survives routes to dead endpoints.
		res.Path = pathBuf[:0]
		return res
	}
	if ttlFactor <= 0 {
		ttlFactor = DefaultTTLFactor
	}
	ttl := ttlFactor * net.N()

	st := acquireState(net, src, dst)
	defer releaseState(st)
	path := pathBuf
	if path == nil {
		path = make([]topo.NodeID, 0, defaultPathCap)
	} else {
		path = path[:0]
	}
	path = append(path, src)
	for st.cur != dst {
		if len(path)-1 >= ttl {
			res.Reason = DropTTL
			res.Path = path
			return res
		}
		next := alg.step(st)
		if next == topo.NoNode {
			res.Reason = DropNoCandidate
			res.Path = path
			return res
		}
		res.Length += net.Dist(st.cur, next)
		res.PhaseHops[st.phase]++
		if obs != nil {
			obs.ObserveHop(len(path), st.cur, next, st.phase)
		}
		st.prev = st.cur
		st.cur = next
		path = append(path, next)
	}
	res.Delivered = true
	res.Path = path
	return res
}

// neighborOfDst reports the trivial last hop: d ∈ N(u).
func neighborOfDst(st *state) bool {
	return st.net.InRange(st.cur, st.dst)
}

// enterPerimeter starts a persistent perimeter phase at the current
// (stuck) node.
func (st *state) enterPerimeter() {
	st.perimeterActive = true
	st.stuckDist = geom.Dist(st.net.Pos(st.cur), st.dstPos)
}

// perimeterDone reports whether an active perimeter phase may end: the
// packet sits closer to the destination than the stuck node was.
func (st *state) perimeterDone() bool {
	return geom.Dist(st.net.Pos(st.cur), st.dstPos) < st.stuckDist
}

// scanFilter is the pre-resolved candidate predicate of the safety-based
// algorithms. The closures the routers used to pass into the scans have
// been flattened into this value struct so the inner loops test plain
// data — a byte load against the safety-mask export instead of a
// closure call into the model — and stay free of indirect calls.
//
// The zero value accepts every candidate (the nil filter of old).
type scanFilter struct {
	// masks is the safety model's packed per-node status export
	// (safety.Model.SafeMasks: bit z-1 of masks[v] is S_z(v)); nil means
	// no safety requirement.
	masks []uint8
	// anySafe switches the masks test from "safe toward the destination"
	// (the zone bit of Z(v, d), with the position-equals-destination
	// escape of SafeToward) to "safe in any type" (mask != 0), the
	// backup sweep's rule.
	anySafe bool
	// bounded additionally requires candidates strictly closer to the
	// destination than maxDist — the backup-path progress rule. The
	// comparison uses geom.Dist (math.Hypot), the exact arithmetic of
	// the closure it replaces, so route outputs stay bit-identical.
	bounded bool
	maxDist float64
}

// active reports whether the filter constrains anything.
func (f *scanFilter) active() bool { return f.masks != nil || f.bounded }

// accept is the straight-line evaluation of the filter on one candidate,
// used by the reference scans (and by the packed scans' rare slow
// paths). dst is the packet destination, pv the candidate's position.
func (f *scanFilter) accept(dst geom.Point, v topo.NodeID, pv geom.Point) bool {
	if f.masks != nil {
		if f.anySafe {
			if f.masks[v] == 0 {
				return false
			}
		} else if pv != dst && f.masks[v]&(1<<uint(geom.ZoneTypeOf(pv, dst)-1)) == 0 {
			return false
		}
	}
	if f.bounded && geom.Dist(pv, dst) >= f.maxDist {
		return false
	}
	return true
}

// zoneBit returns ZoneTypeOf(pv, d) - 1 as a shift count from the deltas
// zdx = d.X - pv.X, zdy = d.Y - pv.Y (dx >= 0 counts East, dy >= 0
// North — exactly the ZoneTypeOf boundary convention).
func zoneBit(zdx, zdy float64) uint {
	if zdx >= 0 {
		if zdy >= 0 {
			return 0
		}
		return 3
	}
	if zdy >= 0 {
		return 1
	}
	return 2
}

// useReferenceScans routes every candidate scan through the straight-line
// reference implementations instead of the packed structure-of-arrays
// sweeps. Tests flip it (serially — it is not synchronized) to pin the
// two code paths to bit-identical route outputs; production code never
// touches it.
var useReferenceScans bool

// greedyInRequestZone returns the neighbor of u inside Z(u, d) closest to
// the destination, or topo.NoNode. f restricts candidates (used by the
// safety-based algorithms); prefer, when non-nil, supersedes: if any
// candidate satisfies it, only those are considered.
//
// The hot path scans the CSR row's packed coordinate arrays four lanes
// at a time: the rectangle test, the strict-progress compare, and the
// liveness-bitset test are all straight-line float/word operations, and
// the lane selections re-test d < bestDist in ascending-slot order so
// the first strict minimum wins exactly as in the reference scan.
func greedyInRequestZone(st *state, f scanFilter, prefer func(v topo.NodeID) bool) topo.NodeID {
	if useReferenceScans {
		return refGreedyInRequestZone(st, f, prefer)
	}
	up := st.net.Pos(st.cur)
	ux, uy := up.X, up.Y
	dx, dy := st.dstPos.X, st.dstPos.Y
	loX, hiX := ux, dx
	if loX > hiX {
		loX, hiX = hiX, loX
	}
	loY, hiY := uy, dy
	if loY > hiY {
		loY, hiY = hiY, loY
	}
	row := st.net.AdjacencyRow(st.cur)
	n := len(row)
	xs, ys := st.net.AdjacencyXY(st.cur)
	xs = xs[:n]
	ys = ys[:n]
	best := topo.NoNode
	bestDist := math.MaxFloat64
	if prefer == nil && !f.bounded && !f.anySafe {
		masks := f.masks
		hasMasks := masks != nil
		checkAlive := st.net.DeadCount() > 0
		alive := st.net.AliveBits()
		j := 0
		for ; j+4 <= n; j += 4 {
			x0, y0 := xs[j], ys[j]
			x1, y1 := xs[j+1], ys[j+1]
			x2, y2 := xs[j+2], ys[j+2]
			x3, y3 := xs[j+3], ys[j+3]
			d0 := (x0-dx)*(x0-dx) + (y0-dy)*(y0-dy)
			d1 := (x1-dx)*(x1-dx) + (y1-dy)*(y1-dy)
			d2 := (x2-dx)*(x2-dx) + (y2-dy)*(y2-dy)
			d3 := (x3-dx)*(x3-dx) + (y3-dy)*(y3-dy)
			if v := row[j]; d0 < bestDist &&
				x0 >= loX && x0 <= hiX && y0 >= loY && y0 <= hiY && !(x0 == ux && y0 == uy) &&
				(!checkAlive || alive[v>>6]&(1<<(uint(v)&63)) != 0) &&
				(!hasMasks || masks[v]&(1<<zoneBit(dx-x0, dy-y0)) != 0 || (x0 == dx && y0 == dy)) {
				best, bestDist = v, d0
			}
			if v := row[j+1]; d1 < bestDist &&
				x1 >= loX && x1 <= hiX && y1 >= loY && y1 <= hiY && !(x1 == ux && y1 == uy) &&
				(!checkAlive || alive[v>>6]&(1<<(uint(v)&63)) != 0) &&
				(!hasMasks || masks[v]&(1<<zoneBit(dx-x1, dy-y1)) != 0 || (x1 == dx && y1 == dy)) {
				best, bestDist = v, d1
			}
			if v := row[j+2]; d2 < bestDist &&
				x2 >= loX && x2 <= hiX && y2 >= loY && y2 <= hiY && !(x2 == ux && y2 == uy) &&
				(!checkAlive || alive[v>>6]&(1<<(uint(v)&63)) != 0) &&
				(!hasMasks || masks[v]&(1<<zoneBit(dx-x2, dy-y2)) != 0 || (x2 == dx && y2 == dy)) {
				best, bestDist = v, d2
			}
			if v := row[j+3]; d3 < bestDist &&
				x3 >= loX && x3 <= hiX && y3 >= loY && y3 <= hiY && !(x3 == ux && y3 == uy) &&
				(!checkAlive || alive[v>>6]&(1<<(uint(v)&63)) != 0) &&
				(!hasMasks || masks[v]&(1<<zoneBit(dx-x3, dy-y3)) != 0 || (x3 == dx && y3 == dy)) {
				best, bestDist = v, d3
			}
		}
		for ; j < n; j++ {
			x, y := xs[j], ys[j]
			d := (x-dx)*(x-dx) + (y-dy)*(y-dy)
			if v := row[j]; d < bestDist &&
				x >= loX && x <= hiX && y >= loY && y <= hiY && !(x == ux && y == uy) &&
				(!checkAlive || alive[v>>6]&(1<<(uint(v)&63)) != 0) &&
				(!hasMasks || masks[v]&(1<<zoneBit(dx-x, dy-y)) != 0 || (x == dx && y == dy)) {
				best, bestDist = v, d
			}
		}
		return best
	}
	// Slow path: a prefer class or a distance bound is in play (rare —
	// SLGF2 with blocking estimates). Single pass with the dual-class
	// selection: preferred candidates strictly dominate non-preferred.
	checkAlive := st.net.DeadCount() > 0
	alive := st.net.AliveBits()
	bestPreferred := false
	for j, v := range row {
		if checkAlive && alive[v>>6]&(1<<(uint(v)&63)) == 0 {
			continue
		}
		x, y := xs[j], ys[j]
		if x < loX || x > hiX || y < loY || y > hiY || (x == ux && y == uy) {
			continue
		}
		if !f.accept(st.dstPos, v, geom.Pt(x, y)) {
			continue
		}
		pref := prefer == nil || prefer(v)
		d := (x-dx)*(x-dx) + (y-dy)*(y-dy)
		switch {
		case pref && !bestPreferred:
			best, bestDist, bestPreferred = v, d, true
		case pref == bestPreferred && d < bestDist:
			best, bestDist = v, d
		}
	}
	return best
}

// greedyInForwardingZone returns the neighbor of u inside the forwarding
// quadrant Q_k(u) toward the destination that is strictly closer to it,
// minimizing that distance. f/prefer behave as in greedyInRequestZone.
//
// The safety-based routings use the quadrant, not the thin request-zone
// rectangle: the safety statuses (Definition 1) and Theorem 1's guarantee
// are defined on forwarding zones Q_i, and a near-axis-aligned
// destination makes the rectangle arbitrarily thin, blocking forwardings
// the information model has proven safe. The progress requirement keeps
// the advance loop-free where the quadrant alone would allow overshoot.
//
// The quadrant membership test collapses to two sign comparisons per
// candidate (same East/North boundary convention as ZoneTypeOf), and a
// candidate at u's own position is excluded by the progress requirement
// (its distance equals the limit), so no explicit equality test is
// needed on the hot path.
func greedyInForwardingZone(st *state, f scanFilter, prefer func(v topo.NodeID) bool) topo.NodeID {
	if useReferenceScans {
		return refGreedyInForwardingZone(st, f, prefer)
	}
	up := st.net.Pos(st.cur)
	ux, uy := up.X, up.Y
	dx, dy := st.dstPos.X, st.dstPos.Y
	ex := dx >= ux
	ey := dy >= uy
	ldx := ux - dx
	ldy := uy - dy
	limit := ldx*ldx + ldy*ldy
	row := st.net.AdjacencyRow(st.cur)
	n := len(row)
	xs, ys := st.net.AdjacencyXY(st.cur)
	xs = xs[:n]
	ys = ys[:n]
	best := topo.NoNode
	bestDist := limit
	if prefer == nil && !f.bounded && !f.anySafe {
		masks := f.masks
		hasMasks := masks != nil
		checkAlive := st.net.DeadCount() > 0
		alive := st.net.AliveBits()
		j := 0
		for ; j+4 <= n; j += 4 {
			x0, y0 := xs[j], ys[j]
			x1, y1 := xs[j+1], ys[j+1]
			x2, y2 := xs[j+2], ys[j+2]
			x3, y3 := xs[j+3], ys[j+3]
			d0 := (x0-dx)*(x0-dx) + (y0-dy)*(y0-dy)
			d1 := (x1-dx)*(x1-dx) + (y1-dy)*(y1-dy)
			d2 := (x2-dx)*(x2-dx) + (y2-dy)*(y2-dy)
			d3 := (x3-dx)*(x3-dx) + (y3-dy)*(y3-dy)
			if v := row[j]; d0 < bestDist && (x0 >= ux) == ex && (y0 >= uy) == ey &&
				(!checkAlive || alive[v>>6]&(1<<(uint(v)&63)) != 0) &&
				(!hasMasks || masks[v]&(1<<zoneBit(dx-x0, dy-y0)) != 0 || (x0 == dx && y0 == dy)) {
				best, bestDist = v, d0
			}
			if v := row[j+1]; d1 < bestDist && (x1 >= ux) == ex && (y1 >= uy) == ey &&
				(!checkAlive || alive[v>>6]&(1<<(uint(v)&63)) != 0) &&
				(!hasMasks || masks[v]&(1<<zoneBit(dx-x1, dy-y1)) != 0 || (x1 == dx && y1 == dy)) {
				best, bestDist = v, d1
			}
			if v := row[j+2]; d2 < bestDist && (x2 >= ux) == ex && (y2 >= uy) == ey &&
				(!checkAlive || alive[v>>6]&(1<<(uint(v)&63)) != 0) &&
				(!hasMasks || masks[v]&(1<<zoneBit(dx-x2, dy-y2)) != 0 || (x2 == dx && y2 == dy)) {
				best, bestDist = v, d2
			}
			if v := row[j+3]; d3 < bestDist && (x3 >= ux) == ex && (y3 >= uy) == ey &&
				(!checkAlive || alive[v>>6]&(1<<(uint(v)&63)) != 0) &&
				(!hasMasks || masks[v]&(1<<zoneBit(dx-x3, dy-y3)) != 0 || (x3 == dx && y3 == dy)) {
				best, bestDist = v, d3
			}
		}
		for ; j < n; j++ {
			x, y := xs[j], ys[j]
			d := (x-dx)*(x-dx) + (y-dy)*(y-dy)
			if v := row[j]; d < bestDist && (x >= ux) == ex && (y >= uy) == ey &&
				(!checkAlive || alive[v>>6]&(1<<(uint(v)&63)) != 0) &&
				(!hasMasks || masks[v]&(1<<zoneBit(dx-x, dy-y)) != 0 || (x == dx && y == dy)) {
				best, bestDist = v, d
			}
		}
		return best
	}
	// Slow path: prefer class or backup distance bound (the Hypot
	// compare) in play.
	checkAlive := st.net.DeadCount() > 0
	alive := st.net.AliveBits()
	bestPreferred := false
	for j, v := range row {
		if checkAlive && alive[v>>6]&(1<<(uint(v)&63)) == 0 {
			continue
		}
		x, y := xs[j], ys[j]
		if (x >= ux) != ex || (y >= uy) != ey {
			continue
		}
		d := (x-dx)*(x-dx) + (y-dy)*(y-dy)
		if d >= limit {
			continue // must make progress
		}
		if !f.accept(st.dstPos, v, geom.Pt(x, y)) {
			continue
		}
		pref := prefer == nil || prefer(v)
		switch {
		case pref && !bestPreferred:
			best, bestDist, bestPreferred = v, d, true
		case pref == bestPreferred && d < bestDist:
			best, bestDist = v, d
		}
	}
	return best
}

// greedyClosest returns the classic GF successor: the neighbor strictly
// closer to the destination than u, minimizing that distance.
func greedyClosest(st *state) topo.NodeID {
	if useReferenceScans {
		return refGreedyClosest(st)
	}
	up := st.net.Pos(st.cur)
	dx, dy := st.dstPos.X, st.dstPos.Y
	ldx := up.X - dx
	ldy := up.Y - dy
	limit := ldx*ldx + ldy*ldy
	row := st.net.AdjacencyRow(st.cur)
	n := len(row)
	xs, ys := st.net.AdjacencyXY(st.cur)
	xs = xs[:n]
	ys = ys[:n]
	checkAlive := st.net.DeadCount() > 0
	alive := st.net.AliveBits()
	best := topo.NoNode
	bestDist := limit
	j := 0
	for ; j+4 <= n; j += 4 {
		x0, y0 := xs[j], ys[j]
		x1, y1 := xs[j+1], ys[j+1]
		x2, y2 := xs[j+2], ys[j+2]
		x3, y3 := xs[j+3], ys[j+3]
		d0 := (x0-dx)*(x0-dx) + (y0-dy)*(y0-dy)
		d1 := (x1-dx)*(x1-dx) + (y1-dy)*(y1-dy)
		d2 := (x2-dx)*(x2-dx) + (y2-dy)*(y2-dy)
		d3 := (x3-dx)*(x3-dx) + (y3-dy)*(y3-dy)
		if v := row[j]; d0 < bestDist && (!checkAlive || alive[v>>6]&(1<<(uint(v)&63)) != 0) {
			best, bestDist = v, d0
		}
		if v := row[j+1]; d1 < bestDist && (!checkAlive || alive[v>>6]&(1<<(uint(v)&63)) != 0) {
			best, bestDist = v, d1
		}
		if v := row[j+2]; d2 < bestDist && (!checkAlive || alive[v>>6]&(1<<(uint(v)&63)) != 0) {
			best, bestDist = v, d2
		}
		if v := row[j+3]; d3 < bestDist && (!checkAlive || alive[v>>6]&(1<<(uint(v)&63)) != 0) {
			best, bestDist = v, d3
		}
	}
	for ; j < n; j++ {
		x, y := xs[j], ys[j]
		d := (x-dx)*(x-dx) + (y-dy)*(y-dy)
		if v := row[j]; d < bestDist && (!checkAlive || alive[v>>6]&(1<<(uint(v)&63)) != 0) {
			best, bestDist = v, d
		}
	}
	return best
}

// sweepUntried rotates the ray from u toward the destination in the
// hand's direction and returns the first untried neighbor accepted by
// f; a non-nil confine rectangle acts as the superseding preference
// (candidates inside it dominate), the cautious perimeter's confinement.
// The returned node is marked tried. topo.NoNode when the sweep is
// exhausted.
func sweepUntried(st *state, hand Hand, f scanFilter, confine *geom.Rect) topo.NodeID {
	best, _, slot := sweepScan(st, hand, f, confine)
	if best != topo.NoNode {
		st.tried[slot] = st.triedGen
	}
	return best
}

// sweepPeek is sweepUntried without the tried-marking side effect; it
// also reports the winning candidate's sweep rotation, which the
// either-hand rule uses to compare the two hands at detour entry.
func sweepPeek(st *state, hand Hand, f scanFilter, confine *geom.Rect) (topo.NodeID, float64) {
	best, delta, _ := sweepScan(st, hand, f, confine)
	return best, delta
}

// sweepScan is the shared sweep kernel: it returns the winning
// candidate, its rotation, and its global CSR slot (for tried-marking).
// The tried test is a generation-stamp compare against the row's slice
// of st.tried, and the liveness/safety tests run on the bitset and mask
// exports — no per-candidate calls leave the loop.
func sweepScan(st *state, hand Hand, f scanFilter, confine *geom.Rect) (topo.NodeID, float64, int) {
	if useReferenceScans {
		return refSweepScan(st, hand, f, confine)
	}
	up := st.net.Pos(st.cur)
	from := geom.Angle(up, st.dstPos)
	dx, dy := st.dstPos.X, st.dstPos.Y
	row := st.net.AdjacencyRow(st.cur)
	n := len(row)
	angs := st.net.AdjacencyAngles(st.cur)[:n]
	xs, ys := st.net.AdjacencyXY(st.cur)
	xs = xs[:n]
	ys = ys[:n]
	base := st.net.AdjOffset(st.cur)
	marks := st.tried[base : base+n]
	gen := st.triedGen
	checkAlive := st.net.DeadCount() > 0
	alive := st.net.AliveBits()
	masks := f.masks
	best := topo.NoNode
	bestPreferred := false
	bestDelta := math.MaxFloat64
	bestSlot := -1
	for j, v := range row {
		if marks[j] == gen {
			continue
		}
		if checkAlive && alive[v>>6]&(1<<(uint(v)&63)) == 0 {
			continue
		}
		x, y := xs[j], ys[j]
		if masks != nil {
			if f.anySafe {
				if masks[v] == 0 {
					continue
				}
			} else if !(x == dx && y == dy) && masks[v]&(1<<zoneBit(dx-x, dy-y)) == 0 {
				continue
			}
		}
		if f.bounded && math.Hypot(x-dx, y-dy) >= f.maxDist {
			continue
		}
		pref := confine == nil || confine.Contains(geom.Pt(x, y))
		delta := hand.sweepDelta(from, angs[j])
		switch {
		case pref && !bestPreferred:
			best, bestDelta, bestPreferred, bestSlot = v, delta, true, base+j
		case pref == bestPreferred && delta < bestDelta:
			best, bestDelta, bestSlot = v, delta, base+j
		}
	}
	return best, bestDelta, bestSlot
}

// ---------------------------------------------------------------------
// Reference scans.
//
// These are the straight-line implementations the packed scans above
// replaced, kept as executable documentation and as the oracle of the
// differential route tests (useReferenceScans): same semantics, one
// candidate at a time, no unrolling, no bitset shortcuts. Any change to
// selection semantics must land in both halves or the differential
// tests fail.

func refGreedyInRequestZone(st *state, f scanFilter, prefer func(v topo.NodeID) bool) topo.NodeID {
	up := st.net.Pos(st.cur)
	best := topo.NoNode
	bestPreferred := false
	bestDist := math.MaxFloat64
	for _, v := range st.net.Neighbors(st.cur) {
		pv := st.net.Pos(v)
		if !geom.InRequestZone(up, st.dstPos, pv) {
			continue
		}
		if !f.accept(st.dstPos, v, pv) {
			continue
		}
		pref := prefer == nil || prefer(v)
		d := geom.Dist2(pv, st.dstPos)
		// Preferred candidates strictly dominate non-preferred ones.
		switch {
		case pref && !bestPreferred:
			best, bestDist, bestPreferred = v, d, true
		case pref == bestPreferred && d < bestDist:
			best, bestDist = v, d
		}
	}
	return best
}

func refGreedyInForwardingZone(st *state, f scanFilter, prefer func(v topo.NodeID) bool) topo.NodeID {
	up := st.net.Pos(st.cur)
	zone := geom.ZoneTypeOf(up, st.dstPos)
	limit := geom.Dist2(up, st.dstPos)
	best := topo.NoNode
	bestPreferred := false
	bestDist := limit
	for _, v := range st.net.Neighbors(st.cur) {
		pv := st.net.Pos(v)
		if !geom.InForwardingZone(up, zone, pv) {
			continue
		}
		d := geom.Dist2(pv, st.dstPos)
		if d >= limit {
			continue // must make progress
		}
		if !f.accept(st.dstPos, v, pv) {
			continue
		}
		pref := prefer == nil || prefer(v)
		switch {
		case pref && !bestPreferred:
			best, bestDist, bestPreferred = v, d, true
		case pref == bestPreferred && d < bestDist:
			best, bestDist = v, d
		}
	}
	return best
}

func refGreedyClosest(st *state) topo.NodeID {
	up := st.net.Pos(st.cur)
	limit := geom.Dist2(up, st.dstPos)
	best := topo.NoNode
	bestDist := limit
	for _, v := range st.net.Neighbors(st.cur) {
		d := geom.Dist2(st.net.Pos(v), st.dstPos)
		if d < bestDist {
			best, bestDist = v, d
		}
	}
	return best
}

func refSweepScan(st *state, hand Hand, f scanFilter, confine *geom.Rect) (topo.NodeID, float64, int) {
	up := st.net.Pos(st.cur)
	from := geom.Angle(up, st.dstPos)
	row := st.net.AdjacencyRow(st.cur)
	angs := st.net.AdjacencyAngles(st.cur)
	base := st.net.AdjOffset(st.cur)
	checkAlive := st.net.DeadCount() > 0
	best := topo.NoNode
	bestPreferred := false
	bestDelta := math.MaxFloat64
	bestSlot := -1
	for j, v := range row {
		if checkAlive && !st.net.Alive(v) {
			continue
		}
		if st.tried[base+j] == st.triedGen {
			continue
		}
		pv := st.net.Pos(v)
		if !f.accept(st.dstPos, v, pv) {
			continue
		}
		pref := confine == nil || confine.Contains(pv)
		delta := hand.sweepDelta(from, angs[j])
		switch {
		case pref && !bestPreferred:
			best, bestDelta, bestPreferred, bestSlot = v, delta, true, base+j
		case pref == bestPreferred && delta < bestDelta:
			best, bestDelta, bestSlot = v, delta, base+j
		}
	}
	return best, bestDelta, bestSlot
}
