package core

import (
	"math"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/topo"
)

// state is the per-packet routing state shared by all algorithms.
type state struct {
	net    *topo.Network
	src    topo.NodeID
	dst    topo.NodeID
	dstPos geom.Point

	cur  topo.NodeID
	prev topo.NodeID

	// tried[u] records the successors already attempted from u by
	// detour sweeps, the paper's "untried node" bookkeeping. Allocated
	// lazily: greedy-only routes never touch it.
	tried map[topo.NodeID]map[topo.NodeID]bool

	// hand is the committed hand rule (HandNone until a detour starts).
	hand Hand

	// phase reports which phase selected the most recent hop.
	phase Phase

	// perimeterActive marks a persistent perimeter phase: it holds until
	// the packet reaches a node closer to the destination than the stuck
	// node that started it (§1: "...until it reaches a node that is
	// closer to the destination than that stuck node").
	perimeterActive bool

	// backupActive marks a persistent backup-path phase (SLGF2): safe
	// forwarding resumes only with a candidate strictly closer to the
	// destination than backupDist, which stops oscillation between the
	// unsafe area's rim and its interior. backupBudget bounds the phase
	// to a multiple of the unsafe-area perimeter ("the number of detours
	// is in proportional of the perimeter of the unsafe area"); at zero
	// the routing escalates to the perimeter phase.
	backupActive bool
	backupDist   float64
	backupBudget int

	// stuckDist is the distance-to-destination recorded when the current
	// detour began (the perimeter/detour exit criterion).
	stuckDist float64

	// detour state for boundary walks (GF).
	detourHole  int // hole id, -1 when none
	detourDir   int // +1 / -1 cycle direction
	detourSteps int
	// failedHoles records holes whose boundary walk did not help this
	// packet; they are not retried (one header bit per visited hole).
	failedHoles map[int]bool
}

func newState(net *topo.Network, src, dst topo.NodeID) *state {
	return &state{
		net:        net,
		src:        src,
		dst:        dst,
		dstPos:     net.Pos(dst),
		cur:        src,
		prev:       topo.NoNode,
		detourHole: -1,
	}
}

func (st *state) markTried(u, v topo.NodeID) {
	if st.tried == nil {
		st.tried = make(map[topo.NodeID]map[topo.NodeID]bool)
	}
	m := st.tried[u]
	if m == nil {
		m = make(map[topo.NodeID]bool)
		st.tried[u] = m
	}
	m[v] = true
}

func (st *state) wasTried(u, v topo.NodeID) bool {
	return st.tried != nil && st.tried[u][v]
}

// algorithm is the per-hop decision procedure each router implements.
type algorithm interface {
	// step returns the successor of st.cur, or topo.NoNode to drop. It
	// must set st.phase for accounting.
	step(st *state) topo.NodeID
}

// drive runs the per-hop loop for one packet.
func drive(net *topo.Network, alg algorithm, src, dst topo.NodeID, ttlFactor int) Result {
	res := Result{PhaseHops: make(map[Phase]int)}
	if !net.Alive(src) || !net.Alive(dst) {
		res.Reason = DropNoCandidate
		return res
	}
	if ttlFactor <= 0 {
		ttlFactor = DefaultTTLFactor
	}
	ttl := ttlFactor * net.N()

	st := newState(net, src, dst)
	res.Path = append(res.Path, src)
	for st.cur != dst {
		if res.Hops() >= ttl {
			res.Reason = DropTTL
			return res
		}
		next := alg.step(st)
		if next == topo.NoNode {
			res.Reason = DropNoCandidate
			return res
		}
		res.Length += net.Dist(st.cur, next)
		res.PhaseHops[st.phase]++
		st.prev = st.cur
		st.cur = next
		res.Path = append(res.Path, next)
	}
	res.Delivered = true
	return res
}

// neighborOfDst reports the trivial last hop: d ∈ N(u).
func neighborOfDst(st *state) bool {
	return st.net.InRange(st.cur, st.dst)
}

// enterPerimeter starts a persistent perimeter phase at the current
// (stuck) node.
func (st *state) enterPerimeter() {
	st.perimeterActive = true
	st.stuckDist = geom.Dist(st.net.Pos(st.cur), st.dstPos)
}

// perimeterDone reports whether an active perimeter phase may end: the
// packet sits closer to the destination than the stuck node was.
func (st *state) perimeterDone() bool {
	return geom.Dist(st.net.Pos(st.cur), st.dstPos) < st.stuckDist
}

// greedyInRequestZone returns the neighbor of u inside Z(u, d) closest to
// the destination, or topo.NoNode. filter, when non-nil, restricts
// candidates (used by the safety-based algorithms); prefer, when non-nil,
// supersedes: if any candidate satisfies it, only those are considered.
func greedyInRequestZone(st *state, filter, prefer func(v topo.NodeID) bool) topo.NodeID {
	up := st.net.Pos(st.cur)
	best := topo.NoNode
	bestPreferred := false
	bestDist := math.MaxFloat64
	for _, v := range st.net.Neighbors(st.cur) {
		pv := st.net.Pos(v)
		if !geom.InRequestZone(up, st.dstPos, pv) {
			continue
		}
		if filter != nil && !filter(v) {
			continue
		}
		pref := prefer == nil || prefer(v)
		d := geom.Dist2(pv, st.dstPos)
		// Preferred candidates strictly dominate non-preferred ones.
		switch {
		case pref && !bestPreferred:
			best, bestDist, bestPreferred = v, d, true
		case pref == bestPreferred && d < bestDist:
			best, bestDist = v, d
		}
	}
	return best
}

// greedyInForwardingZone returns the neighbor of u inside the forwarding
// quadrant Q_k(u) toward the destination that is strictly closer to it,
// minimizing that distance. filter/prefer behave as in
// greedyInRequestZone.
//
// The safety-based routings use the quadrant, not the thin request-zone
// rectangle: the safety statuses (Definition 1) and Theorem 1's guarantee
// are defined on forwarding zones Q_i, and a near-axis-aligned
// destination makes the rectangle arbitrarily thin, blocking forwardings
// the information model has proven safe. The progress requirement keeps
// the advance loop-free where the quadrant alone would allow overshoot.
func greedyInForwardingZone(st *state, filter, prefer func(v topo.NodeID) bool) topo.NodeID {
	up := st.net.Pos(st.cur)
	zone := geom.ZoneTypeOf(up, st.dstPos)
	limit := geom.Dist2(up, st.dstPos)
	best := topo.NoNode
	bestPreferred := false
	bestDist := limit
	for _, v := range st.net.Neighbors(st.cur) {
		pv := st.net.Pos(v)
		if !geom.InForwardingZone(up, zone, pv) {
			continue
		}
		if filter != nil && !filter(v) {
			continue
		}
		d := geom.Dist2(pv, st.dstPos)
		if d >= limit {
			continue // must make progress
		}
		pref := prefer == nil || prefer(v)
		switch {
		case pref && !bestPreferred:
			best, bestDist, bestPreferred = v, d, true
		case pref == bestPreferred && d < bestDist:
			best, bestDist = v, d
		}
	}
	return best
}

// greedyClosest returns the classic GF successor: the neighbor strictly
// closer to the destination than u, minimizing that distance.
func greedyClosest(st *state) topo.NodeID {
	up := st.net.Pos(st.cur)
	limit := geom.Dist2(up, st.dstPos)
	best := topo.NoNode
	bestDist := limit
	for _, v := range st.net.Neighbors(st.cur) {
		d := geom.Dist2(st.net.Pos(v), st.dstPos)
		if d < bestDist {
			best, bestDist = v, d
		}
	}
	return best
}

// sweepUntried rotates the ray from u toward the destination in the
// hand's direction and returns the first untried neighbor accepted by
// filter; prefer supersedes sweep order as in greedyInRequestZone. The
// returned node is marked tried. topo.NoNode when the sweep is exhausted.
func sweepUntried(st *state, hand Hand, filter, prefer func(v topo.NodeID) bool) topo.NodeID {
	best, _ := sweepPeek(st, hand, filter, prefer)
	if best != topo.NoNode {
		st.markTried(st.cur, best)
	}
	return best
}

// sweepPeek is sweepUntried without the tried-marking side effect; it
// also reports the winning candidate's sweep rotation, which the
// either-hand rule uses to compare the two hands at detour entry.
func sweepPeek(st *state, hand Hand, filter, prefer func(v topo.NodeID) bool) (topo.NodeID, float64) {
	up := st.net.Pos(st.cur)
	from := geom.Angle(up, st.dstPos)
	best := topo.NoNode
	bestPreferred := false
	bestDelta := math.MaxFloat64
	for _, v := range st.net.Neighbors(st.cur) {
		if st.wasTried(st.cur, v) {
			continue
		}
		if filter != nil && !filter(v) {
			continue
		}
		pref := prefer == nil || prefer(v)
		delta := hand.sweepDelta(from, geom.Angle(up, st.net.Pos(v)))
		switch {
		case pref && !bestPreferred:
			best, bestDelta, bestPreferred = v, delta, true
		case pref == bestPreferred && delta < bestDelta:
			best, bestDelta = v, delta
		}
	}
	return best, bestDelta
}
