package core

import (
	"testing"

	"github.com/straightpath/wasn/internal/bound"
	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/planar"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/topo"
)

func buildNet(t *testing.T, pts []geom.Point, radius float64) *topo.Network {
	t.Helper()
	net, err := topo.NewNetwork(pts, radius, geom.FromCorners(geom.Pt(0, 0), geom.Pt(200, 200)))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func deployed(t *testing.T, model topo.DeployModel, n int, seed uint64) *topo.Network {
	t.Helper()
	dep, err := topo.Deploy(topo.DefaultDeployConfig(model, n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return dep.Net
}

// allRouters builds every algorithm over one network.
func allRouters(t *testing.T, net *topo.Network) []Router {
	t.Helper()
	m := safety.Build(net)
	b := bound.FindHoles(net)
	g := planar.Build(net, planar.GabrielGraph)
	return []Router{
		NewGF(net, b),
		NewLGF(net),
		NewSLGF(net, m),
		NewSLGF2(net, m),
		NewGPSR(net, g),
		NewIdeal(net, IdealMinHop),
		NewIdeal(net, IdealMinLength),
	}
}

func TestAllRoutersOnLine(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(10, 50), geom.Pt(20, 50), geom.Pt(30, 50), geom.Pt(40, 50), geom.Pt(50, 50),
	}
	net := buildNet(t, pts, 12)
	for _, r := range allRouters(t, net) {
		t.Run(r.Name(), func(t *testing.T) {
			res := r.Route(0, 4)
			if !res.Delivered {
				t.Fatalf("not delivered: %v", res.Reason)
			}
			if res.Hops() != 4 {
				t.Errorf("hops = %d, want 4 (path %v)", res.Hops(), res.Path)
			}
			if res.Length != 40 {
				t.Errorf("length = %v, want 40", res.Length)
			}
			if res.Path[0] != 0 || res.Path[len(res.Path)-1] != 4 {
				t.Errorf("bad endpoints: %v", res.Path)
			}
			if res.Reason != DropNone {
				t.Errorf("delivered packet has drop reason %v", res.Reason)
			}
		})
	}
}

func TestRouteToSelf(t *testing.T) {
	net := buildNet(t, []geom.Point{geom.Pt(10, 10), geom.Pt(20, 10)}, 15)
	for _, r := range allRouters(t, net) {
		res := r.Route(1, 1)
		if !res.Delivered || res.Hops() != 0 {
			t.Errorf("%s: route to self = %+v", r.Name(), res)
		}
	}
}

func TestDisconnectedPairFails(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(150, 150), geom.Pt(160, 150)}
	net := buildNet(t, pts, 15)
	for _, r := range allRouters(t, net) {
		res := r.Route(0, 3)
		if res.Delivered {
			t.Errorf("%s: delivered across disconnection", r.Name())
		}
		if res.Reason == DropNone {
			t.Errorf("%s: missing drop reason", r.Name())
		}
	}
}

func TestDeadEndpointFails(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(20, 0)}
	net := buildNet(t, pts, 12)
	net.SetAlive(2, false)
	lgf := NewLGF(net)
	if res := lgf.Route(0, 2); res.Delivered {
		t.Error("delivered to dead destination")
	}
	if res := lgf.Route(2, 0); res.Delivered {
		t.Error("delivered from dead source")
	}
}

// A concave obstacle between source and destination: greedy alone gets
// stuck; every full algorithm must still deliver by detouring.
func TestDetourAroundCShape(t *testing.T) {
	// Wall of nodes forming a "C" opening west, source inside the
	// pocket, destination east beyond the wall.
	var pts []geom.Point
	pts = append(pts, geom.Pt(75, 100))  // 0: source in the pocket
	pts = append(pts, geom.Pt(160, 100)) // 1: destination
	// North arm.
	for x := 50.0; x <= 90; x += 10 {
		pts = append(pts, geom.Pt(x, 130))
	}
	// South arm.
	for x := 50.0; x <= 90; x += 10 {
		pts = append(pts, geom.Pt(x, 70))
	}
	// East wall connecting the arms (the pocket's back, between source
	// and destination).
	for y := 80.0; y <= 120; y += 10 {
		pts = append(pts, geom.Pt(90, y))
	}
	// Bridge from the arms around to the destination.
	for x := 100.0; x <= 150; x += 10 {
		pts = append(pts, geom.Pt(x, 130))
		pts = append(pts, geom.Pt(x, 70))
	}
	for y := 80.0; y <= 120; y += 10 {
		pts = append(pts, geom.Pt(150, y))
	}
	net := buildNet(t, pts, 15)
	if !topo.Connected(net, 0, 1) {
		t.Fatal("test topology must be connected")
	}
	for _, r := range allRouters(t, net) {
		t.Run(r.Name(), func(t *testing.T) {
			res := r.Route(0, 1)
			if !res.Delivered {
				t.Fatalf("not delivered: %v (path %v)", res.Reason, res.Path)
			}
			// A detour is mandatory: the straight-line distance is 100
			// but the pocket forces extra travel.
			if res.Length < 100 {
				t.Errorf("implausibly short path: %v", res.Length)
			}
		})
	}
}

func TestPhaseAccounting(t *testing.T) {
	net := deployed(t, topo.ModelFA, 500, 3)
	m := safety.Build(net)
	r := NewSLGF2(net, m)
	labels, _ := topo.Components(net)
	delivered := 0
	greedyHops, otherHops := 0, 0
	for s := 0; s < net.N() && delivered < 50; s++ {
		d := net.N() - 1 - s
		if s == d || labels[s] != labels[d] || labels[s] < 0 {
			continue
		}
		res := r.Route(topo.NodeID(s), topo.NodeID(d))
		if !res.Delivered {
			continue
		}
		delivered++
		sum := 0
		for _, c := range res.PhaseHops {
			sum += c
		}
		if sum != res.Hops() {
			t.Fatalf("phase hops %v sum %d != hops %d", res.PhaseHops, sum, res.Hops())
		}
		greedyHops += res.PhaseHops[PhaseGreedy]
		otherHops += res.PhaseHops[PhaseBackup] + res.PhaseHops[PhasePerimeter]
	}
	if delivered == 0 {
		t.Fatal("no connected pairs routed")
	}
	if greedyHops == 0 {
		t.Error("no greedy hops recorded across 50 routes")
	}
}

func TestResultHelpers(t *testing.T) {
	var empty Result
	if empty.Hops() != 0 {
		t.Error("empty result should have 0 hops")
	}
	if PhaseGreedy.String() != "greedy" || PhaseBackup.String() != "backup" ||
		PhasePerimeter.String() != "perimeter" || Phase(9).String() != "phase(9)" {
		t.Error("phase labels wrong")
	}
	if DropNone.String() != "delivered" || DropTTL.String() != "ttl-exceeded" ||
		DropNoCandidate.String() != "no-candidate" || DropReason(9).String() != "drop(9)" {
		t.Error("drop labels wrong")
	}
	if RightHand.String() != "right" || LeftHand.String() != "left" ||
		HandNone.String() != "none" || Hand(9).String() != "hand(9)" {
		t.Error("hand labels wrong")
	}
}

func TestHandSweepDelta(t *testing.T) {
	// Right hand = CCW rotation; left = CW.
	if d := RightHand.sweepDelta(0, 1); !(d > 0.99 && d < 1.01) {
		t.Errorf("right sweep 0->1 = %v", d)
	}
	if d := LeftHand.sweepDelta(0, 1); !(d > geom.TwoPi-1.01 && d < geom.TwoPi-0.99) {
		t.Errorf("left sweep 0->1 = %v", d)
	}
}

func TestIdealNames(t *testing.T) {
	net := buildNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(5, 0)}, 10)
	if NewIdeal(net, IdealMinHop).Name() != "Ideal-hops" ||
		NewIdeal(net, IdealMinLength).Name() != "Ideal-length" {
		t.Error("ideal names wrong")
	}
}

func TestSLGF2AblationNames(t *testing.T) {
	net := buildNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(5, 0)}, 10)
	m := safety.Build(net)
	tests := []struct {
		opts []SLGF2Option
		want string
	}{
		{opts: nil, want: "SLGF2"},
		{opts: []SLGF2Option{WithoutShapeInfo()}, want: "SLGF2-noshape"},
		{opts: []SLGF2Option{WithoutEitherHand()}, want: "SLGF2-righthand"},
		{opts: []SLGF2Option{WithoutBackup()}, want: "SLGF2-nobackup"},
		{opts: []SLGF2Option{WithoutShapeInfo(), WithoutBackup()}, want: "SLGF2-noshape-nobackup"},
	}
	for _, tt := range tests {
		if got := NewSLGF2(net, m, tt.opts...).Name(); got != tt.want {
			t.Errorf("name = %q, want %q", got, tt.want)
		}
	}
}

// On connected pairs across random networks, the ideal hop count is a
// lower bound for every algorithm, and delivery rates stay high.
func TestRandomNetworksInvariants(t *testing.T) {
	for _, model := range []topo.DeployModel{topo.ModelIA, topo.ModelFA} {
		net := deployed(t, model, 550, 12)
		routers := allRouters(t, net)
		idealHop := NewIdeal(net, IdealMinHop)
		labels, _ := topo.Components(net)

		pairs := 0
		deliveredBy := make(map[string]int)
		for s := 0; s < net.N() && pairs < 60; s += 7 {
			d := (s*13 + net.N()/2) % net.N()
			if s == d || labels[s] < 0 || labels[s] != labels[d] {
				continue
			}
			pairs++
			lower := idealHop.Route(topo.NodeID(s), topo.NodeID(d)).Hops()
			for _, r := range routers {
				res := r.Route(topo.NodeID(s), topo.NodeID(d))
				if !res.Delivered {
					continue
				}
				deliveredBy[r.Name()]++
				if res.Hops() < lower {
					t.Fatalf("%v %s: %d hops beats ideal %d", model, r.Name(), res.Hops(), lower)
				}
				// Path must use real consecutive edges.
				for i := 1; i < len(res.Path); i++ {
					if res.Path[i-1] != res.Path[i] && !net.InRange(res.Path[i-1], res.Path[i]) {
						t.Fatalf("%v %s: hop %d-%d not an edge", model, r.Name(), res.Path[i-1], res.Path[i])
					}
				}
			}
		}
		if pairs < 20 {
			t.Fatalf("%v: only %d connected pairs sampled", model, pairs)
		}
		for name, n := range deliveredBy {
			rate := float64(n) / float64(pairs)
			if rate < 0.5 {
				t.Errorf("%v %s: delivery rate %.2f implausibly low", model, name, rate)
			}
		}
		if deliveredBy["Ideal-hops"] != pairs {
			t.Errorf("%v: ideal failed on connected pairs", model)
		}
	}
}
