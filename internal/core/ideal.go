package core

import "github.com/straightpath/wasn/internal/topo"

// IdealKind selects which optimum the Ideal router reports.
type IdealKind int

// Ideal variants.
const (
	IdealMinHop IdealKind = iota + 1
	IdealMinLength
)

// Ideal is the omniscient reference router ("ideal routing path" of
// Fig. 1(a)): it returns the true shortest path computed with global
// knowledge, either minimum-hop (BFS) or minimum Euclidean length
// (Dijkstra). It is the lower bound every distributed algorithm is
// measured against.
type Ideal struct {
	net  *topo.Network
	kind IdealKind
}

var _ Router = (*Ideal)(nil)
var _ ObservedRouter = (*Ideal)(nil)

// NewIdeal returns the reference router.
func NewIdeal(net *topo.Network, kind IdealKind) *Ideal {
	return &Ideal{net: net, kind: kind}
}

// Name implements Router.
func (r *Ideal) Name() string {
	if r.kind == IdealMinLength {
		return "Ideal-length"
	}
	return "Ideal-hops"
}

// Route implements Router.
func (r *Ideal) Route(src, dst topo.NodeID) Result {
	return r.RouteInto(src, dst, nil)
}

// RouteInto implements Router. The searches run over pooled scratch
// (topo's search pool), so with a reused path buffer the reference
// routes are allocation-free too. The min-length variant runs A* over
// the Euclidean admissible heuristic rather than full Dijkstra — the
// returned path has the identical minimum total length (the heuristic
// is consistent) while settling a corridor of nodes instead of a
// distance ball, which is what makes Ideal cheap enough to sample
// against on the serving hot path.
func (r *Ideal) RouteInto(src, dst topo.NodeID, pathBuf []topo.NodeID) Result {
	var path []topo.NodeID
	if r.kind == IdealMinLength {
		path = topo.AStarEuclideanPathInto(r.net, src, dst, pathBuf)
	} else {
		path = topo.ShortestHopPathInto(r.net, src, dst, pathBuf)
	}
	var res Result
	if path == nil {
		res.Reason = DropNoCandidate
		// Hand the caller's buffer back (empty) so the reuse idiom
		// `buf = res.Path[:0]` survives unreachable queries.
		res.Path = pathBuf[:0]
		return res
	}
	res.Path = path
	res.Delivered = true
	res.Length = r.net.PathLength(path)
	res.PhaseHops[PhaseGreedy] = len(path) - 1
	return res
}

// RouteObserved implements ObservedRouter. The reference router has no
// per-hop decision procedure — the whole path is computed at once — so
// every hop of the found path is reported as a greedy decision.
func (r *Ideal) RouteObserved(src, dst topo.NodeID, pathBuf []topo.NodeID, obs HopObserver) Result {
	res := r.RouteInto(src, dst, pathBuf)
	if obs != nil {
		for i := 1; i < len(res.Path); i++ {
			obs.ObserveHop(i, res.Path[i-1], res.Path[i], PhaseGreedy)
		}
	}
	return res
}
