package core

import "github.com/straightpath/wasn/internal/topo"

// IdealKind selects which optimum the Ideal router reports.
type IdealKind int

// Ideal variants.
const (
	IdealMinHop IdealKind = iota + 1
	IdealMinLength
)

// Ideal is the omniscient reference router ("ideal routing path" of
// Fig. 1(a)): it returns the true shortest path computed with global
// knowledge, either minimum-hop (BFS) or minimum Euclidean length
// (Dijkstra). It is the lower bound every distributed algorithm is
// measured against.
type Ideal struct {
	net  *topo.Network
	kind IdealKind
}

var _ Router = (*Ideal)(nil)

// NewIdeal returns the reference router.
func NewIdeal(net *topo.Network, kind IdealKind) *Ideal {
	return &Ideal{net: net, kind: kind}
}

// Name implements Router.
func (r *Ideal) Name() string {
	if r.kind == IdealMinLength {
		return "Ideal-length"
	}
	return "Ideal-hops"
}

// Route implements Router.
func (r *Ideal) Route(src, dst topo.NodeID) Result {
	var path []topo.NodeID
	if r.kind == IdealMinLength {
		path = topo.ShortestEuclideanPath(r.net, src, dst)
	} else {
		path = topo.ShortestHopPath(r.net, src, dst)
	}
	res := Result{PhaseHops: make(map[Phase]int)}
	if path == nil {
		res.Reason = DropNoCandidate
		return res
	}
	res.Path = path
	res.Delivered = true
	res.Length = r.net.PathLength(path)
	res.PhaseHops[PhaseGreedy] = len(path) - 1
	return res
}
