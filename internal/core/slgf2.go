package core

import (
	"math"
	"sync"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/planar"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/topo"
)

// SLGF2 is the paper's contribution (Algorithm 3). On top of SLGF's safe
// forwarding it adds, in escalation order:
//
//  1. Safe forwarding — request-zone successors safe toward d, with the
//     superseding either-hand preference: candidates in the forbidden
//     region of a visible unsafe-area estimate are avoided while the
//     destination sits in the critical region.
//  2. Backup-path forwarding — when no safe-toward-d successor exists,
//     route via neighbors that are safe in *some* type, sweeping with a
//     committed hand rule until safe forwarding resumes; the hand is
//     chosen from the destination's side of the blocking area's dividing
//     ray and released when the unsafe area is escaped.
//  3. Perimeter routing — the cautious last resort, confined to the
//     rectangular union of the visible E-areas and locked to one hand
//     until delivery.
type SLGF2 struct {
	net *topo.Network
	m   *safety.Model
	// TTLFactor overrides the hop budget (DefaultTTLFactor when 0).
	TTLFactor int

	disableShapeInfo  bool
	disableEitherHand bool
	disableBackup     bool

	// planarOnce lazily builds the Gabriel graph backing the perimeter
	// phase's face walk (the paper's right-hand rule reference [2] is
	// face routing); routes that never hit the perimeter never pay for
	// it.
	planarOnce sync.Once
	planarG    *planar.Graph
}

var _ Router = (*SLGF2)(nil)
var _ ObservedRouter = (*SLGF2)(nil)

// SLGF2Option configures ablation variants of SLGF2.
type SLGF2Option func(*SLGF2)

// WithoutShapeInfo drops every use of the estimated shape information:
// no critical/forbidden preference, no hand selection from the dividing
// ray, no perimeter confinement. What remains is SLGF plus the backup
// phase.
func WithoutShapeInfo() SLGF2Option {
	return func(r *SLGF2) { r.disableShapeInfo = true }
}

// WithoutEitherHand forces the right hand for every detour instead of
// choosing by the destination's side of the blocking area.
func WithoutEitherHand() SLGF2Option {
	return func(r *SLGF2) { r.disableEitherHand = true }
}

// WithoutBackup skips the backup-path phase, falling from safe
// forwarding straight to perimeter routing.
func WithoutBackup() SLGF2Option {
	return func(r *SLGF2) { r.disableBackup = true }
}

// WithPlanarGraph injects an already-built Gabriel graph for the
// perimeter phase's face walk, so callers that build one anyway (for
// GPSR, say) avoid the lazy duplicate build. A nil graph is ignored.
func WithPlanarGraph(g *planar.Graph) SLGF2Option {
	return func(r *SLGF2) { r.planarG = g }
}

// NewSLGF2 returns the paper's routing over net using the prebuilt
// safety information model.
func NewSLGF2(net *topo.Network, m *safety.Model, opts ...SLGF2Option) *SLGF2 {
	r := &SLGF2{net: net, m: m}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Name implements Router.
func (r *SLGF2) Name() string {
	switch {
	case r.disableShapeInfo && r.disableBackup:
		return "SLGF2-noshape-nobackup"
	case r.disableShapeInfo:
		return "SLGF2-noshape"
	case r.disableEitherHand:
		return "SLGF2-righthand"
	case r.disableBackup:
		return "SLGF2-nobackup"
	default:
		return "SLGF2"
	}
}

// planar returns the Gabriel graph, building it lazily unless one was
// injected via WithPlanarGraph at construction.
func (r *SLGF2) planar() *planar.Graph {
	r.planarOnce.Do(func() {
		if r.planarG == nil {
			r.planarG = planar.Build(r.net, planar.GabrielGraph)
		}
	})
	return r.planarG
}

// Route implements Router.
func (r *SLGF2) Route(src, dst topo.NodeID) Result {
	return r.RouteInto(src, dst, nil)
}

// RouteInto implements Router.
func (r *SLGF2) RouteInto(src, dst topo.NodeID, pathBuf []topo.NodeID) Result {
	return r.RouteObserved(src, dst, pathBuf, nil)
}

// RouteObserved implements ObservedRouter.
func (r *SLGF2) RouteObserved(src, dst topo.NodeID, pathBuf []topo.NodeID, obs HopObserver) Result {
	alg := slgf2AlgPool.Get().(*slgf2Alg)
	alg.reset(r)
	if !r.disableShapeInfo && r.net.Alive(src) && r.net.Alive(dst) {
		// The cautious confined perimeter applies when the source or
		// destination tuple is (0,0,0,0) (§4: the network may have
		// disconnected); confining ordinary detours would instead trap
		// the packet orbiting the unsafe area.
		alg.confine = r.m.AllUnsafe(src) || r.m.AllUnsafe(dst)
	}
	res := drive(r.net, alg, src, dst, r.TTLFactor, pathBuf, obs)
	alg.r = nil
	slgf2AlgPool.Put(alg)
	return res
}

type slgf2Alg struct {
	r *SLGF2
	// confine restricts the perimeter sweep to the union of visible
	// E-areas (contribution (c)); set only for (0,0,0,0) endpoints.
	confine bool
	// perimeterLocked pins the hand once the perimeter phase begins
	// ("stick with the same hand-rule until the destination is reached").
	perimeterLocked bool
	// faceVisited tracks directed planar edges of the active face walk;
	// revisiting one means the walk cannot help and the ray-sweep
	// fallback takes over (faceDead). Retained across pooled routes,
	// cleared per walk.
	faceVisited map[[2]topo.NodeID]bool
	faceDead    bool
	// shapes caches the visible estimates at the current node; nearby is
	// the unfiltered collection buffer. Both backing arrays are retained
	// across pooled routes.
	shapes    []safety.ShapeAt
	nearby    []safety.ShapeAt
	shapesFor topo.NodeID
	shapesOK  bool
}

var slgf2AlgPool = sync.Pool{New: func() any {
	return &slgf2Alg{faceVisited: make(map[[2]topo.NodeID]bool)}
}}

// reset readies a pooled alg for one route, retaining the map buckets
// and the shapes backing array.
func (a *slgf2Alg) reset(r *SLGF2) {
	a.r = r
	a.confine = false
	a.perimeterLocked = false
	clear(a.faceVisited)
	a.faceDead = false
	a.shapes = a.shapes[:0]
	a.shapesFor = topo.NoNode
	a.shapesOK = false
}

func (a *slgf2Alg) step(st *state) topo.NodeID {
	m := a.r.m
	// Step 1 (Algo 1 steps 1-2): direct delivery.
	if neighborOfDst(st) {
		st.phase = PhaseGreedy
		return st.dst
	}

	// The superseding either-hand preference: candidates must avoid the
	// forbidden region of every visible estimate whose critical region
	// holds the destination. Only estimates that actually block the
	// corridor to the destination arm the preference — an unsafe area
	// off the packet's way must not divert it. The closure is created
	// here (not returned from a helper) so escape analysis keeps it on
	// the stack.
	var prefer func(topo.NodeID) bool
	if shapes := a.blockingShapes(st); len(shapes) > 0 {
		prefer = func(v topo.NodeID) bool {
			return m.AvoidsForbidden(shapes, st.dstPos, st.net.Pos(v))
		}
	}

	// An active perimeter phase persists until the packet beats the
	// stuck node's distance; the hand stays locked regardless ("stick
	// with the same hand-rule until the destination is reached").
	if st.perimeterActive && st.perimeterDone() {
		st.perimeterActive = false
	}

	if !st.perimeterActive {
		// A backup detour ends once the packet has beaten its entry
		// distance.
		if st.backupActive && geom.Dist(st.net.Pos(st.cur), st.dstPos) < st.backupDist {
			st.backupActive = false
		}

		// Step 2+3: safe forwarding with the superseding rule. While a
		// backup detour is active, resuming safe forwarding requires
		// actual progress past the detour's entry point, otherwise the
		// packet oscillates on the rim of the unsafe area.
		safe := scanFilter{masks: m.SafeMasks()}
		if st.backupActive {
			safe.bounded = true
			safe.maxDist = st.backupDist
		}
		if v := greedyInForwardingZone(st, safe, prefer); v != topo.NoNode {
			st.phase = PhaseGreedy
			st.backupActive = false
			if !a.perimeterLocked {
				// Escaped the unsafe area: release the backup hand.
				st.hand = HandNone
			}
			return v
		}

		// Step 4: backup-path forwarding via any-type-safe neighbors,
		// bounded in proportion to the unsafe area's perimeter. The
		// side of the blocking area is encoded in the committed hand;
		// re-applying the region preference inside the sweep would let
		// a far-around "preferred" candidate override the geometric
		// order on every hop and spiral the packet.
		if !a.r.disableBackup {
			if !st.backupActive {
				st.backupActive = true
				st.backupDist = geom.Dist(st.net.Pos(st.cur), st.dstPos)
				st.backupBudget = a.backupBudget(st)
			}
			if st.backupBudget > 0 {
				anySafe := scanFilter{masks: m.SafeMasks(), anySafe: true}
				a.commitHand(st, anySafe)
				if v := sweepUntried(st, st.hand, anySafe, nil); v != topo.NoNode {
					st.backupBudget--
					st.phase = PhaseBackup
					return v
				}
			}
		}
		st.enterPerimeter()
		// Fresh face walk per perimeter phase; the hand stays locked.
		clear(a.faceVisited)
		a.faceDead = false
	}

	// Step 5: perimeter routing with the committed hand. The walk
	// follows planar faces ([2]); if the face structure cannot make
	// progress (revisited directed edge, isolated planar node), the
	// untried ray sweep takes over, confined to the union of visible
	// E-areas in the cautious (0,0,0,0) case.
	a.commitHand(st, scanFilter{})
	a.perimeterLocked = true
	st.phase = PhasePerimeter
	if !a.faceDead {
		g := a.r.planar()
		prev := st.prev
		if prev != topo.NoNode && !g.HasEdge(st.cur, prev) {
			// Arrived over a non-planar edge (greedy/backup hop): seed
			// the sweep from the destination bearing instead.
			prev = topo.NoNode
		}
		ref := geom.Angle(st.net.Pos(st.cur), st.dstPos)
		next := g.FaceStepHand(st.cur, prev, ref, st.hand != LeftHand)
		if next != topo.NoNode {
			key := [2]topo.NodeID{st.cur, next}
			if !a.faceVisited[key] {
				a.faceVisited[key] = true
				return next
			}
		}
		a.faceDead = true
	}
	var confineBox *geom.Rect
	if a.confine && !a.r.disableShapeInfo {
		if box, ok := m.ConfinementBox(st.cur); ok {
			// box stays on the stack: the sweep only reads through the
			// pointer, it never retains it.
			confineBox = &box
		}
	}
	return sweepUntried(st, st.hand, scanFilter{}, confineBox)
}

// blockingShapes returns the visible estimates whose rectangle intersects
// the straight corridor from the current node to the destination and is
// at least one radio range across. Smaller estimates are flattened by a
// single hop — letting their critical/forbidden split steer the routing
// (or pick the hand) trades a zero-cost hop for a detour.
func (a *slgf2Alg) blockingShapes(st *state) []safety.ShapeAt {
	if a.r.disableShapeInfo {
		return nil
	}
	if a.shapesFor != st.cur || !a.shapesOK {
		a.shapes = a.shapes[:0]
		up := st.net.Pos(st.cur)
		r2 := st.net.Radius * st.net.Radius
		a.nearby = a.r.m.AppendNearbyShapes(a.nearby[:0], st.cur, st.dstPos)
		for _, s := range a.nearby {
			w, h := s.Rect.Width(), s.Rect.Height()
			if w*w+h*h < r2 {
				continue
			}
			if geom.SegmentIntersectsRect(up, st.dstPos, s.Rect) {
				a.shapes = append(a.shapes, s)
			}
		}
		a.shapesFor = st.cur
		a.shapesOK = true
	}
	return a.shapes
}

// backupBudget bounds one backup detour by the estimated unsafe-area
// perimeter in hop units: perimeter / radius, doubled for slack, plus a
// constant floor for tiny areas.
func (a *slgf2Alg) backupBudget(st *state) int {
	const floor = 8
	box, ok := a.r.m.ConfinementBox(st.cur)
	if !ok {
		return floor
	}
	return 2*int(box.Perimeter()/st.net.Radius) + floor
}

// commitHand picks the hand rule on detour entry and keeps it: the
// either-hand rule. Both hands' first sweep candidates are peeked; the
// hand whose candidate stays out of the forbidden regions of the
// blocking estimates wins (the routing starts around the blocking area
// on the destination's side), with the smaller sweep rotation breaking
// ties. f restricts candidates to the entering phase's rule.
func (a *slgf2Alg) commitHand(st *state, f scanFilter) {
	if st.hand != HandNone {
		return
	}
	if a.r.disableEitherHand || a.r.disableShapeInfo {
		st.hand = RightHand
		return
	}
	shapes := a.blockingShapes(st)
	if len(shapes) == 0 {
		st.hand = RightHand
		return
	}
	m := a.r.m
	avoids := func(v topo.NodeID) bool {
		return m.AvoidsForbidden(shapes, st.dstPos, st.net.Pos(v))
	}
	bestHand := RightHand
	bestOK := false
	bestDelta := math.MaxFloat64
	for _, h := range []Hand{RightHand, LeftHand} {
		v, delta := sweepPeek(st, h, f, nil)
		if v == topo.NoNode {
			continue
		}
		ok := avoids(v)
		switch {
		case ok && !bestOK:
			bestHand, bestOK, bestDelta = h, true, delta
		case ok == bestOK && delta < bestDelta:
			bestHand, bestDelta = h, delta
		}
	}
	st.hand = bestHand
}
