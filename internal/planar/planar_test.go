package planar

import (
	"math"
	"testing"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/topo"
)

func buildNet(t *testing.T, pts []geom.Point, radius float64) *topo.Network {
	t.Helper()
	net, err := topo.NewNetwork(pts, radius, geom.FromCorners(geom.Pt(0, 0), geom.Pt(200, 200)))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func deployed(t *testing.T, model topo.DeployModel, n int, seed uint64) *topo.Network {
	t.Helper()
	dep, err := topo.Deploy(topo.DefaultDeployConfig(model, n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return dep.Net
}

func TestGabrielRemovesWitnessedEdge(t *testing.T) {
	// w sits at the midpoint of uv: the Gabriel disk of uv contains w,
	// so uv must be dropped while uw and wv survive.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 0.5)}
	net := buildNet(t, pts, 15)
	g := Build(net, GabrielGraph)
	for _, v := range g.Neighbors(0) {
		if v == 1 {
			t.Error("witnessed edge 0-1 kept in Gabriel graph")
		}
	}
	if g.Degree(2) != 2 {
		t.Errorf("witness degree = %d, want 2", g.Degree(2))
	}
}

func TestRNGSubsetOfGabriel(t *testing.T) {
	net := deployed(t, topo.ModelIA, 300, 5)
	gg := Build(net, GabrielGraph)
	rng := Build(net, RelativeNeighborhood)
	for u := 0; u < net.N(); u++ {
		ggSet := map[topo.NodeID]bool{}
		for _, v := range gg.Neighbors(topo.NodeID(u)) {
			ggSet[v] = true
		}
		for _, v := range rng.Neighbors(topo.NodeID(u)) {
			if !ggSet[v] {
				t.Fatalf("RNG edge %d-%d missing from Gabriel graph", u, v)
			}
		}
	}
	if rng.EdgeCount() > gg.EdgeCount() {
		t.Error("RNG has more edges than GG")
	}
}

func TestPlanarSubgraphOfUDG(t *testing.T) {
	net := deployed(t, topo.ModelFA, 300, 6)
	for _, kind := range []Kind{GabrielGraph, RelativeNeighborhood} {
		g := Build(net, kind)
		for u := 0; u < net.N(); u++ {
			for _, v := range g.Neighbors(topo.NodeID(u)) {
				if !net.InRange(topo.NodeID(u), v) {
					t.Fatalf("%v edge %d-%d not a UDG edge", kind, u, v)
				}
			}
		}
	}
}

// The defining property: no two Gabriel edges properly cross.
func TestGabrielPlanarity(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		net := deployed(t, topo.ModelIA, 250, seed)
		g := Build(net, GabrielGraph)
		type edge struct{ u, v topo.NodeID }
		var edges []edge
		for u := 0; u < net.N(); u++ {
			for _, v := range g.Neighbors(topo.NodeID(u)) {
				if topo.NodeID(u) < v {
					edges = append(edges, edge{u: topo.NodeID(u), v: v})
				}
			}
		}
		for i := 0; i < len(edges); i++ {
			for j := i + 1; j < len(edges); j++ {
				a, b := edges[i], edges[j]
				if a.u == b.u || a.u == b.v || a.v == b.u || a.v == b.v {
					continue
				}
				if geom.SegmentsProperlyCross(
					net.Pos(a.u), net.Pos(a.v), net.Pos(b.u), net.Pos(b.v)) {
					t.Fatalf("seed %d: Gabriel edges %v and %v cross", seed, a, b)
				}
			}
		}
	}
}

// Gabriel and RNG planarization preserve connectivity of the UDG.
func TestPlanarizationPreservesConnectivity(t *testing.T) {
	net := deployed(t, topo.ModelIA, 400, 9)
	labels, _ := topo.Components(net)
	for _, kind := range []Kind{GabrielGraph, RelativeNeighborhood} {
		g := Build(net, kind)
		// BFS over planar edges.
		comp := make([]int, net.N())
		for i := range comp {
			comp[i] = -1
		}
		count := 0
		for s := 0; s < net.N(); s++ {
			if comp[s] != -1 {
				continue
			}
			queue := []topo.NodeID{topo.NodeID(s)}
			comp[s] = count
			for len(queue) > 0 {
				u := queue[0]
				queue = queue[1:]
				for _, v := range g.Neighbors(u) {
					if comp[v] == -1 {
						comp[v] = count
						queue = append(queue, v)
					}
				}
			}
			count++
		}
		for i := 0; i < net.N(); i++ {
			for j := i + 1; j < net.N(); j++ {
				if (labels[i] == labels[j]) != (comp[i] == comp[j]) {
					t.Fatalf("%v changed connectivity between %d and %d", kind, i, j)
				}
			}
		}
	}
}

func TestNeighborsSortedCCW(t *testing.T) {
	net := deployed(t, topo.ModelIA, 200, 11)
	g := Build(net, GabrielGraph)
	for u := 0; u < net.N(); u++ {
		up := net.Pos(topo.NodeID(u))
		nbrs := g.Neighbors(topo.NodeID(u))
		for i := 1; i < len(nbrs); i++ {
			a := geom.Angle(up, net.Pos(nbrs[i-1]))
			b := geom.Angle(up, net.Pos(nbrs[i]))
			if a > b {
				t.Fatalf("node %d planar neighbors not angle-sorted", u)
			}
		}
	}
}

func TestNextCCW(t *testing.T) {
	// Cross: center 0 with neighbors E(1), N(2), W(3), S(4).
	pts := []geom.Point{
		geom.Pt(50, 50), geom.Pt(60, 50), geom.Pt(50, 60), geom.Pt(40, 50), geom.Pt(50, 40),
	}
	net := buildNet(t, pts, 12)
	g := Build(net, GabrielGraph)
	tests := []struct {
		name string
		from float64
		want topo.NodeID
	}{
		{name: "sweep from east", from: 0, want: 2},
		{name: "sweep from northeast", from: math.Pi / 4, want: 2},
		{name: "sweep from north", from: math.Pi / 2, want: 3},
		{name: "sweep from just past west", from: math.Pi + 0.01, want: 4},
		{name: "sweep from south", from: 3 * math.Pi / 2, want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := g.NextCCW(0, tt.from); got != tt.want {
				t.Errorf("NextCCW(0, %v) = %v, want %v", tt.from, got, tt.want)
			}
		})
	}
	// Isolated node.
	iso := buildNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(100, 100)}, 10)
	gi := Build(iso, GabrielGraph)
	if got := gi.NextCCW(0, 0); got != topo.NoNode {
		t.Errorf("NextCCW on isolated node = %v, want NoNode", got)
	}
}

func TestFaceStep(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(50, 50), geom.Pt(60, 50), geom.Pt(50, 60), geom.Pt(40, 50), geom.Pt(50, 40),
	}
	net := buildNet(t, pts, 12)
	g := Build(net, GabrielGraph)
	// Arriving at center from the east neighbor, the right-hand rule
	// continues to the north neighbor.
	if got := g.FaceStep(0, 1, 0); got != 2 {
		t.Errorf("FaceStep(0, from 1) = %v, want 2", got)
	}
	// On entry (no prev), seed with the direction toward a destination
	// to the west: the sweep starts just past west.
	if got := g.FaceStep(0, topo.NoNode, math.Pi); got != 4 {
		t.Errorf("FaceStep entry toward west = %v, want 4", got)
	}
}

func TestFaceWalkTerminatesOnTriangle(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 8)}
	net := buildNet(t, pts, 12)
	g := Build(net, GabrielGraph)
	// Walk the outer face starting from 0 heading to 1; it must cycle.
	u, prev := topo.NodeID(0), topo.NoNode
	seen := 0
	start := u
	for {
		next := g.FaceStep(u, prev, 0)
		if next == topo.NoNode {
			t.Fatal("walk died")
		}
		prev, u = u, next
		seen++
		if u == start || seen > 10 {
			break
		}
	}
	if seen > 6 {
		t.Errorf("face walk did not cycle promptly: %d steps", seen)
	}
}

func TestKindString(t *testing.T) {
	if GabrielGraph.String() != "GG" || RelativeNeighborhood.String() != "RNG" || Kind(9).String() != "planar(?)" {
		t.Error("Kind.String labels wrong")
	}
}

func TestBuildSkipsDeadNodes(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(20, 0)}
	net := buildNet(t, pts, 12)
	net.SetAlive(1, false)
	g := Build(net, GabrielGraph)
	if g.Degree(1) != 0 {
		t.Error("dead node has planar edges")
	}
	for _, v := range g.Neighbors(0) {
		if v == 1 {
			t.Error("edge to dead node kept")
		}
	}
}
