package planar

import (
	"sort"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/par"
	"github.com/straightpath/wasn/internal/topo"
)

// Kind selects the planarization rule.
type Kind int

// Planarization kinds.
const (
	GabrielGraph Kind = iota + 1
	RelativeNeighborhood
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case GabrielGraph:
		return "GG"
	case RelativeNeighborhood:
		return "RNG"
	default:
		return "planar(?)"
	}
}

// Graph is a planar subgraph of a network with adjacency sorted by angle,
// ready for face traversal.
type Graph struct {
	Net  *topo.Network
	Kind Kind
	// adj[u] lists u's planar neighbors sorted counter-clockwise by the
	// angle of the edge u->v; ang[u] holds those angles index-aligned,
	// so face steps rotate without recomputing atan2.
	adj [][]topo.NodeID
	ang [][]float64
	// Repair scratch reused across calls (repairs are serialized by the
	// caller): the touched marks and the expanded dirty-row id list.
	touched  []bool
	dirtyIDs []topo.NodeID
}

// Build computes the planar subgraph of net under rule k. Dead nodes are
// excluded. O(sum_u deg(u)^2). Every node's witness test and row sort
// are independent, so the build fans out across GOMAXPROCS.
func Build(net *topo.Network, k Kind) *Graph {
	g := &Graph{
		Net:  net,
		Kind: k,
		adj:  make([][]topo.NodeID, net.N()),
		ang:  make([][]float64, net.N()),
	}
	par.For(net.N(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g.rebuildRow(topo.NodeID(i))
		}
	})
	return g
}

// rebuildRow recomputes u's planar adjacency from its current alive
// neighborhood — the per-node unit of work shared by Build and Repair.
// Dead nodes get empty rows.
func (g *Graph) rebuildRow(u topo.NodeID) {
	if !g.Net.Alive(u) {
		g.adj[u], g.ang[u] = nil, nil
		return
	}
	net := g.Net
	nbrs := net.Neighbors(u)
	var kept []topo.NodeID
	for _, v := range nbrs {
		if keepEdge(net, g.Kind, u, v, nbrs) {
			kept = append(kept, v)
		}
	}
	up := net.Pos(u)
	angles := make([]float64, len(kept))
	for j, v := range kept {
		angles[j] = geom.Angle(up, net.Pos(v))
	}
	sort.Sort(&byAngle{ids: kept, ang: angles})
	g.adj[u] = kept
	g.ang[u] = angles
}

// Repair recomputes the planar rows invalidated by the liveness changes
// of the given nodes (topo.Network.SetAlive already applied; failures
// and revivals both work). Both rules are witness-local: any witness
// for edge uv lies within range of u and of v, so the liveness of x can
// only affect rows of x itself and of x's static neighbors — those rows
// are rebuilt, every other row is provably unchanged. The result is
// identical to Build on the mutated network at O(|N(x)| · deg²) cost
// instead of O(n · deg²).
func (g *Graph) Repair(changed []topo.NodeID) {
	if len(g.touched) < g.Net.N() {
		g.touched = make([]bool, g.Net.N())
	} else {
		clear(g.touched)
	}
	touched := g.touched
	ids := g.dirtyIDs[:0]
	add := func(u topo.NodeID) {
		if !touched[u] {
			touched[u] = true
			ids = append(ids, u)
		}
	}
	for _, x := range changed {
		add(x)
		for _, v := range g.Net.AdjacencyRow(x) {
			add(v)
		}
	}
	g.dirtyIDs = ids
	par.For(len(ids), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g.rebuildRow(ids[i])
		}
	})
}

// RepairRows rebuilds exactly the given planar rows after node positions
// changed (topo.Network.SetPositions already applied). Unlike Repair it
// does NOT expand the set: the geometric dirty set SetPositions returns
// is already neighborhood-closed — it contains every node whose own
// position, in-range set, or neighbor coordinates changed, and a planar
// row (witness tests included) reads only those inputs — so expanding
// again would rebuild rows that provably cannot have changed. The result
// is identical to Build on the moved network.
func (g *Graph) RepairRows(dirty []topo.NodeID) {
	par.For(len(dirty), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g.rebuildRow(dirty[i])
		}
	})
}

// byAngle sorts a planar row and its angle cache together.
type byAngle struct {
	ids []topo.NodeID
	ang []float64
}

func (s *byAngle) Len() int           { return len(s.ids) }
func (s *byAngle) Less(i, j int) bool { return s.ang[i] < s.ang[j] }
func (s *byAngle) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.ang[i], s.ang[j] = s.ang[j], s.ang[i]
}

// keepEdge applies the witness test. Any witness for uv lies within range
// of both endpoints, so scanning N(u) suffices in a unit-disk graph.
func keepEdge(net *topo.Network, k Kind, u, v topo.NodeID, candidates []topo.NodeID) bool {
	up, vp := net.Pos(u), net.Pos(v)
	switch k {
	case GabrielGraph:
		mid := geom.Midpoint(up, vp)
		r2 := geom.Dist2(up, vp) / 4
		for _, w := range candidates {
			if w == v {
				continue
			}
			if geom.Dist2(net.Pos(w), mid) < r2-1e-12 {
				return false
			}
		}
		return true
	case RelativeNeighborhood:
		d2 := geom.Dist2(up, vp)
		for _, w := range candidates {
			if w == v {
				continue
			}
			wp := net.Pos(w)
			if geom.Dist2(wp, up) < d2-1e-12 && geom.Dist2(wp, vp) < d2-1e-12 {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// Neighbors returns the planar neighbors of u in CCW angular order. The
// slice must not be modified.
func (g *Graph) Neighbors(u topo.NodeID) []topo.NodeID { return g.adj[u] }

// Degree returns the planar degree of u.
func (g *Graph) Degree(u topo.NodeID) int { return len(g.adj[u]) }

// EdgeCount returns the number of undirected planar edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, l := range g.adj {
		total += len(l)
	}
	return total / 2
}

// NextCCW returns the planar neighbor of u that follows the direction
// `fromAngle` counter-clockwise (strictly after, wrapping around). This is
// the GPSR right-hand-rule step: taking the next edge counter-clockwise
// from the in-edge walks the face with the interior on the right.
// Returns topo.NoNode when u has no planar neighbors.
func (g *Graph) NextCCW(u topo.NodeID, fromAngle float64) topo.NodeID {
	nbrs := g.adj[u]
	if len(nbrs) == 0 {
		return topo.NoNode
	}
	angs := g.ang[u]
	best := topo.NoNode
	bestDelta := geom.TwoPi + 1
	for j := range nbrs {
		delta := geom.CCWDelta(fromAngle, angs[j])
		if delta < 1e-12 {
			delta = geom.TwoPi // the in-edge itself sorts last
		}
		if delta < bestDelta {
			bestDelta = delta
			best = nbrs[j]
		}
	}
	return best
}

// HasEdge reports whether uv is a planar edge.
func (g *Graph) HasEdge(u, v topo.NodeID) bool {
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// NextCW mirrors NextCCW: the planar neighbor first reached rotating
// clockwise from fromAngle — the left-hand-rule step.
func (g *Graph) NextCW(u topo.NodeID, fromAngle float64) topo.NodeID {
	nbrs := g.adj[u]
	if len(nbrs) == 0 {
		return topo.NoNode
	}
	angs := g.ang[u]
	best := topo.NoNode
	bestDelta := geom.TwoPi + 1
	for j := range nbrs {
		delta := geom.CWDelta(fromAngle, angs[j])
		if delta < 1e-12 {
			delta = geom.TwoPi // the in-edge itself sorts last
		}
		if delta < bestDelta {
			bestDelta = delta
			best = nbrs[j]
		}
	}
	return best
}

// FaceStep advances one right-hand-rule step of a face walk: the packet
// sits at u having arrived from prev (prev == topo.NoNode on entry, in
// which case refAngle seeds the sweep, e.g. the direction toward the
// destination).
func (g *Graph) FaceStep(u, prev topo.NodeID, refAngle float64) topo.NodeID {
	return g.FaceStepHand(u, prev, refAngle, true)
}

// FaceStepHand generalizes FaceStep to both hands: ccw=true walks with
// the right-hand rule (counter-clockwise sweep), ccw=false with the
// left-hand rule.
func (g *Graph) FaceStepHand(u, prev topo.NodeID, refAngle float64, ccw bool) topo.NodeID {
	if prev != topo.NoNode {
		// The in-edge u->prev is planar whenever prev came from a face
		// walk, so its bearing is usually a cache lookup.
		if a, ok := g.angleTo(u, prev); ok {
			refAngle = a
		} else {
			refAngle = geom.Angle(g.Net.Pos(u), g.Net.Pos(prev))
		}
	}
	if ccw {
		return g.NextCCW(u, refAngle)
	}
	return g.NextCW(u, refAngle)
}

// angleTo returns the cached bearing of planar edge u->v, if present.
func (g *Graph) angleTo(u, v topo.NodeID) (float64, bool) {
	for j, w := range g.adj[u] {
		if w == v {
			return g.ang[u][j], true
		}
	}
	return 0, false
}
