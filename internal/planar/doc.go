// Package planar derives planar subgraphs of the unit-disk network and
// walks their faces. This is the substrate behind the "right-hand rule"
// perimeter routing of Bose–Morin–Stojmenović (the paper's reference [2])
// and of GPSR, which this repository ships as an additional baseline.
//
// Two classical localized planarizations are provided: the Gabriel graph
// (edge uv survives iff the disk with diameter uv is empty) and the
// relative neighborhood graph (edge uv survives iff no witness w is closer
// to both u and v than they are to each other). Both preserve connectivity
// of the unit-disk graph and are computable from one-hop neighbor
// information only.
//
// # Lifecycle: build once, repair on failure
//
// [Build] computes every node's row in parallel across GOMAXPROCS. Both
// planarization rules are witness-local — any witness for edge uv lies
// within radio range of u and of v — so a liveness change at node x can
// only affect the rows of x and of x's static neighbors.
// [Graph.Repair] recomputes exactly those rows in place after failures
// or revivals, leaving a graph identical to a from-scratch Build on the
// mutated network; routers holding the graph observe the repair without
// being rebuilt. The serving layer's /fail endpoint and the facade's
// Sim.Fail route through this repair via core.RepairSubstrates.
package planar
