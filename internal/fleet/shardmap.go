package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per replica when a Map is
// built with VNodes 0. More vnodes smooth the partition (the ring's
// load imbalance shrinks roughly with 1/sqrt(vnodes)) at the cost of a
// larger ring to search; 64 keeps the max/mean deployment load within
// ~20% for small fleets.
const DefaultVNodes = 64

// Replica identifies one wasnd process of the fleet and how to reach
// it: the HTTP/JSON base URL (the compatibility surface) and, when the
// replica serves the binary batch transport, its TCP address.
type Replica struct {
	// ID is the stable replica identity (wasnd -replica-id); hashing is
	// by ID, so a replica that restarts on a new port keeps its ring
	// positions.
	ID string `json:"id"`
	// Addr is the replica's HTTP base URL, e.g. "http://127.0.0.1:8081".
	Addr string `json:"addr"`
	// BinaryAddr is the replica's binary-transport "host:port", empty
	// when the replica runs without -binary-port.
	BinaryAddr string `json:"binary_addr,omitempty"`
}

// Map is the consistent-hash shard map: which replica owns which
// deployment. It is what /shardmap serves and what fleet clients cache;
// the ring itself is derived from the public fields, so a Map survives
// a JSON round trip (call Build after decoding).
//
// Ownership is a pure function of (replica IDs, VNodes, deployment
// name): every router, replica, and client that agrees on the member
// list agrees on every owner, with no coordination beyond fetching the
// map. Removing a replica moves only the deployments it owned (they
// fall to the next point on the ring); surviving assignments are
// untouched — the property the re-shard protocol leans on.
type Map struct {
	// Version increments on every membership change; clients use it to
	// detect staleness cheaply.
	Version uint64 `json:"version"`
	// VNodes is the virtual-node count per replica used to build the
	// ring (0 means DefaultVNodes).
	VNodes int `json:"vnodes"`
	// Replicas is the alive member set, sorted by ID.
	Replicas []Replica `json:"replicas"`

	// ring is the sorted vnode points; built by Build, not serialized.
	ring []ringPoint
}

type ringPoint struct {
	hash uint64
	idx  int // index into Replicas
}

// NewMap builds a shard map over the given replicas (copied, then
// sorted by ID) with its ring ready for Owner lookups.
func NewMap(version uint64, replicas []Replica, vnodes int) *Map {
	m := &Map{Version: version, VNodes: vnodes, Replicas: append([]Replica(nil), replicas...)}
	sort.Slice(m.Replicas, func(i, j int) bool { return m.Replicas[i].ID < m.Replicas[j].ID })
	m.Build()
	return m
}

// Build derives the hash ring from the public fields. It must be called
// once after decoding a Map from JSON and before concurrent Owner
// calls; NewMap calls it for you.
func (m *Map) Build() {
	vn := m.VNodes
	if vn <= 0 {
		vn = DefaultVNodes
	}
	m.ring = m.ring[:0]
	for i, r := range m.Replicas {
		for v := 0; v < vn; v++ {
			m.ring = append(m.ring, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", r.ID, v)), idx: i})
		}
	}
	sort.Slice(m.ring, func(a, b int) bool {
		if m.ring[a].hash != m.ring[b].hash {
			return m.ring[a].hash < m.ring[b].hash
		}
		// Tie-break by replica ID so equal hash points (astronomically
		// rare, but fuzzable) still order deterministically everywhere.
		return m.Replicas[m.ring[a].idx].ID < m.Replicas[m.ring[b].idx].ID
	})
}

// Owner returns the replica owning the named deployment: the first
// vnode point at or clockwise of the deployment's hash. ok is false
// for an empty map.
func (m *Map) Owner(deployment string) (Replica, bool) {
	if len(m.ring) == 0 {
		return Replica{}, false
	}
	h := hash64(deployment)
	i := sort.Search(len(m.ring), func(i int) bool { return m.ring[i].hash >= h })
	if i == len(m.ring) {
		i = 0 // wrap past the highest point
	}
	return m.Replicas[m.ring[i].idx], true
}

// ReplicaByID returns the member with the given ID.
func (m *Map) ReplicaByID(id string) (Replica, bool) {
	for _, r := range m.Replicas {
		if r.ID == id {
			return r, true
		}
	}
	return Replica{}, false
}

// hash64 is FNV-1a over s with a splitmix64 finalizer — stable across
// processes and Go versions (which maphash is not; ownership must agree
// fleet-wide). Raw FNV of short, near-identical strings ("r1#0",
// "r1#1", ...) clusters badly on the ring; the finalizer's avalanche
// restores a uniform spread.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}
