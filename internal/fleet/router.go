package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/straightpath/wasn/internal/obs"
	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/topo"
)

// RouterConfig tunes a Router. The zero value is usable.
type RouterConfig struct {
	// VNodes is the per-replica virtual-node count (DefaultVNodes when 0).
	VNodes int
	// HealthEvery is the probe interval (default 500ms). Zero starts the
	// loop at the default; negative disables it (tests drive CheckHealth
	// directly).
	HealthEvery time.Duration
	// HealthStrikes is the consecutive probe failures that mark a
	// replica dead and trigger a re-shard (default 2).
	HealthStrikes int
	// HealthTimeout bounds one probe (default 1s).
	HealthTimeout time.Duration
	// JournalSize bounds the control-plane event journal (default 1024).
	JournalSize int
}

// member is one known replica plus its health bookkeeping.
type member struct {
	rep     Replica
	alive   bool
	strikes int
}

// Router is the fleet control plane and thin data-plane proxy. It owns
// the shard map (membership changes come in via /join and go out via
// re-shards), a desired-state table per deployment (spec + failed +
// moved + epoch — the same portable state serve exports), and proxies
// deployment-scoped requests to the owning replica. The desired-state
// table is what makes kill -9 survivable with no shared disk: when a
// replica dies, the router pushes the dead replica's deployments to
// their new owners via POST /restore, and only then publishes the new
// map version.
type Router struct {
	cfg RouterConfig
	hc  *http.Client

	reg     *obs.Registry
	journal *obs.Journal

	// published is the shard map clients see; swapped atomically only
	// after re-shard state pushes complete.
	published atomic.Pointer[Map]

	// ctrl serialises membership transitions (join, mark-dead): each
	// transition reads the published map, pushes state, then publishes
	// the successor map. mu guards the member and desired tables and is
	// never held across network calls.
	ctrl sync.Mutex
	mu   sync.RWMutex

	members map[string]*member
	desired map[string]*serve.DeploymentState

	reshards  *obs.Counter
	restores  *obs.Counter
	proxied   *obs.Counter
	proxyErrs *obs.Counter
	replicaUp *obs.GaugeVec

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewRouter builds a Router and, unless HealthEvery is negative, starts
// its health loop.
func NewRouter(cfg RouterConfig) *Router {
	if cfg.HealthEvery == 0 {
		cfg.HealthEvery = 500 * time.Millisecond
	}
	if cfg.HealthStrikes <= 0 {
		cfg.HealthStrikes = 2
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = time.Second
	}
	r := &Router{
		cfg:     cfg,
		hc:      &http.Client{Timeout: 30 * time.Second},
		reg:     obs.NewRegistry(),
		journal: obs.NewJournal(cfg.JournalSize),
		members: make(map[string]*member),
		desired: make(map[string]*serve.DeploymentState),
		reshards: obs.NewCounter("wasn_fleet_reshards_total",
			"Shard map versions published after a membership change."),
		restores: obs.NewCounter("wasn_fleet_restores_total",
			"Deployment states pushed to replicas during joins and re-shards."),
		proxied: obs.NewCounter("wasn_fleet_proxied_requests_total",
			"Deployment-scoped requests forwarded to owning replicas."),
		proxyErrs: obs.NewCounter("wasn_fleet_proxy_errors_total",
			"Forwarded requests that failed at the transport (the owner was unreachable)."),
		replicaUp: obs.NewGaugeVec("wasn_fleet_replica_up",
			"Per-replica liveness as seen by the router health loop.", "replica"),
	}
	r.published.Store(NewMap(0, nil, cfg.VNodes))
	r.reg.MustRegister(r.reshards, r.restores, r.proxied, r.proxyErrs, r.replicaUp)
	r.reg.MustRegister(
		obs.NewFunc("wasn_fleet_replicas", "Replicas known to the router (alive or dead).",
			obs.KindGauge, func() float64 {
				r.mu.RLock()
				defer r.mu.RUnlock()
				return float64(len(r.members))
			}),
		obs.NewFunc("wasn_fleet_replicas_alive", "Replicas currently in the shard map.",
			obs.KindGauge, func() float64 {
				r.mu.RLock()
				defer r.mu.RUnlock()
				n := 0
				for _, m := range r.members {
					if m.alive {
						n++
					}
				}
				return float64(n)
			}),
		obs.NewFunc("wasn_fleet_deployments", "Deployments in the desired-state table.",
			obs.KindGauge, func() float64 {
				r.mu.RLock()
				defer r.mu.RUnlock()
				return float64(len(r.desired))
			}),
		obs.NewFunc("wasn_fleet_map_version", "Published shard map version.",
			obs.KindGauge, func() float64 { return float64(r.published.Load().Version) }),
	)
	r.stop = make(chan struct{})
	if cfg.HealthEvery > 0 {
		r.wg.Add(1)
		go r.healthLoop()
	}
	return r
}

// Close stops the health loop.
func (r *Router) Close() error {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
	return nil
}

// Registry exposes the router's wasn_fleet_* metrics.
func (r *Router) Registry() *obs.Registry { return r.reg }

// Journal exposes the control-plane event journal.
func (r *Router) Journal() *obs.Journal { return r.journal }

// Map returns the published shard map.
func (r *Router) Map() *Map { return r.published.Load() }

func (r *Router) record(kind obs.EventKind, replica, deployment string, nodes int, err error) {
	ev := obs.Event{
		Kind: kind, Replica: replica, Deployment: deployment,
		Nodes: nodes, UnixMS: time.Now().UnixMilli(),
	}
	if err != nil {
		ev.Err = err.Error()
	}
	r.journal.Record(ev)
}

// Join adds (or revives) a replica and publishes a new map version once
// the deployments the newcomer takes over have been pushed to it.
func (r *Router) Join(rep Replica) (*Map, error) {
	if rep.ID == "" || rep.Addr == "" {
		return nil, fmt.Errorf("fleet: join needs id and addr")
	}
	r.ctrl.Lock()
	defer r.ctrl.Unlock()

	old := r.published.Load()
	r.mu.Lock()
	r.members[rep.ID] = &member{rep: rep, alive: true}
	next := r.buildMapLocked(old.Version + 1)
	r.mu.Unlock()

	// Push every deployment whose owner changes to the newcomer before
	// anyone can see the new map. Failures leave the state in the table
	// (the health loop or a later join retries); the map is published
	// regardless, because the newcomer is already the consistent-hash
	// owner and the replica rebuilds from spec on first use — the push
	// is what carries churn history, not existence.
	moved := r.transfers(old, next)
	for id, states := range moved {
		if err := r.pushRestore(id, states); err != nil {
			r.record(obs.EventRestore, id, "", len(states), err)
		} else {
			r.restores.Add(int64(len(states)))
			r.record(obs.EventRestore, id, "", len(states), nil)
		}
	}
	r.published.Store(next)
	r.reshards.Inc()
	r.replicaUp.With(rep.ID).Set(1)
	r.record(obs.EventJoin, rep.ID, "", 0, nil)
	r.record(obs.EventReshard, rep.ID, "", len(moved), nil)
	return next, nil
}

// buildMapLocked derives the next shard map from the alive member set.
// Caller holds mu.
func (r *Router) buildMapLocked(version uint64) *Map {
	alive := make([]Replica, 0, len(r.members))
	for _, m := range r.members {
		if m.alive {
			alive = append(alive, m.rep)
		}
	}
	return NewMap(version, alive, r.cfg.VNodes)
}

// transfers returns, per gaining replica ID, the deployment states
// whose ownership differs between the two maps.
func (r *Router) transfers(old, next *Map) map[string][]serve.DeploymentState {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string][]serve.DeploymentState)
	for name, st := range r.desired {
		was, hadOld := old.Owner(name)
		now, hasNew := next.Owner(name)
		if !hasNew {
			continue
		}
		if !hadOld || was.ID != now.ID {
			out[now.ID] = append(out[now.ID], *st)
		}
	}
	for id := range out {
		sort.Slice(out[id], func(a, b int) bool { return out[id][a].Name < out[id][b].Name })
	}
	return out
}

// pushRestore POSTs deployment states to a replica's /restore.
func (r *Router) pushRestore(replicaID string, states []serve.DeploymentState) error {
	r.mu.RLock()
	m, ok := r.members[replicaID]
	r.mu.RUnlock()
	if !ok {
		return fmt.Errorf("fleet: unknown replica %q", replicaID)
	}
	body, err := json.Marshal(map[string]any{"states": states})
	if err != nil {
		return err
	}
	resp, err := r.hc.Post(m.rep.Addr+"/restore", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("fleet: restore push to %s: status %d: %s", replicaID, resp.StatusCode, b)
	}
	return nil
}

// healthLoop probes every alive replica and re-shards around the ones
// that stop answering.
func (r *Router) healthLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.HealthEvery)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.CheckHealth()
		}
	}
}

// CheckHealth runs one probe round synchronously: every alive replica
// gets a GET /readyz; HealthStrikes consecutive failures trigger
// MarkDead. Exposed for tests and for deterministic chaos drills.
func (r *Router) CheckHealth() {
	r.mu.RLock()
	probes := make([]Replica, 0, len(r.members))
	for _, m := range r.members {
		if m.alive {
			probes = append(probes, m.rep)
		}
	}
	r.mu.RUnlock()

	type verdict struct {
		id string
		ok bool
	}
	results := make(chan verdict, len(probes))
	for _, rep := range probes {
		go func(rep Replica) {
			results <- verdict{rep.ID, r.probe(rep)}
		}(rep)
	}
	var dead []string
	for range probes {
		v := <-results
		r.mu.Lock()
		m, ok := r.members[v.id]
		if !ok || !m.alive {
			r.mu.Unlock()
			continue
		}
		if v.ok {
			m.strikes = 0
			r.mu.Unlock()
			r.replicaUp.With(v.id).Set(1)
			continue
		}
		m.strikes++
		strikes := m.strikes
		r.mu.Unlock()
		r.replicaUp.With(v.id).Set(0)
		if strikes >= r.cfg.HealthStrikes {
			dead = append(dead, v.id)
		}
	}
	sort.Strings(dead)
	for _, id := range dead {
		r.MarkDead(id)
	}
}

func (r *Router) probe(rep Replica) bool {
	req, err := http.NewRequest(http.MethodGet, rep.Addr+"/readyz", nil)
	if err != nil {
		return false
	}
	hc := &http.Client{Timeout: r.cfg.HealthTimeout}
	resp, err := hc.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// MarkDead removes a replica from the shard map, pushes its deployments
// to their new owners, then publishes the successor map.
func (r *Router) MarkDead(id string) {
	r.ctrl.Lock()
	defer r.ctrl.Unlock()

	old := r.published.Load()
	r.mu.Lock()
	m, ok := r.members[id]
	if !ok || !m.alive {
		r.mu.Unlock()
		return
	}
	m.alive = false
	next := r.buildMapLocked(old.Version + 1)
	r.mu.Unlock()

	moved := r.transfers(old, next)
	for gainer, states := range moved {
		if err := r.pushRestore(gainer, states); err != nil {
			r.record(obs.EventRestore, gainer, "", len(states), err)
		} else {
			r.restores.Add(int64(len(states)))
			r.record(obs.EventRestore, gainer, "", len(states), nil)
		}
	}
	r.published.Store(next)
	r.reshards.Inc()
	r.replicaUp.With(id).Set(0)
	r.record(obs.EventLeave, id, "", 0, nil)
	r.record(obs.EventReshard, id, "", len(moved), nil)
}

// --- desired-state bookkeeping -------------------------------------

// recordDeploy registers a deployment spec in the desired-state table.
func (r *Router) recordDeploy(name string, spec serve.Spec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.desired[name]; !ok {
		r.desired[name] = &serve.DeploymentState{Name: name, Spec: spec}
	}
}

// recordFail folds a successful /fail into the desired state.
func (r *Router) recordFail(name string, nodes []topo.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.desired[name]
	if !ok {
		return
	}
	dead := make(map[topo.NodeID]bool, len(st.Failed)+len(nodes))
	for _, u := range st.Failed {
		dead[u] = true
	}
	for _, u := range nodes {
		dead[u] = true
	}
	st.Failed = sortedNodeSet(dead)
	st.Epoch++
}

// recordRevive folds a successful /revive into the desired state.
func (r *Router) recordRevive(name string, nodes []topo.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.desired[name]
	if !ok {
		return
	}
	dead := make(map[topo.NodeID]bool, len(st.Failed))
	for _, u := range st.Failed {
		dead[u] = true
	}
	for _, u := range nodes {
		delete(dead, u)
	}
	st.Failed = sortedNodeSet(dead)
	st.Epoch++
}

// recordMove folds a successful /move into the desired state (last
// absolute position per node wins).
func (r *Router) recordMove(name string, moves []topo.Move) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.desired[name]
	if !ok {
		return
	}
	pos := make(map[topo.NodeID]topo.Move, len(st.Moved)+len(moves))
	for _, m := range st.Moved {
		pos[m.Node] = m
	}
	for _, m := range moves {
		pos[m.Node] = m
	}
	// Build a fresh slice: exported copies (transfers, DesiredState)
	// alias the old backing array and must not see this mutation.
	moved := make([]topo.Move, 0, len(pos))
	for _, m := range pos {
		moved = append(moved, m)
	}
	sort.Slice(moved, func(i, j int) bool { return moved[i].Node < moved[j].Node })
	st.Moved = moved
	st.Epoch++
}

func sortedNodeSet(set map[topo.NodeID]bool) []topo.NodeID {
	out := make([]topo.NodeID, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DesiredState returns the desired-state table, sorted by name.
func (r *Router) DesiredState() []serve.DeploymentState {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]serve.DeploymentState, 0, len(r.desired))
	for _, st := range r.desired {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
