package fleet

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/topo"
)

// withCRC re-seals a mutated body with a fresh, matching trailer so the
// decoder — not the checksum — has to reject the corruption.
func withCRC(body []byte) []byte {
	return binary.LittleEndian.AppendUint32(append([]byte(nil), body...), crc32.ChecksumIEEE(body))
}

func sampleSnapshot() Snapshot {
	return Snapshot{
		TakenUnixMS: 1754600000000,
		States: []serve.DeploymentState{
			{
				Name:   "FA-220-7",
				Spec:   serve.Spec{Model: topo.ModelFA, N: 220, Seed: 7},
				Failed: []topo.NodeID{3, 17, 44},
				Moved: []topo.Move{
					{Node: 9, X: 101.5, Y: 88.25},
					{Node: 60, X: 12, Y: 190},
				},
				Epoch: 5,
			},
			{
				Name:  "IA-150-3",
				Spec:  serve.Spec{Model: topo.ModelIA, N: 150, Seed: 3},
				Epoch: 0,
			},
			{
				Name:   "OB-400-9-c25",
				Spec:   serve.Spec{Model: topo.ModelOB, N: 400, Seed: 9, Coverage: 0.25},
				Failed: []topo.NodeID{0},
				Epoch:  1,
			},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	got, err := DecodeSnapshot(EncodeSnapshot(want))
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestSnapshotRoundTripEmpty(t *testing.T) {
	want := Snapshot{TakenUnixMS: 42, States: []serve.DeploymentState{}}
	got, err := DecodeSnapshot(EncodeSnapshot(want))
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if got.TakenUnixMS != 42 || len(got.States) != 0 {
		t.Fatalf("empty snapshot round trip = %+v", got)
	}
}

// TestSnapshotDecodeRejects walks the decoder through every corruption
// class it must refuse: each mutation of a valid snapshot has to come
// back as an error, never a panic or a silently different registry.
func TestSnapshotDecodeRejects(t *testing.T) {
	valid := EncodeSnapshot(sampleSnapshot())
	cases := map[string]func() []byte{
		"empty":     func() []byte { return nil },
		"truncated": func() []byte { return valid[:10] },
		"bad magic": func() []byte {
			b := append([]byte(nil), valid...)
			b[0] ^= 0xff
			return b
		},
		"flipped payload bit": func() []byte {
			b := append([]byte(nil), valid...)
			b[len(b)/2] ^= 0x01
			return b
		},
		"flipped crc": func() []byte {
			b := append([]byte(nil), valid...)
			b[len(b)-1] ^= 0x01
			return b
		},
		"body cut": func() []byte {
			// Drop bytes from the middle but keep a matching CRC: the
			// decoder itself must notice the truncation.
			return withCRC(valid[: len(valid)-30 : len(valid)-30])
		},
		"trailing garbage": func() []byte {
			return withCRC(append(append([]byte(nil), valid[:len(valid)-4]...), 0xde, 0xad))
		},
	}
	for name, mutate := range cases {
		if _, err := DecodeSnapshot(mutate()); err == nil {
			t.Errorf("%s: decoder accepted corrupt input", name)
		}
	}
}

func TestSnapshotUnknownVersion(t *testing.T) {
	b := EncodeSnapshot(Snapshot{})
	body := append([]byte(nil), b[:len(b)-4]...)
	body[len(snapshotMagic)] = 0xee // version field
	if _, err := DecodeSnapshot(withCRC(body)); err == nil {
		t.Fatal("decoder accepted unknown format version")
	}
}

func TestSnapshotFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.snap")
	want := sampleSnapshot()
	if err := WriteSnapshotFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("file round trip diverged")
	}
	// Corrupt one byte on disk; the read must fail loudly.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/3] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotFile(path); err == nil {
		t.Fatal("corrupted snapshot file read back without error")
	}
	if _, err := ReadSnapshotFile(filepath.Join(t.TempDir(), "absent.snap")); err == nil {
		t.Fatal("missing snapshot file read back without error")
	}
}

func TestSnapshotterDebounce(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.snap")
	sn := NewSnapshotter(SnapshotterConfig{
		Path:     path,
		Export:   func() Snapshot { return sampleSnapshot() },
		Debounce: 20 * time.Millisecond,
	})
	// A burst of notifies must coalesce into one write.
	for i := 0; i < 10; i++ {
		sn.Notify()
	}
	deadline := time.Now().Add(5 * time.Second)
	for sn.Writes() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("debounced write never happened")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if w := sn.Writes(); w != 1 {
		t.Fatalf("burst of notifies produced %d writes, want 1", w)
	}
	if _, err := ReadSnapshotFile(path); err != nil {
		t.Fatalf("snapshot unreadable after debounced write: %v", err)
	}
	if err := sn.Close(); err != nil {
		t.Fatal(err)
	}
	sn.Notify() // after Close: must be a no-op, not a panic
	if got, err := ReadSnapshotFile(path); err != nil || len(got.States) != 3 {
		t.Fatalf("final flush broken: %v %+v", err, got)
	}
}

// churnHistory drives a deployment through a fail → move → revive →
// fail sequence, returning the route pairs used for comparison.
func churnHistory(t *testing.T, s *serve.Service, name string) [][2]topo.NodeID {
	t.Helper()
	if err := s.Fail(name, []topo.NodeID{5, 12, 40, 77}); err != nil {
		t.Fatal(err)
	}
	if err := s.Move(name, []topo.Move{
		{Node: 9, X: 101.5, Y: 88.25},
		{Node: 33, X: 55, Y: 140.75},
		{Node: 9, X: 97.5, Y: 91},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Revive(name, []topo.NodeID{12, 77}); err != nil {
		t.Fatal(err)
	}
	if err := s.Fail(name, []topo.NodeID{61, 62}); err != nil {
		t.Fatal(err)
	}
	var pairs [][2]topo.NodeID
	for src := topo.NodeID(0); src < 210; src += 13 {
		pairs = append(pairs, [2]topo.NodeID{src, 219 - src})
	}
	return pairs
}

// TestSnapshotRestoreDifferential is the fleet acceptance pin: a
// snapshot of a churned origin, pushed through the binary codec and
// restored into a fresh replica, must answer every route of all seven
// algorithms bit-identically to the origin — and carry its epoch.
func TestSnapshotRestoreDifferential(t *testing.T) {
	origin := serve.New(serve.Config{})
	defer origin.Close()
	name, err := origin.Deploy("", serve.Spec{Model: topo.ModelFA, N: 220, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pairs := churnHistory(t, origin, name)

	snap := Snapshot{TakenUnixMS: 1, States: origin.ExportState()}
	decoded, err := DecodeSnapshot(EncodeSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}

	restored := serve.New(serve.Config{})
	defer restored.Close()
	if err := restored.RestoreState(decoded.States); err != nil {
		t.Fatal(err)
	}

	for _, alg := range serve.Algorithms() {
		for _, p := range pairs {
			want, _, err := origin.Route(name, alg, p[0], p[1])
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := restored.Route(name, alg, p[0], p[1])
			if err != nil {
				t.Fatal(err)
			}
			if got.Delivered != want.Delivered || got.Reason != want.Reason ||
				got.Hops() != want.Hops() || got.Length != want.Length {
				t.Errorf("%s %d->%d diverged after restore:\n got %+v\nwant %+v",
					alg, p[0], p[1], got, want)
			}
		}
	}

	// The restored registry must also re-export the same state (same
	// failed set, same positions, same epoch) — export∘restore is the
	// identity the re-shard protocol leans on.
	if got, want := restored.ExportState(), origin.ExportState(); !reflect.DeepEqual(got, want) {
		t.Fatalf("re-export diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestRestoreIntoLiveReplica covers the reconcile path: restoring onto
// a replica that already serves the deployment with a different churn
// history must converge its topology to the snapshot's.
func TestRestoreIntoLiveReplica(t *testing.T) {
	origin := serve.New(serve.Config{})
	defer origin.Close()
	name, err := origin.Deploy("", serve.Spec{Model: topo.ModelFA, N: 220, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pairs := churnHistory(t, origin, name)

	// The target replica has its own divergent history, including a dead
	// node the snapshot says is alive.
	target := serve.New(serve.Config{})
	defer target.Close()
	if _, err := target.Deploy(name, serve.Spec{Model: topo.ModelFA, N: 220, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if err := target.Fail(name, []topo.NodeID{5, 100, 101}); err != nil {
		t.Fatal(err)
	}

	if err := target.RestoreState(origin.ExportState()); err != nil {
		t.Fatal(err)
	}
	for _, alg := range serve.Algorithms() {
		for _, p := range pairs {
			want, _, err := origin.Route(name, alg, p[0], p[1])
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := target.Route(name, alg, p[0], p[1])
			if err != nil {
				t.Fatal(err)
			}
			if got.Delivered != want.Delivered || got.Hops() != want.Hops() || got.Length != want.Length {
				t.Errorf("%s %d->%d diverged after live reconcile", alg, p[0], p[1])
			}
		}
	}
}

func TestRestoreRejectsOutOfRange(t *testing.T) {
	s := serve.New(serve.Config{})
	defer s.Close()
	bad := []serve.DeploymentState{{
		Name:   "FA-100-1",
		Spec:   serve.Spec{Model: topo.ModelFA, N: 100, Seed: 1},
		Failed: []topo.NodeID{100},
	}}
	if err := s.RestoreState(bad); err == nil {
		t.Fatal("restore accepted a failed node outside [0,N)")
	}
	bad[0].Failed = nil
	bad[0].Moved = []topo.Move{{Node: -1, X: 1, Y: 1}}
	if err := s.RestoreState(bad); err == nil {
		t.Fatal("restore accepted a moved node outside [0,N)")
	}
}
