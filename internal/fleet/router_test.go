package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/straightpath/wasn/internal/obs"
	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/topo"
)

// testFleet is a router plus N in-process replicas behind httptest
// servers — the whole fleet topology without subprocesses.
type testFleet struct {
	router  *Router
	rt      *httptest.Server
	svcs    []*serve.Service
	servers []*httptest.Server
}

func newTestFleet(t *testing.T, n int) *testFleet {
	t.Helper()
	f := &testFleet{
		// Health loop off: tests drive CheckHealth deterministically.
		router: NewRouter(RouterConfig{HealthEvery: -1, HealthStrikes: 2, HealthTimeout: 500 * time.Millisecond}),
	}
	f.rt = httptest.NewServer(f.router.Handler())
	t.Cleanup(func() {
		f.rt.Close()
		f.router.Close()
		for i := range f.svcs {
			f.servers[i].Close()
			f.svcs[i].Close()
		}
	})
	for i := 0; i < n; i++ {
		svc := serve.New(serve.Config{ReplicaID: fmt.Sprintf("r%d", i)})
		srv := httptest.NewServer(svc.Handler())
		f.svcs = append(f.svcs, svc)
		f.servers = append(f.servers, srv)
		if _, err := f.router.Join(Replica{ID: fmt.Sprintf("r%d", i), Addr: srv.URL}); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func (f *testFleet) post(t *testing.T, path string, body any) (int, map[string]json.RawMessage) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(f.rt.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: bad JSON: %v", path, err)
	}
	return resp.StatusCode, out
}

// replicaFor finds the index of the replica owning a deployment.
func (f *testFleet) replicaFor(t *testing.T, name string) int {
	t.Helper()
	rep, ok := f.router.Map().Owner(name)
	if !ok {
		t.Fatalf("no owner for %q", name)
	}
	var id int
	if _, err := fmt.Sscanf(rep.ID, "r%d", &id); err != nil {
		t.Fatal(err)
	}
	return id
}

func deployBody(name string, n int, seed uint64) map[string]any {
	return map[string]any{"name": name, "model": "fa", "n": n, "seed": seed}
}

func TestRouterProxiesToOwner(t *testing.T) {
	f := newTestFleet(t, 3)
	const dep = "FA-200-9"
	if code, body := f.post(t, "/deploy", deployBody(dep, 200, 9)); code != 200 {
		t.Fatalf("deploy through router: %d %s", code, body)
	}

	// The deployment must exist on exactly the owning replica.
	owner := f.replicaFor(t, dep)
	for i, svc := range f.svcs {
		found := false
		for _, d := range svc.Deployments() {
			if d == dep {
				found = true
			}
		}
		if found != (i == owner) {
			t.Errorf("replica r%d has deployment = %v, owner is r%d", i, found, owner)
		}
	}

	// Route and mutate through the proxy.
	if code, body := f.post(t, "/route", map[string]any{
		"deployment": dep, "algorithm": "SLGF2", "src": 0, "dst": 150,
	}); code != 200 {
		t.Fatalf("route through router: %d %s", code, body)
	}
	if code, _ := f.post(t, "/fail", map[string]any{"deployment": dep, "nodes": []int{3, 4}}); code != 200 {
		t.Fatal("fail through router")
	}
	// The desired-state table must have tracked the mutation.
	var st *serve.DeploymentState
	for _, s := range f.router.DesiredState() {
		if s.Name == dep {
			cp := s
			st = &cp
		}
	}
	if st == nil || len(st.Failed) != 2 || st.Failed[0] != 3 {
		t.Fatalf("desired state did not track /fail: %+v", st)
	}

	// Unknown deployment routes to *some* owner and comes back 4xx.
	if code, _ := f.post(t, "/route", map[string]any{
		"deployment": "nope", "algorithm": "GF", "src": 0, "dst": 1,
	}); code != http.StatusBadRequest {
		t.Fatalf("unknown deployment = %d, want 400", code)
	}
}

func TestRouterBatchSplitsAcrossOwners(t *testing.T) {
	f := newTestFleet(t, 3)
	// Deploy several deployments; with 3 replicas and consistent
	// hashing, at least two land on different owners.
	deps := []string{"FA-150-1", "FA-150-2", "FA-150-3", "FA-150-4", "FA-150-5"}
	ownersSeen := map[int]bool{}
	for i, dep := range deps {
		if code, _ := f.post(t, "/deploy", deployBody(dep, 150, uint64(i+1))); code != 200 {
			t.Fatal("deploy failed")
		}
		ownersSeen[f.replicaFor(t, dep)] = true
	}
	if len(ownersSeen) < 2 {
		t.Skip("all test deployments hashed to one replica; widen the set")
	}

	var reqs []serve.RouteRequest
	for i := 0; i < 60; i++ {
		reqs = append(reqs, serve.RouteRequest{
			Deployment: deps[i%len(deps)], Algorithm: "GF",
			Src: topo.NodeID(i % 150), Dst: topo.NodeID((i*7 + 31) % 150),
		})
	}
	code, body := f.post(t, "/batch", map[string]any{"requests": reqs})
	if code != 200 {
		t.Fatalf("batch through router: %d", code)
	}
	var results []serve.RouteResponse
	if err := json.Unmarshal(body["results"], &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != len(reqs) {
		t.Fatalf("got %d results, want %d", len(results), len(reqs))
	}
	for i, res := range results {
		if res.Err != "" {
			t.Errorf("request %d failed in-band: %s", i, res.Err)
		}
	}

	// Cross-check a few against direct replica answers.
	for i := 0; i < 10; i++ {
		q := reqs[i]
		svc := f.svcs[f.replicaFor(t, q.Deployment)]
		want, _, err := svc.Route(q.Deployment, q.Algorithm, q.Src, q.Dst)
		if err != nil {
			t.Fatal(err)
		}
		if results[i].Delivered != want.Delivered || results[i].Hops != want.Hops() {
			t.Errorf("request %d diverged from direct route", i)
		}
	}
}

// TestRouterReshardOnDeath is the control-plane core: kill the owning
// replica, run health checks, and the deployment must be served — with
// its churn history — by a surviving replica under a new map version.
func TestRouterReshardOnDeath(t *testing.T) {
	f := newTestFleet(t, 3)
	const dep = "FA-220-7"
	if code, _ := f.post(t, "/deploy", deployBody(dep, 220, 7)); code != 200 {
		t.Fatal("deploy failed")
	}
	if code, _ := f.post(t, "/fail", map[string]any{"deployment": dep, "nodes": []int{5, 12, 40}}); code != 200 {
		t.Fatal("fail failed")
	}
	if code, _ := f.post(t, "/revive", map[string]any{"deployment": dep, "nodes": []int{12}}); code != 200 {
		t.Fatal("revive failed")
	}

	owner := f.replicaFor(t, dep)
	oldVersion := f.router.Map().Version

	// Answer of record from the doomed owner, for the differential
	// check after the re-shard.
	want, _, err := f.svcs[owner].Route(dep, "SLGF2", 0, 150)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the owner (close its HTTP server: connection refused, same
	// as kill -9 from the router's viewpoint).
	f.servers[owner].Close()
	for i := 0; i < 2; i++ { // HealthStrikes = 2
		f.router.CheckHealth()
	}

	m := f.router.Map()
	if m.Version <= oldVersion {
		t.Fatalf("map version did not advance: %d <= %d", m.Version, oldVersion)
	}
	if len(m.Replicas) != 2 {
		t.Fatalf("map has %d replicas, want 2", len(m.Replicas))
	}
	newOwner := f.replicaFor(t, dep)
	if newOwner == owner {
		t.Fatalf("deployment still owned by dead replica r%d", owner)
	}

	// The new owner must answer with the full churn history restored.
	code, body := f.post(t, "/route", map[string]any{
		"deployment": dep, "algorithm": "SLGF2", "src": 0, "dst": 150,
	})
	if code != 200 {
		t.Fatalf("route after re-shard: %d %s", code, body)
	}
	var got serve.RouteResponse
	data, _ := json.Marshal(map[string]json.RawMessage(body))
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Delivered != want.Delivered || got.Hops != want.Hops() || got.Length != want.Length {
		t.Errorf("post-reshard route diverged: got %+v, want delivered=%v hops=%d len=%g",
			got, want.Delivered, want.Hops(), want.Length)
	}
	failed, err := f.svcs[newOwner].Failed(dep)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 2 {
		t.Fatalf("restored failed set = %v, want [5 40]", failed)
	}

	// Journal must carry leave + reshard + restore events.
	kinds := map[obs.EventKind]int{}
	for _, ev := range f.router.Journal().Tail(0) {
		kinds[ev.Kind]++
	}
	if kinds[obs.EventLeave] == 0 || kinds[obs.EventReshard] == 0 || kinds[obs.EventRestore] == 0 {
		t.Errorf("journal missing control-plane events: %v", kinds)
	}
	// And the metrics must gate.
	text := f.routerMetrics(t)
	for _, fam := range []string{
		"wasn_fleet_replicas", "wasn_fleet_replicas_alive", "wasn_fleet_reshards_total",
		"wasn_fleet_proxied_requests_total", "wasn_fleet_restores_total", "wasn_fleet_replica_up",
	} {
		if !strings.Contains(text, fam) {
			t.Errorf("router /metrics missing %s", fam)
		}
	}
}

func (f *testFleet) routerMetrics(t *testing.T) string {
	t.Helper()
	resp, err := http.Get(f.rt.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRouterJoinTransfersOwnership: a new replica joining takes over
// its consistent-hash share, with state pushed before the map flips.
func TestRouterJoinTransfersOwnership(t *testing.T) {
	f := newTestFleet(t, 2)
	deps := []string{"FA-150-1", "FA-150-2", "FA-150-3", "FA-150-4", "FA-150-5", "FA-150-6"}
	for i, dep := range deps {
		if code, _ := f.post(t, "/deploy", deployBody(dep, 150, uint64(i+1))); code != 200 {
			t.Fatal("deploy failed")
		}
		if code, _ := f.post(t, "/fail", map[string]any{"deployment": dep, "nodes": []int{1}}); code != 200 {
			t.Fatal("fail failed")
		}
	}
	before := map[string]int{}
	for _, dep := range deps {
		before[dep] = f.replicaFor(t, dep)
	}

	// Join r2.
	svc := serve.New(serve.Config{ReplicaID: "r2"})
	srv := httptest.NewServer(svc.Handler())
	f.svcs = append(f.svcs, svc)
	f.servers = append(f.servers, srv)
	if _, err := f.router.Join(Replica{ID: "r2", Addr: srv.URL}); err != nil {
		t.Fatal(err)
	}

	movedAny := false
	for _, dep := range deps {
		after := f.replicaFor(t, dep)
		if after == before[dep] {
			continue
		}
		movedAny = true
		if after != 2 {
			t.Errorf("%s moved to r%d on join; only the newcomer may gain", dep, after)
		}
		// The newcomer must already hold the deployment's churn history.
		failed, err := f.svcs[2].Failed(dep)
		if err != nil {
			t.Fatalf("restored deployment %s missing on r2: %v", dep, err)
		}
		if len(failed) != 1 || failed[0] != 1 {
			t.Errorf("restored failed set for %s = %v, want [1]", dep, failed)
		}
	}
	if !movedAny {
		t.Skip("no deployment re-homed to the newcomer; widen the set")
	}
}

func TestRouterNoReplicas(t *testing.T) {
	r := NewRouter(RouterConfig{HealthEvery: -1})
	defer r.Close()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/route", "application/json",
		strings.NewReader(`{"deployment":"x","algorithm":"GF","src":0,"dst":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("routing with no replicas = %d, want 502", resp.StatusCode)
	}
}
