package fleet

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/straightpath/wasn/internal/serve"
)

// DefaultBinaryTimeout bounds one binary round trip (dial, write, read
// through the terminator). Big batches on a loaded replica take a
// while; liveness failures surface as timeouts, not hangs.
const DefaultBinaryTimeout = 60 * time.Second

// Client is a binary-transport client over one persistent TCP
// connection. Calls are serialised with a mutex — one request/response
// exchange in flight per conn; run several Clients for parallelism
// (the fleet driver keeps one per worker). A Client whose stream broke
// returns errors from every subsequent call; the owner reconnects by
// making a new one.
type Client struct {
	addr    string
	timeout time.Duration

	mu     sync.Mutex
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	nextID uint32
	broken bool
}

// Dial connects a binary client. timeout bounds the dial and every
// subsequent round trip (DefaultBinaryTimeout when 0).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = DefaultBinaryTimeout
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("fleet: dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &Client{
		addr:    addr,
		timeout: timeout,
		conn:    conn,
		r:       bufio.NewReaderSize(conn, 64<<10),
		w:       bufio.NewWriterSize(conn, 64<<10),
	}, nil
}

// Addr returns the dialed address.
func (c *Client) Addr() string { return c.addr }

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.broken = true
	return c.conn.Close()
}

// fail marks the stream unusable and closes it.
func (c *Client) fail(err error) error {
	c.broken = true
	c.conn.Close()
	return err
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return errConnBroken
	}
	c.conn.SetDeadline(time.Now().Add(c.timeout))
	if err := writeFrame(c.w, framePing, []byte("hi")); err != nil {
		return c.fail(err)
	}
	if err := c.w.Flush(); err != nil {
		return c.fail(err)
	}
	typ, payload, err := readFrame(c.r)
	if err != nil {
		return c.fail(err)
	}
	if typ != framePong || string(payload) != "hi" {
		return c.fail(fmt.Errorf("fleet: bad pong (type %d)", typ))
	}
	return nil
}

// Batch routes a batch over the binary transport, returning results in
// request order (the serve.Batch contract). Per-request failures come
// back in-band in RouteResponse.Err; a returned error means the
// exchange itself failed and the connection is no longer usable.
func (c *Client) Batch(reqs []serve.RouteRequest) ([]serve.RouteResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return nil, errConnBroken
	}
	c.nextID++
	id := c.nextID
	c.conn.SetDeadline(time.Now().Add(c.timeout))
	if err := writeFrame(c.w, frameBatch, encodeBatchRequest(id, reqs)); err != nil {
		return nil, c.fail(err)
	}
	if err := c.w.Flush(); err != nil {
		return nil, c.fail(err)
	}

	out := make([]serve.RouteResponse, len(reqs))
	filled := 0
	for {
		typ, payload, err := readFrame(c.r)
		if err != nil {
			return nil, c.fail(err)
		}
		switch typ {
		case frameBatchChunk:
			cid, start, results, err := decodeBatchChunk(payload)
			if err != nil {
				return nil, c.fail(err)
			}
			if cid != id || start < 0 || start+len(results) > len(out) {
				return nil, c.fail(fmt.Errorf("fleet: chunk desync (id %d start %d n %d)", cid, start, len(results)))
			}
			copy(out[start:], results)
			filled += len(results)
		case frameBatchEnd:
			cid, total, err := decodeBatchEnd(payload)
			if err != nil {
				return nil, c.fail(err)
			}
			if cid != id || total != len(out) || filled != len(out) {
				return nil, c.fail(fmt.Errorf("fleet: batch desync (id %d total %d filled %d want %d)", cid, total, filled, len(out)))
			}
			return out, nil
		case frameError:
			_, msg := decodeError(payload)
			return nil, c.fail(fmt.Errorf("fleet: server error: %s", msg))
		default:
			return nil, c.fail(fmt.Errorf("fleet: unexpected frame type %d", typ))
		}
	}
}
