package fleet

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/topo"
)

// Snapshot binary format, version 1. Everything is little-endian:
//
//	[8]byte  magic "WASNSNP1"
//	u16      format version (1)
//	u64      taken-at timestamp, unix milliseconds
//	u32      deployment count
//	per deployment:
//	  u16 + bytes   name
//	  u8            model (topo.DeployModel)
//	  u32           n
//	  u64           seed
//	  f64           coverage
//	  u64           epoch
//	  u32           failed count, then u32 per node id
//	  u32           moved count, then (u32 node, f64 x, f64 y) per move
//	u32      CRC32 (IEEE) of every preceding byte
//
// The format is append-only versioned: readers reject unknown versions
// rather than guessing, and the CRC trailer turns torn or bit-rotted
// files into clean errors instead of silently wrong registries.
const (
	snapshotMagic = "WASNSNP1"
	// SnapshotVersion is the current encoder's format version.
	SnapshotVersion = 1
)

// Snapshot is a point-in-time copy of a replica's registry state: what
// the snapshotter persists to disk and what the router pushes to a
// failed replica's successors during a re-shard.
type Snapshot struct {
	// TakenUnixMS is when the snapshot was captured (unix milliseconds).
	TakenUnixMS uint64
	// States is the per-deployment portable state, sorted by name (the
	// order serve.ExportState emits).
	States []serve.DeploymentState
}

// EncodeSnapshot serialises a snapshot to the version-1 binary format.
func EncodeSnapshot(s Snapshot) []byte {
	w := make([]byte, 0, 64+64*len(s.States))
	w = append(w, snapshotMagic...)
	w = binary.LittleEndian.AppendUint16(w, SnapshotVersion)
	w = binary.LittleEndian.AppendUint64(w, s.TakenUnixMS)
	w = binary.LittleEndian.AppendUint32(w, uint32(len(s.States)))
	for _, st := range s.States {
		w = binary.LittleEndian.AppendUint16(w, uint16(len(st.Name)))
		w = append(w, st.Name...)
		w = append(w, byte(st.Spec.Model))
		w = binary.LittleEndian.AppendUint32(w, uint32(st.Spec.N))
		w = binary.LittleEndian.AppendUint64(w, st.Spec.Seed)
		w = binary.LittleEndian.AppendUint64(w, math.Float64bits(st.Spec.Coverage))
		w = binary.LittleEndian.AppendUint64(w, st.Epoch)
		w = binary.LittleEndian.AppendUint32(w, uint32(len(st.Failed)))
		for _, u := range st.Failed {
			w = binary.LittleEndian.AppendUint32(w, uint32(u))
		}
		w = binary.LittleEndian.AppendUint32(w, uint32(len(st.Moved)))
		for _, m := range st.Moved {
			w = binary.LittleEndian.AppendUint32(w, uint32(m.Node))
			w = binary.LittleEndian.AppendUint64(w, math.Float64bits(m.X))
			w = binary.LittleEndian.AppendUint64(w, math.Float64bits(m.Y))
		}
	}
	return binary.LittleEndian.AppendUint32(w, crc32.ChecksumIEEE(w))
}

// snapReader is a bounds-checked cursor over an encoded snapshot. Every
// read reports truncation through ok; the decoder turns the first false
// into an error, so malformed input can never index past the buffer.
type snapReader struct {
	b   []byte
	off int
}

func (r *snapReader) take(n int) ([]byte, bool) {
	if n < 0 || len(r.b)-r.off < n {
		return nil, false
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, true
}

func (r *snapReader) u8() (byte, bool) {
	b, ok := r.take(1)
	if !ok {
		return 0, false
	}
	return b[0], true
}

func (r *snapReader) u16() (uint16, bool) {
	b, ok := r.take(2)
	if !ok {
		return 0, false
	}
	return binary.LittleEndian.Uint16(b), true
}

func (r *snapReader) u32() (uint32, bool) {
	b, ok := r.take(4)
	if !ok {
		return 0, false
	}
	return binary.LittleEndian.Uint32(b), true
}

func (r *snapReader) u64() (uint64, bool) {
	b, ok := r.take(8)
	if !ok {
		return 0, false
	}
	return binary.LittleEndian.Uint64(b), true
}

func (r *snapReader) f64() (float64, bool) {
	u, ok := r.u64()
	return math.Float64frombits(u), ok
}

// errSnapshot wraps decode failures with a stable prefix.
func errSnapshot(format string, args ...any) error {
	return fmt.Errorf("fleet: snapshot: "+format, args...)
}

// DecodeSnapshot parses the version-1 binary format. It is safe on
// arbitrary input (the fuzzer's contract): truncation, bad magic, an
// unknown version, a CRC mismatch, and absurd counts all return errors,
// and allocations are bounded by the input length rather than by
// attacker-chosen count fields.
func DecodeSnapshot(b []byte) (Snapshot, error) {
	var s Snapshot
	if len(b) < len(snapshotMagic)+2+8+4+4 {
		return s, errSnapshot("truncated: %d bytes", len(b))
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.ChecksumIEEE(body); got != want {
		return s, errSnapshot("CRC mismatch: %08x != %08x", got, want)
	}
	r := &snapReader{b: body}
	magic, _ := r.take(len(snapshotMagic))
	if string(magic) != snapshotMagic {
		return s, errSnapshot("bad magic %q", magic)
	}
	ver, _ := r.u16()
	if ver != SnapshotVersion {
		return s, errSnapshot("unknown format version %d", ver)
	}
	s.TakenUnixMS, _ = r.u64()
	count, ok := r.u32()
	if !ok {
		return s, errSnapshot("truncated header")
	}
	// A deployment record is at least 35 bytes; reject counts the buffer
	// cannot possibly hold before allocating for them.
	const minRecord = 2 + 1 + 4 + 8 + 8 + 8 + 4 + 4
	if int64(count)*minRecord > int64(len(body)-r.off) {
		return s, errSnapshot("deployment count %d exceeds buffer", count)
	}
	s.States = make([]serve.DeploymentState, 0, count)
	for i := uint32(0); i < count; i++ {
		st, err := decodeDeployment(r, int(i))
		if err != nil {
			return Snapshot{}, err
		}
		s.States = append(s.States, st)
	}
	if r.off != len(body) {
		return Snapshot{}, errSnapshot("%d trailing bytes after last deployment", len(body)-r.off)
	}
	return s, nil
}

func decodeDeployment(r *snapReader, i int) (serve.DeploymentState, error) {
	var st serve.DeploymentState
	nameLen, ok := r.u16()
	if !ok {
		return st, errSnapshot("deployment %d: truncated name length", i)
	}
	name, ok := r.take(int(nameLen))
	if !ok {
		return st, errSnapshot("deployment %d: truncated name", i)
	}
	st.Name = string(name)
	model, ok := r.u8()
	if !ok {
		return st, errSnapshot("deployment %q: truncated spec", st.Name)
	}
	st.Spec.Model = topo.DeployModel(model)
	n, ok := r.u32()
	if !ok {
		return st, errSnapshot("deployment %q: truncated spec", st.Name)
	}
	st.Spec.N = int(n)
	if st.Spec.Seed, ok = r.u64(); !ok {
		return st, errSnapshot("deployment %q: truncated spec", st.Name)
	}
	if st.Spec.Coverage, ok = r.f64(); !ok {
		return st, errSnapshot("deployment %q: truncated spec", st.Name)
	}
	if st.Epoch, ok = r.u64(); !ok {
		return st, errSnapshot("deployment %q: truncated epoch", st.Name)
	}
	nFailed, ok := r.u32()
	if !ok || int64(nFailed)*4 > int64(len(r.b)-r.off) {
		return st, errSnapshot("deployment %q: bad failed count", st.Name)
	}
	if nFailed > 0 {
		st.Failed = make([]topo.NodeID, 0, nFailed)
		for j := uint32(0); j < nFailed; j++ {
			u, ok := r.u32()
			if !ok {
				return st, errSnapshot("deployment %q: truncated failed set", st.Name)
			}
			st.Failed = append(st.Failed, topo.NodeID(u))
		}
	}
	nMoved, ok := r.u32()
	if !ok || int64(nMoved)*20 > int64(len(r.b)-r.off) {
		return st, errSnapshot("deployment %q: bad moved count", st.Name)
	}
	if nMoved > 0 {
		st.Moved = make([]topo.Move, 0, nMoved)
		for j := uint32(0); j < nMoved; j++ {
			node, ok1 := r.u32()
			x, ok2 := r.f64()
			y, ok3 := r.f64()
			if !ok1 || !ok2 || !ok3 {
				return st, errSnapshot("deployment %q: truncated move list", st.Name)
			}
			st.Moved = append(st.Moved, topo.Move{Node: topo.NodeID(node), X: x, Y: y})
		}
	}
	return st, nil
}

// WriteSnapshotFile atomically persists a snapshot: encode, write to a
// temp file in the same directory, fsync, rename. A crash mid-write
// leaves either the old snapshot or the new one, never a torn file —
// and the CRC trailer catches anything that slips through anyway.
func WriteSnapshotFile(path string, s Snapshot) error {
	data := EncodeSnapshot(s)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".wasn-snapshot-*")
	if err != nil {
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	return nil
}

// ReadSnapshotFile loads and decodes a snapshot written by
// WriteSnapshotFile.
func ReadSnapshotFile(path string) (Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("fleet: snapshot: %w", err)
	}
	return DecodeSnapshot(b)
}
