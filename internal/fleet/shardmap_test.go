package fleet

import (
	"encoding/json"
	"fmt"
	"testing"
)

func testReplicas(n int) []Replica {
	out := make([]Replica, n)
	for i := range out {
		out[i] = Replica{ID: fmt.Sprintf("r%d", i), Addr: fmt.Sprintf("http://127.0.0.1:%d", 9000+i)}
	}
	return out
}

func TestOwnerDeterministicAndJSONStable(t *testing.T) {
	m := NewMap(3, testReplicas(3), 0)
	deps := []string{"FA-500-42", "IA-300-7", "OB-400-9-c25", "FA-300-7"}
	want := map[string]string{}
	for _, d := range deps {
		r, ok := m.Owner(d)
		if !ok {
			t.Fatalf("Owner(%q) found no replica", d)
		}
		want[d] = r.ID
	}
	// The same map after a JSON round trip (the /shardmap wire path)
	// must yield identical owners.
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var m2 Map
	if err := json.Unmarshal(b, &m2); err != nil {
		t.Fatal(err)
	}
	m2.Build()
	if m2.Version != 3 {
		t.Fatalf("version lost in round trip: %d", m2.Version)
	}
	for _, d := range deps {
		r, _ := m2.Owner(d)
		if r.ID != want[d] {
			t.Errorf("owner of %q diverged after JSON round trip: %s != %s", d, r.ID, want[d])
		}
	}
}

func TestOwnerEmptyMap(t *testing.T) {
	m := NewMap(1, nil, 0)
	if _, ok := m.Owner("FA-500-42"); ok {
		t.Fatal("empty map claimed an owner")
	}
}

func TestVNodeBalance(t *testing.T) {
	m := NewMap(1, testReplicas(4), 0)
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		r, _ := m.Owner(fmt.Sprintf("FA-%d-%d", 100+i%900, i))
		counts[r.ID]++
	}
	mean := n / 4
	for id, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Errorf("replica %s owns %d of %d deployments (mean %d): ring badly imbalanced", id, c, n, mean)
		}
	}
	if len(counts) != 4 {
		t.Errorf("only %d of 4 replicas own anything", len(counts))
	}
}

// TestMinimalMovementOnRemoval pins the consistent-hashing property the
// re-shard protocol relies on: removing one replica relocates only the
// deployments that replica owned — every surviving assignment is
// untouched, so the router restores state only onto the failed
// replica's successors.
func TestMinimalMovementOnRemoval(t *testing.T) {
	reps := testReplicas(4)
	before := NewMap(1, reps, 0)
	after := NewMap(2, reps[:3], 0) // drop r3

	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		dep := fmt.Sprintf("FA-%d-%d", 100+i%900, i)
		ob, _ := before.Owner(dep)
		oa, _ := after.Owner(dep)
		if ob.ID == "r3" {
			if oa.ID == "r3" {
				t.Fatalf("deployment %q still owned by removed replica", dep)
			}
			moved++
			continue
		}
		if oa.ID != ob.ID {
			t.Errorf("deployment %q moved from surviving %s to %s", dep, ob.ID, oa.ID)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

func TestReplicaByID(t *testing.T) {
	m := NewMap(1, testReplicas(2), 0)
	if r, ok := m.ReplicaByID("r1"); !ok || r.Addr == "" {
		t.Fatalf("ReplicaByID(r1) = %+v, %v", r, ok)
	}
	if _, ok := m.ReplicaByID("nope"); ok {
		t.Fatal("found a replica that does not exist")
	}
}
