package fleet

import (
	"sync"
	"time"
)

// DefaultSnapshotDebounce batches bursts of registry changes (a churn
// scenario failing ten nodes fires ten OnStateChange calls) into one
// disk write.
const DefaultSnapshotDebounce = 200 * time.Millisecond

// Snapshotter persists registry state to one snapshot file, debounced.
// Hang Notify off serve's Config.OnStateChange; every burst of changes
// becomes a single atomic WriteSnapshotFile shortly after the burst
// ends. Export is called outside any Snapshotter lock, so it is safe
// for it to take service locks (serve.ExportState does).
type Snapshotter struct {
	path     string
	export   func() Snapshot
	debounce time.Duration
	onError  func(error)

	mu     sync.Mutex
	timer  *time.Timer
	closed bool
	wg     sync.WaitGroup

	writes uint64 // guarded by mu; exposed for the fleet gauge
}

// SnapshotterConfig configures NewSnapshotter.
type SnapshotterConfig struct {
	// Path is the snapshot file to maintain.
	Path string
	// Export captures the current state; typically it wraps
	// serve.ExportState plus a timestamp.
	Export func() Snapshot
	// Debounce is the quiet period before a write
	// (DefaultSnapshotDebounce when 0).
	Debounce time.Duration
	// OnError observes failed writes (nil means they are dropped;
	// the next change retries anyway).
	OnError func(error)
}

// NewSnapshotter builds a Snapshotter. It writes nothing until the
// first Notify.
func NewSnapshotter(cfg SnapshotterConfig) *Snapshotter {
	d := cfg.Debounce
	if d <= 0 {
		d = DefaultSnapshotDebounce
	}
	return &Snapshotter{path: cfg.Path, export: cfg.Export, debounce: d, onError: cfg.OnError}
}

// Notify schedules a snapshot write after the debounce window. Safe for
// concurrent use and cheap enough for hot mutation paths: it arms or
// extends a timer, nothing more.
func (sn *Snapshotter) Notify() {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if sn.closed {
		return
	}
	if sn.timer != nil {
		sn.timer.Reset(sn.debounce)
		return
	}
	sn.wg.Add(1)
	sn.timer = time.AfterFunc(sn.debounce, func() {
		defer sn.wg.Done()
		sn.mu.Lock()
		sn.timer = nil
		closed := sn.closed
		sn.mu.Unlock()
		if !closed {
			sn.flush()
		}
	})
}

// Flush writes a snapshot immediately, regardless of the debounce
// state. Close calls it; tests and graceful shutdown paths may too.
func (sn *Snapshotter) Flush() error {
	return sn.flush()
}

func (sn *Snapshotter) flush() error {
	err := WriteSnapshotFile(sn.path, sn.export())
	if err != nil {
		if sn.onError != nil {
			sn.onError(err)
		}
		return err
	}
	sn.mu.Lock()
	sn.writes++
	sn.mu.Unlock()
	return nil
}

// Writes reports completed snapshot writes (the wasn_fleet_snapshot
// series reads it).
func (sn *Snapshotter) Writes() uint64 {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.writes
}

// Close stops the timer, waits out any in-flight write, and flushes a
// final snapshot so shutdown never loses the last debounce window.
func (sn *Snapshotter) Close() error {
	sn.mu.Lock()
	if sn.closed {
		sn.mu.Unlock()
		return nil
	}
	sn.closed = true
	if sn.timer != nil && sn.timer.Stop() {
		sn.wg.Done() // timer drained without firing
		sn.timer = nil
	}
	sn.mu.Unlock()
	sn.wg.Wait()
	return sn.flush()
}
