package fleet

import (
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/topo"
)

func startBinaryServer(t *testing.T, svc *serve.Service) *BinaryServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewBinaryServer(svc, ln)
	t.Cleanup(func() { srv.Close() })
	return srv
}

func testService(t *testing.T) (*serve.Service, string) {
	t.Helper()
	svc := serve.New(serve.Config{})
	t.Cleanup(func() { svc.Close() })
	name, err := svc.Deploy("", serve.Spec{Model: topo.ModelFA, N: 180, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return svc, name
}

// TestBinaryBatchMatchesDirect pins the transport's correctness: a
// batch pushed through frames must come back exactly as the in-process
// Batch call returns it, including in-band per-request errors.
func TestBinaryBatchMatchesDirect(t *testing.T) {
	svc, name := testService(t)
	srv := startBinaryServer(t, svc)
	c, err := Dial(srv.Addr(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}

	var reqs []serve.RouteRequest
	for src := topo.NodeID(0); src < 170; src += 2 {
		for _, alg := range serve.Algorithms() {
			reqs = append(reqs, serve.RouteRequest{Deployment: name, Algorithm: alg, Src: src, Dst: 179 - src})
		}
	}
	// In-band error cases: unknown deployment, unknown algorithm, node
	// out of range (negative survives the two's-complement encoding).
	reqs = append(reqs,
		serve.RouteRequest{Deployment: "nope", Algorithm: "GF", Src: 0, Dst: 1},
		serve.RouteRequest{Deployment: name, Algorithm: "bogus", Src: 0, Dst: 1},
		serve.RouteRequest{Deployment: name, Algorithm: "GF", Src: -3, Dst: 1},
	)

	want := svc.Batch(reqs)
	got, err := c.Batch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		// Cached differs between the two passes by design (the direct
		// batch warmed the cache); compare everything else.
		g, w := got[i], want[i]
		g.Cached, w.Cached = false, false
		if !reflect.DeepEqual(g, w) {
			t.Errorf("result %d diverged:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	if len(want) <= batchChunkSize {
		t.Fatalf("test batch (%d) does not exercise chunked streaming (chunk %d)", len(want), batchChunkSize)
	}

	_, batches, routes := srv.Stats()
	if batches != 1 || routes != uint64(len(reqs)) {
		t.Errorf("server stats = %d batches / %d routes, want 1 / %d", batches, routes, len(reqs))
	}
}

func TestBinaryEmptyBatch(t *testing.T) {
	svc, _ := testService(t)
	srv := startBinaryServer(t, svc)
	c, err := Dial(srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Batch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}

// TestBinaryConcurrentClients exercises several persistent connections
// pushing batches at once — the fleet driver's shape.
func TestBinaryConcurrentClients(t *testing.T) {
	svc, name := testService(t)
	srv := startBinaryServer(t, svc)

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed topo.NodeID) {
			defer wg.Done()
			c, err := Dial(srv.Addr(), 10*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for iter := 0; iter < 5; iter++ {
				var reqs []serve.RouteRequest
				for i := topo.NodeID(0); i < 40; i++ {
					src := (seed*31 + i) % 180
					reqs = append(reqs, serve.RouteRequest{
						Deployment: name, Algorithm: "SLGF2", Src: src, Dst: (src + 90) % 180,
					})
				}
				res, err := c.Batch(reqs)
				if err != nil {
					errs <- err
					return
				}
				for _, r := range res {
					if r.Err != "" {
						errs <- errConnBroken
						return
					}
				}
			}
		}(topo.NodeID(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestBinaryServerRejectsGarbage: a malformed frame must produce a
// frameError (or a dropped conn) — never a hang or panic — and the
// client must report the stream broken afterwards.
func TestBinaryServerRejectsGarbage(t *testing.T) {
	svc, _ := testService(t)
	srv := startBinaryServer(t, svc)

	conn, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	// Frame type 99 does not exist.
	if err := writeFrame(conn, 99, []byte("junk")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		t.Fatalf("expected an error frame, got read error %v", err)
	}
	if typ != frameError {
		t.Fatalf("frame type = %d, want frameError", typ)
	}
	if _, msg := decodeError(payload); msg == "" {
		t.Fatal("empty error message")
	}

	// A truncated batch frame on a fresh conn: the server must close it.
	conn2, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	conn2.SetDeadline(time.Now().Add(5 * time.Second))
	if err := writeFrame(conn2, frameBatch, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := readFrame(conn2); err == nil && typ != frameError {
		t.Fatalf("truncated batch answered with frame type %d", typ)
	}
}

func TestBinaryClientBrokenAfterServerClose(t *testing.T) {
	svc, name := testService(t)
	srv := startBinaryServer(t, svc)
	c, err := Dial(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	req := []serve.RouteRequest{{Deployment: name, Algorithm: "GF", Src: 0, Dst: 1}}
	if _, err := c.Batch(req); err == nil {
		t.Fatal("batch succeeded against a closed server")
	}
	if _, err := c.Batch(req); err == nil {
		t.Fatal("broken client did not stay broken")
	}
}
