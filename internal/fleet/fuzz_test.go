package fleet

import (
	"bytes"
	"testing"

	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/topo"
)

// FuzzSnapshot throws arbitrary bytes at the snapshot decoder. The
// contract under fuzz: never panic, never over-allocate from
// attacker-chosen count fields, and for every input it accepts, the
// decoded snapshot must re-encode to the exact same bytes (the format
// has one canonical encoding, which is what makes the CRC meaningful).
func FuzzSnapshot(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(snapshotMagic))
	f.Add(EncodeSnapshot(Snapshot{}))
	f.Add(EncodeSnapshot(sampleSnapshot()))
	f.Add(EncodeSnapshot(Snapshot{
		TakenUnixMS: 7,
		States: []serve.DeploymentState{{
			Name:   "",
			Spec:   serve.Spec{Model: topo.ModelIA, N: 1, Seed: 0},
			Failed: []topo.NodeID{0},
			Moved:  []topo.Move{{Node: 0, X: -1.5, Y: 1e300}},
			Epoch:  1<<64 - 1,
		}},
	}))
	// A body-cut snapshot with a valid CRC: forces the fuzzer past the
	// checksum into the structural bounds checks.
	full := EncodeSnapshot(sampleSnapshot())
	f.Add(withCRC(full[: len(full)-40 : len(full)-40]))

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeSnapshot(b)
		if err != nil {
			return
		}
		if got := EncodeSnapshot(s); !bytes.Equal(got, b) {
			t.Fatalf("accepted input is not canonical:\n in  %x\n out %x", b, got)
		}
	})
}
