package fleet

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"github.com/straightpath/wasn/internal/serve"
)

// BinaryServer serves the binary batch transport over a TCP listener,
// answering frameBatch requests with the same serve.Service.Batch the
// HTTP surface uses — one routing engine, two wire formats. Connections
// are persistent: a client keeps one conn and pushes batches down it
// back to back, which is the whole point (no per-request connection,
// header, or JSON costs).
type BinaryServer struct {
	svc *serve.Service
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Transport counters, exposed for cmd-layer metric registration.
	connsTotal   atomic.Uint64
	batchesTotal atomic.Uint64
	routesTotal  atomic.Uint64
}

// NewBinaryServer wraps an existing listener (so callers can bind ":0"
// and learn the port first) and starts the accept loop.
func NewBinaryServer(svc *serve.Service, ln net.Listener) *BinaryServer {
	b := &BinaryServer{svc: svc, ln: ln, conns: make(map[net.Conn]struct{})}
	b.wg.Add(1)
	go b.acceptLoop()
	return b
}

// Addr returns the listener address ("host:port").
func (b *BinaryServer) Addr() string { return b.ln.Addr().String() }

// Stats reports transport totals: connections accepted, batches served,
// routes answered.
func (b *BinaryServer) Stats() (conns, batches, routes uint64) {
	return b.connsTotal.Load(), b.batchesTotal.Load(), b.routesTotal.Load()
}

// Close stops accepting, closes every live connection, and waits for
// the handler goroutines to drain.
func (b *BinaryServer) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	for c := range b.conns {
		c.Close()
	}
	b.mu.Unlock()
	err := b.ln.Close()
	b.wg.Wait()
	return err
}

func (b *BinaryServer) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			return // listener closed
		}
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			conn.Close()
			return
		}
		b.conns[conn] = struct{}{}
		b.wg.Add(1)
		b.mu.Unlock()
		b.connsTotal.Add(1)
		go b.serveConn(conn)
	}
}

func (b *BinaryServer) serveConn(conn net.Conn) {
	defer b.wg.Done()
	defer func() {
		conn.Close()
		b.mu.Lock()
		delete(b.conns, conn)
		b.mu.Unlock()
	}()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriterSize(conn, 64<<10)
	for {
		typ, payload, err := readFrame(r)
		if err != nil {
			return // EOF, reset, or garbage framing: drop the conn
		}
		switch typ {
		case framePing:
			if writeFrame(w, framePong, payload) != nil || w.Flush() != nil {
				return
			}
		case frameBatch:
			id, reqs, err := decodeBatchRequest(payload)
			if err != nil {
				// Malformed batch: report and drop the conn — after a
				// framing-level decode failure the stream position is
				// untrustworthy.
				_ = writeFrame(w, frameError, encodeError(id, err.Error()))
				_ = w.Flush()
				return
			}
			if !b.streamBatch(w, id, reqs) {
				return
			}
		default:
			_ = writeFrame(w, frameError, encodeError(0, fmt.Sprintf("unknown frame type %d", typ)))
			_ = w.Flush()
			return
		}
	}
}

// streamBatch answers one batch: compute, then stream results in
// bounded chunks followed by the terminator. Reports whether the
// connection is still usable.
func (b *BinaryServer) streamBatch(w *bufio.Writer, id uint32, reqs []serve.RouteRequest) bool {
	b.batchesTotal.Add(1)
	b.routesTotal.Add(uint64(len(reqs)))
	results := b.svc.Batch(reqs)
	for start := 0; start < len(results); start += batchChunkSize {
		end := start + batchChunkSize
		if end > len(results) {
			end = len(results)
		}
		if writeFrame(w, frameBatchChunk, encodeBatchChunk(id, start, results[start:end])) != nil {
			return false
		}
	}
	if writeFrame(w, frameBatchEnd, encodeBatchEnd(id, len(results))) != nil {
		return false
	}
	return w.Flush() == nil
}

// errConnBroken marks a client whose stream desynced; the owner must
// reconnect.
var errConnBroken = errors.New("fleet: binary connection broken")
