package fleet

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/topo"
)

// The binary batch transport: hand-rolled length-prefixed frames over a
// persistent TCP connection, replacing per-request HTTP/JSON for
// /batch-shaped traffic. A frame is
//
//	u32  length (type byte + payload, little-endian)
//	u8   type
//	...  payload
//
// The client writes one request frame and reads response frames until
// the terminator; batch results stream back in bounded chunks, so a
// 100k-route batch never materialises as one giant frame on either
// side. Strings are u16-length-prefixed; node ids are two's-complement
// u64 so the server — not the transport — rejects out-of-range ids with
// the same errors the JSON surface produces.
const (
	frameBatch      = 1 // client → server: batch route request
	framePing       = 2 // client → server: liveness probe, payload echoed
	frameBatchChunk = 3 // server → client: a run of batch results
	frameBatchEnd   = 4 // server → client: batch terminator
	frameError      = 5 // server → client: top-level protocol error
	framePong       = 6 // server → client: ping echo
)

// maxFrameLen bounds a single frame on the read side. Request chunks of
// batchChunkSize results stay far below it; anything larger is a
// corrupt or hostile stream.
const maxFrameLen = 16 << 20

// batchChunkSize is the number of results per streamed response chunk.
const batchChunkSize = 512

// maxBatchRequests bounds one batch frame, mirroring the HTTP surface's
// body limit (a request encodes to ≥26 bytes, and 8 MiB of those is
// ~300k requests).
const maxBatchRequests = 1 << 19

// writeFrame sends one frame.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	hdr := make([]byte, 5, 5+len(payload))
	binary.LittleEndian.PutUint32(hdr, uint32(1+len(payload)))
	hdr[4] = typ
	_, err := w.Write(append(hdr, payload...))
	return err
}

// readFrame reads one frame, rejecting oversized lengths before
// allocating for them.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n == 0 || n > maxFrameLen {
		return 0, nil, fmt.Errorf("fleet: frame length %d out of range (0, %d]", n, maxFrameLen)
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

func appendString16(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func (r *snapReader) string16() (string, bool) {
	n, ok := r.u16()
	if !ok {
		return "", false
	}
	b, ok := r.take(int(n))
	return string(b), ok
}

// encodeBatchRequest builds a frameBatch payload.
func encodeBatchRequest(id uint32, reqs []serve.RouteRequest) []byte {
	b := make([]byte, 0, 8+32*len(reqs))
	b = binary.LittleEndian.AppendUint32(b, id)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(reqs)))
	for _, q := range reqs {
		b = appendString16(b, q.Deployment)
		b = appendString16(b, q.Algorithm)
		b = binary.LittleEndian.AppendUint64(b, uint64(int64(q.Src)))
		b = binary.LittleEndian.AppendUint64(b, uint64(int64(q.Dst)))
	}
	return b
}

func decodeBatchRequest(payload []byte) (id uint32, reqs []serve.RouteRequest, err error) {
	r := &snapReader{b: payload}
	id, ok := r.u32()
	count, ok2 := r.u32()
	if !ok || !ok2 {
		return id, nil, fmt.Errorf("fleet: truncated batch header")
	}
	if count > maxBatchRequests {
		return id, nil, fmt.Errorf("fleet: batch of %d requests exceeds limit %d", count, maxBatchRequests)
	}
	// A request is at least 20 bytes on the wire; reject counts the
	// payload cannot hold before allocating.
	if int64(count)*20 > int64(len(payload)) {
		return id, nil, fmt.Errorf("fleet: batch count %d exceeds frame", count)
	}
	reqs = make([]serve.RouteRequest, 0, count)
	for i := uint32(0); i < count; i++ {
		var q serve.RouteRequest
		if q.Deployment, ok = r.string16(); !ok {
			return id, nil, fmt.Errorf("fleet: batch request %d truncated", i)
		}
		if q.Algorithm, ok = r.string16(); !ok {
			return id, nil, fmt.Errorf("fleet: batch request %d truncated", i)
		}
		src, ok1 := r.u64()
		dst, ok2 := r.u64()
		if !ok1 || !ok2 {
			return id, nil, fmt.Errorf("fleet: batch request %d truncated", i)
		}
		q.Src = topo.NodeID(int64(src))
		q.Dst = topo.NodeID(int64(dst))
		reqs = append(reqs, q)
	}
	if r.off != len(payload) {
		return id, nil, fmt.Errorf("fleet: %d trailing bytes in batch frame", len(payload)-r.off)
	}
	return id, reqs, nil
}

// Result flag bits.
const (
	flagDelivered = 1 << 0
	flagCached    = 1 << 1
	flagReason    = 1 << 2
	flagErr       = 1 << 3
)

// appendResult encodes one RouteResponse (paths never cross the binary
// transport: batch traffic wants the aggregate outcome, same as the
// JSON /batch surface).
func appendResult(b []byte, res serve.RouteResponse) []byte {
	var flags byte
	if res.Delivered {
		flags |= flagDelivered
	}
	if res.Cached {
		flags |= flagCached
	}
	if res.Reason != "" {
		flags |= flagReason
	}
	if res.Err != "" {
		flags |= flagErr
	}
	b = append(b, flags)
	b = binary.LittleEndian.AppendUint32(b, uint32(res.Hops))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(res.Length))
	if res.Reason != "" {
		b = appendString16(b, res.Reason)
	}
	if res.Err != "" {
		b = appendString16(b, res.Err)
	}
	return b
}

func (r *snapReader) result() (serve.RouteResponse, bool) {
	var res serve.RouteResponse
	flags, ok := r.u8()
	if !ok {
		return res, false
	}
	hops, ok := r.u32()
	if !ok {
		return res, false
	}
	length, ok := r.f64()
	if !ok {
		return res, false
	}
	res.Delivered = flags&flagDelivered != 0
	res.Cached = flags&flagCached != 0
	res.Hops = int(hops)
	res.Length = length
	if flags&flagReason != 0 {
		if res.Reason, ok = r.string16(); !ok {
			return res, false
		}
	}
	if flags&flagErr != 0 {
		if res.Err, ok = r.string16(); !ok {
			return res, false
		}
	}
	return res, true
}

// encodeBatchChunk builds a frameBatchChunk payload for results
// [start, start+len(results)).
func encodeBatchChunk(id uint32, start int, results []serve.RouteResponse) []byte {
	b := make([]byte, 0, 12+16*len(results))
	b = binary.LittleEndian.AppendUint32(b, id)
	b = binary.LittleEndian.AppendUint32(b, uint32(start))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(results)))
	for _, res := range results {
		b = appendResult(b, res)
	}
	return b
}

func decodeBatchChunk(payload []byte) (id uint32, start int, results []serve.RouteResponse, err error) {
	r := &snapReader{b: payload}
	id, ok := r.u32()
	st, ok2 := r.u32()
	count, ok3 := r.u32()
	if !ok || !ok2 || !ok3 {
		return id, 0, nil, fmt.Errorf("fleet: truncated chunk header")
	}
	if int64(count)*13 > int64(len(payload)) {
		return id, 0, nil, fmt.Errorf("fleet: chunk count %d exceeds frame", count)
	}
	results = make([]serve.RouteResponse, 0, count)
	for i := uint32(0); i < count; i++ {
		res, ok := r.result()
		if !ok {
			return id, 0, nil, fmt.Errorf("fleet: chunk result %d truncated", i)
		}
		results = append(results, res)
	}
	if r.off != len(payload) {
		return id, 0, nil, fmt.Errorf("fleet: %d trailing bytes in chunk frame", len(payload)-r.off)
	}
	return id, int(st), results, nil
}

// encodeBatchEnd builds the frameBatchEnd payload.
func encodeBatchEnd(id uint32, total int) []byte {
	b := make([]byte, 0, 8)
	b = binary.LittleEndian.AppendUint32(b, id)
	return binary.LittleEndian.AppendUint32(b, uint32(total))
}

func decodeBatchEnd(payload []byte) (id uint32, total int, err error) {
	r := &snapReader{b: payload}
	id, ok := r.u32()
	t, ok2 := r.u32()
	if !ok || !ok2 || r.off != len(payload) {
		return id, 0, fmt.Errorf("fleet: malformed batch terminator")
	}
	return id, int(t), nil
}

// encodeError builds a frameError payload.
func encodeError(id uint32, msg string) []byte {
	return appendString16(binary.LittleEndian.AppendUint32(nil, id), msg)
}

func decodeError(payload []byte) (uint32, string) {
	r := &snapReader{b: payload}
	id, _ := r.u32()
	msg, _ := r.string16()
	if msg == "" {
		msg = "unspecified protocol error"
	}
	return id, msg
}
