package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/topo"
)

// Handler returns the router's HTTP surface:
//
//	POST /join      {"id", "addr", "binary_addr"?}     → shard map
//	GET  /shardmap                                     → shard map
//	GET  /owner?deployment=NAME                        → owning replica
//	GET  /readyz
//	GET  /stats
//	GET  /metrics                                      → wasn_fleet_* series
//	GET  /events?after=&max=                           → control-plane journal
//	POST /deploy, /route, /batch, /fail, /revive, /move → proxied to the owner
//
// The proxy endpoints speak the exact serve JSON API; a fleet looks
// like one big wasnd to HTTP clients. /batch additionally splits
// mixed-deployment batches across owners and reassembles the results
// in request order.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/join", r.handleJoin)
	mux.HandleFunc("/shardmap", r.handleShardMap)
	mux.HandleFunc("/owner", r.handleOwner)
	mux.HandleFunc("/readyz", r.handleReadyz)
	mux.HandleFunc("/stats", r.handleStats)
	mux.HandleFunc("/metrics", r.handleMetrics)
	mux.HandleFunc("/events", r.handleEvents)
	mux.HandleFunc("/deploy", r.handleDeploy)
	mux.HandleFunc("/batch", r.handleBatch)
	mux.HandleFunc("/route", r.proxyByField("deployment", nil))
	mux.HandleFunc("/fail", r.proxyByField("deployment", r.afterFail))
	mux.HandleFunc("/revive", r.proxyByField("deployment", r.afterRevive))
	mux.HandleFunc("/move", r.proxyByField("deployment", r.afterMove))
	return mux
}

func routerJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func routerError(w http.ResponseWriter, status int, err error) {
	routerJSON(w, status, map[string]string{"error": err.Error()})
}

func (r *Router) handleJoin(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		routerError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var rep Replica
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		routerError(w, http.StatusBadRequest, fmt.Errorf("bad join body: %w", err))
		return
	}
	m, err := r.Join(rep)
	if err != nil {
		routerError(w, http.StatusBadRequest, err)
		return
	}
	routerJSON(w, http.StatusOK, m)
}

func (r *Router) handleShardMap(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		routerError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	routerJSON(w, http.StatusOK, r.Map())
}

func (r *Router) handleOwner(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		routerError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	dep := req.URL.Query().Get("deployment")
	if dep == "" {
		routerError(w, http.StatusBadRequest, fmt.Errorf("deployment query parameter required"))
		return
	}
	rep, ok := r.Map().Owner(dep)
	if !ok {
		routerError(w, http.StatusServiceUnavailable, fmt.Errorf("no alive replicas"))
		return
	}
	routerJSON(w, http.StatusOK, rep)
}

func (r *Router) handleReadyz(w http.ResponseWriter, req *http.Request) {
	m := r.Map()
	routerJSON(w, http.StatusOK, map[string]any{
		"ok": true, "router": true, "version": m.Version, "replicas": len(m.Replicas),
	})
}

// fleetStats is the /stats body: the fleet-level picture plus one entry
// per known replica.
type fleetStats struct {
	Version     uint64             `json:"version"`
	Deployments int                `json:"deployments"`
	Replicas    []fleetReplicaStat `json:"replicas"`
}

type fleetReplicaStat struct {
	ID    string `json:"id"`
	Addr  string `json:"addr"`
	Alive bool   `json:"alive"`
	Owned int    `json:"owned"`
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		routerError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	m := r.Map()
	owned := make(map[string]int)
	r.mu.RLock()
	for name := range r.desired {
		if rep, ok := m.Owner(name); ok {
			owned[rep.ID]++
		}
	}
	out := fleetStats{Version: m.Version, Deployments: len(r.desired)}
	for _, mem := range r.members {
		out.Replicas = append(out.Replicas, fleetReplicaStat{
			ID: mem.rep.ID, Addr: mem.rep.Addr, Alive: mem.alive, Owned: owned[mem.rep.ID],
		})
	}
	r.mu.RUnlock()
	sortReplicaStats(out.Replicas)
	routerJSON(w, http.StatusOK, out)
}

func sortReplicaStats(s []fleetReplicaStat) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].ID < s[j-1].ID; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.reg.WriteText(w)
}

func (r *Router) handleEvents(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	after, _ := strconv.ParseUint(q.Get("after"), 10, 64)
	max, _ := strconv.Atoi(q.Get("max"))
	routerJSON(w, http.StatusOK, map[string]any{"events": r.journal.Since(after, max)})
}

// routerDeployRequest mirrors serve's /deploy body (the router must
// derive the registry name to shard on before forwarding).
type routerDeployRequest struct {
	Name     string  `json:"name"`
	Model    string  `json:"model"`
	N        int     `json:"n"`
	Seed     uint64  `json:"seed"`
	Coverage float64 `json:"coverage"`
	Build    bool    `json:"build"`
}

func (r *Router) handleDeploy(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		routerError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var dr routerDeployRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&dr); err != nil {
		routerError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	model, err := topo.ParseDeployModel(strings.ToLower(dr.Model))
	if err != nil {
		routerError(w, http.StatusBadRequest, err)
		return
	}
	spec := serve.Spec{Model: model, N: dr.N, Seed: dr.Seed, Coverage: dr.Coverage}
	name := dr.Name
	if name == "" {
		name = spec.DefaultName()
	}
	dr.Name = name
	body, _ := json.Marshal(dr)
	status, resp, err := r.forward(name, "/deploy", body)
	if err != nil {
		routerError(w, http.StatusBadGateway, err)
		return
	}
	if status == http.StatusOK {
		r.recordDeploy(name, spec)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(resp)
}

// proxyByField forwards a POST to the owner of the deployment named in
// the given JSON body field, invoking after(body) on a 200 so the
// desired-state table tracks what the replica applied.
func (r *Router) proxyByField(field string, after func([]byte)) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			routerError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 8<<20))
		if err != nil {
			routerError(w, http.StatusBadRequest, err)
			return
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(body, &probe); err != nil {
			routerError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		var dep string
		if raw, ok := probe[field]; ok {
			_ = json.Unmarshal(raw, &dep)
		}
		if dep == "" {
			routerError(w, http.StatusBadRequest, fmt.Errorf("missing %q field", field))
			return
		}
		status, resp, err := r.forward(dep, req.URL.Path, body)
		if err != nil {
			routerError(w, http.StatusBadGateway, err)
			return
		}
		if status == http.StatusOK && after != nil {
			after(body)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write(resp)
	}
}

type nodesBody struct {
	Deployment string        `json:"deployment"`
	Nodes      []topo.NodeID `json:"nodes"`
}

type movesBody struct {
	Deployment string      `json:"deployment"`
	Moves      []topo.Move `json:"moves"`
}

func (r *Router) afterFail(body []byte) {
	var b nodesBody
	if json.Unmarshal(body, &b) == nil {
		r.recordFail(b.Deployment, b.Nodes)
	}
}

func (r *Router) afterRevive(body []byte) {
	var b nodesBody
	if json.Unmarshal(body, &b) == nil {
		r.recordRevive(b.Deployment, b.Nodes)
	}
}

func (r *Router) afterMove(body []byte) {
	var b movesBody
	if json.Unmarshal(body, &b) == nil {
		r.recordMove(b.Deployment, b.Moves)
	}
}

// forward POSTs body to the owning replica's endpoint and returns the
// response verbatim.
func (r *Router) forward(deployment, path string, body []byte) (int, []byte, error) {
	rep, ok := r.Map().Owner(deployment)
	if !ok {
		return 0, nil, fmt.Errorf("fleet: no alive replicas")
	}
	r.proxied.Inc()
	resp, err := r.hc.Post(rep.Addr+path, "application/json", bytes.NewReader(body))
	if err != nil {
		r.proxyErrs.Inc()
		return 0, nil, fmt.Errorf("fleet: owner %s unreachable: %w", rep.ID, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		r.proxyErrs.Inc()
		return 0, nil, err
	}
	return resp.StatusCode, out, nil
}

type routerBatchRequest struct {
	Requests []serve.RouteRequest `json:"requests"`
}

type routerBatchResponse struct {
	Results []serve.RouteResponse `json:"results"`
}

// handleBatch splits a batch across owning replicas and reassembles the
// results in request order, so mixed-deployment batches work through
// the proxy exactly as against one process.
func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		routerError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var br routerBatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&br); err != nil {
		routerError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	m := r.Map()
	if len(m.Replicas) == 0 {
		routerError(w, http.StatusServiceUnavailable, fmt.Errorf("no alive replicas"))
		return
	}
	// Group request indices by owning replica.
	groups := make(map[string][]int)
	owners := make(map[string]Replica)
	for i, q := range br.Requests {
		rep, _ := m.Owner(q.Deployment)
		groups[rep.ID] = append(groups[rep.ID], i)
		owners[rep.ID] = rep
	}
	results := make([]serve.RouteResponse, len(br.Requests))
	var wg sync.WaitGroup
	for id, idxs := range groups {
		wg.Add(1)
		go func(rep Replica, idxs []int) {
			defer wg.Done()
			sub := make([]serve.RouteRequest, len(idxs))
			for j, i := range idxs {
				sub[j] = br.Requests[i]
			}
			body, _ := json.Marshal(routerBatchRequest{Requests: sub})
			r.proxied.Inc()
			resp, err := r.hc.Post(rep.Addr+"/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				r.proxyErrs.Inc()
				for _, i := range idxs {
					results[i] = serve.RouteResponse{Err: fmt.Sprintf("fleet: owner %s unreachable: %v", rep.ID, err)}
				}
				return
			}
			defer resp.Body.Close()
			var out routerBatchResponse
			if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&out); err != nil ||
				len(out.Results) != len(idxs) {
				r.proxyErrs.Inc()
				for _, i := range idxs {
					results[i] = serve.RouteResponse{Err: fmt.Sprintf("fleet: bad sub-batch response from %s", rep.ID)}
				}
				return
			}
			for j, i := range idxs {
				results[i] = out.Results[j]
			}
		}(owners[id], idxs)
	}
	wg.Wait()
	routerJSON(w, http.StatusOK, routerBatchResponse{Results: results})
}
