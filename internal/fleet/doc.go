// Package fleet is the distribution layer over internal/serve: the
// pieces that turn one wasnd process into a sharded fleet of them.
//
// Three building blocks compose, each independently testable:
//
//   - The shard map (Map): a consistent-hash ring with virtual nodes
//     partitioning deployments across replicas. The router serves it at
//     /shardmap; the workload fleet driver consumes it client-side and
//     re-resolves it when a replica dies.
//
//   - Registry snapshots (Snapshot): a versioned, checksummed binary
//     encoding of every deployment's spec plus its failed/moved state
//     and epoch (serve.DeploymentState). A restarted replica restores
//     it from disk (Snapshotter); the router pushes it to a
//     deployment's new owner on re-shard (/restore). Restoring is
//     route-identical: the restored replica rebuilds substrates over
//     the snapshot's exact topology, and the repair≡rebuild
//     differential contract makes its routes bit-identical to the
//     origin's for all seven algorithms.
//
//   - The binary batch transport (BinaryServer, Client): length-
//     prefixed frames over persistent TCP with streamed batch
//     responses, replacing per-request JSON/HTTP for /batch-shaped
//     traffic. The HTTP/JSON API stays as the compatibility surface.
//
// The Router ties them together as a thin proxy tier: replicas join
// it, it health-checks them, forwards data-plane requests to each
// deployment's owner, tracks the fleet's desired state (specs + churn
// + moves), and on replica death re-shards and re-establishes the
// displaced deployments on their new owners from its state table.
package fleet
