package safety

import (
	"math/rand/v2"
	"testing"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/topo"
)

// requireModelEqual compares every observable of the repaired model —
// safety statuses, pins, unsafe-area shape endpoints, confinement boxes
// — against a from-scratch build.
func requireModelEqual(t *testing.T, step int, net *topo.Network, got, want *Model) {
	t.Helper()
	for i := range net.Nodes {
		u := topo.NodeID(i)
		if got.Pinned(u) != want.Pinned(u) {
			t.Fatalf("step %d: node %d pinned=%v, fresh %v", step, u, got.Pinned(u), want.Pinned(u))
		}
		for _, z := range geom.AllZones {
			if got.Safe(u, z) != want.Safe(u, z) {
				t.Fatalf("step %d: node %d type-%d safe=%v, fresh %v",
					step, u, z, got.Safe(u, z), want.Safe(u, z))
			}
			if got.U1(u, z) != want.U1(u, z) || got.U2(u, z) != want.U2(u, z) {
				t.Fatalf("step %d: node %d type-%d shape endpoints differ", step, u, z)
			}
			gr, gok := got.Shape(u, z)
			wr, wok := want.Shape(u, z)
			if gok != wok || gr != wr {
				t.Fatalf("step %d: node %d type-%d shape (%v,%v) vs fresh (%v,%v)",
					step, u, z, gr, gok, wr, wok)
			}
		}
	}
}

// TestReviveHeavyRepairEqualsRebuild pins the full-relabel fallback in
// Repair: revivals (and failures that expose unsafe edge nodes) cannot
// be served by the monotone failure worklist, so Repair must detect them
// and relabel from scratch. Random revive-heavy churn sequences — kills
// in clumps, revivals in bursts, frequently reviving the most recent
// casualties so unsafe→safe flips actually occur — are replayed on IA,
// FA, and obstacle deployments, comparing every label, pin, and shape
// against a fresh Build after each batch.
func TestReviveHeavyRepairEqualsRebuild(t *testing.T) {
	cases := []struct {
		model topo.DeployModel
		n     int
		seed  uint64
	}{
		{topo.ModelIA, 250, 3},
		{topo.ModelFA, 300, 8},
		{topo.ModelOB, 260, 6},
	}
	for _, tc := range cases {
		t.Run(tc.model.String(), func(t *testing.T) {
			dep, err := topo.Deploy(topo.DefaultDeployConfig(tc.model, tc.n, tc.seed))
			if err != nil {
				t.Fatal(err)
			}
			net := dep.Net
			m := Build(net)
			rng := rand.New(rand.NewPCG(tc.seed, 0xda942042e4dd58b5))

			var dead []topo.NodeID
			revivals := 0
			for step := 0; step < 24; step++ {
				var batch []topo.NodeID
				// Revive-heavy mix: 2/3 of batches revive when possible.
				if len(dead) > 0 && rng.IntN(3) > 0 {
					k := 1 + rng.IntN(min(3, len(dead)))
					for j := 0; j < k; j++ {
						// Mostly the most recent casualty (guaranteeing
						// unsafe neighborhoods flip back), sometimes random.
						idx := len(dead) - 1
						if rng.IntN(4) == 0 {
							idx = rng.IntN(len(dead))
						}
						u := dead[idx]
						dead = append(dead[:idx], dead[idx+1:]...)
						net.SetAlive(u, true)
						batch = append(batch, u)
						revivals++
					}
				} else {
					k := 1 + rng.IntN(3)
					for j := 0; j < k; j++ {
						u := topo.NodeID(rng.IntN(net.N()))
						if !net.Alive(u) {
							continue
						}
						net.SetAlive(u, false)
						dead = append(dead, u)
						batch = append(batch, u)
					}
				}
				if len(batch) == 0 {
					continue
				}
				m.Repair(batch...)
				requireModelEqual(t, step, net, m, Build(net))
			}
			if revivals < 8 {
				t.Fatalf("sequence exercised only %d revivals; want a revive-heavy mix", revivals)
			}
		})
	}
}
