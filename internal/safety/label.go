package safety

import (
	"math/rand/v2"
	"sync/atomic"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/par"
	"github.com/straightpath/wasn/internal/topo"
)

// hasSafeZoneNeighbor evaluates the Definition 1 condition at u for zone
// z against the given status snapshot: is there any type-z safe neighbor
// inside Q_z(u)?
func (m *Model) hasSafeZoneNeighbor(u topo.NodeID, z geom.ZoneType, safeOf func(topo.NodeID, geom.ZoneType) bool) bool {
	pu := m.Net.Pos(u)
	for _, v := range m.Net.Neighbors(u) {
		if geom.InForwardingZone(pu, z, m.Net.Pos(v)) && safeOf(v, z) {
			return true
		}
	}
	return false
}

// labelSync runs Definition 1 / Algorithm 2 as the paper states it: a
// synchronous round-based system where every node re-evaluates its four
// statuses against the previous round's snapshot, and every status change
// is broadcast to all neighbors. Rounds and messages are recorded in
// m.Cost. The iteration is monotone (statuses only flip safe→unsafe), so
// it stabilizes after at most 4·|V| changes.
//
// Within one round every node's re-evaluation reads only the snapshot
// and writes only its own Info, so the rounds fan out across GOMAXPROCS
// — the synchronous semantics (and therefore the resulting labels,
// round count, and message count) are exactly those of the serial loop.
func (m *Model) labelSync() {
	m.Cost = ConstructionCost{}
	prev := make([]Info, len(m.info))
	for {
		// Snapshot of the previous round.
		copy(prev, m.info)
		safeOf := func(v topo.NodeID, z geom.ZoneType) bool { return prev[v].Safe[z-1] }

		var changed, messages atomic.Int64
		par.For(len(m.info), func(lo, hi int) {
			localChanged, localMsgs := 0, 0
			for i := lo; i < hi; i++ {
				u := topo.NodeID(i)
				if !m.Net.Alive(u) || m.info[i].Pinned {
					continue
				}
				nodeChanged := false
				for _, z := range geom.AllZones {
					if !prev[i].Safe[z-1] {
						continue // already unsafe; monotone
					}
					if !m.hasSafeZoneNeighbor(u, z, safeOf) {
						m.info[i].Safe[z-1] = false
						nodeChanged = true
					}
				}
				if nodeChanged {
					localChanged++
					localMsgs += m.Net.Degree(u)
				}
			}
			changed.Add(int64(localChanged))
			messages.Add(int64(localMsgs))
		})
		m.Cost.Messages += int(messages.Load())
		if changed.Load() == 0 {
			break
		}
		m.Cost.Rounds++
	}
}

// labelWorklist converges to the same fixpoint as labelSync using an
// event-driven worklist — the "asynchronous round based system" extension
// the paper mentions. order, when non-nil, shuffles processing to exercise
// order independence; it does not affect the result.
func (m *Model) labelWorklist(rng *rand.Rand) {
	queue := make([]topo.NodeID, 0, m.Net.N())
	inQueue := make([]bool, m.Net.N())
	push := func(u topo.NodeID) {
		if !inQueue[u] && m.Net.Alive(u) && !m.info[u].Pinned {
			inQueue[u] = true
			queue = append(queue, u)
		}
	}
	for i := range m.info {
		push(topo.NodeID(i))
	}
	safeOf := func(v topo.NodeID, z geom.ZoneType) bool { return m.info[v].Safe[z-1] }

	for len(queue) > 0 {
		var u topo.NodeID
		if rng != nil {
			k := rng.IntN(len(queue))
			u = queue[k]
			queue[k] = queue[len(queue)-1]
			queue = queue[:len(queue)-1]
		} else {
			u = queue[0]
			queue = queue[1:]
		}
		inQueue[u] = false

		changed := false
		for _, z := range geom.AllZones {
			if !m.info[u].Safe[z-1] {
				continue
			}
			if !m.hasSafeZoneNeighbor(u, z, safeOf) {
				m.info[u].Safe[z-1] = false
				changed = true
			}
		}
		if changed {
			m.Cost.Messages += m.Net.Degree(u)
			for _, v := range m.Net.Neighbors(u) {
				push(v)
			}
		}
	}
}

// BuildAsync builds the model with the asynchronous (worklist) labeling,
// processing nodes in seeded-random order. The resulting statuses always
// equal Build's: the fixpoint is unique.
func BuildAsync(net *topo.Network, seed uint64, opts ...Option) *Model {
	cfg := buildConfig{edgeRule: DefaultEdgeRule()}
	for _, o := range opts {
		o(&cfg)
	}
	m := &Model{
		Net:  net,
		Edge: cfg.edgeRule,
		info: make([]Info, net.N()),
		edge: cfg.edgeRule.EdgeNodes(net),
	}
	m.reset()
	rng := rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))
	m.labelWorklist(rng)
	m.propagateShapes()
	return m
}

// OnNodeFailure incrementally repairs the model after the given nodes
// fail (callers must have already called net.SetAlive(id, false)). It is
// the failure-only entry point kept for compatibility; Repair is the
// general one (and what OnNodeFailure now runs).
func (m *Model) OnNodeFailure(failed ...topo.NodeID) { m.Repair(failed...) }

// Repair incrementally re-derives the model after the liveness of the
// given nodes changed (topo.Network.SetAlive already applied). The
// result is always exactly the from-scratch labeling of the mutated
// network; only the amount of work depends on the kind of change.
//
// Failures are the fast path. They only flip statuses safe→unsafe, so
// running the monotone worklist from the current state — seeded with
// just the failed nodes' static neighborhoods, the only nodes whose
// Definition 1 condition changed — converges to exactly the
// from-scratch fixpoint. Two rare events break that monotonicity and
// force a full relabel instead: a revival (an unsafe node may need to
// flip back to safe), and a failure exposing a new interest-area edge
// node that is not already fully safe (a dead hull vertex can uncover
// interior nodes, and a newly pinned node must present the (1,1,1,1)
// tuple the paper prescribes for edge nodes — a safe→safe pin is free,
// an unsafe→pinned flip is not expressible by the monotone worklist).
func (m *Model) Repair(changed ...topo.NodeID) {
	newEdge := m.Edge.EdgeNodes(m.Net)
	full := false
	for _, x := range changed {
		if m.Net.Alive(x) { // revival: labels may need to flip unsafe→safe
			full = true
			break
		}
	}
	if !full {
		for i, e := range newEdge {
			if e && !m.edge[i] && m.Net.Alive(topo.NodeID(i)) && !m.fullySafe(i) {
				full = true // newly exposed edge node was unsafe
				break
			}
		}
	}
	m.edge = newEdge
	if full {
		m.reset()
		m.labelWorklist(nil)
		m.propagateShapes()
		return
	}

	// Failure-only repair. Update pins and mark the dead unsafe; seed
	// the worklist from the failed nodes' static neighbor rows (the CSR
	// adjacency retains dead nodes' rows, so no geometric scan is
	// needed). A previously pinned node that lost its pin — impossible
	// under the default hull/border rules, but a custom EdgeRule may
	// shrink — must re-evaluate too.
	seeds := make([]topo.NodeID, 0, len(changed)*8)
	inSeeds := make(map[topo.NodeID]bool, len(changed)*8)
	push := func(v topo.NodeID) {
		if m.Net.Alive(v) && !inSeeds[v] {
			inSeeds[v] = true
			seeds = append(seeds, v)
		}
	}
	for i := range m.info {
		u := topo.NodeID(i)
		alive := m.Net.Alive(u)
		wasPinned := m.info[i].Pinned
		m.info[i].Pinned = m.edge[i] && alive
		if !alive {
			for z := 0; z < geom.NumZones; z++ {
				m.info[i].Safe[z] = false
			}
		} else if wasPinned && !m.info[i].Pinned {
			push(u)
		}
	}
	for _, f := range changed {
		for _, v := range m.Net.AdjacencyRow(f) {
			push(v)
		}
	}
	m.repairFrom(seeds)
	m.propagateShapes()
}

// RepairMoved incrementally re-derives the model after node positions
// changed (topo.Network.SetPositions already applied). dirty is the
// geometric dirty set SetPositions returned: every node whose own
// position, neighbor set, or neighbor coordinates changed. The result is
// always exactly the from-scratch labeling of the moved network.
//
// Moves are not monotone — a node may gain safety when a neighbor drifts
// into its forwarding zone — so the failure-path worklist alone is not
// enough. Instead a reset region R is grown and re-labeled from above:
//
//   - R starts as dirty plus every node whose edge-pin status changed
//     (hull pins move with the hull, both ways);
//   - R closes over alive neighbors that are not fully safe under the
//     old labels. Any node that could gain a status bit must support the
//     gain through such a chain back into R: a node outside dirty has an
//     unchanged Definition 1 evaluation, so a gain at it demands a gain
//     at a neighbor, inductively ending in R. Fully safe nodes cannot
//     gain, which bounds the closure.
//
// Resetting R to all-safe (respecting liveness and the new pins) yields
// a state that dominates the fresh fixpoint everywhere, and the monotone
// worklist seeded with R then lowers it to exactly that fixpoint: labels
// outside R still satisfy their (unchanged) conditions against a state
// that only went up, and every lowering propagates through the worklist.
func (m *Model) RepairMoved(dirty []topo.NodeID) {
	newEdge := m.Edge.EdgeNodes(m.Net)
	n := m.Net.N()
	inR := make([]bool, n)
	region := make([]topo.NodeID, 0, len(dirty)*4)
	push := func(u topo.NodeID) {
		if !inR[u] {
			inR[u] = true
			region = append(region, u)
		}
	}
	for _, u := range dirty {
		push(u)
	}
	for i := range m.info {
		pinned := newEdge[i] && m.Net.Alive(topo.NodeID(i))
		if pinned != m.info[i].Pinned {
			push(topo.NodeID(i))
		}
	}
	// Closure over potential gainers, judged against the OLD labels —
	// this must run before the reset below.
	for qi := 0; qi < len(region); qi++ {
		for _, v := range m.Net.Neighbors(region[qi]) {
			if !inR[v] && !m.fullySafe(int(v)) {
				push(v)
			}
		}
	}

	m.edge = newEdge
	for _, u := range region {
		i := int(u)
		alive := m.Net.Alive(u)
		m.info[i].Pinned = newEdge[i] && alive
		for z := 0; z < geom.NumZones; z++ {
			m.info[i].Safe[z] = alive
		}
	}
	m.repairFrom(region)
	m.propagateShapes()
}

// fullySafe reports whether node i holds the (1,1,1,1) tuple.
func (m *Model) fullySafe(i int) bool {
	for _, s := range m.info[i].Safe {
		if !s {
			return false
		}
	}
	return true
}

// repairFrom runs the monotone worklist starting from the given seeds.
func (m *Model) repairFrom(seeds []topo.NodeID) {
	queue := append([]topo.NodeID(nil), seeds...)
	inQueue := make([]bool, m.Net.N())
	for _, u := range seeds {
		inQueue[u] = true
	}
	safeOf := func(v topo.NodeID, z geom.ZoneType) bool { return m.info[v].Safe[z-1] }
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		if !m.Net.Alive(u) || m.info[u].Pinned {
			continue
		}
		changed := false
		for _, z := range geom.AllZones {
			if !m.info[u].Safe[z-1] {
				continue
			}
			if !m.hasSafeZoneNeighbor(u, z, safeOf) {
				m.info[u].Safe[z-1] = false
				changed = true
			}
		}
		if changed {
			m.Cost.Messages += m.Net.Degree(u)
			for _, v := range m.Net.Neighbors(u) {
				if !inQueue[v] {
					inQueue[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
}
