package safety

import (
	"math/rand/v2"
	"sync/atomic"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/par"
	"github.com/straightpath/wasn/internal/topo"
)

// hasSafeZoneNeighbor evaluates the Definition 1 condition at u for zone
// z against the given status snapshot: is there any type-z safe neighbor
// inside Q_z(u)?
func (m *Model) hasSafeZoneNeighbor(u topo.NodeID, z geom.ZoneType, safeOf func(topo.NodeID, geom.ZoneType) bool) bool {
	pu := m.Net.Pos(u)
	for _, v := range m.Net.Neighbors(u) {
		if geom.InForwardingZone(pu, z, m.Net.Pos(v)) && safeOf(v, z) {
			return true
		}
	}
	return false
}

// labelSync runs Definition 1 / Algorithm 2 as the paper states it: a
// synchronous round-based system where every node re-evaluates its four
// statuses against the previous round's snapshot, and every status change
// is broadcast to all neighbors. Rounds and messages are recorded in
// m.Cost. The iteration is monotone (statuses only flip safe→unsafe), so
// it stabilizes after at most 4·|V| changes.
//
// Within one round every node's re-evaluation reads only the snapshot
// and writes only its own Info, so the rounds fan out across GOMAXPROCS
// — the synchronous semantics (and therefore the resulting labels,
// round count, and message count) are exactly those of the serial loop.
func (m *Model) labelSync() {
	m.Cost = ConstructionCost{}
	prev := make([]Info, len(m.info))
	for {
		// Snapshot of the previous round.
		copy(prev, m.info)
		safeOf := func(v topo.NodeID, z geom.ZoneType) bool { return prev[v].Safe[z-1] }

		var changed, messages atomic.Int64
		par.For(len(m.info), func(lo, hi int) {
			localChanged, localMsgs := 0, 0
			for i := lo; i < hi; i++ {
				u := topo.NodeID(i)
				if !m.Net.Alive(u) || m.info[i].Pinned {
					continue
				}
				nodeChanged := false
				for _, z := range geom.AllZones {
					if !prev[i].Safe[z-1] {
						continue // already unsafe; monotone
					}
					if !m.hasSafeZoneNeighbor(u, z, safeOf) {
						m.info[i].Safe[z-1] = false
						nodeChanged = true
					}
				}
				if nodeChanged {
					localChanged++
					localMsgs += m.Net.Degree(u)
				}
			}
			changed.Add(int64(localChanged))
			messages.Add(int64(localMsgs))
		})
		m.Cost.Messages += int(messages.Load())
		if changed.Load() == 0 {
			break
		}
		m.Cost.Rounds++
	}
}

// labelWorklist converges to the same fixpoint as labelSync using an
// event-driven worklist — the "asynchronous round based system" extension
// the paper mentions. order, when non-nil, shuffles processing to exercise
// order independence; it does not affect the result.
func (m *Model) labelWorklist(rng *rand.Rand) {
	queue := make([]topo.NodeID, 0, m.Net.N())
	inQueue := make([]bool, m.Net.N())
	push := func(u topo.NodeID) {
		if !inQueue[u] && m.Net.Alive(u) && !m.info[u].Pinned {
			inQueue[u] = true
			queue = append(queue, u)
		}
	}
	for i := range m.info {
		push(topo.NodeID(i))
	}
	safeOf := func(v topo.NodeID, z geom.ZoneType) bool { return m.info[v].Safe[z-1] }

	for len(queue) > 0 {
		var u topo.NodeID
		if rng != nil {
			k := rng.IntN(len(queue))
			u = queue[k]
			queue[k] = queue[len(queue)-1]
			queue = queue[:len(queue)-1]
		} else {
			u = queue[0]
			queue = queue[1:]
		}
		inQueue[u] = false

		changed := false
		for _, z := range geom.AllZones {
			if !m.info[u].Safe[z-1] {
				continue
			}
			if !m.hasSafeZoneNeighbor(u, z, safeOf) {
				m.info[u].Safe[z-1] = false
				changed = true
			}
		}
		if changed {
			m.Cost.Messages += m.Net.Degree(u)
			for _, v := range m.Net.Neighbors(u) {
				push(v)
			}
		}
	}
}

// BuildAsync builds the model with the asynchronous (worklist) labeling,
// processing nodes in seeded-random order. The resulting statuses always
// equal Build's: the fixpoint is unique.
func BuildAsync(net *topo.Network, seed uint64, opts ...Option) *Model {
	cfg := buildConfig{edgeRule: DefaultEdgeRule()}
	for _, o := range opts {
		o(&cfg)
	}
	m := &Model{
		Net:  net,
		Edge: cfg.edgeRule,
		info: make([]Info, net.N()),
		edge: cfg.edgeRule.EdgeNodes(net),
	}
	m.reset()
	rng := rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))
	m.labelWorklist(rng)
	m.propagateShapes()
	return m
}

// OnNodeFailure incrementally repairs the model after the given nodes
// fail (callers must have already called net.SetAlive(id, false)).
// Failures only flip statuses safe→unsafe, so re-running the worklist
// from the current state converges to exactly the from-scratch labeling;
// the pinned set is recomputed first because a dead hull node changes the
// interest-area edge.
func (m *Model) OnNodeFailure(failed ...topo.NodeID) {
	m.edge = m.Edge.EdgeNodes(m.Net)
	for i := range m.info {
		u := topo.NodeID(i)
		alive := m.Net.Alive(u)
		m.info[i].Pinned = m.edge[i] && alive
		if !alive {
			for z := 0; z < geom.NumZones; z++ {
				m.info[i].Safe[z] = false
			}
		}
	}
	// Seed the worklist with the failure neighborhood: only nodes whose
	// zone condition may have changed. labelWorklist pushes transitively.
	queue := make([]topo.NodeID, 0, len(failed)*8)
	seen := make(map[topo.NodeID]bool, len(failed)*8)
	for _, f := range failed {
		// Dead nodes have no Neighbors; use the static adjacency via
		// positions: scan all alive nodes in range.
		for i := range m.info {
			v := topo.NodeID(i)
			if m.Net.Alive(v) && m.Net.InRange(f, v) && !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	// Un-pinned survivors (hull changed) must also re-evaluate.
	for i := range m.info {
		u := topo.NodeID(i)
		if m.Net.Alive(u) && !m.info[i].Pinned && !seen[u] && m.AnySafe(u) {
			// Cheap filter: only nodes near the failure set or with a
			// changed pin state matter, but re-evaluating every safe
			// node costs one zone scan and keeps the repair exact.
			seen[u] = true
			queue = append(queue, u)
		}
	}
	m.repairFrom(queue)
	m.propagateShapes()
}

// repairFrom runs the monotone worklist starting from the given seeds.
func (m *Model) repairFrom(seeds []topo.NodeID) {
	queue := append([]topo.NodeID(nil), seeds...)
	inQueue := make([]bool, m.Net.N())
	for _, u := range seeds {
		inQueue[u] = true
	}
	safeOf := func(v topo.NodeID, z geom.ZoneType) bool { return m.info[v].Safe[z-1] }
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		if !m.Net.Alive(u) || m.info[u].Pinned {
			continue
		}
		changed := false
		for _, z := range geom.AllZones {
			if !m.info[u].Safe[z-1] {
				continue
			}
			if !m.hasSafeZoneNeighbor(u, z, safeOf) {
				m.info[u].Safe[z-1] = false
				changed = true
			}
		}
		if changed {
			m.Cost.Messages += m.Net.Degree(u)
			for _, v := range m.Net.Neighbors(u) {
				if !inQueue[v] {
					inQueue[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
}
