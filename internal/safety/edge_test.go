package safety

import (
	"testing"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/topo"
)

func TestConvexHullEdge(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(100, 100), geom.Pt(0, 100), // hull
		geom.Pt(50, 50), // interior
	}
	net := buildNet(t, pts, 200)
	edges := ConvexHullEdge{}.EdgeNodes(net)
	for i := 0; i < 4; i++ {
		if !edges[i] {
			t.Errorf("hull corner %d not marked", i)
		}
	}
	if edges[4] {
		t.Error("interior node marked as edge")
	}
	// A dead hull node is replaced by the remaining hull.
	net.SetAlive(0, false)
	edges = ConvexHullEdge{}.EdgeNodes(net)
	if edges[0] {
		t.Error("dead node marked as edge")
	}
}

func TestBorderMarginEdge(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(5, 100),   // within 20 of the west border
		geom.Pt(100, 195), // within 20 of the north border
		geom.Pt(100, 100), // deep interior
	}
	net := buildNet(t, pts, 30)
	edges := BorderMarginEdge{Margin: 20}.EdgeNodes(net)
	if !edges[0] || !edges[1] {
		t.Error("border nodes not marked")
	}
	if edges[2] {
		t.Error("interior node marked")
	}
	// Margin covering the whole field marks everything.
	all := BorderMarginEdge{Margin: 150}.EdgeNodes(net)
	for i, b := range all {
		if !b {
			t.Errorf("node %d unmarked under full-field margin", i)
		}
	}
}

func TestUnionEdgeAndNames(t *testing.T) {
	pts := []geom.Point{geom.Pt(5, 100), geom.Pt(100, 100), geom.Pt(195, 100)}
	net := buildNet(t, pts, 300)
	u := UnionEdge{ConvexHullEdge{}, BorderMarginEdge{Margin: 10}}
	edges := u.EdgeNodes(net)
	// 0 and 2 are both hull and border; 1 is neither (collinear interior).
	if !edges[0] || !edges[2] {
		t.Error("union missed obvious edge nodes")
	}
	if edges[1] {
		t.Error("union marked interior collinear node")
	}
	if got := u.Name(); got != "union(hull+margin)" {
		t.Errorf("union name = %q", got)
	}
	if (ConvexHullEdge{}).Name() != "hull" || (BorderMarginEdge{}).Name() != "margin" {
		t.Error("rule names wrong")
	}
	if DefaultEdgeRule().Name() != "union(hull+margin)" {
		t.Errorf("default rule = %q", DefaultEdgeRule().Name())
	}
}

func TestIncrementalFailureEqualsRebuild(t *testing.T) {
	for seed := uint64(2); seed <= 4; seed++ {
		net := deployed(t, topo.ModelFA, 400, seed)
		m := Build(net)

		// Fail a scattered batch of nodes.
		failed := []topo.NodeID{11, 47, 160, 233, 391}
		for _, f := range failed {
			net.SetAlive(f, false)
		}
		m.OnNodeFailure(failed...)

		fresh := Build(net)
		for i := range net.Nodes {
			u := topo.NodeID(i)
			for _, z := range geom.AllZones {
				if m.Safe(u, z) != fresh.Safe(u, z) {
					t.Fatalf("seed %d: node %d type-%d: incremental=%v fresh=%v",
						seed, u, z, m.Safe(u, z), fresh.Safe(u, z))
				}
				if m.U1(u, z) != fresh.U1(u, z) || m.U2(u, z) != fresh.U2(u, z) {
					t.Fatalf("seed %d: node %d type-%d shape endpoints differ", seed, u, z)
				}
			}
		}
		// Restore for the next iteration's deploy (fresh network anyway).
	}
}

func TestIncrementalCascade(t *testing.T) {
	// Line 0..4, pin east end. Killing node 3 severs the type-1 chain:
	// nodes 0..2 must flip type-1 unsafe.
	pts := []geom.Point{
		geom.Pt(10, 50), geom.Pt(20, 50), geom.Pt(30, 50), geom.Pt(40, 50), geom.Pt(50, 50),
	}
	net := buildNet(t, pts, 12)
	m := Build(net, WithEdgeRule(pinSet{4: true}))
	if !m.Safe(0, geom.Zone1) {
		t.Fatal("precondition: node 0 type-1 safe")
	}
	net.SetAlive(3, false)
	m.OnNodeFailure(3)
	for u := topo.NodeID(0); u <= 2; u++ {
		if m.Safe(u, geom.Zone1) {
			t.Errorf("node %d still type-1 safe after chain cut", u)
		}
	}
	if m.AnySafe(3) {
		t.Error("dead node reports safe status")
	}
	if got := m.Tuple(3); got != "(0,0,0,0)" {
		t.Errorf("dead node tuple = %s", got)
	}
}
