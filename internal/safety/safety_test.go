package safety

import (
	"testing"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/topo"
)

// pinSet is a test EdgeRule pinning an explicit node set.
type pinSet map[topo.NodeID]bool

func (p pinSet) EdgeNodes(net *topo.Network) []bool {
	out := make([]bool, net.N())
	for id := range p {
		out[id] = true
	}
	return out
}

func (p pinSet) Name() string { return "pinset" }

func buildNet(t *testing.T, pts []geom.Point, radius float64) *topo.Network {
	t.Helper()
	net, err := topo.NewNetwork(pts, radius, geom.FromCorners(geom.Pt(0, 0), geom.Pt(200, 200)))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func deployed(t *testing.T, model topo.DeployModel, n int, seed uint64) *topo.Network {
	t.Helper()
	dep, err := topo.Deploy(topo.DefaultDeployConfig(model, n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return dep.Net
}

// Eastward line 0..4 with only the east end pinned: type-1 stays safe via
// the eastward chain; types 2, 3, 4 cascade unsafe from the west end.
func TestLabelingLine(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(10, 50), geom.Pt(20, 50), geom.Pt(30, 50), geom.Pt(40, 50), geom.Pt(50, 50),
	}
	net := buildNet(t, pts, 12)
	m := Build(net, WithEdgeRule(pinSet{4: true}))

	for u := topo.NodeID(0); u < 4; u++ {
		if !m.Safe(u, geom.Zone1) {
			t.Errorf("node %d should be type-1 safe (eastward chain)", u)
		}
		for _, z := range []geom.ZoneType{geom.Zone2, geom.Zone3, geom.Zone4} {
			if m.Safe(u, z) {
				t.Errorf("node %d should be type-%d unsafe", u, z)
			}
		}
		if got := m.Tuple(u); got != "(1,0,0,0)" {
			t.Errorf("node %d tuple = %s, want (1,0,0,0)", u, got)
		}
	}
	if got := m.Tuple(4); got != "(1,1,1,1)" {
		t.Errorf("pinned node tuple = %s", got)
	}
	if !m.Pinned(4) || m.Pinned(0) {
		t.Error("pin flags wrong")
	}
	if m.AllUnsafe(0) || !m.AnySafe(0) {
		t.Error("AnySafe/AllUnsafe wrong for (1,0,0,0)")
	}
	// The type-2 cascade takes multiple rounds (0 flips, then 1, ...).
	if m.Cost.Rounds < 2 {
		t.Errorf("Rounds = %d, want >= 2 for a cascading line", m.Cost.Rounds)
	}
	if m.Cost.Messages == 0 {
		t.Error("no construction messages recorded")
	}
}

// The fixpoint property (Definition 1): every unpinned safe node has a
// safe same-type neighbor in its zone; every unsafe node has none.
func TestLabelingFixpoint(t *testing.T) {
	for _, model := range []topo.DeployModel{topo.ModelIA, topo.ModelFA} {
		net := deployed(t, model, 450, 17)
		m := Build(net)
		for i := range net.Nodes {
			u := topo.NodeID(i)
			for _, z := range geom.AllZones {
				has := m.hasSafeZoneNeighbor(u, z, func(v topo.NodeID, zz geom.ZoneType) bool {
					return m.Safe(v, zz)
				})
				if m.Pinned(u) {
					if !m.Safe(u, z) {
						t.Fatalf("%v: pinned node %d unsafe", model, u)
					}
					continue
				}
				if m.Safe(u, z) && !has {
					t.Fatalf("%v: node %d type-%d safe without safe zone neighbor", model, u, z)
				}
				if !m.Safe(u, z) && has {
					t.Fatalf("%v: node %d type-%d unsafe despite safe zone neighbor", model, u, z)
				}
			}
		}
	}
}

// Theorem 1 flavor: starting from any type-z safe node, greedy type-z
// forwarding restricted to safe nodes never gets stuck before reaching a
// pinned (edge) node.
func TestSafeGreedyNeverStuck(t *testing.T) {
	net := deployed(t, topo.ModelFA, 500, 23)
	m := Build(net)
	for i := range net.Nodes {
		u := topo.NodeID(i)
		for _, z := range geom.AllZones {
			if !m.Safe(u, z) || m.Pinned(u) {
				continue
			}
			cur := u
			for steps := 0; steps < net.N(); steps++ {
				if m.Pinned(cur) {
					break
				}
				next := topo.NoNode
				pc := net.Pos(cur)
				for _, v := range net.Neighbors(cur) {
					if geom.InForwardingZone(pc, z, net.Pos(v)) && m.Safe(v, z) {
						next = v
						break
					}
				}
				if next == topo.NoNode {
					t.Fatalf("type-%d safe chain stuck at node %d (started %d)", z, cur, u)
				}
				cur = next
			}
		}
	}
}

func TestSyncAsyncEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		net := deployed(t, topo.ModelFA, 400, seed)
		sync := Build(net)
		for _, asyncSeed := range []uint64{9, 77} {
			async := BuildAsync(net, asyncSeed)
			for i := range net.Nodes {
				u := topo.NodeID(i)
				for _, z := range geom.AllZones {
					if sync.Safe(u, z) != async.Safe(u, z) {
						t.Fatalf("seed %d/%d: node %d type-%d differs sync=%v",
							seed, asyncSeed, u, z, sync.Safe(u, z))
					}
				}
				if sync.U1(u, geom.Zone1) != async.U1(u, geom.Zone1) ||
					sync.U2(u, geom.Zone1) != async.U2(u, geom.Zone1) {
					t.Fatalf("seed %d/%d: node %d shape endpoints differ", seed, asyncSeed, u)
				}
			}
		}
	}
}

// NE chain (0,0)->(5,5)->(10,10), nothing pinned: all three are type-1
// unsafe; u(1) and u(2) propagate the chain tip back to the origin.
func TestShapeChain(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 5), geom.Pt(10, 10)}
	net := buildNet(t, pts, 8)
	m := Build(net, WithEdgeRule(pinSet{}))

	for u := topo.NodeID(0); u <= 2; u++ {
		if m.Safe(u, geom.Zone1) {
			t.Fatalf("node %d should be type-1 unsafe", u)
		}
	}
	// Tip: empty Q1 -> self.
	if m.U1(2, geom.Zone1) != 2 || m.U2(2, geom.Zone1) != 2 {
		t.Errorf("tip u(1)/u(2) = %v/%v, want 2/2", m.U1(2, geom.Zone1), m.U2(2, geom.Zone1))
	}
	// Propagated to the origin.
	if m.U1(0, geom.Zone1) != 2 || m.U2(0, geom.Zone1) != 2 {
		t.Errorf("origin u(1)/u(2) = %v/%v, want 2/2", m.U1(0, geom.Zone1), m.U2(0, geom.Zone1))
	}
	r, ok := m.Shape(0, geom.Zone1)
	if !ok {
		t.Fatal("no shape at origin")
	}
	want := geom.FromCorners(geom.Pt(0, 0), geom.Pt(10, 10))
	if r != want {
		t.Errorf("E1(0) = %v, want %v", r, want)
	}
	far, ok := m.FarCorner(0, geom.Zone1)
	if !ok || far != geom.Pt(10, 10) {
		t.Errorf("FarCorner = %v/%v, want (10,10)", far, ok)
	}
	// Safe node has no shape.
	if _, ok := m.Shape(0, geom.Zone3); ok {
		// zone 3 of node 0 is empty -> unsafe with self shape; use a
		// pinned-safe construction instead for the negative case below.
		_ = ok
	}
}

// Forked NE region: two branches from u; the CCW-first branch hugs east,
// the CCW-last hugs north; E combines x of u(1) with y of u(2).
func TestShapeFork(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(0, 0),  // 0 = u
		geom.Pt(7, 2),  // 1: first hit scanning CCW from +X
		geom.Pt(14, 4), // 2: east tip (u1)
		geom.Pt(2, 7),  // 3: last hit
		geom.Pt(4, 14), // 4: north tip (u2)
	}
	net := buildNet(t, pts, 8)
	m := Build(net, WithEdgeRule(pinSet{}))
	for u := topo.NodeID(0); u < 5; u++ {
		if m.Safe(u, geom.Zone1) {
			t.Fatalf("node %d should be type-1 unsafe", u)
		}
	}
	if got := m.U1(0, geom.Zone1); got != 2 {
		t.Errorf("u(1) = %v, want 2 (east tip)", got)
	}
	if got := m.U2(0, geom.Zone1); got != 4 {
		t.Errorf("u(2) = %v, want 4 (north tip)", got)
	}
	r, _ := m.Shape(0, geom.Zone1)
	want := geom.FromCorners(geom.Pt(0, 0), geom.Pt(14, 14))
	if r != want {
		t.Errorf("E1(0) = %v, want %v", r, want)
	}
}

// u(1) and u(2) always belong to the greedy region G_z(u).
func TestShapeEndpointsInGreedyRegion(t *testing.T) {
	net := deployed(t, topo.ModelFA, 450, 31)
	m := Build(net)
	checked := 0
	for i := range net.Nodes {
		u := topo.NodeID(i)
		for _, z := range geom.AllZones {
			if m.Safe(u, z) {
				continue
			}
			u1, u2 := m.U1(u, z), m.U2(u, z)
			if u1 == topo.NoNode || u2 == topo.NoNode {
				t.Fatalf("unsafe node %d type-%d has unresolved endpoints", u, z)
			}
			region := m.GreedyRegion(u, z)
			inRegion := func(x topo.NodeID) bool {
				for _, v := range region {
					if v == x {
						return true
					}
				}
				return false
			}
			if !inRegion(u1) || !inRegion(u2) {
				t.Fatalf("node %d type-%d: endpoints %d/%d outside greedy region", u, z, u1, u2)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Skip("no unsafe nodes in this deployment; try another seed")
	}
}

func TestSafeToward(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(10, 50), geom.Pt(20, 50), geom.Pt(30, 50), geom.Pt(40, 50), geom.Pt(50, 50),
	}
	net := buildNet(t, pts, 12)
	m := Build(net, WithEdgeRule(pinSet{4: true}))
	// Node 1 toward an eastern destination: type-1 safe.
	if !m.SafeToward(1, geom.Pt(60, 55)) {
		t.Error("node 1 should be safe toward the east")
	}
	// Node 1 toward a western destination: type-2 unsafe.
	if m.SafeToward(1, geom.Pt(0, 55)) {
		t.Error("node 1 should be unsafe toward the west")
	}
	// A node at the destination itself is always safe toward it.
	if !m.SafeToward(2, net.Pos(2)) {
		t.Error("node at destination should be safe toward it")
	}
}

func TestUnsafeAreaOf(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 5), geom.Pt(10, 10)}
	net := buildNet(t, pts, 8)
	m := Build(net, WithEdgeRule(pinSet{}))
	area := m.UnsafeAreaOf(0, geom.Zone1)
	if len(area) != 3 {
		t.Errorf("unsafe area = %v, want all 3 nodes", area)
	}
	// Safe node yields nil.
	pts2 := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 0)}
	net2 := buildNet(t, pts2, 8)
	m2 := Build(net2, WithEdgeRule(pinSet{0: true, 1: true}))
	if got := m2.UnsafeAreaOf(0, geom.Zone1); got != nil {
		t.Errorf("pinned-safe node area = %v, want nil", got)
	}
}
