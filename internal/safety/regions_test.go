package safety

import (
	"testing"

	"github.com/straightpath/wasn/internal/geom"
)

// chainModel: type-1 unsafe chain (0,0)->(5,5)->(10,10), E1(0) = [0:10,0:10],
// dividing ray from (0,0) through (10,10).
func chainModel(t *testing.T) *Model {
	t.Helper()
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 5), geom.Pt(10, 10)}
	net := buildNet(t, pts, 8)
	return Build(net, WithEdgeRule(pinSet{}))
}

func TestClassifyPoint(t *testing.T) {
	m := chainModel(t)
	d := geom.Pt(20, 2) // below the diagonal: CW side
	tests := []struct {
		name string
		p    geom.Point
		want Region
	}{
		{name: "same side as dest", p: geom.Pt(9, 1), want: RegionCritical},
		{name: "opposite side", p: geom.Pt(2, 9), want: RegionForbidden},
		{name: "on the ray", p: geom.Pt(3, 3), want: RegionCritical},
		{name: "outside zone", p: geom.Pt(-5, 5), want: RegionNeutral},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := m.ClassifyPoint(0, geom.Zone1, d, tt.p); got != tt.want {
				t.Errorf("ClassifyPoint(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
	// Safe/no-shape owner is neutral everywhere.
	pts2 := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 0)}
	net2 := buildNet(t, pts2, 8)
	m2 := Build(net2, WithEdgeRule(pinSet{0: true, 1: true}))
	if got := m2.ClassifyPoint(0, geom.Zone1, d, geom.Pt(1, 1)); got != RegionNeutral {
		t.Errorf("safe owner classification = %v, want neutral", got)
	}
}

func TestRegionString(t *testing.T) {
	if RegionCritical.String() != "critical" || RegionForbidden.String() != "forbidden" ||
		RegionNeutral.String() != "neutral" || Region(9).String() != "region(?)" {
		t.Error("Region.String labels wrong")
	}
}

func TestNearbyShapes(t *testing.T) {
	m := chainModel(t)
	d := geom.Pt(50, 50) // northeast: zone 1 for every chain node
	shapes := m.NearbyShapes(0, d)
	if len(shapes) == 0 {
		t.Fatal("no shapes visible at the chain root")
	}
	foundSelf := false
	for _, s := range shapes {
		if s.Owner == 0 && s.Zone == geom.Zone1 {
			foundSelf = true
			if s.Rect != geom.FromCorners(geom.Pt(0, 0), geom.Pt(10, 10)) {
				t.Errorf("self shape = %v", s.Rect)
			}
			if s.Far != geom.Pt(10, 10) {
				t.Errorf("self far corner = %v", s.Far)
			}
		}
	}
	if !foundSelf {
		t.Error("self estimate missing from NearbyShapes")
	}
}

func TestAvoidsForbidden(t *testing.T) {
	m := chainModel(t)
	d := geom.Pt(20, 2)
	shapes := m.NearbyShapes(0, d)
	if len(shapes) == 0 {
		t.Fatal("no shapes")
	}
	if !m.AvoidsForbidden(shapes, d, geom.Pt(9, 1)) {
		t.Error("critical-side candidate should pass")
	}
	if m.AvoidsForbidden(shapes, d, geom.Pt(2, 9)) {
		t.Error("forbidden-side candidate should fail")
	}
	// With the destination NOT in the critical region the filter is
	// disarmed for that shape. Here d2 itself is inside the forbidden
	// check's zone but classified critical by definition (d side), so
	// craft d2 outside the zone instead: neutral disarms the filter.
	d2 := geom.Pt(-10, -10)
	if !m.AvoidsForbidden(shapes, d2, geom.Pt(2, 9)) {
		t.Error("filter should disarm when destination is not critical")
	}
}

func TestConfinementBox(t *testing.T) {
	m := chainModel(t)
	box, ok := m.ConfinementBox(0)
	if !ok {
		t.Fatal("chain root should have a confinement box")
	}
	// Must cover the whole unsafe chain inflated by the radius.
	if !box.Contains(geom.Pt(10, 10)) || !box.Contains(geom.Pt(0, 0)) {
		t.Errorf("box %v does not cover the chain", box)
	}
	if box.Contains(geom.Pt(100, 100)) {
		t.Errorf("box %v implausibly large", box)
	}

	// A fully safe network yields no box.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 0)}
	net := buildNet(t, pts, 8)
	m2 := Build(net, WithEdgeRule(pinSet{0: true, 1: true}))
	if _, ok := m2.ConfinementBox(0); ok {
		t.Error("safe network should have no confinement box")
	}
}
