package safety

import (
	"math"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/topo"
)

// zoneStartAngle returns the angle of the axis where the CCW scan of
// Q_z begins: +X for zone 1, +Y for zone 2, -X for zone 3, -Y for zone 4.
func zoneStartAngle(z geom.ZoneType) float64 {
	return float64(z-1) * math.Pi / 2
}

// scanZoneNeighbors returns the first and last neighbors of u inside
// Q_z(u) in the counter-clockwise ray scan of the zone (the paper's v1
// and v2). ok is false when the zone is empty.
func scanZoneNeighbors(net *topo.Network, u topo.NodeID, z geom.ZoneType) (first, last topo.NodeID, ok bool) {
	pu := net.Pos(u)
	start := zoneStartAngle(z)
	first, last = topo.NoNode, topo.NoNode
	var minDelta, maxDelta float64
	for _, v := range net.Neighbors(u) {
		pv := net.Pos(v)
		if !geom.InForwardingZone(pu, z, pv) {
			continue
		}
		delta := geom.CCWDelta(start, geom.Angle(pu, pv))
		if first == topo.NoNode || delta < minDelta {
			first, minDelta = v, delta
		}
		if last == topo.NoNode || delta > maxDelta {
			last, maxDelta = v, delta
		}
	}
	return first, last, first != topo.NoNode
}

// propagateShapes computes u(1) and u(2) for every unsafe node by
// fixpoint iteration (Algorithm 2 step 3). Type-z forwarding strictly
// advances in the zone's dominance order, so the dependency graph is
// acyclic and the iteration settles in at most chain-length rounds.
func (m *Model) propagateShapes() {
	// Reset shape state; statuses may have changed since the last run.
	for i := range m.info {
		for z := 0; z < geom.NumZones; z++ {
			m.info[i].U1[z] = topo.NoNode
			m.info[i].U2[z] = topo.NoNode
		}
	}
	type slot struct {
		u      topo.NodeID
		z      geom.ZoneType
		v1, v2 topo.NodeID // zone scan endpoints; NoNode for base cases
	}
	var slots []slot
	for i := range m.info {
		u := topo.NodeID(i)
		if !m.Net.Alive(u) {
			continue
		}
		for _, z := range geom.AllZones {
			if m.Safe(u, z) {
				continue
			}
			v1, v2, ok := scanZoneNeighbors(m.Net, u, z)
			if !ok {
				// No neighbor in the zone: u(1) = u(2) = u.
				m.info[i].U1[z-1] = u
				m.info[i].U2[z-1] = u
				continue
			}
			slots = append(slots, slot{u: u, z: z, v1: v1, v2: v2})
		}
	}
	// Iterate to fixpoint. Each pass resolves at least one slot whose
	// dependencies are settled; cap defensively at N passes.
	for pass := 0; pass <= m.Net.N(); pass++ {
		changed := false
		for _, s := range slots {
			zi := s.z - 1
			in := &m.info[s.u]
			if in.U1[zi] == topo.NoNode {
				if w := m.info[s.v1].U1[zi]; w != topo.NoNode {
					in.U1[zi] = w
					changed = true
				}
			}
			if in.U2[zi] == topo.NoNode {
				if w := m.info[s.v2].U2[zi]; w != topo.NoNode {
					in.U2[zi] = w
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	m.finalizeShapes()
}

// GreedyRegion returns G_z(u): every type-z unsafe node reachable from u
// through type-z forwarding steps over unsafe nodes (including u). Used
// by tests to validate the u(1)/u(2) extremal claims.
func (m *Model) GreedyRegion(u topo.NodeID, z geom.ZoneType) []topo.NodeID {
	if m.Safe(u, z) {
		return nil
	}
	seen := map[topo.NodeID]bool{u: true}
	queue := []topo.NodeID{u}
	var out []topo.NodeID
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		out = append(out, x)
		px := m.Net.Pos(x)
		for _, v := range m.Net.Neighbors(x) {
			if seen[v] || m.Safe(v, z) {
				continue
			}
			if geom.InForwardingZone(px, z, m.Net.Pos(v)) {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return out
}
