package safety

import (
	"fmt"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/par"
	"github.com/straightpath/wasn/internal/topo"
)

// Info is the safety state a single node stores: its own tuple plus the
// per-type shape bookkeeping (u(1), u(2)).
type Info struct {
	// Safe[z-1] is S_z(u): true = safe ("1"), false = unsafe ("0").
	Safe [geom.NumZones]bool
	// Pinned marks edge nodes of the interest area, which never change
	// status.
	Pinned bool
	// U1[z-1] / U2[z-1] are the farthest reachable nodes u(1) and u(2)
	// of the type-z unsafe area (valid only while !Safe[z-1];
	// topo.NoNode when not computed).
	U1, U2 [geom.NumZones]topo.NodeID
}

// Tuple renders the status tuple the way the paper writes it, e.g.
// "(1,0,1,1)".
func (in Info) Tuple() string {
	b := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	return fmt.Sprintf("(%d,%d,%d,%d)", b(in.Safe[0]), b(in.Safe[1]), b(in.Safe[2]), b(in.Safe[3]))
}

// ConstructionCost records what building the information model cost: the
// number of synchronous rounds until stabilization and the number of
// one-hop broadcast messages (one per node per status change, as in
// Algorithm 2's "broadcasting such information of a node that newly
// changes its safety status to all its neighbors").
type ConstructionCost struct {
	Rounds   int
	Messages int
}

// shapeCache is the materialized E_z(u) of one (node, zone): the
// estimate rectangle and its far corner, recomputed whenever the
// labeling changes (finalizeShapes) so queries on the routing hot path
// are plain lookups.
type shapeCache struct {
	rect geom.Rect
	far  geom.Point
	ok   bool
}

// Model is the stabilized safety information of one network.
type Model struct {
	Net  *topo.Network
	Edge EdgeRule
	Cost ConstructionCost

	info []Info
	// masks[u] packs Safe as a bitmask (bit z-1 = S_z(u)), rebuilt by
	// finalizeShapes after every (re)labeling so the routing scans test
	// safety with one byte load — see SafeMasks.
	masks []uint8
	// edge[u] caches the pinned set.
	edge []bool
	// shapes[u][z-1] caches Shape/FarCorner per (node, zone).
	shapes [][geom.NumZones]shapeCache
	// conf[u] caches ConfinementBox per node.
	conf   []geom.Rect
	confOK []bool
}

// Option configures Build.
type Option func(*buildConfig)

type buildConfig struct {
	edgeRule EdgeRule
}

// WithEdgeRule overrides the default edge-node rule.
func WithEdgeRule(r EdgeRule) Option {
	return func(c *buildConfig) { c.edgeRule = r }
}

// Build constructs the safety information for net: labels every node
// (synchronous rounds, Algorithm 2) and propagates the estimated shape
// information.
func Build(net *topo.Network, opts ...Option) *Model {
	cfg := buildConfig{edgeRule: DefaultEdgeRule()}
	for _, o := range opts {
		o(&cfg)
	}
	m := &Model{
		Net:  net,
		Edge: cfg.edgeRule,
		info: make([]Info, net.N()),
		edge: cfg.edgeRule.EdgeNodes(net),
	}
	m.reset()
	m.labelSync()
	m.propagateShapes()
	return m
}

// reset initializes every alive node safe (Definition 1 step 1), pinning
// edge nodes.
func (m *Model) reset() {
	for i := range m.info {
		in := &m.info[i]
		in.Pinned = m.edge[i] && m.Net.Alive(topo.NodeID(i))
		for z := 0; z < geom.NumZones; z++ {
			in.Safe[z] = m.Net.Alive(topo.NodeID(i))
			in.U1[z] = topo.NoNode
			in.U2[z] = topo.NoNode
		}
	}
}

// Safe reports S_z(u). Dead nodes are unsafe in every type.
func (m *Model) Safe(u topo.NodeID, z geom.ZoneType) bool {
	return m.info[u].Safe[z-1]
}

// Unsafe reports !S_z(u).
func (m *Model) Unsafe(u topo.NodeID, z geom.ZoneType) bool { return !m.Safe(u, z) }

// AnySafe reports whether u is safe in at least one type (tuple != (0,0,0,0)).
func (m *Model) AnySafe(u topo.NodeID) bool {
	for _, s := range m.info[u].Safe {
		if s {
			return true
		}
	}
	return false
}

// SafeMasks exports the per-node safety statuses as packed bitmasks:
// bit z-1 of masks[u] is S_z(u), so SafeToward collapses to one byte
// load plus a shift once the caller has the candidate's zone, and
// AnySafe to masks[u] != 0. The slice aliases model-internal storage
// kept coherent with the labeling (rebuilt after every Build / Repair,
// under the same serialization contract as every other model read) and
// must not be modified.
func (m *Model) SafeMasks() []uint8 { return m.masks }

// AllUnsafe reports the paper's (0,0,0,0) condition that triggers the
// cautious perimeter phase.
func (m *Model) AllUnsafe(u topo.NodeID) bool { return !m.AnySafe(u) }

// Pinned reports whether u is an edge node of the interest area.
func (m *Model) Pinned(u topo.NodeID) bool { return m.info[u].Pinned }

// Tuple returns the printable status tuple of u.
func (m *Model) Tuple(u topo.NodeID) string { return m.info[u].Tuple() }

// U1 returns u(1) of the type-z unsafe area at u (topo.NoNode when u is
// type-z safe).
func (m *Model) U1(u topo.NodeID, z geom.ZoneType) topo.NodeID { return m.info[u].U1[z-1] }

// U2 returns u(2), symmetric to U1.
func (m *Model) U2(u topo.NodeID, z geom.ZoneType) topo.NodeID { return m.info[u].U2[z-1] }

// SafeToward reports whether node v is safe with respect to a packet
// destined for d: S_k̄(v) where k̄ is the type of the request zone
// Z(v, d). A node that is the destination itself counts as safe.
func (m *Model) SafeToward(v topo.NodeID, d geom.Point) bool {
	pv := m.Net.Pos(v)
	if pv == d {
		return true
	}
	return m.Safe(v, geom.ZoneTypeOf(pv, d))
}

// Shape returns the estimated unsafe-area rectangle E_z(u) as seen from
// type-z unsafe node u: [xu : x_{u(1)}, yu : y_{u(2)}] (with the x/y roles
// of u(1) and u(2) swapped for the even zone types, whose CCW scan starts
// on the other axis). ok is false when u is type-z safe or the shape has
// not stabilized. The rectangle is cached per (node, zone) after every
// (re)labeling, so this is a plain lookup.
func (m *Model) Shape(u topo.NodeID, z geom.ZoneType) (geom.Rect, bool) {
	c := &m.shapes[u][z-1]
	return c.rect, c.ok
}

// computeShape derives Shape from the raw u(1)/u(2) state (the
// finalizeShapes input; Shape itself serves the cached value).
func (m *Model) computeShape(u topo.NodeID, z geom.ZoneType) (geom.Rect, bool) {
	in := m.info[u]
	if in.Safe[z-1] {
		return geom.Rect{}, false
	}
	u1 := in.U1[z-1]
	u2 := in.U2[z-1]
	if u1 == topo.NoNode || u2 == topo.NoNode {
		return geom.Rect{}, false
	}
	return shapeRect(m.Net, u, z, u1, u2), true
}

// shapeRect assembles E_z(u) from the u(1)/u(2) positions. For the odd
// zones (1: scan starts at +X; 3: at -X) the first path u(1) bounds the x
// extent and the last path u(2) the y extent; for the even zones the scan
// starts on the y axis so the roles swap.
func shapeRect(net *topo.Network, u topo.NodeID, z geom.ZoneType, u1, u2 topo.NodeID) geom.Rect {
	pu := net.Pos(u)
	p1 := net.Pos(u1)
	p2 := net.Pos(u2)
	var far geom.Point
	switch z {
	case geom.Zone1, geom.Zone3:
		far = geom.Pt(p1.X, p2.Y)
	default: // Zone2, Zone4
		far = geom.Pt(p2.X, p1.Y)
	}
	return geom.FromCorners(pu, far)
}

// FarCorner returns the corner of E_z(u) diagonally opposite u — the
// endpoint of the dividing ray of the critical/forbidden split. ok
// mirrors Shape. Served from the per-(node, zone) cache.
func (m *Model) FarCorner(u topo.NodeID, z geom.ZoneType) (geom.Point, bool) {
	c := &m.shapes[u][z-1]
	return c.far, c.ok
}

// computeFarCorner derives FarCorner from a freshly computed rect.
func computeFarCorner(pu geom.Point, r geom.Rect) geom.Point {
	// The far corner is the rect corner not equal to pu in either
	// coordinate. Because the rect was built FromCorners(pu, far), it is
	// whichever of Min/Max differs from pu per axis.
	x := r.Min.X
	if pu.X == r.Min.X {
		x = r.Max.X
	}
	y := r.Min.Y
	if pu.Y == r.Min.Y {
		y = r.Max.Y
	}
	return geom.Pt(x, y)
}

// finalizeShapes materializes the Shape/FarCorner caches and the
// per-node confinement boxes from the stabilized labeling. Called after
// every propagateShapes; the per-node work is independent and fans out
// across GOMAXPROCS.
func (m *Model) finalizeShapes() {
	n := m.Net.N()
	if m.shapes == nil {
		m.shapes = make([][geom.NumZones]shapeCache, n)
		m.conf = make([]geom.Rect, n)
		m.confOK = make([]bool, n)
		m.masks = make([]uint8, n)
	}
	par.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var mask uint8
			for z := 0; z < geom.NumZones; z++ {
				if m.info[i].Safe[z] {
					mask |= 1 << uint(z)
				}
			}
			m.masks[i] = mask
			u := topo.NodeID(i)
			pu := m.Net.Pos(u)
			for _, z := range geom.AllZones {
				c := &m.shapes[i][z-1]
				r, ok := m.computeShape(u, z)
				if !ok {
					*c = shapeCache{}
					continue
				}
				c.rect = r
				c.far = computeFarCorner(pu, r)
				c.ok = true
			}
		}
	})
	// Confinement boxes read the neighbors' freshly cached shapes, so
	// they need a second pass.
	par.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			u := topo.NodeID(i)
			box, found := m.unionShapes(geom.Rect{}, false, u)
			for _, v := range m.Net.Neighbors(u) {
				box, found = m.unionShapes(box, found, v)
			}
			if found {
				box = box.Inflate(m.Net.Radius)
			}
			m.conf[i] = box
			m.confOK[i] = found
		}
	})
}

// unionShapes folds the cached estimates of v into box.
func (m *Model) unionShapes(box geom.Rect, found bool, v topo.NodeID) (geom.Rect, bool) {
	for z := 0; z < geom.NumZones; z++ {
		c := &m.shapes[v][z]
		if !c.ok {
			continue
		}
		if !found {
			box = c.rect
			found = true
		} else {
			box = box.Union(c.rect)
		}
	}
	return box, found
}

// UnsafeAreaOf returns every node of the connected type-z unsafe area
// containing u (BFS over unsafe nodes), or nil if u is type-z safe.
// Used by analysis, tests and the visualizer; routing never needs it.
func (m *Model) UnsafeAreaOf(u topo.NodeID, z geom.ZoneType) []topo.NodeID {
	if m.Safe(u, z) {
		return nil
	}
	seen := map[topo.NodeID]bool{u: true}
	queue := []topo.NodeID{u}
	var out []topo.NodeID
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		out = append(out, x)
		for _, v := range m.Net.Neighbors(x) {
			if !seen[v] && m.Unsafe(v, z) {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return out
}
