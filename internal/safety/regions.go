package safety

import (
	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/topo"
)

// Region classifies a point against one unsafe-area estimate (Fig. 1(b)):
// Q_z(v) is divided by the ray from v through the far corner of E_z(v);
// the side holding the destination is the critical region (the routing
// hugs it), the other side is the forbidden region (entering it forces a
// detour around the wrong flank of the blocking area).
type Region int

// Region values. Points outside the owner's forwarding zone are neutral.
const (
	RegionCritical Region = iota + 1
	RegionForbidden
	RegionNeutral
)

// String implements fmt.Stringer.
func (r Region) String() string {
	switch r {
	case RegionCritical:
		return "critical"
	case RegionForbidden:
		return "forbidden"
	case RegionNeutral:
		return "neutral"
	default:
		return "region(?)"
	}
}

// ShapeAt is one unsafe-area estimate visible from a routing decision
// point: the owning unsafe node, the zone type, the rectangle, and the
// dividing-ray far corner.
type ShapeAt struct {
	Owner topo.NodeID
	Zone  geom.ZoneType
	Rect  geom.Rect
	Far   geom.Point
}

// ClassifyPoint classifies p against the estimate held by unsafe node v
// for zone z, given destination d. Collinear points (on the dividing ray)
// count as critical: the ray itself leads to the far corner, where the
// area ends.
func (m *Model) ClassifyPoint(v topo.NodeID, z geom.ZoneType, d, p geom.Point) Region {
	far, ok := m.FarCorner(v, z)
	if !ok {
		return RegionNeutral
	}
	pv := m.Net.Pos(v)
	if !geom.InForwardingZone(pv, z, p) {
		return RegionNeutral
	}
	sideD := geom.SideOfRay(pv, far, d)
	sideP := geom.SideOfRay(pv, far, p)
	if sideP == geom.Collinear || sideD == geom.Collinear || sideP == sideD {
		return RegionCritical
	}
	return RegionForbidden
}

// NearbyShapes collects every unsafe-area estimate visible at u for a
// packet destined to d: estimates held by u itself and by its unsafe
// neighbors, for the zone each holder would use toward d. This models the
// paper's "u can collect an unsafe area estimation from its unsafe
// neighbor v".
func (m *Model) NearbyShapes(u topo.NodeID, d geom.Point) []ShapeAt {
	return m.AppendNearbyShapes(nil, u, d)
}

// AppendNearbyShapes is NearbyShapes appending into dst — the routing
// hot path calls it once per visited node with a reused buffer, keeping
// the per-hop shape collection allocation-free.
func (m *Model) AppendNearbyShapes(dst []ShapeAt, u topo.NodeID, d geom.Point) []ShapeAt {
	consider := func(v topo.NodeID) {
		z := geom.ZoneTypeOf(m.Net.Pos(v), d)
		if m.Safe(v, z) {
			return
		}
		r, ok := m.Shape(v, z)
		if !ok {
			return
		}
		far, _ := m.FarCorner(v, z)
		dst = append(dst, ShapeAt{Owner: v, Zone: z, Rect: r, Far: far})
	}
	consider(u)
	for _, v := range m.Net.Neighbors(u) {
		consider(v)
	}
	return dst
}

// Classify classifies p against the collected estimate s using its
// cached rectangle and far corner — same result as ClassifyPoint for a
// ShapeAt returned by NearbyShapes, without re-deriving the shape.
func (m *Model) Classify(s ShapeAt, d, p geom.Point) Region {
	pv := m.Net.Pos(s.Owner)
	if !geom.InForwardingZone(pv, s.Zone, p) {
		return RegionNeutral
	}
	sideD := geom.SideOfRay(pv, s.Far, d)
	sideP := geom.SideOfRay(pv, s.Far, p)
	if sideP == geom.Collinear || sideD == geom.Collinear || sideP == sideD {
		return RegionCritical
	}
	return RegionForbidden
}

// AvoidsForbidden reports whether candidate position p avoids the
// forbidden region of every visible estimate whose critical region holds
// the destination — the superseding "either-hand" preference of
// Algorithm 3 step 3. It runs on the cached shape geometry (Classify),
// so the per-candidate hot path touches no shape reconstruction.
func (m *Model) AvoidsForbidden(shapes []ShapeAt, d, p geom.Point) bool {
	for _, s := range shapes {
		if m.Classify(s, d, d) != RegionCritical {
			continue
		}
		if m.Classify(s, d, p) == RegionForbidden {
			return false
		}
	}
	return true
}

// ConfinementBox returns the union of the four E-areas visible at u
// (inflated by one radio range), the box that confines the cautious
// perimeter phase when the source or destination tuple is (0,0,0,0)
// (contribution (c)). ok is false when u holds no estimates at all.
// Served from the per-node cache maintained by finalizeShapes.
func (m *Model) ConfinementBox(u topo.NodeID) (geom.Rect, bool) {
	if !m.confOK[u] {
		return geom.Rect{}, false
	}
	return m.conf[u], true
}
