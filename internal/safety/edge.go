package safety

import (
	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/topo"
)

// EdgeRule decides which nodes are "edge nodes" of the interest area.
// Edge nodes keep the pinned tuple (1,1,1,1) so the boundary of the
// deployment does not cascade unsafe labels inward (§3: "each edge node
// will always keep its status tuple as (1,1,1,1)").
type EdgeRule interface {
	// EdgeNodes returns a bitmap indexed by NodeID; true = edge node.
	EdgeNodes(net *topo.Network) []bool
	// Name identifies the rule in benchmarks and docs.
	Name() string
}

// ConvexHullEdge pins exactly the convex-hull nodes of the alive
// deployment — the paper's literal "hull algorithm" reading.
type ConvexHullEdge struct{}

var _ EdgeRule = ConvexHullEdge{}

// EdgeNodes implements EdgeRule.
func (ConvexHullEdge) EdgeNodes(net *topo.Network) []bool {
	out := make([]bool, net.N())
	alive := net.AliveIDs()
	pts := make([]geom.Point, len(alive))
	for i, id := range alive {
		pts[i] = net.Pos(id)
	}
	for _, i := range geom.ConvexHullIndices(pts) {
		out[alive[i]] = true
	}
	return out
}

// Name implements EdgeRule.
func (ConvexHullEdge) Name() string { return "hull" }

// BorderMarginEdge pins every node within Margin of the field border —
// the robust reading of "the edge of networks" for fields whose border
// region is well populated.
type BorderMarginEdge struct {
	Margin float64
}

var _ EdgeRule = BorderMarginEdge{}

// EdgeNodes implements EdgeRule.
func (r BorderMarginEdge) EdgeNodes(net *topo.Network) []bool {
	out := make([]bool, net.N())
	// Build the shrunken rect without FromCorners: a margin wider than
	// half the field must invert to empty, not re-normalize.
	inner := geom.Rect{
		Min: geom.Pt(net.Field.Min.X+r.Margin, net.Field.Min.Y+r.Margin),
		Max: geom.Pt(net.Field.Max.X-r.Margin, net.Field.Max.Y-r.Margin),
	}
	for i, n := range net.Nodes {
		if !n.Alive {
			continue
		}
		if inner.Empty() || !inner.ContainsStrict(n.Pos) {
			out[i] = true
		}
	}
	return out
}

// Name implements EdgeRule.
func (r BorderMarginEdge) Name() string { return "margin" }

// UnionEdge pins a node when any member rule does.
type UnionEdge []EdgeRule

var _ EdgeRule = UnionEdge{}

// EdgeNodes implements EdgeRule.
func (u UnionEdge) EdgeNodes(net *topo.Network) []bool {
	out := make([]bool, net.N())
	for _, r := range u {
		for i, b := range r.EdgeNodes(net) {
			if b {
				out[i] = true
			}
		}
	}
	return out
}

// Name implements EdgeRule.
func (u UnionEdge) Name() string {
	name := "union("
	for i, r := range u {
		if i > 0 {
			name += "+"
		}
		name += r.Name()
	}
	return name + ")"
}

// DefaultEdgeRule is the experiments' default: hull nodes plus a border
// strip one radio range deep (20 m on the paper's field). The union keeps
// the labeling focused on interior holes even when the hull is sparse.
func DefaultEdgeRule() EdgeRule {
	return UnionEdge{ConvexHullEdge{}, BorderMarginEdge{Margin: 20}}
}
