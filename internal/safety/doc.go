// Package safety implements the paper's safety information model (§3):
// the four-type safe/unsafe labeling process of Definition 1 / Algorithm 2,
// the estimated-shape information E_i(u) built from the farthest reachable
// nodes u(1) and u(2), the critical/forbidden region split derived from
// those shapes, and the construction-cost accounting used to compare
// against BOUNDHOLE.
//
// A node u is type-i unsafe when every neighbor in its type-i forwarding
// zone Q_i(u) is itself type-i unsafe (vacuously so when the zone is
// empty); edge nodes of the interest area are pinned safe, tuple
// (1,1,1,1). The connected unsafe nodes of one type form an unsafe area,
// whose shape each member estimates as the rectangle spanned by itself and
// the farthest nodes on its first and last greedy forwarding paths.
//
// # Lifecycle: build once, repair on failure
//
// [Build] labels every node with the synchronous rounds of Algorithm 2
// (each round parallel across GOMAXPROCS) and propagates the shape
// information; [BuildAsync] reaches the same unique fixpoint through
// the event-driven worklist the paper sketches as the asynchronous
// extension.
//
// When nodes fail at runtime, [Model.Repair] (and its failure-only
// alias [Model.OnNodeFailure]) exploits that failures are monotone —
// statuses only flip safe→unsafe — by re-running the worklist from the
// current labels, seeded with just the failed nodes' static
// neighborhoods: the only nodes whose Definition 1 condition changed.
// Two rare events break that monotonicity and trigger a full relabel
// instead: a node revival, and a failure that exposes a new
// interest-area edge node that was not already fully safe. Either way
// the repaired labels, shape estimates, and confinement boxes are
// exactly those of a from-scratch Build on the mutated network; only
// the Cost counters are path-dependent, accumulating the messages each
// repair actually exchanged. The serving layer's /fail endpoint and the
// facade's Sim.Fail route through this repair via
// core.RepairSubstrates.
package safety
