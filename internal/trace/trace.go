// Package trace records per-route event logs: which node a packet
// visited, under which phase, and why. The examples and the visualizer
// use traces to explain routing decisions; the experiment harness leaves
// tracing off (it costs an allocation per hop).
package trace

import (
	"fmt"
	"strings"

	"github.com/straightpath/wasn/internal/core"
	"github.com/straightpath/wasn/internal/topo"
)

// Event is one hop of a route.
type Event struct {
	Seq   int
	From  topo.NodeID
	To    topo.NodeID
	Phase core.Phase
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("#%d %d->%d [%s]", e.Seq, e.From, e.To, e.Phase)
}

// Trace is a recorded route.
type Trace struct {
	Src, Dst topo.NodeID
	Events   []Event
	Result   core.Result
}

// FromResult reconstructs a trace from a routing result. Phase
// attribution uses the per-phase hop counts in order (greedy hops are
// not necessarily contiguous, so attribution is approximate when phases
// interleave; the path itself is exact).
func FromResult(src, dst topo.NodeID, res core.Result) *Trace {
	t := &Trace{Src: src, Dst: dst, Result: res}
	for i := 1; i < len(res.Path); i++ {
		t.Events = append(t.Events, Event{
			Seq:  i,
			From: res.Path[i-1],
			To:   res.Path[i],
		})
	}
	return t
}

// Summary renders a one-line description.
func (t *Trace) Summary() string {
	status := "delivered"
	if !t.Result.Delivered {
		status = "dropped (" + t.Result.Reason.String() + ")"
	}
	return fmt.Sprintf("%d -> %d: %s, %d hops, %.1f m",
		t.Src, t.Dst, status, t.Result.Hops(), t.Result.Length)
}

// Dump renders the full hop list, wrapping at width hops per line.
func (t *Trace) Dump(width int) string {
	if width <= 0 {
		width = 10
	}
	var b strings.Builder
	b.WriteString(t.Summary())
	b.WriteByte('\n')
	for i, e := range t.Events {
		if i%width == 0 {
			if i > 0 {
				b.WriteByte('\n')
			}
		} else {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", e.To)
	}
	if len(t.Events) > 0 {
		b.WriteByte('\n')
	}
	return b.String()
}
