package trace

import (
	"testing"

	"github.com/straightpath/wasn/internal/bound"
	"github.com/straightpath/wasn/internal/core"
	"github.com/straightpath/wasn/internal/planar"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/topo"
)

func observedRouters(t *testing.T, net *topo.Network) []core.ObservedRouter {
	t.Helper()
	m := safety.Build(net)
	b := bound.FindHoles(net)
	g := planar.Build(net, planar.GabrielGraph)
	return []core.ObservedRouter{
		core.NewGF(net, b),
		core.NewLGF(net),
		core.NewSLGF(net, m),
		core.NewSLGF2(net, m),
		core.NewGPSR(net, g),
		core.NewIdeal(net, core.IdealMinHop),
	}
}

// The differential contract of the observer hook: for every algorithm,
// the recorded events must reproduce the result path hop for hop, and
// the per-phase event counts must equal Result.PhaseHops exactly.
func TestRecorderMatchesResult(t *testing.T) {
	dep, err := topo.Deploy(topo.DefaultDeployConfig(topo.ModelFA, 500, 7))
	if err != nil {
		t.Fatal(err)
	}
	net := dep.Net
	pairs := topo.RoutablePairs(net, 24, 60)
	if len(pairs) == 0 {
		t.Fatal("no routable pairs")
	}
	for _, r := range observedRouters(t, net) {
		t.Run(r.Name(), func(t *testing.T) {
			routed := 0
			for _, p := range pairs {
				rec := Acquire()
				res := r.RouteObserved(p[0], p[1], nil, rec)
				if !res.Delivered {
					Release(rec)
					continue
				}
				routed++
				ev := rec.Events()
				if len(ev) != res.Hops() {
					t.Fatalf("%d->%d: %d events, %d hops", p[0], p[1], len(ev), res.Hops())
				}
				var phases core.PhaseCounts
				for i, e := range ev {
					if e.Seq != i+1 {
						t.Fatalf("event %d has seq %d", i, e.Seq)
					}
					if e.From != res.Path[i] || e.To != res.Path[i+1] {
						t.Fatalf("event %d is %d->%d, path says %d->%d",
							i, e.From, e.To, res.Path[i], res.Path[i+1])
					}
					phases[e.Phase]++
				}
				if phases != res.PhaseHops {
					t.Fatalf("observed phases %v != result %v", phases, res.PhaseHops)
				}
				tr := rec.Build(p[0], p[1], res)
				Release(rec)
				if tr.Src != p[0] || tr.Dst != p[1] || len(tr.Events) != res.Hops() {
					t.Fatalf("built trace wrong: %+v", tr.Summary())
				}
			}
			if routed == 0 {
				t.Fatal("no pair delivered")
			}
		})
	}
}

// A released recorder must come back empty, and pooled reuse must not
// leak events between routes.
func TestRecorderPoolReset(t *testing.T) {
	r := Acquire()
	r.ObserveHop(1, 1, 2, core.PhaseGreedy)
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
	Release(r)
	r2 := Acquire()
	defer Release(r2)
	if r2.Len() != 0 {
		t.Fatalf("pooled recorder not reset: %d events", r2.Len())
	}
}

// With the recorder pool warm and the event slice grown, observing a
// route allocates only in Build (the defensive copy): Acquire,
// ObserveHop, and Release are allocation-free.
func TestRecorderObserveAllocFree(t *testing.T) {
	// Warm: grow the slice past the length used below.
	r := Acquire()
	for i := 0; i < 64; i++ {
		r.ObserveHop(i+1, topo.NodeID(i), topo.NodeID(i+1), core.PhaseGreedy)
	}
	Release(r)
	allocs := testing.AllocsPerRun(100, func() {
		rec := Acquire()
		for i := 0; i < 32; i++ {
			rec.ObserveHop(i+1, topo.NodeID(i), topo.NodeID(i+1), core.PhasePerimeter)
		}
		Release(rec)
	})
	if allocs != 0 {
		t.Errorf("observe cycle allocates %.1f/op, want 0", allocs)
	}
}
