package trace

import (
	"sync"

	"github.com/straightpath/wasn/internal/core"
	"github.com/straightpath/wasn/internal/topo"
)

// Recorder implements core.HopObserver by appending one Event per
// forwarding decision, with exact phase attribution (unlike FromResult,
// which back-fills phases from aggregate counts). Recorders are pooled
// via Acquire/Release so sampled tracing in a serving path does not
// allocate per traced route once the pool is warm: the event slice is
// retained across uses and only grows to the longest route seen.
//
// A Recorder is not safe for concurrent use; each in-flight traced
// route needs its own. The zero value is ready to use.
type Recorder struct {
	events []Event
}

var _ core.HopObserver = (*Recorder)(nil)

var recorderPool = sync.Pool{New: func() any { return new(Recorder) }}

// Acquire returns an empty Recorder from the pool.
func Acquire() *Recorder {
	r := recorderPool.Get().(*Recorder)
	r.events = r.events[:0]
	return r
}

// Release returns r to the pool. The caller must not retain r — or any
// slice obtained from Events — after releasing.
func Release(r *Recorder) { recorderPool.Put(r) }

// ObserveHop implements core.HopObserver.
func (r *Recorder) ObserveHop(seq int, from, to topo.NodeID, phase core.Phase) {
	r.events = append(r.events, Event{Seq: seq, From: from, To: to, Phase: phase})
}

// Events returns the recorded decisions. The slice is owned by the
// Recorder and is invalidated by Release or by the next route.
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of recorded decisions.
func (r *Recorder) Len() int { return len(r.events) }

// Build assembles a Trace from the recorded events and the route
// result. The events are copied, so the returned Trace stays valid
// after the Recorder is released.
func (r *Recorder) Build(src, dst topo.NodeID, res core.Result) *Trace {
	return &Trace{
		Src:    src,
		Dst:    dst,
		Events: append([]Event(nil), r.events...),
		Result: res,
	}
}
