package trace

import (
	"strings"
	"testing"

	"github.com/straightpath/wasn/internal/core"
	"github.com/straightpath/wasn/internal/topo"
)

func sampleResult() core.Result {
	return core.Result{
		Path:      []topo.NodeID{3, 7, 9, 12},
		Delivered: true,
		Length:    30,
		PhaseHops: core.PhaseCounts{core.PhaseGreedy: 3},
	}
}

func TestFromResult(t *testing.T) {
	tr := FromResult(3, 12, sampleResult())
	if len(tr.Events) != 3 {
		t.Fatalf("events = %d, want 3", len(tr.Events))
	}
	if tr.Events[0].From != 3 || tr.Events[0].To != 7 || tr.Events[0].Seq != 1 {
		t.Errorf("first event wrong: %+v", tr.Events[0])
	}
	if tr.Events[2].To != 12 {
		t.Errorf("last event wrong: %+v", tr.Events[2])
	}
	if s := tr.Events[0].String(); !strings.Contains(s, "3->7") {
		t.Errorf("event string = %q", s)
	}
}

func TestSummaryAndDump(t *testing.T) {
	tr := FromResult(3, 12, sampleResult())
	sum := tr.Summary()
	if !strings.Contains(sum, "delivered") || !strings.Contains(sum, "3 hops") {
		t.Errorf("summary = %q", sum)
	}
	dump := tr.Dump(2)
	if !strings.Contains(dump, "7 9") || !strings.Contains(dump, "12") {
		t.Errorf("dump = %q", dump)
	}
	// Default width.
	if d := tr.Dump(0); !strings.Contains(d, "12") {
		t.Errorf("default-width dump = %q", d)
	}

	var failed core.Result
	failed.Reason = core.DropTTL
	failed.Path = []topo.NodeID{1}
	ft := FromResult(1, 2, failed)
	if !strings.Contains(ft.Summary(), "ttl-exceeded") {
		t.Errorf("failed summary = %q", ft.Summary())
	}
	if got := ft.Dump(4); !strings.Contains(got, "dropped") {
		t.Errorf("failed dump = %q", got)
	}
}
