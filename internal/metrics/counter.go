package metrics

import (
	"sort"
	"sync/atomic"
)

// Counter is a goroutine-safe monotonic event counter for the service
// layer (cache hits, routes served, ...). The zero value is ready to
// use. The word is padded out to a cache line so counters laid out
// side by side in a struct (the usual pattern) don't false-share under
// concurrent increments.
type Counter struct {
	v atomic.Int64
	_ [7]uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Percentile returns the p-th percentile (0 <= p <= 100) of the samples
// by the nearest-rank method, 0 for an empty slice. The input is not
// modified.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
