// Package metrics provides the statistics the evaluation reports:
// streaming summaries (mean, min, max, standard deviation) via Welford's
// algorithm, plus small text/CSV table renderers for the figure output.
package metrics

import (
	"fmt"
	"math"
)

// Summary accumulates a stream of float64 samples. The zero value is an
// empty summary ready to use.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one sample into the summary.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		s.min = math.Min(s.min, x)
		s.max = math.Max(s.max, x)
	}
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Merge folds another summary into s (parallel-reduction step).
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n1, n2 := float64(s.n), float64(o.n)
	delta := o.mean - s.mean
	total := n1 + n2
	s.mean += delta * n2 / total
	s.m2 += o.m2 + delta*delta*n1*n2/total
	s.n += o.n
	s.min = math.Min(s.min, o.min)
	s.max = math.Max(s.max, o.max)
}

// N returns the sample count.
func (s Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s Summary) Mean() float64 { return s.mean }

// Min returns the smallest sample (0 for an empty summary).
func (s Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest sample (0 for an empty summary).
func (s Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Var returns the unbiased sample variance (0 with fewer than 2 samples).
func (s Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s Summary) Std() float64 { return math.Sqrt(s.Var()) }

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f max=%.3f std=%.3f",
		s.n, s.Mean(), s.Min(), s.Max(), s.Std())
}
