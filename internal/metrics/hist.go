package metrics

import (
	"math/bits"
	"math/rand/v2"
	"sync/atomic"
)

// Histogram layout: values below 2^histSubBits land in exact unit
// buckets; above that, each power-of-two range is split into
// 2^histSubBits linear sub-buckets (HdrHistogram's log-linear scheme),
// bounding the relative quantile error at 1/2^histSubBits ≈ 6%.
const (
	histSubBits = 4
	histSubs    = 1 << histSubBits
	// histBuckets covers the full non-negative int64 range: the exact
	// head [0,16) plus 16 sub-buckets for each of the 60 remaining
	// octaves (MSB positions 4..63).
	histBuckets = histSubs + (64-histSubBits)*histSubs
)

// histLanes stripes the hot write state (count/sum words and the bucket
// banks) so concurrent observers don't serialize on single cache lines.
// Must be a power of two.
const (
	histLanes    = 4
	histLaneMask = histLanes - 1
)

// histLane is one stripe of the header counters, padded out to a full
// cache line so two lanes never share one.
type histLane struct {
	count atomic.Int64
	sum   atomic.Int64
	_     [6]uint64
}

// Histogram is a goroutine-safe log-bucketed histogram of non-negative
// int64 samples (the workload engine records latencies as nanoseconds).
// Observations go to atomic bucket counters, so any number of workers
// may record concurrently with no lock; quantile reads over a live
// histogram see a slightly stale but internally consistent view. The
// zero value is an empty histogram ready to use.
//
// Buckets are exact up to 16 and log-linear above (16 sub-buckets per
// power of two), so reported quantiles carry at most ~6% relative
// error — plenty for latency percentiles spanning nanoseconds to
// seconds. The write state is striped histLanes ways: each Observe
// picks a lane from the calling thread's cheap per-thread generator
// (math/rand/v2's global, which keeps per-P state) and touches only
// that lane's padded count/sum words and bucket bank, so observers on
// different cores stop bouncing the same count/sum/bucket cache lines.
// The cost is read-side summation across lanes and a flat ~32KB per
// histogram regardless of sample count — still trivial for the handful
// of live series.
type Histogram struct {
	lanes [histLanes]histLane
	max   atomic.Int64
	_     [7]uint64
	// buckets[l][i] is bucket i of lane l's bank; totals are the sum
	// over banks.
	buckets [histLanes][histBuckets]atomic.Int64
}

// histIndex maps a sample to its bucket.
func histIndex(v int64) int {
	u := uint64(v)
	if u < histSubs {
		return int(u)
	}
	block := bits.Len64(u) - 1 - histSubBits // octave above the head, >= 0
	offset := int((u >> uint(block)) & (histSubs - 1))
	return histSubs + block*histSubs + offset
}

// histValue returns the midpoint of bucket idx, the representative
// value quantile reads report.
func histValue(idx int) int64 {
	if idx < histSubs {
		return int64(idx)
	}
	block := (idx - histSubs) / histSubs
	offset := int64((idx - histSubs) % histSubs)
	lower := (histSubs + offset) << uint(block)
	width := int64(1) << uint(block)
	return lower + width/2
}

// bucketCount returns the lane-summed count of bucket idx.
func (h *Histogram) bucketCount(idx int) int64 {
	var c int64
	for l := 0; l < histLanes; l++ {
		c += h.buckets[l][idx].Load()
	}
	return c
}

// Observe folds one sample into the histogram. Negative samples count
// as zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	lane := rand.Uint64() & histLaneMask
	h.buckets[lane][histIndex(v)].Add(1)
	l := &h.lanes[lane]
	l.count.Add(1)
	l.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	var n int64
	for l := range h.lanes {
		n += h.lanes[l].count.Load()
	}
	return n
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 {
	var s int64
	for l := range h.lanes {
		s += h.lanes[l].sum.Load()
	}
	return s
}

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Max returns the largest sample observed, exactly (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile returns the q-th quantile (0 <= q <= 1) as the midpoint of
// the bucket holding the nearest rank; ranks landing past every
// recorded bucket report the exact maximum. 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		c := h.bucketCount(i)
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			if seen >= n { // rank falls in the top occupied bucket
				return h.max.Load()
			}
			return histValue(i)
		}
	}
	return h.max.Load()
}

// Buckets calls f for every non-empty bucket in ascending value order
// with the bucket's inclusive upper bound and its count — the
// exposition hook the obs package renders as cumulative Prometheus
// buckets. Like Quantile, a call concurrent with observers sees a
// slightly stale but internally consistent view.
func (h *Histogram) Buckets(f func(upper, count int64)) {
	for i := 0; i < histBuckets; i++ {
		c := h.bucketCount(i)
		if c == 0 {
			continue
		}
		f(histUpper(i), c)
	}
}

// histUpper returns the inclusive upper bound of bucket idx: the
// largest sample value histIndex maps into it.
func histUpper(idx int) int64 {
	if idx < histSubs {
		return int64(idx)
	}
	block := (idx - histSubs) / histSubs
	offset := int64((idx - histSubs) % histSubs)
	lower := (histSubs + offset) << uint(block)
	width := int64(1) << uint(block)
	return lower + width - 1
}

// Merge folds another histogram into h, lane by lane. Not atomic as a
// whole: callers merge after the observing goroutines have quiesced
// (the engine merges per-phase histograms into the run total at report
// time).
func (h *Histogram) Merge(o *Histogram) {
	for l := 0; l < histLanes; l++ {
		for i := 0; i < histBuckets; i++ {
			if c := o.buckets[l][i].Load(); c != 0 {
				h.buckets[l][i].Add(c)
			}
		}
		h.lanes[l].count.Add(o.lanes[l].count.Load())
		h.lanes[l].sum.Add(o.lanes[l].sum.Load())
	}
	for {
		m, om := h.max.Load(), o.max.Load()
		if om <= m || h.max.CompareAndSwap(m, om) {
			return
		}
	}
}
