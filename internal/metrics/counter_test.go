package metrics

import (
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			c.Add(10)
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8*1010 {
		t.Fatalf("Load() = %d; want %d", got, 8*1010)
	}
}

func TestPercentile(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("Percentile(nil) = %v; want 0", got)
	}
	samples := []float64{5, 1, 4, 2, 3} // unsorted on purpose
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {90, 5}, {20, 1},
	}
	for _, c := range cases {
		if got := Percentile(samples, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v; want %v", c.p, got, c.want)
		}
	}
	// Input untouched.
	if samples[0] != 5 {
		t.Fatal("Percentile sorted its input in place")
	}
}
