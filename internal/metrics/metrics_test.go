package metrics

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Std() != 0 {
		t.Error("zero summary should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	// Population variance is 4; unbiased sample variance = 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Errorf("var = %v, want %v", s.Var(), 32.0/7)
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 5))
	for trial := 0; trial < 20; trial++ {
		var all, a, b Summary
		n := 1 + rng.IntN(200)
		cut := rng.IntN(n + 1)
		for i := 0; i < n; i++ {
			x := rng.NormFloat64()*10 + 3
			all.Add(x)
			if i < cut {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		if a.N() != all.N() {
			t.Fatalf("merge N = %d, want %d", a.N(), all.N())
		}
		if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
			t.Fatalf("merge mean = %v, want %v", a.Mean(), all.Mean())
		}
		if math.Abs(a.Var()-all.Var()) > 1e-6 {
			t.Fatalf("merge var = %v, want %v", a.Var(), all.Var())
		}
		if a.Min() != all.Min() || a.Max() != all.Max() {
			t.Fatal("merge min/max mismatch")
		}
	}
	// Merging into/from empty.
	var empty, filled Summary
	filled.Add(1)
	filled.Add(3)
	empty.Merge(filled)
	if empty.N() != 2 || empty.Mean() != 2 {
		t.Error("merge into empty failed")
	}
	before := filled
	var zero Summary
	filled.Merge(zero)
	if filled != before {
		t.Error("merging empty changed the summary")
	}
}

func TestTableText(t *testing.T) {
	tb := Table{Title: "demo", Headers: []string{"n", "value"}}
	tb.AddRow("400", "1.25")
	tb.AddRow("450", "10.50")
	out := tb.Text()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "400") {
		t.Errorf("text output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Headers: []string{"a", "b"}}
	tb.AddRow("1", "plain")
	tb.AddRow("2", `with "quote", and comma`)
	out := tb.CSV()
	want := "a,b\n1,plain\n2,\"with \"\"quote\"\", and comma\"\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}
