package metrics

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table with an optional title,
// rendered either as padded text (for terminals) or CSV (for plotting).
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row; cells are used as-is.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(cells))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Text renders the table with aligned columns.
func (t *Table) Text() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoting cells that
// contain commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
