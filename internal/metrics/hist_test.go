package metrics

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"
)

func TestHistIndexMonotoneAndInRange(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 15, 16, 17, 31, 32, 63, 64, 100, 1000,
		1 << 20, 1<<20 + 1, 1 << 40, math.MaxInt64} {
		idx := histIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of [0,%d)", v, idx, histBuckets)
		}
		if idx < prev {
			t.Fatalf("histIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
}

func TestHistValueWithinBucketBounds(t *testing.T) {
	for v := int64(0); v < 100000; v += 7 {
		idx := histIndex(v)
		rep := histValue(idx)
		if histIndex(rep) != idx {
			t.Fatalf("histValue(%d) = %d maps back to bucket %d", idx, rep, histIndex(rep))
		}
		if v < histSubs && rep != v {
			t.Fatalf("exact range: histValue(histIndex(%d)) = %d", v, rep)
		}
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	var h Histogram
	for _, v := range []int64{3, 3, 3, 7} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 16 || h.Max() != 7 {
		t.Fatalf("count/sum/max = %d/%d/%d", h.Count(), h.Sum(), h.Max())
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Fatalf("p50 = %d; want 3", got)
	}
	if got := h.Quantile(1); got != 7 {
		t.Fatalf("p100 = %d; want 7", got)
	}
}

// TestHistogramQuantileAccuracy pins the log-linear error bound: every
// quantile of a heavy-tailed random sample must be within 1/16 relative
// error of the exact percentile.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var h Histogram
	samples := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Lognormal-ish spread over ~5 decades, like a latency tail.
		v := int64(math.Exp(rng.NormFloat64()*2+8)) + 1
		h.Observe(v)
		samples = append(samples, float64(v))
	}
	for _, p := range []float64{10, 50, 90, 99, 99.9} {
		exact := Percentile(samples, p)
		got := float64(h.Quantile(p / 100))
		if relErr := math.Abs(got-exact) / exact; relErr > 1.0/16 {
			t.Errorf("p%v = %v, exact %v, rel err %.3f > 1/16", p, got, exact, relErr)
		}
	}
	if h.Quantile(1) != h.Max() {
		t.Errorf("p100 = %d; want exact max %d", h.Quantile(1), h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 5000; i++ {
		v := rng.Int64N(1 << 30)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		all.Observe(v)
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Sum() != all.Sum() || a.Max() != all.Max() {
		t.Fatalf("merge: count/sum/max = %d/%d/%d; want %d/%d/%d",
			a.Count(), a.Sum(), a.Max(), all.Count(), all.Sum(), all.Max())
	}
	for _, q := range []float64{0.5, 0.99} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("merge: q%.2f = %d; want %d", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines; run under -race this pins the lock-free recording path.
func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 7))
			for i := 0; i < per; i++ {
				h.Observe(rng.Int64N(1 << 40))
				if i%100 == 0 {
					h.Quantile(0.99) // concurrent reads must be safe too
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d; want %d", h.Count(), workers*per)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(-5)
	if h.Count() != 1 || h.Sum() != 0 || h.Quantile(1) != 0 {
		t.Fatalf("negative sample not clamped: count=%d sum=%d", h.Count(), h.Sum())
	}
}
