// Package energy models per-hop radio energy for WASN transmissions: the
// first-order radio model standard in the sensor-network literature
// (Heinzelman et al.): transmitting k bits over distance d costs
// k·(Eelec + Eamp·d²) and receiving costs k·Eelec. The paper motivates
// straightforward paths by the energy wasted in detours; this package
// quantifies that waste.
package energy

import (
	"fmt"

	"github.com/straightpath/wasn/internal/topo"
)

// Model holds the radio constants. The zero value is unusable; use
// DefaultModel or fill every field.
type Model struct {
	// ElecJPerBit is the electronics energy per bit (J/bit), paid on
	// both transmit and receive.
	ElecJPerBit float64
	// AmpJPerBitM2 is the amplifier energy per bit per square meter.
	AmpJPerBitM2 float64
}

// DefaultModel returns the constants used throughout the WASN
// literature: 50 nJ/bit electronics, 100 pJ/bit/m² amplifier.
func DefaultModel() Model {
	return Model{
		ElecJPerBit:  50e-9,
		AmpJPerBitM2: 100e-12,
	}
}

// TxCost returns the energy to transmit bits over distance d meters.
func (m Model) TxCost(bits int, d float64) float64 {
	return float64(bits) * (m.ElecJPerBit + m.AmpJPerBitM2*d*d)
}

// RxCost returns the energy to receive bits.
func (m Model) RxCost(bits int) float64 {
	return float64(bits) * m.ElecJPerBit
}

// PathCost returns the total energy to deliver bits along the node path
// (every relay transmits once and every non-source node receives once).
func (m Model) PathCost(net *topo.Network, path []topo.NodeID, bits int) float64 {
	var total float64
	for i := 1; i < len(path); i++ {
		d := net.Dist(path[i-1], path[i])
		total += m.TxCost(bits, d) + m.RxCost(bits)
	}
	return total
}

// Budget tracks per-node residual energy for lifetime experiments.
type Budget struct {
	model   Model
	initial float64
	residue []float64
}

// NewBudget gives every node of net the same initial energy (J).
func NewBudget(net *topo.Network, model Model, initialJ float64) (*Budget, error) {
	if initialJ <= 0 {
		return nil, fmt.Errorf("energy: initial budget must be positive, got %v", initialJ)
	}
	res := make([]float64, net.N())
	for i := range res {
		res[i] = initialJ
	}
	return &Budget{model: model, initial: initialJ, residue: res}, nil
}

// Residual returns node u's remaining energy.
func (b *Budget) Residual(u topo.NodeID) float64 { return b.residue[u] }

// Depleted reports whether u has exhausted its budget.
func (b *Budget) Depleted(u topo.NodeID) bool { return b.residue[u] <= 0 }

// Charge debits the energy of delivering bits along path. It returns the
// ids of nodes newly depleted by this transmission. Power exhaustion is
// one of the dynamic local-minimum causes the paper lists; callers
// typically mark depleted nodes failed and relabel.
func (b *Budget) Charge(net *topo.Network, path []topo.NodeID, bits int) []topo.NodeID {
	var depleted []topo.NodeID
	debit := func(u topo.NodeID, amount float64) {
		before := b.residue[u]
		b.residue[u] -= amount
		if before > 0 && b.residue[u] <= 0 {
			depleted = append(depleted, u)
		}
	}
	for i := 1; i < len(path); i++ {
		d := net.Dist(path[i-1], path[i])
		debit(path[i-1], b.model.TxCost(bits, d))
		debit(path[i], b.model.RxCost(bits))
	}
	return depleted
}

// MinResidual returns the lowest residual energy across alive nodes (the
// network-lifetime bottleneck).
func (b *Budget) MinResidual(net *topo.Network) float64 {
	min := b.initial
	for i, r := range b.residue {
		if net.Alive(topo.NodeID(i)) && r < min {
			min = r
		}
	}
	return min
}
