package energy

import (
	"math"
	"testing"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/topo"
)

func lineNet(t *testing.T) *topo.Network {
	t.Helper()
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(20, 0), geom.Pt(30, 0)}
	net, err := topo.NewNetwork(pts, 12, geom.FromCorners(geom.Pt(0, 0), geom.Pt(200, 200)))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestCostFormulas(t *testing.T) {
	m := DefaultModel()
	// 1 bit over 0 m costs exactly the electronics energy.
	if got := m.TxCost(1, 0); got != m.ElecJPerBit {
		t.Errorf("TxCost(1, 0) = %v", got)
	}
	// Amplifier term is quadratic in distance.
	d10 := m.TxCost(1000, 10) - m.TxCost(1000, 0)
	d20 := m.TxCost(1000, 20) - m.TxCost(1000, 0)
	if math.Abs(d20/d10-4) > 1e-9 {
		t.Errorf("amplifier not quadratic: %v vs %v", d10, d20)
	}
	if got := m.RxCost(1000); got != 1000*m.ElecJPerBit {
		t.Errorf("RxCost = %v", got)
	}
}

func TestPathCost(t *testing.T) {
	net := lineNet(t)
	m := DefaultModel()
	perHop := m.TxCost(500, 10) + m.RxCost(500)
	got := m.PathCost(net, []topo.NodeID{0, 1, 2, 3}, 500)
	if math.Abs(got-3*perHop) > 1e-18 {
		t.Errorf("PathCost = %v, want %v", got, 3*perHop)
	}
	if m.PathCost(net, []topo.NodeID{2}, 500) != 0 {
		t.Error("single-node path should cost nothing")
	}
}

func TestBudget(t *testing.T) {
	net := lineNet(t)
	m := DefaultModel()
	if _, err := NewBudget(net, m, 0); err == nil {
		t.Error("zero budget accepted")
	}
	// Budget sized so the relay (which both receives and transmits)
	// drains on the first stream while pure senders/receivers survive.
	perTx := m.TxCost(1000, 10)
	b, err := NewBudget(net, m, m.RxCost(1000)+perTx/2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Depleted(0) {
		t.Error("fresh node depleted")
	}
	dep := b.Charge(net, []topo.NodeID{0, 1, 2}, 1000)
	// Node 1 both received and transmitted: exactly drained.
	if len(dep) != 1 || dep[0] != 1 {
		t.Errorf("depleted = %v, want [1]", dep)
	}
	if !b.Depleted(1) || b.Depleted(0) || b.Depleted(2) {
		t.Error("depletion flags wrong")
	}
	// Charging again must not re-report node 1.
	dep = b.Charge(net, []topo.NodeID{0, 1, 2}, 1000)
	for _, u := range dep {
		if u == 1 {
			t.Error("node 1 re-reported as newly depleted")
		}
	}
	if b.Residual(3) != b.MinResidual(net) && b.MinResidual(net) > 0 {
		// MinResidual must be <= any node's residual.
		for i := range net.Nodes {
			if b.MinResidual(net) > b.Residual(topo.NodeID(i)) {
				t.Error("MinResidual above a node's residual")
			}
		}
	}
}
