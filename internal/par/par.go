// Package par provides the minimal data-parallel primitive the build
// pipeline shares: a chunked parallel for over an index range. It exists
// so the substrate builders (CSR adjacency, safety labeling, planar
// graph, TENT rule) can fan work across GOMAXPROCS without each package
// re-growing its own worker-pool boilerplate.
package par

import (
	"runtime"
	"sync"
)

// minChunk is the smallest index range worth a goroutine; below it the
// scheduling overhead outweighs the work for the per-node computations
// this repo parallelizes (tens of ns to a few µs per index).
const minChunk = 64

// For splits [0, n) into contiguous chunks and calls fn(lo, hi) for each,
// in parallel across up to GOMAXPROCS goroutines. fn must be safe to run
// concurrently with itself on disjoint ranges. Small ranges (or
// GOMAXPROCS=1) run inline on the calling goroutine, so For adds no
// overhead where parallelism cannot help. For returns when every chunk
// has completed.
//
// A panic in any chunk is re-raised on the calling goroutine once all
// chunks have finished, so callers (and their recover machinery, e.g.
// net/http's per-connection handler recovery) see build bugs exactly as
// they would from a serial loop instead of crashing the process from an
// unrecoverable worker goroutine.
func For(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > (n+minChunk-1)/minChunk {
		workers = (n + minChunk - 1) / minChunk
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var (
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicVal  any
	)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
