// Package stream models the paper's motivating application (§1): a
// streaming service delivering a large amount of data from a source to a
// destination over a fixed route. Straighter paths involve fewer relay
// nodes, which both saves energy and causes less interference in other
// transmissions; this package quantifies relays, interference footprint,
// and delivery energy for a route.
package stream

import (
	"fmt"

	"github.com/straightpath/wasn/internal/core"
	"github.com/straightpath/wasn/internal/energy"
	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/topo"
)

// Flow is one streaming session routed over a fixed path.
type Flow struct {
	Src, Dst topo.NodeID
	Path     []topo.NodeID
	// PacketBits is the size of one stream packet.
	PacketBits int
	// Packets is the number of packets in the stream.
	Packets int
}

// NewFlow builds a flow from a routing result.
func NewFlow(src, dst topo.NodeID, res core.Result, packetBits, packets int) (*Flow, error) {
	if !res.Delivered {
		return nil, fmt.Errorf("stream: route %d->%d undelivered (%v)", src, dst, res.Reason)
	}
	if packetBits <= 0 || packets <= 0 {
		return nil, fmt.Errorf("stream: packet bits (%d) and count (%d) must be positive", packetBits, packets)
	}
	return &Flow{Src: src, Dst: dst, Path: res.Path, PacketBits: packetBits, Packets: packets}, nil
}

// Relays returns the number of distinct intermediate nodes carrying the
// stream (source and destination excluded).
func (f *Flow) Relays() int {
	seen := make(map[topo.NodeID]bool, len(f.Path))
	for _, u := range f.Path[1 : len(f.Path)-1] {
		if u != f.Src && u != f.Dst {
			seen[u] = true
		}
	}
	return len(seen)
}

// Interference returns the number of distinct nodes that hear the stream
// at all: every node within radio range of any transmitter on the path.
// Fewer involved nodes means less interference in other transmissions —
// the paper's second motivation for straightforward paths.
func (f *Flow) Interference(net *topo.Network) int {
	heard := make(map[topo.NodeID]bool)
	for i := 0; i < len(f.Path)-1; i++ { // every node that transmits
		tx := f.Path[i]
		for _, v := range net.Neighbors(tx) {
			heard[v] = true
		}
		heard[tx] = true
	}
	return len(heard)
}

// Energy returns the total radio energy to deliver the whole stream.
func (f *Flow) Energy(net *topo.Network, m energy.Model) float64 {
	perPacket := m.PathCost(net, f.Path, f.PacketBits)
	return perPacket * float64(f.Packets)
}

// Stretch returns the path length divided by the Euclidean distance
// between source and destination (1.0 = perfectly straight).
func (f *Flow) Stretch(net *topo.Network) float64 {
	direct := geom.Dist(net.Pos(f.Src), net.Pos(f.Dst))
	if direct == 0 {
		return 1
	}
	return net.PathLength(f.Path) / direct
}

// Report summarizes a flow for one routing algorithm.
type Report struct {
	Algorithm    string
	Hops         int
	Relays       int
	Interference int
	EnergyJ      float64
	Stretch      float64
}

// Compare routes the same stream with every router and reports the
// per-algorithm footprint. Routers that fail to deliver are skipped.
func Compare(net *topo.Network, routers []core.Router, src, dst topo.NodeID, packetBits, packets int) []Report {
	m := energy.DefaultModel()
	out := make([]Report, 0, len(routers))
	for _, r := range routers {
		res := r.Route(src, dst)
		flow, err := NewFlow(src, dst, res, packetBits, packets)
		if err != nil {
			continue
		}
		out = append(out, Report{
			Algorithm:    r.Name(),
			Hops:         res.Hops(),
			Relays:       flow.Relays(),
			Interference: flow.Interference(net),
			EnergyJ:      flow.Energy(net, m),
			Stretch:      flow.Stretch(net),
		})
	}
	return out
}
