package stream

import (
	"testing"

	"github.com/straightpath/wasn/internal/core"
	"github.com/straightpath/wasn/internal/energy"
	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/topo"
)

func lineNet(t *testing.T) *topo.Network {
	t.Helper()
	pts := []geom.Point{
		geom.Pt(10, 50), geom.Pt(20, 50), geom.Pt(30, 50), geom.Pt(40, 50), geom.Pt(50, 50),
	}
	net, err := topo.NewNetwork(pts, 12, geom.FromCorners(geom.Pt(0, 0), geom.Pt(200, 200)))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func deliveredResult(t *testing.T, net *topo.Network, src, dst topo.NodeID) core.Result {
	t.Helper()
	res := core.NewLGF(net).Route(src, dst)
	if !res.Delivered {
		t.Fatal("routing failed on test network")
	}
	return res
}

func TestNewFlowValidation(t *testing.T) {
	net := lineNet(t)
	res := deliveredResult(t, net, 0, 4)
	if _, err := NewFlow(0, 4, res, 0, 10); err == nil {
		t.Error("zero packet bits accepted")
	}
	if _, err := NewFlow(0, 4, res, 1024, 0); err == nil {
		t.Error("zero packet count accepted")
	}
	var failed core.Result
	failed.Reason = core.DropNoCandidate
	if _, err := NewFlow(0, 4, failed, 1024, 10); err == nil {
		t.Error("undelivered route accepted")
	}
}

func TestFlowMetrics(t *testing.T) {
	net := lineNet(t)
	res := deliveredResult(t, net, 0, 4)
	flow, err := NewFlow(0, 4, res, 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := flow.Relays(); got != 3 {
		t.Errorf("Relays = %d, want 3 (nodes 1,2,3)", got)
	}
	// Every node hears a transmission on the line.
	if got := flow.Interference(net); got != 5 {
		t.Errorf("Interference = %d, want 5", got)
	}
	// Stretch on a straight line is 1.
	if got := flow.Stretch(net); got != 1 {
		t.Errorf("Stretch = %v, want 1", got)
	}
	// Energy: 4 hops of 10 m, 1000 bits, 100 packets.
	m := energy.DefaultModel()
	perHop := m.TxCost(1000, 10) + m.RxCost(1000)
	want := perHop * 4 * 100
	if got := flow.Energy(net, m); got < want*0.999 || got > want*1.001 {
		t.Errorf("Energy = %v, want %v", got, want)
	}
}

func TestStretchSelfFlow(t *testing.T) {
	net := lineNet(t)
	f := &Flow{Src: 2, Dst: 2, Path: []topo.NodeID{2}, PacketBits: 1, Packets: 1}
	if got := f.Stretch(net); got != 1 {
		t.Errorf("self-flow stretch = %v, want 1", got)
	}
}

func TestCompare(t *testing.T) {
	dep, err := topo.Deploy(topo.DefaultDeployConfig(topo.ModelIA, 400, 3))
	if err != nil {
		t.Fatal(err)
	}
	net := dep.Net
	m := safety.Build(net)
	routers := []core.Router{
		core.NewLGF(net),
		core.NewSLGF2(net, m),
		core.NewIdeal(net, core.IdealMinLength),
	}
	labels, _ := topo.Components(net)
	var src, dst topo.NodeID = topo.NoNode, topo.NoNode
	for s := 0; s < net.N() && src == topo.NoNode; s++ {
		d := net.N() - 1 - s
		if s != d && labels[s] >= 0 && labels[s] == labels[d] {
			src, dst = topo.NodeID(s), topo.NodeID(d)
		}
	}
	if src == topo.NoNode {
		t.Skip("no connected pair")
	}
	reports := Compare(net, routers, src, dst, 1000, 10)
	if len(reports) == 0 {
		t.Fatal("no reports")
	}
	var ideal, lgf *Report
	for i := range reports {
		switch reports[i].Algorithm {
		case "Ideal-length":
			ideal = &reports[i]
		case "LGF":
			lgf = &reports[i]
		}
		if reports[i].Hops <= 0 || reports[i].EnergyJ <= 0 || reports[i].Stretch < 1 {
			t.Errorf("implausible report %+v", reports[i])
		}
	}
	if ideal == nil || lgf == nil {
		t.Fatal("missing expected reports")
	}
	if lgf.EnergyJ < ideal.EnergyJ*0.999 {
		t.Errorf("LGF energy %v beats ideal %v", lgf.EnergyJ, ideal.EnergyJ)
	}
	if lgf.Interference < ideal.Interference/2 {
		t.Errorf("interference implausible: lgf %d vs ideal %d", lgf.Interference, ideal.Interference)
	}
}
