package obs

import (
	"fmt"
	"math"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SeriesKind selects how a sampled timeline series is derived from
// consecutive registry scrapes.
type SeriesKind uint8

// The four derivations the sampler supports. Rates and quantiles are
// computed from scrape-to-scrape deltas (so a timeline point describes
// the window since the previous sample); gauges are instantaneous.
const (
	// SeriesGauge samples the current value (sum over matching series).
	SeriesGauge SeriesKind = iota + 1
	// SeriesRate samples the per-second counter movement since the
	// previous scrape, reset-clamped to zero. On histogram families the
	// _count series contribute, so the rate is observations per second.
	SeriesRate
	// SeriesRatio samples dNum/(dNum+dDen) over the inter-scrape window
	// — hit shares, delivery rates.
	SeriesRatio
	// SeriesQuantile estimates a quantile from the histogram bucket
	// deltas between scrapes: the tail of the last window, not of the
	// process lifetime.
	SeriesQuantile
)

var seriesKindNames = [...]string{"", "gauge", "rate", "ratio", "quantile"}

// String names the kind for the JSON window ("rate", "quantile", ...).
func (k SeriesKind) String() string {
	if int(k) < len(seriesKindNames) {
		return seriesKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Term selects registry series by family name plus an optional label
// substring: Family "wasn_routes_computed_total" with Match
// `outcome="delivered"` sums the delivered child of every algorithm.
type Term struct {
	Family string
	// Match, when non-empty, must appear verbatim in the series
	// identity (typically one `key="value"` pair).
	Match string
}

func (t Term) matches(series string) bool {
	return familyOf(series) == t.Family &&
		(t.Match == "" || strings.Contains(series, t.Match))
}

// SeriesSpec declares one timeline series the sampler maintains.
type SeriesSpec struct {
	// Name is the output series name ("routes_per_s", "repair_p99_us").
	Name string
	Kind SeriesKind
	// Num is the measured term (the numerator for SeriesRatio; the
	// histogram family for SeriesQuantile).
	Num Term
	// Den is the ratio's complement term: ratio = dNum/(dNum+dDen).
	Den Term
	// Q is the quantile for SeriesQuantile (e.g. 0.99).
	Q float64
}

// SamplerConfig configures NewSampler.
type SamplerConfig struct {
	// Scrape produces the current parsed exposition (typically
	// ParseText over Registry.WriteText). Called once per sample, on
	// the sampler's own goroutine — never on a serving hot path.
	Scrape func() (map[string]float64, error)
	Specs  []SeriesSpec
	// Every is the sampling period for Start (default 1s).
	Every time.Duration
	// Window is the number of samples retained (default 512). Memory
	// is fixed at setup: Window × (len(Specs)+1) ring cells.
	Window int
}

// Sampler periodically snapshots selected registry series into
// fixed-memory ring-buffered time series. All rings are written with
// atomic stores and read with atomic loads, so Snapshot is lock-free
// and safe to call from any number of scraping handlers while the
// sampling goroutine runs.
type Sampler struct {
	cfg   SamplerConfig
	every time.Duration

	// total counts samples ever taken; cell i of each ring holds
	// sample total-1-((total-1-i) mod window)… i.e. rings are indexed
	// total%window, published by the total store.
	total atomic.Uint64
	ts    []atomic.Int64    // unix ms per sample
	vals  [][]atomic.Uint64 // per spec: Float64bits per sample

	mu      sync.Mutex // serializes writers (ticker + manual Sample)
	prev    map[string]float64
	prevMS  int64
	scratch []bucketDelta // quantile scratch, reused across samples
	errs    atomic.Uint64 // scrape failures, surfaced in the window

	stop chan struct{}
	done chan struct{}
}

type bucketDelta struct {
	le float64
	d  float64
}

// NewSampler builds a sampler; it takes no samples until Start or
// Sample is called.
func NewSampler(cfg SamplerConfig) *Sampler {
	if cfg.Window <= 0 {
		cfg.Window = 512
	}
	if cfg.Every <= 0 {
		cfg.Every = time.Second
	}
	s := &Sampler{
		cfg:     cfg,
		every:   cfg.Every,
		ts:      make([]atomic.Int64, cfg.Window),
		vals:    make([][]atomic.Uint64, len(cfg.Specs)),
		scratch: make([]bucketDelta, 0, 64),
	}
	for i := range s.vals {
		s.vals[i] = make([]atomic.Uint64, cfg.Window)
	}
	return s
}

// Start launches the periodic sampling goroutine. Idempotent; Stop
// ends it.
func (s *Sampler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	s.stop, s.done = make(chan struct{}), make(chan struct{})
	go s.loop(s.stop, s.done)
}

func (s *Sampler) loop(stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(s.every)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			s.Sample()
		}
	}
}

// Stop halts the sampling goroutine and waits for it to exit.
// Idempotent; the recorded window stays queryable.
func (s *Sampler) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Sample takes one sample now: scrape, derive every spec, append to
// the rings. Exposed so tests and end-of-run flushes don't have to
// wait for a tick.
func (s *Sampler) Sample() {
	cur, err := s.cfg.Scrape()
	now := time.Now().UnixMilli()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.errs.Add(1)
		return
	}
	s.record(now, cur)
}

// record derives every spec from (prev, cur) and publishes one sample.
// It is allocation-free in steady state (pinned by TestSamplerAllocs):
// the rings are fixed, the quantile scratch is reused, and cur is
// retained as the next prev rather than copied.
func (s *Sampler) record(unixMS int64, cur map[string]float64) {
	i := s.total.Load()
	idx := int(i % uint64(len(s.ts)))
	dtSec := 0.0
	if s.prev != nil && unixMS > s.prevMS {
		dtSec = float64(unixMS-s.prevMS) / 1000
	}
	for si := range s.cfg.Specs {
		spec := &s.cfg.Specs[si]
		v := 0.0
		switch spec.Kind {
		case SeriesGauge:
			v = sumTerm(cur, spec.Num)
		case SeriesRate:
			if dtSec > 0 {
				if d := sumTerm(cur, spec.Num) - sumTerm(s.prev, spec.Num); d > 0 {
					v = d / dtSec
				}
			}
		case SeriesRatio:
			if s.prev != nil {
				dn := sumTerm(cur, spec.Num) - sumTerm(s.prev, spec.Num)
				dd := sumTerm(cur, spec.Den) - sumTerm(s.prev, spec.Den)
				if dn < 0 {
					dn = 0
				}
				if dd < 0 {
					dd = 0
				}
				if dn+dd > 0 {
					v = dn / (dn + dd)
				}
			}
		case SeriesQuantile:
			if s.prev != nil {
				v = s.quantile(spec, cur)
			}
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0 // keep the JSON window encodable
		}
		s.vals[si][idx].Store(math.Float64bits(v))
	}
	s.ts[idx].Store(unixMS)
	s.prev, s.prevMS = cur, unixMS
	s.total.Store(i + 1)
}

// sumTerm sums the current value of every series the term selects.
// Histogram _bucket and _sum series never contribute — on histogram
// families the term measures _count (observation totals).
func sumTerm(samples map[string]float64, t Term) float64 {
	sum := 0.0
	for series, v := range samples {
		if bucketOrSum(series) || !t.matches(series) {
			continue
		}
		sum += v
	}
	return sum
}

func bucketOrSum(series string) bool {
	name := series
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	return strings.HasSuffix(name, "_bucket") || strings.HasSuffix(name, "_sum")
}

// quantile estimates spec.Q from the bucket-count deltas of the
// matched histogram family between prev and cur, summed across the
// family's labeled children (both are cumulative in le, so the sums
// stay cumulative). Returns the upper bound of the bucket containing
// the target rank — the same estimator metrics.Histogram.Quantile
// uses, but over one inter-scrape window.
func (s *Sampler) quantile(spec *SeriesSpec, cur map[string]float64) float64 {
	s.scratch = s.scratch[:0]
	for series, v := range cur {
		if !strings.HasPrefix(series, spec.Num.Family) || !isBucket(series, spec.Num.Family) {
			continue
		}
		if spec.Num.Match != "" && !strings.Contains(series, spec.Num.Match) {
			continue
		}
		le, ok := bucketUpper(series)
		if !ok {
			continue
		}
		d := v - s.prev[series] // absent from prev: counts from zero
		if d < 0 {
			d = 0 // reset-clamped, like Delta
		}
		merged := false
		for bi := range s.scratch {
			if s.scratch[bi].le == le {
				s.scratch[bi].d += d
				merged = true
				break
			}
		}
		if !merged {
			s.scratch = append(s.scratch, bucketDelta{le: le, d: d})
		}
	}
	if len(s.scratch) == 0 {
		return 0
	}
	slices.SortFunc(s.scratch, func(a, b bucketDelta) int {
		switch {
		case a.le < b.le:
			return -1
		case a.le > b.le:
			return 1
		}
		return 0
	})
	total := s.scratch[len(s.scratch)-1].d // +Inf bucket holds every observation
	if total <= 0 {
		return 0
	}
	target := spec.Q * total
	for bi := range s.scratch {
		b := &s.scratch[bi]
		if b.d >= target {
			if math.IsInf(b.le, 1) {
				// Only the overflow bucket qualifies: fall back to the
				// largest finite bound so the curve stays plottable.
				if bi > 0 {
					return s.scratch[bi-1].le
				}
				return 0
			}
			return b.le
		}
	}
	return s.scratch[len(s.scratch)-1].le
}

// isBucket reports whether series is family's _bucket sample.
func isBucket(series, family string) bool {
	rest := series[len(family):]
	return strings.HasPrefix(rest, "_bucket")
}

// bucketUpper extracts the le="..." upper bound from a bucket series.
func bucketUpper(series string) (float64, bool) {
	i := strings.Index(series, `le="`)
	if i < 0 {
		return 0, false
	}
	rest := series[i+4:]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return 0, false
	}
	v, err := strconv.ParseFloat(rest[:j], 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// TimelineSeries is one named, kind-tagged curve of a window, aligned
// point-for-point with the window's timestamps.
type TimelineSeries struct {
	Name   string    `json:"name"`
	Kind   string    `json:"kind"`
	Points []float64 `json:"points"`
}

// TimelineWindow is the sampler's queryable state: the retained
// timestamps plus every configured series as an aligned step curve.
type TimelineWindow struct {
	// EveryMS is the nominal sampling period.
	EveryMS int64 `json:"every_ms,omitempty"`
	// TUnixMS holds the sample timestamps, oldest first.
	TUnixMS []int64          `json:"t_unix_ms"`
	Series  []TimelineSeries `json:"series"`
	// ScrapeErrors counts samples dropped because Scrape failed.
	ScrapeErrors uint64 `json:"scrape_errors,omitempty"`
}

// Find returns the named series, or nil.
func (w *TimelineWindow) Find(name string) *TimelineSeries {
	for i := range w.Series {
		if w.Series[i].Name == name {
			return &w.Series[i]
		}
	}
	return nil
}

// Snapshot copies the retained window out of the rings. Lock-free:
// safe against a concurrent sampling tick, which can at worst trim
// the oldest points out of the copy.
func (s *Sampler) Snapshot() TimelineWindow {
	w := TimelineWindow{EveryMS: s.every.Milliseconds(), ScrapeErrors: s.errs.Load()}
	hi := s.total.Load()
	window := uint64(len(s.ts))
	n := hi
	if n > window {
		n = window
	}
	lo := hi - n
	w.TUnixMS = make([]int64, n)
	w.Series = make([]TimelineSeries, len(s.cfg.Specs))
	for si := range s.cfg.Specs {
		w.Series[si] = TimelineSeries{
			Name:   s.cfg.Specs[si].Name,
			Kind:   s.cfg.Specs[si].Kind.String(),
			Points: make([]float64, n),
		}
	}
	for k := uint64(0); k < n; k++ {
		idx := int((lo + k) % window)
		w.TUnixMS[k] = s.ts[idx].Load()
		for si := range s.vals {
			w.Series[si].Points[k] = math.Float64frombits(s.vals[si][idx].Load())
		}
	}
	// A tick that landed mid-copy may have overwritten the oldest
	// cells we read; drop any point older than the new floor.
	if newHi := s.total.Load(); newHi > window && newHi-window > lo {
		drop := newHi - window - lo
		if drop > n {
			drop = n
		}
		w.TUnixMS = w.TUnixMS[drop:]
		for si := range w.Series {
			w.Series[si].Points = w.Series[si].Points[drop:]
		}
	}
	return w
}
