package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// sortedChildren returns a vec's children ordered by child key, so
// exposition output is deterministic regardless of creation order.
func sortedChildren[T any](v *vec[T]) []*T {
	m := v.snapshot()
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*T, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// Registry holds the collectors of one process (or one Service) and
// renders them as a Prometheus text exposition. Registration is
// copy-on-write: WriteText and concurrent observations never block a
// Register and vice versa.
type Registry struct {
	mu   sync.Mutex
	snap atomic.Pointer[[]Collector]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{}
}

// Register adds a collector. Family names must be unique within a
// registry.
func (r *Registry) Register(c Collector) error {
	name := c.Desc().Name
	if !validMetricName(name) {
		return fmt.Errorf("obs: invalid metric name %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snap.Load()
	var next []Collector
	if old != nil {
		for _, e := range *old {
			if e.Desc().Name == name {
				return fmt.Errorf("obs: metric %q already registered", name)
			}
		}
		next = append(next, *old...)
	}
	next = append(next, c)
	sort.Slice(next, func(i, j int) bool { return next[i].Desc().Name < next[j].Desc().Name })
	r.snap.Store(&next)
	return nil
}

// MustRegister registers each collector, panicking on error — for the
// fixed series a service declares at construction time.
func (r *Registry) MustRegister(cs ...Collector) {
	for _, c := range cs {
		if err := r.Register(c); err != nil {
			panic(err)
		}
	}
}

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, each with # HELP
// and # TYPE headers followed by its samples.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.snap.Load()
	if snap == nil {
		return nil
	}
	var b strings.Builder
	for _, c := range *snap {
		d := c.Desc()
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", d.Name, escapeHelp(d.Help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", d.Name, d.Kind)
		c.Collect(func(s Sample) {
			b.WriteString(d.Name)
			b.WriteString(s.Suffix)
			if len(s.Labels) > 0 {
				b.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						b.WriteByte(',')
					}
					b.WriteString(l.Key)
					b.WriteString(`="`)
					b.WriteString(escapeLabel(l.Value))
					b.WriteByte('"')
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatValue(s.Value))
			b.WriteByte('\n')
		})
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Text renders the registry to a string (WriteText to a buffer).
func (r *Registry) Text() string {
	var b strings.Builder
	_ = r.WriteText(&b)
	return b.String()
}

// formatValue renders a sample value: integers without an exponent
// (counters and bucket counts stay grep-able), everything else in Go's
// shortest form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline in # HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslash, double quote, and newline in label
// values.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// validMetricName reports whether s matches the Prometheus metric name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
