// Package obs is the observability layer: a lock-free metrics registry
// with Prometheus-style text exposition, shared by the serving stack
// (internal/serve registers per-endpoint, per-algorithm, and
// per-deployment series), the workload engine (which embeds scraped
// metric deltas in its reports), and the CLI (wasnd serves the registry
// at /metrics and verifies scrapes with -check-metrics).
//
// # Design
//
// Three primitive collectors — Counter, Gauge, and Histogram (the
// log-bucketed metrics.Histogram behind the exposition) — plus their
// labeled families (CounterVec, GaugeVec, HistogramVec) and Func for
// values computed at scrape time, all behind the common Collector
// interface. Observation is wait-free: counters and gauges are single
// atomic adds, histograms are the atomic bucket increments of
// metrics.Histogram. The registry and the label-family children are
// copy-on-write: registration and first-use of a label tuple take a
// mutex, but the hot path (observing through a held pointer, or a
// Vec.With on an existing tuple) only loads an atomic pointer. Callers
// on allocation-free paths resolve their children once at setup and
// hold the concrete pointers.
//
// # Exposition
//
// Registry.WriteText renders the Prometheus text format (version
// 0.0.4): one # HELP and # TYPE header per family followed by its
// samples, families sorted by name, label tuples sorted within a
// family. Histograms render cumulative _bucket{le="..."} samples over
// their non-empty buckets plus the +Inf bucket, _sum, and _count.
// ParseText is the strict inverse used by tests, the workload engine's
// scrape deltas, and the wasnd -check-metrics CI gate.
package obs
