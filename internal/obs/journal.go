package obs

import (
	"fmt"
	"sync/atomic"
)

// EventKind classifies a journal entry. The zero value is reserved so
// a zeroed Event is distinguishable from a recorded one.
type EventKind uint8

// Journal event kinds, one per structural change the serving layer
// records: substrate construction, the three topology mutations (each
// entry carries the repair that followed it), and cache purges forced
// outside a topology change.
const (
	EventNone EventKind = iota
	EventBuild
	EventFail
	EventRevive
	EventMove
	EventPurge
	// Fleet control-plane kinds, appended after the serving-layer kinds
	// (the enum is wire-visible; existing ordinals must never shift):
	// replicas joining and leaving the shard map, a re-shard publishing
	// a new map version, and state restored onto a replica.
	EventJoin
	EventLeave
	EventReshard
	EventRestore
)

var eventKindNames = [...]string{"none", "build", "fail", "revive", "move", "purge",
	"join", "leave", "reshard", "restore"}

// String names the kind as it appears on the wire ("fail", "build", ...).
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalText renders the kind as its name, so journal JSON reads
// "kind": "fail" rather than an opaque enum ordinal.
func (k EventKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a kind name; unknown names are an error so
// report round-trips catch schema drift.
func (k *EventKind) UnmarshalText(b []byte) error {
	for i, n := range eventKindNames {
		if string(b) == n {
			*k = EventKind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", b)
}

// ParseEventKind maps a kind name ("fail") to its EventKind, for
// journal tail filters.
func ParseEventKind(s string) (EventKind, error) {
	var k EventKind
	err := k.UnmarshalText([]byte(s))
	return k, err
}

// Event is one structured journal entry: a topology change, substrate
// build, or cache purge, with enough timing breakdown to reconstruct
// what the repair pipeline did and how long each substrate took. All
// fields are value types so an entry is one slot copy — no shared
// backing arrays between writer and readers.
type Event struct {
	// Seq is the journal-assigned sequence number, 1-based and dense:
	// gaps in a tail mean the ring lapped those entries.
	Seq    uint64 `json:"seq"`
	UnixMS int64  `json:"t_unix_ms"`

	Kind       EventKind `json:"kind"`
	Deployment string    `json:"deployment,omitempty"`
	// Replica attributes fleet control-plane events (join, leave,
	// reshard, restore) to the replica they concern; empty for
	// single-process serving-layer events.
	Replica string `json:"replica,omitempty"`
	// RequestID attributes the event to the HTTP request that caused
	// it (the X-Request-Id the middleware assigned), empty for events
	// raised outside a request.
	RequestID string `json:"request_id,omitempty"`

	// Nodes is the batch size of the triggering mutation (nodes failed
	// / revived / moved; deployment size for builds).
	Nodes int `json:"nodes,omitempty"`
	// Dirty is the deduplicated dirty set handed to the repair pass —
	// the work actually done, as opposed to the batch requested.
	Dirty int `json:"dirty,omitempty"`
	// Rebuild marks a full substrate rebuild (FullRebuildOnFail) as
	// opposed to an incremental repair.
	Rebuild bool `json:"rebuild,omitempty"`

	// Epoch is the deployment epoch after the event's bump (0 when
	// the event does not bump the epoch).
	Epoch uint64 `json:"epoch,omitempty"`
	// Purged counts route-cache entries invalidated by the event.
	Purged int64 `json:"purged,omitempty"`

	// DurationUS is the whole operation's wall time (repair or build);
	// the three *US spans break an incremental repair down by
	// substrate (concurrent, so they overlap rather than sum).
	DurationUS int64 `json:"duration_us,omitempty"`
	SafetyUS   int64 `json:"safety_us,omitempty"`
	BoundUS    int64 `json:"bound_us,omitempty"`
	PlanarUS   int64 `json:"planar_us,omitempty"`

	Err string `json:"error,omitempty"`
}

// Journal is a bounded multi-producer ring of Events. Record claims a
// slot with one atomic increment and publishes the entry with one
// atomic pointer store — no locks, nothing on a hot path blocks on a
// reader. When the ring wraps, the oldest entries are overwritten;
// readers detect laps by sequence number and simply skip slots that
// are mid-overwrite.
type Journal struct {
	mask  uint64
	seq   atomic.Uint64
	slots []atomic.Pointer[Event]
}

// NewJournal allocates a ring holding at least size entries (rounded
// up to a power of two; size <= 0 selects the 1024-entry default).
func NewJournal(size int) *Journal {
	if size <= 0 {
		size = 1024
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &Journal{mask: uint64(n - 1), slots: make([]atomic.Pointer[Event], n)}
}

// Cap is the number of entries the ring retains before overwriting.
func (j *Journal) Cap() int { return len(j.slots) }

// Total is the number of events ever recorded (recorded − retained =
// entries lost to wraparound).
func (j *Journal) Total() uint64 { return j.seq.Load() }

// Record assigns the event the next sequence number and publishes it,
// returning the sequence. Safe for any number of concurrent writers.
func (j *Journal) Record(ev Event) uint64 {
	n := j.seq.Add(1)
	ev.Seq = n
	j.slots[(n-1)&j.mask].Store(&ev)
	return n
}

// Tail returns up to max of the newest events, oldest first. max <= 0
// means the whole retained window.
func (j *Journal) Tail(max int) []Event { return j.Since(0, max) }

// Since returns up to max events with Seq > after, oldest first —
// the incremental-poll form of Tail. Entries overwritten by ring
// wraparound, and slots currently being overwritten, are skipped.
func (j *Journal) Since(after uint64, max int) []Event {
	hi := j.seq.Load()
	if hi == 0 {
		return nil
	}
	lo := uint64(1)
	if n := uint64(len(j.slots)); hi > n {
		lo = hi - n + 1
	}
	if after >= lo {
		lo = after + 1
	}
	if lo > hi {
		return nil
	}
	if max > 0 && hi-lo+1 > uint64(max) {
		lo = hi - uint64(max) + 1
	}
	out := make([]Event, 0, hi-lo+1)
	for n := lo; n <= hi; n++ {
		p := j.slots[(n-1)&j.mask].Load()
		if p == nil || p.Seq != n {
			// Slot claimed but not yet published, or already lapped by
			// a newer claim — either way seq n is not retrievable.
			continue
		}
		out = append(out, *p)
	}
	return out
}
