package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// TestDeltaClampsCounterResets pins the reset guard: a series whose
// after-sample is below its before-sample (restarted server) must not
// produce a negative delta — it is clamped out and named as a reset.
func TestDeltaClampsCounterResets(t *testing.T) {
	before := map[string]float64{"a_total": 100, "b_total": 7, "g": 5}
	after := map[string]float64{"a_total": 3, "b_total": 9, "g": 5}
	d, resets := DeltaWithResets(before, after)
	if len(resets) != 1 || resets[0] != "a_total" {
		t.Fatalf("resets = %v, want [a_total]", resets)
	}
	if _, ok := d["a_total"]; ok {
		t.Fatalf("reset series leaked into delta: %v", d)
	}
	if d["b_total"] != 2 {
		t.Fatalf("delta[b_total] = %v, want 2", d["b_total"])
	}
	// Delta itself applies the same clamp.
	if d2 := Delta(before, after); len(d2) != 1 || d2["b_total"] != 2 {
		t.Fatalf("Delta = %v, want only b_total=2", d2)
	}
}

// TestJournalTailOrder records fewer events than capacity and checks
// dense, oldest-first sequences.
func TestJournalTailOrder(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 5; i++ {
		seq := j.Record(Event{Kind: EventFail, Nodes: i})
		if seq != uint64(i+1) {
			t.Fatalf("Record #%d returned seq %d", i, seq)
		}
	}
	tail := j.Tail(0)
	if len(tail) != 5 {
		t.Fatalf("tail = %d events, want 5", len(tail))
	}
	for i, ev := range tail {
		if ev.Seq != uint64(i+1) || ev.Nodes != i {
			t.Fatalf("tail[%d] = seq %d nodes %d", i, ev.Seq, ev.Nodes)
		}
	}
}

// TestJournalWraparound pins the overflow semantics: a ring of
// capacity C retains exactly the newest C events, the overwritten
// prefix is gone, and Total still counts every record.
func TestJournalWraparound(t *testing.T) {
	j := NewJournal(8)
	if j.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", j.Cap())
	}
	const total = 21
	for i := 1; i <= total; i++ {
		j.Record(Event{Kind: EventMove, Nodes: i})
	}
	if j.Total() != total {
		t.Fatalf("Total = %d, want %d", j.Total(), total)
	}
	tail := j.Tail(0)
	if len(tail) != 8 {
		t.Fatalf("tail = %d events, want 8 (ring capacity)", len(tail))
	}
	for i, ev := range tail {
		wantSeq := uint64(total - 8 + 1 + i)
		if ev.Seq != wantSeq || ev.Nodes != int(wantSeq) {
			t.Fatalf("tail[%d] = seq %d nodes %d, want seq %d", i, ev.Seq, ev.Nodes, wantSeq)
		}
	}
	// max caps the tail from the newest end.
	last2 := j.Tail(2)
	if len(last2) != 2 || last2[1].Seq != total || last2[0].Seq != total-1 {
		t.Fatalf("Tail(2) = %+v", last2)
	}
	// Since filters strictly after the given sequence.
	since := j.Since(total-3, 0)
	if len(since) != 3 || since[0].Seq != total-2 {
		t.Fatalf("Since = %+v", since)
	}
	// A lapped cursor yields only the retained window.
	if got := j.Since(1, 0); len(got) != 8 {
		t.Fatalf("Since(1) = %d events, want 8", len(got))
	}
}

// TestJournalSizing pins the rounding rules: power-of-two capacity,
// default 1024.
func TestJournalSizing(t *testing.T) {
	if c := NewJournal(0).Cap(); c != 1024 {
		t.Fatalf("default Cap = %d, want 1024", c)
	}
	if c := NewJournal(100).Cap(); c != 128 {
		t.Fatalf("Cap(100) = %d, want 128", c)
	}
}

// TestJournalKindJSON round-trips the typed kind through JSON.
func TestJournalKindJSON(t *testing.T) {
	b, err := json.Marshal(Event{Seq: 1, Kind: EventRevive})
	if err != nil {
		t.Fatal(err)
	}
	var ev Event
	if err := json.Unmarshal(b, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EventRevive {
		t.Fatalf("round-trip kind = %v", ev.Kind)
	}
	if err := json.Unmarshal([]byte(`{"kind":"bogus"}`), &ev); err == nil {
		t.Fatal("unknown kind decoded without error")
	}
	if _, err := ParseEventKind("fail"); err != nil {
		t.Fatal(err)
	}
}

// TestJournalConcurrent storms the ring from many writers while
// readers tail it: every event read must be internally consistent
// (the writer-encoded invariant Nodes == Seq%1000) — the torn-slot
// detection contract, under -race.
func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(64)
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				j.Record(Event{Kind: EventFail, Deployment: fmt.Sprintf("w%d", w)})
			}
		}(w)
	}
	var readerWG sync.WaitGroup
	readerWG.Add(2)
	for r := 0; r < 2; r++ {
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, ev := range j.Tail(0) {
					if ev.Seq == 0 || ev.Kind != EventFail || ev.Deployment == "" {
						t.Errorf("torn event read: %+v", ev)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
	if j.Total() != writers*perWriter {
		t.Fatalf("Total = %d, want %d", j.Total(), writers*perWriter)
	}
	tail := j.Tail(0)
	if len(tail) != 64 {
		t.Fatalf("retained %d events, want 64", len(tail))
	}
	for i := 1; i < len(tail); i++ {
		if tail[i].Seq <= tail[i-1].Seq {
			t.Fatalf("tail not in sequence order: %d then %d", tail[i-1].Seq, tail[i].Seq)
		}
	}
}

// scriptedScrapes feeds the sampler a deterministic scrape sequence.
type scriptedScrapes struct {
	i     int
	steps []map[string]float64
}

func (s *scriptedScrapes) next() (map[string]float64, error) {
	if s.i >= len(s.steps) {
		return s.steps[len(s.steps)-1], nil
	}
	m := s.steps[s.i]
	s.i++
	return m, nil
}

func samplerSpecs() []SeriesSpec {
	return []SeriesSpec{
		{Name: "req_per_s", Kind: SeriesRate, Num: Term{Family: "req_total"}},
		{Name: "inflight", Kind: SeriesGauge, Num: Term{Family: "inflight"}},
		{Name: "ok_share", Kind: SeriesRatio,
			Num: Term{Family: "out_total", Match: `outcome="ok"`},
			Den: Term{Family: "out_total", Match: `outcome="bad"`}},
		{Name: "lat_p99", Kind: SeriesQuantile, Num: Term{Family: "lat"}, Q: 0.99},
	}
}

// TestSamplerDerivations drives the sampler over a scripted scrape
// sequence with known timestamps and pins each kind's math: rates from
// counter deltas, ratios, gauges, and quantiles from bucket deltas.
func TestSamplerDerivations(t *testing.T) {
	steps := []map[string]float64{
		{
			"req_total": 100, "inflight": 3,
			`out_total{outcome="ok"}`: 10, `out_total{outcome="bad"}`: 0,
			`lat_bucket{le="1"}`: 5, `lat_bucket{le="8"}`: 5, `lat_bucket{le="+Inf"}`: 5,
			"lat_sum": 2, "lat_count": 5,
		},
		{
			"req_total": 150, "inflight": 7,
			`out_total{outcome="ok"}`: 16, `out_total{outcome="bad"}`: 2,
			// 95 new observations <=1, 5 new in (8,64]: p99 = 64.
			`lat_bucket{le="1"}`: 100, `lat_bucket{le="8"}`: 100,
			`lat_bucket{le="64"}`: 105, `lat_bucket{le="+Inf"}`: 105,
			"lat_sum": 400, "lat_count": 105,
		},
		{
			// Counter reset: req_total restarts below its last sample.
			"req_total": 5, "inflight": 2,
			`out_total{outcome="ok"}`: 0, `out_total{outcome="bad"}`: 0,
			`lat_bucket{le="+Inf"}`: 0, "lat_sum": 0, "lat_count": 0,
		},
	}
	src := &scriptedScrapes{steps: steps}
	s := NewSampler(SamplerConfig{Scrape: src.next, Specs: samplerSpecs(), Window: 16})

	// Drive record directly with fixed timestamps (Sample() stamps
	// time.Now, useless for asserting rates).
	for i := 0; i < len(steps); i++ {
		cur, _ := src.next()
		s.record(int64(1000+i*2000), cur) // 2s apart
	}
	w := s.Snapshot()
	if len(w.TUnixMS) != 3 {
		t.Fatalf("window has %d samples, want 3", len(w.TUnixMS))
	}
	get := func(name string) []float64 {
		ser := w.Find(name)
		if ser == nil {
			t.Fatalf("series %q missing from window (have %v)", name, w.Series)
		}
		return ser.Points
	}
	if pts := get("req_per_s"); pts[0] != 0 || pts[1] != 25 || pts[2] != 0 {
		t.Errorf("req_per_s = %v, want [0 25 0] (first sample has no delta; reset clamps)", pts)
	}
	if pts := get("inflight"); pts[0] != 3 || pts[1] != 7 || pts[2] != 2 {
		t.Errorf("inflight = %v, want [3 7 2]", pts)
	}
	if pts := get("ok_share"); pts[1] != 0.75 {
		t.Errorf("ok_share[1] = %v, want 0.75 (6 ok / 8 total)", pts[1])
	}
	if pts := get("lat_p99"); pts[1] != 64 {
		t.Errorf("lat_p99[1] = %v, want 64", pts[1])
	}
	if kind := w.Find("lat_p99").Kind; kind != "quantile" {
		t.Errorf("lat_p99 kind = %q", kind)
	}
	// The window must be JSON-encodable (no NaN/Inf leaked).
	if _, err := json.Marshal(w); err != nil {
		t.Fatalf("window not encodable: %v", err)
	}
}

// TestSamplerWindowWrap overfills the ring and checks the snapshot is
// the newest Window samples, aligned and in order.
func TestSamplerWindowWrap(t *testing.T) {
	specs := []SeriesSpec{{Name: "g", Kind: SeriesGauge, Num: Term{Family: "g"}}}
	s := NewSampler(SamplerConfig{Scrape: nil, Specs: specs, Window: 4})
	for i := 0; i < 10; i++ {
		s.record(int64(i*1000), map[string]float64{"g": float64(i)})
	}
	w := s.Snapshot()
	if len(w.TUnixMS) != 4 {
		t.Fatalf("wrapped window has %d samples, want 4", len(w.TUnixMS))
	}
	for k := 0; k < 4; k++ {
		wantT := int64((6 + k) * 1000)
		if w.TUnixMS[k] != wantT || w.Series[0].Points[k] != float64(6+k) {
			t.Fatalf("sample %d = (t=%d, v=%v), want (t=%d, v=%d)",
				k, w.TUnixMS[k], w.Series[0].Points[k], wantT, 6+k)
		}
	}
}

// TestSamplerAllocs pins the fixed-memory contract: once warm, a
// sample derivation allocates nothing — the rings, scratch, and
// retained prev map are all reused.
func TestSamplerAllocs(t *testing.T) {
	specs := samplerSpecs()
	s := NewSampler(SamplerConfig{Specs: specs, Window: 32})
	mkScrape := func(i int) map[string]float64 {
		f := float64(i)
		return map[string]float64{
			"req_total": 100 * f, "inflight": f,
			`out_total{outcome="ok"}`: 10 * f, `out_total{outcome="bad"}`: f,
			`lat_bucket{le="1"}`: 5 * f, `lat_bucket{le="8"}`: 7 * f,
			`lat_bucket{le="+Inf"}`: 8 * f, "lat_sum": 20 * f, "lat_count": 8 * f,
		}
	}
	// Pre-build the scrape maps: the scrape itself allocates (and is
	// off the pinned path); record must not.
	scrapes := make([]map[string]float64, 64)
	for i := range scrapes {
		scrapes[i] = mkScrape(i + 1)
	}
	i := 0
	s.record(0, mkScrape(0)) // warm the scratch
	avg := testing.AllocsPerRun(50, func() {
		s.record(int64((i+1)*1000), scrapes[i%len(scrapes)])
		i++
	})
	if avg != 0 {
		t.Fatalf("record allocates %v per sample, want 0", avg)
	}
}

// TestSamplerSnapshotConcurrent exercises lock-free snapshots against
// a storm of concurrent samples under -race.
func TestSamplerSnapshotConcurrent(t *testing.T) {
	specs := []SeriesSpec{{Name: "g", Kind: SeriesGauge, Num: Term{Family: "g"}}}
	s := NewSampler(SamplerConfig{Specs: specs, Window: 8})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			s.record(int64(i), map[string]float64{"g": float64(i)})
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				w := s.Snapshot()
				if len(w.TUnixMS) != len(w.Series[0].Points) {
					t.Errorf("misaligned snapshot: %d ts, %d points",
						len(w.TUnixMS), len(w.Series[0].Points))
					return
				}
			}
		}()
	}
	wg.Wait()
}
