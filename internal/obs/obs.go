package obs

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/straightpath/wasn/internal/metrics"
)

// Kind is the exposition type of a metric family.
type Kind int

// Kinds, matching the Prometheus # TYPE vocabulary.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Desc names one metric family for the exposition headers.
type Desc struct {
	// Name is the family name ("wasn_routes_total").
	Name string
	// Help is the one-line # HELP text.
	Help string
	// Kind selects the # TYPE line.
	Kind Kind
}

// Label is one key="value" pair of a sample.
type Label struct {
	Key   string
	Value string
}

// Sample is one exposition line of a collector.
type Sample struct {
	// Suffix extends the family name ("_bucket", "_sum", "_count");
	// empty for plain samples.
	Suffix string
	// Labels render inside {...} in order.
	Labels []Label
	// Value is the sample value.
	Value float64
}

// Collector is one metric family that can report its current samples.
// Collect must be safe to call concurrently with observations.
type Collector interface {
	// Desc describes the family.
	Desc() Desc
	// Collect emits the family's current samples.
	Collect(emit func(Sample))
}

// Counter is a wait-free monotonic counter. Standalone counters (from
// NewCounter) are their own Collector; children of a CounterVec are
// collected by their family.
type Counter struct {
	desc   Desc
	labels []Label
	v      atomic.Int64
}

// NewCounter returns a registerable standalone counter.
func NewCounter(name, help string) *Counter {
	return &Counter{desc: Desc{Name: name, Help: help, Kind: KindCounter}}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters are monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Desc implements Collector.
func (c *Counter) Desc() Desc { return c.desc }

// Collect implements Collector.
func (c *Counter) Collect(emit func(Sample)) {
	emit(Sample{Labels: c.labels, Value: float64(c.v.Load())})
}

// Gauge is a wait-free instantaneous value.
type Gauge struct {
	desc   Desc
	labels []Label
	v      atomic.Int64
}

// NewGauge returns a registerable standalone gauge.
func NewGauge(name, help string) *Gauge {
	return &Gauge{desc: Desc{Name: name, Help: help, Kind: KindGauge}}
}

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the current value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Desc implements Collector.
func (g *Gauge) Desc() Desc { return g.desc }

// Collect implements Collector.
func (g *Gauge) Collect(emit func(Sample)) {
	emit(Sample{Labels: g.labels, Value: float64(g.v.Load())})
}

// Func exposes a value computed at scrape time — the bridge for
// counters that already live elsewhere (the route cache's hit/miss
// atomics) and for derived gauges (live cache entries). The callback
// must be safe for concurrent use.
type Func struct {
	desc Desc
	fn   func() float64
}

// NewFunc returns a scrape-time collector of the given kind.
func NewFunc(name, help string, kind Kind, fn func() float64) *Func {
	return &Func{desc: Desc{Name: name, Help: help, Kind: kind}, fn: fn}
}

// Desc implements Collector.
func (f *Func) Desc() Desc { return f.desc }

// Collect implements Collector.
func (f *Func) Collect(emit func(Sample)) {
	emit(Sample{Value: f.fn()})
}

// Histogram wraps the log-bucketed metrics.Histogram for exposition:
// observation is the same atomic bucket increment, exposition renders
// cumulative le buckets over the non-empty range. Standalone
// histograms (from NewHistogram) are their own Collector; children of
// a HistogramVec are collected by their family.
type Histogram struct {
	desc   Desc
	labels []Label
	h      metrics.Histogram
}

// NewHistogram returns a registerable standalone histogram.
func NewHistogram(name, help string) *Histogram {
	return &Histogram{desc: Desc{Name: name, Help: help, Kind: KindHistogram}}
}

// Observe folds one sample in.
func (h *Histogram) Observe(v int64) { h.h.Observe(v) }

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.h.Count() }

// Quantile returns the q-th quantile, see metrics.Histogram.Quantile.
func (h *Histogram) Quantile(q float64) int64 { return h.h.Quantile(q) }

// Desc implements Collector.
func (h *Histogram) Desc() Desc { return h.desc }

// Collect implements Collector.
func (h *Histogram) Collect(emit func(Sample)) {
	collectHist(&h.h, h.labels, emit)
}

// collectHist renders one histogram as cumulative buckets + sum +
// count. Only non-empty buckets are emitted (the log-bucketed layout
// has ~1000 potential buckets; occupied ones number in the tens), plus
// the mandatory +Inf bucket.
func collectHist(h *metrics.Histogram, labels []Label, emit func(Sample)) {
	var cum int64
	h.Buckets(func(upper, count int64) {
		cum += count
		emit(Sample{
			Suffix: "_bucket",
			Labels: append(append(make([]Label, 0, len(labels)+1), labels...), Label{Key: "le", Value: fmt.Sprintf("%d", upper)}),
			Value:  float64(cum),
		})
	})
	emit(Sample{
		Suffix: "_bucket",
		Labels: append(append(make([]Label, 0, len(labels)+1), labels...), Label{Key: "le", Value: "+Inf"}),
		Value:  float64(h.Count()),
	})
	emit(Sample{Suffix: "_sum", Labels: labels, Value: float64(h.Sum())})
	emit(Sample{Suffix: "_count", Labels: labels, Value: float64(h.Count())})
}

// vec is the shared label-family machinery: a copy-on-write child map
// keyed by the joined label values. Lookups of existing tuples are one
// atomic pointer load plus a map read; creating a tuple takes the
// mutex and swaps in a fresh map (families are small and tuples are
// created once, at setup or on first use of a deployment name).
type vec[T any] struct {
	mu       sync.Mutex
	children atomic.Pointer[map[string]*T]
}

// labelSep joins label values into child keys; label values containing
// it would alias, so it is a byte that never appears in metric labels.
const labelSep = "\xff"

func joinKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := len(values) - 1
	for _, v := range values {
		n += len(v)
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, labelSep...)
		}
		b = append(b, v...)
	}
	return string(b)
}

// get returns the child for the values, creating it with mk on first
// use.
func (v *vec[T]) get(values []string, mk func() *T) *T {
	key := joinKey(values)
	if m := v.children.Load(); m != nil {
		if c, ok := (*m)[key]; ok {
			return c
		}
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	old := v.children.Load()
	if old != nil {
		if c, ok := (*old)[key]; ok {
			return c
		}
	}
	next := make(map[string]*T, 1)
	if old != nil {
		for k, c := range *old {
			next[k] = c
		}
	}
	c := mk()
	next[key] = c
	v.children.Store(&next)
	return c
}

// sortedKeys returns the child keys in deterministic exposition order.
func (v *vec[T]) snapshot() map[string]*T {
	if m := v.children.Load(); m != nil {
		return *m
	}
	return nil
}

// mkLabels pairs a family's label keys with one child's values.
func mkLabels(keys, values []string) []Label {
	ls := make([]Label, len(keys))
	for i, k := range keys {
		ls[i] = Label{Key: k, Value: values[i]}
	}
	return ls
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct {
	desc Desc
	keys []string
	vec  vec[Counter]
}

// NewCounterVec returns a registerable counter family with the given
// label keys.
func NewCounterVec(name, help string, keys ...string) *CounterVec {
	return &CounterVec{desc: Desc{Name: name, Help: help, Kind: KindCounter}, keys: keys}
}

// With returns the child counter for the label values (one per key, in
// key order), creating it on first use. Hot paths resolve children
// once and hold the returned pointer.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.desc.Name, len(v.keys), len(values)))
	}
	return v.vec.get(values, func() *Counter {
		return &Counter{labels: mkLabels(v.keys, values)}
	})
}

// Desc implements Collector.
func (v *CounterVec) Desc() Desc { return v.desc }

// Collect implements Collector.
func (v *CounterVec) Collect(emit func(Sample)) {
	for _, c := range sortedChildren(&v.vec) {
		c.Collect(emit)
	}
}

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct {
	desc Desc
	keys []string
	vec  vec[Gauge]
}

// NewGaugeVec returns a registerable gauge family with the given label
// keys.
func NewGaugeVec(name, help string, keys ...string) *GaugeVec {
	return &GaugeVec{desc: Desc{Name: name, Help: help, Kind: KindGauge}, keys: keys}
}

// With returns the child gauge for the label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.desc.Name, len(v.keys), len(values)))
	}
	return v.vec.get(values, func() *Gauge {
		return &Gauge{labels: mkLabels(v.keys, values)}
	})
}

// Desc implements Collector.
func (v *GaugeVec) Desc() Desc { return v.desc }

// Collect implements Collector.
func (v *GaugeVec) Collect(emit func(Sample)) {
	for _, g := range sortedChildren(&v.vec) {
		g.Collect(emit)
	}
}

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct {
	desc Desc
	keys []string
	vec  vec[Histogram]
}

// NewHistogramVec returns a registerable histogram family with the
// given label keys.
func NewHistogramVec(name, help string, keys ...string) *HistogramVec {
	return &HistogramVec{desc: Desc{Name: name, Help: help, Kind: KindHistogram}, keys: keys}
}

// With returns the child histogram for the label values, creating it
// on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.desc.Name, len(v.keys), len(values)))
	}
	return v.vec.get(values, func() *Histogram {
		return &Histogram{labels: mkLabels(v.keys, values)}
	})
}

// Desc implements Collector.
func (v *HistogramVec) Desc() Desc { return v.desc }

// Collect implements Collector.
func (v *HistogramVec) Collect(emit func(Sample)) {
	for _, h := range sortedChildren(&v.vec) {
		h.Collect(emit)
	}
}
