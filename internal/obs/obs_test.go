package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestExpositionRoundTrip renders a registry with every collector kind
// and re-parses it strictly: every line must be well-formed and every
// value must survive the round trip.
func TestExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	c := NewCounter("test_events_total", "Events seen.")
	g := NewGauge("test_queue_depth", "Live queue depth.")
	f := NewFunc("test_derived", "Computed at scrape time.", KindGauge, func() float64 { return 2.5 })
	h := NewHistogram("test_latency_ns", "Latency in nanoseconds.")
	cv := NewCounterVec("test_requests_total", "Requests by endpoint and code.", "endpoint", "code")
	hv := NewHistogramVec("test_hops", "Hops by algorithm.", "algorithm")
	reg.MustRegister(c, g, f, h, cv, hv)

	c.Add(41)
	c.Inc()
	g.Set(7)
	h.Observe(3)
	h.Observe(1000)
	h.Observe(123456)
	cv.With("route", "200").Add(10)
	cv.With("route", "400").Inc()
	cv.With("batch", "200").Add(5)
	hv.With("SLGF2").Observe(12)
	hv.With("GF").Observe(25)

	text := reg.Text()
	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseText on own exposition: %v\n%s", err, text)
	}
	want := map[string]float64{
		"test_events_total":     42,
		"test_queue_depth":      7,
		"test_derived":          2.5,
		"test_latency_ns_count": 3,
		"test_latency_ns_sum":   124459,
		`test_requests_total{endpoint="route",code="200"}`: 10,
		`test_requests_total{endpoint="route",code="400"}`: 1,
		`test_requests_total{endpoint="batch",code="200"}`: 5,
		`test_hops_count{algorithm="SLGF2"}`:               1,
		`test_hops_sum{algorithm="GF"}`:                    25,
		`test_latency_ns_bucket{le="+Inf"}`:                3,
	}
	for k, v := range want {
		got, ok := samples[k]
		if !ok {
			t.Errorf("series %s missing from exposition\n%s", k, text)
		} else if got != v {
			t.Errorf("series %s = %v, want %v", k, got, v)
		}
	}
}

// TestHistogramBucketsCumulative checks the rendered buckets are
// cumulative with ascending le bounds and that the +Inf bucket equals
// the count.
func TestHistogramBucketsCumulative(t *testing.T) {
	h := NewHistogram("test_h", "h")
	for i := int64(0); i < 1000; i++ {
		h.Observe(i * 37)
	}
	var prevLe, prevCum int64 = -1, 0
	var sawInf bool
	h.Collect(func(s Sample) {
		if s.Suffix != "_bucket" {
			return
		}
		le := s.Labels[len(s.Labels)-1].Value
		if le == "+Inf" {
			sawInf = true
			if int64(s.Value) != h.Count() {
				t.Errorf("+Inf bucket = %v, want count %d", s.Value, h.Count())
			}
			return
		}
		var bound int64
		if _, err := fmtSscan(le, &bound); err != nil {
			t.Fatalf("non-integer le %q", le)
		}
		if bound <= prevLe {
			t.Errorf("le bounds not ascending: %d after %d", bound, prevLe)
		}
		if int64(s.Value) < prevCum {
			t.Errorf("bucket counts not cumulative: %v after %d", s.Value, prevCum)
		}
		prevLe, prevCum = bound, int64(s.Value)
	})
	if !sawInf {
		t.Fatal("no +Inf bucket emitted")
	}
	if prevCum != h.Count() {
		t.Errorf("last finite bucket cum %d != count %d", prevCum, h.Count())
	}
}

// fmtSscan is a tiny strconv shim keeping the test free of fmt.Sscan's
// reflect noise.
func fmtSscan(s string, out *int64) (int, error) {
	v, err := parseInt(s)
	if err != nil {
		return 0, err
	}
	*out = v
	return 1, nil
}

func parseInt(s string) (int64, error) {
	var v int64
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, errBadInt
		}
		v = v*10 + int64(s[i]-'0')
	}
	return v, nil
}

var errBadInt = &badIntErr{}

type badIntErr struct{}

func (*badIntErr) Error() string { return "not an integer" }

// TestRegisterDuplicate pins the unique-name invariant.
func TestRegisterDuplicate(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(NewCounter("dup_total", "x")); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(NewGauge("dup_total", "y")); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := reg.Register(NewCounter("bad name", "x")); err == nil {
		t.Fatal("invalid metric name accepted")
	}
}

// TestParseRejectsMalformed feeds the strict parser broken lines.
func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"# TYPE x counter\nx 1 2 3",               // trailing tokens
		"# TYPE x counter\nx{le=\"1\" 1",          // unterminated label block
		"# TYPE x counter\nx{=\"1\"} 1",           // empty label key
		"# TYPE x counter\nx nope",                // non-numeric value
		"y 1",                                     // sample without TYPE
		"# TYPE x banana\nx 1",                    // unknown kind
		"# TYPE x counter\n# TYPE x counter\nx 1", // duplicate TYPE
		"# TYPE x counter\nx 1\nx 1",              // duplicate series
	}
	for _, doc := range bad {
		if _, err := ParseText(strings.NewReader(doc)); err == nil {
			t.Errorf("parser accepted malformed exposition %q", doc)
		}
	}
	// Escaped quotes inside label values must parse.
	ok := "# TYPE x counter\nx{a=\"he said \\\"hi\\\"\",b=\"2\"} 1"
	if _, err := ParseText(strings.NewReader(ok)); err != nil {
		t.Errorf("parser rejected valid exposition %q: %v", ok, err)
	}
}

// TestDelta diffs two scrapes.
func TestDelta(t *testing.T) {
	before := map[string]float64{"a_total": 10, "gone_total": 5, "h_bucket{le=\"1\"}": 3, "h_sum": 100}
	after := map[string]float64{"a_total": 15, "new_total": 2, "h_bucket{le=\"1\"}": 9, "h_sum": 180, "same": 1}
	d := Delta(before, after)
	want := map[string]float64{"a_total": 5, "new_total": 2, "h_sum": 80, "same": 1}
	if len(d) != len(want) {
		t.Fatalf("delta = %v, want %v", d, want)
	}
	for k, v := range want {
		if d[k] != v {
			t.Errorf("delta[%s] = %v, want %v", k, d[k], v)
		}
	}
}

// TestMissingSeries checks the family matcher behind -check-metrics.
func TestMissingSeries(t *testing.T) {
	samples := map[string]float64{
		"wasn_routes_total":                      3,
		`wasn_route_hops_count{algorithm="GF"}`:  1,
		`wasn_route_hops_bucket{algorithm="GF"}`: 1,
	}
	missing := MissingSeries(samples, []string{"wasn_routes_total", "wasn_route_hops", "wasn_nope"})
	if len(missing) != 1 || missing[0] != "wasn_nope" {
		t.Fatalf("missing = %v, want [wasn_nope]", missing)
	}
}

// TestConcurrentObserveAndScrape hammers every collector kind from many
// goroutines while scraping — the -race registry contract.
func TestConcurrentObserveAndScrape(t *testing.T) {
	reg := NewRegistry()
	c := NewCounter("c_total", "c")
	cv := NewCounterVec("cv_total", "cv", "k")
	hv := NewHistogramVec("hv", "hv", "k")
	g := NewGauge("g", "g")
	reg.MustRegister(c, cv, hv, g)

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			keys := []string{"a", "b", "c", "d"}
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(int64(i))
				k := keys[(w+i)%len(keys)]
				cv.With(k).Inc()
				hv.With(k).Observe(int64(i))
				if i%64 == 0 {
					// Late registration races with scrapes too.
					_ = reg.Text()
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if _, err := ParseText(strings.NewReader(reg.Text())); err != nil {
				t.Errorf("mid-storm exposition unparseable: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := c.Load(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	text := reg.Text()
	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("final exposition unparseable: %v", err)
	}
	var cvSum float64
	for k, v := range samples {
		if strings.HasPrefix(k, "cv_total{") {
			cvSum += v
		}
	}
	if cvSum != workers*iters {
		t.Fatalf("cv children sum to %v, want %d", cvSum, workers*iters)
	}
}
