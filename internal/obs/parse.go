package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParseText strictly parses a Prometheus text exposition: every line
// must be a well-formed # HELP / # TYPE header or a sample, every
// sample's family must have been declared by a # TYPE line first, and
// no series may repeat. It returns the samples keyed by their full
// series identity (name plus label block exactly as written) — the
// shape the workload engine diffs for its scrape deltas and the
// -check-metrics CI gate verifies.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	typed := make(map[string]Kind)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, typed); err != nil {
				return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
			}
			continue
		}
		series, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		if _, ok := typed[familyOf(series)]; !ok {
			return nil, fmt.Errorf("obs: line %d: sample %s has no preceding # TYPE", lineNo, series)
		}
		if _, dup := out[series]; dup {
			return nil, fmt.Errorf("obs: line %d: duplicate series %s", lineNo, series)
		}
		out[series] = value
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading exposition: %w", err)
	}
	return out, nil
}

// parseComment validates a # line and records # TYPE declarations.
func parseComment(line string, typed map[string]Kind) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	case "TYPE":
		if len(fields) != 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		var k Kind
		switch fields[3] {
		case "counter":
			k = KindCounter
		case "gauge":
			k = KindGauge
		case "histogram":
			k = KindHistogram
		default:
			return fmt.Errorf("unknown TYPE %q", fields[3])
		}
		if _, dup := typed[fields[2]]; dup {
			return fmt.Errorf("duplicate TYPE for %s", fields[2])
		}
		typed[fields[2]] = k
	}
	return nil
}

// parseSample splits one sample line into its series identity and
// value.
func parseSample(line string) (series string, value float64, err error) {
	// The value follows the last space outside the label block.
	end := len(line)
	if i := strings.LastIndexByte(line, '}'); i >= 0 {
		end = i + 1
		if end >= len(line) || line[end] != ' ' {
			return "", 0, fmt.Errorf("malformed sample %q", line)
		}
	} else {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return "", 0, fmt.Errorf("malformed sample %q (no value)", line)
		}
		end = sp
	}
	series, rest := line[:end], strings.TrimPrefix(line[end:], " ")
	if rest == "" || strings.ContainsRune(rest, ' ') {
		return "", 0, fmt.Errorf("malformed sample %q (want one value, no timestamp)", line)
	}
	if err := validateSeries(series); err != nil {
		return "", 0, err
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad value %q: %w", rest, err)
	}
	return series, v, nil
}

// validateSeries checks the metric name and the label block grammar.
func validateSeries(series string) error {
	name := series
	if i := strings.IndexByte(series, '{'); i >= 0 {
		name = series[:i]
		block := series[i:]
		if !strings.HasSuffix(block, "}") {
			return fmt.Errorf("unterminated label block in %q", series)
		}
		if err := validateLabels(block[1 : len(block)-1]); err != nil {
			return fmt.Errorf("%w in %q", err, series)
		}
	}
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	return nil
}

// validateLabels checks a comma-separated k="v" list (v may contain
// escaped quotes).
func validateLabels(s string) error {
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || !validMetricName(s[:eq]) {
			return fmt.Errorf("bad label key")
		}
		rest := s[eq+1:]
		if len(rest) < 2 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value")
		}
		// Find the closing quote, skipping escapes.
		i := 1
		for i < len(rest) {
			if rest[i] == '\\' {
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		if i >= len(rest) {
			return fmt.Errorf("unterminated label value")
		}
		s = rest[i+1:]
		if s == "" {
			return nil
		}
		if s[0] != ',' {
			return fmt.Errorf("bad label separator")
		}
		s = s[1:]
		if s == "" {
			return fmt.Errorf("trailing label comma")
		}
	}
	return nil
}

// familyOf strips the label block and the histogram sample suffixes,
// mapping a series back to its # TYPE family name.
func familyOf(series string) string {
	name := series
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return name[:len(name)-len(suf)]
		}
	}
	return name
}

// Delta returns after[k]−before[k] for every series present in after,
// dropping zero deltas (series absent from before count from zero).
// Histogram _bucket series are dropped too — bucket boundaries shift
// between scrapes as new buckets fill, so the delta of interest is
// _sum/_count plus the plain counters. A negative delta means the
// counter reset between scrapes (a restarted server re-counting from
// zero): the bogus negative movement is clamped away rather than
// reported; DeltaWithResets names the affected series.
func Delta(before, after map[string]float64) map[string]float64 {
	out, _ := DeltaWithResets(before, after)
	return out
}

// DeltaWithResets is Delta plus the sorted list of series whose value
// went backwards between the scrapes — the signature of a counter
// reset. Reset series are clamped out of the delta map (their true
// movement is unknowable from two samples); callers that care, like
// the sampler's rate curves, can flag the window instead of charting
// a negative rate.
func DeltaWithResets(before, after map[string]float64) (map[string]float64, []string) {
	out := make(map[string]float64)
	var resets []string
	for k, v := range after {
		if strings.Contains(k, "_bucket") {
			continue
		}
		d := v - before[k]
		if d < 0 {
			resets = append(resets, k)
			continue
		}
		if d != 0 {
			out[k] = d
		}
	}
	sort.Strings(resets)
	return out, resets
}

// MissingSeries reports which of the wanted family names have no
// sample in the parsed exposition — the -check-metrics verification.
// A family matches when any series of it (plain, labeled, or a
// histogram's _count) is present.
func MissingSeries(samples map[string]float64, want []string) []string {
	fams := make(map[string]bool, len(samples))
	for series := range samples {
		fams[familyOf(series)] = true
	}
	var missing []string
	for _, w := range want {
		if !fams[w] {
			missing = append(missing, w)
		}
	}
	sort.Strings(missing)
	return missing
}
