// Package protocol implements the paper's Algorithm 2 ("Information
// Construction") as an actual distributed message-passing protocol, the
// way deployed sensor nodes would run it: every node keeps only its own
// state plus what neighbors broadcast, and "such an exchange is
// implemented by broadcasting such information of a node that newly
// changes its safety status to all its neighbors" (§3).
//
// The package provides two schedulers over the same per-node handler
// logic: a synchronous round-based one (the paper's presentation) and an
// asynchronous event-driven one with seeded random message delays (the
// paper's claimed easy extension). Both converge to the unique fixpoint
// that the centralized safety.Build computes; the equivalence is tested,
// which is the strongest validation that the centralized model faithfully
// represents what the distributed nodes can know.
package protocol

import (
	"container/heap"
	"fmt"
	"math/rand/v2"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/topo"
)

// Message is one one-hop broadcast: the sender's current safety tuple and
// per-type shape endpoints u(1)/u(2). This is everything Algorithm 2
// ever puts on the air.
type Message struct {
	From topo.NodeID
	// Safe is the sender's tuple at send time.
	Safe [geom.NumZones]bool
	// U1, U2 carry the sender's estimated-shape endpoints (topo.NoNode
	// while unresolved). Receivers store the *positions* in a real
	// deployment; ids suffice in simulation because positions are
	// globally consistent.
	U1, U2 [geom.NumZones]topo.NodeID
}

// Bits returns the on-air size of the message under a compact encoding:
// node id (16 bits), 4 status bits, and 8 node ids of 16 bits for the
// endpoints. Used for construction-cost accounting in bench output.
func (m Message) Bits() int { return 16 + geom.NumZones + 8*16 }

// nodeState is what one sensor stores: its own tuple and endpoints plus
// the last heard state of each neighbor.
type nodeState struct {
	id     topo.NodeID
	pinned bool
	safe   [geom.NumZones]bool
	u1, u2 [geom.NumZones]topo.NodeID

	// lastHeard caches the most recent message per neighbor.
	lastHeard map[topo.NodeID]Message

	// zoneNbrs[z-1] lists neighbors inside Q_z, precomputed once from
	// local geometry (a node knows its neighbors' positions from hello
	// beacons, which every geographic routing protocol assumes).
	zoneNbrs [geom.NumZones][]topo.NodeID
	// scanFirst / scanLast are the v1/v2 of the zone scan.
	scanFirst, scanLast [geom.NumZones]topo.NodeID
}

func newNodeState(net *topo.Network, u topo.NodeID, pinned bool) *nodeState {
	st := &nodeState{
		id:        u,
		pinned:    pinned,
		lastHeard: make(map[topo.NodeID]Message, net.Degree(u)),
	}
	up := net.Pos(u)
	for _, z := range geom.AllZones {
		st.safe[z-1] = true
		st.u1[z-1] = topo.NoNode
		st.u2[z-1] = topo.NoNode
		st.scanFirst[z-1] = topo.NoNode
		st.scanLast[z-1] = topo.NoNode
		start := float64(z-1) * (geom.TwoPi / 4)
		var minD, maxD float64
		for _, v := range net.Neighbors(u) {
			pv := net.Pos(v)
			if !geom.InForwardingZone(up, z, pv) {
				continue
			}
			st.zoneNbrs[z-1] = append(st.zoneNbrs[z-1], v)
			delta := geom.CCWDelta(start, geom.Angle(up, pv))
			if st.scanFirst[z-1] == topo.NoNode || delta < minD {
				st.scanFirst[z-1], minD = v, delta
			}
			if st.scanLast[z-1] == topo.NoNode || delta > maxD {
				st.scanLast[z-1], maxD = v, delta
			}
		}
	}
	return st
}

// snapshot renders the node's current broadcast message.
func (st *nodeState) snapshot() Message {
	return Message{From: st.id, Safe: st.safe, U1: st.u1, U2: st.u2}
}

// deliver folds a neighbor's message into local state. Links are not
// FIFO in the async scheduler, so the merge is monotone rather than
// last-writer-wins: a status only ever moves safe→unsafe and endpoints
// are written once, so "unsafe is sticky, endpoints are set-once"
// reconstructs the sender's newest state regardless of arrival order
// (the same trick a deployment would get from a per-node version
// counter).
func (st *nodeState) deliver(m Message) {
	old, ok := st.lastHeard[m.From]
	if !ok {
		st.lastHeard[m.From] = m
		return
	}
	for z := 0; z < geom.NumZones; z++ {
		old.Safe[z] = old.Safe[z] && m.Safe[z]
		if old.U1[z] == topo.NoNode {
			old.U1[z] = m.U1[z]
		}
		if old.U2[z] == topo.NoNode {
			old.U2[z] = m.U2[z]
		}
	}
	st.lastHeard[m.From] = old
}

// heardSafe reports the last heard type-z status of neighbor v; unheard
// neighbors count as safe, matching Definition 1's all-safe initial
// state.
func (st *nodeState) heardSafe(v topo.NodeID, z geom.ZoneType) bool {
	m, ok := st.lastHeard[v]
	if !ok {
		return true
	}
	return m.Safe[z-1]
}

// react re-evaluates Definition 1 and the shape recurrences against the
// heard state. It returns true when the local state changed (and must be
// re-broadcast).
func (st *nodeState) react() bool {
	changed := false
	for _, z := range geom.AllZones {
		zi := z - 1
		// Definition 1: flip safe -> unsafe when no type-z safe
		// neighbor is heard inside Q_z. Pinned edge nodes never flip.
		if st.safe[zi] && !st.pinned {
			hasSafe := false
			for _, v := range st.zoneNbrs[zi] {
				if st.heardSafe(v, z) {
					hasSafe = true
					break
				}
			}
			if !hasSafe {
				st.safe[zi] = false
				changed = true
			}
		}
		if st.safe[zi] {
			continue
		}
		// Algorithm 2 step 3: resolve u(1)/u(2).
		if len(st.zoneNbrs[zi]) == 0 {
			if st.u1[zi] == topo.NoNode {
				st.u1[zi] = st.id
				st.u2[zi] = st.id
				changed = true
			}
			continue
		}
		if st.u1[zi] == topo.NoNode {
			if m, ok := st.lastHeard[st.scanFirst[zi]]; ok && m.U1[zi] != topo.NoNode {
				st.u1[zi] = m.U1[zi]
				changed = true
			}
		}
		if st.u2[zi] == topo.NoNode {
			if m, ok := st.lastHeard[st.scanLast[zi]]; ok && m.U2[zi] != topo.NoNode {
				st.u2[zi] = m.U2[zi]
				changed = true
			}
		}
	}
	return changed
}

// Result is the converged outcome of a protocol run.
type Result struct {
	// Safe[u][z-1] is the final S_z(u).
	Safe [][geom.NumZones]bool
	// U1, U2 are the final shape endpoints.
	U1, U2 [][geom.NumZones]topo.NodeID
	// Rounds is the number of synchronous rounds (0 for async runs).
	Rounds int
	// Messages is the number of one-hop broadcasts sent.
	Messages int
	// Bits is the total on-air traffic.
	Bits int
}

// Matches reports whether the distributed outcome agrees with a
// centralized model on every status and endpoint, returning a
// description of the first mismatch otherwise.
func (r *Result) Matches(m *safety.Model) (bool, string) {
	for i := range r.Safe {
		u := topo.NodeID(i)
		for _, z := range geom.AllZones {
			if r.Safe[i][z-1] != m.Safe(u, z) {
				return false, fmt.Sprintf("node %d type-%d: protocol=%v model=%v",
					u, z, r.Safe[i][z-1], m.Safe(u, z))
			}
			if !m.Safe(u, z) {
				if r.U1[i][z-1] != m.U1(u, z) || r.U2[i][z-1] != m.U2(u, z) {
					return false, fmt.Sprintf("node %d type-%d endpoints: protocol=%v/%v model=%v/%v",
						u, z, r.U1[i][z-1], r.U2[i][z-1], m.U1(u, z), m.U2(u, z))
				}
			}
		}
	}
	return true, ""
}

func collect(states []*nodeState, rounds, messages int) *Result {
	res := &Result{
		Safe:     make([][geom.NumZones]bool, len(states)),
		U1:       make([][geom.NumZones]topo.NodeID, len(states)),
		U2:       make([][geom.NumZones]topo.NodeID, len(states)),
		Rounds:   rounds,
		Messages: messages,
		Bits:     messages * (Message{}).Bits(),
	}
	for i, st := range states {
		if st == nil {
			for z := range res.U1[i] {
				res.U1[i][z] = topo.NoNode
				res.U2[i][z] = topo.NoNode
			}
			continue
		}
		res.Safe[i] = st.safe
		res.U1[i] = st.u1
		res.U2[i] = st.u2
	}
	return res
}

func buildStates(net *topo.Network, edge safety.EdgeRule) []*nodeState {
	if edge == nil {
		edge = safety.DefaultEdgeRule()
	}
	pinned := edge.EdgeNodes(net)
	states := make([]*nodeState, net.N())
	for i := range net.Nodes {
		u := topo.NodeID(i)
		if !net.Alive(u) {
			continue
		}
		states[i] = newNodeState(net, u, pinned[i])
	}
	return states
}

// RunSync executes the protocol in the synchronous round-based system of
// §3: in every round, each changed node's broadcast is delivered to all
// its neighbors at the round boundary, and every node then re-evaluates.
// Terminates when a round produces no change.
func RunSync(net *topo.Network, edge safety.EdgeRule) *Result {
	states := buildStates(net, edge)
	messages := 0
	rounds := 0

	// Initial broadcast: every node announces its all-safe state so
	// neighbors learn zone occupancy (the hello exchange).
	pending := make([]Message, 0, net.N())
	for _, st := range states {
		if st != nil {
			pending = append(pending, st.snapshot())
		}
	}
	for len(pending) > 0 {
		// Deliver this round's broadcasts.
		for _, m := range pending {
			for _, v := range net.Neighbors(m.From) {
				states[v].deliver(m)
			}
		}
		messages += len(pending)
		rounds++
		// Every node reacts against the freshly heard state.
		pending = pending[:0]
		for _, st := range states {
			if st == nil {
				continue
			}
			if st.react() {
				pending = append(pending, st.snapshot())
			}
		}
	}
	return collect(states, rounds, messages)
}

// event is one in-flight broadcast delivery for the async scheduler.
type event struct {
	at  float64 // delivery time
	seq int     // tie-breaker for determinism
	to  topo.NodeID
	msg Message
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// RunAsync executes the protocol with per-link random delays drawn from
// a seeded generator: deliveries interleave arbitrarily, nodes react to
// each message as it arrives. The fixpoint is delay-independent; the
// seed only shuffles the trajectory.
func RunAsync(net *topo.Network, edge safety.EdgeRule, seed uint64) *Result {
	states := buildStates(net, edge)
	rng := rand.New(rand.NewPCG(seed, seed^0x6a09e667f3bcc908))
	messages := 0
	seq := 0

	q := &eventQueue{}
	broadcast := func(st *nodeState, now float64) {
		messages++
		m := st.snapshot()
		for _, v := range net.Neighbors(st.id) {
			seq++
			heap.Push(q, event{at: now + rng.Float64(), seq: seq, to: v, msg: m})
		}
	}
	for _, st := range states {
		if st != nil {
			broadcast(st, 0)
		}
	}
	// Every node self-evaluates once before any traffic arrives: a node
	// with an empty forwarding zone (or no neighbors at all) flips
	// unsafe from purely local knowledge and must not wait for a
	// message that may never come.
	for _, st := range states {
		if st != nil && st.react() {
			broadcast(st, 0)
		}
	}
	for q.Len() > 0 {
		e := heap.Pop(q).(event)
		st := states[e.to]
		if st == nil {
			continue
		}
		st.deliver(e.msg)
		if st.react() {
			broadcast(st, e.at)
		}
	}
	return collect(states, 0, messages)
}
