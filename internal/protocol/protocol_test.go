package protocol

import (
	"testing"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/topo"
)

// pinSet pins an explicit node set (mirrors the safety tests).
type pinSet map[topo.NodeID]bool

func (p pinSet) EdgeNodes(net *topo.Network) []bool {
	out := make([]bool, net.N())
	for id := range p {
		out[id] = true
	}
	return out
}

func (p pinSet) Name() string { return "pinset" }

func deployed(t *testing.T, model topo.DeployModel, n int, seed uint64) *topo.Network {
	t.Helper()
	dep, err := topo.Deploy(topo.DefaultDeployConfig(model, n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return dep.Net
}

// The distributed protocol must converge to exactly the centralized
// model's fixpoint — statuses and shape endpoints — on random networks,
// under both schedulers.
func TestProtocolMatchesCentralizedModel(t *testing.T) {
	for _, model := range []topo.DeployModel{topo.ModelIA, topo.ModelFA} {
		for seed := uint64(1); seed <= 3; seed++ {
			net := deployed(t, model, 350, seed)
			m := safety.Build(net)

			sync := RunSync(net, nil)
			if ok, diff := sync.Matches(m); !ok {
				t.Fatalf("%v seed %d sync: %s", model, seed, diff)
			}
			if sync.Rounds == 0 || sync.Messages == 0 || sync.Bits == 0 {
				t.Errorf("%v seed %d: empty cost accounting %+v", model, seed, sync)
			}

			for _, asyncSeed := range []uint64{5, 99} {
				async := RunAsync(net, nil, asyncSeed)
				if ok, diff := async.Matches(m); !ok {
					t.Fatalf("%v seed %d async(%d): %s", model, seed, asyncSeed, diff)
				}
			}
		}
	}
}

// Line topology: the east end pinned; protocol must label (1,0,0,0) for
// the rest, exactly like the centralized model.
func TestProtocolLine(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(10, 50), geom.Pt(20, 50), geom.Pt(30, 50), geom.Pt(40, 50), geom.Pt(50, 50),
	}
	net, err := topo.NewNetwork(pts, 12, geom.FromCorners(geom.Pt(0, 0), geom.Pt(200, 200)))
	if err != nil {
		t.Fatal(err)
	}
	pin := pinSet{4: true}
	res := RunSync(net, pin)
	m := safety.Build(net, safety.WithEdgeRule(pin))
	if ok, diff := res.Matches(m); !ok {
		t.Fatal(diff)
	}
	// The cascade is sequential: the type-2 chain needs one round per
	// node plus the initial hello round.
	if res.Rounds < 4 {
		t.Errorf("rounds = %d, want >= 4 for a 4-node cascade", res.Rounds)
	}
}

// Shape endpoints propagate hop by hop: the NE chain resolves the tip
// into every member.
func TestProtocolShapeChain(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 5), geom.Pt(10, 10)}
	net, err := topo.NewNetwork(pts, 8, geom.FromCorners(geom.Pt(0, 0), geom.Pt(200, 200)))
	if err != nil {
		t.Fatal(err)
	}
	res := RunSync(net, pinSet{})
	if res.Safe[0][0] || res.Safe[1][0] || res.Safe[2][0] {
		t.Fatal("chain should be type-1 unsafe")
	}
	if res.U1[0][0] != 2 || res.U2[0][0] != 2 {
		t.Errorf("root endpoints = %v/%v, want 2/2", res.U1[0][0], res.U2[0][0])
	}
}

func TestProtocolDeadNodes(t *testing.T) {
	net := deployed(t, topo.ModelIA, 200, 9)
	net.SetAlive(10, false)
	net.SetAlive(50, false)
	m := safety.Build(net)
	res := RunSync(net, nil)
	// Dead nodes keep zero-value state and the rest still matches.
	for _, z := range geom.AllZones {
		if res.Safe[10][z-1] {
			t.Error("dead node reported safe by protocol")
		}
	}
	// Matches only checks live consistency for statuses; dead nodes are
	// all-unsafe in both representations.
	if ok, diff := res.Matches(m); !ok {
		t.Fatal(diff)
	}
}

func TestMessageBits(t *testing.T) {
	if (Message{}).Bits() != 16+4+8*16 {
		t.Errorf("Bits = %d", (Message{}).Bits())
	}
}

// Async message counts vary with the delay seed but the sync round count
// is deterministic.
func TestProtocolDeterminism(t *testing.T) {
	net := deployed(t, topo.ModelFA, 300, 4)
	a := RunSync(net, nil)
	b := RunSync(net, nil)
	if a.Rounds != b.Rounds || a.Messages != b.Messages {
		t.Errorf("sync runs differ: %d/%d vs %d/%d", a.Rounds, a.Messages, b.Rounds, b.Messages)
	}
	c := RunAsync(net, nil, 1)
	d := RunAsync(net, nil, 1)
	if c.Messages != d.Messages {
		t.Error("same-seed async runs differ")
	}
}
