package serve

import (
	"fmt"
	"sort"

	"github.com/straightpath/wasn/internal/topo"
)

// DeploymentState is the portable state of one deployment: everything a
// fresh replica needs to reconstruct it route-identically. The spec
// regenerates the pristine topology; Failed and Moved replay the churn
// it absorbed; Epoch carries the cache-invalidation clock forward so a
// restored replica's cache keys line up with the origin's.
//
// The restore path applies Moved and Failed to the freshly deployed
// network *before* building substrates, so the restored replica builds
// from scratch over the exact damaged topology — and the
// repair-equals-rebuild differential contract (core.RepairSubstrates,
// core.RepairSubstratesMoved) guarantees those substrates, and hence
// every route of all seven algorithms, are bit-identical to the
// origin's incrementally repaired ones.
type DeploymentState struct {
	Name string `json:"name"`
	Spec Spec   `json:"spec"`
	// Failed is the currently dead node set, sorted.
	Failed []topo.NodeID `json:"failed,omitempty"`
	// Moved is the last applied position of every node that ever moved,
	// sorted by node id. Positions are absolute, so replaying them is
	// idempotent.
	Moved []topo.Move `json:"moved,omitempty"`
	// Epoch is the deployment's topology-mutation count.
	Epoch uint64 `json:"epoch"`
}

// ExportState snapshots every registered deployment's portable state,
// sorted by name — the serve-side half of the fleet snapshot/restore
// protocol. Deployments still carrying a pending restore (registered
// via RestoreState but not yet built) export that pending state, so
// export∘restore is stable even before first use.
func (s *Service) ExportState() []DeploymentState {
	s.mu.RLock()
	deps := make([]*deployment, 0, len(s.deps))
	for _, d := range s.deps {
		deps = append(deps, d)
	}
	s.mu.RUnlock()

	out := make([]DeploymentState, 0, len(deps))
	for _, d := range deps {
		d.mu.RLock()
		st := DeploymentState{Name: d.name, Spec: d.spec, Epoch: d.epoch.Load()}
		if d.restore != nil && !d.ready.Load() {
			st.Failed = append([]topo.NodeID(nil), d.restore.Failed...)
			st.Moved = append([]topo.Move(nil), d.restore.Moved...)
			st.Epoch = d.restore.Epoch
		} else {
			for u := range d.failed {
				st.Failed = append(st.Failed, u)
			}
			for _, m := range d.moved {
				st.Moved = append(st.Moved, m)
			}
		}
		d.mu.RUnlock()
		sort.Slice(st.Failed, func(i, j int) bool { return st.Failed[i] < st.Failed[j] })
		sort.Slice(st.Moved, func(i, j int) bool { return st.Moved[i].Node < st.Moved[j].Node })
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RestoreState installs deployment states exported from another replica
// (or read back from a disk snapshot). For an unknown name the state is
// registered with the restore pending: the first use deploys the spec,
// replays Moved and Failed onto the pristine network, then builds the
// substrates from scratch — route-identical to the origin, with the
// origin's epoch. For a name already registered with the same spec but
// not yet built, the pending state is replaced. For a deployment that
// is already live, the current topology is reconciled to the target
// (missing failures applied, extra dead nodes revived, positions
// re-applied); the routes converge to the same topology but the local
// epoch keeps counting from its own history.
//
// A state whose spec conflicts with a live registration is an error;
// earlier states in the batch stay applied.
func (s *Service) RestoreState(states []DeploymentState) error {
	var changed bool
	defer func() {
		if changed {
			s.notifyState()
		}
	}()
	for i := range states {
		st := states[i]
		for _, u := range st.Failed {
			if u < 0 || int(u) >= st.Spec.N {
				return fmt.Errorf("serve: restore %q: failed node out of range [0,%d): %d", st.Name, st.Spec.N, u)
			}
		}
		for _, m := range st.Moved {
			if m.Node < 0 || int(m.Node) >= st.Spec.N {
				return fmt.Errorf("serve: restore %q: moved node out of range [0,%d): %d", st.Name, st.Spec.N, m.Node)
			}
		}
		name, err := s.Deploy(st.Name, st.Spec)
		if err != nil {
			return fmt.Errorf("serve: restore: %w", err)
		}
		d, err := s.lookup(name)
		if err != nil {
			return err
		}
		if err := s.restoreInto(d, st); err != nil {
			return err
		}
		changed = true
	}
	return nil
}

// restoreInto applies one state to its registered deployment: pending
// restore when not yet built, live reconciliation otherwise.
func (s *Service) restoreInto(d *deployment, st DeploymentState) error {
	d.mu.Lock()
	if !d.ready.Load() {
		pending := st // copy; the caller's slice entries are not retained elsewhere
		d.restore = &pending
		d.mu.Unlock()
		return nil
	}
	// Live deployment: compute the liveness diff under the read side,
	// then reconcile through the normal mutation paths (they repair
	// substrates and bump the epoch like any churn).
	targetDead := make(map[topo.NodeID]bool, len(st.Failed))
	for _, u := range st.Failed {
		targetDead[u] = true
	}
	var toFail, toRevive []topo.NodeID
	for _, u := range st.Failed {
		if !d.failed[u] {
			toFail = append(toFail, u)
		}
	}
	for u := range d.failed {
		if !targetDead[u] {
			toRevive = append(toRevive, u)
		}
	}
	sort.Slice(toRevive, func(i, j int) bool { return toRevive[i] < toRevive[j] })
	d.mu.Unlock()

	if len(st.Moved) > 0 {
		if err := s.Move(d.name, st.Moved); err != nil {
			return fmt.Errorf("serve: restore %q: %w", d.name, err)
		}
	}
	if len(toFail) > 0 {
		if err := s.Fail(d.name, toFail); err != nil {
			return fmt.Errorf("serve: restore %q: %w", d.name, err)
		}
	}
	if len(toRevive) > 0 {
		if err := s.Revive(d.name, toRevive); err != nil {
			return fmt.Errorf("serve: restore %q: %w", d.name, err)
		}
	}
	return nil
}

// notifyState invokes the Config.OnStateChange hook, if any. Callers
// must not hold service or deployment locks: the hook is expected to
// call ExportState.
func (s *Service) notifyState() {
	if s.cfg.OnStateChange != nil {
		s.cfg.OnStateChange()
	}
}
