package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/straightpath/wasn/internal/topo"
)

// Handler returns the HTTP/JSON API over the service:
//
//	POST /deploy  {"name"?, "model", "n", "seed", "coverage"?, "build"?}
//	POST /route   {"deployment", "algorithm", "src", "dst", "path"?, "trace"?}
//	POST /batch   {"requests": [RouteRequest, ...]}
//	POST /fail    {"deployment", "nodes": [id, ...]}
//	POST /revive  {"deployment", "nodes": [id, ...]}
//	POST /move    {"deployment", "moves": [{"node", "x", "y"}, ...]}
//	GET  /stats
//	GET  /metrics
//	GET  /traces
//	GET  /timeline
//	GET  /events?kind=&deployment=&after=&max=
//	GET  /state
//	POST /restore {"states": [DeploymentState, ...]}
//	GET  /debug/dash?refresh=
//
// Errors are {"error": "..."} with a 4xx/5xx status. Every endpoint is
// instrumented: request count, error count, and latency land in the
// service registry under the endpoint's path.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/deploy", s.instrument("/deploy", s.handleDeploy))
	mux.HandleFunc("/route", s.instrument("/route", s.handleRoute))
	mux.HandleFunc("/batch", s.instrument("/batch", s.handleBatch))
	mux.HandleFunc("/fail", s.instrument("/fail", s.handleFail))
	mux.HandleFunc("/revive", s.instrument("/revive", s.handleRevive))
	mux.HandleFunc("/move", s.instrument("/move", s.handleMove))
	mux.HandleFunc("/stats", s.instrument("/stats", s.handleStats))
	mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	mux.HandleFunc("/traces", s.instrument("/traces", s.handleTraces))
	mux.HandleFunc("/timeline", s.instrument("/timeline", s.handleTimeline))
	mux.HandleFunc("/events", s.instrument("/events", s.handleEvents))
	mux.HandleFunc("/state", s.instrument("/state", s.handleState))
	mux.HandleFunc("/restore", s.instrument("/restore", s.handleRestore))
	mux.HandleFunc("/debug/dash", s.instrument("/debug/dash", s.handleDash))
	// /readyz is deliberately uninstrumented: fleet health checks hit it
	// several times a second and would drown the request series.
	mux.HandleFunc("/readyz", s.handleReadyz)
	return mux
}

// readyzResponse is the liveness probe body. Port-zero servers (wasnd
// -addr :0) overlay the resolved listen address at the cmd layer.
type readyzResponse struct {
	OK          bool   `json:"ok"`
	ReplicaID   string `json:"replica_id,omitempty"`
	Deployments int    `json:"deployments"`
}

func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, readyzResponse{
		OK:          true,
		ReplicaID:   s.cfg.ReplicaID,
		Deployments: len(s.Deployments()),
	})
}

// stateResponse wraps the exported registry state (GET /state); the
// same shape is the /restore request body, so state can be piped
// replica-to-replica verbatim.
type stateResponse struct {
	States []DeploymentState `json:"states"`
}

func (s *Service) handleState(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, stateResponse{States: s.ExportState()})
}

func (s *Service) handleRestore(w http.ResponseWriter, r *http.Request) {
	var req stateResponse
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.RestoreState(req.States); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"restored": len(req.States)})
}

// statusWriter captures the response status for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

// WriteHeader implements http.ResponseWriter.
func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps one endpoint handler with the request/error/latency
// series. The per-endpoint children are resolved once, here, so the
// request path only touches atomics.
func (s *Service) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.so.requests.With(endpoint)
	errs := s.so.requestErrors.With(endpoint)
	dur := s.so.requestDur.With(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		dur.Observe(time.Since(start).Microseconds())
		if sw.status >= 400 {
			errs.Inc()
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// statusFor distinguishes client mistakes (bad deployment name, node,
// algorithm) from server-side lazy-build failures.
func statusFor(err error) int {
	if errors.Is(err, ErrBuild) {
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

// maxBodyBytes bounds request bodies; /batch requests are the largest
// legitimate payloads and stay far under this.
const maxBodyBytes = 8 << 20

// decodeBody strictly decodes the JSON request body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

type deployRequest struct {
	Name  string `json:"name"`
	Model string `json:"model"`
	N     int    `json:"n"`
	Seed  uint64 `json:"seed"`
	// Coverage is the obstacle lattice-coverage target for model "ob"
	// (0 means the default; ignored for other models).
	Coverage float64 `json:"coverage"`
	// Build forces the substrates to be built before responding; by
	// default the first route pays that cost.
	Build bool `json:"build"`
}

type deployResponse struct {
	Name  string `json:"name"`
	Model string `json:"model"`
	N     int    `json:"n"`
	Seed  uint64 `json:"seed"`
}

func (s *Service) handleDeploy(w http.ResponseWriter, r *http.Request) {
	var req deployRequest
	if !decodeBody(w, r, &req) {
		return
	}
	model, err := topo.ParseDeployModel(strings.ToLower(req.Model))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.N <= 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("node count must be positive, got %d", req.N))
		return
	}
	spec := Spec{Model: model, N: req.N, Seed: req.Seed, Coverage: req.Coverage}
	name, err := s.Deploy(req.Name, spec)
	if err != nil {
		// The only Deploy error left after validation is a live name
		// registered with a different spec.
		writeError(w, http.StatusConflict, err)
		return
	}
	if req.Build {
		if err := s.Build(name); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, deployResponse{
		Name: name, Model: model.String(), N: spec.N, Seed: spec.Seed,
	})
}

type routeRequest struct {
	RouteRequest
	// Path asks for the full node path in the response. Cached entries
	// store no paths, so a path:true request bypasses the cache read
	// and computes a fresh route (its aggregate outcome is still cached
	// for later pathless readers).
	Path bool `json:"path"`
	// Trace asks for the hop-by-hop decision trace. Like Path it forces
	// a fresh route computation.
	Trace bool `json:"trace"`
}

// tracedRouteResponse is a RouteResponse extended with the decision
// trace, returned for trace:true requests.
type tracedRouteResponse struct {
	RouteResponse
	Trace TraceRecord `json:"trace"`
}

func (s *Service) handleRoute(w http.ResponseWriter, r *http.Request) {
	var req routeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Trace {
		res, tr, err := s.RouteTraced(req.Deployment, req.Algorithm, req.Src, req.Dst)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, tracedRouteResponse{
			RouteResponse: toResponse(res, false, req.Path),
			Trace:         tr,
		})
		return
	}
	res, cached, err := s.route(req.Deployment, req.Algorithm, req.Src, req.Dst, nil, req.Path, nil)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, toResponse(res, cached, req.Path))
}

type batchRequest struct {
	Requests []RouteRequest `json:"requests"`
}

type batchResponse struct {
	Results []RouteResponse `json:"results"`
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	writeJSON(w, http.StatusOK, batchResponse{Results: s.Batch(req.Requests)})
}

type failRequest struct {
	Deployment string        `json:"deployment"`
	Nodes      []topo.NodeID `json:"nodes"`
}

type failResponse struct {
	Deployment string        `json:"deployment"`
	Failed     []topo.NodeID `json:"failed"`
}

func (s *Service) handleFail(w http.ResponseWriter, r *http.Request) {
	var req failRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.FailTagged(req.Deployment, req.Nodes, requestIDOf(w, r)); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	failed, err := s.Failed(req.Deployment)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, failResponse{Deployment: req.Deployment, Failed: failed})
}

func (s *Service) handleRevive(w http.ResponseWriter, r *http.Request) {
	var req failRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.ReviveTagged(req.Deployment, req.Nodes, requestIDOf(w, r)); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	failed, err := s.Failed(req.Deployment)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, failResponse{Deployment: req.Deployment, Failed: failed})
}

type moveRequest struct {
	Deployment string      `json:"deployment"`
	Moves      []topo.Move `json:"moves"`
}

type moveResponse struct {
	Deployment string `json:"deployment"`
	Moved      int    `json:"moved"`
}

func (s *Service) handleMove(w http.ResponseWriter, r *http.Request) {
	var req moveRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.MoveTagged(req.Deployment, req.Moves, requestIDOf(w, r)); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, moveResponse{Deployment: req.Deployment, Moved: len(req.Moves)})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.so.reg.WriteText(w)
}

// tracesResponse wraps the sampled-trace listing.
type tracesResponse struct {
	Traces []TraceRecord `json:"traces"`
}

func (s *Service) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, tracesResponse{Traces: s.Traces()})
}
