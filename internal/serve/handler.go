package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"github.com/straightpath/wasn/internal/topo"
)

// Handler returns the HTTP/JSON API over the service:
//
//	POST /deploy {"name"?, "model", "n", "seed", "build"?}
//	POST /route  {"deployment", "algorithm", "src", "dst", "path"?}
//	POST /batch  {"requests": [RouteRequest, ...]}
//	POST /fail   {"deployment", "nodes": [id, ...]}
//	POST /revive {"deployment", "nodes": [id, ...]}
//	GET  /stats
//
// Errors are {"error": "..."} with a 4xx/5xx status.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/deploy", s.handleDeploy)
	mux.HandleFunc("/route", s.handleRoute)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/fail", s.handleFail)
	mux.HandleFunc("/revive", s.handleRevive)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// statusFor distinguishes client mistakes (bad deployment name, node,
// algorithm) from server-side lazy-build failures.
func statusFor(err error) int {
	if errors.Is(err, ErrBuild) {
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

// maxBodyBytes bounds request bodies; /batch requests are the largest
// legitimate payloads and stay far under this.
const maxBodyBytes = 8 << 20

// decodeBody strictly decodes the JSON request body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

type deployRequest struct {
	Name  string `json:"name"`
	Model string `json:"model"`
	N     int    `json:"n"`
	Seed  uint64 `json:"seed"`
	// Build forces the substrates to be built before responding; by
	// default the first route pays that cost.
	Build bool `json:"build"`
}

type deployResponse struct {
	Name  string `json:"name"`
	Model string `json:"model"`
	N     int    `json:"n"`
	Seed  uint64 `json:"seed"`
}

func (s *Service) handleDeploy(w http.ResponseWriter, r *http.Request) {
	var req deployRequest
	if !decodeBody(w, r, &req) {
		return
	}
	model, err := topo.ParseDeployModel(strings.ToLower(req.Model))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.N <= 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("node count must be positive, got %d", req.N))
		return
	}
	spec := Spec{Model: model, N: req.N, Seed: req.Seed}
	name, err := s.Deploy(req.Name, spec)
	if err != nil {
		// The only Deploy error left after validation is a live name
		// registered with a different spec.
		writeError(w, http.StatusConflict, err)
		return
	}
	if req.Build {
		if err := s.Build(name); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, deployResponse{
		Name: name, Model: model.String(), N: spec.N, Seed: spec.Seed,
	})
}

type routeRequest struct {
	RouteRequest
	// Path asks for the full node path in the response. Cached entries
	// store no paths, so a path:true request bypasses the cache read
	// and computes a fresh route (its aggregate outcome is still cached
	// for later pathless readers).
	Path bool `json:"path"`
}

func (s *Service) handleRoute(w http.ResponseWriter, r *http.Request) {
	var req routeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, cached, err := s.route(req.Deployment, req.Algorithm, req.Src, req.Dst, nil, req.Path)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, toResponse(res, cached, req.Path))
}

type batchRequest struct {
	Requests []RouteRequest `json:"requests"`
}

type batchResponse struct {
	Results []RouteResponse `json:"results"`
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	writeJSON(w, http.StatusOK, batchResponse{Results: s.Batch(req.Requests)})
}

type failRequest struct {
	Deployment string        `json:"deployment"`
	Nodes      []topo.NodeID `json:"nodes"`
}

type failResponse struct {
	Deployment string        `json:"deployment"`
	Failed     []topo.NodeID `json:"failed"`
}

func (s *Service) handleFail(w http.ResponseWriter, r *http.Request) {
	var req failRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.Fail(req.Deployment, req.Nodes); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	failed, err := s.Failed(req.Deployment)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, failResponse{Deployment: req.Deployment, Failed: failed})
}

func (s *Service) handleRevive(w http.ResponseWriter, r *http.Request) {
	var req failRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.Revive(req.Deployment, req.Nodes); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	failed, err := s.Failed(req.Deployment)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, failResponse{Deployment: req.Deployment, Failed: failed})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}
