package serve

import (
	"fmt"
	"html"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/straightpath/wasn/internal/obs"
	"github.com/straightpath/wasn/internal/svgplot"
)

// handleDash serves /debug/dash: a self-contained HTML page (inline
// SVG, zero external assets or scripts) charting the flight recorder's
// timeline — throughput, delivery and cache shares, repair durations
// by substrate, churn rates — with journal events overlaid as markers
// and tabulated below. ?refresh=N reloads every N seconds via a meta
// tag (default 2; 0 disables, for snapshotting a finished run).
func (s *Service) handleDash(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	refresh := 2
	if v := r.URL.Query().Get("refresh"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad refresh %q", v))
			return
		}
		refresh = n
	}
	win := s.Timeline()
	events := s.journal.Tail(0)

	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	b.WriteString("<title>wasn flight recorder</title>\n")
	if refresh > 0 {
		fmt.Fprintf(&b, "<meta http-equiv=\"refresh\" content=\"%d\">\n", refresh)
	}
	b.WriteString(`<style>
body { font-family: system-ui, sans-serif; margin: 16px; color: #222; }
h1 { font-size: 18px; } h2 { font-size: 14px; margin: 18px 0 6px; }
table { border-collapse: collapse; font-size: 12px; }
th, td { border: 1px solid #ddd; padding: 2px 8px; text-align: right; }
th { background: #f5f5f5; } td.l { text-align: left; }
.muted { color: #777; font-size: 12px; }
</style></head><body>
`)
	st := s.Stats()
	fmt.Fprintf(&b, "<h1>wasn flight recorder</h1>\n<p class=\"muted\">%s — %d deployments, %d routes served, %d journal events; ",
		time.Now().Format(time.RFC3339), st.Deployments, st.Routes, s.journal.Total())
	if s.sampler == nil {
		b.WriteString("sampler <b>disabled</b> (start wasnd with -sample-every)")
	} else {
		fmt.Fprintf(&b, "sampling every %dms, %d points retained", win.EveryMS, len(win.TUnixMS))
	}
	b.WriteString("</p>\n")

	b.WriteString(dashCharts(&win, events))

	// Event table, newest first.
	b.WriteString("<h2>Events (newest first)</h2>\n")
	if len(events) == 0 {
		b.WriteString("<p class=\"muted\">journal empty — no builds or topology changes yet</p>\n")
	} else {
		b.WriteString("<table><tr><th>seq</th><th>time</th><th>kind</th><th>deployment</th><th>req id</th><th>nodes</th><th>dirty</th><th>epoch</th><th>purged</th><th>total</th><th>safety</th><th>bound</th><th>planar</th></tr>\n")
		const maxRows = 40
		for i := len(events) - 1; i >= 0 && i >= len(events)-maxRows; i-- {
			ev := events[i]
			kind := ev.Kind.String()
			if ev.Rebuild {
				kind += "+rebuild"
			}
			fmt.Fprintf(&b,
				"<tr><td>%d</td><td>%s</td><td class=\"l\">%s</td><td class=\"l\">%s</td><td class=\"l\">%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%dus</td><td>%dus</td><td>%dus</td><td>%dus</td></tr>\n",
				ev.Seq, time.UnixMilli(ev.UnixMS).Format("15:04:05.000"),
				html.EscapeString(kind), html.EscapeString(ev.Deployment), html.EscapeString(ev.RequestID),
				ev.Nodes, ev.Dirty, ev.Epoch, ev.Purged,
				ev.DurationUS, ev.SafetyUS, ev.BoundUS, ev.PlanarUS)
		}
		b.WriteString("</table>\n")
	}
	b.WriteString("</body></html>\n")

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}

// dashCharts renders the timeline window as inline SVG panels with
// journal events overlaid as vertical markers.
func dashCharts(win *obs.TimelineWindow, events []obs.Event) string {
	if len(win.TUnixMS) == 0 {
		return "<p class=\"muted\">no timeline samples yet</p>\n"
	}
	t0 := win.TUnixMS[0]
	xs := make([]float64, len(win.TUnixMS))
	for i, t := range win.TUnixMS {
		xs[i] = float64(t-t0) / 1000
	}
	pts := func(name string) []float64 {
		if s := win.Find(name); s != nil {
			return s.Points
		}
		return nil
	}
	mark := func(c *svgplot.Chart) {
		for _, ev := range events {
			x := float64(ev.UnixMS-t0) / 1000
			if x < 0 {
				continue
			}
			color := "#c0392b"
			if ev.Kind == obs.EventRevive {
				color = "#27ae60"
			} else if ev.Kind == obs.EventMove {
				color = "#8e44ad"
			}
			c.Marker(x, color, "")
		}
	}

	var fig strings.Builder
	panel := func(c *svgplot.Chart) {
		mark(c)
		fig.WriteString("<div>")
		fig.WriteString(c.String())
		fig.WriteString("</div>\n")
	}

	thru := svgplot.NewChart("Throughput (req/s)", 900, 200)
	thru.XLabel = "seconds"
	thru.Step("routes/s", svgplot.PaletteColor(0), xs, pts("routes_per_s"))
	thru.Step("computed/s", svgplot.PaletteColor(1), xs, pts("computed_per_s"))
	panel(thru)

	share := svgplot.NewChart("Delivery & cache-hit share", 900, 180)
	share.XLabel = "seconds"
	share.YMax = 1
	share.Step("delivered", svgplot.PaletteColor(2), xs, pts("delivered_share"))
	share.Step("cache hits", svgplot.PaletteColor(3), xs, pts("cache_hit_share"))
	panel(share)

	lat := svgplot.NewChart("HTTP p99 (us, per sample window)", 900, 180)
	lat.XLabel = "seconds"
	lat.Step("http p99", svgplot.PaletteColor(4), xs, pts("http_p99_us"))
	panel(lat)

	rep := svgplot.NewChart("Repair p99 by substrate (us, per sample window)", 900, 200)
	rep.XLabel = "seconds"
	rep.Step("total", svgplot.PaletteColor(0), xs, pts("repair_p99_us"))
	rep.Step("safety", svgplot.PaletteColor(1), xs, pts("repair_safety_p99_us"))
	rep.Step("bound", svgplot.PaletteColor(2), xs, pts("repair_bound_p99_us"))
	rep.Step("planar", svgplot.PaletteColor(3), xs, pts("repair_planar_p99_us"))
	panel(rep)

	churn := svgplot.NewChart("Churn (nodes/s)", 900, 180)
	churn.XLabel = "seconds"
	churn.Step("failed", svgplot.PaletteColor(1), xs, pts("failed_nodes_per_s"))
	churn.Step("revived", svgplot.PaletteColor(2), xs, pts("revived_nodes_per_s"))
	churn.Step("moved", svgplot.PaletteColor(4), xs, pts("moved_nodes_per_s"))
	panel(churn)

	return fig.String()
}
