package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/straightpath/wasn/internal/obs"
	"github.com/straightpath/wasn/internal/topo"
)

// getJSON fetches path and decodes the JSON body into out, returning the
// status code.
func getJSON(t *testing.T, srv *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decoding response: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestJournalRecordsTopologyChanges(t *testing.T) {
	s, name := newTestService(t, Config{})
	pair := alivePairs(t, s, name, 1)[0]

	// The lazy build on first use journals a build event.
	if _, _, err := s.Route(name, "SLGF2", pair[0], pair[1]); err != nil {
		t.Fatal(err)
	}
	evs := s.Events(0, 0)
	if len(evs) != 1 || evs[0].Kind != obs.EventBuild {
		t.Fatalf("after build journal = %+v; want one build event", evs)
	}
	if evs[0].Deployment != name || evs[0].Nodes != testSpec.N || evs[0].DurationUS <= 0 {
		t.Fatalf("build event = %+v", evs[0])
	}

	// A tagged fail journals the request ID, batch size, dirty count,
	// epoch bump, purge count, and per-substrate repair spans.
	if err := s.FailTagged(name, []topo.NodeID{pair[0]}, "req-123"); err != nil {
		t.Fatal(err)
	}
	evs = s.Events(0, 0)
	if len(evs) != 2 || evs[1].Kind != obs.EventFail {
		t.Fatalf("after fail journal = %+v; want build then fail", evs)
	}
	ev := evs[1]
	if ev.RequestID != "req-123" || ev.Nodes != 1 || ev.Dirty == 0 || ev.Epoch != 1 {
		t.Fatalf("fail event = %+v", ev)
	}
	if ev.Purged == 0 {
		t.Fatalf("fail event purged = 0; the cached route should have been purged (%+v)", ev)
	}
	if ev.Rebuild || ev.DurationUS < ev.SafetyUS {
		t.Fatalf("fail event spans look wrong: %+v", ev)
	}

	// Revive and move record their own kinds.
	if err := s.ReviveTagged(name, []topo.NodeID{pair[0]}, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.MoveTagged(name, []topo.Move{{Node: pair[0], X: 50, Y: 50}}, "req-456"); err != nil {
		t.Fatal(err)
	}
	evs = s.Events(0, 0)
	if len(evs) != 4 || evs[2].Kind != obs.EventRevive || evs[3].Kind != obs.EventMove {
		t.Fatalf("journal kinds = %+v", evs)
	}
	if evs[3].RequestID != "req-456" {
		t.Fatalf("move event = %+v", evs[3])
	}
}

func TestJournalRebuildEvent(t *testing.T) {
	s, name := newTestService(t, Config{FullRebuildOnFail: true})
	pair := alivePairs(t, s, name, 1)[0]
	if err := s.Fail(name, []topo.NodeID{pair[0]}); err != nil {
		t.Fatal(err)
	}
	evs := s.Events(0, 0)
	last := evs[len(evs)-1]
	if last.Kind != obs.EventFail || !last.Rebuild {
		t.Fatalf("rebuild-mode fail event = %+v", last)
	}
	if last.SafetyUS != 0 || last.BoundUS != 0 || last.PlanarUS != 0 {
		t.Fatalf("rebuild event carries repair spans: %+v", last)
	}
}

func TestHTTPEventsEndpoint(t *testing.T) {
	s, name := newTestService(t, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	pair := alivePairs(t, s, name, 1)[0]

	// /fail with a client-supplied X-Request-Id lands it in the journal.
	body := fmt.Sprintf(`{"deployment":%q,"nodes":[%d]}`, name, pair[0])
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/fail", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "client-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/fail status = %d", resp.StatusCode)
	}

	var er eventsResponse
	if code := getJSON(t, srv, "/events", &er); code != http.StatusOK {
		t.Fatalf("/events status = %d", code)
	}
	if len(er.Events) != 2 || er.Total != 2 {
		t.Fatalf("/events = %+v", er)
	}
	if er.Events[1].Kind != obs.EventFail || er.Events[1].RequestID != "client-7" {
		t.Fatalf("fail event over HTTP = %+v", er.Events[1])
	}

	// Kind and deployment filters.
	var fr eventsResponse
	getJSON(t, srv, "/events?kind=fail", &fr)
	if len(fr.Events) != 1 || fr.Events[0].Kind != obs.EventFail {
		t.Fatalf("/events?kind=fail = %+v", fr.Events)
	}
	getJSON(t, srv, "/events?deployment=nope", &fr)
	if len(fr.Events) != 0 {
		t.Fatalf("/events?deployment=nope = %+v", fr.Events)
	}
	// Incremental poll: after=Total sees nothing new.
	getJSON(t, srv, fmt.Sprintf("/events?after=%d", er.Total), &fr)
	if len(fr.Events) != 0 {
		t.Fatalf("/events?after=%d = %+v", er.Total, fr.Events)
	}
	// Bad parameters are 400s.
	for _, q := range []string{"?kind=bogus", "?after=x", "?max=0"} {
		if code := getJSON(t, srv, "/events"+q, nil); code != http.StatusBadRequest {
			t.Fatalf("/events%s status = %d; want 400", q, code)
		}
	}
}

func TestHTTPTimelineEndpoint(t *testing.T) {
	// A huge period keeps the background ticker quiet; the test drives
	// samples explicitly so the window contents are deterministic.
	s, name := newTestService(t, Config{SampleEveryMS: 3_600_000})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	pair := alivePairs(t, s, name, 1)[0]

	var tr timelineResponse
	if code := getJSON(t, srv, "/timeline", &tr); code != http.StatusOK {
		t.Fatalf("/timeline status = %d", code)
	}
	base := len(tr.Timeline.TUnixMS)

	if _, _, err := s.Route(name, "SLGF2", pair[0], pair[1]); err != nil {
		t.Fatal(err)
	}
	s.SampleNow()
	s.SampleNow()

	if code := getJSON(t, srv, "/timeline", &tr); code != http.StatusOK {
		t.Fatalf("/timeline status = %d", code)
	}
	win := tr.Timeline
	if len(win.TUnixMS) != base+2 {
		t.Fatalf("timeline has %d samples; want %d", len(win.TUnixMS), base+2)
	}
	if win.EveryMS != 3_600_000 {
		t.Fatalf("timeline every_ms = %d", win.EveryMS)
	}
	for _, want := range []string{"routes_per_s", "delivered_share", "repair_safety_p99_us"} {
		ts := win.Find(want)
		if ts == nil {
			t.Fatalf("timeline lacks series %q (have %d series)", want, len(win.Series))
		}
		if len(ts.Points) != len(win.TUnixMS) {
			t.Fatalf("series %q has %d points for %d timestamps", want, len(ts.Points), len(win.TUnixMS))
		}
	}

	// Without a sampler the window is empty, not an error.
	s2, _ := newTestService(t, Config{})
	if w := s2.Timeline(); len(w.TUnixMS) != 0 || len(w.Series) != 0 {
		t.Fatalf("sampler-less timeline = %+v", w)
	}
}

func TestHTTPDashEndpoint(t *testing.T) {
	s, name := newTestService(t, Config{SampleEveryMS: 3_600_000})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	pair := alivePairs(t, s, name, 1)[0]
	if _, _, err := s.Route(name, "SLGF2", pair[0], pair[1]); err != nil {
		t.Fatal(err)
	}
	if err := s.Fail(name, []topo.NodeID{pair[0]}); err != nil {
		t.Fatal(err)
	}
	s.SampleNow()
	s.SampleNow()

	resp, err := http.Get(srv.URL + "/debug/dash?refresh=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/dash status = %d", resp.StatusCode)
	}
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	html := string(page)
	for _, want := range []string{"<svg", "Throughput", "Repair p99 by substrate", "fail", "</html>"} {
		if !strings.Contains(html, want) {
			t.Fatalf("/debug/dash page lacks %q", want)
		}
	}
	if strings.Contains(html, "http-equiv=\"refresh\"") {
		t.Fatal("refresh=0 still emitted a meta refresh tag")
	}
	if code := getJSON(t, srv, "/debug/dash?refresh=x", nil); code != http.StatusBadRequest {
		t.Fatalf("/debug/dash?refresh=x status = %d; want 400", code)
	}
}

// TestFlightRecorderStorm scrapes /timeline, /events, and /debug/dash
// while routes and fail/revive/move churn run concurrently — the
// lock-free reader paths must stay race-clean (run with -race) and the
// pages well-formed throughout.
func TestFlightRecorderStorm(t *testing.T) {
	s, name := newTestService(t, Config{SampleEveryMS: 5})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	pairs := alivePairs(t, s, name, 8)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var scrapes, routes atomic.Int64

	// Routers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := pairs[(w+i)%len(pairs)]
				if _, _, err := s.Route(name, "SLGF2", p[0], p[1]); err != nil {
					t.Errorf("route: %v", err)
					return
				}
				routes.Add(1)
			}
		}(w)
	}

	// Churner: fail/revive one node, move another, round-robin.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			u := pairs[i%len(pairs)][0]
			if err := s.FailTagged(name, []topo.NodeID{u}, fmt.Sprintf("storm-%d", i)); err != nil {
				t.Errorf("fail: %v", err)
				return
			}
			if err := s.Revive(name, []topo.NodeID{u}); err != nil {
				t.Errorf("revive: %v", err)
				return
			}
			if err := s.Move(name, []topo.Move{{Node: u, X: float64(10 + i%80), Y: 50}}); err != nil {
				t.Errorf("move: %v", err)
				return
			}
		}
	}()

	// Scrapers.
	for _, path := range []string{"/timeline", "/events", "/debug/dash?refresh=0", "/metrics"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s: status %d err %v", path, resp.StatusCode, err)
					return
				}
				if len(body) == 0 {
					t.Errorf("GET %s: empty body", path)
					return
				}
				scrapes.Add(1)
			}
		}(path)
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if routes.Load() == 0 || scrapes.Load() == 0 {
		t.Fatalf("storm did no work: routes=%d scrapes=%d", routes.Load(), scrapes.Load())
	}
	// The window must be internally consistent after the storm.
	win := s.Timeline()
	for _, ts := range win.Series {
		if len(ts.Points) != len(win.TUnixMS) {
			t.Fatalf("series %q has %d points for %d timestamps", ts.Name, len(ts.Points), len(win.TUnixMS))
		}
	}
	for i := 1; i < len(win.TUnixMS); i++ {
		if win.TUnixMS[i] < win.TUnixMS[i-1] {
			t.Fatalf("timeline timestamps not monotonic at %d: %v", i, win.TUnixMS[i-1:i+1])
		}
	}
	evs := s.Events(0, 0)
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("journal seqs not contiguous: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}
