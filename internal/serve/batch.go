package serve

import (
	"sync"
	"sync/atomic"

	"github.com/straightpath/wasn/internal/core"
	"github.com/straightpath/wasn/internal/topo"
)

// RouteRequest is one query of a batch (and the /route request body).
type RouteRequest struct {
	Deployment string      `json:"deployment"`
	Algorithm  string      `json:"algorithm"`
	Src        topo.NodeID `json:"src"`
	Dst        topo.NodeID `json:"dst"`
}

// RouteResponse is the outcome of one query. Err is empty on success;
// the routing fields are zero when it is not.
type RouteResponse struct {
	Delivered bool          `json:"delivered"`
	Hops      int           `json:"hops"`
	Length    float64       `json:"length"`
	Reason    string        `json:"reason,omitempty"`
	Cached    bool          `json:"cached"`
	Path      []topo.NodeID `json:"path,omitempty"`
	Err       string        `json:"error,omitempty"`
}

// toResponse flattens a core.Result for the wire. The path is included
// only on request: batch consumers usually want the aggregate numbers,
// and paths dominate the payload.
func toResponse(res core.Result, cached, withPath bool) RouteResponse {
	out := RouteResponse{
		Delivered: res.Delivered,
		Hops:      res.Hops(),
		Length:    res.Length,
		Cached:    cached,
	}
	if !res.Delivered {
		out.Reason = res.Reason.String()
	}
	if withPath {
		out.Path = res.Path
	}
	return out
}

// Batch routes every request and returns the responses in request order.
// The requests fan out across the service worker pool (Config.Workers);
// each worker runs the same cached route path, so a batch warms the
// cache for subsequent traffic and profits from it in turn. Requests
// may mix deployments and algorithms freely.
//
// Each worker owns one reusable path buffer and routes through
// Router.RouteInto, so a warm batch performs no per-route path
// allocation: cache hits return the stored aggregate outcome, cache
// misses append the traveled path into the worker's buffer (batch
// responses never carry paths, and the cache strips them on insert).
func (s *Service) Batch(reqs []RouteRequest) []RouteResponse {
	s.batches.Inc()
	out := make([]RouteResponse, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	workers := s.cfg.Workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			buf := make([]topo.NodeID, 0, 256)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				req := reqs[i]
				res, cached, err := s.route(req.Deployment, req.Algorithm, req.Src, req.Dst, buf, false, nil)
				if err != nil {
					out[i] = RouteResponse{Err: err.Error()}
					continue
				}
				if res.Path != nil {
					// Keep the (possibly grown) buffer for the next route;
					// cache hits return no path and leave buf untouched.
					buf = res.Path[:0]
				}
				out[i] = toResponse(res, cached, false)
			}
		}()
	}
	wg.Wait()
	return out
}
