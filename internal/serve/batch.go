package serve

import (
	"sync"
	"sync/atomic"

	"github.com/straightpath/wasn/internal/core"
	"github.com/straightpath/wasn/internal/topo"
)

// RouteRequest is one query of a batch (and the /route request body).
type RouteRequest struct {
	Deployment string      `json:"deployment"`
	Algorithm  string      `json:"algorithm"`
	Src        topo.NodeID `json:"src"`
	Dst        topo.NodeID `json:"dst"`
}

// RouteResponse is the outcome of one query. Err is empty on success;
// the routing fields are zero when it is not.
type RouteResponse struct {
	Delivered bool          `json:"delivered"`
	Hops      int           `json:"hops"`
	Length    float64       `json:"length"`
	Reason    string        `json:"reason,omitempty"`
	Cached    bool          `json:"cached"`
	Path      []topo.NodeID `json:"path,omitempty"`
	Err       string        `json:"error,omitempty"`
}

// toResponse flattens a core.Result for the wire. The path is included
// only on request: batch consumers usually want the aggregate numbers,
// and paths dominate the payload.
func toResponse(res core.Result, cached, withPath bool) RouteResponse {
	out := RouteResponse{
		Delivered: res.Delivered,
		Hops:      res.Hops(),
		Length:    res.Length,
		Cached:    cached,
	}
	if !res.Delivered {
		out.Reason = res.Reason.String()
	}
	if withPath {
		out.Path = res.Path
	}
	return out
}

// Batch routes every request and returns the responses in request order.
// The requests fan out across the service worker pool (Config.Workers);
// each worker runs the same cached Route path, so a batch warms the
// cache for subsequent traffic and profits from it in turn. Requests
// may mix deployments and algorithms freely.
func (s *Service) Batch(reqs []RouteRequest) []RouteResponse {
	s.batches.Inc()
	out := make([]RouteResponse, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	workers := s.cfg.Workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				req := reqs[i]
				res, cached, err := s.Route(req.Deployment, req.Algorithm, req.Src, req.Dst)
				if err != nil {
					out[i] = RouteResponse{Err: err.Error()}
					continue
				}
				out[i] = toResponse(res, cached, false)
			}
		}()
	}
	wg.Wait()
	return out
}
