// Package serve is the routing-as-a-service layer: a long-lived,
// concurrent service that answers many route queries over shared
// deployed-network state, the workload the paper's §1 streaming
// application implies. It stacks four pieces:
//
//   - a deployment registry of named (model, n, seed) deployments whose
//     routing substrates (safety model, BOUNDHOLE boundaries, Gabriel
//     graph, routers) are built lazily and deduplicated with
//     singleflight, so a stampede of first requests builds each
//     substrate exactly once;
//   - a sharded LRU route cache keyed by (deployment, epoch, algorithm,
//     src, dst) with hit/miss/eviction counters — entries store the
//     aggregate outcome only (no paths), keeping cache memory flat;
//   - a batch engine fanning request slices across a worker pool while
//     preserving request order, each worker routing into its own
//     reusable path buffer (Router.RouteInto), so a warm batch performs
//     no per-route allocation;
//   - HTTP/JSON handlers (see handler.go) that cmd/wasnd serves — the
//     endpoint reference with curl examples lives in cmd/wasnd/README.md.
//
// # Failure handling
//
// Topology mutations (node failures via Fail) take a per-deployment
// write lock and repair all three substrates incrementally in place
// through core.RepairSubstrates: the safety relabeling is seeded from
// the failure neighborhood, BOUNDHOLE re-traces only the boundary walks
// that swept it, and the Gabriel graph recomputes only the incident
// rows. The routers hold pointers into the substrates and observe the
// repair without being rebuilt. Repair latency therefore scales with
// the failure neighborhood, not the deployment size; the
// Config.FullRebuildOnFail flag retains the from-scratch rebuild as a
// differential oracle (the results are identical).
//
// After the repair the deployment epoch is bumped — the epoch is part
// of every cache key, so all previously cached routes of the deployment
// become unreachable at once — and the stale entries are purged
// eagerly.
package serve
