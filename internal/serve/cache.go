package serve

import (
	"container/list"
	"hash/maphash"
	"sync"

	"github.com/straightpath/wasn/internal/core"
	"github.com/straightpath/wasn/internal/topo"
)

// cacheKey identifies one cached route. The deployment epoch is part of
// the key: a topology mutation bumps the deployment's epoch, so every
// pre-mutation entry becomes unreachable immediately (and is purged
// eagerly by Fail) without blocking readers on a global sweep.
type cacheKey struct {
	dep   string
	epoch uint64
	alg   string
	src   topo.NodeID
	dst   topo.NodeID
}

// routeCache is a sharded LRU of routing results. Sharding keeps lock
// contention off the hot path when many goroutines serve cache hits
// concurrently; each shard holds its own lock, map, recency list, and
// hit/miss counters. Keeping the counters per shard — plain words
// bumped under the shard lock the operation already holds — means the
// hot lookup path touches no cross-shard cache line at all: the old
// global atomics made every hit on every shard fight over one line.
type routeCache struct {
	shards []*cacheShard
	seed   maphash.Seed
}

type cacheShard struct {
	mu sync.Mutex
	// cap is the per-shard entry budget.
	cap int
	// ll orders entries most-recently-used first.
	ll *list.List
	m  map[cacheKey]*list.Element
	// Shard-local statistics, guarded by mu (reads sum across shards).
	hits    int64
	misses  int64
	evicted int64
	purged  int64
}

// cacheStats is the shard-summed statistics snapshot.
type cacheStats struct {
	hits    int64
	misses  int64
	evicted int64
	purged  int64
}

type cacheEntry struct {
	key cacheKey
	res core.Result
}

// defaultCacheSize is the total entry budget when Config.CacheSize is 0.
const defaultCacheSize = 1 << 16

// defaultCacheShards is the shard count when Config.CacheShards is 0.
const defaultCacheShards = 16

// newRouteCache builds a cache with the given total capacity spread over
// the shards. Capacity below the shard count is rounded up to one entry
// per shard.
func newRouteCache(size, shards int) *routeCache {
	if size <= 0 {
		size = defaultCacheSize
	}
	if shards <= 0 {
		shards = defaultCacheShards
	}
	perShard := (size + shards - 1) / shards
	c := &routeCache{
		shards: make([]*cacheShard, shards),
		seed:   maphash.MakeSeed(),
	}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			cap: perShard,
			ll:  list.New(),
			m:   make(map[cacheKey]*list.Element),
		}
	}
	return c
}

func (c *routeCache) shard(k cacheKey) *cacheShard {
	var h maphash.Hash
	h.SetSeed(c.seed)
	h.WriteString(k.dep)
	h.WriteString(k.alg)
	h.WriteByte(byte(k.src))
	h.WriteByte(byte(k.src >> 8))
	h.WriteByte(byte(k.dst))
	h.WriteByte(byte(k.dst >> 8))
	h.WriteByte(byte(k.epoch))
	return c.shards[h.Sum64()%uint64(len(c.shards))]
}

// get returns the cached result for k and whether it was present.
func (c *routeCache) get(k cacheKey) (core.Result, bool) {
	sh := c.shard(k)
	sh.mu.Lock()
	el, ok := sh.m[k]
	if !ok {
		sh.misses++
		sh.mu.Unlock()
		return core.Result{}, false
	}
	sh.ll.MoveToFront(el)
	sh.hits++
	res := el.Value.(*cacheEntry).res
	sh.mu.Unlock()
	return res, true
}

// put stores a result, evicting the least recently used entry of the
// shard when it is full. The path is stripped before storing: entries
// keep only the aggregate outcome (Result.Hops stays correct via the
// phase counts), which keeps cache memory flat, makes entries safe to
// share across goroutines, and never retains a caller's reusable path
// buffer.
func (c *routeCache) put(k cacheKey, res core.Result) {
	res.Path = nil
	sh := c.shard(k)
	sh.mu.Lock()
	if el, ok := sh.m[k]; ok {
		sh.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		sh.mu.Unlock()
		return
	}
	sh.m[k] = sh.ll.PushFront(&cacheEntry{key: k, res: res})
	for sh.ll.Len() > sh.cap {
		back := sh.ll.Back()
		sh.ll.Remove(back)
		delete(sh.m, back.Value.(*cacheEntry).key)
		sh.evicted++
	}
	sh.mu.Unlock()
}

// purgeDeployment drops every entry of the named deployment (any epoch),
// returning how many it removed. Epoch keying already makes stale
// entries unreachable; the purge frees their capacity eagerly.
func (c *routeCache) purgeDeployment(dep string) int64 {
	var n int64
	for _, sh := range c.shards {
		sh.mu.Lock()
		for el := sh.ll.Front(); el != nil; {
			next := el.Next()
			e := el.Value.(*cacheEntry)
			if e.key.dep == dep {
				sh.ll.Remove(el)
				delete(sh.m, e.key)
				sh.purged++
				n++
			}
			el = next
		}
		sh.mu.Unlock()
	}
	return n
}

// stats sums the shard-local counters into one snapshot. A scrape-path
// read: it takes each shard lock briefly, never on the serving path.
func (c *routeCache) stats() cacheStats {
	var s cacheStats
	for _, sh := range c.shards {
		sh.mu.Lock()
		s.hits += sh.hits
		s.misses += sh.misses
		s.evicted += sh.evicted
		s.purged += sh.purged
		sh.mu.Unlock()
	}
	return s
}

// len returns the total number of live entries.
func (c *routeCache) len() int {
	total := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		total += sh.ll.Len()
		sh.mu.Unlock()
	}
	return total
}
