package serve

import (
	"bytes"
	"encoding/json"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"github.com/straightpath/wasn/internal/bound"
	"github.com/straightpath/wasn/internal/planar"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/topo"
)

// driftMoves builds a small seeded Gaussian drift batch over alive,
// non-endpoint nodes so the test's route pairs stay valid.
func driftMoves(t *testing.T, s *Service, dep string, avoid map[topo.NodeID]bool, k int, seed uint64) []topo.Move {
	t.Helper()
	d, err := s.lookup(dep)
	if err != nil {
		t.Fatal(err)
	}
	d.mu.RLock()
	net := d.dep.Net
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	moves := make([]topo.Move, 0, k)
	for len(moves) < k {
		u := topo.NodeID(rng.IntN(net.N()))
		if avoid[u] {
			continue
		}
		p := net.Pos(u)
		x := min(max(p.X+rng.NormFloat64()*8, net.Field.Min.X), net.Field.Max.X)
		y := min(max(p.Y+rng.NormFloat64()*8, net.Field.Min.Y), net.Field.Max.Y)
		moves = append(moves, topo.Move{Node: u, X: x, Y: y})
	}
	d.mu.RUnlock()
	return moves
}

// TestMoveRepairsAndMatchesFreshSim is the serving-layer pin of the
// position-repair differential: after /move-style batches under a warm
// cache, every algorithm must route exactly like substrates built from
// scratch on the moved topology, with the cache invalidated.
func TestMoveRepairsAndMatchesFreshSim(t *testing.T) {
	s, name := newTestService(t, Config{})
	pairs := alivePairs(t, s, name, 4)
	endpoint := make(map[topo.NodeID]bool)
	for _, p := range pairs {
		endpoint[p[0]], endpoint[p[1]] = true, true
	}

	// Warm the cache so the move must purge it.
	for _, p := range pairs {
		if _, _, err := s.Route(name, "SLGF2", p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}

	moves := driftMoves(t, s, name, endpoint, 5, 11)
	if err := s.Move(name, moves); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().MovedNodes; got != int64(len(moves)) {
		t.Fatalf("MovedNodes = %d; want %d", got, len(moves))
	}

	// Fresh reference over the moved coordinates.
	d, err := s.lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	d.mu.RLock()
	refNet, err := topo.NewNetwork(d.dep.Net.Positions(), d.dep.Net.Radius, d.dep.Net.Field)
	d.mu.RUnlock()
	if err != nil {
		t.Fatal(err)
	}
	refRouters := s.buildRouters(refNet, safety.Build(refNet),
		bound.FindHoles(refNet), planar.Build(refNet, planar.GabrielGraph))

	for _, alg := range Algorithms() {
		for _, p := range pairs {
			got, cached, err := s.Route(name, alg, p[0], p[1])
			if err != nil {
				t.Fatal(err)
			}
			if cached {
				t.Fatalf("%s %v served from cache after Move", alg, p)
			}
			want := refRouters[alg].Route(p[0], p[1])
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s %v diverges from fresh substrate after move:\nserve %+v\nfresh %+v", alg, p, got, want)
			}
		}
	}

	// An empty batch is a no-op; an unknown node is a client error.
	st := s.Stats()
	if err := s.Move(name, nil); err != nil {
		t.Fatal(err)
	}
	if s.Stats().MovedNodes != st.MovedNodes {
		t.Fatal("empty move batch changed the counter")
	}
	if err := s.Move(name, []topo.Move{{Node: topo.NodeID(testSpec.N), X: 1, Y: 1}}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

// TestConcurrentBatchAndMove races batch queries against drift batches;
// under -race this pins that Move serializes with routing exactly like
// Fail does.
func TestConcurrentBatchAndMove(t *testing.T) {
	s, name := newTestService(t, Config{Workers: 4})
	pairs := alivePairs(t, s, name, 6)
	reqs := make([]RouteRequest, 0, len(pairs)*len(Algorithms()))
	for _, alg := range Algorithms() {
		for _, p := range pairs {
			reqs = append(reqs, RouteRequest{Deployment: name, Algorithm: alg, Src: p[0], Dst: p[1]})
		}
	}
	endpoint := make(map[topo.NodeID]bool)
	for _, p := range pairs {
		endpoint[p[0]], endpoint[p[1]] = true, true
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				for _, r := range s.Batch(reqs) {
					if r.Err != "" {
						t.Errorf("batch route errored: %s", r.Err)
					}
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			moves := driftMoves(t, s, name, endpoint, 3, uint64(100+i))
			if err := s.Move(name, moves); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	// Post-race differential: final repaired state equals a fresh build.
	d, err := s.lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	refNet, err := topo.NewNetwork(d.dep.Net.Positions(), d.dep.Net.Radius, d.dep.Net.Field)
	if err != nil {
		t.Fatal(err)
	}
	refRouters := s.buildRouters(refNet, safety.Build(refNet),
		bound.FindHoles(refNet), planar.Build(refNet, planar.GabrielGraph))
	for _, alg := range Algorithms() {
		for _, p := range pairs {
			got, _, err := s.Route(name, alg, p[0], p[1])
			if err != nil {
				t.Fatal(err)
			}
			want := refRouters[alg].Route(p[0], p[1])
			// The batch goroutines may have re-warmed the cache after the
			// final move, so compare the pathless aggregates.
			got.Path, want.Path = nil, nil
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s %v diverges after concurrent moves:\nserve %+v\nfresh %+v", alg, p, got, want)
			}
		}
	}
}

// TestDeployObstacleCoverage pins OB registry naming and validation: the
// coverage knob lands in the default name (so sweep rungs at different
// coverages are distinct deployments) and out-of-range coverage is
// rejected.
func TestDeployObstacleCoverage(t *testing.T) {
	s := New(Config{})
	name, err := s.Deploy("", Spec{Model: topo.ModelOB, N: 200, Seed: 3, Coverage: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if name != "OB-200-3-c30" {
		t.Fatalf("OB default name = %q; want OB-200-3-c30", name)
	}
	if _, err := s.Deploy("", Spec{Model: topo.ModelOB, N: 200, Seed: 3}); err != nil {
		t.Fatalf("default-coverage OB deploy: %v", err)
	}
	if _, err := s.Deploy("bad", Spec{Model: topo.ModelOB, N: 200, Seed: 3, Coverage: 1.2}); err == nil {
		t.Fatal("coverage >= 1 accepted")
	}
	if _, err := s.Deploy("bad", Spec{Model: topo.ModelOB, N: 200, Seed: 3, Coverage: -0.1}); err == nil {
		t.Fatal("negative coverage accepted")
	}
	if err := s.Build(name); err != nil {
		t.Fatalf("building obstacle deployment: %v", err)
	}
}

// TestHTTPMove drives the /move endpoint end to end: deploy an obstacle
// field over HTTP, move nodes, and confirm the response shape plus the
// stats counter.
func TestHTTPMove(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(path string, body any, out any) *http.Response {
		t.Helper()
		buf, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
		return resp
	}

	var dr deployResponse
	resp := post("/deploy", map[string]any{"model": "ob", "n": 150, "seed": 2, "coverage": 0.2, "build": true}, &dr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/deploy status %d", resp.StatusCode)
	}
	if dr.Name != "OB-150-2-c20" {
		t.Fatalf("deploy name = %q", dr.Name)
	}

	var mr moveResponse
	resp = post("/move", moveRequest{
		Deployment: dr.Name,
		Moves:      []topo.Move{{Node: 3, X: 40, Y: 40}, {Node: 9, X: 60, Y: 55}},
	}, &mr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/move status %d", resp.StatusCode)
	}
	if mr.Moved != 2 || mr.Deployment != dr.Name {
		t.Fatalf("move response = %+v", mr)
	}
	if got := s.Stats().MovedNodes; got != 2 {
		t.Fatalf("MovedNodes = %d; want 2", got)
	}

	// Bad node id surfaces as a 400.
	resp = post("/move", moveRequest{
		Deployment: dr.Name,
		Moves:      []topo.Move{{Node: 150, X: 1, Y: 1}},
	}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/move with bad node: status %d; want 400", resp.StatusCode)
	}
}
