package serve

import (
	"reflect"
	"sync"
	"testing"

	"github.com/straightpath/wasn/internal/bound"
	"github.com/straightpath/wasn/internal/planar"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/topo"
)

// testSpec is small enough to build quickly but large enough that routes
// traverse several hops.
var testSpec = Spec{Model: topo.ModelFA, N: 300, Seed: 7}

func newTestService(t *testing.T, cfg Config) (*Service, string) {
	t.Helper()
	s := New(cfg)
	name, err := s.Deploy("", testSpec)
	if err != nil {
		t.Fatal(err)
	}
	return s, name
}

// alivePairs returns n routable (same-component, well-separated) pairs.
func alivePairs(t *testing.T, s *Service, dep string, n int) [][2]topo.NodeID {
	t.Helper()
	if err := s.Build(dep); err != nil {
		t.Fatal(err)
	}
	d, err := s.lookup(dep)
	if err != nil {
		t.Fatal(err)
	}
	pairs := topo.RoutablePairs(d.dep.Net, n, 80)
	if len(pairs) < n {
		t.Fatalf("found only %d routable pairs, want %d", len(pairs), n)
	}
	return pairs
}

func TestDeployRegistry(t *testing.T) {
	s, name := newTestService(t, Config{})
	if name != "FA-300-7" {
		t.Fatalf("default name = %q; want FA-300-7", name)
	}
	// Idempotent re-registration.
	if _, err := s.Deploy(name, testSpec); err != nil {
		t.Fatalf("re-deploy same spec: %v", err)
	}
	// Conflicting spec under a live name is refused.
	if _, err := s.Deploy(name, Spec{Model: topo.ModelIA, N: 300, Seed: 7}); err == nil {
		t.Fatal("conflicting re-deploy succeeded")
	}
	if _, _, err := s.Route("nope", "SLGF2", 0, 1); err == nil {
		t.Fatal("route on unknown deployment succeeded")
	}
	if got := s.Deployments(); !reflect.DeepEqual(got, []string{name}) {
		t.Fatalf("Deployments() = %v", got)
	}
}

func TestDeployValidation(t *testing.T) {
	s := New(Config{})
	if _, err := s.Deploy("x", Spec{Model: 99, N: 10, Seed: 1}); err == nil {
		t.Fatal("bad model accepted")
	}
	if _, err := s.Deploy("x", Spec{Model: topo.ModelIA, N: 0, Seed: 1}); err == nil {
		t.Fatal("zero node count accepted")
	}
}

// TestSingleflightBuild storms one deployment with concurrent first
// requests and asserts the substrate was built exactly once.
func TestSingleflightBuild(t *testing.T) {
	s, name := newTestService(t, Config{})
	const goroutines = 32
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			if _, _, err := s.Route(name, "SLGF2", 0, 1); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := s.Stats().Builds; got != 1 {
		t.Fatalf("builds = %d; want exactly 1", got)
	}
}

func TestRouteCachedSecondTime(t *testing.T) {
	s, name := newTestService(t, Config{})
	pair := alivePairs(t, s, name, 1)[0]
	first, cached, err := s.Route(name, "SLGF2", pair[0], pair[1])
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first route reported cached")
	}
	if !first.Delivered {
		t.Fatalf("route %v undelivered: %v", pair, first.Reason)
	}
	second, cached, err := s.Route(name, "SLGF2", pair[0], pair[1])
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("second route missed the cache")
	}
	// Cached results drop the path but keep every aggregate, including
	// the hop count (served from the phase totals).
	if second.Path != nil {
		t.Fatalf("cached result carries a path: %v", second.Path)
	}
	if second.Hops() != first.Hops() {
		t.Fatalf("cached hops = %d, want %d", second.Hops(), first.Hops())
	}
	first.Path = nil
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached result differs:\nfirst  %+v\nsecond %+v", first, second)
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.Routes != 2 {
		t.Fatalf("stats = %+v; want 1 hit over 2 routes", st)
	}
}

func TestCacheDisabled(t *testing.T) {
	s, name := newTestService(t, Config{CacheSize: -1})
	pair := alivePairs(t, s, name, 1)[0]
	for i := 0; i < 2; i++ {
		if _, cached, err := s.Route(name, "SLGF2", pair[0], pair[1]); err != nil || cached {
			t.Fatalf("round %d: cached=%v err=%v; want uncached, nil", i, cached, err)
		}
	}
}

func TestRouteValidation(t *testing.T) {
	s, name := newTestService(t, Config{})
	if _, _, err := s.Route(name, "SLGF2", -1, 5); err == nil {
		t.Fatal("negative src accepted")
	}
	if _, _, err := s.Route(name, "SLGF2", 0, topo.NodeID(testSpec.N)); err == nil {
		t.Fatal("out-of-range dst accepted")
	}
	if _, _, err := s.Route(name, "NOPE", 0, 1); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestBatchPreservesOrder(t *testing.T) {
	s, name := newTestService(t, Config{Workers: 4})
	pairs := alivePairs(t, s, name, 8)
	reqs := make([]RouteRequest, len(pairs))
	for i, p := range pairs {
		reqs[i] = RouteRequest{Deployment: name, Algorithm: "SLGF2", Src: p[0], Dst: p[1]}
	}
	got := s.Batch(reqs)
	if len(got) != len(reqs) {
		t.Fatalf("batch returned %d results for %d requests", len(got), len(reqs))
	}
	for i, p := range pairs {
		want, _, err := s.Route(name, "SLGF2", p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Err != "" {
			t.Fatalf("result %d errored: %s", i, got[i].Err)
		}
		if got[i].Hops != want.Hops() || got[i].Length != want.Length || got[i].Delivered != want.Delivered {
			t.Fatalf("result %d = %+v; want hops=%d length=%v", i, got[i], want.Hops(), want.Length)
		}
	}
	if s.Stats().Batches != 1 {
		t.Fatalf("batches = %d; want 1", s.Stats().Batches)
	}
}

func TestBatchReportsPerRequestErrors(t *testing.T) {
	s, name := newTestService(t, Config{})
	pair := alivePairs(t, s, name, 1)[0]
	got := s.Batch([]RouteRequest{
		{Deployment: name, Algorithm: "SLGF2", Src: pair[0], Dst: pair[1]},
		{Deployment: "nope", Algorithm: "SLGF2", Src: 0, Dst: 1},
		{Deployment: name, Algorithm: "NOPE", Src: 0, Dst: 1},
	})
	if got[0].Err != "" || !got[0].Delivered {
		t.Fatalf("good request failed: %+v", got[0])
	}
	if got[1].Err == "" || got[2].Err == "" {
		t.Fatalf("bad requests did not error: %+v, %+v", got[1], got[2])
	}
}

// TestFailInvalidatesCacheAndMatchesFreshSim kills nodes on a cached
// route's path and asserts (1) the cache entry no longer serves, and
// (2) every post-failure result equals what a from-scratch substrate
// over the damaged topology computes.
func TestFailInvalidatesCacheAndMatchesFreshSim(t *testing.T) {
	s, name := newTestService(t, Config{})
	pairs := alivePairs(t, s, name, 4)

	// Warm the cache.
	baseline := make(map[[2]topo.NodeID]int)
	for _, p := range pairs {
		res, _, err := s.Route(name, "SLGF2", p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		baseline[p] = res.Hops()
	}

	// Fail two interior nodes on the first route's path. The pair is
	// cached (pathless) by now, so route past the cache for the path,
	// like the HTTP layer's path:true does.
	first, _, err := s.route(name, "SLGF2", pairs[0][0], pairs[0][1], nil, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Path) < 4 {
		t.Fatalf("path too short to damage: %v", first.Path)
	}
	dead := []topo.NodeID{first.Path[len(first.Path)/3], first.Path[2*len(first.Path)/3]}
	if dead[0] == dead[1] {
		dead = dead[:1]
	}
	if err := s.Fail(name, dead); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Failed(name); err != nil || len(got) != len(dead) {
		t.Fatalf("Failed() = %v, %v; want %v", got, err, dead)
	}

	// Fresh reference: a brand new deployment with the same spec, the
	// same nodes killed, and all substrates built from scratch.
	refDep, err := topo.Deploy(topo.DefaultDeployConfig(testSpec.Model, testSpec.N, testSpec.Seed))
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range dead {
		refDep.Net.SetAlive(u, false)
	}
	refRouters := s.buildRouters(refDep.Net, safety.Build(refDep.Net),
		bound.FindHoles(refDep.Net), planar.Build(refDep.Net, planar.GabrielGraph))

	for _, alg := range Algorithms() {
		for _, p := range pairs {
			got, cached, err := s.Route(name, alg, p[0], p[1])
			if err != nil {
				t.Fatal(err)
			}
			if cached {
				t.Fatalf("%s %v served from cache after Fail", alg, p)
			}
			want := refRouters[alg].Route(p[0], p[1])
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s %v diverges from fresh substrate:\nserve %+v\nfresh %+v", alg, p, got, want)
			}
		}
	}

	// Idempotent re-fail does not bump the epoch or counters.
	st := s.Stats()
	if err := s.Fail(name, dead); err != nil {
		t.Fatal(err)
	}
	if s.Stats().FailedNodes != st.FailedNodes {
		t.Fatal("re-failing dead nodes changed the failure counter")
	}
}

// TestConcurrentBatchAndFail drives parallel batch queries against one
// deployment while nodes fail concurrently; run under -race this is the
// subsystem's central soundness test. Afterwards the service must agree
// with a fresh substrate over the final dead-node set.
func TestConcurrentBatchAndFail(t *testing.T) {
	s, name := newTestService(t, Config{Workers: 4})
	pairs := alivePairs(t, s, name, 6)
	reqs := make([]RouteRequest, 0, len(pairs)*len(Algorithms()))
	for _, alg := range Algorithms() {
		for _, p := range pairs {
			reqs = append(reqs, RouteRequest{Deployment: name, Algorithm: alg, Src: p[0], Dst: p[1]})
		}
	}

	// Kill nodes far from every src/dst endpoint so requests stay valid.
	endpoint := make(map[topo.NodeID]bool)
	for _, p := range pairs {
		endpoint[p[0]], endpoint[p[1]] = true, true
	}
	var dead []topo.NodeID
	for u := 0; len(dead) < 6; u += 37 {
		id := topo.NodeID(u % testSpec.N)
		if !endpoint[id] {
			dead = append(dead, id)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				for _, r := range s.Batch(reqs) {
					if r.Err != "" {
						t.Errorf("batch route errored: %s", r.Err)
					}
				}
			}
		}()
	}
	for _, u := range dead {
		wg.Add(1)
		go func(u topo.NodeID) {
			defer wg.Done()
			if err := s.Fail(name, []topo.NodeID{u}); err != nil {
				t.Error(err)
			}
		}(u)
	}
	wg.Wait()

	refDep, err := topo.Deploy(topo.DefaultDeployConfig(testSpec.Model, testSpec.N, testSpec.Seed))
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range dead {
		refDep.Net.SetAlive(u, false)
	}
	refRouters := s.buildRouters(refDep.Net, safety.Build(refDep.Net),
		bound.FindHoles(refDep.Net), planar.Build(refDep.Net, planar.GabrielGraph))
	for _, p := range pairs {
		got, cached, err := s.Route(name, "SLGF2", p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		want := refRouters["SLGF2"].Route(p[0], p[1])
		// The storm may have left this pair cached (pathless); compare
		// the aggregates, and the path too when one was computed.
		if cached {
			want.Path = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("post-storm %v diverges from fresh substrate:\nserve %+v\nfresh %+v", p, got, want)
		}
	}
}

// TestReviveRestoresAndMatchesFreshSim kills nodes, revives them, and
// asserts every router agrees with a pristine from-scratch build again
// (revival drives the safety model's full-relabel repair path).
func TestReviveRestoresAndMatchesFreshSim(t *testing.T) {
	s, name := newTestService(t, Config{})
	pairs := alivePairs(t, s, name, 3)
	dead := []topo.NodeID{11, 42, 97}
	if err := s.Fail(name, dead); err != nil {
		t.Fatal(err)
	}
	// Reviving an alive node is a no-op; reviving out of range errors.
	if err := s.Revive(name, []topo.NodeID{3}); err != nil {
		t.Fatalf("no-op revive errored: %v", err)
	}
	if err := s.Revive(name, []topo.NodeID{topo.NodeID(testSpec.N)}); err == nil {
		t.Fatal("out-of-range revive accepted")
	}
	if err := s.Revive(name, dead); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Failed(name); err != nil || len(got) != 0 {
		t.Fatalf("Failed() after revive = %v, %v; want empty", got, err)
	}

	refDep, err := topo.Deploy(topo.DefaultDeployConfig(testSpec.Model, testSpec.N, testSpec.Seed))
	if err != nil {
		t.Fatal(err)
	}
	refRouters := s.buildRouters(refDep.Net, safety.Build(refDep.Net),
		bound.FindHoles(refDep.Net), planar.Build(refDep.Net, planar.GabrielGraph))
	for _, alg := range Algorithms() {
		for _, p := range pairs {
			got, cached, err := s.Route(name, alg, p[0], p[1])
			if err != nil {
				t.Fatal(err)
			}
			if cached {
				t.Fatalf("%s %v served from cache right after revive", alg, p)
			}
			want := refRouters[alg].Route(p[0], p[1])
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s %v diverges from pristine substrate after revive:\nserve %+v\nfresh %+v", alg, p, got, want)
			}
		}
	}

	st := s.Stats()
	if st.RevivedNodes != int64(len(dead)) {
		t.Fatalf("RevivedNodes = %d; want %d", st.RevivedNodes, len(dead))
	}
	if len(st.PerDeployment) != 1 {
		t.Fatalf("PerDeployment = %+v; want one entry", st.PerDeployment)
	}
	ds := st.PerDeployment[0]
	// One Fail + one effective Revive = two incremental repairs, two
	// epoch bumps, no rebuilds, no dead nodes left.
	if ds.Name != name || !ds.Ready || ds.Repairs != 2 || ds.Rebuilds != 0 || ds.Epoch != 2 || ds.FailedNodes != 0 {
		t.Fatalf("DeploymentStats = %+v", ds)
	}
}

// TestStatsDerivedFields pins the server-side cache hit rate and the
// rebuild counter under the full-rebuild oracle config.
func TestStatsDerivedFields(t *testing.T) {
	s, name := newTestService(t, Config{FullRebuildOnFail: true})
	pair := alivePairs(t, s, name, 1)[0]
	for i := 0; i < 4; i++ {
		if _, _, err := s.Route(name, "GF", pair[0], pair[1]); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.CacheHits != 3 || st.CacheMisses != 1 {
		t.Fatalf("hits/misses = %d/%d; want 3/1", st.CacheHits, st.CacheMisses)
	}
	if st.CacheHitRate != 0.75 {
		t.Fatalf("CacheHitRate = %v; want 0.75", st.CacheHitRate)
	}
	if err := s.Fail(name, []topo.NodeID{5}); err != nil {
		t.Fatal(err)
	}
	ds := s.Stats().PerDeployment[0]
	if ds.Rebuilds != 1 || ds.Repairs != 0 || ds.FailedNodes != 1 {
		t.Fatalf("oracle DeploymentStats = %+v; want 1 rebuild", ds)
	}
}
