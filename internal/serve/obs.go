package serve

import (
	"sync"
	"sync/atomic"

	"github.com/straightpath/wasn/internal/core"
	"github.com/straightpath/wasn/internal/obs"
	"github.com/straightpath/wasn/internal/topo"
	"github.com/straightpath/wasn/internal/trace"
)

// serviceObs owns the service's metric families and the sampled-trace
// ring. The per-algorithm series are resolved once at construction
// (the algorithm set is fixed), so the route path touches only
// pre-resolved atomics — no map lookups or label joins per route.
type serviceObs struct {
	reg *obs.Registry

	// HTTP middleware families, children resolved per endpoint at
	// Handler construction.
	requests      *obs.CounterVec
	requestErrors *obs.CounterVec
	requestDur    *obs.HistogramVec

	// Route outcome families. Recorded when a route is computed; cache
	// hits replay a known outcome and are visible through the cache
	// series instead, keeping the hit path free of extra work.
	alg map[string]*algObs

	// Per-deployment substrate timings (label resolved per build /
	// repair, which are rare).
	buildDur  *obs.HistogramVec
	repairDur *obs.HistogramVec

	// Per-substrate repair spans from the core fan-out, children
	// pre-resolved so the family renders (with zero counts) before the
	// first repair — the -check-metrics contract can require it
	// unconditionally.
	repairSafety *obs.Histogram
	repairBound  *obs.Histogram
	repairPlanar *obs.Histogram

	// Sampled decision traces.
	traces    *obs.Counter
	traceSeq  atomic.Int64
	traceEach int64
	ring      traceRing

	// Sampled hop-stretch measurement. stretchDur prices the sampling
	// itself: the reference BFS each sample pays, in its own series so
	// operators can see what StretchSampleEvery costs before tuning it.
	stretchSeq  atomic.Int64
	stretchEach int64
	stretchDur  *obs.Histogram
}

// algObs is the pre-resolved per-algorithm series bundle.
type algObs struct {
	delivered *obs.Counter
	dropped   *obs.Counter
	hops      *obs.Histogram
	stretch   *obs.Histogram
	phase     [core.NumPhases + 1]*obs.Counter
}

// phaseLabel names phases for the phase label of
// wasn_route_phase_hops_total.
func phaseLabel(p core.Phase) string { return p.String() }

// newServiceObs builds the metric set over a fresh registry and
// registers the service-owned families. Counters owned by Service
// itself (builds, routes, ...) are created here too so Stats and the
// exposition read the same atomics.
func newServiceObs(cfg Config) *serviceObs {
	so := &serviceObs{
		reg: obs.NewRegistry(),
		requests: obs.NewCounterVec("wasn_http_requests_total",
			"HTTP requests received, by endpoint.", "endpoint"),
		requestErrors: obs.NewCounterVec("wasn_http_request_errors_total",
			"HTTP requests answered with a 4xx/5xx status, by endpoint.", "endpoint"),
		requestDur: obs.NewHistogramVec("wasn_http_request_duration_us",
			"HTTP request handling latency in microseconds, by endpoint.", "endpoint"),
		buildDur: obs.NewHistogramVec("wasn_build_duration_us",
			"Substrate build latency in microseconds, by deployment.", "deployment"),
		repairDur: obs.NewHistogramVec("wasn_repair_duration_us",
			"Topology-change repair latency in microseconds, by deployment and mode (repair|rebuild).",
			"deployment", "mode"),
		traces: obs.NewCounter("wasn_traces_recorded_total",
			"Route decision traces recorded (sampled plus explicit trace requests)."),
		traceEach:   int64(cfg.TraceSampleEvery),
		stretchEach: int64(cfg.StretchSampleEvery),
		stretchDur: obs.NewHistogram("wasn_stretch_sample_duration_us",
			"Latency of the pooled reference hop-count search each stretch sample pays, in microseconds."),
		alg: make(map[string]*algObs, len(Algorithms())),
	}
	so.ring.init(cfg.TraceRingSize)

	repairSub := obs.NewHistogramVec("wasn_repair_substrate_duration_us",
		"Wall time of each substrate's incremental repair pass inside the concurrent repair fan-out, in microseconds, by substrate (safety|bound|planar).",
		"substrate")
	so.repairSafety = repairSub.With("safety")
	so.repairBound = repairSub.With("bound")
	so.repairPlanar = repairSub.With("planar")

	routesTotal := obs.NewCounterVec("wasn_routes_computed_total",
		"Routes computed (cache misses and path/trace requests), by algorithm and outcome.",
		"algorithm", "outcome")
	hops := obs.NewHistogramVec("wasn_route_hops",
		"Hop count of delivered computed routes, by algorithm.", "algorithm")
	phaseHops := obs.NewCounterVec("wasn_route_phase_hops_total",
		"Hops traveled per algorithm phase across computed routes.", "algorithm", "phase")
	stretch := obs.NewHistogramVec("wasn_route_hop_stretch_hundredths",
		"Sampled hop stretch of delivered routes versus the minimum-hop ideal, in hundredths (100 = optimal).",
		"algorithm")
	for _, name := range Algorithms() {
		a := &algObs{
			delivered: routesTotal.With(name, "delivered"),
			dropped:   routesTotal.With(name, "dropped"),
			hops:      hops.With(name),
			stretch:   stretch.With(name),
		}
		for p := core.Phase(1); p <= core.Phase(core.NumPhases); p++ {
			a.phase[p] = phaseHops.With(name, phaseLabel(p))
		}
		so.alg[name] = a
	}

	so.reg.MustRegister(
		so.requests, so.requestErrors, so.requestDur,
		so.buildDur, so.repairDur, repairSub, so.traces, so.stretchDur,
		routesTotal, hops, phaseHops, stretch,
	)
	return so
}

// observeSubstrates folds one repair fan-out's per-substrate spans
// into the substrate histograms (zero spans mean the substrate was
// skipped and are not recorded).
func (so *serviceObs) observeSubstrates(t core.SubstrateTimings) {
	if t.Safety > 0 {
		so.repairSafety.Observe(t.Safety.Microseconds())
	}
	if t.Bound > 0 {
		so.repairBound.Observe(t.Bound.Microseconds())
	}
	if t.Planar > 0 {
		so.repairPlanar.Observe(t.Planar.Microseconds())
	}
}

// recordComputed folds one freshly computed route into the outcome
// series. Called on the cache-miss path only: the route computation
// (microseconds) dwarfs these few uncontended atomic adds.
func (so *serviceObs) recordComputed(algorithm string, res core.Result) {
	a := so.alg[algorithm]
	if a == nil {
		return
	}
	if res.Delivered {
		a.delivered.Inc()
		a.hops.Observe(int64(res.Hops()))
	} else {
		a.dropped.Inc()
	}
	for p := core.Phase(1); p <= core.Phase(core.NumPhases); p++ {
		if n := res.PhaseHops[p]; n > 0 {
			a.phase[p].Add(int64(n))
		}
	}
}

// sampleTrace reports whether this computed route should be traced
// into the ring (every TraceSampleEvery-th computed route).
func (so *serviceObs) sampleTrace() bool {
	return so.traceEach > 0 && so.traceSeq.Add(1)%so.traceEach == 0
}

// sampleStretch reports whether this computed route should pay an
// ideal-router reference route for the hop-stretch histogram.
func (so *serviceObs) sampleStretch() bool {
	return so.stretchEach > 0 && so.stretchSeq.Add(1)%so.stretchEach == 0
}

// observeStretch records hops/idealHops in hundredths.
func (so *serviceObs) observeStretch(algorithm string, hops, idealHops int) {
	if idealHops <= 0 || hops <= 0 {
		return
	}
	if a := so.alg[algorithm]; a != nil {
		a.stretch.Observe(int64(hops) * 100 / int64(idealHops))
	}
}

// TraceEvent is one forwarding decision of a traced route, as served
// by /route (trace:true) and /traces.
type TraceEvent struct {
	// Seq is the 1-based hop index.
	Seq int `json:"seq"`
	// From made the decision; To is the chosen successor.
	From topo.NodeID `json:"from"`
	To   topo.NodeID `json:"to"`
	// Phase names the algorithm phase of the decision.
	Phase string `json:"phase"`
}

// TraceRecord is one complete route decision trace.
type TraceRecord struct {
	Deployment string       `json:"deployment"`
	Algorithm  string       `json:"algorithm"`
	Src        topo.NodeID  `json:"src"`
	Dst        topo.NodeID  `json:"dst"`
	Delivered  bool         `json:"delivered"`
	Reason     string       `json:"reason,omitempty"`
	Hops       int          `json:"hops"`
	Events     []TraceEvent `json:"events"`
}

// buildTraceRecord converts recorder events to the wire shape.
func buildTraceRecord(dep, alg string, src, dst topo.NodeID, res core.Result, rec *trace.Recorder) TraceRecord {
	tr := TraceRecord{
		Deployment: dep,
		Algorithm:  alg,
		Src:        src,
		Dst:        dst,
		Delivered:  res.Delivered,
		Hops:       res.Hops(),
		Events:     make([]TraceEvent, 0, rec.Len()),
	}
	if !res.Delivered {
		tr.Reason = res.Reason.String()
	}
	for _, e := range rec.Events() {
		tr.Events = append(tr.Events, TraceEvent{
			Seq: e.Seq, From: e.From, To: e.To, Phase: e.Phase.String(),
		})
	}
	return tr
}

// traceRing holds the most recent sampled traces, newest first on
// read. Writes are O(1) under a small mutex; the ring is off the
// route hot path (only sampled routes reach it).
type traceRing struct {
	mu   sync.Mutex
	buf  []TraceRecord
	next int
	full bool
}

// defaultTraceRingSize is the ring capacity when Config.TraceRingSize
// is 0.
const defaultTraceRingSize = 32

func (r *traceRing) init(size int) {
	if size <= 0 {
		size = defaultTraceRingSize
	}
	r.buf = make([]TraceRecord, size)
}

func (r *traceRing) push(t TraceRecord) {
	r.mu.Lock()
	r.buf[r.next] = t
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// snapshot returns the buffered traces, newest first.
func (r *traceRing) snapshot() []TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]TraceRecord, 0, n)
	for i := 0; i < n; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.buf)
		}
		out = append(out, r.buf[idx])
	}
	return out
}
