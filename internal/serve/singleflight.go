package serve

import (
	"fmt"
	"sync"
)

// flightGroup deduplicates concurrent function calls by key: while one
// call for a key is in flight, later callers wait for its result instead
// of running the function again. Failed calls are forgotten so the next
// caller retries; successful results are the caller's to cache (the
// registry stores built substrates on the deployment itself).
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	err  error
}

// Do runs fn once per key across concurrent callers and returns its
// error to every waiter.
func (g *flightGroup) Do(key string, fn func() error) error {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	// Clean up in a defer so a panicking fn does not wedge every waiter
	// on a never-closed done channel — and the waiters must observe an
	// error, not a false success. The panic is re-raised for the
	// initiating caller after the waiters are released.
	defer func() {
		r := recover()
		if r != nil {
			c.err = fmt.Errorf("serve: singleflight call %q panicked: %v", key, r)
		}
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
		if r != nil {
			panic(r)
		}
	}()
	c.err = fn()
	return c.err
}
