package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/straightpath/wasn/internal/topo"
)

func postJSON(t *testing.T, srv *httptest.Server, path string, body any, out any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decoding response: %v", path, err)
		}
	}
	return resp
}

func TestHTTPEndToEnd(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// /deploy registers and (with build:true) constructs the substrates.
	var dep deployResponse
	resp := postJSON(t, srv, "/deploy", map[string]any{
		"model": "fa", "n": 300, "seed": 7, "build": true,
	}, &dep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/deploy status = %d", resp.StatusCode)
	}
	if dep.Name != "FA-300-7" || dep.N != 300 {
		t.Fatalf("/deploy response = %+v", dep)
	}

	pair := alivePairs(t, s, dep.Name, 1)[0]

	// /route delivers and, asked again, reports the cache hit.
	var r1, r2 RouteResponse
	postJSON(t, srv, "/route", map[string]any{
		"deployment": dep.Name, "algorithm": "SLGF2",
		"src": pair[0], "dst": pair[1], "path": true,
	}, &r1)
	if !r1.Delivered || r1.Cached || len(r1.Path) != r1.Hops+1 {
		t.Fatalf("first /route = %+v", r1)
	}
	postJSON(t, srv, "/route", map[string]any{
		"deployment": dep.Name, "algorithm": "SLGF2",
		"src": pair[0], "dst": pair[1],
	}, &r2)
	if !r2.Cached || r2.Hops != r1.Hops {
		t.Fatalf("second /route = %+v; want cached with %d hops", r2, r1.Hops)
	}
	if r2.Path != nil {
		t.Fatalf("path returned without path:true: %v", r2.Path)
	}

	// /batch returns results in request order.
	var br batchResponse
	postJSON(t, srv, "/batch", map[string]any{"requests": []RouteRequest{
		{Deployment: dep.Name, Algorithm: "SLGF2", Src: pair[0], Dst: pair[1]},
		{Deployment: dep.Name, Algorithm: "GF", Src: pair[0], Dst: pair[1]},
		{Deployment: "nope", Algorithm: "SLGF2", Src: 0, Dst: 1},
	}}, &br)
	if len(br.Results) != 3 {
		t.Fatalf("/batch returned %d results", len(br.Results))
	}
	if br.Results[0].Hops != r1.Hops || br.Results[2].Err == "" {
		t.Fatalf("/batch results = %+v", br.Results)
	}

	// /fail kills a path node and invalidates the cached route.
	mid := r1.Path[len(r1.Path)/2]
	var fr failResponse
	postJSON(t, srv, "/fail", map[string]any{
		"deployment": dep.Name, "nodes": []topo.NodeID{mid},
	}, &fr)
	if len(fr.Failed) != 1 || fr.Failed[0] != mid {
		t.Fatalf("/fail response = %+v", fr)
	}
	var r3 RouteResponse
	postJSON(t, srv, "/route", map[string]any{
		"deployment": dep.Name, "algorithm": "SLGF2",
		"src": pair[0], "dst": pair[1], "path": true,
	}, &r3)
	if r3.Cached {
		t.Fatal("route served from cache after /fail")
	}
	for _, u := range r3.Path {
		if u == mid {
			t.Fatalf("post-fail path still visits dead node %d: %v", mid, r3.Path)
		}
	}

	// /stats reflects the traffic.
	statsResp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st Stats
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Deployments != 1 || st.Routes == 0 || st.CacheHits == 0 || st.FailedNodes != 1 {
		t.Fatalf("/stats = %+v", st)
	}
}

func TestHTTPErrors(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Wrong method.
	resp, err := http.Get(srv.URL + "/route")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /route status = %d", resp.StatusCode)
	}

	// Unknown model.
	if resp := postJSON(t, srv, "/deploy", map[string]any{"model": "xx", "n": 10}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/deploy bad model status = %d", resp.StatusCode)
	}

	// Unknown field (strict decoding).
	if resp := postJSON(t, srv, "/route", map[string]any{"bogus": 1}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/route bogus field status = %d", resp.StatusCode)
	}

	// Route before deploy.
	if resp := postJSON(t, srv, "/route", map[string]any{
		"deployment": "nope", "algorithm": "SLGF2", "src": 0, "dst": 1,
	}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/route unknown deployment status = %d", resp.StatusCode)
	}

	// Conflicting re-deploy.
	postJSON(t, srv, "/deploy", map[string]any{"name": "d", "model": "ia", "n": 50, "seed": 1}, nil)
	if resp := postJSON(t, srv, "/deploy", map[string]any{"name": "d", "model": "ia", "n": 60, "seed": 1}, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting /deploy status = %d", resp.StatusCode)
	}
}
