package serve

import (
	"fmt"
	"net/http"
	"strconv"

	"github.com/straightpath/wasn/internal/obs"
)

// defaultSamplerSpecs is the timeline the flight recorder maintains
// when Config.SampleEveryMS enables sampling: throughput, delivery and
// cache shares, tail latencies, repair durations broken down by
// substrate, and churn rates — the curves /debug/dash charts.
func defaultSamplerSpecs() []obs.SeriesSpec {
	return []obs.SeriesSpec{
		{Name: "routes_per_s", Kind: obs.SeriesRate,
			Num: obs.Term{Family: "wasn_routes_total"}},
		{Name: "computed_per_s", Kind: obs.SeriesRate,
			Num: obs.Term{Family: "wasn_routes_computed_total"}},
		{Name: "delivered_share", Kind: obs.SeriesRatio,
			Num: obs.Term{Family: "wasn_routes_computed_total", Match: `outcome="delivered"`},
			Den: obs.Term{Family: "wasn_routes_computed_total", Match: `outcome="dropped"`}},
		{Name: "cache_hit_share", Kind: obs.SeriesRatio,
			Num: obs.Term{Family: "wasn_route_cache_hits_total"},
			Den: obs.Term{Family: "wasn_route_cache_misses_total"}},
		{Name: "cache_entries", Kind: obs.SeriesGauge,
			Num: obs.Term{Family: "wasn_route_cache_entries"}},
		{Name: "http_p99_us", Kind: obs.SeriesQuantile,
			Num: obs.Term{Family: "wasn_http_request_duration_us"}, Q: 0.99},
		{Name: "repairs_per_s", Kind: obs.SeriesRate,
			Num: obs.Term{Family: "wasn_repair_duration_us"}},
		{Name: "repair_p99_us", Kind: obs.SeriesQuantile,
			Num: obs.Term{Family: "wasn_repair_duration_us"}, Q: 0.99},
		{Name: "repair_safety_p99_us", Kind: obs.SeriesQuantile,
			Num: obs.Term{Family: "wasn_repair_substrate_duration_us", Match: `substrate="safety"`}, Q: 0.99},
		{Name: "repair_bound_p99_us", Kind: obs.SeriesQuantile,
			Num: obs.Term{Family: "wasn_repair_substrate_duration_us", Match: `substrate="bound"`}, Q: 0.99},
		{Name: "repair_planar_p99_us", Kind: obs.SeriesQuantile,
			Num: obs.Term{Family: "wasn_repair_substrate_duration_us", Match: `substrate="planar"`}, Q: 0.99},
		{Name: "failed_nodes_per_s", Kind: obs.SeriesRate,
			Num: obs.Term{Family: "wasn_failed_nodes_total"}},
		{Name: "revived_nodes_per_s", Kind: obs.SeriesRate,
			Num: obs.Term{Family: "wasn_revived_nodes_total"}},
		{Name: "moved_nodes_per_s", Kind: obs.SeriesRate,
			Num: obs.Term{Family: "wasn_moved_nodes_total"}},
	}
}

// Timeline snapshots the flight recorder's sampled series window.
// Empty (no timestamps) when the sampler is disabled.
func (s *Service) Timeline() obs.TimelineWindow {
	if s.sampler == nil {
		return obs.TimelineWindow{}
	}
	return s.sampler.Snapshot()
}

// SampleNow forces one timeline sample immediately — end-of-run
// flushes and tests use it so the final window covers the last events
// without waiting for a tick. No-op when the sampler is disabled.
func (s *Service) SampleNow() {
	if s.sampler != nil {
		s.sampler.Sample()
	}
}

// Events returns up to max journal events with Seq > after, oldest
// first (max <= 0: the whole retained ring). Entries lost to ring
// wraparound are skipped.
func (s *Service) Events(after uint64, max int) []obs.Event {
	return s.journal.Since(after, max)
}

// Journal exposes the flight-recorder journal so in-process embedders
// (the batch engine's purge events, tests) can record or tail without
// an HTTP round trip.
func (s *Service) Journal() *obs.Journal { return s.journal }

// timelineResponse wraps /timeline's JSON body.
type timelineResponse struct {
	Timeline obs.TimelineWindow `json:"timeline"`
}

func (s *Service) handleTimeline(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, timelineResponse{Timeline: s.Timeline()})
}

// eventsResponse wraps /events: the filtered tail plus Total, the
// journal's all-time sequence high-water mark (pass it back as ?after=
// for incremental polls).
type eventsResponse struct {
	Events []obs.Event `json:"events"`
	Total  uint64      `json:"total"`
}

// handleEvents serves the journal tail. Filters: ?kind=fail (event
// kind name), ?deployment=NAME, ?after=SEQ (strictly newer entries),
// ?max=N (newest N after filtering; default 256).
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	q := r.URL.Query()
	var kind obs.EventKind
	if v := q.Get("kind"); v != "" {
		k, err := obs.ParseEventKind(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		kind = k
	}
	after := uint64(0)
	if v := q.Get("after"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad after: %w", err))
			return
		}
		after = n
	}
	max := 256
	if v := q.Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad max %q", v))
			return
		}
		max = n
	}
	dep := q.Get("deployment")

	evs := s.journal.Since(after, 0)
	filtered := evs[:0:0]
	for _, ev := range evs {
		if kind != obs.EventNone && ev.Kind != kind {
			continue
		}
		if dep != "" && ev.Deployment != dep {
			continue
		}
		filtered = append(filtered, ev)
	}
	if len(filtered) > max {
		filtered = filtered[len(filtered)-max:]
	}
	if filtered == nil {
		filtered = []obs.Event{} // "events": [] rather than null
	}
	writeJSON(w, http.StatusOK, eventsResponse{Events: filtered, Total: s.journal.Total()})
}

// requestIDOf recovers the request ID for journal attribution: the
// client's X-Request-Id header if it sent one, else the ID the logging
// middleware assigned (wasnd sets the response header before invoking
// the inner handler, exactly so this lookup needs no context plumbing).
func requestIDOf(w http.ResponseWriter, r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" {
		return id
	}
	return w.Header().Get("X-Request-Id")
}
