package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/straightpath/wasn/internal/bound"
	"github.com/straightpath/wasn/internal/core"
	"github.com/straightpath/wasn/internal/obs"
	"github.com/straightpath/wasn/internal/planar"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/topo"
	"github.com/straightpath/wasn/internal/trace"
)

// Spec names a reproducible deployment: the same (model, n, seed,
// coverage) always generates the same network, so a spec is all the
// registry must persist.
type Spec struct {
	Model topo.DeployModel
	N     int
	Seed  uint64
	// Coverage is the obstacle-field coverage target under topo.ModelOB
	// (0 means topo.DefaultObstacleCoverage); ignored for IA/FA.
	Coverage float64
}

// DefaultName derives the registry name used when a deployment is
// registered without one, e.g. "FA-500-42". Obstacle deployments with an
// explicit coverage target append it ("OB-500-42-c25"), so coverage
// ladder rungs register as distinct deployments.
func (sp Spec) DefaultName() string {
	if sp.Model == topo.ModelOB && sp.Coverage > 0 {
		return fmt.Sprintf("%s-%d-%d-c%g", sp.Model, sp.N, sp.Seed, sp.Coverage*100)
	}
	return fmt.Sprintf("%s-%d-%d", sp.Model, sp.N, sp.Seed)
}

// Config tunes a Service. The zero value is ready for production use.
type Config struct {
	// CacheSize is the total route-cache entry budget across all shards
	// (default 65536). Negative disables caching entirely.
	CacheSize int
	// CacheShards is the shard count (default 16).
	CacheShards int
	// Workers bounds batch-engine concurrency (default NumCPU).
	Workers int
	// TTLFactor overrides the per-packet hop budget of every router
	// (core.DefaultTTLFactor when 0).
	TTLFactor int
	// FullRebuildOnFail makes Fail rebuild every substrate from scratch
	// instead of repairing incrementally — the differential oracle for
	// the repair path (wasnd -full-rebuild). Keep it off in production:
	// the results are identical and the rebuild is orders of magnitude
	// slower.
	FullRebuildOnFail bool
	// TraceSampleEvery records a decision trace for every N-th computed
	// route into the trace ring (GET /traces). 0 disables sampling;
	// explicit trace:true requests are always traced.
	TraceSampleEvery int
	// TraceRingSize bounds the sampled-trace ring (default 32).
	TraceRingSize int
	// StretchSampleEvery measures hop stretch (algorithm hops versus
	// the minimum-hop ideal) for every N-th computed route. Each sample
	// pays one reference BFS route. 0 disables the measurement.
	StretchSampleEvery int
	// SampleEveryMS starts the flight-recorder sampler: every N
	// milliseconds a background goroutine scrapes the registry and
	// appends one point to each timeline series (GET /timeline). 0
	// disables the sampler — the default, so zero-value Services (unit
	// tests, benchmarks) run no background goroutines; wasnd turns it
	// on via -sample-every. Stop it with Close.
	SampleEveryMS int
	// SampleWindow is the number of timeline samples retained (default
	// 512). Memory is fixed at construction.
	SampleWindow int
	// JournalSize bounds the flight-recorder event journal ring,
	// rounded up to a power of two (default 1024). The journal is
	// always on: writes happen only on topology changes and builds.
	JournalSize int
	// ReplicaID names this process in a sharded fleet (wasnd
	// -replica-id); surfaced on /readyz and in Stats so shard-aware
	// tooling can attribute numbers to replicas. Empty outside a fleet.
	ReplicaID string
	// OnStateChange, when non-nil, is called after every registry state
	// change — deploy, fail, revive, move, restore — outside all
	// service locks. The fleet snapshotter hangs off it to persist the
	// registry (debounced) to disk.
	OnStateChange func()
}

// ErrBuild marks substrate build failures: a server-side fault, not a
// malformed request (the HTTP layer maps it to a 5xx status).
var ErrBuild = errors.New("build failed")

// Service is the concurrent routing service. All methods are safe for
// concurrent use.
type Service struct {
	cfg    Config
	cache  *routeCache // nil when disabled
	flight flightGroup
	so     *serviceObs

	// The flight recorder: a bounded journal of structural events
	// (always on) plus the optional periodic timeline sampler.
	journal *obs.Journal
	sampler *obs.Sampler // nil unless Config.SampleEveryMS > 0

	mu   sync.RWMutex
	deps map[string]*deployment

	// The service counters are obs collectors registered with the
	// service registry: Stats and the /metrics exposition read the same
	// atomics, so the two views cannot disagree.
	builds   *obs.Counter
	routes   *obs.Counter
	batches  *obs.Counter
	failures *obs.Counter
	revivals *obs.Counter
	moves    *obs.Counter
}

// New builds a Service.
func New(cfg Config) *Service {
	s := &Service{
		cfg:  cfg,
		deps: make(map[string]*deployment),
		so:   newServiceObs(cfg),
		builds: obs.NewCounter("wasn_substrate_builds_total",
			"Full substrate builds performed (lazy first-use builds and rebuild oracles)."),
		routes: obs.NewCounter("wasn_routes_total",
			"Route queries answered, cached or computed."),
		batches: obs.NewCounter("wasn_batches_total",
			"Batch requests served."),
		failures: obs.NewCounter("wasn_failed_nodes_total",
			"Nodes transitioned to failed."),
		revivals: obs.NewCounter("wasn_revived_nodes_total",
			"Nodes transitioned back to alive."),
		moves: obs.NewCounter("wasn_moved_nodes_total",
			"Node position updates applied."),
	}
	s.so.reg.MustRegister(s.builds, s.routes, s.batches, s.failures, s.revivals, s.moves)
	s.so.reg.MustRegister(obs.NewFunc("wasn_deployments",
		"Registered deployments.", obs.KindGauge, func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(len(s.deps))
		}))
	if cfg.CacheSize >= 0 {
		s.cache = newRouteCache(cfg.CacheSize, cfg.CacheShards)
		// The cache keeps shard-local counters bumped under the shard
		// locks; the registry sums them at scrape time instead of
		// maintaining a parallel set.
		s.so.reg.MustRegister(
			obs.NewFunc("wasn_route_cache_hits_total",
				"Route cache lookups answered from the cache.", obs.KindCounter,
				func() float64 { return float64(s.cache.stats().hits) }),
			obs.NewFunc("wasn_route_cache_misses_total",
				"Route cache lookups that required a route computation.", obs.KindCounter,
				func() float64 { return float64(s.cache.stats().misses) }),
			obs.NewFunc("wasn_route_cache_evictions_total",
				"Route cache entries evicted by the per-shard LRU.", obs.KindCounter,
				func() float64 { return float64(s.cache.stats().evicted) }),
			obs.NewFunc("wasn_route_cache_purged_total",
				"Route cache entries purged by topology changes.", obs.KindCounter,
				func() float64 { return float64(s.cache.stats().purged) }),
			obs.NewFunc("wasn_route_cache_entries",
				"Live route cache entries.", obs.KindGauge,
				func() float64 { return float64(s.cache.len()) }),
		)
	}
	if s.cfg.Workers <= 0 {
		s.cfg.Workers = runtime.NumCPU()
	}
	s.journal = obs.NewJournal(cfg.JournalSize)
	if cfg.SampleEveryMS > 0 {
		s.sampler = obs.NewSampler(obs.SamplerConfig{
			Scrape: func() (map[string]float64, error) {
				return obs.ParseText(strings.NewReader(s.so.reg.Text()))
			},
			Specs:  defaultSamplerSpecs(),
			Every:  time.Duration(cfg.SampleEveryMS) * time.Millisecond,
			Window: cfg.SampleWindow,
		})
		s.sampler.Start()
	}
	return s
}

// Close stops the flight-recorder sampling goroutine (a no-op when the
// sampler is disabled). The service keeps serving; Close only exists
// so embedders don't leak the ticker goroutine.
func (s *Service) Close() error {
	if s.sampler != nil {
		s.sampler.Stop()
	}
	return nil
}

// Registry exposes the service's metric registry so embedders (wasnd)
// can serve the text exposition and register process-level collectors
// alongside the service families.
func (s *Service) Registry() *obs.Registry { return s.so.reg }

// Traces returns the sampled decision traces currently buffered,
// newest first (see Config.TraceSampleEvery).
func (s *Service) Traces() []TraceRecord { return s.so.ring.snapshot() }

// deployment is one registry entry. The substrates are built lazily on
// first use; mu serializes topology mutations against in-flight routes
// (the routers themselves are safe for concurrent reads of an unchanging
// network — see core.Router).
type deployment struct {
	name string
	spec Spec

	mu    sync.RWMutex
	epoch atomic.Uint64
	ready atomic.Bool
	dep   *topo.Deployment
	// The three substrates are retained so Fail can repair them in
	// place (core.RepairSubstrates); the routers hold pointers into
	// them and observe repairs without being rebuilt.
	model   *safety.Model
	bounds  *bound.Boundaries
	planarg *planar.Graph
	routers map[string]core.Router
	failed  map[topo.NodeID]bool
	// moved retains the last applied position per ever-moved node —
	// with Failed, the churn half of the deployment's portable state
	// (ExportState).
	moved map[topo.NodeID]topo.Move
	// restore, when non-nil on an unbuilt deployment, is replayed onto
	// the pristine network before the substrates build (RestoreState).
	restore *DeploymentState
	// repairs and rebuilds count topology mutations served by the
	// incremental path vs the from-scratch oracle, exported per
	// deployment in Stats so workload reports need no client-side math.
	repairs  atomic.Int64
	rebuilds atomic.Int64
}

// Deploy registers a named deployment spec. name may be empty, in which
// case the spec's default name is used. Registering the same name with
// the same spec is idempotent; a different spec under a live name is an
// error. The returned string is the effective name. Substrates are not
// built here — the first route (or an explicit Build) pays that cost.
func (s *Service) Deploy(name string, spec Spec) (string, error) {
	name, fresh, err := s.deploy(name, spec)
	if fresh {
		s.notifyState()
	}
	return name, err
}

func (s *Service) deploy(name string, spec Spec) (string, bool, error) {
	if spec.Model != topo.ModelIA && spec.Model != topo.ModelFA && spec.Model != topo.ModelOB {
		return "", false, fmt.Errorf("serve: unknown deployment model %v", spec.Model)
	}
	if spec.N <= 0 {
		return "", false, fmt.Errorf("serve: node count must be positive, got %d", spec.N)
	}
	if spec.Coverage < 0 || spec.Coverage >= 1 {
		return "", false, fmt.Errorf("serve: obstacle coverage must be in [0,1), got %v", spec.Coverage)
	}
	if name == "" {
		name = spec.DefaultName()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.deps[name]; ok {
		if d.spec != spec {
			return "", false, fmt.Errorf("serve: deployment %q already registered with spec %+v", name, d.spec)
		}
		return name, false, nil
	}
	s.deps[name] = &deployment{name: name, spec: spec}
	return name, true, nil
}

// Deployments lists the registered deployment names, sorted.
func (s *Service) Deployments() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.deps))
	for name := range s.deps {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func (s *Service) lookup(name string) (*deployment, error) {
	s.mu.RLock()
	d := s.deps[name]
	s.mu.RUnlock()
	if d == nil {
		return nil, fmt.Errorf("serve: unknown deployment %q (POST /deploy first)", name)
	}
	return d, nil
}

// Build forces the named deployment's substrates to be built now,
// returning the first build error if any. Concurrent Build/Route calls
// for the same deployment share one build via singleflight.
func (s *Service) Build(name string) error {
	d, err := s.lookup(name)
	if err != nil {
		return err
	}
	return s.ensureBuilt(d)
}

func (s *Service) ensureBuilt(d *deployment) error {
	if d.ready.Load() {
		return nil
	}
	return s.flight.Do(d.name, func() error {
		d.mu.Lock()
		defer d.mu.Unlock()
		if d.ready.Load() { // lost a forget/retry race; already built
			return nil
		}
		start := time.Now()
		cfg := topo.DefaultDeployConfig(d.spec.Model, d.spec.N, d.spec.Seed)
		if d.spec.Coverage > 0 {
			cfg.ObstacleCoverage = d.spec.Coverage
		}
		dep, err := topo.Deploy(cfg)
		if err != nil {
			return fmt.Errorf("serve: building deployment %q: %w: %w", d.name, ErrBuild, err)
		}
		d.dep = dep
		if rs := d.restore; rs != nil {
			// Restored deployment: replay the snapshot's positions and
			// dead set onto the pristine network now, so the from-scratch
			// build below runs over the origin's exact topology. Repair
			// and rebuild are differentially pinned equal, so the
			// resulting routes are bit-identical to the origin's.
			if len(rs.Moved) > 0 {
				if _, err := dep.Net.SetPositions(rs.Moved); err != nil {
					return fmt.Errorf("serve: restoring deployment %q: %w: %w", d.name, ErrBuild, err)
				}
				d.moved = make(map[topo.NodeID]topo.Move, len(rs.Moved))
				for _, m := range rs.Moved {
					d.moved[m.Node] = m
				}
			}
			if len(rs.Failed) > 0 {
				d.failed = make(map[topo.NodeID]bool, len(rs.Failed))
				for _, u := range rs.Failed {
					dep.Net.SetAlive(u, false)
					d.failed[u] = true
				}
			}
			d.epoch.Store(rs.Epoch)
			d.restore = nil
		}
		// The three substrates — safety model, BOUNDHOLE boundaries,
		// Gabriel graph — build concurrently (each also internally
		// parallel over GOMAXPROCS); the router set shares them.
		d.model, d.bounds, d.planarg = core.BuildSubstrates(dep.Net, true, true, true, nil)
		d.routers = s.buildRouters(dep.Net, d.model, d.bounds, d.planarg)
		s.builds.Inc()
		s.so.buildDur.With(d.name).Observe(time.Since(start).Microseconds())
		s.journal.Record(obs.Event{
			UnixMS:     time.Now().UnixMilli(),
			Kind:       obs.EventBuild,
			Deployment: d.name,
			Nodes:      d.spec.N,
			DurationUS: time.Since(start).Microseconds(),
		})
		d.ready.Store(true)
		return nil
	})
}

// buildRouters constructs the full router set over a network, mirroring
// the facade's Sim (wasn.NewSim) algorithm table.
func (s *Service) buildRouters(net *topo.Network, m *safety.Model, b *bound.Boundaries, g *planar.Graph) map[string]core.Router {
	gf := core.NewGF(net, b)
	gf.TTLFactor = s.cfg.TTLFactor
	lgf := core.NewLGF(net)
	lgf.TTLFactor = s.cfg.TTLFactor
	slgf := core.NewSLGF(net, m)
	slgf.TTLFactor = s.cfg.TTLFactor
	slgf2 := core.NewSLGF2(net, m, core.WithPlanarGraph(g))
	slgf2.TTLFactor = s.cfg.TTLFactor
	gpsr := core.NewGPSR(net, g)
	gpsr.TTLFactor = s.cfg.TTLFactor
	return map[string]core.Router{
		"GF":           gf,
		"LGF":          lgf,
		"SLGF":         slgf,
		"SLGF2":        slgf2,
		"GPSR":         gpsr,
		"Ideal-hops":   core.NewIdeal(net, core.IdealMinHop),
		"Ideal-length": core.NewIdeal(net, core.IdealMinLength),
	}
}

// Route answers one route query, consulting the cache first. The second
// return reports whether the result came from the cache.
//
// Cached results carry no Path: the cache stores only the aggregate
// outcome (delivered, hops, length, phase counts), which keeps cache
// memory flat and lets the batch engine route into reused buffers.
// Result.Hops and the rest remain valid either way; callers that need
// the traveled path of a possibly cached pair use the HTTP API's
// path:true (which computes a fresh route) or a Router directly.
func (s *Service) Route(deployment, algorithm string, src, dst topo.NodeID) (core.Result, bool, error) {
	return s.route(deployment, algorithm, src, dst, nil, false, nil)
}

// RouteTraced computes one route (bypassing the cache read; the result
// is still cached) and returns the hop-by-hop decision trace alongside
// the result — the service method behind /route with trace:true.
func (s *Service) RouteTraced(deployment, algorithm string, src, dst topo.NodeID) (core.Result, TraceRecord, error) {
	rec := trace.Acquire()
	defer trace.Release(rec)
	res, _, err := s.route(deployment, algorithm, src, dst, nil, true, rec)
	if err != nil {
		return core.Result{}, TraceRecord{}, err
	}
	s.so.traces.Inc()
	return res, buildTraceRecord(deployment, algorithm, src, dst, res, rec), nil
}

// route is the shared single-route path behind Route, the batch
// engine, and the HTTP handlers. pathBuf, when non-nil, is handed to
// Router.RouteInto so the traveled path is appended into it (batch
// workers pass one reusable buffer each, making a warm batch
// allocation-free per route). skipCacheRead bypasses the cache lookup
// — for callers that need the full path even for cached pairs — while
// still caching the computed result for later pathless readers. rec,
// when non-nil, receives every forwarding decision of the computed
// route (callers passing rec also pass skipCacheRead, since a cache
// hit computes no hops to observe).
func (s *Service) route(deployment, algorithm string, src, dst topo.NodeID, pathBuf []topo.NodeID, skipCacheRead bool, rec *trace.Recorder) (core.Result, bool, error) {
	d, err := s.lookup(deployment)
	if err != nil {
		return core.Result{}, false, err
	}
	// Validate before ensureBuilt: a garbage request must not trigger
	// the expensive lazy substrate build. The node range is known from
	// the spec alone.
	if src < 0 || dst < 0 || int(src) >= d.spec.N || int(dst) >= d.spec.N {
		return core.Result{}, false, fmt.Errorf("serve: node out of range [0,%d): src=%d dst=%d", d.spec.N, src, dst)
	}
	if !knownAlgorithm(algorithm) {
		return core.Result{}, false, fmt.Errorf("serve: unknown algorithm %q (want one of %v)", algorithm, Algorithms())
	}
	if err := s.ensureBuilt(d); err != nil {
		return core.Result{}, false, err
	}

	d.mu.RLock()
	defer d.mu.RUnlock()
	r := d.routers[algorithm]

	key := cacheKey{dep: d.name, epoch: d.epoch.Load(), alg: algorithm, src: src, dst: dst}
	if s.cache != nil && !skipCacheRead {
		if res, hit := s.cache.get(key); hit {
			s.routes.Inc()
			return res, true, nil
		}
	}
	var res core.Result
	switch {
	case rec != nil:
		res = routeObserved(r, src, dst, pathBuf, rec)
	case s.so.sampleTrace():
		srec := trace.Acquire()
		res = routeObserved(r, src, dst, pathBuf, srec)
		s.so.ring.push(buildTraceRecord(d.name, algorithm, src, dst, res, srec))
		s.so.traces.Inc()
		trace.Release(srec)
	default:
		res = r.RouteInto(src, dst, pathBuf)
	}
	s.so.recordComputed(algorithm, res)
	if res.Delivered && !isIdealAlgorithm(algorithm) && s.so.sampleStretch() {
		// One pathless reference BFS per sample (pooled scratch, no
		// route materialized — the comparison only needs the count);
		// still under the RLock, so it runs against the same topology
		// epoch. Its cost lands in the dedicated duration series.
		start := time.Now()
		ihops := topo.HopCount(d.dep.Net, src, dst)
		s.so.stretchDur.Observe(time.Since(start).Microseconds())
		if ihops > 0 {
			s.so.observeStretch(algorithm, res.Hops(), ihops)
		}
	}
	if s.cache != nil {
		// Still under RLock: the epoch in key cannot have been bumped,
		// so the entry matches the topology it was computed on. put
		// strips the path, so caching never retains pathBuf.
		s.cache.put(key, res)
	}
	s.routes.Inc()
	return res, false, nil
}

// routeObserved routes with the decision recorder attached. Every
// router in the set implements core.ObservedRouter; the fallback keeps
// a hypothetical future router without the extension working, minus
// tracing.
func routeObserved(r core.Router, src, dst topo.NodeID, pathBuf []topo.NodeID, rec *trace.Recorder) core.Result {
	if or, ok := r.(core.ObservedRouter); ok {
		return or.RouteObserved(src, dst, pathBuf, rec)
	}
	return r.RouteInto(src, dst, pathBuf)
}

// isIdealAlgorithm reports whether name is one of the omniscient
// reference routers (their hop stretch is 1 by construction).
func isIdealAlgorithm(name string) bool {
	return strings.HasPrefix(name, "Ideal")
}

// Fail marks the given nodes dead in the named deployment, repairs all
// three substrates incrementally in place (core.RepairSubstrates: the
// safety relabeling is seeded from the failure neighborhood, BOUNDHOLE
// re-traces only boundary walks through it, the Gabriel graph
// recomputes only the incident rows), and invalidates all cached routes
// of the deployment by bumping its epoch. The repaired substrates are
// identical to a from-scratch build over the damaged topology — the
// Config.FullRebuildOnFail oracle path — so every router serves exactly
// what a fresh Sim would.
func (s *Service) Fail(deployment string, nodes []topo.NodeID) error {
	return s.FailTagged(deployment, nodes, "")
}

// FailTagged is Fail carrying the triggering request's ID into the
// flight-recorder journal entry (empty for untagged callers), so
// churn events in /events are attributable to the /fail request that
// caused them.
func (s *Service) FailTagged(deployment string, nodes []topo.NodeID, requestID string) error {
	changed, err := s.failTagged(deployment, nodes, requestID)
	if changed {
		s.notifyState()
	}
	return err
}

func (s *Service) failTagged(deployment string, nodes []topo.NodeID, requestID string) (bool, error) {
	d, err := s.lookup(deployment)
	if err != nil {
		return false, err
	}
	if err := s.ensureBuilt(d); err != nil {
		return false, err
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	net := d.dep.Net
	fresh := nodes[:0:0]
	inCall := make(map[topo.NodeID]bool, len(nodes))
	for _, u := range nodes {
		if u < 0 || int(u) >= net.N() {
			return false, fmt.Errorf("serve: node out of range [0,%d): %d", net.N(), u)
		}
		if !d.failed[u] && !inCall[u] {
			inCall[u] = true
			fresh = append(fresh, u)
		}
	}
	if len(fresh) == 0 {
		return false, nil
	}
	if d.failed == nil {
		d.failed = make(map[topo.NodeID]bool)
	}
	for _, u := range fresh {
		net.SetAlive(u, false)
		d.failed[u] = true
	}
	s.applyTopologyChange(d, fresh, false, obs.EventFail, requestID, len(nodes))
	s.failures.Add(int64(len(fresh)))
	return true, nil
}

// Revive brings previously failed nodes of the named deployment back to
// life — the other half of a churn schedule. Like Fail it repairs the
// substrates in place (revival takes the safety model's full-relabel
// path, see core.RepairSubstrates) and invalidates the deployment's
// cached routes. Reviving a node that is not dead is a no-op.
func (s *Service) Revive(deployment string, nodes []topo.NodeID) error {
	return s.ReviveTagged(deployment, nodes, "")
}

// ReviveTagged is Revive carrying the triggering request's ID into the
// flight-recorder journal entry (see FailTagged).
func (s *Service) ReviveTagged(deployment string, nodes []topo.NodeID, requestID string) error {
	changed, err := s.reviveTagged(deployment, nodes, requestID)
	if changed {
		s.notifyState()
	}
	return err
}

func (s *Service) reviveTagged(deployment string, nodes []topo.NodeID, requestID string) (bool, error) {
	d, err := s.lookup(deployment)
	if err != nil {
		return false, err
	}
	if err := s.ensureBuilt(d); err != nil {
		return false, err
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	net := d.dep.Net
	fresh := nodes[:0:0]
	inCall := make(map[topo.NodeID]bool, len(nodes))
	for _, u := range nodes {
		if u < 0 || int(u) >= net.N() {
			return false, fmt.Errorf("serve: node out of range [0,%d): %d", net.N(), u)
		}
		if d.failed[u] && !inCall[u] {
			inCall[u] = true
			fresh = append(fresh, u)
		}
	}
	if len(fresh) == 0 {
		return false, nil
	}
	for _, u := range fresh {
		net.SetAlive(u, true)
		delete(d.failed, u)
	}
	s.applyTopologyChange(d, fresh, false, obs.EventRevive, requestID, len(nodes))
	s.revivals.Add(int64(len(fresh)))
	return true, nil
}

// Move relocates nodes of the named deployment under live traffic: the
// position batch is applied atomically (topo.Network.SetPositions), all
// three substrates are repaired in place over the returned geometric
// dirty set (core.RepairSubstratesMoved — identical to a from-scratch
// build on the moved topology, the same differential contract as Fail),
// and the deployment's cached routes are invalidated. Moving a dead node
// is allowed; liveness is orthogonal to position.
func (s *Service) Move(deployment string, moves []topo.Move) error {
	return s.MoveTagged(deployment, moves, "")
}

// MoveTagged is Move carrying the triggering request's ID into the
// flight-recorder journal entry (see FailTagged).
func (s *Service) MoveTagged(deployment string, moves []topo.Move, requestID string) error {
	changed, err := s.moveTagged(deployment, moves, requestID)
	if changed {
		s.notifyState()
	}
	return err
}

func (s *Service) moveTagged(deployment string, moves []topo.Move, requestID string) (bool, error) {
	d, err := s.lookup(deployment)
	if err != nil {
		return false, err
	}
	if err := s.ensureBuilt(d); err != nil {
		return false, err
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	net := d.dep.Net
	for _, m := range moves {
		if m.Node < 0 || int(m.Node) >= net.N() {
			return false, fmt.Errorf("serve: node out of range [0,%d): %d", net.N(), m.Node)
		}
	}
	if len(moves) == 0 {
		return false, nil
	}
	dirty, err := net.SetPositions(moves)
	if err != nil {
		return false, err
	}
	if d.moved == nil {
		d.moved = make(map[topo.NodeID]topo.Move, len(moves))
	}
	for _, m := range moves {
		d.moved[m.Node] = m
	}
	s.applyTopologyChange(d, dirty, true, obs.EventMove, requestID, len(moves))
	s.moves.Add(int64(len(moves)))
	return true, nil
}

// applyTopologyChange repairs (or, under the FullRebuildOnFail oracle,
// rebuilds) the substrates after the liveness or positions of changed
// nodes mutated (SetAlive/SetPositions already applied; moved selects
// the position-repair path), bumps the deployment epoch, purges its
// cached routes, and journals the whole event — kind, batch size,
// dirty-set size, per-substrate repair spans, the resulting epoch, the
// purge count, and the triggering request ID. Callers hold the
// deployment write lock.
func (s *Service) applyTopologyChange(d *deployment, changed []topo.NodeID, moved bool, kind obs.EventKind, requestID string, batch int) {
	net := d.dep.Net
	ev := obs.Event{
		UnixMS:     time.Now().UnixMilli(),
		Kind:       kind,
		Deployment: d.name,
		RequestID:  requestID,
		Nodes:      batch,
		Dirty:      len(changed),
	}
	start := time.Now()
	if s.cfg.FullRebuildOnFail {
		d.model, d.bounds, d.planarg = core.BuildSubstrates(net, true, true, true, nil)
		d.routers = s.buildRouters(net, d.model, d.bounds, d.planarg)
		d.rebuilds.Add(1)
		ev.Rebuild = true
		s.so.repairDur.With(d.name, "rebuild").Observe(time.Since(start).Microseconds())
	} else {
		// In-place repair: the routers keep their substrate pointers.
		var spans core.SubstrateTimings
		if moved {
			spans = core.RepairSubstratesMoved(d.model, d.bounds, d.planarg, changed)
		} else {
			spans = core.RepairSubstrates(d.model, d.bounds, d.planarg, changed)
		}
		d.repairs.Add(1)
		s.so.observeSubstrates(spans)
		ev.SafetyUS = spans.Safety.Microseconds()
		ev.BoundUS = spans.Bound.Microseconds()
		ev.PlanarUS = spans.Planar.Microseconds()
		s.so.repairDur.With(d.name, "repair").Observe(time.Since(start).Microseconds())
	}
	ev.DurationUS = time.Since(start).Microseconds()
	ev.Epoch = d.epoch.Add(1)
	if s.cache != nil {
		ev.Purged = s.cache.purgeDeployment(d.name)
	}
	s.journal.Record(ev)
}

// Failed returns the dead nodes of the named deployment, sorted.
func (s *Service) Failed(deployment string) ([]topo.NodeID, error) {
	d, err := s.lookup(deployment)
	if err != nil {
		return nil, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]topo.NodeID, 0, len(d.failed))
	for u := range d.failed {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// NodeCount returns the node count of the named deployment, building it
// if necessary.
func (s *Service) NodeCount(deployment string) (int, error) {
	d, err := s.lookup(deployment)
	if err != nil {
		return 0, err
	}
	if err := s.ensureBuilt(d); err != nil {
		return 0, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.dep.Net.N(), nil
}

// Algorithms lists the algorithm names every deployment serves, in the
// figure-legend order of the facade.
func Algorithms() []string {
	return []string{"GF", "LGF", "SLGF", "SLGF2", "GPSR", "Ideal-hops", "Ideal-length"}
}

func knownAlgorithm(name string) bool {
	for _, a := range Algorithms() {
		if a == name {
			return true
		}
	}
	return false
}

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	// ReplicaID identifies the process in a sharded fleet (empty for a
	// standalone server), so aggregated fleet stats stay attributable.
	ReplicaID      string `json:"replica_id,omitempty"`
	Deployments    int    `json:"deployments"`
	Builds         int64  `json:"builds"`
	Routes         int64  `json:"routes"`
	Batches        int64  `json:"batches"`
	FailedNodes    int64  `json:"failed_nodes"`
	RevivedNodes   int64  `json:"revived_nodes"`
	MovedNodes     int64  `json:"moved_nodes"`
	CacheHits      int64  `json:"cache_hits"`
	CacheMisses    int64  `json:"cache_misses"`
	CacheEvictions int64  `json:"cache_evictions"`
	CachePurged    int64  `json:"cache_purged"`
	CacheEntries   int    `json:"cache_entries"`
	// CacheHitRate is hits/(hits+misses), 0 with no lookups yet —
	// derived server-side so load reports need no client math.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// PerDeployment breaks the registry down, sorted by name.
	PerDeployment []DeploymentStats `json:"per_deployment,omitempty"`
}

// DeploymentStats is the per-deployment slice of Stats: the epoch (how
// many topology mutations it absorbed), the current dead-node count,
// and how those mutations were served — incremental repairs vs
// full-rebuild oracle passes.
type DeploymentStats struct {
	Name        string `json:"name"`
	Ready       bool   `json:"ready"`
	Epoch       uint64 `json:"epoch"`
	FailedNodes int    `json:"failed_nodes"`
	Repairs     int64  `json:"repairs"`
	Rebuilds    int64  `json:"rebuilds"`
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	s.mu.RLock()
	deps := make([]*deployment, 0, len(s.deps))
	for _, d := range s.deps {
		deps = append(deps, d)
	}
	s.mu.RUnlock()
	st := Stats{
		ReplicaID:    s.cfg.ReplicaID,
		Deployments:  len(deps),
		Builds:       s.builds.Load(),
		Routes:       s.routes.Load(),
		Batches:      s.batches.Load(),
		FailedNodes:  s.failures.Load(),
		RevivedNodes: s.revivals.Load(),
		MovedNodes:   s.moves.Load(),
	}
	if s.cache != nil {
		cs := s.cache.stats()
		st.CacheHits = cs.hits
		st.CacheMisses = cs.misses
		st.CacheEvictions = cs.evicted
		st.CachePurged = cs.purged
		st.CacheEntries = s.cache.len()
		if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
			st.CacheHitRate = float64(st.CacheHits) / float64(lookups)
		}
	}
	for _, d := range deps {
		d.mu.RLock()
		failed := len(d.failed)
		d.mu.RUnlock()
		st.PerDeployment = append(st.PerDeployment, DeploymentStats{
			Name:        d.name,
			Ready:       d.ready.Load(),
			Epoch:       d.epoch.Load(),
			FailedNodes: failed,
			Repairs:     d.repairs.Load(),
			Rebuilds:    d.rebuilds.Load(),
		})
	}
	sort.Slice(st.PerDeployment, func(i, j int) bool {
		return st.PerDeployment[i].Name < st.PerDeployment[j].Name
	})
	return st
}
