package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/straightpath/wasn/internal/obs"
	"github.com/straightpath/wasn/internal/topo"
	"github.com/straightpath/wasn/internal/trace"
)

// The exposition must parse strictly and carry every family the
// workload engine and the CI gate rely on, with values that agree with
// Stats — the registry is the single source of truth for both views.
func TestMetricsExpositionAndStatsAgree(t *testing.T) {
	s, name := newTestService(t, Config{StretchSampleEvery: 1, TraceSampleEvery: 2})
	pairs := alivePairs(t, s, name, 8)
	for _, alg := range []string{"SLGF2", "LGF", "Ideal-hops"} {
		for _, p := range pairs {
			if _, _, err := s.Route(name, alg, p[0], p[1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Repeat one pair: a cache hit must not add computed-route samples.
	if _, cached, err := s.Route(name, "SLGF2", pairs[0][0], pairs[0][1]); err != nil || !cached {
		t.Fatalf("expected cache hit, cached=%v err=%v", cached, err)
	}
	if err := s.Fail(name, []topo.NodeID{pairs[7][0]}); err != nil {
		t.Fatal(err)
	}

	samples, err := obs.ParseText(strings.NewReader(s.Registry().Text()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	missing := obs.MissingSeries(samples, []string{
		"wasn_routes_total",
		"wasn_routes_computed_total",
		"wasn_route_hops",
		"wasn_route_phase_hops_total",
		"wasn_route_hop_stretch_hundredths",
		"wasn_route_cache_hits_total",
		"wasn_route_cache_misses_total",
		"wasn_route_cache_entries",
		"wasn_substrate_builds_total",
		"wasn_failed_nodes_total",
		"wasn_repair_duration_us",
		"wasn_build_duration_us",
		"wasn_deployments",
		"wasn_traces_recorded_total",
	})
	if len(missing) > 0 {
		t.Fatalf("exposition missing families: %v", missing)
	}

	st := s.Stats()
	if got := samples["wasn_routes_total"]; got != float64(st.Routes) {
		t.Errorf("wasn_routes_total = %v, Stats.Routes = %d", got, st.Routes)
	}
	if got := samples["wasn_route_cache_hits_total"]; got != float64(st.CacheHits) {
		t.Errorf("wasn_route_cache_hits_total = %v, Stats.CacheHits = %d", got, st.CacheHits)
	}
	if got := samples["wasn_failed_nodes_total"]; got != float64(st.FailedNodes) {
		t.Errorf("wasn_failed_nodes_total = %v, Stats.FailedNodes = %d", got, st.FailedNodes)
	}
	if got := samples["wasn_substrate_builds_total"]; got != float64(st.Builds) {
		t.Errorf("wasn_substrate_builds_total = %v, Stats.Builds = %d", got, st.Builds)
	}
	// Computed-route accounting: SLGF2 computed exactly len(pairs)
	// routes (the repeat was a hit), every phase hop landed in the
	// phase series, and the stretch histogram sampled every delivered
	// non-ideal route.
	slgf2 := `wasn_routes_computed_total{algorithm="SLGF2",outcome="delivered"}`
	if samples[slgf2] == 0 {
		t.Errorf("no delivered SLGF2 routes in %v", samples)
	}
	if samples[`wasn_route_hop_stretch_hundredths_count{algorithm="SLGF2"}`] == 0 {
		t.Error("stretch sampling recorded nothing for SLGF2")
	}
	// The ideal reference is never stretch-sampled (stretch 1 by
	// construction).
	if got := samples[`wasn_route_hop_stretch_hundredths_count{algorithm="Ideal-hops"}`]; got != 0 {
		t.Errorf("ideal router was stretch-sampled %v times", got)
	}
}

// Stretch is quoted in hundredths: every sample must be >= 100 (no
// algorithm beats the minimum-hop ideal) and the ideal lower bound
// keeps the histogram sum consistent with its count.
func TestStretchLowerBound(t *testing.T) {
	s, name := newTestService(t, Config{StretchSampleEvery: 1})
	pairs := alivePairs(t, s, name, 10)
	for _, p := range pairs {
		if _, _, err := s.Route(name, "GPSR", p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	samples, err := obs.ParseText(strings.NewReader(s.Registry().Text()))
	if err != nil {
		t.Fatal(err)
	}
	count := samples[`wasn_route_hop_stretch_hundredths_count{algorithm="GPSR"}`]
	sum := samples[`wasn_route_hop_stretch_hundredths_sum{algorithm="GPSR"}`]
	if count == 0 {
		t.Fatal("no stretch samples recorded")
	}
	if sum < 100*count {
		t.Errorf("mean stretch %v < 100: an algorithm beat the ideal", sum/count)
	}
}

// An explicitly traced route must replay the exact hop sequence the
// trace package records against the same router — and the served path
// must match the trace's events hop for hop.
func TestRouteTracedMatchesTracePackage(t *testing.T) {
	s := New(Config{})
	name, err := s.Deploy("", Spec{Model: topo.ModelFA, N: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pairs := alivePairs(t, s, name, 4)
	d, err := s.lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms() {
		p := pairs[1]
		res, tr, err := s.RouteTraced(name, alg, p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if tr.Algorithm != alg || tr.Src != p[0] || tr.Dst != p[1] {
			t.Fatalf("%s: trace metadata wrong: %+v", alg, tr)
		}
		if len(tr.Events) != res.Hops() {
			t.Fatalf("%s: %d events, %d hops", alg, len(tr.Events), res.Hops())
		}
		// Differential: drive the router directly with a Recorder (the
		// trace package's observer) and require the same hop sequence.
		d.mu.RLock()
		r := d.routers[alg]
		d.mu.RUnlock()
		rec := trace.Acquire()
		ref := routeObserved(r, p[0], p[1], nil, rec)
		if ref.Hops() != res.Hops() {
			t.Fatalf("%s: reference route disagrees: %d vs %d hops", alg, ref.Hops(), res.Hops())
		}
		for i, e := range rec.Events() {
			got := tr.Events[i]
			if got.Seq != e.Seq || got.From != e.From || got.To != e.To || got.Phase != e.Phase.String() {
				t.Fatalf("%s: event %d = %+v, reference %+v", alg, i, got, e)
			}
		}
		trace.Release(rec)
	}
}

// The trace:true HTTP path: response carries the decision trace, and
// its hop sequence equals the served path.
func TestHTTPRouteTrace(t *testing.T) {
	s, name := newTestService(t, Config{})
	pairs := alivePairs(t, s, name, 2)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, _ := json.Marshal(map[string]any{
		"deployment": name, "algorithm": "SLGF2",
		"src": pairs[0][0], "dst": pairs[0][1],
		"path": true, "trace": true,
	})
	resp, err := http.Post(srv.URL+"/route", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out tracedRouteResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Delivered || len(out.Trace.Events) != out.Hops {
		t.Fatalf("trace response inconsistent: %+v", out)
	}
	if len(out.Path) != out.Hops+1 {
		t.Fatalf("path length %d for %d hops", len(out.Path), out.Hops)
	}
	for i, e := range out.Trace.Events {
		if e.From != out.Path[i] || e.To != out.Path[i+1] {
			t.Fatalf("event %d (%d->%d) disagrees with path %v", i, e.From, e.To, out.Path)
		}
	}
}

// Sampled tracing fills the ring newest-first and caps at the
// configured size.
func TestTraceSamplingRing(t *testing.T) {
	s, name := newTestService(t, Config{TraceSampleEvery: 1, TraceRingSize: 3})
	pairs := alivePairs(t, s, name, 5)
	for _, p := range pairs {
		if _, _, err := s.Route(name, "LGF", p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	traces := s.Traces()
	if len(traces) != 3 {
		t.Fatalf("ring holds %d traces, want 3", len(traces))
	}
	// Newest first: the last routed pair leads.
	if traces[0].Src != pairs[4][0] || traces[0].Dst != pairs[4][1] {
		t.Errorf("newest trace is %d->%d, want %d->%d",
			traces[0].Src, traces[0].Dst, pairs[4][0], pairs[4][1])
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out tracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 3 {
		t.Fatalf("/traces returned %d, want 3", len(out.Traces))
	}
}

// The /metrics endpoint serves a parseable exposition with the right
// content type, and the middleware's own series cover it.
func TestHTTPMetricsEndpoint(t *testing.T) {
	s, name := newTestService(t, Config{})
	pairs := alivePairs(t, s, name, 2)
	if _, _, err := s.Route(name, "GF", pairs[0][0], pairs[0][1]); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	// Scrape twice: the second scrape must show the first one's request
	// in the endpoint series.
	if _, err := http.Get(srv.URL + "/metrics"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("served exposition does not parse: %v", err)
	}
	if samples[`wasn_http_requests_total{endpoint="/metrics"}`] < 1 {
		t.Error("middleware did not count the /metrics request")
	}
}

// Registry scrapes, sampled traces, routes, and topology mutations all
// run concurrently without racing (run under -race).
func TestConcurrentScrapeUnderLoad(t *testing.T) {
	s, name := newTestService(t, Config{TraceSampleEvery: 3, StretchSampleEvery: 5})
	pairs := alivePairs(t, s, name, 8)
	const loops = 50
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			algs := Algorithms()
			for i := 0; i < loops; i++ {
				p := pairs[(i+w)%len(pairs)]
				if _, _, err := s.Route(name, algs[(i+w)%len(algs)], p[0], p[1]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < loops; i++ {
			if _, err := obs.ParseText(strings.NewReader(s.Registry().Text())); err != nil {
				t.Errorf("scrape %d: %v", i, err)
				return
			}
			s.Traces()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < loops/5; i++ {
			u := pairs[0][0]
			if err := s.Fail(name, []topo.NodeID{u}); err != nil {
				t.Error(err)
				return
			}
			if err := s.Revive(name, []topo.NodeID{u}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}
