package serve

import (
	"fmt"
	"testing"

	"github.com/straightpath/wasn/internal/core"
	"github.com/straightpath/wasn/internal/topo"
)

func key(dep string, epoch uint64, src, dst int) cacheKey {
	return cacheKey{dep: dep, epoch: epoch, alg: "SLGF2", src: topo.NodeID(src), dst: topo.NodeID(dst)}
}

func TestCacheHitMissCounters(t *testing.T) {
	c := newRouteCache(8, 1)
	k := key("d", 0, 1, 2)
	if _, ok := c.get(k); ok {
		t.Fatal("get on empty cache hit")
	}
	c.put(k, core.Result{Delivered: true, Length: 42})
	res, ok := c.get(k)
	if !ok || res.Length != 42 {
		t.Fatalf("get = %+v, %v; want cached result", res, ok)
	}
	if h, m := c.stats().hits, c.stats().misses; h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d; want 1, 1", h, m)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newRouteCache(3, 1)
	for i := 0; i < 3; i++ {
		c.put(key("d", 0, i, i+1), core.Result{Length: float64(i)})
	}
	// Touch entry 0 so entry 1 is the LRU victim.
	if _, ok := c.get(key("d", 0, 0, 1)); !ok {
		t.Fatal("expected entry 0 present")
	}
	c.put(key("d", 0, 9, 10), core.Result{})
	if _, ok := c.get(key("d", 0, 1, 2)); ok {
		t.Fatal("LRU entry 1 survived eviction")
	}
	if _, ok := c.get(key("d", 0, 0, 1)); !ok {
		t.Fatal("recently used entry 0 was evicted")
	}
	if c.stats().evicted != 1 {
		t.Fatalf("evicted = %d; want 1", c.stats().evicted)
	}
}

func TestCacheEpochMakesEntriesUnreachable(t *testing.T) {
	c := newRouteCache(8, 2)
	c.put(key("d", 0, 1, 2), core.Result{Delivered: true})
	if _, ok := c.get(key("d", 1, 1, 2)); ok {
		t.Fatal("epoch-1 get hit an epoch-0 entry")
	}
}

func TestCachePurgeDeployment(t *testing.T) {
	c := newRouteCache(64, 4)
	for i := 0; i < 10; i++ {
		c.put(key("a", 0, i, i+1), core.Result{})
		c.put(key("b", 0, i, i+1), core.Result{})
	}
	c.purgeDeployment("a")
	if got := c.len(); got != 10 {
		t.Fatalf("len after purge = %d; want 10", got)
	}
	if c.stats().purged != 10 {
		t.Fatalf("purged = %d; want 10", c.stats().purged)
	}
	for i := 0; i < 10; i++ {
		if _, ok := c.get(key("a", 0, i, i+1)); ok {
			t.Fatalf("purged entry a/%d still present", i)
		}
		if _, ok := c.get(key("b", 0, i, i+1)); !ok {
			t.Fatalf("unrelated entry b/%d was purged", i)
		}
	}
}

func TestCacheShardSpread(t *testing.T) {
	c := newRouteCache(1024, 8)
	for i := 0; i < 256; i++ {
		c.put(key(fmt.Sprintf("d%d", i%4), 0, i, i+1), core.Result{})
	}
	occupied := 0
	for _, sh := range c.shards {
		if sh.ll.Len() > 0 {
			occupied++
		}
	}
	if occupied < 2 {
		t.Fatalf("256 keys landed in %d shard(s); sharding is not spreading", occupied)
	}
}
