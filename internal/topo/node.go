// Package topo models the wireless ad-hoc sensor network (WASN) of the
// paper's §3: a set of sensor nodes with identical communication radius in
// a rectangular deployment field, represented as a simple undirected graph
// G = (V, E) where an edge connects every pair of nodes within range of
// each other (the unit-disk model).
//
// The package also provides the two deployment models of §5: the ideal
// uniform model (IA), where holes arise only from sparse deployment, and
// the forbidden-area model (FA), where randomly placed no-deploy regions
// create large irregular holes.
//
// Adjacency is stored in a flat CSR layout with precomputed per-edge
// bearings (see Network) and is built in parallel across GOMAXPROCS.
// Neighbors aliases internal storage on the failure-free hot path —
// callers must treat returned slices as immutable; see the Network and
// Neighbors documentation for the exact aliasing/ownership rules. The
// package's graph searches run over sync.Pool scratch, so Connected and
// the shortest-path queries are allocation-free in steady state.
package topo

import (
	"fmt"

	"github.com/straightpath/wasn/internal/geom"
)

// NodeID identifies a node; it is the node's index in Network.Nodes.
type NodeID int

// NoNode is the sentinel for "no node" (e.g. no successor found).
const NoNode NodeID = -1

// Node is one sensor.
type Node struct {
	ID  NodeID
	Pos geom.Point
	// Alive is false after failure injection; dead nodes drop out of
	// every adjacency query. Mutate it only through Network.SetAlive —
	// the adjacency fast path keys off a network-wide dead counter that
	// direct writes to this field would leave stale.
	Alive bool
}

// String implements fmt.Stringer.
func (n Node) String() string {
	state := "up"
	if !n.Alive {
		state = "down"
	}
	return fmt.Sprintf("n%d%v[%s]", n.ID, n.Pos, state)
}
