package topo

import (
	"math"
	"math/rand/v2"
	"testing"
)

func deployNet(t testing.TB, model DeployModel, n int, seed uint64) *Network {
	t.Helper()
	dep, err := Deploy(DefaultDeployConfig(model, n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return dep.Net
}

// checkAStarAgainstDijkstra asserts the A* path is a valid path of the
// same minimum total Euclidean length as the Dijkstra reference for one
// pair, returning the (possibly regrown) scratch buffers.
func checkAStarAgainstDijkstra(t *testing.T, net *Network, src, dst NodeID, abuf, dbuf []NodeID) ([]NodeID, []NodeID) {
	t.Helper()
	a := AStarEuclideanPathInto(net, src, dst, abuf)
	d := ShortestEuclideanPathInto(net, src, dst, dbuf)
	if (a == nil) != (d == nil) {
		t.Fatalf("%d->%d: A* reachable = %v, Dijkstra reachable = %v", src, dst, a != nil, d != nil)
	}
	if a == nil {
		return abuf, dbuf
	}
	if a[0] != src || a[len(a)-1] != dst {
		t.Fatalf("%d->%d: A* path endpoints %d..%d", src, dst, a[0], a[len(a)-1])
	}
	for i := 1; i < len(a); i++ {
		if !net.InRange(a[i-1], a[i]) {
			t.Fatalf("%d->%d: A* hop %d-%d out of radio range", src, dst, a[i-1], a[i])
		}
		if !net.Alive(a[i]) {
			t.Fatalf("%d->%d: A* path visits dead node %d", src, dst, a[i])
		}
	}
	la, ld := net.PathLength(a), net.PathLength(d)
	// Equally-short optima may differ as node sequences; their summed
	// lengths then agree up to float summation order.
	if math.Abs(la-ld) > 1e-9*math.Max(1, ld) {
		t.Fatalf("%d->%d: A* length %.12f, Dijkstra length %.12f (paths %v vs %v)", src, dst, la, ld, a, d)
	}
	return a[:0], d[:0]
}

// TestAStarMatchesDijkstra pins the Ideal-length rewrite: A* over the
// Euclidean admissible heuristic must return minimum-length paths of
// exactly the Dijkstra reference's total length, on IA and FA
// deployments, before and after random node failures.
func TestAStarMatchesDijkstra(t *testing.T) {
	cases := []struct {
		model DeployModel
		n     int
		seed  uint64
	}{
		{ModelIA, 240, 5},
		{ModelFA, 300, 19},
	}
	for _, tc := range cases {
		t.Run(tc.model.String(), func(t *testing.T) {
			net := deployNet(t, tc.model, tc.n, tc.seed)
			pairs := RoutablePairs(net, 48, 30)
			if len(pairs) == 0 {
				t.Fatal("no routable pairs")
			}
			abuf := make([]NodeID, 0, net.N())
			dbuf := make([]NodeID, 0, net.N())
			for _, p := range pairs {
				abuf, dbuf = checkAStarAgainstDijkstra(t, net, p[0], p[1], abuf, dbuf)
			}
			// Knock out a random tenth of the nodes and re-check: the
			// search must honor the liveness bitset, and pairs that
			// became unreachable must be nil on both sides.
			rng := rand.New(rand.NewPCG(tc.seed, 0x9e3779b97f4a7c15))
			for k := 0; k < net.N()/10; k++ {
				net.SetAlive(NodeID(rng.IntN(net.N())), false)
			}
			for _, p := range pairs {
				abuf, dbuf = checkAStarAgainstDijkstra(t, net, p[0], p[1], abuf, dbuf)
			}
		})
	}
}

// TestAStarEdgeCases pins the degenerate inputs: self-routes, dead
// endpoints, and unreachable destinations.
func TestAStarEdgeCases(t *testing.T) {
	net := deployNet(t, ModelFA, 200, 11)
	u := NodeID(0)
	if got := AStarEuclideanPathInto(net, u, u, nil); len(got) != 1 || got[0] != u {
		t.Errorf("self-route = %v, want [%d]", got, u)
	}
	if got := HopCount(net, u, u); got != 0 {
		t.Errorf("HopCount(self) = %d, want 0", got)
	}
	pairs := RoutablePairs(net, 1, 30)
	if len(pairs) == 0 {
		t.Fatal("no routable pair")
	}
	src, dst := pairs[0][0], pairs[0][1]
	net.SetAlive(dst, false)
	if got := AStarEuclideanPathInto(net, src, dst, nil); got != nil {
		t.Errorf("path to dead node = %v, want nil", got)
	}
	if got := HopCount(net, src, dst); got != -1 {
		t.Errorf("HopCount to dead node = %d, want -1", got)
	}
	net.SetAlive(dst, true)
	// Isolate dst by killing its whole neighborhood.
	for _, v := range net.Neighbors(dst) {
		net.SetAlive(v, false)
	}
	if src == dst || net.InRange(src, dst) {
		t.Skip("pair too close to isolate")
	}
	if got := AStarEuclideanPathInto(net, src, dst, nil); got != nil {
		t.Errorf("path to isolated node = %v, want nil", got)
	}
	if got := HopCount(net, src, dst); got != -1 {
		t.Errorf("HopCount to isolated node = %d, want -1", got)
	}
}

// TestHopCountMatchesBFSPath pins the pathless BFS against the
// path-materializing one: HopCount must equal len(path)-1 everywhere
// ShortestHopPathInto finds a path.
func TestHopCountMatchesBFSPath(t *testing.T) {
	net := deployNet(t, ModelFA, 300, 23)
	pairs := RoutablePairs(net, 48, 20)
	if len(pairs) == 0 {
		t.Fatal("no routable pairs")
	}
	buf := make([]NodeID, 0, net.N())
	for _, p := range pairs {
		path := ShortestHopPathInto(net, p[0], p[1], buf)
		if path == nil {
			t.Fatalf("%d->%d: routable pair has no hop path", p[0], p[1])
		}
		if got, want := HopCount(net, p[0], p[1]), len(path)-1; got != want {
			t.Fatalf("%d->%d: HopCount = %d, BFS path has %d hops", p[0], p[1], got, want)
		}
		buf = path[:0]
	}
}

// TestSearchZeroAllocs pins the pooled searches at zero allocations per
// query once warm — what lets the serve layer sample hop stretch and
// Ideal-length routes on the request path. Skipped under the race
// detector, whose sync.Pool deliberately drops puts.
func TestSearchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under the race detector")
	}
	net := deployNet(t, ModelFA, 300, 31)
	pairs := RoutablePairs(net, 8, 40)
	if len(pairs) == 0 {
		t.Fatal("no routable pairs")
	}
	buf := make([]NodeID, 0, net.N())
	for _, p := range pairs {
		if path := AStarEuclideanPathInto(net, p[0], p[1], buf); path != nil {
			buf = path[:0]
		}
		HopCount(net, p[0], p[1])
	}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		p := pairs[i%len(pairs)]
		i++
		if path := AStarEuclideanPathInto(net, p[0], p[1], buf); path != nil {
			buf = path[:0]
		}
	})
	if avg != 0 {
		t.Errorf("AStarEuclideanPathInto: %v allocs/query, want 0", avg)
	}
	i = 0
	avg = testing.AllocsPerRun(200, func() {
		p := pairs[i%len(pairs)]
		i++
		HopCount(net, p[0], p[1])
	})
	if avg != 0 {
		t.Errorf("HopCount: %v allocs/query, want 0", avg)
	}
}
