package topo

import (
	"math/rand/v2"
	"slices"
	"testing"

	"github.com/straightpath/wasn/internal/geom"
)

// driftBatch draws k random moves: mostly small Gaussian drift, with an
// occasional long teleport so edges cross range boundaries both ways.
func driftBatch(rng *rand.Rand, net *Network, k int, sigma float64) []Move {
	moves := make([]Move, 0, k)
	for len(moves) < k {
		u := NodeID(rng.IntN(net.N()))
		p := net.Pos(u)
		var np geom.Point
		if rng.Float64() < 0.1 {
			np = geom.Pt(
				net.Field.Min.X+rng.Float64()*net.Field.Width(),
				net.Field.Min.Y+rng.Float64()*net.Field.Height(),
			)
		} else {
			np = geom.Pt(p.X+rng.NormFloat64()*sigma, p.Y+rng.NormFloat64()*sigma)
			np.X = min(max(np.X, net.Field.Min.X), net.Field.Max.X)
			np.Y = min(max(np.Y, net.Field.Min.Y), net.Field.Max.Y)
		}
		moves = append(moves, Move{Node: u, X: np.X, Y: np.Y})
	}
	return moves
}

// requireCSREqual compares every CSR artifact of got against a fresh
// build over the same positions.
func requireCSREqual(t *testing.T, got, fresh *Network) {
	t.Helper()
	if !slices.Equal(got.adjOff, fresh.adjOff) {
		t.Fatalf("adjOff diverged from fresh build")
	}
	if !slices.Equal(got.adjList, fresh.adjList) {
		t.Fatalf("adjList diverged from fresh build")
	}
	if !slices.Equal(got.adjAng, fresh.adjAng) {
		t.Fatalf("adjAng diverged from fresh build")
	}
	if !slices.Equal(got.adjX, fresh.adjX) || !slices.Equal(got.adjY, fresh.adjY) {
		t.Fatalf("packed neighbor positions diverged from fresh build")
	}
}

func TestSetPositionsMatchesFreshBuild(t *testing.T) {
	for _, tc := range []struct {
		model DeployModel
		n     int
		seed  uint64
	}{
		{ModelIA, 200, 3},
		{ModelFA, 240, 7},
		{ModelOB, 260, 11},
	} {
		t.Run(tc.model.String(), func(t *testing.T) {
			dep, err := Deploy(DefaultDeployConfig(tc.model, tc.n, tc.seed))
			if err != nil {
				t.Fatal(err)
			}
			net := dep.Net
			rng := rand.New(rand.NewPCG(tc.seed, 0xfeedbeef))
			for step := 0; step < 12; step++ {
				moves := driftBatch(rng, net, 1+rng.IntN(8), 5)
				dirty, err := net.SetPositions(moves)
				if err != nil {
					t.Fatal(err)
				}
				if !slices.IsSorted(dirty) {
					t.Fatalf("step %d: dirty set not sorted", step)
				}
				for _, m := range moves {
					if !slices.Contains(dirty, m.Node) {
						t.Fatalf("step %d: moved node %d missing from dirty set", step, m.Node)
					}
				}
				fresh, err := NewNetwork(net.Positions(), net.Radius, net.Field)
				if err != nil {
					t.Fatal(err)
				}
				requireCSREqual(t, net, fresh)
			}
		})
	}
}

// TestSetPositionsWithDeadNodes pins that liveness is orthogonal to
// position repair: dead nodes move, stay in static rows, and their alive
// bits survive the CSR swap.
func TestSetPositionsWithDeadNodes(t *testing.T) {
	dep, err := Deploy(DefaultDeployConfig(ModelIA, 150, 21))
	if err != nil {
		t.Fatal(err)
	}
	net := dep.Net
	rng := rand.New(rand.NewPCG(21, 42))
	for i := 0; i < 20; i++ {
		net.SetAlive(NodeID(rng.IntN(net.N())), false)
	}
	deadBefore := net.DeadCount()
	for step := 0; step < 6; step++ {
		moves := driftBatch(rng, net, 5, 8)
		if _, err := net.SetPositions(moves); err != nil {
			t.Fatal(err)
		}
	}
	if net.DeadCount() != deadBefore {
		t.Fatalf("dead count changed across moves: %d -> %d", deadBefore, net.DeadCount())
	}
	fresh, err := NewNetwork(net.Positions(), net.Radius, net.Field)
	if err != nil {
		t.Fatal(err)
	}
	requireCSREqual(t, net, fresh)
	for u := 0; u < net.N(); u++ {
		want := net.Nodes[u].Alive
		got := net.aliveBits[u>>6]&(1<<(uint(u)&63)) != 0
		if want != got {
			t.Fatalf("alive bit of %d diverged after moves", u)
		}
	}
}

// TestSetPositionsDirtySetSound pins the dirty-set contract: any node
// whose row content changed must be reported dirty.
func TestSetPositionsDirtySetSound(t *testing.T) {
	dep, err := Deploy(DefaultDeployConfig(ModelFA, 220, 5))
	if err != nil {
		t.Fatal(err)
	}
	net := dep.Net
	rng := rand.New(rand.NewPCG(5, 99))
	for step := 0; step < 8; step++ {
		type rowSnap struct {
			row []NodeID
			ang []float64
		}
		before := make([]rowSnap, net.N())
		for u := 0; u < net.N(); u++ {
			before[u] = rowSnap{
				row: slices.Clone(net.AdjacencyRow(NodeID(u))),
				ang: slices.Clone(net.AdjacencyAngles(NodeID(u))),
			}
		}
		moves := driftBatch(rng, net, 3, 6)
		dirty, err := net.SetPositions(moves)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < net.N(); u++ {
			changed := !slices.Equal(before[u].row, net.AdjacencyRow(NodeID(u))) ||
				!slices.Equal(before[u].ang, net.AdjacencyAngles(NodeID(u)))
			if changed && !slices.Contains(dirty, NodeID(u)) {
				t.Fatalf("step %d: row of %d changed but not reported dirty", step, u)
			}
		}
	}
}

func TestSetPositionsRejectsUnknownNode(t *testing.T) {
	net := lineNetwork(t, 5)
	if _, err := net.SetPositions([]Move{{Node: 7, X: 0, Y: 0}}); err == nil {
		t.Fatal("expected error for out-of-range node id")
	}
	if _, err := net.SetPositions([]Move{{Node: -1, X: 0, Y: 0}}); err == nil {
		t.Fatal("expected error for negative node id")
	}
}

func TestSetPositionEdgeFlip(t *testing.T) {
	// Path graph 0-1-2; move node 2 next to node 0 so the 1-2 edge
	// survives and a 0-2 edge appears, then far away so it loses all.
	net := lineNetwork(t, 3)
	dirty, err := net.SetPosition(2, geom.Pt(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	if want := []NodeID{0, 1, 2}; !slices.Equal(dirty, want) {
		t.Fatalf("dirty = %v, want %v", dirty, want)
	}
	if got := net.AdjacencyRow(0); !slices.Equal(got, []NodeID{1, 2}) {
		t.Fatalf("row(0) = %v after move-in", got)
	}
	if _, err := net.SetPosition(2, geom.Pt(100, 100)); err != nil {
		t.Fatal(err)
	}
	if got := net.AdjacencyRow(2); len(got) != 0 {
		t.Fatalf("row(2) = %v after move-out, want empty", got)
	}
	fresh, err := NewNetwork(net.Positions(), net.Radius, net.Field)
	if err != nil {
		t.Fatal(err)
	}
	requireCSREqual(t, net, fresh)
}
