package topo

import "github.com/straightpath/wasn/internal/geom"

// A* over the Euclidean admissible heuristic: edge weights are the
// Euclidean distances between endpoints, so h(v) = |L(v) - L(dst)| never
// overestimates the remaining cost (triangle inequality) and is
// consistent — the first time a node is settled its g-score is final,
// exactly as in Dijkstra. The search therefore returns a path of the
// same minimum total length as ShortestEuclideanPathInto while settling
// only the nodes whose f-score beats the optimum, which on the paper's
// disk graphs is a narrow corridor around the straight line instead of
// a full distance ball around the source.

// AStarEuclideanPathInto returns a minimum total-Euclidean-length path
// from src to dst (inclusive), appending into buf[:0]; nil when
// unreachable (buf is then unused). It runs over the same pooled
// scratch as the other searches, so with a reused buffer steady-state
// queries are allocation-free. The returned path's total length always
// equals ShortestEuclideanPathInto's (the Dijkstra reference); the node
// sequence may differ between equally-short optima.
func AStarEuclideanPathInto(net *Network, src, dst NodeID, buf []NodeID) []NodeID {
	if !net.Alive(src) || !net.Alive(dst) {
		return nil
	}
	if src == dst {
		return append(buf[:0], src)
	}
	const unreached = -1.0
	s := acquireSearch(net.N())
	defer releaseSearch(s)
	for i := range s.dist {
		s.dist[i] = unreached
		s.prev[i] = NoNode
	}
	pd := net.Nodes[dst].Pos
	s.dist[src] = 0
	s.prev[src] = src
	h := append(s.heap[:0], pqItem{node: src, dist: geom.Dist(net.Nodes[src].Pos, pd)})
	alive := net.aliveBits
	for len(h) > 0 {
		var it pqItem
		it, h = pqPop(h)
		u := it.node
		if s.done[u] {
			continue
		}
		s.done[u] = true
		if u == dst {
			s.heap = h[:0]
			return tracePath(s.prev, src, dst, buf)
		}
		du := s.dist[u]
		pu := net.Nodes[u].Pos
		row := net.row(u)
		xs := net.adjX[net.adjOff[u]:net.adjOff[u+1]]
		ys := net.adjY[net.adjOff[u]:net.adjOff[u+1]]
		for j, v := range row {
			if alive[v>>6]&(1<<(uint(v)&63)) == 0 || s.done[v] {
				continue
			}
			pv := geom.Pt(xs[j], ys[j])
			nd := du + geom.Dist(pu, pv)
			if s.dist[v] == unreached || nd < s.dist[v] {
				s.dist[v] = nd
				s.prev[v] = u
				h = pqPush(h, pqItem{node: v, dist: nd + geom.Dist(pv, pd)})
			}
		}
	}
	s.heap = h[:0]
	return nil
}

// HopCount returns the minimum hop count from src to dst (0 when
// src == dst), or -1 when unreachable. It is ShortestHopPathInto
// without the path: the BFS runs over pooled scratch, materializes
// nothing, and allocates nothing in steady state — the form the serve
// layer's sampled hop-stretch measurement wants, since it only compares
// counts.
func HopCount(net *Network, src, dst NodeID) int {
	if !net.Alive(src) || !net.Alive(dst) {
		return -1
	}
	if src == dst {
		return 0
	}
	s := acquireSearch(net.N())
	defer releaseSearch(s)
	alive := net.aliveBits
	s.visited[src] = true
	s.dist[src] = 0
	q := append(s.queue[:0], src)
	for head := 0; head < len(q); head++ {
		u := q[head]
		dv := s.dist[u] + 1
		for _, v := range net.row(u) {
			if alive[v>>6]&(1<<(uint(v)&63)) == 0 || s.visited[v] {
				continue
			}
			if v == dst {
				return int(dv)
			}
			s.visited[v] = true
			s.dist[v] = dv
			q = append(q, v)
		}
	}
	return -1
}
