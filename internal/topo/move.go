package topo

import (
	"fmt"
	"slices"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/par"
)

// Move is one position update: node Node relocates to (X, Y). Batches of
// moves are applied atomically by SetPositions; the JSON tags are the
// wire shape of the serve /move endpoint and the workload trace format.
type Move struct {
	Node NodeID  `json:"node"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
}

// SetPosition relocates one node. It is SetPositions on a single-move
// batch; prefer SetPositions for drift batches — the CSR rewrite cost is
// amortized across the whole batch.
func (net *Network) SetPosition(u NodeID, p geom.Point) ([]NodeID, error) {
	return net.SetPositions([]Move{{Node: u, X: p.X, Y: p.Y}})
}

// SetPositions applies a batch of position updates and repairs the CSR
// adjacency in place: coordinates, the packed AdjacencyXY arrays, and the
// rows/bearings of every edge entering or leaving radio range. It returns
// the sorted ids of all nodes whose geometric neighborhood changed — the
// moved nodes, their old static neighbors, and their new in-range
// neighbors — which is exactly the dirty set substrate position repair
// (core.RepairSubstratesMoved) needs.
//
// The rewrite is double-buffered: rows of clean nodes are copied span-
// for-span into scratch backing arrays, dirty rows are recomputed from
// the retained spatial grid, and the buffers are swapped. After warmup
// the scratch is reused, so steady-state drift batches allocate nothing.
// The returned slice aliases internal scratch and is only valid until the
// next SetPositions call.
//
// Liveness is orthogonal: dead nodes may move, and moving never changes
// alive bits. Edge-slot consumers beware: row offsets (AdjOffset,
// AdjSlotOf, AdjSlots) shift when rows resize, so per-edge state keyed by
// slot index must be re-derived or generation-stamped after a move batch.
func (net *Network) SetPositions(moves []Move) ([]NodeID, error) {
	if len(moves) == 0 {
		return nil, nil
	}
	n := len(net.Nodes)
	for _, m := range moves {
		if m.Node < 0 || int(m.Node) >= n {
			return nil, fmt.Errorf("topo: move of unknown node %d (have %d)", m.Node, n)
		}
	}
	if net.mvMark == nil || len(net.mvMark) < n {
		net.mvMark = make([]uint32, n)
		net.mvGen = 0
	}
	net.mvGen++
	gen := net.mvGen
	dirty := net.mvDirty[:0]
	mark := func(v NodeID) {
		if net.mvMark[v] != gen {
			net.mvMark[v] = gen
			dirty = append(dirty, v)
		}
	}

	// Phase 1 — while the static rows still describe the old geometry:
	// mark each moved node and everyone who could see it at its old
	// position (its old static row), then apply the position update to
	// the node table and the spatial grid.
	for _, m := range moves {
		u := m.Node
		mark(u)
		for _, v := range net.row(u) {
			mark(v)
		}
		np := geom.Pt(m.X, m.Y)
		net.grid.move(u, net.Nodes[u].Pos, np)
		net.Nodes[u].Pos = np
	}

	// Phase 2 — with every new position in place: mark everyone who can
	// see a moved node now. A node's row changes iff it moved, or a moved
	// node was in range (phase 1) or is in range (here); nothing else can
	// alter its in-range set or any neighbor coordinate.
	r2 := net.Radius * net.Radius
	for _, m := range moves {
		u := m.Node
		p := net.Nodes[u].Pos
		net.grid.visitNear(p, net.Radius, func(v NodeID) {
			if v != u && geom.Dist2(p, net.Nodes[v].Pos) <= r2 {
				mark(v)
			}
		})
	}

	slices.Sort(dirty)
	net.mvDirty = dirty
	net.rebuildRows(dirty, gen)
	return dirty, nil
}

// rebuildRows rewrites the CSR backing arrays with fresh rows for the
// dirty nodes (mvMark[i]==gen) and span copies for everyone else, then
// swaps the double buffers.
func (net *Network) rebuildRows(dirty []NodeID, gen uint32) {
	n := len(net.Nodes)
	r2 := net.Radius * net.Radius

	// Count pass: new row sizes for dirty nodes only.
	net.mvCounts = growScratch(net.mvCounts, len(dirty))
	counts := net.mvCounts[:len(dirty)]
	par.For(len(dirty), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			u := dirty[i]
			p := net.Nodes[u].Pos
			var c int32
			net.grid.visitNear(p, net.Radius, func(v NodeID) {
				if v != u && geom.Dist2(p, net.Nodes[v].Pos) <= r2 {
					c++
				}
			})
			counts[i] = c
		}
	})

	// Prefix-sum old and new row sizes into the scratch offsets.
	net.offScratch = growScratch(net.offScratch, n+1)
	off2 := net.offScratch[:n+1]
	var total int32
	di := 0
	for i := 0; i < n; i++ {
		off2[i] = total
		if di < len(dirty) && dirty[di] == NodeID(i) {
			total += counts[di]
			di++
		} else {
			total += net.adjOff[i+1] - net.adjOff[i]
		}
	}
	off2[n] = total

	net.listScratch = growScratch(net.listScratch, int(total))
	net.angScratch = growScratch(net.angScratch, int(total))
	net.xScratch = growScratch(net.xScratch, int(total))
	net.yScratch = growScratch(net.yScratch, int(total))
	list2 := net.listScratch[:total]
	ang2 := net.angScratch[:total]
	x2 := net.xScratch[:total]
	y2 := net.yScratch[:total]

	// Fill pass: recompute dirty rows (sorted, with bearings and packed
	// positions), copy clean spans verbatim.
	par.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst, end := off2[i], off2[i+1]
			if net.mvMark[i] != gen {
				src := net.adjOff[i]
				copy(list2[dst:end], net.adjList[src:])
				copy(ang2[dst:end], net.adjAng[src:])
				copy(x2[dst:end], net.adjX[src:])
				copy(y2[dst:end], net.adjY[src:])
				continue
			}
			u := &net.Nodes[i]
			row := list2[dst:dst:end]
			net.grid.visitNear(u.Pos, net.Radius, func(v NodeID) {
				if v != u.ID && geom.Dist2(u.Pos, net.Nodes[v].Pos) <= r2 {
					row = append(row, v)
				}
			})
			slices.Sort(row)
			for j, v := range row {
				pv := net.Nodes[v].Pos
				ang2[int(dst)+j] = geom.Angle(u.Pos, pv)
				x2[int(dst)+j] = pv.X
				y2[int(dst)+j] = pv.Y
			}
		}
	})

	net.adjOff, net.offScratch = off2, net.adjOff
	net.adjList, net.listScratch = list2, net.adjList
	net.adjAng, net.angScratch = ang2, net.adjAng
	net.adjX, net.xScratch = x2, net.adjX
	net.adjY, net.yScratch = y2, net.adjY
}

// growScratch returns s resliced to its full capacity, reallocating with
// 25% headroom when the capacity is below need — the double-buffered CSR
// rewrite reuses these buffers so steady-state batches allocate nothing.
func growScratch[T any](s []T, need int) []T {
	if cap(s) < need {
		return make([]T, need+need/4+8)
	}
	return s[:cap(s)]
}
