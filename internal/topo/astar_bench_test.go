package topo

import "testing"

// benchSearchNet is the FA-600 deployment the root route benchmarks
// use, so the search numbers line up with BenchmarkRouteIdeal*.
func benchSearchNet(b *testing.B) (*Network, [][2]NodeID) {
	b.Helper()
	dep, err := Deploy(DefaultDeployConfig(ModelFA, 600, 11))
	if err != nil {
		b.Fatal(err)
	}
	pairs := RoutablePairs(dep.Net, 64, 60)
	if len(pairs) == 0 {
		b.Fatal("no routable pairs")
	}
	return dep.Net, pairs
}

func BenchmarkAStarSearch(b *testing.B) {
	net, pairs := benchSearchNet(b)
	buf := make([]NodeID, 0, net.N())
	for _, p := range pairs {
		if path := AStarEuclideanPathInto(net, p[0], p[1], buf); path != nil {
			buf = path[:0]
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if path := AStarEuclideanPathInto(net, p[0], p[1], buf); path != nil {
			buf = path[:0]
		}
	}
}

func BenchmarkDijkstraSearch(b *testing.B) {
	net, pairs := benchSearchNet(b)
	buf := make([]NodeID, 0, net.N())
	for _, p := range pairs {
		if path := ShortestEuclideanPathInto(net, p[0], p[1], buf); path != nil {
			buf = path[:0]
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if path := ShortestEuclideanPathInto(net, p[0], p[1], buf); path != nil {
			buf = path[:0]
		}
	}
}

func BenchmarkHopCountSearch(b *testing.B) {
	net, pairs := benchSearchNet(b)
	for _, p := range pairs {
		HopCount(net, p[0], p[1])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		HopCount(net, p[0], p[1])
	}
}
