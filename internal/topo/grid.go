package topo

import (
	"math"

	"github.com/straightpath/wasn/internal/geom"
)

// grid is a uniform spatial hash over the deployment field used to answer
// "which nodes lie within distance r of p" in expected O(1) per neighbor.
// Cell size equals the radio range, so a range query only inspects the
// 3×3 cell block around the query point.
type grid struct {
	origin geom.Point
	cell   float64
	nx, ny int
	// cells[iy*nx+ix] lists the node ids whose position hashes there.
	cells [][]NodeID
}

func newGrid(field geom.Rect, cell float64, nodes []Node) *grid {
	if cell <= 0 {
		cell = 1
	}
	nx := int(math.Ceil(field.Width()/cell)) + 1
	ny := int(math.Ceil(field.Height()/cell)) + 1
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	g := &grid{
		origin: field.Min,
		cell:   cell,
		nx:     nx,
		ny:     ny,
		cells:  make([][]NodeID, nx*ny),
	}
	for _, n := range nodes {
		ix, iy := g.cellOf(n.Pos)
		idx := iy*g.nx + ix
		g.cells[idx] = append(g.cells[idx], n.ID)
	}
	return g
}

func (g *grid) cellOf(p geom.Point) (ix, iy int) {
	ix = int((p.X - g.origin.X) / g.cell)
	iy = int((p.Y - g.origin.Y) / g.cell)
	ix = min(max(ix, 0), g.nx-1)
	iy = min(max(iy, 0), g.ny-1)
	return ix, iy
}

// move rehashes node id from its old position's cell to its new one.
// Within-cell moves are free; cross-cell moves swap-remove from the old
// cell (order inside a cell is irrelevant — every query distance-filters)
// and append to the new, so a retained grid tracks position churn in O(1)
// amortized per move.
func (g *grid) move(id NodeID, from, to geom.Point) {
	fx, fy := g.cellOf(from)
	tx, ty := g.cellOf(to)
	if fx == tx && fy == ty {
		return
	}
	fi := fy*g.nx + fx
	cell := g.cells[fi]
	for i, v := range cell {
		if v == id {
			cell[i] = cell[len(cell)-1]
			g.cells[fi] = cell[:len(cell)-1]
			break
		}
	}
	ti := ty*g.nx + tx
	g.cells[ti] = append(g.cells[ti], id)
}

// visitNear calls fn for every node id stored in cells that could contain a
// point within distance r of p. Callers must still distance-filter.
func (g *grid) visitNear(p geom.Point, r float64, fn func(NodeID)) {
	span := int(math.Ceil(r/g.cell)) + 1
	cx, cy := g.cellOf(p)
	for iy := max(cy-span, 0); iy <= min(cy+span, g.ny-1); iy++ {
		for ix := max(cx-span, 0); ix <= min(cx+span, g.nx-1); ix++ {
			for _, id := range g.cells[iy*g.nx+ix] {
				fn(id)
			}
		}
	}
}
