package topo

import "container/heap"

// Components labels every alive node with a connected-component id and
// returns the labels (dead nodes get -1) plus the number of components.
func Components(net *Network) (labels []int, count int) {
	labels = make([]int, net.N())
	for i := range labels {
		labels[i] = -1
	}
	var queue []NodeID
	for start := range net.Nodes {
		if !net.Nodes[start].Alive || labels[start] != -1 {
			continue
		}
		labels[start] = count
		queue = append(queue[:0], NodeID(start))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range net.Neighbors(u) {
				if labels[v] == -1 {
					labels[v] = count
					queue = append(queue, v)
				}
			}
		}
		count++
	}
	return labels, count
}

// RoutablePairs returns up to want (src, dst) pairs of alive nodes that
// lie in the same connected component and are at least minDist apart —
// the routable, well-separated queries the serving layer, benchmarks,
// and load generator drive traffic with. The scan is deterministic
// (ascending src, first qualifying dst from the top) and yields at most
// one pair per source.
func RoutablePairs(net *Network, want int, minDist float64) [][2]NodeID {
	labels, _ := Components(net)
	var pairs [][2]NodeID
	for s := 0; s < net.N() && len(pairs) < want; s++ {
		if labels[s] < 0 {
			continue
		}
		for d := net.N() - 1; d > s; d-- {
			if labels[d] == labels[s] && net.Dist(NodeID(s), NodeID(d)) >= minDist {
				pairs = append(pairs, [2]NodeID{NodeID(s), NodeID(d)})
				break
			}
		}
	}
	return pairs
}

// Connected reports whether alive nodes a and b are in the same component.
func Connected(net *Network, a, b NodeID) bool {
	if !net.Alive(a) || !net.Alive(b) {
		return false
	}
	if a == b {
		return true
	}
	visited := make([]bool, net.N())
	visited[a] = true
	queue := []NodeID{a}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range net.Neighbors(u) {
			if v == b {
				return true
			}
			if !visited[v] {
				visited[v] = true
				queue = append(queue, v)
			}
		}
	}
	return false
}

// HopDistances returns the BFS hop count from src to every node
// (-1 when unreachable). This is the "ideal" minimum-hop reference.
func HopDistances(net *Network, src NodeID) []int {
	dist := make([]int, net.N())
	for i := range dist {
		dist[i] = -1
	}
	if !net.Alive(src) {
		return dist
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range net.Neighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ShortestHopPath returns a minimum-hop path from src to dst (inclusive),
// or nil when unreachable.
func ShortestHopPath(net *Network, src, dst NodeID) []NodeID {
	if !net.Alive(src) || !net.Alive(dst) {
		return nil
	}
	if src == dst {
		return []NodeID{src}
	}
	prev := make([]NodeID, net.N())
	for i := range prev {
		prev[i] = NoNode
	}
	prev[src] = src
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range net.Neighbors(u) {
			if prev[v] != NoNode {
				continue
			}
			prev[v] = u
			if v == dst {
				return tracePath(prev, src, dst)
			}
			queue = append(queue, v)
		}
	}
	return nil
}

func tracePath(prev []NodeID, src, dst NodeID) []NodeID {
	var rev []NodeID
	for at := dst; ; at = prev[at] {
		rev = append(rev, at)
		if at == src {
			break
		}
	}
	out := make([]NodeID, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestEuclideanPath returns the minimum total-Euclidean-length path
// from src to dst (Dijkstra over edge lengths), or nil when unreachable.
// This is the "ideal routing path" reference of Fig. 1(a).
func ShortestEuclideanPath(net *Network, src, dst NodeID) []NodeID {
	if !net.Alive(src) || !net.Alive(dst) {
		return nil
	}
	if src == dst {
		return []NodeID{src}
	}
	const unreached = -1.0
	dist := make([]float64, net.N())
	prev := make([]NodeID, net.N())
	done := make([]bool, net.N())
	for i := range dist {
		dist[i] = unreached
		prev[i] = NoNode
	}
	dist[src] = 0
	prev[src] = src
	q := &pq{{node: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			return tracePath(prev, src, dst)
		}
		for _, v := range net.Neighbors(u) {
			if done[v] {
				continue
			}
			nd := dist[u] + net.Dist(u, v)
			if dist[v] == unreached || nd < dist[v] {
				dist[v] = nd
				prev[v] = u
				heap.Push(q, pqItem{node: v, dist: nd})
			}
		}
	}
	return nil
}
