package topo

import "sync"

// searchScratch is the pooled per-query state of the graph searches in
// this file (visited marks, BFS queue, predecessor/distance arrays, the
// Dijkstra heap). Queries Get one, size it to the network, and Put it
// back, so steady-state searches allocate nothing. The scratch is sized
// lazily: a pool entry last used on a smaller network regrows once.
type searchScratch struct {
	visited []bool
	queue   []NodeID
	prev    []NodeID
	dist    []float64
	done    []bool
	heap    []pqItem
}

var searchPool = sync.Pool{New: func() any { return new(searchScratch) }}

// acquireSearch returns a scratch with visited/prev/dist/done sized and
// reset for an n-node network and empty queue/heap.
func acquireSearch(n int) *searchScratch {
	s := searchPool.Get().(*searchScratch)
	if cap(s.visited) < n {
		s.visited = make([]bool, n)
		s.prev = make([]NodeID, n)
		s.dist = make([]float64, n)
		s.done = make([]bool, n)
	}
	// BFS queues pop by re-slicing forward, so the high-water index never
	// exceeds n; capacity n guarantees appends never reallocate.
	if cap(s.queue) < n {
		s.queue = make([]NodeID, 0, n)
	}
	s.visited = s.visited[:n]
	s.prev = s.prev[:n]
	s.dist = s.dist[:n]
	s.done = s.done[:n]
	clear(s.visited)
	clear(s.done)
	s.queue = s.queue[:0]
	s.heap = s.heap[:0]
	return s
}

func releaseSearch(s *searchScratch) { searchPool.Put(s) }

// Components labels every alive node with a connected-component id and
// returns the labels (dead nodes get -1) plus the number of components.
func Components(net *Network) (labels []int, count int) {
	labels = make([]int, net.N())
	for i := range labels {
		labels[i] = -1
	}
	s := acquireSearch(net.N())
	defer releaseSearch(s)
	for start := range net.Nodes {
		if !net.Nodes[start].Alive || labels[start] != -1 {
			continue
		}
		labels[start] = count
		queue := append(s.queue[:0], NodeID(start))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range net.Neighbors(u) {
				if labels[v] == -1 {
					labels[v] = count
					queue = append(queue, v)
				}
			}
		}
		count++
	}
	return labels, count
}

// RoutablePairs returns up to want (src, dst) pairs of alive nodes that
// lie in the same connected component and are at least minDist apart —
// the routable, well-separated queries the serving layer, benchmarks,
// and load generator drive traffic with. The scan is deterministic
// (ascending src, first qualifying dst from the top) and yields at most
// one pair per source.
//
// Candidates are bucketed by component once (descending id), so each
// source only scans its own component's members above it instead of
// every node — the previous implementation's O(n²) cross-component scan.
func RoutablePairs(net *Network, want int, minDist float64) [][2]NodeID {
	labels, count := Components(net)
	sizes := make([]int, count)
	for _, l := range labels {
		if l >= 0 {
			sizes[l]++
		}
	}
	buckets := make([][]NodeID, count)
	for c, sz := range sizes {
		buckets[c] = make([]NodeID, 0, sz)
	}
	for i := net.N() - 1; i >= 0; i-- {
		if l := labels[i]; l >= 0 {
			buckets[l] = append(buckets[l], NodeID(i))
		}
	}
	var pairs [][2]NodeID
	for s := 0; s < net.N() && len(pairs) < want; s++ {
		l := labels[s]
		if l < 0 {
			continue
		}
		for _, d := range buckets[l] {
			if int(d) <= s {
				break // descending bucket: no qualifying dst above s left
			}
			if net.Dist(NodeID(s), d) >= minDist {
				pairs = append(pairs, [2]NodeID{NodeID(s), d})
				break
			}
		}
	}
	return pairs
}

// Connected reports whether alive nodes a and b are in the same
// component. Allocation-free in steady state: the BFS runs over pooled
// scratch.
func Connected(net *Network, a, b NodeID) bool {
	if !net.Alive(a) || !net.Alive(b) {
		return false
	}
	if a == b {
		return true
	}
	s := acquireSearch(net.N())
	defer releaseSearch(s)
	s.visited[a] = true
	queue := append(s.queue[:0], a)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range net.Neighbors(u) {
			if v == b {
				return true
			}
			if !s.visited[v] {
				s.visited[v] = true
				queue = append(queue, v)
			}
		}
	}
	return false
}

// HopDistances returns the BFS hop count from src to every node
// (-1 when unreachable). This is the "ideal" minimum-hop reference.
func HopDistances(net *Network, src NodeID) []int {
	dist := make([]int, net.N())
	for i := range dist {
		dist[i] = -1
	}
	if !net.Alive(src) {
		return dist
	}
	s := acquireSearch(net.N())
	defer releaseSearch(s)
	dist[src] = 0
	queue := append(s.queue[:0], src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range net.Neighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ShortestHopPath returns a minimum-hop path from src to dst (inclusive),
// or nil when unreachable.
func ShortestHopPath(net *Network, src, dst NodeID) []NodeID {
	return ShortestHopPathInto(net, src, dst, nil)
}

// ShortestHopPathInto is ShortestHopPath appending into buf[:0]; passing
// a reused buffer makes the query allocation-free in steady state. The
// returned slice is nil when unreachable (buf is then unused).
func ShortestHopPathInto(net *Network, src, dst NodeID, buf []NodeID) []NodeID {
	if !net.Alive(src) || !net.Alive(dst) {
		return nil
	}
	if src == dst {
		return append(buf[:0], src)
	}
	s := acquireSearch(net.N())
	defer releaseSearch(s)
	for i := range s.prev {
		s.prev[i] = NoNode
	}
	s.prev[src] = src
	queue := append(s.queue[:0], src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range net.Neighbors(u) {
			if s.prev[v] != NoNode {
				continue
			}
			s.prev[v] = u
			if v == dst {
				return tracePath(s.prev, src, dst, buf)
			}
			queue = append(queue, v)
		}
	}
	return nil
}

// tracePath reconstructs src..dst from the predecessor array, appending
// into buf[:0] and reversing in place.
func tracePath(prev []NodeID, src, dst NodeID, buf []NodeID) []NodeID {
	out := buf[:0]
	for at := dst; ; at = prev[at] {
		out = append(out, at)
		if at == src {
			break
		}
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node NodeID
	dist float64
}

// pqPush and pqPop implement a binary min-heap over a plain slice. The
// container/heap interface would box every pqItem through interface{};
// the concrete version keeps Dijkstra allocation-free on pooled scratch.
func pqPush(h []pqItem, it pqItem) []pqItem {
	h = append(h, it)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].dist <= h[i].dist {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	return h
}

func pqPop(h []pqItem) (pqItem, []pqItem) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && h[l].dist < h[smallest].dist {
			smallest = l
		}
		if r < len(h) && h[r].dist < h[smallest].dist {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top, h
}

// ShortestEuclideanPath returns the minimum total-Euclidean-length path
// from src to dst (Dijkstra over edge lengths), or nil when unreachable.
// This is the "ideal routing path" reference of Fig. 1(a).
func ShortestEuclideanPath(net *Network, src, dst NodeID) []NodeID {
	return ShortestEuclideanPathInto(net, src, dst, nil)
}

// ShortestEuclideanPathInto is ShortestEuclideanPath appending into
// buf[:0]; passing a reused buffer makes the query allocation-free in
// steady state. The returned slice is nil when unreachable.
func ShortestEuclideanPathInto(net *Network, src, dst NodeID, buf []NodeID) []NodeID {
	if !net.Alive(src) || !net.Alive(dst) {
		return nil
	}
	if src == dst {
		return append(buf[:0], src)
	}
	const unreached = -1.0
	s := acquireSearch(net.N())
	defer releaseSearch(s)
	for i := range s.dist {
		s.dist[i] = unreached
		s.prev[i] = NoNode
	}
	s.dist[src] = 0
	s.prev[src] = src
	h := append(s.heap[:0], pqItem{node: src, dist: 0})
	for len(h) > 0 {
		var it pqItem
		it, h = pqPop(h)
		u := it.node
		if s.done[u] {
			continue
		}
		s.done[u] = true
		if u == dst {
			s.heap = h[:0]
			return tracePath(s.prev, src, dst, buf)
		}
		for _, v := range net.Neighbors(u) {
			if s.done[v] {
				continue
			}
			nd := s.dist[u] + net.Dist(u, v)
			if s.dist[v] == unreached || nd < s.dist[v] {
				s.dist[v] = nd
				s.prev[v] = u
				h = pqPush(h, pqItem{node: v, dist: nd})
			}
		}
	}
	s.heap = h[:0]
	return nil
}
