package topo

import (
	"math/rand/v2"

	"github.com/straightpath/wasn/internal/geom"
)

// Area is a region of the field where the FA deployment model refuses to
// place nodes ("forbidden areas ... where no nodes can be deployed", §5).
type Area interface {
	Contains(p geom.Point) bool
	// BBox returns an axis-aligned bounding box of the area.
	BBox() geom.Rect
}

// RectArea is a rectangular forbidden area.
type RectArea struct {
	R geom.Rect
}

// Contains implements Area.
func (a RectArea) Contains(p geom.Point) bool { return a.R.Contains(p) }

// BBox implements Area.
func (a RectArea) BBox() geom.Rect { return a.R }

// DiscArea is a circular forbidden area.
type DiscArea struct {
	Center geom.Point
	Radius float64
}

// Contains implements Area.
func (a DiscArea) Contains(p geom.Point) bool {
	return geom.Dist2(p, a.Center) <= a.Radius*a.Radius
}

// BBox implements Area.
func (a DiscArea) BBox() geom.Rect {
	return geom.FromCorners(
		geom.Pt(a.Center.X-a.Radius, a.Center.Y-a.Radius),
		geom.Pt(a.Center.X+a.Radius, a.Center.Y+a.Radius),
	)
}

// AreaSet is the union of several forbidden areas; the union of rectangles
// and discs produces the "irregular" holes the paper's FA model calls for.
type AreaSet []Area

// Contains reports whether any member contains p.
func (s AreaSet) Contains(p geom.Point) bool {
	for _, a := range s {
		if a.Contains(p) {
			return true
		}
	}
	return false
}

// ForbiddenConfig parameterizes random forbidden-area generation.
type ForbiddenConfig struct {
	// Count is the number of areas (>= 1).
	Count int
	// MinSize and MaxSize bound each area's extent: rectangle side
	// length, or 2x the disc radius.
	MinSize, MaxSize float64
	// DiscFraction in [0,1] is the probability an area is a disc rather
	// than a rectangle.
	DiscFraction float64
	// Margin keeps area centers at least this far from the field border,
	// so holes are interior (matching the paper's figures, where holes
	// sit inside the interest area).
	Margin float64
}

// DefaultForbiddenConfig mirrors the scale of the paper's FA experiments on
// a 200x200 field with R=20: a few holes comparable to several radio
// ranges across.
func DefaultForbiddenConfig() ForbiddenConfig {
	return ForbiddenConfig{
		Count:        3,
		MinSize:      25,
		MaxSize:      60,
		DiscFraction: 0.5,
		Margin:       30,
	}
}

// RandomForbiddenAreas draws cfg.Count areas uniformly inside field using
// rng. Areas may overlap each other, which yields irregular unions.
func RandomForbiddenAreas(rng *rand.Rand, field geom.Rect, cfg ForbiddenConfig) AreaSet {
	if cfg.Count <= 0 {
		return nil
	}
	out := make(AreaSet, 0, cfg.Count)
	for i := 0; i < cfg.Count; i++ {
		out = append(out, randomArea(rng, field, cfg))
	}
	return out
}

// randomArea draws one forbidden area per cfg's size/shape/margin knobs.
func randomArea(rng *rand.Rand, field geom.Rect, cfg ForbiddenConfig) Area {
	span := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }
	inner := field.Inflate(-cfg.Margin)
	if inner.Empty() {
		inner = field
	}
	c := geom.Pt(span(inner.Min.X, inner.Max.X), span(inner.Min.Y, inner.Max.Y))
	size := span(cfg.MinSize, cfg.MaxSize)
	if rng.Float64() < cfg.DiscFraction {
		return DiscArea{Center: c, Radius: size / 2}
	}
	w := size
	h := span(cfg.MinSize, cfg.MaxSize)
	return RectArea{R: geom.FromCorners(
		geom.Pt(c.X-w/2, c.Y-h/2),
		geom.Pt(c.X+w/2, c.Y+h/2),
	)}
}

// Obstacle-field (OB) generation limits. Coverage is capped so rejection
// sampling always finds free field for node placement, and the area count
// is bounded against degenerate configs whose areas cannot reach the
// coverage target.
const (
	// DefaultObstacleCoverage is the OB coverage target used when
	// DeployConfig.ObstacleCoverage is zero.
	DefaultObstacleCoverage = 0.15
	maxObstacleCoverage     = 0.45
	maxObstacleAreas        = 64
	coverageGridN           = 64
)

// ObstacleField draws forbidden areas until the given fraction of the
// field is covered, measured on a deterministic coverageGridN² point
// lattice (cell centers). Unlike RandomForbiddenAreas the area count is
// not fixed — cfg contributes the per-area size, shape and margin knobs
// while coverage decides how many get drawn, so laddering coverage from
// sparse FA-like fields to obstacle mazes is a single scalar sweep.
// Coverage is clamped to [0, 0.45] to keep node placement feasible.
func ObstacleField(rng *rand.Rand, field geom.Rect, coverage float64, cfg ForbiddenConfig) AreaSet {
	if coverage == 0 {
		coverage = DefaultObstacleCoverage
	}
	if coverage <= 0 {
		return nil
	}
	coverage = min(coverage, maxObstacleCoverage)
	covered := make([]bool, coverageGridN*coverageGridN)
	target := int(coverage * float64(len(covered)))
	count := 0
	var out AreaSet
	for count < target && len(out) < maxObstacleAreas {
		a := randomArea(rng, field, cfg)
		out = append(out, a)
		for iy := 0; iy < coverageGridN; iy++ {
			y := field.Min.Y + (float64(iy)+0.5)/coverageGridN*field.Height()
			for ix := 0; ix < coverageGridN; ix++ {
				idx := iy*coverageGridN + ix
				if covered[idx] {
					continue
				}
				x := field.Min.X + (float64(ix)+0.5)/coverageGridN*field.Width()
				if a.Contains(geom.Pt(x, y)) {
					covered[idx] = true
					count++
				}
			}
		}
	}
	return out
}
