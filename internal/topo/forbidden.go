package topo

import (
	"math/rand/v2"

	"github.com/straightpath/wasn/internal/geom"
)

// Area is a region of the field where the FA deployment model refuses to
// place nodes ("forbidden areas ... where no nodes can be deployed", §5).
type Area interface {
	Contains(p geom.Point) bool
	// BBox returns an axis-aligned bounding box of the area.
	BBox() geom.Rect
}

// RectArea is a rectangular forbidden area.
type RectArea struct {
	R geom.Rect
}

// Contains implements Area.
func (a RectArea) Contains(p geom.Point) bool { return a.R.Contains(p) }

// BBox implements Area.
func (a RectArea) BBox() geom.Rect { return a.R }

// DiscArea is a circular forbidden area.
type DiscArea struct {
	Center geom.Point
	Radius float64
}

// Contains implements Area.
func (a DiscArea) Contains(p geom.Point) bool {
	return geom.Dist2(p, a.Center) <= a.Radius*a.Radius
}

// BBox implements Area.
func (a DiscArea) BBox() geom.Rect {
	return geom.FromCorners(
		geom.Pt(a.Center.X-a.Radius, a.Center.Y-a.Radius),
		geom.Pt(a.Center.X+a.Radius, a.Center.Y+a.Radius),
	)
}

// AreaSet is the union of several forbidden areas; the union of rectangles
// and discs produces the "irregular" holes the paper's FA model calls for.
type AreaSet []Area

// Contains reports whether any member contains p.
func (s AreaSet) Contains(p geom.Point) bool {
	for _, a := range s {
		if a.Contains(p) {
			return true
		}
	}
	return false
}

// ForbiddenConfig parameterizes random forbidden-area generation.
type ForbiddenConfig struct {
	// Count is the number of areas (>= 1).
	Count int
	// MinSize and MaxSize bound each area's extent: rectangle side
	// length, or 2x the disc radius.
	MinSize, MaxSize float64
	// DiscFraction in [0,1] is the probability an area is a disc rather
	// than a rectangle.
	DiscFraction float64
	// Margin keeps area centers at least this far from the field border,
	// so holes are interior (matching the paper's figures, where holes
	// sit inside the interest area).
	Margin float64
}

// DefaultForbiddenConfig mirrors the scale of the paper's FA experiments on
// a 200x200 field with R=20: a few holes comparable to several radio
// ranges across.
func DefaultForbiddenConfig() ForbiddenConfig {
	return ForbiddenConfig{
		Count:        3,
		MinSize:      25,
		MaxSize:      60,
		DiscFraction: 0.5,
		Margin:       30,
	}
}

// RandomForbiddenAreas draws cfg.Count areas uniformly inside field using
// rng. Areas may overlap each other, which yields irregular unions.
func RandomForbiddenAreas(rng *rand.Rand, field geom.Rect, cfg ForbiddenConfig) AreaSet {
	if cfg.Count <= 0 {
		return nil
	}
	span := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }
	inner := field.Inflate(-cfg.Margin)
	if inner.Empty() {
		inner = field
	}
	out := make(AreaSet, 0, cfg.Count)
	for i := 0; i < cfg.Count; i++ {
		c := geom.Pt(span(inner.Min.X, inner.Max.X), span(inner.Min.Y, inner.Max.Y))
		size := span(cfg.MinSize, cfg.MaxSize)
		if rng.Float64() < cfg.DiscFraction {
			out = append(out, DiscArea{Center: c, Radius: size / 2})
			continue
		}
		w := size
		h := span(cfg.MinSize, cfg.MaxSize)
		out = append(out, RectArea{R: geom.FromCorners(
			geom.Pt(c.X-w/2, c.Y-h/2),
			geom.Pt(c.X+w/2, c.Y+h/2),
		)})
	}
	return out
}
