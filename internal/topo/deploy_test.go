package topo

import (
	"math/rand/v2"
	"testing"

	"github.com/straightpath/wasn/internal/geom"
)

func TestDeployIA(t *testing.T) {
	cfg := DefaultDeployConfig(ModelIA, 400, 42)
	dep, err := Deploy(cfg)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if dep.Net.N() != 400 {
		t.Errorf("N = %d, want 400", dep.Net.N())
	}
	if dep.Forbidden != nil {
		t.Error("IA deployment should have no forbidden areas")
	}
	for _, n := range dep.Net.Nodes {
		if !cfg.Field.Contains(n.Pos) {
			t.Fatalf("node %v outside field", n)
		}
	}
	// The paper's density (400 nodes, R=20, 200x200) is well connected:
	// expected degree ~ 12.6.
	if d := dep.Net.AvgDegree(); d < 8 || d > 18 {
		t.Errorf("average degree %v outside plausible range [8, 18]", d)
	}
}

func TestDeployFA(t *testing.T) {
	cfg := DefaultDeployConfig(ModelFA, 500, 7)
	dep, err := Deploy(cfg)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if len(dep.Forbidden) != cfg.Forbidden.Count {
		t.Fatalf("got %d forbidden areas, want %d", len(dep.Forbidden), cfg.Forbidden.Count)
	}
	for _, n := range dep.Net.Nodes {
		if dep.Forbidden.Contains(n.Pos) {
			t.Fatalf("node %v placed inside a forbidden area", n)
		}
	}
}

func TestDeployDeterministic(t *testing.T) {
	for _, model := range []DeployModel{ModelIA, ModelFA} {
		a, err := Deploy(DefaultDeployConfig(model, 200, 99))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Deploy(DefaultDeployConfig(model, 200, 99))
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Net.Nodes {
			if a.Net.Nodes[i].Pos != b.Net.Nodes[i].Pos {
				t.Fatalf("%v: node %d differs across identical seeds", model, i)
			}
		}
		c, err := Deploy(DefaultDeployConfig(model, 200, 100))
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for i := range a.Net.Nodes {
			if a.Net.Nodes[i].Pos != c.Net.Nodes[i].Pos {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%v: different seeds produced identical networks", model)
		}
	}
}

func TestDeployValidation(t *testing.T) {
	cfg := DefaultDeployConfig(ModelIA, 0, 1)
	if _, err := Deploy(cfg); err == nil {
		t.Error("zero node count accepted")
	}
	cfg = DefaultDeployConfig(ModelIA, 10, 1)
	cfg.Field = geom.Rect{}
	if _, err := Deploy(cfg); err == nil {
		t.Error("empty field accepted")
	}
}

func TestDeployImpossibleForbidden(t *testing.T) {
	cfg := DefaultDeployConfig(ModelFA, 10, 1)
	// One hole covering everything.
	cfg.Forbidden = ForbiddenConfig{Count: 1, MinSize: 1000, MaxSize: 1000, DiscFraction: 0, Margin: 0}
	if _, err := Deploy(cfg); err == nil {
		t.Error("expected failure when forbidden areas cover the field")
	}
}

func TestParseDeployModel(t *testing.T) {
	tests := []struct {
		in      string
		want    DeployModel
		wantErr bool
	}{
		{in: "ia", want: ModelIA},
		{in: "FA", want: ModelFA},
		{in: "bogus", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseDeployModel(tt.in)
		if tt.wantErr != (err != nil) {
			t.Errorf("ParseDeployModel(%q) err = %v", tt.in, err)
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseDeployModel(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
	if ModelIA.String() != "IA" || ModelFA.String() != "FA" || DeployModel(9).String() != "model(9)" {
		t.Error("DeployModel String labels wrong")
	}
}

func TestForbiddenAreas(t *testing.T) {
	ra := RectArea{R: geom.FromCorners(geom.Pt(0, 0), geom.Pt(10, 10))}
	if !ra.Contains(geom.Pt(5, 5)) || ra.Contains(geom.Pt(15, 5)) {
		t.Error("RectArea.Contains wrong")
	}
	if ra.BBox() != ra.R {
		t.Error("RectArea.BBox wrong")
	}
	da := DiscArea{Center: geom.Pt(0, 0), Radius: 5}
	if !da.Contains(geom.Pt(3, 4)) || da.Contains(geom.Pt(3.01, 4)) {
		t.Error("DiscArea.Contains wrong at boundary")
	}
	if bb := da.BBox(); bb != geom.FromCorners(geom.Pt(-5, -5), geom.Pt(5, 5)) {
		t.Errorf("DiscArea.BBox = %v", bb)
	}
	set := AreaSet{ra, da}
	if !set.Contains(geom.Pt(-3, 0)) || set.Contains(geom.Pt(100, 100)) {
		t.Error("AreaSet.Contains wrong")
	}
	var empty AreaSet
	if empty.Contains(geom.Pt(0, 0)) {
		t.Error("empty AreaSet contains nothing")
	}
}

func TestRandomForbiddenAreasRespectConfig(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	field := field200()
	cfg := ForbiddenConfig{Count: 8, MinSize: 10, MaxSize: 30, DiscFraction: 0.5, Margin: 30}
	areas := RandomForbiddenAreas(rng, field, cfg)
	if len(areas) != 8 {
		t.Fatalf("got %d areas, want 8", len(areas))
	}
	inner := field.Inflate(-cfg.Margin + cfg.MaxSize/2 + 1)
	for i, a := range areas {
		bb := a.BBox()
		if bb.Width() > cfg.MaxSize+1e-9 || bb.Height() > cfg.MaxSize+1e-9 {
			t.Errorf("area %d bbox %v exceeds max size", i, bb)
		}
		if !inner.Overlaps(bb) {
			t.Errorf("area %d bbox %v too far outside margin zone", i, bb)
		}
	}
	if got := RandomForbiddenAreas(rng, field, ForbiddenConfig{Count: 0}); got != nil {
		t.Error("zero count should return nil")
	}
}
