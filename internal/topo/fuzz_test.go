package topo

import (
	"slices"
	"testing"

	"github.com/straightpath/wasn/internal/geom"
)

// fuzzNet builds the deterministic deployment a fuzz input runs against:
// byte 0 picks the model, byte 1 the seed.
func fuzzNet(sel, seedSel byte) (*Network, error) {
	model := []DeployModel{ModelIA, ModelFA, ModelOB}[int(sel)%3]
	seed := uint64(seedSel % 8)
	dep, err := Deploy(DefaultDeployConfig(model, 120, seed))
	if err != nil {
		return nil, err
	}
	return dep.Net, nil
}

// decodeMoves consumes data in 3-byte chunks (node, x, y) scaled onto
// the field, capping the op count so pathological inputs stay fast.
func decodeMoves(net *Network, data []byte, maxOps int) []Move {
	var moves []Move
	for len(data) >= 3 && len(moves) < maxOps {
		u := NodeID(int(data[0]) % net.N())
		x := net.Field.Min.X + float64(data[1])/255*net.Field.Width()
		y := net.Field.Min.Y + float64(data[2])/255*net.Field.Height()
		moves = append(moves, Move{Node: u, X: x, Y: y})
		data = data[3:]
	}
	return moves
}

// FuzzSetPosition drives arbitrary encoded move batches through
// SetPositions and asserts the repaired CSR adjacency — offsets, rows,
// bearings, packed positions — is bit-for-bit the fresh NewNetwork build
// over the same coordinates, and that the dirty set covers every row
// that changed.
func FuzzSetPosition(f *testing.F) {
	// Range-boundary: node 3 lands exactly one radius from node 7's cell
	// scale; batch splits exercise multi-batch repair.
	f.Add([]byte{0, 0, 3, 128, 128, 7, 148, 128, 3, 0, 0})
	// Hull-pin: teleport corner-most nodes across the field so convex
	// hull membership flips both ways.
	f.Add([]byte{1, 2, 0, 255, 255, 1, 0, 0, 0, 255, 0})
	// Coincident positions: two nodes stacked on the same point.
	f.Add([]byte{2, 1, 4, 100, 100, 5, 100, 100})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		net, err := fuzzNet(data[0], data[1])
		if err != nil {
			t.Skip()
		}
		data = data[2:]
		// Split the stream into a few batches to exercise repeated
		// repair over the same scratch.
		for len(data) >= 3 {
			chunk := data
			if len(chunk) > 12 {
				chunk = chunk[:12]
			}
			data = data[len(chunk):]
			moves := decodeMoves(net, chunk, 4)
			if len(moves) == 0 {
				break
			}
			dirty, err := net.SetPositions(moves)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.IsSorted(dirty) {
				t.Fatal("dirty set not sorted")
			}
			fresh, err := NewNetwork(net.Positions(), net.Radius, net.Field)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(net.adjOff, fresh.adjOff) ||
				!slices.Equal(net.adjList, fresh.adjList) ||
				!slices.Equal(net.adjAng, fresh.adjAng) ||
				!slices.Equal(net.adjX, fresh.adjX) ||
				!slices.Equal(net.adjY, fresh.adjY) {
				t.Fatalf("CSR diverged from fresh build after moves %v", moves)
			}
			inDirty := make(map[NodeID]bool, len(dirty))
			for _, u := range dirty {
				inDirty[u] = true
			}
			for u := 0; u < net.N(); u++ {
				id := NodeID(u)
				if !inDirty[id] {
					continue
				}
				// Dirty rows must still be sorted ascending with exact
				// bearings (spot-check the contract consumers rely on).
				row := net.AdjacencyRow(id)
				if !slices.IsSorted(row) {
					t.Fatalf("row %d not sorted after repair", u)
				}
				angs := net.AdjacencyAngles(id)
				for j, v := range row {
					if want := geom.Angle(net.Pos(id), net.Pos(v)); angs[j] != want {
						t.Fatalf("bearing %d->%d = %v, want %v", u, v, angs[j], want)
					}
				}
			}
		}
	})
}
