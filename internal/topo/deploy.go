package topo

import (
	"fmt"
	"math/rand/v2"

	"github.com/straightpath/wasn/internal/geom"
)

// DeployModel names the deployment models: the paper's §5 pair plus the
// obstacle-field extension.
type DeployModel int

// Deployment models. IA is the ideal uniform model; FA adds a few random
// forbidden areas; OB is the hostile obstacle-field variant, which keeps
// drawing forbidden areas until a target fraction of the field is covered
// (see ObstacleField) — the large irregular multi-hole geometries
// boundary detection exists for.
const (
	ModelIA DeployModel = iota + 1
	ModelFA
	ModelOB
)

// String implements fmt.Stringer.
func (m DeployModel) String() string {
	switch m {
	case ModelIA:
		return "IA"
	case ModelFA:
		return "FA"
	case ModelOB:
		return "OB"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// ParseDeployModel converts "ia"/"fa"/"ob" (any case) to a DeployModel.
func ParseDeployModel(s string) (DeployModel, error) {
	switch s {
	case "ia", "IA", "Ia":
		return ModelIA, nil
	case "fa", "FA", "Fa":
		return ModelFA, nil
	case "ob", "OB", "Ob":
		return ModelOB, nil
	default:
		return 0, fmt.Errorf("topo: unknown deployment model %q (want ia, fa or ob)", s)
	}
}

// DeployConfig describes one random network instance.
type DeployConfig struct {
	// Model selects IA (uniform) or FA (uniform outside forbidden areas).
	Model DeployModel
	// N is the node count.
	N int
	// Radius is the radio range (20 m in the paper).
	Radius float64
	// Field is the interest area (200x200 m in the paper).
	Field geom.Rect
	// Forbidden parameterizes FA hole generation; under OB its size,
	// shape and margin parameters are reused per obstacle while Count is
	// replaced by the coverage target. Ignored under IA.
	Forbidden ForbiddenConfig
	// ObstacleCoverage is the target fraction of the field covered by
	// obstacles under OB (0 means DefaultObstacleCoverage); ignored
	// otherwise.
	ObstacleCoverage float64
	// Seed1, Seed2 seed the PCG generator; the same seeds always produce
	// the same network.
	Seed1, Seed2 uint64
}

// DefaultDeployConfig returns the paper's §5 setup for the given model and
// node count: 200x200 field, radius 20.
func DefaultDeployConfig(model DeployModel, n int, seed uint64) DeployConfig {
	return DeployConfig{
		Model:            model,
		N:                n,
		Radius:           20,
		Field:            geom.FromCorners(geom.Pt(0, 0), geom.Pt(200, 200)),
		Forbidden:        DefaultForbiddenConfig(),
		ObstacleCoverage: DefaultObstacleCoverage,
		Seed1:            seed,
		Seed2:            seed ^ 0x9e3779b97f4a7c15, // golden-ratio mix for the PCG stream
	}
}

// Deployment is a generated network plus the generation artifacts the
// experiments need (the hole set for plotting, the RNG state consumed).
type Deployment struct {
	Net       *Network
	Forbidden AreaSet // nil under IA
}

// maxPlacementAttempts bounds FA rejection sampling; with default configs
// forbidden areas cover well under half the field, so this is generous.
const maxPlacementAttempts = 10_000

// Deploy generates one random network per cfg.
func Deploy(cfg DeployConfig) (*Deployment, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("topo: node count must be positive, got %d", cfg.N)
	}
	if cfg.Field.Empty() {
		return nil, fmt.Errorf("topo: empty deployment field %v", cfg.Field)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed1, cfg.Seed2))

	var holes AreaSet
	switch cfg.Model {
	case ModelFA:
		holes = RandomForbiddenAreas(rng, cfg.Field, cfg.Forbidden)
	case ModelOB:
		holes = ObstacleField(rng, cfg.Field, cfg.ObstacleCoverage, cfg.Forbidden)
	}

	pts := make([]geom.Point, 0, cfg.N)
	for len(pts) < cfg.N {
		placed := false
		for attempt := 0; attempt < maxPlacementAttempts; attempt++ {
			p := geom.Pt(
				cfg.Field.Min.X+rng.Float64()*cfg.Field.Width(),
				cfg.Field.Min.Y+rng.Float64()*cfg.Field.Height(),
			)
			if holes != nil && holes.Contains(p) {
				continue
			}
			pts = append(pts, p)
			placed = true
			break
		}
		if !placed {
			return nil, fmt.Errorf("topo: could not place node %d after %d attempts; forbidden areas too large",
				len(pts), maxPlacementAttempts)
		}
	}

	net, err := NewNetwork(pts, cfg.Radius, cfg.Field)
	if err != nil {
		return nil, err
	}
	return &Deployment{Net: net, Forbidden: holes}, nil
}
