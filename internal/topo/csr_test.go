package topo

import (
	"math/rand/v2"
	"testing"

	"github.com/straightpath/wasn/internal/geom"
)

// naiveAdjacency is the reference slice-of-slices build the CSR layout
// replaced: O(n²) pairwise distance tests, rows sorted ascending.
func naiveAdjacency(net *Network) [][]NodeID {
	r2 := net.Radius * net.Radius
	adj := make([][]NodeID, net.N())
	for i := range net.Nodes {
		for j := range net.Nodes {
			if i == j {
				continue
			}
			if geom.Dist2(net.Nodes[i].Pos, net.Nodes[j].Pos) <= r2 {
				adj[i] = append(adj[i], NodeID(j))
			}
		}
	}
	return adj
}

// naiveNeighbors applies the historical alive-filtering semantics to a
// reference row: nil for a dead node, the full row when every member is
// alive, a filtered copy otherwise.
func naiveNeighbors(net *Network, adj [][]NodeID, u NodeID) []NodeID {
	if !net.Alive(u) {
		return nil
	}
	row := adj[u]
	out := row[:0:0]
	for _, v := range row {
		if net.Alive(v) {
			out = append(out, v)
		}
	}
	return out
}

func equalIDs(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCSRMatchesNaiveAdjacency is the differential test of the CSR
// layout: across IA and FA deployments and random failure sequences
// (kills and revivals), Neighbors and Degree must agree element-for-
// element with the slice-of-slices reference build.
func TestCSRMatchesNaiveAdjacency(t *testing.T) {
	for _, model := range []DeployModel{ModelIA, ModelFA} {
		for _, n := range []int{60, 200, 450} {
			for seed := uint64(1); seed <= 3; seed++ {
				dep, err := Deploy(DefaultDeployConfig(model, n, seed))
				if err != nil {
					t.Fatalf("%v n=%d seed=%d: %v", model, n, seed, err)
				}
				net := dep.Net
				ref := naiveAdjacency(net)

				check := func(stage string) {
					t.Helper()
					for u := 0; u < net.N(); u++ {
						want := naiveNeighbors(net, ref, NodeID(u))
						got := net.Neighbors(NodeID(u))
						if !equalIDs(got, want) {
							t.Fatalf("%v n=%d seed=%d %s: Neighbors(%d) = %v, want %v",
								model, n, seed, stage, u, got, want)
						}
						if got, want := net.Degree(NodeID(u)), len(want); got != want {
							t.Fatalf("%v n=%d seed=%d %s: Degree(%d) = %d, want %d",
								model, n, seed, stage, u, got, want)
						}
					}
				}

				check("fresh")

				// Random failure sequence with interleaved revivals.
				rng := rand.New(rand.NewPCG(seed, seed^0xbeef))
				var downed []NodeID
				for step := 0; step < 25; step++ {
					if len(downed) > 0 && rng.IntN(4) == 0 {
						k := rng.IntN(len(downed))
						u := downed[k]
						downed = append(downed[:k], downed[k+1:]...)
						net.SetAlive(u, true)
					} else {
						u := NodeID(rng.IntN(net.N()))
						if net.Alive(u) {
							net.SetAlive(u, false)
							downed = append(downed, u)
						}
					}
					check("failures")
				}
				for _, u := range downed {
					net.SetAlive(u, true)
				}
				if net.DeadCount() != 0 {
					t.Fatalf("dead count %d after reviving everyone", net.DeadCount())
				}
				check("revived")
			}
		}
	}
}

// TestCSRAggregatesMatchNaive pins EdgeCount and AvgDegree to the
// reference adjacency under failures.
func TestCSRAggregatesMatchNaive(t *testing.T) {
	dep, err := Deploy(DefaultDeployConfig(ModelFA, 300, 7))
	if err != nil {
		t.Fatal(err)
	}
	net := dep.Net
	ref := naiveAdjacency(net)

	check := func() {
		t.Helper()
		edges, degSum, alive := 0, 0, 0
		for u := 0; u < net.N(); u++ {
			d := len(naiveNeighbors(net, ref, NodeID(u)))
			if net.Alive(NodeID(u)) {
				alive++
				degSum += d
				edges += d
			}
		}
		if got := net.EdgeCount(); got != edges/2 {
			t.Fatalf("EdgeCount() = %d, want %d", got, edges/2)
		}
		wantAvg := 0.0
		if alive > 0 {
			wantAvg = float64(degSum) / float64(alive)
		}
		if got := net.AvgDegree(); got != wantAvg {
			t.Fatalf("AvgDegree() = %v, want %v", got, wantAvg)
		}
	}

	check()
	rng := rand.New(rand.NewPCG(11, 13))
	for i := 0; i < 20; i++ {
		net.SetAlive(NodeID(rng.IntN(net.N())), false)
		check()
	}
}

// TestNeighborsAliasesCSRWhenClean pins the aliasing contract: on a
// failure-free network consecutive Neighbors calls return the identical
// backing slice (no copies on the hot path).
func TestNeighborsAliasesCSRWhenClean(t *testing.T) {
	dep, err := Deploy(DefaultDeployConfig(ModelIA, 120, 5))
	if err != nil {
		t.Fatal(err)
	}
	net := dep.Net
	for u := 0; u < net.N(); u++ {
		a := net.Neighbors(NodeID(u))
		b := net.Neighbors(NodeID(u))
		if len(a) == 0 {
			continue
		}
		if &a[0] != &b[0] {
			t.Fatalf("Neighbors(%d) copied on a clean network", u)
		}
	}
}

// TestAdjacencyAnglesAligned checks the precomputed edge bearings match
// a fresh atan2 per CSR row entry.
func TestAdjacencyAnglesAligned(t *testing.T) {
	dep, err := Deploy(DefaultDeployConfig(ModelFA, 150, 9))
	if err != nil {
		t.Fatal(err)
	}
	net := dep.Net
	for u := 0; u < net.N(); u++ {
		row := net.AdjacencyRow(NodeID(u))
		angs := net.AdjacencyAngles(NodeID(u))
		if len(row) != len(angs) {
			t.Fatalf("row/angle length mismatch at %d: %d vs %d", u, len(row), len(angs))
		}
		for j, v := range row {
			want := geom.Angle(net.Pos(NodeID(u)), net.Pos(v))
			if angs[j] != want {
				t.Fatalf("angle(%d->%d) = %v, want %v", u, v, angs[j], want)
			}
		}
	}
}
